package device

import (
	"fmt"
	"io"
)

// Technology summarizes the programming characteristics of a synaptic
// device technology, for the §II-B2 comparison: DW-MTJ devices program at
// ~100 mV and ~100 fJ, versus few-volt, picojoule-class writes for phase
// change (PCM) and resistive (RRAM) memories, with far better endurance.
type Technology struct {
	Name string
	// ProgramVoltageV is the typical programming voltage.
	ProgramVoltageV float64
	// ProgramEnergyJ is the typical per-device write energy.
	ProgramEnergyJ float64
	// EnduranceCycles is the order-of-magnitude write endurance.
	EnduranceCycles float64
	// States is the demonstrated number of resistive levels.
	States int
	// CurrentDriven reports whether the device integrates current
	// natively (can be driven by crossbar source-line current without a
	// current-to-voltage converter, §II-C).
	CurrentDriven bool
}

// Technologies returns the comparison table used in §II-B2: values follow
// the references the paper cites ([36], [38], [44], [50], [35]).
func Technologies() []Technology {
	return []Technology{
		{
			Name:            "DW-MTJ (this work)",
			ProgramVoltageV: 0.1,
			ProgramEnergyJ:  100e-15,
			EnduranceCycles: 1e15,
			States:          16,
			CurrentDriven:   true,
		},
		{
			Name:            "PCM",
			ProgramVoltageV: 3.0,
			ProgramEnergyJ:  10e-12,
			EnduranceCycles: 1e8,
			States:          16,
			CurrentDriven:   false,
		},
		{
			Name:            "RRAM",
			ProgramVoltageV: 2.0,
			ProgramEnergyJ:  2e-12,
			EnduranceCycles: 1e6,
			States:          32,
			CurrentDriven:   false,
		},
	}
}

// MTJAdvantage returns the DW-MTJ's programming-energy advantage over the
// named competing technology.
func MTJAdvantage(competitor string) (float64, error) {
	techs := Technologies()
	mtj := techs[0]
	for _, t := range techs[1:] {
		if t.Name == competitor {
			return t.ProgramEnergyJ / mtj.ProgramEnergyJ, nil
		}
	}
	return 0, fmt.Errorf("device: unknown technology %q", competitor)
}

// RenderTechnologies writes the §II-B2 comparison as a table.
func RenderTechnologies(w io.Writer) {
	fmt.Fprintln(w, "synaptic device technologies (§II-B2)")
	fmt.Fprintln(w, "  technology           Vprog    Ewrite     endurance  states  current-driven")
	for _, t := range Technologies() {
		fmt.Fprintf(w, "  %-20s %4.1f V  %8.0f fJ  %8.0e  %4d    %v\n",
			t.Name, t.ProgramVoltageV, t.ProgramEnergyJ*1e15, t.EnduranceCycles, t.States, t.CurrentDriven)
	}
}
