package device_test

import (
	"fmt"

	"repro/internal/device"
)

// Program a synapse to a mid-range level and read its conductance.
func ExampleSynapse() {
	s := device.NewSynapse(device.DefaultParams())
	if err := s.SetLevel(8); err != nil {
		panic(err)
	}
	fmt.Printf("level %d, conductance %.0f µS, read current %.1f µA\n",
		s.Level(), s.Conductance(), s.ReadCurrent())
	// Output: level 8, conductance 40 µS, read current 4.0 µA
}

// Integrate-and-fire behaviour of the spiking neuron device: constant
// suprathreshold current fires periodically, the wall self-resets.
func ExampleSpikingNeuron() {
	p := device.DefaultParams()
	n := device.NewSpikingNeuron(p)
	fires := 0
	for i := 0; i < 45; i++ {
		if n.Integrate(6, p.PulseNS) {
			fires++
		}
	}
	fmt.Printf("fired %d times in 45 cycles\n", fires)
	// Output: fired 3 times in 45 cycles
}

// The non-spiking neuron realizes a saturating rectification.
func ExampleNonSpikingNeuron() {
	n := device.NewNonSpikingNeuron(device.DefaultParams())
	fmt.Printf("%.0f %.2f %.0f\n", n.Transfer(-5), n.Transfer(31.09), n.Transfer(1e4))
	// Output: 0 0.50 1
}
