// Package device models the spintronic primitives of the NEBULA
// architecture: the domain-wall magnetic-tunnel-junction (DW-MTJ) synapse
// of Fig. 1 and the spiking / non-spiking DW-MTJ neurons of Fig. 2.
//
// The paper characterizes these devices with micromagnetic (MuMax) and
// NEGF transport simulation calibrated to the measurements of Emori et
// al.; this package substitutes an analytic model that reproduces the
// *transfer behaviour* those simulations feed to the architecture layer:
//
//   - domain-wall displacement proportional to programming current above a
//     depinning threshold (the linear characteristic of Fig. 1(b));
//   - conductance interpolating between the parallel (P) and anti-parallel
//     (AP) MTJ states as the wall moves, with 20 nm pinning resolution
//     giving 16 programmable states along a 320 nm free layer;
//   - integrate-and-fire behaviour for the neuron device: the wall
//     position is the membrane potential, a spike fires when the wall
//     reaches the far edge, and a reverse current resets it;
//   - a saturating-linear transfer for the non-spiking (ANN) neuron.
//
// Energy and voltage scales follow §II-B: ~100 mV programming voltages and
// ~100 fJ write energies, roughly an order of magnitude below PCM/RRAM.
package device

import (
	"fmt"
	"math"
)

// Params collects the geometric and dynamic device constants. The zero
// value is not useful; use DefaultParams.
type Params struct {
	// LengthNM is the free-layer length in nanometres (320 nm in the
	// paper's design discussion).
	LengthNM float64
	// PinResolutionNM is the minimum programmable wall displacement
	// (20 nm), so States = LengthNM / PinResolutionNM.
	PinResolutionNM float64
	// DepinningCurrentUA is the critical current (µA) below which the
	// wall does not move.
	DepinningCurrentUA float64
	// MobilityNMPerUAns is the wall velocity per unit overdrive current,
	// in nm per (µA·ns).
	MobilityNMPerUAns float64
	// GParallelUS and GAntiParallelUS are the conductances (µS) of the
	// fully parallel and fully anti-parallel configurations. Their ratio
	// is the ON/OFF ratio discussed in §IV-C (≈7× observed).
	GParallelUS     float64
	GAntiParallelUS float64
	// VReadMV is the read voltage across the MTJ (≈100 mV scale).
	VReadMV float64
	// WriteEnergyFJ is the energy of a full-length programming event
	// (~100 fJ per §II-B2).
	WriteEnergyFJ float64
	// PulseNS is the nominal programming pulse width; the 110 ns NEBULA
	// pipeline stage is set by the neuron switching time.
	PulseNS float64
}

// DefaultParams returns the calibration used throughout the reproduction,
// chosen to match the quantities quoted in §II-B and §V-C.
func DefaultParams() Params {
	return Params{
		LengthNM:           320,
		PinResolutionNM:    20,
		DepinningCurrentUA: 2.0,
		MobilityNMPerUAns:  0.05,
		GParallelUS:        70,
		GAntiParallelUS:    10, // 7× ON/OFF ratio [31]
		VReadMV:            100,
		WriteEnergyFJ:      100,
		PulseNS:            110,
	}
}

// States returns the number of programmable resistance levels.
func (p Params) States() int {
	return int(math.Round(p.LengthNM / p.PinResolutionNM))
}

// WallVelocity returns the domain-wall velocity (nm/ns) for a programming
// current in µA. Below the depinning threshold the wall is pinned. The
// linear velocity/current relation is the calibrated characteristic of
// Fig. 1(b).
func (p Params) WallVelocity(currentUA float64) float64 {
	mag := math.Abs(currentUA)
	if mag <= p.DepinningCurrentUA {
		return 0
	}
	v := p.MobilityNMPerUAns * (mag - p.DepinningCurrentUA)
	if currentUA < 0 {
		return -v
	}
	return v
}

// Synapse is a DW-MTJ synaptic device (Fig. 1(a)): terminals T2–T3 carry
// the programming current through the heavy-metal layer, T1–T3 reads the
// MTJ conductance.
type Synapse struct {
	P Params
	// pos is the domain-wall position in [0, LengthNM].
	pos float64
	// writeEnergyFJ accumulates programming energy.
	writeEnergyFJ float64
}

// NewSynapse returns a synapse with the wall at the AP edge (minimum
// conductance).
func NewSynapse(p Params) *Synapse { return &Synapse{P: p} }

// Position returns the wall position in nm.
func (s *Synapse) Position() float64 { return s.pos }

// Conductance returns the present T1–T3 conductance in µS: a linear mix of
// the P and AP domain conductances weighted by wall position.
func (s *Synapse) Conductance() float64 {
	frac := s.pos / s.P.LengthNM
	return s.P.GAntiParallelUS + frac*(s.P.GParallelUS-s.P.GAntiParallelUS)
}

// Program drives a current pulse (µA, signed) of the given duration (ns)
// through the heavy metal, moving the wall. It returns the wall
// displacement in nm. Programming energy is tracked.
func (s *Synapse) Program(currentUA, durationNS float64) float64 {
	v := s.P.WallVelocity(currentUA)
	before := s.pos
	s.pos += v * durationNS
	if s.pos < 0 {
		s.pos = 0
	}
	if s.pos > s.P.LengthNM {
		s.pos = s.P.LengthNM
	}
	moved := s.pos - before
	// Energy scales with the fraction of a full-length traversal.
	s.writeEnergyFJ += math.Abs(moved) / s.P.LengthNM * s.P.WriteEnergyFJ
	return moved
}

// SetLevel programs the synapse directly to one of its discrete levels
// (0..States-1), as the compile-time weight loading of §IV-B5 does. It
// accounts the programming energy of the move.
func (s *Synapse) SetLevel(level int) error {
	n := s.P.States()
	if level < 0 || level >= n {
		return fmt.Errorf("device: level %d out of [0,%d)", level, n)
	}
	target := float64(level) * s.P.PinResolutionNM
	s.writeEnergyFJ += math.Abs(target-s.pos) / s.P.LengthNM * s.P.WriteEnergyFJ
	s.pos = target
	return nil
}

// Level returns the discrete level nearest the present wall position.
func (s *Synapse) Level() int {
	l := int(math.Round(s.pos / s.P.PinResolutionNM))
	if max := s.P.States() - 1; l > max {
		l = max
	}
	return l
}

// ReadCurrent returns the read current (µA) for the device's read voltage:
// I = G·V.
func (s *Synapse) ReadCurrent() float64 {
	return s.Conductance() * 1e-6 * s.P.VReadMV * 1e-3 * 1e6 // µS · mV → µA
}

// WriteEnergy returns the accumulated programming energy in fJ.
func (s *Synapse) WriteEnergy() float64 { return s.writeEnergyFJ }

// SpikingNeuron is the IF neuron device of Fig. 2(a): the wall position is
// the membrane potential; when it reaches the far edge the reference-MTJ
// divider flips the inverter, emitting a spike, and a reverse current
// resets the wall.
type SpikingNeuron struct {
	P Params
	// pos is the wall position (membrane state).
	pos float64
	// spikes counts emitted spikes since the last Reset.
	spikes int
}

// NewSpikingNeuron returns a neuron with the wall at the reset edge.
func NewSpikingNeuron(p Params) *SpikingNeuron { return &SpikingNeuron{P: p} }

// Membrane returns the wall position normalized to [0, 1], i.e. the
// membrane potential as a fraction of threshold.
func (n *SpikingNeuron) Membrane() float64 { return n.pos / n.P.LengthNM }

// Integrate applies the summed source-line current (µA) for duration ns.
// It returns true if the neuron fired during the interval. Negative
// currents (inhibition) move the wall back toward reset.
func (n *SpikingNeuron) Integrate(currentUA, durationNS float64) bool {
	// WallVelocity is fused by hand: the shared |current| magnitude and
	// the skipped zero-velocity add keep this under the inlining budget
	// for the per-column integrate walk, with bitwise-identical results
	// (the sub-depinning case added exactly +0 to a never-negative pos).
	mag := currentUA
	if mag < 0 {
		mag = -mag
	}
	if mag > n.P.DepinningCurrentUA {
		v := n.P.MobilityNMPerUAns * (mag - n.P.DepinningCurrentUA)
		if currentUA < 0 {
			v = -v // inhibition moves the wall back toward reset
		}
		n.pos += v * durationNS
	}
	if n.pos < 0 {
		n.pos = 0
	}
	if n.pos < n.P.LengthNM {
		return false
	}
	// Fire and reset: the output spike triggers the reverse-current
	// reset of §II-B3. Residual overdrive is discarded (hardware
	// reset returns the wall fully to the left edge).
	n.pos = 0
	n.spikes++
	return true
}

// Spikes returns the spike count since Reset.
func (n *SpikingNeuron) Spikes() int { return n.spikes }

// Reset returns the wall to the reset edge and clears the counter.
func (n *SpikingNeuron) Reset() {
	n.pos = 0
	n.spikes = 0
}

// NonSpikingNeuron is the saturating rectified-linear neuron of Fig. 2(b):
// interfaced with a transistor in saturation instead of an inverter, its
// output is proportional to wall displacement and saturates at the device
// edge. It is stateless between evaluations (the ANN neuron of §IV-B1).
type NonSpikingNeuron struct {
	P Params
}

// NewNonSpikingNeuron returns the ANN neuron device.
func NewNonSpikingNeuron(p Params) *NonSpikingNeuron { return &NonSpikingNeuron{P: p} }

// Transfer evaluates the saturating ReLU for one 110 ns evaluation: the
// wall starts at the reset edge, moves in proportion to the (positive)
// input current, and the normalized displacement in [0, 1] is the output.
// Negative currents yield 0 — the rectification.
func (nn *NonSpikingNeuron) Transfer(currentUA float64) float64 {
	if currentUA <= nn.P.DepinningCurrentUA {
		return 0
	}
	disp := nn.P.WallVelocity(currentUA) * nn.P.PulseNS
	if disp >= nn.P.LengthNM {
		return 1
	}
	return disp / nn.P.LengthNM
}

// CharacteristicPoint is one sample of the Fig. 1(b) device curve.
type CharacteristicPoint struct {
	CurrentUA      float64
	DisplacementNM float64
	ConductanceUS  float64
}

// Characteristic sweeps programming current and returns displacement and
// conductance per fixed-width pulse, regenerating Fig. 1(b). The sweep
// starts from the AP state at each point.
func Characteristic(p Params, minUA, maxUA float64, points int) []CharacteristicPoint {
	out := make([]CharacteristicPoint, points)
	for i := 0; i < points; i++ {
		cur := minUA + (maxUA-minUA)*float64(i)/float64(points-1)
		s := NewSynapse(p)
		// Start mid-device so negative currents can also displace the wall.
		s.pos = p.LengthNM / 2
		moved := s.Program(cur, p.PulseNS)
		out[i] = CharacteristicPoint{
			CurrentUA:      cur,
			DisplacementNM: moved,
			ConductanceUS:  s.Conductance(),
		}
	}
	return out
}
