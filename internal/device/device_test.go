package device

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStates(t *testing.T) {
	p := DefaultParams()
	if p.States() != 16 {
		t.Fatalf("States = %d, want 16 (320nm / 20nm)", p.States())
	}
}

func TestOnOffRatio(t *testing.T) {
	p := DefaultParams()
	ratio := p.GParallelUS / p.GAntiParallelUS
	if math.Abs(ratio-7) > 0.01 {
		t.Fatalf("ON/OFF ratio = %v, want 7 per [31]", ratio)
	}
}

func TestWallVelocityThreshold(t *testing.T) {
	p := DefaultParams()
	if p.WallVelocity(p.DepinningCurrentUA*0.99) != 0 {
		t.Fatal("wall moved below depinning current")
	}
	if p.WallVelocity(p.DepinningCurrentUA+1) <= 0 {
		t.Fatal("wall did not move above threshold")
	}
	if p.WallVelocity(-(p.DepinningCurrentUA + 1)) >= 0 {
		t.Fatal("negative current must move the wall backward")
	}
}

func TestWallVelocityLinear(t *testing.T) {
	// Fig. 1(b): displacement proportional to overdrive current.
	p := DefaultParams()
	v1 := p.WallVelocity(p.DepinningCurrentUA + 2)
	v2 := p.WallVelocity(p.DepinningCurrentUA + 4)
	if math.Abs(v2-2*v1) > 1e-12 {
		t.Fatalf("velocity not linear in overdrive: %v vs %v", v1, v2)
	}
}

func TestSynapseProgramAndClamp(t *testing.T) {
	p := DefaultParams()
	s := NewSynapse(p)
	if s.Position() != 0 {
		t.Fatal("initial position must be 0")
	}
	moved := s.Program(10, 1e6) // huge pulse: clamps at device length
	if moved != p.LengthNM || s.Position() != p.LengthNM {
		t.Fatalf("clamp failed: moved %v, pos %v", moved, s.Position())
	}
	// Reverse programming back below zero clamps at 0.
	s.Program(-10, 1e6)
	if s.Position() != 0 {
		t.Fatalf("reverse clamp failed: pos %v", s.Position())
	}
}

func TestConductanceRange(t *testing.T) {
	p := DefaultParams()
	s := NewSynapse(p)
	if g := s.Conductance(); math.Abs(g-p.GAntiParallelUS) > 1e-12 {
		t.Fatalf("AP conductance %v", g)
	}
	s.Program(10, 1e6)
	if g := s.Conductance(); math.Abs(g-p.GParallelUS) > 1e-12 {
		t.Fatalf("P conductance %v", g)
	}
}

func TestConductanceMonotoneInLevel(t *testing.T) {
	p := DefaultParams()
	s := NewSynapse(p)
	prev := -1.0
	for l := 0; l < p.States(); l++ {
		if err := s.SetLevel(l); err != nil {
			t.Fatal(err)
		}
		g := s.Conductance()
		if g <= prev {
			t.Fatalf("conductance not strictly increasing at level %d", l)
		}
		if s.Level() != l {
			t.Fatalf("Level() = %d after SetLevel(%d)", s.Level(), l)
		}
		prev = g
	}
}

func TestSetLevelRejectsOutOfRange(t *testing.T) {
	s := NewSynapse(DefaultParams())
	if err := s.SetLevel(-1); err == nil {
		t.Fatal("negative level accepted")
	}
	if err := s.SetLevel(16); err == nil {
		t.Fatal("level 16 accepted (max is 15)")
	}
}

func TestWriteEnergyAccumulates(t *testing.T) {
	p := DefaultParams()
	s := NewSynapse(p)
	if err := s.SetLevel(15); err != nil {
		t.Fatal(err)
	}
	// Full traversal ≈ one full write energy (~100 fJ).
	e := s.WriteEnergy()
	if math.Abs(e-p.WriteEnergyFJ*300.0/320.0) > 1 {
		t.Fatalf("full-range write energy %v fJ", e)
	}
	before := e
	if err := s.SetLevel(15); err != nil { // no move → no energy
		t.Fatal(err)
	}
	if s.WriteEnergy() != before {
		t.Fatal("idempotent SetLevel consumed energy")
	}
}

func TestReadCurrentScale(t *testing.T) {
	p := DefaultParams()
	s := NewSynapse(p)
	s.Program(10, 1e6) // parallel state: G = 70 µS at 100 mV → 7 µA
	i := s.ReadCurrent()
	if math.Abs(i-7) > 1e-9 {
		t.Fatalf("read current %v µA, want 7", i)
	}
}

func TestSpikingNeuronFiresAndResets(t *testing.T) {
	p := DefaultParams()
	n := NewSpikingNeuron(p)
	// Current giving v = 0.05*(6-2) = 0.2 nm/ns → needs 1600 ns to traverse
	// 320 nm; with 110 ns steps that's 15 integrate calls.
	fires := 0
	steps := 0
	for i := 0; i < 30; i++ {
		steps++
		if n.Integrate(6, p.PulseNS) {
			fires++
			break
		}
	}
	if fires != 1 {
		t.Fatal("neuron never fired")
	}
	if steps != 15 {
		t.Fatalf("fired after %d steps, want 15", steps)
	}
	if n.Membrane() != 0 {
		t.Fatalf("membrane %v after fire, want 0", n.Membrane())
	}
	if n.Spikes() != 1 {
		t.Fatalf("spike count %d", n.Spikes())
	}
}

func TestSpikingNeuronSubthresholdPersistence(t *testing.T) {
	// §IV-B4: the domain wall stores the membrane potential between
	// timesteps with no refresh — integrate, pause, integrate.
	p := DefaultParams()
	n := NewSpikingNeuron(p)
	n.Integrate(6, p.PulseNS)
	m1 := n.Membrane()
	if m1 <= 0 {
		t.Fatal("no integration")
	}
	// "Pause": zero current steps must not decay the state (no leak).
	for i := 0; i < 100; i++ {
		n.Integrate(0, p.PulseNS)
	}
	if n.Membrane() != m1 {
		t.Fatalf("membrane leaked: %v → %v", m1, n.Membrane())
	}
}

func TestSpikingNeuronInhibition(t *testing.T) {
	p := DefaultParams()
	n := NewSpikingNeuron(p)
	n.Integrate(10, p.PulseNS)
	m := n.Membrane()
	n.Integrate(-10, p.PulseNS)
	if n.Membrane() >= m {
		t.Fatal("negative current did not lower membrane")
	}
	// Repeated inhibition clamps at 0.
	for i := 0; i < 50; i++ {
		n.Integrate(-10, p.PulseNS)
	}
	if n.Membrane() != 0 {
		t.Fatalf("membrane %v, want clamp at 0", n.Membrane())
	}
}

func TestSpikingNeuronRateLinearity(t *testing.T) {
	// Firing rate should grow with input current — the device-level basis
	// of rate coding.
	p := DefaultParams()
	rate := func(cur float64) float64 {
		n := NewSpikingNeuron(p)
		for i := 0; i < 1000; i++ {
			n.Integrate(cur, p.PulseNS)
		}
		return float64(n.Spikes())
	}
	lo, hi := rate(4), rate(8)
	if hi <= lo {
		t.Fatalf("rate not increasing: %v vs %v", lo, hi)
	}
}

func TestNonSpikingNeuronTransfer(t *testing.T) {
	p := DefaultParams()
	n := NewNonSpikingNeuron(p)
	if n.Transfer(-5) != 0 {
		t.Fatal("negative current must output 0 (rectification)")
	}
	if n.Transfer(p.DepinningCurrentUA) != 0 {
		t.Fatal("subthreshold current must output 0")
	}
	mid := n.Transfer(p.DepinningCurrentUA + 20)
	if mid <= 0 || mid > 1 {
		t.Fatalf("transfer out of range: %v", mid)
	}
	if n.Transfer(1e6) != 1 {
		t.Fatal("saturation failed")
	}
}

func TestNonSpikingNeuronMonotone(t *testing.T) {
	p := DefaultParams()
	n := NewNonSpikingNeuron(p)
	if err := quick.Check(func(a, b uint8) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return n.Transfer(x) <= n.Transfer(y)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCharacteristicShape(t *testing.T) {
	p := DefaultParams()
	pts := Characteristic(p, -12, 12, 25)
	if len(pts) != 25 {
		t.Fatalf("points: %d", len(pts))
	}
	// Displacement must be monotone non-decreasing in current and zero in
	// the pinned dead zone.
	for i := 1; i < len(pts); i++ {
		if pts[i].DisplacementNM < pts[i-1].DisplacementNM-1e-9 {
			t.Fatalf("displacement not monotone at %v µA", pts[i].CurrentUA)
		}
	}
	for _, pt := range pts {
		if math.Abs(pt.CurrentUA) <= p.DepinningCurrentUA && pt.DisplacementNM != 0 {
			t.Fatalf("wall moved inside dead zone at %v µA", pt.CurrentUA)
		}
		if pt.ConductanceUS < p.GAntiParallelUS-1e-9 || pt.ConductanceUS > p.GParallelUS+1e-9 {
			t.Fatalf("conductance %v out of device range", pt.ConductanceUS)
		}
	}
	// Ends must show movement in both directions.
	if pts[0].DisplacementNM >= 0 {
		t.Fatal("strong negative current should move wall backward")
	}
	if pts[len(pts)-1].DisplacementNM <= 0 {
		t.Fatal("strong positive current should move wall forward")
	}
}

func TestTechnologyComparison(t *testing.T) {
	techs := Technologies()
	if len(techs) != 3 || techs[0].Name != "DW-MTJ (this work)" {
		t.Fatalf("technology table malformed: %+v", techs)
	}
	mtj := techs[0]
	for _, other := range techs[1:] {
		// §II-B2: DW-MTJ programs at far lower voltage and energy, with
		// far better endurance, than PCM/RRAM.
		if mtj.ProgramVoltageV >= other.ProgramVoltageV {
			t.Fatalf("MTJ voltage %v not below %s", mtj.ProgramVoltageV, other.Name)
		}
		if mtj.ProgramEnergyJ >= other.ProgramEnergyJ {
			t.Fatalf("MTJ energy not below %s", other.Name)
		}
		if mtj.EnduranceCycles <= other.EnduranceCycles {
			t.Fatalf("MTJ endurance not above %s", other.Name)
		}
		if other.CurrentDriven {
			t.Fatalf("%s should need I-to-V conversion", other.Name)
		}
	}
	if !mtj.CurrentDriven {
		t.Fatal("spin neurons are current-driven (§II-C)")
	}
}

func TestMTJAdvantage(t *testing.T) {
	adv, err := MTJAdvantage("PCM")
	if err != nil {
		t.Fatal(err)
	}
	if adv < 10 { // pJ vs ~100 fJ: at least an order of magnitude
		t.Fatalf("PCM advantage %v too small", adv)
	}
	if _, err := MTJAdvantage("FeFET"); err == nil {
		t.Fatal("unknown technology accepted")
	}
}

func TestRenderTechnologies(t *testing.T) {
	var b strings.Builder
	RenderTechnologies(&b)
	if !strings.Contains(b.String(), "DW-MTJ") || !strings.Contains(b.String(), "RRAM") {
		t.Fatal("render incomplete")
	}
}
