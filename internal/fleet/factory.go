package fleet

import (
	"context"

	"repro/internal/arch"
	"repro/internal/convert"
	"repro/internal/image"
)

// CachedFactory returns a Factory whose compiles go through a
// content-addressed chip-image cache: the first replica pays the full
// compile — programming, fault injection, BIST — and installs its image;
// every later replica, and every background recompile after a
// retirement or a kill, rehydrates from that image instead. newChip
// must build a fresh, identically configured chip per call, which is
// what the Factory contract requires anyway (replicas are
// interchangeable only when compiled over identically seeded chips) and
// what keeps the cache key stable — the key digests the chip noise
// stream's fingerprint, so reusing one chip object would miss on every
// call. Rehydrated sessions are bitwise interchangeable with compiled
// ones, so the pool's determinism contract is unchanged.
func CachedFactory(newChip func() *arch.Chip, model *convert.Converted, cache *image.Cache, opts ...arch.Option) Factory {
	return func(ctx context.Context) (*arch.Session, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return newChip().CompileCached(model, cache, opts...)
	}
}
