package fleet

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestStormDeterministicAndBalanced(t *testing.T) {
	cfg := StormConfig{Waves: 12, Replicas: 3}
	a := Storm(7, cfg)
	b := Storm(7, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different storms:\n%v\n%v", a, b)
	}
	if c := Storm(8, cfg); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical storms")
	}
	if len(a) != cfg.Waves {
		t.Fatalf("storm has %d events, want %d", len(a), cfg.Waves)
	}
	// The deck is balanced: quiet at the default fraction, every fault
	// class present — no seed can draw a storm that skips a class.
	kinds := map[EventKind]int{}
	for _, e := range a {
		kinds[e.Kind]++
		if e.Replica < 0 || e.Replica >= cfg.Replicas {
			t.Fatalf("event targets replica %d outside the pool", e.Replica)
		}
		switch e.Kind {
		case EventDriftBurst:
			if e.Steps <= 0 {
				t.Fatalf("drift burst without magnitude: %+v", e)
			}
		case EventStuckOnset:
			if e.Fraction <= 0 {
				t.Fatalf("stuck onset without fraction: %+v", e)
			}
		case EventRunFault:
			if e.Count <= 0 {
				t.Fatalf("run fault without count: %+v", e)
			}
		}
	}
	// 12 waves at quiet fraction 0.25: 3 quiet, 9 faults cycling the 4
	// classes → 3 drift bursts, 2 each of the rest.
	want := map[EventKind]int{
		EventNone: 3, EventDriftBurst: 3, EventStuckOnset: 2,
		EventKill: 2, EventRunFault: 2,
	}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("storm composition %v, want %v", kinds, want)
	}
}

func TestEventKindJSONByName(t *testing.T) {
	raw, err := json.Marshal(Event{Kind: EventStuckOnset, Replica: 1, Fraction: 0.01, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"kind":"stuck-onset"`) {
		t.Fatalf("event kind not serialized by name: %s", raw)
	}
}
