// Package fleet is the runtime resilience layer: a health-aware pool of
// identically compiled inference sessions behind one Run/RunBatch API.
//
// PR 2's reliability subsystem defends a single chip at compile time —
// BIST, sparing, retirement — but a long-running process degrades in
// operation: retention drift accumulates between batches, devices get
// stuck mid-service, and *reliability.DegradedError is terminal for the
// session that hits it. The pool turns those per-replica failures into
// fleet-level graceful degradation. A router steers every request to a
// replica that is provably pristine (generation stamps unchanged since
// its last known-good point), a maintenance scheduler scrubs and
// re-BISTs drifted replicas between batches and recompiles retired ones
// with bounded backoff, and a retry path transparently re-executes
// failed attempts on a healthy replica.
//
// # Determinism contract
//
// The pool — not the session — owns the per-request RNG streams. Each
// request reserves an encoder/noise stream pair from the pool parent in
// request order, and every attempt (first try or retry, on any replica)
// consumes a fresh Clone of that pair through Session.RunReserved. All
// replicas are compiled by the same factory over identically seeded
// chips, and only pristine replicas serve, so the result of a request
// is a pure function of (input, reservation index, pool seed): bitwise
// identical no matter which replica serves it, how many times it is
// retried, or what parallelism RunBatch uses. A Pool seeded like a
// standalone session reproduces that session's Run/RunBatch outputs bit
// for bit.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/crossbar"
	"repro/internal/obs"
	"repro/internal/reliability"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Factory compiles one replica: a fresh chip programmed with the same
// model, options and chip seed every call, so replicas are
// interchangeable. It is called K times at pool construction and again
// for every background recompile of a retired replica.
type Factory func(ctx context.Context) (*arch.Session, error)

// Config configures a Pool.
type Config struct {
	// Replicas is the pool size K (≥ 1).
	Replicas int
	// Factory compiles a replica. Sessions must be safe for concurrent
	// runs (not WithWear / WithSharedEncoder); the pool never calls
	// their own Run entry points, so their WithSeed is irrelevant.
	Factory Factory
	// Seed seeds the pool's RNG parent, from which each request
	// reserves its private stream pair in request order. Seeding it
	// like a standalone session makes pool results bitwise identical to
	// that session's.
	Seed uint64
	// MaxUnmitigatedFrac is the router's serving threshold on a
	// replica's scrub report. The zero value is deliberately strict:
	// any residual fault retires the replica, which is what preserves
	// the bitwise determinism contract (a replica computing through a
	// stuck device would return silently different results).
	MaxUnmitigatedFrac float64
	// RetryBudget bounds the re-executions of one request after a
	// failed attempt (default 2).
	RetryBudget int
	// Parallelism bounds RunBatch worker goroutines (≤ 0: NumCPU).
	// Results are bitwise independent of the setting.
	Parallelism int
	// BackoffBaseTicks / BackoffMaxTicks bound the exponential backoff,
	// measured in maintenance ticks (wall-clock-free, so schedules are
	// deterministic), between recompile attempts of a retired replica
	// (defaults 1 and 8).
	BackoffBaseTicks int
	BackoffMaxTicks  int
	// Rec, when non-nil, receives the pool lifecycle gauges.
	Rec *obs.FleetRecorder
}

// ErrExhausted reports a request that consumed its retry budget (or its
// deadline) without any replica producing a result.
var ErrExhausted = errors.New("fleet: retry budget exhausted")

// replica states. A replica is serveable only when active AND its
// session reports Pristine; suspect marks it for priority scrubbing
// after a failed attempt without blocking the serving path on a write
// lock.
const (
	stateActive int32 = iota
	stateRetired
)

// replica is one pool slot: a session plus its health bookkeeping.
type replica struct {
	id int
	// mu is the run/maintenance gate: attempts hold it shared, every
	// mutator (scrub, retention ageing, fault onset, kill, recompile)
	// holds it exclusively — maintenance never runs concurrently with a
	// run on the same replica.
	mu sync.RWMutex
	// sess is nil while the replica awaits recompile.
	sess *arch.Session
	// state and suspect are read lock-free by the router.
	state   atomic.Int32
	suspect atomic.Bool
	// injectFail makes the next N attempts fail after verification —
	// the chaos harness's mid-flight run fault.
	injectFail atomic.Int32
	// backoffTicks / waitTicks drive recompile backoff; touched only
	// under mu (exclusive) by the maintenance scheduler.
	backoffTicks int
	waitTicks    int
	// report is the replica's last scrub outcome, under mu.
	report reliability.Report
}

// Pool is a health-aware set of interchangeable compiled sessions. All
// methods are safe for concurrent use; Maintain may run concurrently
// with Run/RunBatch (it excludes per replica, not pool-wide).
type Pool struct {
	cfg      Config
	replicas []*replica
	rec      *obs.FleetRecorder

	// mu guards the request-order stream reservation.
	mu      sync.Mutex
	streams *rng.Rand
	// rr is the round-robin routing cursor.
	rr atomic.Uint64
	// inflight counts attempts currently executing on some replica.
	inflight atomic.Int64
}

// NewPool compiles cfg.Replicas sessions through cfg.Factory and
// returns a pool ready to serve. Compilation is sequential, so a
// deterministic factory yields a deterministic fleet.
func NewPool(ctx context.Context, cfg Config) (*Pool, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("fleet: pool needs ≥ 1 replica, got %d", cfg.Replicas)
	}
	if cfg.Factory == nil {
		return nil, errors.New("fleet: pool needs a session factory")
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 2
	}
	if cfg.BackoffBaseTicks <= 0 {
		cfg.BackoffBaseTicks = 1
	}
	if cfg.BackoffMaxTicks <= 0 {
		cfg.BackoffMaxTicks = 8
	}
	p := &Pool{cfg: cfg, rec: cfg.Rec, streams: rng.New(cfg.Seed)}
	for i := 0; i < cfg.Replicas; i++ {
		sess, err := cfg.Factory(ctx)
		if err != nil {
			return nil, fmt.Errorf("fleet: compile replica %d: %w", i, err)
		}
		p.replicas = append(p.replicas, &replica{id: i, sess: sess})
	}
	if p.rec != nil {
		p.rec.SetReplicas(cfg.Replicas)
		p.rec.SetHealthy(cfg.Replicas)
	}
	return p, nil
}

// Ticket is one request's reserved stream pair. The originals stay with
// the ticket; every attempt draws fresh clones, which is what makes a
// retry replay the failed attempt bit for bit. Tickets are issued in
// reservation order, so a request's result is a pure function of
// (input, reservation index, pool seed) no matter when — or grouped
// with what — it is eventually served.
type Ticket struct {
	enc, noise *rng.Rand
}

// reserve draws n stream pairs from the pool parent in request order —
// the same split order a session's own reservation uses, which is why a
// pool and a standalone session with equal seeds agree bitwise.
func (p *Pool) reserve(n int) []Ticket {
	out := make([]Ticket, n)
	p.mu.Lock()
	for i := range out {
		out[i].enc = p.streams.Split()
		out[i].noise = p.streams.Split()
	}
	p.mu.Unlock()
	return out
}

// ReserveTicket draws the next stream pair from the pool parent. A
// serving tier reserves one ticket per request at admission time — in
// admission order — and later redeems it with ServeReserved; because the
// output depends only on (input, ticket, pool seed), the result is
// byte-identical whether the request is then served alone or coalesced
// into any batch.
func (p *Pool) ReserveTicket() Ticket { return p.reserve(1)[0] }

// ServeReserved executes one inference with a caller-reserved ticket,
// with the same routing, retry and failover behaviour as Run. The
// pool's own reservation cursor is untouched.
func (p *Pool) ServeReserved(ctx context.Context, input *tensor.Tensor, tk Ticket) (*arch.RunResult, error) {
	return p.serve(ctx, input, tk)
}

// Run executes one inference on some healthy replica, transparently
// retrying on another replica if the attempt fails, bounded by the
// retry budget and ctx's deadline. Each call reserves the next stream
// pair, so a loop of Run calls is bitwise identical to one RunBatch
// over the same inputs — and to a standalone session with the pool's
// seed.
func (p *Pool) Run(ctx context.Context, input *tensor.Tensor) (*arch.RunResult, error) {
	return p.serve(ctx, input, p.reserve(1)[0])
}

// RunBatch executes a batch across the pool's worker bound and returns
// one result per input, in input order. Stream pairs are reserved in
// input order before any worker starts; attempts and retries may land
// on any replica at any parallelism without changing a single output
// bit. The first request to exhaust its retries fails the batch.
func (p *Pool) RunBatch(ctx context.Context, inputs []*tensor.Tensor) ([]*arch.RunResult, error) {
	if len(inputs) == 0 {
		return nil, nil
	}
	tickets := p.reserve(len(inputs))
	results := make([]*arch.RunResult, len(inputs))
	par := p.cfg.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par > len(inputs) {
		par = len(inputs)
	}
	if par <= 1 {
		for i, in := range inputs {
			res, err := p.serve(ctx, in, tickets[i])
			if err != nil {
				return nil, fmt.Errorf("fleet: batch input %d: %w", i, err)
			}
			results[i] = res
		}
		return results, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(inputs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := cctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				res, err := p.serve(cctx, inputs[i], tickets[i])
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range inputs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Prefer the lowest-index real failure over cancellations it caused.
	var first error
	for i, err := range errs {
		if err == nil {
			continue
		}
		wrapped := fmt.Errorf("fleet: batch input %d: %w", i, err)
		if !errors.Is(err, context.Canceled) {
			return nil, wrapped
		}
		if first == nil {
			first = wrapped
		}
	}
	if first != nil {
		return nil, first
	}
	return results, nil
}

// serve is the routed attempt loop of one request: pick a serveable
// replica, run a fresh clone of the ticket streams on it, and on
// failure retry elsewhere until the budget or deadline runs out. When
// no replica is serveable it falls back to an inline rescue (scrub or
// emergency recompile) rather than failing fast — availability degrades
// to latency, not errors.
func (p *Pool) serve(ctx context.Context, input *tensor.Tensor, tk Ticket) (*arch.RunResult, error) {
	var lastErr error
	lastReplica := -1
	for attempt := 0; attempt <= p.cfg.RetryBudget; attempt++ {
		if err := ctx.Err(); err != nil {
			p.noteFailed()
			return nil, err
		}
		r := p.pick()
		if r == nil {
			r = p.rescue(ctx)
		}
		if r == nil {
			lastErr = errors.New("no serveable replica and rescue failed")
			break
		}
		if attempt > 0 && p.rec != nil {
			p.rec.AddRetry()
			if r.id != lastReplica {
				p.rec.AddFailover()
			}
		}
		lastReplica = r.id
		res, served, err := p.attempt(ctx, r, input, tk)
		if served && err == nil {
			if p.rec != nil {
				p.rec.AddServed(1)
			}
			return res, nil
		}
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
				p.noteFailed()
				return nil, err
			}
			lastErr = err
			// The replica produced a failure: stop routing to it until a
			// scrub clears it.
			r.suspect.Store(true)
			p.updateHealthyGauge()
		}
		// !served without error means the replica stopped being
		// serveable between pick and attempt; the next iteration
		// re-picks without consuming real work.
	}
	p.noteFailed()
	if lastErr == nil {
		lastErr = errors.New("no attempt ran")
	}
	return nil, fmt.Errorf("%w after %d attempts: %w", ErrExhausted, p.cfg.RetryBudget+1, lastErr)
}

// attempt runs one try on one replica under its shared lock. The
// serveability check happens under the same lock, so a replica that
// passes it cannot be mutated mid-run.
func (p *Pool) attempt(ctx context.Context, r *replica, input *tensor.Tensor, tk Ticket) (res *arch.RunResult, served bool, err error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !p.serveableLocked(r) {
		return nil, false, nil
	}
	if n := r.injectFail.Load(); n > 0 && r.injectFail.CompareAndSwap(n, n-1) {
		return nil, true, fmt.Errorf("fleet: replica %d: injected run fault", r.id)
	}
	p.inflight.Add(1)
	defer p.inflight.Add(-1)
	res, err = r.sess.RunReserved(ctx, input, arch.ReservedStreams{
		Enc:   tk.enc.Clone(),
		Noise: tk.noise.Clone(),
	})
	return res, true, err
}

// serveableLocked reports whether a replica may serve a request. Caller
// holds r.mu (shared suffices: every array mutator holds it exclusive,
// so the Pristine walk cannot race a write).
func (p *Pool) serveableLocked(r *replica) bool {
	return r.state.Load() == stateActive && !r.suspect.Load() &&
		r.sess != nil && r.sess.Pristine()
}

// pick returns the next serveable replica in round-robin order, or nil
// when none is. The quick pre-check outside the lock keeps the router
// from queueing behind maintenance on degraded replicas.
func (p *Pool) pick() *replica {
	start := int(p.rr.Add(1) - 1)
	for k := 0; k < len(p.replicas); k++ {
		r := p.replicas[(start+k)%len(p.replicas)]
		if r.state.Load() != stateActive || r.suspect.Load() {
			continue
		}
		r.mu.RLock()
		ok := p.serveableLocked(r)
		r.mu.RUnlock()
		if ok {
			return r
		}
	}
	return nil
}

// rescue restores one replica inline when the whole pool is
// unserveable: first replica that scrubs back to health wins; if every
// live replica is past saving, the first retired one is recompiled
// immediately, ignoring its backoff — an emergency beats politeness.
func (p *Pool) rescue(ctx context.Context) *replica {
	for _, r := range p.replicas {
		if r.state.Load() != stateRetired && p.scrubReplica(ctx, r) {
			return r
		}
	}
	for _, r := range p.replicas {
		if r.state.Load() == stateRetired && p.recompileReplica(ctx, r) {
			return r
		}
	}
	return nil
}

// Maintain runs one maintenance tick: every drifted or suspect replica
// is scrubbed back to pristine (or retired when past the policy), and
// retired replicas whose backoff expired are recompiled. Each replica
// is handled under its exclusive lock, so maintenance never overlaps a
// run on the same replica while the rest of the pool keeps serving.
// Call it between batches, or from a background loop.
func (p *Pool) Maintain(ctx context.Context) error {
	for _, r := range p.replicas {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch r.state.Load() {
		case stateRetired:
			r.mu.Lock()
			if r.waitTicks > 0 {
				r.waitTicks--
				r.mu.Unlock()
				continue
			}
			r.mu.Unlock()
			p.recompileReplica(ctx, r)
		default:
			r.mu.RLock()
			clean := p.serveableLocked(r)
			r.mu.RUnlock()
			if !clean {
				p.scrubReplica(ctx, r)
			}
		}
	}
	p.updateHealthyGauge()
	return nil
}

// scrubReplica runs an online scrub under the replica's exclusive lock
// and either returns it to service or retires it. Reports whether the
// replica is serveable afterwards.
func (p *Pool) scrubReplica(ctx context.Context, r *replica) bool {
	r.mu.Lock()
	if r.sess == nil || r.state.Load() == stateRetired {
		r.mu.Unlock()
		return false
	}
	if r.suspect.Load() || !r.sess.Pristine() {
		rpt, err := r.sess.Scrub(ctx)
		if p.rec != nil {
			p.rec.AddScrub()
		}
		r.report = rpt
		if ctx.Err() != nil {
			// An interrupted scrub proves nothing about the hardware;
			// leave the replica for the next tick.
			r.mu.Unlock()
			return false
		}
		if err != nil || !rpt.Healthy(p.cfg.MaxUnmitigatedFrac) {
			p.retireLocked(r)
			r.mu.Unlock()
			p.updateHealthyGauge()
			return false
		}
		r.suspect.Store(false)
	}
	ok := p.serveableLocked(r)
	r.mu.Unlock()
	p.updateHealthyGauge()
	return ok
}

// recompileReplica rebuilds a retired replica through the factory under
// its exclusive lock. On failure the backoff doubles, bounded by
// BackoffMaxTicks. Reports whether the replica returned to service.
func (p *Pool) recompileReplica(ctx context.Context, r *replica) bool {
	r.mu.Lock()
	if r.state.Load() != stateRetired {
		ok := p.serveableLocked(r)
		r.mu.Unlock()
		return ok
	}
	sess, err := p.cfg.Factory(ctx)
	if err != nil {
		r.backoffTicks *= 2
		if r.backoffTicks < p.cfg.BackoffBaseTicks {
			r.backoffTicks = p.cfg.BackoffBaseTicks
		}
		if r.backoffTicks > p.cfg.BackoffMaxTicks {
			r.backoffTicks = p.cfg.BackoffMaxTicks
		}
		r.waitTicks = r.backoffTicks
		r.mu.Unlock()
		return false
	}
	r.sess = sess
	r.backoffTicks = 0
	r.waitTicks = 0
	r.suspect.Store(false)
	r.state.Store(stateActive)
	r.report = reliability.Report{}
	r.mu.Unlock()
	if p.rec != nil {
		p.rec.AddRecompile()
	}
	p.updateHealthyGauge()
	return true
}

// retireLocked pulls a replica from service. Caller holds r.mu
// exclusively. The session is dropped — a retired replica only returns
// through a fresh factory compile.
func (p *Pool) retireLocked(r *replica) {
	r.sess = nil
	r.state.Store(stateRetired)
	r.backoffTicks = p.cfg.BackoffBaseTicks
	r.waitTicks = r.backoffTicks
	if p.rec != nil {
		p.rec.AddRetirement()
	}
}

// Healthy returns how many replicas are currently serveable.
func (p *Pool) Healthy() int {
	n := 0
	for _, r := range p.replicas {
		r.mu.RLock()
		if p.serveableLocked(r) {
			n++
		}
		r.mu.RUnlock()
	}
	return n
}

// Replicas returns the pool size.
func (p *Pool) Replicas() int { return len(p.replicas) }

// PoolStats is a point-in-time occupancy snapshot of the pool: the
// replica state partition plus the number of runs executing right now.
// It is the introspection surface a serving tier's health endpoint
// reads directly, instead of inferring pool health from Prometheus
// text. Active + Suspect + Retired == Replicas always; Healthy is the
// subset of Active that is also pristine and would pass the router's
// serveability check this instant.
type PoolStats struct {
	// Replicas is the configured pool size.
	Replicas int `json:"replicas"`
	// Active counts replicas in service and not under suspicion;
	// Suspect counts in-service replicas awaiting a clearing scrub after
	// a failed attempt; Retired counts replicas awaiting recompile.
	Active  int `json:"active"`
	Suspect int `json:"suspect"`
	Retired int `json:"retired"`
	// Healthy counts replicas that would pass the serveability check
	// right now (active, not suspect, session pristine).
	Healthy int `json:"healthy"`
	// InFlight counts attempts currently executing on some replica.
	InFlight int64 `json:"in_flight"`
}

// Stats snapshots the pool occupancy. The state partition is read
// lock-free; Healthy takes each replica's shared lock briefly for the
// pristineness walk. Concurrent routing and maintenance may move
// replicas between fields mid-snapshot; callers wanting exact totals
// quiesce the pool first.
func (p *Pool) Stats() PoolStats {
	st := PoolStats{Replicas: len(p.replicas), InFlight: p.inflight.Load()}
	for _, r := range p.replicas {
		switch {
		case r.state.Load() == stateRetired:
			st.Retired++
		case r.suspect.Load():
			st.Suspect++
		default:
			st.Active++
		}
		r.mu.RLock()
		if p.serveableLocked(r) {
			st.Healthy++
		}
		r.mu.RUnlock()
	}
	return st
}

// Report returns replica i's last scrub report.
func (p *Pool) Report(i int) reliability.Report {
	r := p.replicas[i]
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.report
}

// updateHealthyGauge refreshes the healthy-replica gauge.
func (p *Pool) updateHealthyGauge() {
	if p.rec != nil {
		p.rec.SetHealthy(p.Healthy())
	}
}

// noteFailed counts a request that returned an error to the caller.
func (p *Pool) noteFailed() {
	if p.rec != nil {
		p.rec.AddFailed(1)
	}
}

// Kill drops replica i's session immediately — the chaos harness's
// crash fault. The replica re-enters service through the normal
// recompile path. Blocks until in-flight runs on the replica finish.
func (p *Pool) Kill(i int) {
	r := p.replicas[i]
	r.mu.Lock()
	if r.state.Load() != stateRetired {
		p.retireLocked(r)
	}
	r.mu.Unlock()
	p.updateHealthyGauge()
}

// AgeReplica advances replica i's retention clock by steps — a drift
// burst. The replica stops being pristine and is scrubbed back by the
// next Maintain (or inline rescue).
func (p *Pool) AgeReplica(i int, steps int64) {
	r := p.replicas[i]
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sess != nil {
		r.sess.AgeRetention(steps)
	}
}

// InjectStuck strikes replica i with permanently stuck devices at the
// given per-device fraction — in-service fault onset. Deterministic for
// a fixed seed. Returns the number of devices stuck.
func (p *Pool) InjectStuck(i int, seed uint64, fraction float64) int {
	r := p.replicas[i]
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sess == nil {
		return 0
	}
	return r.sess.InjectStuckFaults(seed, fraction, crossbar.StuckAP)
}

// InjectRunFaults arms replica i to fail its next n attempts after
// passing the serveability check — a detected mid-flight run fault,
// exercising the retry path without touching the arrays.
func (p *Pool) InjectRunFaults(i int, n int) {
	p.replicas[i].injectFail.Add(int32(n))
}
