package fleet

import (
	"fmt"

	"repro/internal/rng"
)

// This file is the deterministic chaos harness: a seeded generator of
// fault storms — drift bursts, stuck-device onset, replica kills,
// mid-flight run faults — that the resilience experiment replays
// against a pool between request waves. Everything is derived from one
// seed through internal/rng, so a storm is a pure value: the same seed
// always produces the same events in the same order, which is what lets
// the chaos gate assert bitwise-identical pool outputs under fire.

// EventKind enumerates the chaos fault classes.
type EventKind int

const (
	// EventNone is a quiet wave — no fault lands.
	EventNone EventKind = iota
	// EventDriftBurst ages a replica's retention clock by Steps.
	EventDriftBurst
	// EventStuckOnset strikes a replica with permanently stuck devices
	// at per-device fraction Fraction, seeded by Seed.
	EventStuckOnset
	// EventKill crashes a replica outright.
	EventKill
	// EventRunFault arms a replica to fail its next Count attempts —
	// a detected in-flight fault that exercises the retry path.
	EventRunFault
)

// MarshalJSON renders the kind by name, keeping the chaos record
// legible and stable if the enum is ever reordered.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventNone:
		return "none"
	case EventDriftBurst:
		return "drift-burst"
	case EventStuckOnset:
		return "stuck-onset"
	case EventKill:
		return "kill"
	case EventRunFault:
		return "run-fault"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one chaos fault aimed at one replica.
type Event struct {
	// Kind selects the fault class; Replica the target pool slot.
	Kind    EventKind `json:"kind"`
	Replica int       `json:"replica"`
	// Steps is the drift-burst magnitude (EventDriftBurst).
	Steps int64 `json:"steps,omitempty"`
	// Fraction and Seed parameterize stuck onset (EventStuckOnset).
	Fraction float64 `json:"fraction,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
	// Count is the number of armed run faults (EventRunFault).
	Count int `json:"count,omitempty"`
}

// StormConfig shapes a generated fault storm.
type StormConfig struct {
	// Waves is the number of storm slots (one event drawn per wave).
	Waves int
	// Replicas is the pool size events target.
	Replicas int
	// QuietFrac is the probability a wave draws no event (default 0.25
	// when the whole distribution is unset).
	QuietFrac float64
	// DriftSteps is the drift-burst magnitude (default 10000).
	DriftSteps int64
	// StuckFraction is the stuck-onset per-device fraction (default
	// 0.002).
	StuckFraction float64
	// RunFaults is the number of attempts an armed replica fails
	// (default 2).
	RunFaults int
}

// Storm generates the deterministic fault schedule for a seed. The
// event kinds form a balanced deck — quiet waves at QuietFrac, the
// remainder split evenly across drift bursts, stuck onsets, kills and
// run faults — shuffled by the seeded generator, so every fault class
// is guaranteed to appear (given enough waves) while ordering and
// targeting stay storm-random. Identical (seed, cfg) give identical
// storms on every platform.
func Storm(seed uint64, cfg StormConfig) []Event {
	if cfg.QuietFrac <= 0 {
		cfg.QuietFrac = 0.25
	}
	if cfg.DriftSteps <= 0 {
		cfg.DriftSteps = 10000
	}
	if cfg.StuckFraction <= 0 {
		cfg.StuckFraction = 0.002
	}
	if cfg.RunFaults <= 0 {
		cfg.RunFaults = 2
	}
	quiet := int(cfg.QuietFrac * float64(cfg.Waves))
	kinds := make([]EventKind, 0, cfg.Waves)
	for i := 0; i < quiet; i++ {
		kinds = append(kinds, EventNone)
	}
	faultKinds := []EventKind{EventDriftBurst, EventStuckOnset, EventKill, EventRunFault}
	for i := 0; len(kinds) < cfg.Waves; i++ {
		kinds = append(kinds, faultKinds[i%len(faultKinds)])
	}
	r := rng.New(seed)
	events := make([]Event, cfg.Waves)
	for w, di := range r.Perm(cfg.Waves) {
		e := Event{Kind: kinds[di], Replica: r.Intn(cfg.Replicas)}
		switch e.Kind {
		case EventDriftBurst:
			e.Steps = cfg.DriftSteps
		case EventStuckOnset:
			e.Fraction = cfg.StuckFraction
			e.Seed = r.Uint64()
		case EventRunFault:
			e.Count = cfg.RunFaults
		}
		events[w] = e
	}
	return events
}

// Apply lands one chaos event on the pool. Events targeting a dead
// replica degrade gracefully (ageing or striking nothing), exactly as a
// physical fault hitting a powered-off chip would.
func (p *Pool) Apply(e Event) {
	switch e.Kind {
	case EventDriftBurst:
		p.AgeReplica(e.Replica, e.Steps)
	case EventStuckOnset:
		p.InjectStuck(e.Replica, e.Seed, e.Fraction)
	case EventKill:
		p.Kill(e.Replica)
	case EventRunFault:
		p.InjectRunFaults(e.Replica, e.Count)
	}
}
