package fleet

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/crossbar"
	"repro/internal/device"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/reliability"
	"repro/internal/rng"
)

// cachedTestFactory is testFactory routed through a chip-image cache:
// same chip seed, same options, so rehydrated replicas must reproduce
// compiled ones bit for bit.
func cachedTestFactory(t *testing.T, cache *image.Cache) Factory {
	t.Helper()
	c, _ := fleetFixture(t)
	newChip := func() *arch.Chip {
		chip := arch.NewChip(device.DefaultParams(), crossbar.Config{ReadNoiseSigma: 0.05}, rng.New(91))
		chip.Rel = &reliability.Config{
			Protection: reliability.ProtectSpareRemap,
			Policy:     reliability.DefaultPolicy(),
		}
		return chip
	}
	return CachedFactory(newChip, c, cache,
		arch.WithMode(arch.ModeSNN),
		arch.WithTimesteps(10),
		arch.WithSeed(fleetSeed))
}

// TestCachedFactoryPoolMatchesStandalone builds a pool whose replicas
// rehydrate from the image cache and checks the determinism contract
// holds across a kill + recompile cycle: every output is bitwise
// identical to the standalone compiled session, and the recompile after
// the kill is served from the cache.
func TestCachedFactoryPoolMatchesStandalone(t *testing.T) {
	ctx := context.Background()
	imgs := fleetImages(t, 6)
	want := goldenRuns(t, imgs)

	rec := &obs.CacheRecorder{}
	cache, err := image.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache.SetMetrics(rec)

	pool, err := NewPool(ctx, Config{Replicas: 2, Factory: cachedTestFactory(t, cache), Seed: fleetSeed})
	if err != nil {
		t.Fatal(err)
	}
	st := rec.Stats()
	if st.Misses != 1 || st.Stores != 1 || st.Hits != 1 {
		t.Fatalf("after pool build: stats %+v, want 1 miss, 1 store, 1 hit (second replica rehydrated)", st)
	}

	for i := 0; i < 3; i++ {
		got, err := pool.Run(ctx, imgs[i])
		if err != nil {
			t.Fatal(err)
		}
		assertSameBits(t, "cached pool", i, want[i], got)
	}

	// Kill one replica; the maintenance recompile must come out of the
	// cache, and the rehydrated replica must still match bit for bit.
	pool.Kill(0)
	if err := pool.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	// First tick decrements backoff; second recompiles.
	if err := pool.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	if pool.Healthy() != 2 {
		t.Fatalf("after kill + maintain: %d healthy, want 2", pool.Healthy())
	}
	st = rec.Stats()
	if st.Hits != 2 {
		t.Fatalf("after recompile: %d cache hits, want 2 (recompile rehydrated)", st.Hits)
	}
	for i := 3; i < len(imgs); i++ {
		got, err := pool.Run(ctx, imgs[i])
		if err != nil {
			t.Fatal(err)
		}
		assertSameBits(t, "cached pool post-recompile", i, want[i], got)
	}
}
