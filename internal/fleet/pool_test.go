package fleet

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/arch"
	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/reliability"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/train"
)

// fleetSeed seeds both the pool parent and the standalone reference
// session, which is what makes their outputs comparable bit for bit.
const fleetSeed = 42

// Shared trained fixture: one small converted model every pool test
// compiles replicas from.
var (
	fixOnce sync.Once
	fixConv *convert.Converted
	fixTest *dataset.Dataset
)

func fleetFixture(t *testing.T) (*convert.Converted, *dataset.Dataset) {
	t.Helper()
	fixOnce.Do(func() {
		tr, te := dataset.TrainTest(dataset.MNISTLike, 200, 40, 77)
		net := models.NewMLP3(1, 16, 10, rng.New(5))
		cfg := train.DefaultConfig()
		cfg.Epochs = 4
		train.Run(net, tr, te, cfg)
		var err error
		fixConv, err = convert.Convert(net, tr, convert.DefaultConfig())
		if err != nil {
			panic(err)
		}
		fixTest = te
	})
	return fixConv, fixTest
}

// testFactory compiles interchangeable replicas: identical chip seed,
// identical options, read noise switched on so the per-request noise
// streams are load-bearing (any stream misrouting under concurrency or
// failover shows up as a bitwise mismatch).
func testFactory(c *convert.Converted) Factory {
	return func(ctx context.Context) (*arch.Session, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chip := arch.NewChip(device.DefaultParams(), crossbar.Config{ReadNoiseSigma: 0.05}, rng.New(91))
		chip.Rel = &reliability.Config{
			Protection: reliability.ProtectSpareRemap,
			Policy:     reliability.DefaultPolicy(),
		}
		return chip.Compile(c,
			arch.WithMode(arch.ModeSNN),
			arch.WithTimesteps(10),
			arch.WithSeed(fleetSeed))
	}
}

func fleetImages(t *testing.T, n int) []*tensor.Tensor {
	t.Helper()
	_, te := fleetFixture(t)
	imgs := make([]*tensor.Tensor, n)
	for i := range imgs {
		imgs[i], _ = te.Sample(i)
	}
	return imgs
}

// goldenRuns produces the reference outputs: a standalone session with
// the pool's seed, run sequentially.
func goldenRuns(t *testing.T, imgs []*tensor.Tensor) []*arch.RunResult {
	t.Helper()
	c, _ := fleetFixture(t)
	sess, err := testFactory(c)(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*arch.RunResult, len(imgs))
	for i, img := range imgs {
		out[i], err = sess.Run(context.Background(), img)
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func assertSameBits(t *testing.T, label string, i int, want, got *arch.RunResult) {
	t.Helper()
	wd, gd := want.Output.Data(), got.Output.Data()
	if len(wd) != len(gd) {
		t.Fatalf("%s: input %d: output size %d, want %d", label, i, len(gd), len(wd))
	}
	for j := range wd {
		if math.Float64bits(wd[j]) != math.Float64bits(gd[j]) {
			t.Fatalf("%s: input %d col %d: %v != %v (pool result not bitwise identical)",
				label, i, j, gd[j], wd[j])
		}
	}
}

func TestPoolRunMatchesStandaloneSession(t *testing.T) {
	c, _ := fleetFixture(t)
	ctx := context.Background()
	imgs := fleetImages(t, 6)
	want := goldenRuns(t, imgs)
	pool, err := NewPool(ctx, Config{Replicas: 2, Factory: testFactory(c), Seed: fleetSeed})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Replicas() != 2 || pool.Healthy() != 2 {
		t.Fatalf("fresh pool: %d replicas, %d healthy", pool.Replicas(), pool.Healthy())
	}
	for i, img := range imgs {
		got, err := pool.Run(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		assertSameBits(t, "run", i, want[i], got)
	}
}

// TestPoolRunBatchDeterministicUnderFailover is the keystone of the
// determinism contract: batches at parallelism 1, 4 and NumCPU, with
// run faults armed and a replica killed mid-batch, still reproduce the
// standalone sequential session bit for bit.
func TestPoolRunBatchDeterministicUnderFailover(t *testing.T) {
	c, _ := fleetFixture(t)
	ctx := context.Background()
	imgs := fleetImages(t, 8)
	want := goldenRuns(t, imgs)
	for _, par := range []int{1, 4, runtime.NumCPU()} {
		rec := &obs.FleetRecorder{}
		pool, err := NewPool(ctx, Config{
			Replicas:    3,
			Factory:     testFactory(c),
			Seed:        fleetSeed,
			Parallelism: par,
			Rec:         rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Arm a detected run fault on replica 0 and crash replica 1
		// concurrently with the batch: requests must fail over without
		// perturbing a single output bit.
		pool.InjectRunFaults(0, 2)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.Kill(1)
		}()
		got, err := pool.RunBatch(ctx, imgs)
		wg.Wait()
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for i := range got {
			assertSameBits(t, "batch", i, want[i], got[i])
		}
		s := rec.Stats()
		if s.Served != int64(len(imgs)) {
			t.Fatalf("parallelism %d: served %d, want %d", par, s.Served, len(imgs))
		}
		if s.Retries == 0 {
			t.Fatalf("parallelism %d: injected run fault triggered no retry: %+v", par, s)
		}
		if s.Retirements != 1 {
			t.Fatalf("parallelism %d: kill recorded %d retirements: %+v", par, s.Retirements, s)
		}
	}
}

func TestPoolRetryBudgetExhaustedSurfaces(t *testing.T) {
	c, _ := fleetFixture(t)
	ctx := context.Background()
	imgs := fleetImages(t, 1)
	rec := &obs.FleetRecorder{}
	pool, err := NewPool(ctx, Config{
		Replicas: 1, Factory: testFactory(c), Seed: fleetSeed,
		RetryBudget: 1, Rec: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// More armed faults than the budget: every attempt fails, including
	// the ones served after an inline rescue scrub clears the suspect.
	pool.InjectRunFaults(0, 5)
	if _, err := pool.Run(ctx, imgs[0]); !errors.Is(err, ErrExhausted) {
		t.Fatalf("got %v, want ErrExhausted", err)
	}
	s := rec.Stats()
	if s.Failed != 1 || s.Retries != 1 || s.Served != 0 {
		t.Fatalf("exhaustion bookkeeping wrong: %+v", s)
	}
	if s.ScrubCycles == 0 {
		t.Fatalf("single-replica retry never took the rescue scrub path: %+v", s)
	}
}

func TestPoolRescueRecompilesWhenAllReplicasDead(t *testing.T) {
	c, _ := fleetFixture(t)
	ctx := context.Background()
	imgs := fleetImages(t, 1)
	want := goldenRuns(t, imgs)
	rec := &obs.FleetRecorder{}
	pool, err := NewPool(ctx, Config{Replicas: 2, Factory: testFactory(c), Seed: fleetSeed, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	pool.Kill(0)
	pool.Kill(1)
	if pool.Healthy() != 0 {
		t.Fatalf("killed pool reports %d healthy", pool.Healthy())
	}
	// With the whole pool dead, Run must rescue via an emergency
	// recompile rather than fail — and still match the golden bits.
	got, err := pool.Run(ctx, imgs[0])
	if err != nil {
		t.Fatal(err)
	}
	assertSameBits(t, "rescue", 0, want[0], got)
	s := rec.Stats()
	if s.Retirements != 2 || s.Recompiles == 0 {
		t.Fatalf("rescue bookkeeping wrong: %+v", s)
	}
	if pool.Healthy() == 0 {
		t.Fatal("rescue left no healthy replica")
	}
}

func TestPoolMaintainScrubsDriftedReplica(t *testing.T) {
	c, _ := fleetFixture(t)
	ctx := context.Background()
	imgs := fleetImages(t, 4)
	want := goldenRuns(t, imgs)
	rec := &obs.FleetRecorder{}
	pool, err := NewPool(ctx, Config{Replicas: 2, Factory: testFactory(c), Seed: fleetSeed, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	pool.AgeReplica(0, 20000)
	if pool.Healthy() != 1 {
		t.Fatalf("drifted replica still serveable: %d healthy", pool.Healthy())
	}
	if err := pool.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	if pool.Healthy() != 2 {
		t.Fatalf("maintenance did not restore the drifted replica: %d healthy", pool.Healthy())
	}
	if s := rec.Stats(); s.ScrubCycles != 1 || s.Retirements != 0 {
		t.Fatalf("maintenance bookkeeping wrong: %+v", s)
	}
	for i, img := range imgs {
		got, err := pool.Run(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		assertSameBits(t, "post-scrub", i, want[i], got)
	}
}

func TestPoolMaintainRetiresFaultedReplicaWithBackoff(t *testing.T) {
	c, _ := fleetFixture(t)
	ctx := context.Background()
	base := testFactory(c)
	var fabDown atomic.Bool
	var calls atomic.Int32
	factory := func(ctx context.Context) (*arch.Session, error) {
		calls.Add(1)
		if fabDown.Load() {
			return nil, errors.New("fab down")
		}
		return base(ctx)
	}
	rec := &obs.FleetRecorder{}
	pool, err := NewPool(ctx, Config{
		Replicas: 2, Factory: factory, Seed: fleetSeed,
		BackoffBaseTicks: 1, BackoffMaxTicks: 2, Rec: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	compiles := calls.Load() // the two construction compiles

	// Heavy stuck onset: the strict default threshold (any residual
	// fault) retires the replica at the next maintenance tick.
	fabDown.Store(true)
	if n := pool.InjectStuck(0, 99, 0.2); n == 0 {
		t.Fatal("stuck injection struck nothing")
	}
	if err := pool.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	if s := rec.Stats(); s.Retirements != 1 || s.ScrubCycles != 1 {
		t.Fatalf("faulted replica not retired by maintenance: %+v", s)
	}
	if pool.Healthy() != 1 {
		t.Fatalf("pool health after retirement: %d, want 1", pool.Healthy())
	}

	// Backoff schedule with base 1, max 2: tick 1 waits, tick 2
	// attempts (fails, backoff doubles to 2), ticks 3-4 wait, tick 5
	// attempts again — recompile attempts must not run every tick.
	attempts := func() int32 { return calls.Load() - compiles }
	for tick, wantAttempts := range []int32{0, 1, 1, 1, 2} {
		if err := pool.Maintain(ctx); err != nil {
			t.Fatal(err)
		}
		if got := attempts(); got != wantAttempts {
			t.Fatalf("after tick %d: %d recompile attempts, want %d", tick+1, got, wantAttempts)
		}
	}

	// Fab back up: the next due attempt returns the replica to service.
	fabDown.Store(false)
	for i := 0; i < 3 && pool.Healthy() < 2; i++ {
		if err := pool.Maintain(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if pool.Healthy() != 2 {
		t.Fatalf("recompile did not restore the pool: %d healthy", pool.Healthy())
	}
	if s := rec.Stats(); s.Recompiles != 1 {
		t.Fatalf("recompile bookkeeping wrong: %+v", s)
	}
}

// TestPoolReservedTicketsDeterministicOutOfOrder is the serving-tier
// contract: tickets reserved in admission order and redeemed in any
// order — here, reversed and concurrently — still reproduce the
// standalone sequential session bit for bit.
func TestPoolReservedTicketsDeterministicOutOfOrder(t *testing.T) {
	c, _ := fleetFixture(t)
	ctx := context.Background()
	imgs := fleetImages(t, 6)
	want := goldenRuns(t, imgs)
	pool, err := NewPool(ctx, Config{Replicas: 2, Factory: testFactory(c), Seed: fleetSeed})
	if err != nil {
		t.Fatal(err)
	}

	tickets := make([]Ticket, len(imgs))
	for i := range imgs {
		tickets[i] = pool.ReserveTicket()
	}

	got := make([]*arch.RunResult, len(imgs))
	var wg sync.WaitGroup
	for i := len(imgs) - 1; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := pool.ServeReserved(ctx, imgs[i], tickets[i])
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = res
		}(i)
	}
	wg.Wait()
	for i := range imgs {
		assertSameBits(t, "reserved", i, want[i], got[i])
	}
}

// TestPoolStatsSnapshot checks the occupancy partition a serving tier's
// health endpoint reads: fresh pools are all-active, a killed replica
// moves to retired, and the partition always sums to Replicas.
func TestPoolStatsSnapshot(t *testing.T) {
	c, _ := fleetFixture(t)
	ctx := context.Background()
	pool, err := NewPool(ctx, Config{Replicas: 2, Factory: testFactory(c), Seed: fleetSeed})
	if err != nil {
		t.Fatal(err)
	}
	s := pool.Stats()
	if s.Replicas != 2 || s.Active != 2 || s.Healthy != 2 || s.Suspect != 0 || s.Retired != 0 {
		t.Fatalf("fresh pool stats: %+v", s)
	}
	if s.InFlight != 0 {
		t.Fatalf("fresh pool in-flight: %d, want 0", s.InFlight)
	}

	pool.Kill(0)
	s = pool.Stats()
	if s.Retired != 1 || s.Active != 1 || s.Healthy != 1 {
		t.Fatalf("post-kill stats: %+v", s)
	}
	if s.Active+s.Suspect+s.Retired != s.Replicas {
		t.Fatalf("partition does not sum: %+v", s)
	}

	// Report is per-replica introspection; a fresh replica's compile
	// BIST left no pair unmitigated.
	if r := pool.Report(1); r.Unmitigated != 0 {
		t.Fatalf("fresh replica scrub report: %+v", r)
	}
}
