// Package replay drives the Table III energy model with recorded spike
// traces instead of window-mean rates, producing instantaneous power
// profiles of spiking inference — the event-driven power variation behind
// the paper's peak-vs-average power discussion (§VI-C1).
//
// The flow: train a network, convert it (package convert), record a
// per-timestep trace with snn.Network.RunTraced, derive the network's
// layer shapes with models.FromNetwork, and Replay the trace through the
// energy model. Because each timestep is charged with its actual spike
// counts, the result exposes the temporal structure mean-rate analysis
// averages away.
package replay

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/snn"
)

// Result is a trace-driven energy/power replay.
type Result struct {
	// StepPowerW[t] is the chip power during timestep t.
	StepPowerW []float64
	// StepEnergyJ[t] is the energy of timestep t.
	StepEnergyJ []float64
	// EnergyJ is the total inference energy.
	EnergyJ float64
	// MeanPowerW and PeakStepPowerW summarize the profile.
	MeanPowerW, PeakStepPowerW float64
	// TimeS is the wall-clock inference time.
	TimeS float64
}

// Replay charges each timestep of the trace with its actual layer input
// and output rates. The workload's weighted layers must correspond 1:1 to
// the trace's weighted stateful layers (the natural outcome of converting
// the same network the workload was derived from).
func Replay(m *energy.Model, w models.Workload, tr *snn.Trace) (*Result, error) {
	np := mapping.MapWorkload(w)
	// Indices of weighted trace layers.
	var weightedIdx []int
	for i, isW := range tr.Weighted {
		if isW {
			weightedIdx = append(weightedIdx, i)
		}
	}
	// The converted network's read-out layer is a non-firing accumulator
	// (snn.Output), so the trace records one fewer weighted stage than
	// the workload has weighted layers.
	if len(weightedIdx) != len(np.Placements)-1 {
		return nil, fmt.Errorf("replay: trace has %d weighted IF stages, workload needs %d",
			len(weightedIdx), len(np.Placements)-1)
	}
	rates := tr.Rates()
	inRates := tr.InputRates()
	res := &Result{}
	for t := 0; t < tr.Timesteps(); t++ {
		var stepE, stepT float64
		for li, p := range np.Placements {
			// Input rate: the stateful layer immediately before this
			// weighted layer in trace order (pool or previous
			// conv/dense); the encoder for the first layer.
			var in, out float64
			switch {
			case li == 0:
				in = inRates[t]
				out = rates[t][weightedIdx[0]]
			case li < len(weightedIdx):
				in = rates[t][weightedIdx[li]-1]
				out = rates[t][weightedIdx[li]]
			default:
				// Read-out accumulator: driven by the last IF stage,
				// emits no spikes.
				in = rates[t][len(rates[t])-1]
				out = 0
			}
			rep := m.SNNLayer(p, 1, in, out)
			stepE += rep.Total()
			stepT += rep.TimeS
		}
		res.StepEnergyJ = append(res.StepEnergyJ, stepE)
		if stepT > 0 {
			res.StepPowerW = append(res.StepPowerW, stepE/stepT)
		} else {
			res.StepPowerW = append(res.StepPowerW, 0)
		}
		res.EnergyJ += stepE
		res.TimeS += stepT
		if p := res.StepPowerW[t]; p > res.PeakStepPowerW {
			res.PeakStepPowerW = p
		}
	}
	if res.TimeS > 0 {
		res.MeanPowerW = res.EnergyJ / res.TimeS
	}
	return res, nil
}
