package replay

import (
	"math"
	"sync"
	"testing"

	"repro/internal/convert"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/train"
)

var (
	once sync.Once
	fixC *convert.Converted
	fixW models.Workload
	fixD *dataset.Dataset
)

func fixture(t *testing.T) (*convert.Converted, models.Workload, *dataset.Dataset) {
	t.Helper()
	once.Do(func() {
		tr, te := dataset.TrainTest(dataset.MNISTLike, 300, 80, 61)
		fixD = te
		net := models.NewLeNet5(1, 16, 10, rng.New(13))
		cfg := train.DefaultConfig()
		cfg.Epochs = 5
		train.Run(net, tr, te, cfg)
		var err error
		fixC, err = convert.Convert(net, tr, convert.DefaultConfig())
		if err != nil {
			panic(err)
		}
		fixW, err = models.FromNetwork("lenet5-scaled", net, 1, 16, 16)
		if err != nil {
			panic(err)
		}
	})
	return fixC, fixW, fixD
}

func TestFromNetworkShapes(t *testing.T) {
	_, w, _ := fixture(t)
	weighted := w.WeightedLayers()
	// Scaled LeNet: 2 conv + 2 fc.
	if len(weighted) != 4 {
		t.Fatalf("weighted layers %d", len(weighted))
	}
	if weighted[0].Kind != models.Conv || weighted[0].InC != 1 {
		t.Fatalf("first layer %+v", weighted[0])
	}
	if weighted[3].Kind != models.FC || weighted[3].OutC != 10 {
		t.Fatalf("last layer %+v", weighted[3])
	}
	// Pooling layers must appear between the convolutions.
	pools := 0
	for _, l := range w.Layers {
		if l.Kind == models.AvgPool {
			pools++
		}
	}
	if pools != 2 {
		t.Fatalf("pool layers %d", pools)
	}
}

func TestFromNetworkDepthwise(t *testing.T) {
	r := rng.New(1)
	net := models.NewMobileNetV1(3, 16, 10, r)
	w, err := models.FromNetwork("mobilenet-scaled", net, 3, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	dw := 0
	for _, l := range w.WeightedLayers() {
		if l.Kind == models.DWConv {
			dw++
		}
	}
	if dw != 5 {
		t.Fatalf("depthwise layers %d, want 5", dw)
	}
}

func TestTraceRecordsSteps(t *testing.T) {
	c, _, d := fixture(t)
	img, _ := d.Sample(0)
	const T = 40
	res, tr := c.SNN.RunTraced(img, T, snn.NewPoissonEncoder(1.0, rng.New(3)))
	if tr.Timesteps() != T {
		t.Fatalf("trace length %d", tr.Timesteps())
	}
	if len(tr.LayerNames) == 0 || len(tr.Weighted) != len(tr.LayerNames) {
		t.Fatalf("trace metadata broken: %+v", tr.LayerNames)
	}
	// Per-step counts must sum to the run totals for stateful layers.
	var traceTotal float64
	for _, row := range tr.Steps {
		for _, v := range row {
			traceTotal += v
		}
	}
	var runTotal float64
	for _, s := range res.LayerSpikes {
		runTotal += s
	}
	if math.Abs(traceTotal-runTotal) > 1e-9 {
		t.Fatalf("trace total %v != run total %v", traceTotal, runTotal)
	}
	// Rates must be within [0, 1].
	for t2, row := range tr.Rates() {
		for l, r := range row {
			if r < 0 || r > 1 {
				t.Fatalf("rate[%d][%d] = %v", t2, l, r)
			}
		}
	}
}

func TestReplayMatchesMeanRateModel(t *testing.T) {
	// Total replayed energy must land near the mean-rate analytic model
	// fed with the same run's average activity.
	c, w, d := fixture(t)
	img, _ := d.Sample(1)
	const T = 60
	_, tr := c.SNN.RunTraced(img, T, snn.NewPoissonEncoder(1.0, rng.New(5)))

	m := energy.NewModel()
	m.SNNParallelism = 1 // per-step replay has no cross-step replication
	rep, err := Replay(m, w, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EnergyJ <= 0 || len(rep.StepPowerW) != T {
		t.Fatalf("degenerate replay %+v", rep)
	}

	// Mean-rate comparison: average the trace into a profile.
	np := mapping.MapWorkload(w)
	rates := tr.Rates()
	var weightedIdx []int
	for i, isW := range tr.Weighted {
		if isW {
			weightedIdx = append(weightedIdx, i)
		}
	}
	profile := make([]float64, len(weightedIdx)+2)
	inMean := 0.0
	for _, v := range tr.InputRates() {
		inMean += v
	}
	profile[0] = inMean / float64(T)
	for li := range weightedIdx {
		mean := 0.0
		for t2 := 0; t2 < T; t2++ {
			mean += rates[t2][weightedIdx[li]]
		}
		profile[li+1] = mean / float64(T)
	}
	analytic := m.SNNNetwork(np, T, profile)
	ratio := rep.EnergyJ / analytic.EnergyJ
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("replay %.3g J vs mean-rate %.3g J (ratio %.2f)", rep.EnergyJ, analytic.EnergyJ, ratio)
	}
}

func TestReplayPowerVaries(t *testing.T) {
	// Event-driven power should vary step to step — the profile is the
	// point of trace replay.
	c, w, d := fixture(t)
	img, _ := d.Sample(2)
	_, tr := c.SNN.RunTraced(img, 50, snn.NewPoissonEncoder(1.0, rng.New(7)))
	m := energy.NewModel()
	m.SNNParallelism = 1
	rep, err := Replay(m, w, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakStepPowerW <= rep.MeanPowerW {
		t.Fatalf("peak step power %v not above mean %v", rep.PeakStepPowerW, rep.MeanPowerW)
	}
	minP := rep.StepPowerW[0]
	maxP := rep.StepPowerW[0]
	for _, p := range rep.StepPowerW {
		if p < minP {
			minP = p
		}
		if p > maxP {
			maxP = p
		}
	}
	if maxP-minP <= 0 {
		t.Fatal("power profile is flat")
	}
}

func TestReplayRejectsMismatchedTrace(t *testing.T) {
	c, _, d := fixture(t)
	img, _ := d.Sample(0)
	_, tr := c.SNN.RunTraced(img, 5, snn.NewPoissonEncoder(1.0, rng.New(1)))
	wrong := models.FullVGG13(10, 300, 91.6, 90.05) // 12 weighted vs LeNet's 4
	if _, err := Replay(energy.NewModel(), wrong, tr); err == nil {
		t.Fatal("mismatched workload accepted")
	}
}
