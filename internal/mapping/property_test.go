package mapping

import (
	"testing"
	"testing/quick"

	"repro/internal/models"
)

// randomLayer builds a random but valid weighted layer from fuzz inputs.
func randomLayer(kindRaw, inCRaw, outCRaw, kRaw, sizeRaw uint8) models.LayerShape {
	k := []int{1, 3, 5, 7}[kRaw%4]
	inC := int(inCRaw)%512 + 1
	outC := int(outCRaw)%1024 + 1
	size := int(sizeRaw)%32 + k // ensure the kernel fits
	switch kindRaw % 3 {
	case 0:
		return models.LayerShape{Kind: models.Conv, InC: inC, OutC: outC,
			K: k, Stride: 1, Pad: k / 2, InH: size, InW: size}
	case 1:
		return models.LayerShape{Kind: models.DWConv, InC: inC, OutC: inC,
			K: k, Stride: 1, Pad: k / 2, InH: size, InW: size}
	default:
		return models.LayerShape{Kind: models.FC, InC: inC * 8, OutC: outC, InH: 1, InW: 1}
	}
}

// TestPlacementInvariants checks structural invariants of Map over random
// layer shapes: resource lower bounds, utilization bounds, level/stack
// consistency, and ADC-path consistency.
func TestPlacementInvariants(t *testing.T) {
	f := func(kindRaw, inCRaw, outCRaw, kRaw, sizeRaw uint8) bool {
		l := randomLayer(kindRaw, inCRaw, outCRaw, kRaw, sizeRaw)
		p := Map(l)
		rf := l.Rf()
		// Stack must exactly cover the receptive field.
		if p.StackHeight != (rf+M-1)/M {
			return false
		}
		// Sets must exactly cover the kernels.
		if p.Sets != (l.Kernels()+M-1)/M {
			return false
		}
		// ACs = stack × sets.
		if p.ACsUsed != p.StackHeight*p.Sets {
			return false
		}
		// Utilization in (0, 1].
		if p.Utilization <= 0 || p.Utilization > 1+1e-12 {
			return false
		}
		// Level consistency with the stack height.
		switch {
		case p.StackHeight <= 1 && p.Level != LevelH0:
			return false
		case p.StackHeight > 1 && p.StackHeight <= ACsPerTile && p.Level != LevelH1:
			return false
		case p.StackHeight > ACsPerTile && p.StackHeight <= ACsPerNC && p.Level != LevelH2:
			return false
		case p.StackHeight > ACsPerNC && p.Level != LevelADC:
			return false
		}
		// ADC path ⇔ conversions > 0, and spill ⇔ ADC.
		if p.NeedsADC() != (p.ADCConversionsPerEval > 0) {
			return false
		}
		if (p.NCSpill > 1) != p.NeedsADC() {
			return false
		}
		// Evaluations: spatial positions (≥1).
		if p.Evaluations < 1 {
			return false
		}
		// Latency must be positive and at least evaluations × cycle.
		if p.LatencyNS() < float64(p.Evaluations)*CycleNS {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestFixedVsMorphableProperty: the morphable mapping never provisions
// more synapse cells than a fixed array of the atomic size for the same
// layer (it can merge but never fragments below 128×128 granularity).
func TestFixedVsMorphableProperty(t *testing.T) {
	f := func(kindRaw, inCRaw, outCRaw, kRaw, sizeRaw uint8) bool {
		l := randomLayer(kindRaw, inCRaw, outCRaw, kRaw, sizeRaw)
		mp := Map(l)
		fp := MapFixed(l, M)
		// Same atomic granularity ⇒ same cell count.
		return mp.ACsUsed == fp.ArraysUsed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestNEBULAAvoidsADCMoreOftenProperty: for any layer, if the fixed-array
// baseline avoids digitization then so does NEBULA (never the reverse
// before the 16M limit).
func TestNEBULAAvoidsADCMoreOftenProperty(t *testing.T) {
	f := func(kindRaw, inCRaw, outCRaw, kRaw, sizeRaw uint8) bool {
		l := randomLayer(kindRaw, inCRaw, outCRaw, kRaw, sizeRaw)
		mp := Map(l)
		fp := MapFixed(l, M)
		if fp.ADCConversionsPerEval == 0 && mp.ADCConversionsPerEval > 0 {
			return false // NEBULA digitized where a single array sufficed
		}
		if l.Rf() <= MaxRowsPerNC && mp.NeedsADC() {
			return false // in-core kernels never digitize
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
