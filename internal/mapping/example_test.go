package mapping_test

import (
	"fmt"

	"repro/internal/mapping"
	"repro/internal/models"
)

// Map the first VGG layer: its 27-row receptive field fits one atomic
// crossbar, thresholded at hierarchy level H0.
func ExampleMap() {
	l := models.LayerShape{
		Name: "conv1_1", Kind: models.Conv,
		InC: 3, OutC: 64, K: 3, Stride: 1, Pad: 1, InH: 32, InW: 32,
	}
	p := mapping.Map(l)
	fmt.Printf("Rf=%d level=%s ACs=%d util=%.4f adc=%v\n",
		l.Rf(), p.Level, p.ACsUsed, p.Utilization, p.NeedsADC())
	// Output: Rf=27 level=H0 ACs=1 util=0.1055 adc=false
}

// A 4608-row kernel exceeds the 16M super-tile limit and spills across
// neural cores on the ADC path.
func ExampleMap_spill() {
	l := models.LayerShape{
		Name: "conv5_1", Kind: models.Conv,
		InC: 512, OutC: 512, K: 3, Stride: 1, Pad: 1, InH: 2, InW: 2,
	}
	p := mapping.Map(l)
	fmt.Printf("Rf=%d level=%s spill=%d cores\n", l.Rf(), p.Level, p.NCSpill)
	// Output: Rf=4608 level=ADC spill=3 cores
}
