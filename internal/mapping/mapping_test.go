package mapping

import (
	"testing"

	"repro/internal/models"
)

func layer(kind models.LayerKind, inC, outC, k, inH int) models.LayerShape {
	return models.LayerShape{Kind: kind, InC: inC, OutC: outC, K: k, Stride: 1, Pad: k / 2, InH: inH, InW: inH}
}

func TestLevelSelection(t *testing.T) {
	cases := []struct {
		rf    int
		level NULevel
		stack int
	}{
		{27, LevelH0, 1},     // VGG conv1_1: 3×3×3
		{128, LevelH0, 1},    // exactly M
		{129, LevelH1, 2},    // just over M
		{512, LevelH1, 4},    // exactly 4M
		{513, LevelH2, 5},    // just over 4M
		{2048, LevelH2, 16},  // exactly 16M
		{2049, LevelADC, 17}, // just over 16M
		{4608, LevelADC, 36}, // VGG conv5: 3×3×512
	}
	for _, c := range cases {
		// Build an FC layer with InC = rf to get the wanted Rf exactly.
		l := models.LayerShape{Kind: models.FC, InC: c.rf, OutC: 10, InH: 1, InW: 1}
		p := Map(l)
		if p.Level != c.level {
			t.Fatalf("Rf=%d: level %v, want %v", c.rf, p.Level, c.level)
		}
		if p.StackHeight != c.stack {
			t.Fatalf("Rf=%d: stack %d, want %d", c.rf, p.StackHeight, c.stack)
		}
	}
}

func TestVGGFirstLayerUtilization(t *testing.T) {
	// §IV-B2: the first VGG layer uses only 27×64 of a 128×128 array.
	l := layer(models.Conv, 3, 64, 3, 32)
	p := Map(l)
	if p.ACsUsed != 1 {
		t.Fatalf("ACs used %d, want 1", p.ACsUsed)
	}
	want := 27.0 * 64 / (128 * 128)
	if p.Utilization != want {
		t.Fatalf("utilization %v, want %v", p.Utilization, want)
	}
	if p.NeedsADC() {
		t.Fatal("small layer must not need ADC")
	}
}

func TestLargeFCSpillsAcrossNCs(t *testing.T) {
	// AlexNet fc1: 9216 inputs → stack = 72 ACs > 16 → spill to 5 NCs
	// per kernel slice.
	l := models.LayerShape{Kind: models.FC, InC: 9216, OutC: 4096, InH: 1, InW: 1}
	p := Map(l)
	if !p.NeedsADC() {
		t.Fatal("9216-row kernel must need ADC")
	}
	if p.NCSpill != 5 { // ceil(72/16)
		t.Fatalf("NC spill %d, want 5", p.NCSpill)
	}
	if p.Sets != 32 { // ceil(4096/128)
		t.Fatalf("sets %d, want 32", p.Sets)
	}
	if p.ADCConversionsPerEval != 4096*5 {
		t.Fatalf("ADC conversions %d", p.ADCConversionsPerEval)
	}
}

func TestDepthwiseConvTinyRf(t *testing.T) {
	l := models.LayerShape{Kind: models.DWConv, InC: 512, OutC: 512, K: 3, Stride: 1, Pad: 1, InH: 8, InW: 8}
	p := Map(l)
	if p.Level != LevelH0 {
		t.Fatalf("depthwise level %v, want H0", p.Level)
	}
	if p.StackHeight != 1 {
		t.Fatalf("stack %d", p.StackHeight)
	}
	// Depthwise utilization is intrinsically low (Rf = 9 of 128 rows).
	if p.Utilization > 0.1 {
		t.Fatalf("depthwise utilization suspiciously high: %v", p.Utilization)
	}
}

func TestEvaluationsConvVsFC(t *testing.T) {
	conv := layer(models.Conv, 64, 64, 3, 16)
	if p := Map(conv); p.Evaluations != 16*16 {
		t.Fatalf("conv evaluations %d", p.Evaluations)
	}
	fc := models.LayerShape{Kind: models.FC, InC: 512, OutC: 10, InH: 1, InW: 1}
	if p := Map(fc); p.Evaluations != 1 {
		t.Fatalf("fc evaluations %d", p.Evaluations)
	}
}

func TestPoolPlacementEmpty(t *testing.T) {
	pool := models.LayerShape{Kind: models.AvgPool, InC: 64, OutC: 64, K: 2, Stride: 2, InH: 32, InW: 32}
	p := Map(pool)
	if p.ACsUsed != 0 || p.NeedsADC() {
		t.Fatalf("pool placement %+v", p)
	}
	if p.Evaluations != 16*16 {
		t.Fatalf("pool evaluations %d", p.Evaluations)
	}
}

func TestLatencyIncludesReduction(t *testing.T) {
	small := Map(layer(models.Conv, 3, 64, 3, 32))
	big := Map(models.LayerShape{Kind: models.FC, InC: 9216, OutC: 10, InH: 1, InW: 1})
	if big.LatencyNS() <= small.LatencyNS()-float64(small.Evaluations-1)*CycleNS {
		t.Fatal("ADC path must add pipeline stages")
	}
}

func TestMapWorkloadVGG(t *testing.T) {
	np := MapWorkload(models.FullVGG13(10, 300, 91.6, 90.05))
	if len(np.Placements) != 12 {
		t.Fatalf("placements: %d", len(np.Placements))
	}
	if np.TotalACs() <= 0 || np.TotalNCs() <= 0 {
		t.Fatal("no resources provisioned")
	}
	u := np.MeanUtilization()
	if u <= 0 || u > 1 {
		t.Fatalf("mean utilization %v", u)
	}
	// Every VGG conv layer except the first two fits within one NC
	// (Rf ≤ 2048 for 3×3×≤227... actually conv with InC ≤ 227; check
	// conv5 at 3×3×512 = 4608 needs ADC).
	last := np.Placements[len(np.Placements)-3] // conv5_2
	if !last.NeedsADC() {
		t.Fatalf("conv5_2 (Rf=%d) should need ADC", last.Layer.Rf())
	}
	first := np.Placements[0]
	if first.NeedsADC() {
		t.Fatal("conv1_1 should not need ADC")
	}
}

func TestMorphableBeatsFixedUtilization(t *testing.T) {
	// The design motivation of §IV-B2: for a mix of small and large
	// kernels, morphable tiles waste fewer synapses than fixed arrays.
	w := models.FullMobileNetV1(10, 500, 91, 81)
	var morphUsed, morphTotal, fixedUsed, fixedTotal float64
	for _, l := range w.WeightedLayers() {
		mp := Map(l)
		morphUsed += mp.Utilization * float64(mp.ACsUsed)
		morphTotal += float64(mp.ACsUsed)
		fp := MapFixed(l, 256)
		fixedUsed += fp.Utilization * float64(fp.ArraysUsed) * 4 // 256² = 4 AC-equivalents
		fixedTotal += float64(fp.ArraysUsed) * 4
	}
	if morphUsed/morphTotal <= fixedUsed/fixedTotal {
		t.Fatalf("morphable utilization %.4f should beat fixed-256 %.4f",
			morphUsed/morphTotal, fixedUsed/fixedTotal)
	}
}

func TestFixedArrayADC(t *testing.T) {
	l := layer(models.Conv, 128, 128, 3, 16) // Rf = 1152 > 128
	fp := MapFixed(l, 128)
	if fp.ADCConversionsPerEval == 0 {
		t.Fatal("fixed arrays must digitize split kernels")
	}
	mp := Map(l)
	if mp.ADCConversionsPerEval != 0 {
		t.Fatal("NEBULA keeps Rf=1152 in the current domain (H2)")
	}
}

func TestMaxRowsPerNCConstant(t *testing.T) {
	if MaxRowsPerNC != 2048 {
		t.Fatalf("MaxRowsPerNC = %d, want 16·128", MaxRowsPerNC)
	}
}
