// Package mapping places network layers onto the NEBULA crossbar
// hierarchy following §IV-B of the paper: a kernel's receptive field
// (Rf = KH·KW·C, Fig. 5) is flattened along crossbar rows; atomic
// crossbars (ACs) are ganged vertically through morphable-tile switches
// and the current-domain neuron-unit (NU) hierarchy to cover Rf up to
// 16M rows inside a single neural core; larger kernels spill across
// neural cores and pay the ADC + routing-unit reduction path.
package mapping

import (
	"fmt"
	"math"

	"repro/internal/models"
)

// Architecture constants from §IV and Table III.
const (
	// M is the atomic crossbar dimension (128×128).
	M = 128
	// ACsPerTile is the 2×2 array of atomic crossbars in a morphable tile.
	ACsPerTile = 4
	// TilesPerSuperTile is the 2×2 array of tiles in a super-tile.
	TilesPerSuperTile = 4
	// ACsPerNC is the atomic-crossbar capacity of one neural core
	// (one super-tile: 16 ACs of 128×128, Table III).
	ACsPerNC = ACsPerTile * TilesPerSuperTile
	// MaxRowsPerNC is the largest receptive field a super-tile can
	// aggregate in the current domain (16M, §IV-B3).
	MaxRowsPerNC = ACsPerNC * M
	// CycleNS is the pipeline stage latency set by the MTJ neuron
	// switching time (§IV-B5).
	CycleNS = 110.0
)

// NULevel identifies which neuron-unit hierarchy level thresholds a
// mapped kernel's column current.
type NULevel int

// NU hierarchy levels (Fig. 7(a)); LevelADC marks the multi-NC spill path
// where partial sums leave the analog domain.
const (
	LevelH0  NULevel = iota // Rf ≤ M: independent atomic crossbar
	LevelH1                 // M < Rf ≤ 4M: within one morphable tile
	LevelH2                 // 4M < Rf ≤ 16M: across tiles in the super-tile
	LevelADC                // Rf > 16M: multi-NC with ADC reduction
)

// String implements fmt.Stringer.
func (l NULevel) String() string {
	switch l {
	case LevelH0:
		return "H0"
	case LevelH1:
		return "H1"
	case LevelH2:
		return "H2"
	case LevelADC:
		return "ADC"
	}
	return fmt.Sprintf("NULevel(%d)", int(l))
}

// Placement describes how one layer maps onto the hierarchy.
type Placement struct {
	Layer models.LayerShape
	// Level is the NU hierarchy level selected by the receptive field.
	Level NULevel
	// StackHeight is the number of ACs ganged vertically per kernel
	// column group (ceil(Rf/M), capped at 16 per NC).
	StackHeight int
	// Sets is the number of column groups needed to hold all kernels
	// (each group provides M parallel kernel columns).
	Sets int
	// ACsUsed is the total atomic crossbars provisioned for the layer.
	ACsUsed int
	// NCSpill is the number of neural cores a single kernel spans
	// (1 unless Level == LevelADC).
	NCSpill int
	// NCsUsed is the number of neural cores provisioned.
	NCsUsed int
	// Evaluations is the number of crossbar evaluations per inference
	// pass (output spatial positions for conv, 1 for FC).
	Evaluations int
	// ADCConversionsPerEval is the number of analog-to-digital
	// conversions per evaluation (0 on the all-analog path).
	ADCConversionsPerEval int
	// Utilization is the fraction of provisioned synapses carrying
	// weights.
	Utilization float64
}

// NeedsADC reports whether the layer pays the ADC + RU reduction path.
func (p Placement) NeedsADC() bool { return p.Level == LevelADC }

// LatencyNS returns the dataflow latency of one inference pass through
// this layer, assuming evaluations are serialized on its crossbar sets
// and the 3-stage NC pipeline of Fig. 8 (plus reduction hops on the ADC
// path).
func (p Placement) LatencyNS() float64 {
	pipeline := 3.0
	if p.NeedsADC() {
		// digitize + reduce + activate (dashed stages of Fig. 8)
		pipeline += 2 + math.Ceil(math.Log2(float64(p.NCSpill)))
	}
	return (float64(p.Evaluations) + pipeline - 1) * CycleNS
}

// Map places a layer. Pooling layers return a zero Placement with no
// crossbars (they are folded into the NU datapath).
func Map(l models.LayerShape) Placement {
	if l.Kind == models.AvgPool {
		return Placement{Layer: l, Evaluations: l.OutH() * l.OutW()}
	}
	rf := l.Rf()
	kernels := l.Kernels()
	stack := ceilDiv(rf, M)
	level := levelFor(stack)
	spill := 1
	if stack > ACsPerNC {
		spill = ceilDiv(stack, ACsPerNC)
	}
	sets := ceilDiv(kernels, M)
	acs := stack * sets
	ncs := spill * sets
	if level != LevelADC {
		ncs = ceilDiv(acs, ACsPerNC)
		if ncs == 0 {
			ncs = 1
		}
	}
	evals := l.OutH() * l.OutW()
	adcPerEval := 0
	if level == LevelADC {
		// Every kernel column's partial sum is digitized in each spilled
		// NC; §IV-B5 notes at most 128 conversions per 110 ns cycle.
		adcPerEval = kernels * spill
	}
	return Placement{
		Layer:                 l,
		Level:                 level,
		StackHeight:           stack,
		Sets:                  sets,
		ACsUsed:               acs,
		NCSpill:               spill,
		NCsUsed:               ncs,
		Evaluations:           evals,
		ADCConversionsPerEval: adcPerEval,
		Utilization:           float64(rf) * float64(kernels) / (float64(acs) * M * M),
	}
}

func levelFor(stack int) NULevel {
	switch {
	case stack <= 1:
		return LevelH0
	case stack <= ACsPerTile:
		return LevelH1
	case stack <= ACsPerNC:
		return LevelH2
	default:
		return LevelADC
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// NetworkPlacement maps every weighted layer of a workload.
type NetworkPlacement struct {
	Workload   models.Workload
	Placements []Placement
}

// MapWorkload places all weighted layers of a workload.
func MapWorkload(w models.Workload) NetworkPlacement {
	np := NetworkPlacement{Workload: w}
	for _, l := range w.WeightedLayers() {
		np.Placements = append(np.Placements, Map(l))
	}
	return np
}

// TotalACs sums provisioned atomic crossbars.
func (np NetworkPlacement) TotalACs() int {
	t := 0
	for _, p := range np.Placements {
		t += p.ACsUsed
	}
	return t
}

// TotalNCs sums provisioned neural cores.
func (np NetworkPlacement) TotalNCs() int {
	t := 0
	for _, p := range np.Placements {
		t += p.NCsUsed
	}
	return t
}

// MeanUtilization returns the AC-weighted mean synapse utilization.
func (np NetworkPlacement) MeanUtilization() float64 {
	var used, total float64
	for _, p := range np.Placements {
		used += p.Utilization * float64(p.ACsUsed)
		total += float64(p.ACsUsed)
	}
	if total == 0 {
		return 0
	}
	return used / total
}

// FixedArrayPlacement models the ablation baseline: rigid N×N arrays with
// no morphable switches and no NU hierarchy. Any kernel spanning more
// than one array pays an ADC conversion per partial sum, as in
// ISAAC-style designs.
type FixedArrayPlacement struct {
	ArraysUsed            int
	ADCConversionsPerEval int
	Utilization           float64
	Evaluations           int
}

// MapFixed places a layer onto rigid n×n arrays.
func MapFixed(l models.LayerShape, n int) FixedArrayPlacement {
	if l.Kind == models.AvgPool {
		return FixedArrayPlacement{Evaluations: l.OutH() * l.OutW()}
	}
	rf := l.Rf()
	kernels := l.Kernels()
	rowSplits := ceilDiv(rf, n)
	colSplits := ceilDiv(kernels, n)
	arrays := rowSplits * colSplits
	adc := 0
	if rowSplits > 1 {
		// Each array's column partial sums must be digitized and merged.
		adc = kernels * rowSplits
	}
	return FixedArrayPlacement{
		ArraysUsed:            arrays,
		ADCConversionsPerEval: adc,
		Utilization:           float64(rf) * float64(kernels) / (float64(arrays) * float64(n) * float64(n)),
		Evaluations:           l.OutH() * l.OutW(),
	}
}
