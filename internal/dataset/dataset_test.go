package dataset

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestGenerateShapeAndRange(t *testing.T) {
	d := Generate(CIFAR10Like, 50, 1)
	if d.Len() != 50 {
		t.Fatalf("len = %d", d.Len())
	}
	s := d.Images.Shape()
	if s[0] != 50 || s[1] != 3 || s[2] != 16 || s[3] != 16 {
		t.Fatalf("shape = %v", s)
	}
	for _, v := range d.Images.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("pixel out of [0,1]: %v", v)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(MNISTLike, 20, 7)
	b := Generate(MNISTLike, 20, 7)
	for i, v := range a.Images.Data() {
		if b.Images.Data()[i] != v {
			t.Fatal("same seed produced different data")
		}
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different labels")
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a := Generate(MNISTLike, 20, 1)
	b := Generate(MNISTLike, 20, 2)
	same := true
	for i, v := range a.Images.Data() {
		if b.Images.Data()[i] != v {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestLabelsBalanced(t *testing.T) {
	d := Generate(CIFAR10Like, 100, 3)
	counts := make(map[int]int)
	for _, l := range d.Labels {
		if l < 0 || l >= d.Classes {
			t.Fatalf("label %d out of range", l)
		}
		counts[l]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Fatalf("class %d has %d samples", c, n)
		}
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Mean within-class distance must be clearly below mean between-class
	// distance, otherwise no model could learn the task.
	d := Generate(CIFAR10Like, 200, 5)
	sz := d.Images.Dim(1) * d.Images.Dim(2) * d.Images.Dim(3)
	dist := func(i, j int) float64 {
		a := d.Images.Data()[i*sz : (i+1)*sz]
		b := d.Images.Data()[j*sz : (j+1)*sz]
		s := 0.0
		for k := range a {
			diff := a[k] - b[k]
			s += diff * diff
		}
		return math.Sqrt(s)
	}
	var within, between float64
	var nw, nb int
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			if d.Labels[i] == d.Labels[j] {
				within += dist(i, j)
				nw++
			} else {
				between += dist(i, j)
				nb++
			}
		}
	}
	within /= float64(nw)
	between /= float64(nb)
	if within >= between {
		t.Fatalf("classes not separable: within=%v between=%v", within, between)
	}
}

func TestBatch(t *testing.T) {
	d := Generate(MNISTLike, 30, 9)
	x, y := d.Batch(10, 5)
	if x.Dim(0) != 5 || len(y) != 5 {
		t.Fatalf("batch shapes: %v, %d labels", x.Shape(), len(y))
	}
	// Batch copies: mutating the batch must not change the dataset.
	orig := d.Images.Slice4D(10).Data()[0]
	x.Data()[0] = -99
	if d.Images.Slice4D(10).Data()[0] != orig {
		t.Fatal("Batch must copy")
	}
}

func TestBatchOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(MNISTLike, 10, 1).Batch(8, 5)
}

func TestShufflePreservesPairs(t *testing.T) {
	d := Generate(MNISTLike, 40, 11)
	// Fingerprint each image by sum, keyed to its label.
	type pair struct {
		label int
		sum   float64
	}
	fingerprint := func(d *Dataset) map[pair]int {
		m := make(map[pair]int)
		for i := 0; i < d.Len(); i++ {
			img, l := d.Sample(i)
			m[pair{l, img.Sum()}]++
		}
		return m
	}
	before := fingerprint(d)
	d.Shuffle(rng.New(99))
	after := fingerprint(d)
	if len(before) != len(after) {
		t.Fatal("shuffle changed fingerprint count")
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatal("shuffle broke image/label pairing")
		}
	}
}

func TestTrainTestDisjoint(t *testing.T) {
	tr, te := TrainTest(MNISTLike, 20, 20, 1)
	// Different seeds ⇒ pixel data differs.
	same := true
	for i, v := range tr.Images.Data() {
		if te.Images.Data()[i] != v {
			same = false
			break
		}
	}
	if same {
		t.Fatal("train and test splits are identical")
	}
}

func TestAllSpecsGenerate(t *testing.T) {
	for _, spec := range []Spec{MNISTLike, SVHNLike, CIFAR10Like, CIFAR100Like, ImageNetLike} {
		d := Generate(spec, spec.Classes*2, 13)
		if d.Len() != spec.Classes*2 {
			t.Fatalf("%s: len %d", spec.Name, d.Len())
		}
		if d.Classes != spec.Classes {
			t.Fatalf("%s: classes %d", spec.Name, d.Classes)
		}
	}
}
