// Package dataset synthesizes deterministic image-classification datasets
// standing in for the benchmark datasets used in the NEBULA paper (MNIST,
// CIFAR-10, CIFAR-100, SVHN, ImageNet).
//
// The real datasets cannot ship with an offline reproduction, so each
// dataset here is a parametric generator: every class is defined by a
// structured visual prototype (oriented bars, blobs, checkerboards and
// frequency gratings at class-specific positions) plus per-sample jitter
// and pixel noise. The generators preserve the properties the paper's
// algorithm layer depends on: multi-class separability that degrades with
// class count (CIFAR-100-like is harder than CIFAR-10-like), non-negative
// pixel intensities in [0, 1] suitable for Poisson rate encoding, and
// spatial structure so that convolutional features matter.
package dataset

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Dataset is an in-memory labelled image dataset in NCHW layout.
type Dataset struct {
	Name    string
	Images  *tensor.Tensor // N×C×H×W, values in [0, 1]
	Labels  []int
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Labels) }

// Batch returns samples [start, start+n) as a fresh tensor plus labels.
func (d *Dataset) Batch(start, n int) (*tensor.Tensor, []int) {
	if start < 0 || start+n > d.Len() {
		panic(fmt.Sprintf("dataset: batch [%d,%d) out of %d", start, start+n, d.Len()))
	}
	c, h, w := d.Images.Dim(1), d.Images.Dim(2), d.Images.Dim(3)
	out := tensor.New(n, c, h, w)
	sz := c * h * w
	copy(out.Data(), d.Images.Data()[start*sz:(start+n)*sz])
	return out, d.Labels[start : start+n]
}

// Sample returns image i as a C×H×W view and its label.
func (d *Dataset) Sample(i int) (*tensor.Tensor, int) {
	return d.Images.Slice4D(i), d.Labels[i]
}

// Shuffle permutes the dataset in place using r.
func (d *Dataset) Shuffle(r *rng.Rand) {
	n := d.Len()
	c, h, w := d.Images.Dim(1), d.Images.Dim(2), d.Images.Dim(3)
	sz := c * h * w
	perm := r.Perm(n)
	newImg := tensor.New(n, c, h, w)
	newLab := make([]int, n)
	for dst, src := range perm {
		copy(newImg.Data()[dst*sz:(dst+1)*sz], d.Images.Data()[src*sz:(src+1)*sz])
		newLab[dst] = d.Labels[src]
	}
	d.Images = newImg
	d.Labels = newLab
}

// Spec parameterizes a synthetic dataset.
type Spec struct {
	Name     string
	Classes  int
	Channels int
	Size     int // square images Size×Size
	// Noise is the per-pixel gaussian noise std; higher is harder.
	Noise float64
	// Jitter is the max positional jitter of class prototypes in pixels.
	Jitter int
}

// Standard specs approximating the difficulty ordering of the paper's
// benchmark datasets.
var (
	MNISTLike    = Spec{Name: "mnist-like", Classes: 10, Channels: 1, Size: 16, Noise: 0.08, Jitter: 1}
	SVHNLike     = Spec{Name: "svhn-like", Classes: 10, Channels: 3, Size: 16, Noise: 0.15, Jitter: 1}
	CIFAR10Like  = Spec{Name: "cifar10-like", Classes: 10, Channels: 3, Size: 16, Noise: 0.20, Jitter: 2}
	CIFAR100Like = Spec{Name: "cifar100-like", Classes: 20, Channels: 3, Size: 16, Noise: 0.22, Jitter: 2}
	ImageNetLike = Spec{Name: "imagenet-like", Classes: 16, Channels: 3, Size: 24, Noise: 0.25, Jitter: 3}
)

// Generate creates n samples from the spec, deterministically from seed.
// Class labels are balanced round-robin.
func Generate(spec Spec, n int, seed uint64) *Dataset {
	r := rng.New(seed)
	img := tensor.New(n, spec.Channels, spec.Size, spec.Size)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		label := i % spec.Classes
		labels[i] = label
		renderSample(img.Slice4D(i), spec, label, r)
	}
	d := &Dataset{Name: spec.Name, Images: img, Labels: labels, Classes: spec.Classes}
	d.Shuffle(r)
	return d
}

// renderSample draws the class prototype with jitter and noise into dst.
func renderSample(dst *tensor.Tensor, spec Spec, label int, r *rng.Rand) {
	c, s := spec.Channels, spec.Size
	dx := r.Intn(2*spec.Jitter+1) - spec.Jitter
	dy := r.Intn(2*spec.Jitter+1) - spec.Jitter
	amp := 0.75 + 0.25*r.Float64()

	// Class-specific structured pattern: combine an oriented grating, a
	// blob position on a ring, and a parity checker. Different classes get
	// visibly different prototypes; nearby class ids stay similar, which
	// makes many-class variants harder just as CIFAR-100 is harder than
	// CIFAR-10.
	theta := 2 * math.Pi * float64(label) / float64(spec.Classes)
	freq := 1.0 + float64(label%4)
	cx := float64(s)/2 + float64(s)/4*math.Cos(theta) + float64(dx)
	cy := float64(s)/2 + float64(s)/4*math.Sin(theta) + float64(dy)
	sigma := float64(s) / 6

	for ch := 0; ch < c; ch++ {
		chPhase := float64(ch) * math.Pi / 3
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				fi, fj := float64(i), float64(j)
				grating := 0.5 + 0.5*math.Sin(freq*2*math.Pi*(fi*math.Cos(theta)+fj*math.Sin(theta))/float64(s)+chPhase)
				dd := (fi-cy)*(fi-cy) + (fj-cx)*(fj-cx)
				blob := math.Exp(-dd / (2 * sigma * sigma))
				check := 0.0
				if (label+ch)%2 == 0 && ((i/2)+(j/2))%2 == 0 {
					check = 0.3
				}
				v := amp*(0.45*grating+0.55*blob) + check + spec.Noise*r.NormFloat64()
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				dst.Set(v, ch, i, j)
			}
		}
	}
}

// TrainTest generates disjoint train and test splits with different seeds
// derived from the base seed.
func TrainTest(spec Spec, nTrain, nTest int, seed uint64) (train, test *Dataset) {
	return Generate(spec, nTrain, seed), Generate(spec, nTest, seed+0x9e3779b9)
}
