package train

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/rng"
)

func TestConfusionMatrixBasics(t *testing.T) {
	cm := NewConfusionMatrix(3)
	// Class 0: 2 right, 1 confused as 1. Class 1: 1 right. Class 2: 1 as 0.
	cm.Add(0, 0)
	cm.Add(0, 0)
	cm.Add(0, 1)
	cm.Add(1, 1)
	cm.Add(2, 0)
	if cm.Total != 5 {
		t.Fatalf("total %d", cm.Total)
	}
	if got := cm.Accuracy(); math.Abs(got-3.0/5) > 1e-12 {
		t.Fatalf("accuracy %v", got)
	}
	rec := cm.PerClassRecall()
	if math.Abs(rec[0]-2.0/3) > 1e-12 || rec[1] != 1 || rec[2] != 0 {
		t.Fatalf("recall %v", rec)
	}
	prec := cm.PerClassPrecision()
	if math.Abs(prec[0]-2.0/3) > 1e-12 || prec[1] != 0.5 || prec[2] != 0 {
		t.Fatalf("precision %v", prec)
	}
	if f1 := cm.MacroF1(); f1 <= 0 || f1 >= 1 {
		t.Fatalf("macro F1 %v", f1)
	}
}

func TestConfusionEmptyAccuracy(t *testing.T) {
	if NewConfusionMatrix(4).Accuracy() != 0 {
		t.Fatal("empty matrix accuracy must be 0")
	}
}

func TestEvaluateConfusionAgreesWithEvaluate(t *testing.T) {
	r := rng.New(3)
	tr, te := dataset.TrainTest(dataset.MNISTLike, 200, 100, 9)
	net := models.NewMLP3(1, 16, 10, r)
	cfg := DefaultConfig()
	cfg.Epochs = 3
	Run(net, tr, te, cfg)
	plain := Evaluate(net, te, 32)
	cm := EvaluateConfusion(net, te, 32)
	if math.Abs(plain-cm.Accuracy()) > 1e-12 {
		t.Fatalf("accuracy mismatch: %v vs %v", plain, cm.Accuracy())
	}
	if cm.Total != te.Len() {
		t.Fatalf("total %d, want %d", cm.Total, te.Len())
	}
}

func TestConfusionRender(t *testing.T) {
	cm := NewConfusionMatrix(2)
	cm.Add(0, 0)
	cm.Add(1, 0)
	var b bytes.Buffer
	cm.Render(&b)
	if !strings.Contains(b.String(), "confusion matrix") {
		t.Fatal("render missing header")
	}
}
