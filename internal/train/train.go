// Package train provides the SGD training loop used to fit the benchmark
// networks before they are quantized, converted to SNNs and mapped onto the
// NEBULA architecture.
package train

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// SGD is a stochastic-gradient-descent optimizer with classical momentum
// and optional L2 weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    map[*nn.Param]*tensor.Tensor
}

// NewSGD constructs an optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*nn.Param]*tensor.Tensor)}
}

// Step applies one update to every parameter from its accumulated gradient.
func (s *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.Value.Shape()...)
			s.velocity[p] = v
		}
		pd, gd, vd := p.Value.Data(), p.Grad.Data(), v.Data()
		for i := range pd {
			g := gd[i] + s.WeightDecay*pd[i]
			vd[i] = s.Momentum*vd[i] - s.LR*g
			pd[i] += vd[i]
		}
	}
}

// Config controls a training run.
type Config struct {
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64
	// LRDecayEvery halves the learning rate every this many epochs
	// (0 disables decay).
	LRDecayEvery int
	// Log receives progress lines; nil silences logging.
	Log io.Writer
}

// DefaultConfig returns a configuration that trains the scaled benchmark
// networks to useful accuracy in seconds.
func DefaultConfig() Config {
	return Config{Epochs: 8, BatchSize: 32, LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, LRDecayEvery: 4}
}

// Result summarizes a training run.
type Result struct {
	FinalLoss     float64
	TrainAccuracy float64
	TestAccuracy  float64
}

// Run trains net on train, evaluating on test after the final epoch.
func Run(net *nn.Network, train, test *dataset.Dataset, cfg Config) Result {
	opt := NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.LRDecayEvery > 0 && epoch > 0 && epoch%cfg.LRDecayEvery == 0 {
			opt.LR /= 2
		}
		lastLoss = runEpoch(net, train, opt, cfg.BatchSize)
		if cfg.Log != nil {
			acc := Evaluate(net, test, cfg.BatchSize)
			fmt.Fprintf(cfg.Log, "epoch %2d: loss=%.4f test-acc=%.4f lr=%.4g\n", epoch, lastLoss, acc, opt.LR)
		}
	}
	return Result{
		FinalLoss:     lastLoss,
		TrainAccuracy: Evaluate(net, train, cfg.BatchSize),
		TestAccuracy:  Evaluate(net, test, cfg.BatchSize),
	}
}

// runEpoch performs one pass over the dataset and returns the mean loss.
func runEpoch(net *nn.Network, data *dataset.Dataset, opt *SGD, batchSize int) float64 {
	total := 0.0
	batches := 0
	for start := 0; start+batchSize <= data.Len(); start += batchSize {
		x, y := data.Batch(start, batchSize)
		logits := net.Forward(x, true)
		loss, grad := nn.SoftmaxCrossEntropy(logits, y)
		net.ZeroGrad()
		net.Backward(grad)
		opt.Step(net.Params())
		total += loss
		batches++
	}
	if batches == 0 {
		return 0
	}
	return total / float64(batches)
}

// Evaluate returns the accuracy of net on data in inference mode.
func Evaluate(net *nn.Network, data *dataset.Dataset, batchSize int) float64 {
	if data.Len() == 0 {
		return 0
	}
	correct := 0
	for start := 0; start < data.Len(); start += batchSize {
		n := batchSize
		if start+n > data.Len() {
			n = data.Len() - start
		}
		x, y := data.Batch(start, n)
		logits := net.Forward(x, false)
		for i := 0; i < n; i++ {
			if logits.Row(i).ArgMax() == y[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(data.Len())
}
