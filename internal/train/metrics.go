package train

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/nn"
)

// ConfusionMatrix counts predictions per (true, predicted) class pair.
type ConfusionMatrix struct {
	Classes int
	// Counts[true][pred]
	Counts [][]int
	Total  int
}

// NewConfusionMatrix allocates a k-class matrix.
func NewConfusionMatrix(k int) *ConfusionMatrix {
	c := &ConfusionMatrix{Classes: k, Counts: make([][]int, k)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, k)
	}
	return c
}

// Add records one observation.
func (c *ConfusionMatrix) Add(trueClass, predicted int) {
	c.Counts[trueClass][predicted]++
	c.Total++
}

// Accuracy returns overall accuracy.
func (c *ConfusionMatrix) Accuracy() float64 {
	if c.Total == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < c.Classes; i++ {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(c.Total)
}

// PerClassRecall returns recall (true-positive rate) per class; classes
// with no samples report NaN-free 0.
func (c *ConfusionMatrix) PerClassRecall() []float64 {
	out := make([]float64, c.Classes)
	for i := 0; i < c.Classes; i++ {
		total := 0
		for j := 0; j < c.Classes; j++ {
			total += c.Counts[i][j]
		}
		if total > 0 {
			out[i] = float64(c.Counts[i][i]) / float64(total)
		}
	}
	return out
}

// PerClassPrecision returns precision per predicted class.
func (c *ConfusionMatrix) PerClassPrecision() []float64 {
	out := make([]float64, c.Classes)
	for j := 0; j < c.Classes; j++ {
		total := 0
		for i := 0; i < c.Classes; i++ {
			total += c.Counts[i][j]
		}
		if total > 0 {
			out[j] = float64(c.Counts[j][j]) / float64(total)
		}
	}
	return out
}

// MacroF1 returns the unweighted mean F1 across classes.
func (c *ConfusionMatrix) MacroF1() float64 {
	rec := c.PerClassRecall()
	prec := c.PerClassPrecision()
	sum := 0.0
	for i := 0; i < c.Classes; i++ {
		if rec[i]+prec[i] > 0 {
			sum += 2 * rec[i] * prec[i] / (rec[i] + prec[i])
		}
	}
	return sum / float64(c.Classes)
}

// Render writes the matrix as a table.
func (c *ConfusionMatrix) Render(w io.Writer) {
	fmt.Fprintf(w, "confusion matrix (%d samples, accuracy %.4f, macro-F1 %.4f)\n",
		c.Total, c.Accuracy(), c.MacroF1())
	fmt.Fprint(w, "      ")
	for j := 0; j < c.Classes; j++ {
		fmt.Fprintf(w, "%5d", j)
	}
	fmt.Fprintln(w)
	for i := 0; i < c.Classes; i++ {
		fmt.Fprintf(w, "  %3d ", i)
		for j := 0; j < c.Classes; j++ {
			fmt.Fprintf(w, "%5d", c.Counts[i][j])
		}
		fmt.Fprintln(w)
	}
}

// EvaluateConfusion runs the network over the dataset and returns the
// full confusion matrix (a richer Evaluate).
func EvaluateConfusion(net *nn.Network, data *dataset.Dataset, batch int) *ConfusionMatrix {
	cm := NewConfusionMatrix(data.Classes)
	for start := 0; start < data.Len(); start += batch {
		n := batch
		if start+n > data.Len() {
			n = data.Len() - start
		}
		x, y := data.Batch(start, n)
		logits := net.Forward(x, false)
		for i := 0; i < n; i++ {
			cm.Add(y[i], logits.Row(i).ArgMax())
		}
	}
	return cm
}
