package train

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestSGDStepDirection(t *testing.T) {
	p := nn.NewParam("w", tensor.FromSlice([]float64{1}, 1))
	p.Grad.Data()[0] = 2
	opt := NewSGD(0.1, 0, 0)
	opt.Step([]*nn.Param{p})
	if got := p.Value.Data()[0]; got != 0.8 {
		t.Fatalf("after step w = %v, want 0.8", got)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := nn.NewParam("w", tensor.FromSlice([]float64{0}, 1))
	opt := NewSGD(1, 0.5, 0)
	p.Grad.Data()[0] = 1
	opt.Step([]*nn.Param{p}) // v = -1, w = -1
	opt.Step([]*nn.Param{p}) // v = -0.5 - 1 = -1.5, w = -2.5
	if got := p.Value.Data()[0]; got != -2.5 {
		t.Fatalf("after 2 momentum steps w = %v, want -2.5", got)
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := nn.NewParam("w", tensor.FromSlice([]float64{10}, 1))
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*nn.Param{p}) // g = 0 + 0.5*10 = 5; w = 10 - 0.5 = 9.5
	if got := p.Value.Data()[0]; got != 9.5 {
		t.Fatalf("weight decay step w = %v, want 9.5", got)
	}
}

func TestTrainingReducesLossAndLearns(t *testing.T) {
	r := rng.New(42)
	tr, te := dataset.TrainTest(dataset.MNISTLike, 400, 200, 7)
	net := models.NewMLP3(1, 16, 10, r)
	cfg := DefaultConfig()
	cfg.Epochs = 6
	res := Run(net, tr, te, cfg)
	if res.TestAccuracy < 0.5 {
		t.Fatalf("MLP failed to learn: test acc %.3f", res.TestAccuracy)
	}
	if res.TrainAccuracy < res.TestAccuracy-0.3 {
		t.Fatalf("suspicious accuracies: train %.3f test %.3f", res.TrainAccuracy, res.TestAccuracy)
	}
}

func TestConvNetLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("conv training is slow")
	}
	r := rng.New(43)
	tr, te := dataset.TrainTest(dataset.MNISTLike, 300, 150, 11)
	net := models.NewLeNet5(1, 16, 10, r)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	res := Run(net, tr, te, cfg)
	if res.TestAccuracy < 0.5 {
		t.Fatalf("LeNet failed to learn: test acc %.3f", res.TestAccuracy)
	}
}

func TestEvaluateHandlesPartialBatch(t *testing.T) {
	r := rng.New(44)
	d := dataset.Generate(dataset.MNISTLike, 33, 3) // not a multiple of 32
	net := models.NewMLP3(1, 16, 10, r)
	acc := Evaluate(net, d, 32)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy out of range: %v", acc)
	}
}

func TestEvaluateEmptyDataset(t *testing.T) {
	r := rng.New(45)
	net := models.NewMLP3(1, 16, 10, r)
	empty := &dataset.Dataset{Name: "empty", Images: tensor.New(0, 1, 16, 16), Labels: nil, Classes: 10}
	if acc := Evaluate(net, empty, 8); acc != 0 {
		t.Fatalf("empty accuracy = %v", acc)
	}
}

func TestDeterministicTraining(t *testing.T) {
	run := func() float64 {
		r := rng.New(1)
		tr, te := dataset.TrainTest(dataset.MNISTLike, 100, 50, 5)
		net := models.NewMLP3(1, 16, 10, r)
		cfg := DefaultConfig()
		cfg.Epochs = 2
		return Run(net, tr, te, cfg).TestAccuracy
	}
	if run() != run() {
		t.Fatal("training is not deterministic")
	}
}
