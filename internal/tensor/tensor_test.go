package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Size() != 6 {
		t.Fatalf("size = %d", x.Size())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(42, 1, 2, 3)
	if x.At(1, 2, 3) != 42 {
		t.Fatal("At/Set round trip failed")
	}
	// row-major: offset of (1,2,3) in 2x3x4 is 1*12+2*4+3 = 23
	if x.Data()[23] != 42 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshapeView(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape must be a view")
	}
	z := x.Reshape(-1, 2)
	if z.Dim(0) != 3 {
		t.Fatalf("inferred dim = %d", z.Dim(0))
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	a.AddInPlace(b)
	want := []float64{5, 7, 9}
	for i, v := range a.Data() {
		if v != want[i] {
			t.Fatalf("add: got %v", a.Data())
		}
	}
	a.SubInPlace(b)
	for i, v := range a.Data() {
		if v != float64(i+1) {
			t.Fatalf("sub: got %v", a.Data())
		}
	}
	a.MulInPlace(b)
	wantMul := []float64{4, 10, 18}
	for i, v := range a.Data() {
		if v != wantMul[i] {
			t.Fatalf("mul: got %v", a.Data())
		}
	}
	a.ScaleInPlace(0.5)
	if a.At(0) != 2 {
		t.Fatalf("scale: got %v", a.Data())
	}
	a.AxpyInPlace(2, b)
	if a.At(0) != 10 { // 2 + 2*4
		t.Fatalf("axpy: got %v", a.Data())
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddInPlace(New(3))
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-3, 1, 4, 2}, 4)
	if x.Sum() != 4 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 1 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Max() != 4 {
		t.Fatalf("Max = %v", x.Max())
	}
	if x.Min() != -3 {
		t.Fatalf("Min = %v", x.Min())
	}
	if x.AbsMax() != 4 {
		t.Fatalf("AbsMax = %v", x.AbsMax())
	}
	if x.ArgMax() != 2 {
		t.Fatalf("ArgMax = %v", x.ArgMax())
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("MatMul got %v want %v", c.Data(), want)
		}
	}
}

func TestMatMulTransVariantsAgree(t *testing.T) {
	r := rng.New(5)
	randMat := func(m, n int) *Tensor {
		x := New(m, n)
		for i := range x.Data() {
			x.Data()[i] = r.NormFloat64()
		}
		return x
	}
	a := randMat(4, 6)
	b := randMat(6, 5)
	ref := MatMul(a, b)

	viaTransB := MatMulTransB(a, b.Transpose())
	viaTransA := MatMulTransA(a.Transpose(), b)
	for i := range ref.Data() {
		if !almostEqual(ref.Data()[i], viaTransB.Data()[i]) {
			t.Fatal("MatMulTransB disagrees with MatMul")
		}
		if !almostEqual(ref.Data()[i], viaTransA.Data()[i]) {
			t.Fatal("MatMulTransA disagrees with MatMul")
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(8)
	x := New(3, 7)
	for i := range x.Data() {
		x.Data()[i] = r.Float64()
	}
	y := x.Transpose().Transpose()
	for i := range x.Data() {
		if x.Data()[i] != y.Data()[i] {
			t.Fatal("double transpose changed data")
		}
	}
}

func TestConvOutSize(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{32, 3, 1, 1, 32},
		{32, 3, 2, 1, 16},
		{28, 5, 1, 0, 24},
		{4, 2, 2, 0, 2},
	}
	for _, c := range cases {
		if got := ConvOutSize(c.in, c.k, c.s, c.p); got != c.want {
			t.Fatalf("ConvOutSize(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

// naiveConv computes a direct convolution for cross-checking im2col.
func naiveConv(img *Tensor, kernel *Tensor, stride, pad int) *Tensor {
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	kc, kh, kw := kernel.Dim(0), kernel.Dim(1), kernel.Dim(2)
	if kc != c {
		panic("channel mismatch")
	}
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	out := New(oh, ow)
	for oi := 0; oi < oh; oi++ {
		for oj := 0; oj < ow; oj++ {
			s := 0.0
			for ch := 0; ch < c; ch++ {
				for ki := 0; ki < kh; ki++ {
					for kj := 0; kj < kw; kj++ {
						ii := oi*stride + ki - pad
						jj := oj*stride + kj - pad
						if ii < 0 || ii >= h || jj < 0 || jj >= w {
							continue
						}
						s += img.At(ch, ii, jj) * kernel.At(ch, ki, kj)
					}
				}
			}
			out.Set(s, oi, oj)
		}
	}
	return out
}

func TestIm2ColMatchesNaiveConv(t *testing.T) {
	r := rng.New(21)
	for _, cfg := range []struct{ c, h, w, kh, kw, stride, pad int }{
		{1, 5, 5, 3, 3, 1, 0},
		{2, 6, 6, 3, 3, 1, 1},
		{3, 8, 7, 2, 4, 2, 1},
		{2, 5, 5, 5, 5, 1, 2},
	} {
		img := New(cfg.c, cfg.h, cfg.w)
		for i := range img.Data() {
			img.Data()[i] = r.NormFloat64()
		}
		kern := New(cfg.c, cfg.kh, cfg.kw)
		for i := range kern.Data() {
			kern.Data()[i] = r.NormFloat64()
		}
		cols := Im2Col(img, cfg.kh, cfg.kw, cfg.stride, cfg.pad)
		flatK := kern.Reshape(1, cfg.c*cfg.kh*cfg.kw)
		got := MatMul(flatK, cols)
		want := naiveConv(img, kern, cfg.stride, cfg.pad)
		for i := range want.Data() {
			if !almostEqual(got.Data()[i], want.Data()[i]) {
				t.Fatalf("cfg %+v: im2col conv mismatch at %d: %v vs %v", cfg, i, got.Data()[i], want.Data()[i])
			}
		}
	}
}

// TestCol2ImAdjoint verifies <Im2Col(x), y> == <x, Col2Im(y)>, the defining
// property of an adjoint pair, using random tensors.
func TestCol2ImAdjoint(t *testing.T) {
	r := rng.New(33)
	cfg := struct{ c, h, w, kh, kw, stride, pad int }{2, 6, 6, 3, 3, 2, 1}
	oh := ConvOutSize(cfg.h, cfg.kh, cfg.stride, cfg.pad)
	ow := ConvOutSize(cfg.w, cfg.kw, cfg.stride, cfg.pad)

	x := New(cfg.c, cfg.h, cfg.w)
	for i := range x.Data() {
		x.Data()[i] = r.NormFloat64()
	}
	y := New(cfg.c*cfg.kh*cfg.kw, oh*ow)
	for i := range y.Data() {
		y.Data()[i] = r.NormFloat64()
	}
	lhs := Dot(Im2Col(x, cfg.kh, cfg.kw, cfg.stride, cfg.pad), y)
	rhs := Dot(x, Col2Im(y, cfg.c, cfg.h, cfg.w, cfg.kh, cfg.kw, cfg.stride, cfg.pad))
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestSlice4DView(t *testing.T) {
	x := New(2, 3, 4, 4)
	x.Set(7, 1, 2, 3, 3)
	v := x.Slice4D(1)
	if v.At(2, 3, 3) != 7 {
		t.Fatal("Slice4D lost data")
	}
	v.Set(8, 0, 0, 0)
	if x.At(1, 0, 0, 0) != 8 {
		t.Fatal("Slice4D must be a view")
	}
}

func TestRowView(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	row := x.Row(1)
	if row.At(0) != 3 || row.At(1) != 4 {
		t.Fatal("Row returned wrong data")
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	r := rng.New(55)
	if err := quick.Check(func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		mk := func(m, n int) *Tensor {
			x := New(m, n)
			for i := range x.Data() {
				x.Data()[i] = rr.NormFloat64()
			}
			return x
		}
		a, b, c := mk(3, 4), mk(4, 2), mk(2, 5)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		for i := range left.Data() {
			if math.Abs(left.Data()[i]-right.Data()[i]) > 1e-8 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func BenchmarkMatMul128(b *testing.B) {
	r := rng.New(1)
	a := New(128, 128)
	c := New(128, 128)
	for i := range a.Data() {
		a.Data()[i] = r.Float64()
		c.Data()[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMul(a, c)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	r := rng.New(1)
	img := New(64, 32, 32)
	for i := range img.Data() {
		img.Data()[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Im2Col(img, 3, 3, 1, 1)
	}
}
