// Package tensor implements a small dense n-dimensional array library used
// by the neural-network, SNN and quantization layers of the NEBULA
// simulator.
//
// Tensors are float64, row-major, and carry an explicit shape. Convolutional
// data uses NCHW layout throughout the repository. The package deliberately
// implements only the operations the simulator needs — elementwise
// arithmetic, matrix multiplication, im2col/col2im and pooling — rather than
// a general BLAS.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major n-dimensional array of float64 values.
type Tensor struct {
	shape []int
	data  []float64
}

// New allocates a zero-filled tensor with the given shape. A scalar is
// represented by an empty shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the backing slice. Mutations are visible to the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Size returns the total element count.
func (t *Tensor) Size() int { return len(t.data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NDim returns the number of dimensions.
func (t *Tensor) NDim() int { return len(t.shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view over the same data with a new shape. The element
// count must match. One dimension may be -1 and is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	infer := -1
	n := 1
	for i, d := range shape {
		if d == -1 {
			if infer != -1 {
				panic("tensor: more than one inferred dimension")
			}
			infer = i
		} else {
			n *= d
		}
	}
	s := make([]int, len(shape))
	copy(s, shape)
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		s[infer] = len(t.data) / n
		n *= s[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.shape, len(t.data), shape))
	}
	return &Tensor{shape: s, data: t.data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Fill sets every element to v and returns the tensor.
func (t *Tensor) Fill(v float64) *Tensor {
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Apply replaces each element x with f(x) in place and returns the tensor.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Map returns a new tensor with f applied elementwise.
func (t *Tensor) Map(f func(float64) float64) *Tensor {
	return t.Clone().Apply(f)
}

// AddInPlace adds other elementwise; shapes must match exactly.
func (t *Tensor) AddInPlace(other *Tensor) *Tensor {
	t.assertSameShape(other)
	for i, v := range other.data {
		t.data[i] += v
	}
	return t
}

// SubInPlace subtracts other elementwise.
func (t *Tensor) SubInPlace(other *Tensor) *Tensor {
	t.assertSameShape(other)
	for i, v := range other.data {
		t.data[i] -= v
	}
	return t
}

// MulInPlace multiplies elementwise (Hadamard product).
func (t *Tensor) MulInPlace(other *Tensor) *Tensor {
	t.assertSameShape(other)
	for i, v := range other.data {
		t.data[i] *= v
	}
	return t
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AxpyInPlace computes t += alpha*other.
func (t *Tensor) AxpyInPlace(alpha float64, other *Tensor) *Tensor {
	t.assertSameShape(other)
	for i, v := range other.data {
		t.data[i] += alpha * v
	}
	return t
}

func (t *Tensor) assertSameShape(other *Tensor) {
	if !SameShape(t, other) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.shape, other.shape))
	}
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// AbsMax returns max |x| over all elements (0 for empty tensors).
func (t *Tensor) AbsMax() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	bestIdx := 0
	bestVal := t.data[0]
	for i, v := range t.data {
		if v > bestVal {
			bestVal = v
			bestIdx = i
		}
	}
	return bestIdx
}

// Dot returns the inner product of two same-shaped tensors.
func Dot(a, b *Tensor) float64 {
	a.assertSameShape(b)
	s := 0.0
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s
}

// MatMul multiplies a (m×k) by b (k×n) and returns an m×n tensor.
func MatMul(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic("tensor: MatMul requires 2-D operands")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions differ: %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	// ikj loop order for cache-friendly access to b and out rows.
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.data[kk*n : (kk+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB multiplies a (m×k) by bᵀ where b is n×k, returning m×n.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic("tensor: MatMulTransB requires 2-D operands")
	}
	out := New(a.shape[0], b.shape[0])
	MatMulTransBInto(out, a, b)
	return out
}

// MatMulTransBInto is MatMulTransB writing into a caller-provided m×n
// destination, so per-timestep callers reuse one accumulator buffer.
// Every element of out is assigned.
//
//nebula:hotpath
func MatMulTransBInto(out, a, b *Tensor) {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic("tensor: MatMulTransB requires 2-D operands")
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimensions differ: %v × %vᵀ", a.shape, b.shape))
	}
	if out.NDim() != 2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransB destination %v, want [%d %d]", out.shape, m, n))
	}
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := 0.0
			for kk, av := range arow {
				s += av * brow[kk]
			}
			orow[j] = s
		}
	}
}

// MatMulTransA multiplies aᵀ (where a is k×m) by b (k×n), returning m×n.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic("tensor: MatMulTransA requires 2-D operands")
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimensions differ: %vᵀ × %v", a.shape, b.shape))
	}
	out := New(m, n)
	for kk := 0; kk < k; kk++ {
		arow := a.data[kk*m : (kk+1)*m]
		brow := b.data[kk*n : (kk+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose returns a new tensor that is the transpose of a 2-D tensor.
func (t *Tensor) Transpose() *Tensor {
	if t.NDim() != 2 {
		panic("tensor: Transpose requires a 2-D tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = t.data[i*n+j]
		}
	}
	return out
}

// ConvOutSize returns the output spatial size for a convolution with the
// given input size, kernel, stride and padding.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col unfolds a single image (C×H×W) into a matrix of shape
// (C*KH*KW) × (OH*OW) so that convolution becomes a matrix multiply.
// Padding positions read as zero.
func Im2Col(img *Tensor, kh, kw, stride, pad int) *Tensor {
	if img.NDim() != 3 {
		panic("tensor: Im2Col requires a C×H×W tensor")
	}
	c, h, w := img.shape[0], img.shape[1], img.shape[2]
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	out := New(c*kh*kw, oh*ow)
	Im2ColInto(out, img, kh, kw, stride, pad)
	return out
}

// Im2ColInto is Im2Col writing into a caller-provided
// (C*KH*KW) × (OH*OW) destination, so per-timestep convolution unfolds
// reuse one buffer. The destination is zeroed first (padding positions
// must read as zero).
//
//nebula:hotpath
func Im2ColInto(out, img *Tensor, kh, kw, stride, pad int) {
	if img.NDim() != 3 {
		panic("tensor: Im2Col requires a C×H×W tensor")
	}
	c, h, w := img.shape[0], img.shape[1], img.shape[2]
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	if out.NDim() != 2 || out.shape[0] != c*kh*kw || out.shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Im2Col destination %v, want [%d %d]", out.shape, c*kh*kw, oh*ow))
	}
	for i := range out.data {
		out.data[i] = 0
	}
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				row := ((ch*kh)+ki)*kw + kj
				rowBase := row * oh * ow
				for oi := 0; oi < oh; oi++ {
					ii := oi*stride + ki - pad
					if ii < 0 || ii >= h {
						continue
					}
					srcBase := chBase + ii*w
					dstBase := rowBase + oi*ow
					for oj := 0; oj < ow; oj++ {
						jj := oj*stride + kj - pad
						if jj < 0 || jj >= w {
							continue
						}
						out.data[dstBase+oj] = img.data[srcBase+jj]
					}
				}
			}
		}
	}
}

// Col2Im folds a (C*KH*KW) × (OH*OW) column matrix back into a C×H×W
// image, accumulating overlapping contributions. It is the adjoint of
// Im2Col and is used for convolution backward passes.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	if cols.NDim() != 2 || cols.shape[0] != c*kh*kw || cols.shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im shape %v incompatible with c=%d h=%d w=%d k=%dx%d", cols.shape, c, h, w, kh, kw))
	}
	img := New(c, h, w)
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				row := ((ch*kh)+ki)*kw + kj
				rowBase := row * oh * ow
				for oi := 0; oi < oh; oi++ {
					ii := oi*stride + ki - pad
					if ii < 0 || ii >= h {
						continue
					}
					dstBase := chBase + ii*w
					srcBase := rowBase + oi*ow
					for oj := 0; oj < ow; oj++ {
						jj := oj*stride + kj - pad
						if jj < 0 || jj >= w {
							continue
						}
						img.data[dstBase+jj] += cols.data[srcBase+oj]
					}
				}
			}
		}
	}
	return img
}

// Slice4D returns the i-th item of a 4-D NCHW tensor as a C×H×W view
// sharing the underlying data.
func (t *Tensor) Slice4D(i int) *Tensor {
	if t.NDim() != 4 {
		panic("tensor: Slice4D requires a 4-D tensor")
	}
	n, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	if i < 0 || i >= n {
		panic(fmt.Sprintf("tensor: Slice4D index %d out of %d", i, n))
	}
	sz := c * h * w
	return &Tensor{shape: []int{c, h, w}, data: t.data[i*sz : (i+1)*sz]}
}

// Row returns row i of a 2-D tensor as a view.
func (t *Tensor) Row(i int) *Tensor {
	if t.NDim() != 2 {
		panic("tensor: Row requires a 2-D tensor")
	}
	n := t.shape[1]
	return &Tensor{shape: []int{n}, data: t.data[i*n : (i+1)*n]}
}

// String renders small tensors for debugging.
func (t *Tensor) String() string {
	if len(t.data) > 64 {
		return fmt.Sprintf("Tensor%v{...%d elems, mean=%.4g}", t.shape, len(t.data), t.Mean())
	}
	return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
}
