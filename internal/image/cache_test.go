package image

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// countingMetrics is a plain Metrics sink for the cache tests.
type countingMetrics struct {
	hits, misses, stores, quarantines int
}

func (m *countingMetrics) AddHit()        { m.hits++ }
func (m *countingMetrics) AddMiss()       { m.misses++ }
func (m *countingMetrics) AddStore()      { m.stores++ }
func (m *countingMetrics) AddQuarantine() { m.quarantines++ }

func TestCachePutGet(t *testing.T) {
	m := &countingMetrics{}
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache.SetMetrics(m)
	data := encodeTestImage(t)

	if _, ok := cache.Get("missing"); ok {
		t.Fatal("Get on an empty cache reported a hit")
	}
	if err := cache.Put("k1", data); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Get("k1")
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get after Put: ok=%v, %d bytes, want %d", ok, len(got), len(data))
	}
	if m.hits != 1 || m.misses != 1 || m.stores != 1 {
		t.Fatalf("metrics %+v, want 1 hit / 1 miss / 1 store", m)
	}
}

func TestCacheRejectsInvalidPut(t *testing.T) {
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Put("k", []byte("not an image")); err == nil {
		t.Fatal("Put accepted bytes that fail verification")
	}
	if _, ok := cache.Get("k"); ok {
		t.Fatal("rejected Put still installed an entry")
	}
}

func TestCacheQuarantinesCorruptEntry(t *testing.T) {
	m := &countingMetrics{}
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache.SetMetrics(m)
	data := encodeTestImage(t)
	if err := cache.Put("k1", data); err != nil {
		t.Fatal(err)
	}

	// Flip a payload bit on disk: the next Get must quarantine the entry
	// and report a miss rather than hand out bad bytes.
	path := filepath.Join(cache.Dir(), "k1.nebimg")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerLen+1] ^= 0x08
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get("k1"); ok {
		t.Fatal("Get served a corrupt entry")
	}
	if _, err := os.Stat(filepath.Join(cache.Dir(), "k1.corrupt")); err != nil {
		t.Fatalf("corrupt entry not renamed aside: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still in service: %v", err)
	}
	if _, ok := cache.Get("k1"); ok {
		t.Fatal("Get after quarantine reported a hit")
	}
	if m.quarantines != 1 || m.misses != 2 {
		t.Fatalf("metrics %+v, want 1 quarantine / 2 misses", m)
	}

	// A fresh Put re-installs over the quarantined key.
	if err := cache.Put("k1", data); err != nil {
		t.Fatal(err)
	}
	if got, ok := cache.Get("k1"); !ok || !bytes.Equal(got, data) {
		t.Fatal("Put after quarantine did not restore the entry")
	}
}

func TestNewCacheValidation(t *testing.T) {
	if _, err := NewCache(""); err == nil {
		t.Fatal("NewCache accepted an empty directory")
	}
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	if _, err := NewCache(dir); err != nil {
		t.Fatalf("NewCache did not create nested directories: %v", err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("cache root missing after NewCache: %v", err)
	}
}
