// Package image defines the versioned, checksummed binary chip-image
// format: the persistent artifact of a compiled NEBULA chip.
//
// The paper's chip is program-once hardware — conductances are written
// into the DW-MTJ crossbars and then only read — so the programmed state
// is itself the durable artifact. A chip image captures everything the
// generation-stamp machinery counts as read-visible compiled state:
// per-crossbar device levels and targets, fault records, line remaps and
// spare allocators, retention clocks, super-tile slot routing and
// retirement, the chip's reliability report and the serializable compile
// configuration. Baked read kernels are deliberately excluded: they are
// pure caches, bitwise-reconstructible, and are rebaked on load.
//
// # Wire layout
//
//	offset  size  field
//	0       8     magic "NEBULAIM"
//	8       4     format version, uint32 little-endian
//	12      8     payload length, uint64 little-endian
//	20      n     gob-encoded Payload
//	20+n    32    SHA-256 over bytes [0, 20+n)
//
// Decoding is defensive end to end: truncated, bit-flipped or
// version-skewed inputs surface as typed *FormatError / *ChecksumError,
// never a panic — the FuzzLoadSession target holds the decoder to that.
//
// # Determinism
//
// The payload contains no maps, no pointers into shared state and no
// timestamps, and every producer fills it in a fixed traversal order, so
// two compiles of the same model and options emit byte-identical images
// within one binary (`make image-check` gates exactly this). Gob's
// type-descriptor stream is not specified to be stable across Go
// releases, which is why the cache key bakes in the format version and a
// cache is a local artifact, not an interchange format.
package image

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"

	"repro/internal/crossbar"
	"repro/internal/device"
	"repro/internal/reliability"
)

const (
	// Magic identifies a chip image; it is the first 8 bytes of the file.
	Magic = "NEBULAIM"
	// FormatVersion is the current image format version. Readers reject
	// any other version: images are cheap to regenerate, so there is no
	// cross-version migration path, only a clean typed rejection.
	FormatVersion uint32 = 1
	// headerLen is magic + version + payload length.
	headerLen = len(Magic) + 4 + 8
	// checksumLen is the SHA-256 trailer.
	checksumLen = sha256.Size
	// maxPayload bounds the declared payload length so a corrupt header
	// cannot demand an absurd allocation.
	maxPayload = 1 << 31
)

// FormatError reports a structurally invalid image: bad magic, an
// unsupported format version, a truncated stream, or a payload that does
// not decode into a semantically valid chip.
type FormatError struct {
	// Reason describes what was wrong.
	Reason string
	// Err is the underlying decode error, when one exists.
	Err error
}

// Error implements error.
func (e *FormatError) Error() string {
	if e.Err != nil {
		return "image: invalid chip image: " + e.Reason + ": " + e.Err.Error()
	}
	return "image: invalid chip image: " + e.Reason
}

// Unwrap returns the underlying decode error, if any.
func (e *FormatError) Unwrap() error { return e.Err }

// formatErrf constructs a *FormatError with a formatted reason.
func formatErrf(format string, args ...interface{}) *FormatError {
	return &FormatError{Reason: fmt.Sprintf(format, args...)}
}

// ChecksumError reports an image whose SHA-256 trailer does not match its
// contents — bit rot or tampering between write and read.
type ChecksumError struct {
	// Want and Got are the stored and recomputed digests, hex-encoded.
	Want, Got string
}

// Error implements error.
func (e *ChecksumError) Error() string {
	return "image: checksum mismatch: stored " + e.Want + ", computed " + e.Got
}

// Payload is the decoded content of a chip image.
type Payload struct {
	// Model is the converted network the chip was compiled from.
	Model ModelSpec
	// Chip is the hardware environment: device physics, analog knobs,
	// reliability configuration and post-compile health.
	Chip ChipSpec
	// Config is the compile configuration the session was built with.
	Config SessionConfig
	// Tiles holds the programmed super-tile states in the chip's
	// canonical traversal order (spiking stages, spill blocks in block
	// order, then ANN stages).
	Tiles []TileState
}

// ChipSpec records the hardware environment a chip was compiled under.
// Two chips with equal specs compile a given model identically.
type ChipSpec struct {
	// Device is the DW-MTJ device calibration.
	Device device.Params
	// Crossbar holds the analog non-ideality knobs.
	Crossbar crossbar.Config
	// WMax is the full-scale weight magnitude.
	WMax float64
	// FaultRate and FaultMode configure legacy compile-time fault
	// injection (zero when the reliability config drives injection).
	FaultRate float64
	FaultMode int
	// Rel is the reliability configuration (nil when unprotected).
	Rel *reliability.Config
	// HadNoise records whether the chip carried a device-noise source.
	// The stream itself is not persisted — a frozen session never draws
	// from it — but its presence gates read-noise in the run path, so it
	// must survive the round trip.
	HadNoise bool
	// NoiseFingerprint digests the noise stream's state at save time, so
	// the cache key distinguishes chips whose compile-time stochastic
	// draws (fault injection, program variation) differed.
	NoiseFingerprint uint64
	// Health is the chip's reliability report after compilation.
	Health reliability.Report
}

// SessionConfig is the serializable compile configuration. It mirrors
// arch.CompileConfig field for field; the mirror exists because package
// arch imports this package.
type SessionConfig struct {
	// Mode is the execution mode ordinal (arch.Mode).
	Mode int
	// Timesteps is the spiking window (0 in ANN mode).
	Timesteps int
	// HybridSplit is the number of trailing non-spiking stages.
	HybridSplit int
	// Parallelism is the compiled worker-count limit.
	Parallelism int
	// Seed is the session RNG seed; SeedSet records whether it was given
	// explicitly.
	Seed    uint64
	SeedSet bool
	// InputShape is the declared input tensor shape, when given.
	InputShape []int
	// Wear records a wear-mode session (not imageable; stored for the
	// error message on load).
	Wear bool
	// NoFrozenKernel disables baking the frozen read kernels.
	NoFrozenKernel bool
}

// TileState is one programmed super-tile: logical geometry, slot→array
// routing, retirement flags, and the non-blank member arrays.
type TileState struct {
	// Rows, Cols are the logical matrix dimensions the tile was
	// programmed with.
	Rows, Cols int
	// WMax is the weight range of the programming.
	WMax float64
	// SlotAC routes each logical slot to a member array index.
	SlotAC []int
	// Retired flags member arrays pulled from service.
	Retired []bool
	// ACs lists the member arrays whose state differs from a fresh
	// array, in ascending Index order. Arrays not listed are blank and
	// are reconstructed from geometry alone.
	ACs []ACState
}

// ACState is one member array's device state, keyed by its index within
// the super-tile. State holds the array's encoded crossbar.State blob
// (State.GobEncode) rather than the decoded structure: embedding opaque
// blobs lets the loader decode and import member arrays in parallel —
// they are disjoint — instead of inside one sequential gob pass.
type ACState struct {
	Index int
	State []byte
}

// Encode writes the payload to w in the image wire format.
func Encode(w io.Writer, p *Payload) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(p); err != nil {
		return fmt.Errorf("image: encode payload: %w", err)
	}
	hdr := make([]byte, headerLen)
	copy(hdr, Magic)
	binary.LittleEndian.PutUint32(hdr[8:12], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(body.Len()))
	sum := sha256.New()
	_, _ = sum.Write(hdr) // sha256 writes never fail
	_, _ = sum.Write(body.Bytes())
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("image: write header: %w", err)
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return fmt.Errorf("image: write payload: %w", err)
	}
	if _, err := w.Write(sum.Sum(nil)); err != nil {
		return fmt.Errorf("image: write checksum: %w", err)
	}
	return nil
}

// Decode reads one image from r, verifying the envelope and checksum and
// decoding the payload. Malformed input yields a *FormatError or
// *ChecksumError; Decode never panics.
func Decode(r io.Reader) (*Payload, error) {
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, &FormatError{Reason: "truncated header", Err: err}
	}
	plen, err := checkHeader(hdr)
	if err != nil {
		return nil, err
	}
	// LimitReader + ReadAll keeps a lying length field from forcing a
	// huge up-front allocation: only bytes actually present are buffered.
	body, err := io.ReadAll(io.LimitReader(r, int64(plen)))
	if err != nil {
		return nil, &FormatError{Reason: "reading payload", Err: err}
	}
	if uint64(len(body)) != plen {
		return nil, formatErrf("truncated payload: header declares %d bytes, got %d", plen, len(body))
	}
	stored := make([]byte, checksumLen)
	if _, err := io.ReadFull(r, stored); err != nil {
		return nil, &FormatError{Reason: "truncated checksum", Err: err}
	}
	sum := sha256.New()
	_, _ = sum.Write(hdr) // sha256 writes never fail
	_, _ = sum.Write(body)
	if got := sum.Sum(nil); !bytes.Equal(got, stored) {
		return nil, &ChecksumError{Want: hex.EncodeToString(stored), Got: hex.EncodeToString(got)}
	}
	var p Payload
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&p); err != nil {
		return nil, &FormatError{Reason: "decoding payload", Err: err}
	}
	return &p, nil
}

// DecodeTrusted decodes an in-memory image whose envelope and checksum
// have already been verified — Cache.Get runs Verify before handing the
// bytes out. It re-checks the framing, which is cheap, but skips the
// checksum pass, which on the cache-hit path would be the second full
// hash of the same bytes. Callers holding bytes of unknown provenance
// must use Decode or Verify instead.
func DecodeTrusted(data []byte) (*Payload, error) {
	if len(data) < headerLen+checksumLen {
		return nil, formatErrf("image is %d bytes, shorter than the %d-byte envelope", len(data), headerLen+checksumLen)
	}
	plen, err := checkHeader(data[:headerLen])
	if err != nil {
		return nil, err
	}
	if uint64(len(data)) != uint64(headerLen)+plen+uint64(checksumLen) {
		return nil, formatErrf("image is %d bytes, header declares %d", len(data), uint64(headerLen)+plen+uint64(checksumLen))
	}
	body := data[headerLen : uint64(headerLen)+plen]
	var p Payload
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&p); err != nil {
		return nil, &FormatError{Reason: "decoding payload", Err: err}
	}
	return &p, nil
}

// checkHeader validates a wire header and returns the declared payload
// length.
func checkHeader(hdr []byte) (uint64, error) {
	if string(hdr[:len(Magic)]) != Magic {
		return 0, formatErrf("bad magic %q", string(hdr[:len(Magic)]))
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != FormatVersion {
		return 0, formatErrf("format version %d, this build reads version %d", v, FormatVersion)
	}
	plen := binary.LittleEndian.Uint64(hdr[12:20])
	if plen > maxPayload {
		return 0, formatErrf("declared payload length %d exceeds the %d cap", plen, maxPayload)
	}
	return plen, nil
}

// Verify checks the envelope and checksum of an in-memory image without
// decoding the payload — the cheap integrity test the cache runs before
// handing an entry out.
func Verify(data []byte) error {
	if len(data) < headerLen+checksumLen {
		return formatErrf("image is %d bytes, shorter than the %d-byte envelope", len(data), headerLen+checksumLen)
	}
	plen, err := checkHeader(data[:headerLen])
	if err != nil {
		return err
	}
	if uint64(len(data)) != uint64(headerLen)+plen+uint64(checksumLen) {
		return formatErrf("image is %d bytes, header declares %d", len(data), uint64(headerLen)+plen+uint64(checksumLen))
	}
	sum := sha256.Sum256(data[:uint64(headerLen)+plen])
	if !bytes.Equal(sum[:], data[uint64(headerLen)+plen:]) {
		return &ChecksumError{
			Want: hex.EncodeToString(data[uint64(headerLen)+plen:]),
			Got:  hex.EncodeToString(sum[:]),
		}
	}
	return nil
}

// Key returns the content-addressed cache key of a compile: the SHA-256
// hex digest over the format version, the model, the chip environment and
// the compile configuration. Everything that can change a compiled
// chip's read-visible state is in the digest, so equal keys mean the
// cached image is interchangeable with a fresh compile.
func Key(model *ModelSpec, chip *ChipSpec, cfg *SessionConfig) (string, error) {
	sum := sha256.New()
	enc := gob.NewEncoder(sum)
	payload := struct {
		Version uint32
		Model   ModelSpec
		Chip    ChipSpec
		Config  SessionConfig
	}{Version: FormatVersion, Model: *model, Chip: *chip, Config: *cfg}
	if err := enc.Encode(payload); err != nil {
		return "", fmt.Errorf("image: hash compile inputs: %w", err)
	}
	return hex.EncodeToString(sum.Sum(nil)), nil
}
