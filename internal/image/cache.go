package image

import (
	"fmt"
	"os"
	"path/filepath"
)

// This file is the content-addressed compile cache: a flat directory of
// chip images keyed by Key(model, chip, config). Writes are
// temp-file + atomic-rename so concurrent processes never observe a
// half-written entry; reads verify the envelope checksum and quarantine
// corrupt entries by renaming them aside, so one flipped bit costs one
// recompile, not a crash loop.

// Metrics receives cache lifecycle events. internal/obs provides the
// canonical implementation (obs.CacheRecorder); the interface lives here
// so this package stays import-light.
type Metrics interface {
	// AddHit counts a Get served from a verified entry.
	AddHit()
	// AddMiss counts a Get with no usable entry.
	AddMiss()
	// AddStore counts a Put that installed an entry.
	AddStore()
	// AddQuarantine counts a corrupt entry renamed out of service.
	AddQuarantine()
}

// Cache is a content-addressed on-disk store of chip images.
type Cache struct {
	dir     string
	metrics Metrics
}

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("image: cache directory must be non-empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("image: create cache directory: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// SetMetrics attaches a lifecycle-event sink (nil detaches). It returns
// the receiver for chaining.
func (c *Cache) SetMetrics(m Metrics) *Cache {
	c.metrics = m
	return c
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// entryPath returns the on-disk path of a key's image.
func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".nebimg")
}

// Get returns the stored image bytes for key, or ok=false on a miss. An
// entry that fails envelope verification is quarantined (renamed to
// <key>.corrupt, best effort) and reported as a miss.
func (c *Cache) Get(key string) (data []byte, ok bool) {
	path := c.entryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		c.miss()
		return nil, false
	}
	if err := Verify(raw); err != nil {
		c.Quarantine(key)
		c.miss()
		return nil, false
	}
	if c.metrics != nil {
		c.metrics.AddHit()
	}
	return raw, true
}

// Put installs the image bytes under key. The data is verified first —
// the cache never stores what it would immediately quarantine — then
// written to a temporary file and atomically renamed into place.
func (c *Cache) Put(key string, data []byte) error {
	if err := Verify(data); err != nil {
		return fmt.Errorf("image: refusing to cache an invalid image: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("image: cache write: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("image: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("image: cache write: %w", err)
	}
	if err := os.Rename(tmpName, c.entryPath(key)); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("image: cache install: %w", err)
	}
	if c.metrics != nil {
		c.metrics.AddStore()
	}
	return nil
}

// Quarantine renames key's entry to <key>.corrupt so a later Get recompiles
// instead of rereading known-bad bytes. Quarantining a missing entry is a
// no-op.
func (c *Cache) Quarantine(key string) {
	if err := os.Rename(c.entryPath(key), filepath.Join(c.dir, key+".corrupt")); err == nil {
		if c.metrics != nil {
			c.metrics.AddQuarantine()
		}
	}
}

// miss reports a miss to the metrics sink.
func (c *Cache) miss() {
	if c.metrics != nil {
		c.metrics.AddMiss()
	}
}
