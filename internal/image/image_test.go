package image

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// testPayload builds a small but fully populated payload: model spec
// with tensor data, chip environment, compile configuration and one
// programmed tile.
func testPayload() *Payload {
	return &Payload{
		Model: ModelSpec{
			Name:    "m",
			Layers:  []LayerSpec{{Kind: "dense", Name: "fc", VTh: 1, HasB: false}},
			Tensors: []Vector{{0.5, -1.25, 3, 0}},
			Shapes:  [][]int{{2, 2}},
			Lambda:  []float64{1.5},
		},
		Chip:   ChipSpec{WMax: 1.5, HadNoise: true, NoiseFingerprint: 42},
		Config: SessionConfig{Mode: 1, Timesteps: 8, Seed: 9, SeedSet: true},
		Tiles: []TileState{{
			Rows: 2, Cols: 2, WMax: 1.5,
			SlotAC:  []int{0},
			Retired: []bool{false},
			ACs:     []ACState{{Index: 0, State: []byte{1, 2, 3}}},
		}},
	}
}

// encodeTestImage renders the test payload into wire bytes.
func encodeTestImage(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, testPayload()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data := encodeTestImage(t)
	if err := Verify(data); err != nil {
		t.Fatalf("Verify on fresh image: %v", err)
	}
	p, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, testPayload()) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", p, testPayload())
	}
	pt, err := DecodeTrusted(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pt, p) {
		t.Fatal("DecodeTrusted disagrees with Decode on a valid image")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, b := encodeTestImage(t), encodeTestImage(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same payload differ")
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	data := encodeTestImage(t)

	for _, n := range []int{0, 7, headerLen - 1, headerLen + 3, len(data) - 1} {
		var fe *FormatError
		if _, err := Decode(bytes.NewReader(data[:n])); !errors.As(err, &fe) {
			t.Fatalf("truncated to %d: got %v, want *FormatError", n, err)
		}
	}

	badMagic := append([]byte(nil), data...)
	badMagic[0] = 'X'
	var fe *FormatError
	if _, err := Decode(bytes.NewReader(badMagic)); !errors.As(err, &fe) {
		t.Fatalf("bad magic: got %v, want *FormatError", err)
	}

	badVersion := append([]byte(nil), data...)
	badVersion[8]++
	if _, err := Decode(bytes.NewReader(badVersion)); !errors.As(err, &fe) {
		t.Fatalf("bad version: got %v, want *FormatError", err)
	}
	if err := Verify(badVersion); !errors.As(err, &fe) {
		t.Fatalf("Verify bad version: got %v, want *FormatError", err)
	}

	flipped := append([]byte(nil), data...)
	flipped[headerLen+2] ^= 0x10
	var ce *ChecksumError
	if _, err := Decode(bytes.NewReader(flipped)); !errors.As(err, &ce) {
		t.Fatalf("flipped payload: got %v, want *ChecksumError", err)
	}
	if err := Verify(flipped); !errors.As(err, &ce) {
		t.Fatalf("Verify flipped payload: got %v, want *ChecksumError", err)
	}
}

func TestKeyDeterministicAndSensitive(t *testing.T) {
	p := testPayload()
	key := func(p *Payload) string {
		t.Helper()
		k, err := Key(&p.Model, &p.Chip, &p.Config)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base := key(p)
	if key(testPayload()) != base {
		t.Fatal("equal inputs hash to different keys")
	}

	m := testPayload()
	m.Model.Tensors[0][1] = -1.26
	c := testPayload()
	c.Chip.NoiseFingerprint++
	cfg := testPayload()
	cfg.Config.Timesteps++
	for name, mut := range map[string]*Payload{"model": m, "chip": c, "config": cfg} {
		if key(mut) == base {
			t.Fatalf("changing the %s did not change the key", name)
		}
	}
}

func TestVectorCodec(t *testing.T) {
	v := Vector{1.5, -2.25, 0, 1e300}
	raw, err := v.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var got Vector
	if err := got.GobDecode(raw); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("vector round trip: %v != %v", got, v)
	}
	if err := got.GobDecode([]byte{1, 2, 3}); err == nil {
		t.Fatal("odd-length vector data accepted")
	}
}

func TestDecodeModelValidates(t *testing.T) {
	ok := testPayload().Model
	if _, err := DecodeModel(&ok); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	var fe *FormatError
	shape := testPayload().Model
	shape.Shapes[0] = []int{3, 2}
	if _, err := DecodeModel(&shape); !errors.As(err, &fe) {
		t.Fatalf("shape/data mismatch: got %v, want *FormatError", err)
	}

	kind := testPayload().Model
	kind.Layers[0].Kind = "warp"
	if _, err := DecodeModel(&kind); !errors.As(err, &fe) {
		t.Fatalf("unknown layer kind: got %v, want *FormatError", err)
	}

	extra := testPayload().Model
	extra.Tensors = append(extra.Tensors, Vector{1})
	extra.Shapes = append(extra.Shapes, []int{1})
	if _, err := DecodeModel(&extra); !errors.As(err, &fe) {
		t.Fatalf("unconsumed tensor: got %v, want *FormatError", err)
	}
}
