package image

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/convert"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// This file is the model half of the image payload: a converted spiking
// network flattened into plain slices (the modelio idiom) and rebuilt
// through the public snn constructors. The folded source ANN is not
// persisted — no compiled path reads it — so a decoded model carries a
// nil Folded.

// maxTensorElems bounds any single decoded tensor; a corrupt spec cannot
// demand an unbounded allocation.
const maxTensorElems = 1 << 26

// Vector is a tensor's flat data with a raw little-endian wire form.
// Gob's native []float64 encoding walks every element through
// reflection and a varint coder — for the megabytes of weights in a
// model spec that is the slowest part of an image decode — so Vector
// moves the same bits as one opaque byte string.
type Vector []float64

// GobEncode serializes the vector as raw little-endian float64 bits.
func (v Vector) GobEncode() ([]byte, error) {
	out := make([]byte, 0, 8*len(v))
	for _, f := range v {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(f))
	}
	return out, nil
}

// GobDecode restores a vector from its raw form, bounding the claimed
// element count.
func (v *Vector) GobDecode(data []byte) error {
	if len(data)%8 != 0 {
		return fmt.Errorf("image: tensor data is %d bytes, not a multiple of 8", len(data))
	}
	n := len(data) / 8
	if n > maxTensorElems {
		return fmt.Errorf("image: tensor data claims %d elements, cap is %d", n, maxTensorElems)
	}
	out := make(Vector, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	*v = out
	return nil
}

// ModelSpec is the serializable form of a convert.Converted.
type ModelSpec struct {
	// Name is the network name.
	Name string
	// Layers describes every SNN layer in order.
	Layers []LayerSpec
	// Tensors and Shapes hold the layer parameters in traversal order:
	// for each layer, W then (when HasB) B.
	Tensors []Vector
	Shapes  [][]int
	// Lambda, StageANNLayer and Stages carry the conversion metadata the
	// hybrid splitter and observability layout read.
	Lambda        []float64
	StageANNLayer []int
	Stages        []convert.Stage
	// Convert is the conversion configuration (encoder gain lives here).
	Convert convert.Config
}

// LayerSpec describes one SNN layer sans parameters.
type LayerSpec struct {
	// Kind is one of "conv", "dense", "pool", "flatten", "output".
	Kind string
	// Name is the layer name.
	Name string
	// Conv geometry.
	Stride, Pad, Groups int
	// Pool geometry (K is the window, Stride reused for the pool stride).
	K int
	// IF neuron parameters (conv/dense/pool).
	VTh, Leak  float64
	Refractory int
	Mode       int
	// HasB records whether a bias tensor follows the weight tensor.
	HasB bool
}

// EncodeModel flattens a converted network into its serializable spec.
func EncodeModel(m *convert.Converted) (*ModelSpec, error) {
	if m == nil || m.SNN == nil {
		return nil, fmt.Errorf("image: nil model")
	}
	spec := &ModelSpec{
		Name:          m.SNN.Name(),
		Lambda:        append([]float64(nil), m.Lambda...),
		StageANNLayer: append([]int(nil), m.StageANNLayer...),
		Stages:        append([]convert.Stage(nil), m.Stages...),
		Convert:       m.Cfg,
	}
	// The spec aliases the model's tensor data rather than copying it: a
	// spec is read-only — hashed by Key, serialized by Encode — and the
	// megabytes of weights are the bulk of it, so the alias is what keeps
	// cache-key computation cheap on every CompileCached call.
	addTensor := func(t *tensor.Tensor) {
		spec.Tensors = append(spec.Tensors, Vector(t.Data()))
		spec.Shapes = append(spec.Shapes, append([]int(nil), t.Shape()...))
	}
	for _, layer := range m.SNN.Layers {
		switch v := layer.(type) {
		case *snn.Conv:
			ls := LayerSpec{Kind: "conv", Name: v.Name(), Stride: v.Stride, Pad: v.Pad,
				Groups: v.Groups, VTh: v.IF.VTh, Leak: v.IF.Leak,
				Refractory: v.IF.Refractory, Mode: int(v.IF.Mode), HasB: v.B != nil}
			spec.Layers = append(spec.Layers, ls)
			addTensor(v.W)
			if v.B != nil {
				addTensor(v.B)
			}
		case *snn.Dense:
			ls := LayerSpec{Kind: "dense", Name: v.Name(), VTh: v.IF.VTh, Leak: v.IF.Leak,
				Refractory: v.IF.Refractory, Mode: int(v.IF.Mode), HasB: v.B != nil}
			spec.Layers = append(spec.Layers, ls)
			addTensor(v.W)
			if v.B != nil {
				addTensor(v.B)
			}
		case *snn.AvgPoolIF:
			spec.Layers = append(spec.Layers, LayerSpec{Kind: "pool", Name: v.Name(),
				K: v.K, Stride: v.Stride, VTh: v.IF.VTh, Leak: v.IF.Leak,
				Refractory: v.IF.Refractory, Mode: int(v.IF.Mode)})
		case *snn.Flatten:
			spec.Layers = append(spec.Layers, LayerSpec{Kind: "flatten", Name: v.Name()})
		case *snn.Output:
			spec.Layers = append(spec.Layers, LayerSpec{Kind: "output", Name: v.Name(), HasB: v.B != nil})
			addTensor(v.W)
			if v.B != nil {
				addTensor(v.B)
			}
		default:
			return nil, fmt.Errorf("image: unsupported layer type %T", layer)
		}
	}
	return spec, nil
}

// DecodeModel rebuilds a converted network from its spec. Every geometric
// claim the spec makes is validated before any tensor is constructed, so
// a corrupted spec yields a *FormatError, never a panic.
func DecodeModel(spec *ModelSpec) (*convert.Converted, error) {
	if len(spec.Tensors) != len(spec.Shapes) {
		return nil, formatErrf("model: %d tensors but %d shapes", len(spec.Tensors), len(spec.Shapes))
	}
	next := 0
	take := func(wantDims int) (*tensor.Tensor, error) {
		if next >= len(spec.Tensors) {
			return nil, formatErrf("model: layer table demands tensor %d, only %d present", next, len(spec.Tensors))
		}
		data, shape := spec.Tensors[next], spec.Shapes[next]
		next++
		if wantDims > 0 && len(shape) != wantDims {
			return nil, formatErrf("model: tensor %d has %d dims, want %d", next-1, len(shape), wantDims)
		}
		elems := 1
		for _, d := range shape {
			if d <= 0 || d > maxTensorElems {
				return nil, formatErrf("model: tensor %d has invalid dim %d", next-1, d)
			}
			elems *= d
			if elems > maxTensorElems {
				return nil, formatErrf("model: tensor %d exceeds the element cap", next-1)
			}
		}
		if elems != len(data) {
			return nil, formatErrf("model: tensor %d shape %v wants %d elements, data has %d", next-1, shape, elems, len(data))
		}
		// The rebuilt tensor aliases the spec's data: both sides are
		// read-only from here on, and the weights dominate the decode.
		return tensor.FromSlice([]float64(data), shape...), nil
	}
	var layers []snn.Layer
	for i, ls := range spec.Layers {
		if ls.Mode < 0 || ls.Mode > int(snn.ResetToZero) {
			return nil, formatErrf("model: layer %d has unknown reset mode %d", i, ls.Mode)
		}
		mode := snn.ResetMode(ls.Mode)
		switch ls.Kind {
		case "conv":
			if ls.Stride < 1 || ls.Pad < 0 || ls.Groups < 1 {
				return nil, formatErrf("model: conv layer %d has invalid geometry (stride %d, pad %d, groups %d)", i, ls.Stride, ls.Pad, ls.Groups)
			}
			w, err := take(4)
			if err != nil {
				return nil, err
			}
			if w.Dim(0)%ls.Groups != 0 {
				return nil, formatErrf("model: conv layer %d: %d output channels not divisible by %d groups", i, w.Dim(0), ls.Groups)
			}
			b, err := takeBias(take, ls.HasB, w.Dim(0))
			if err != nil {
				return nil, err
			}
			layer := snn.NewConv(ls.Name, w, b, ls.Stride, ls.Pad, ls.Groups, ls.VTh, mode)
			layer.IF.Leak, layer.IF.Refractory = ls.Leak, ls.Refractory
			layers = append(layers, layer)
		case "dense":
			w, err := take(2)
			if err != nil {
				return nil, err
			}
			b, err := takeBias(take, ls.HasB, w.Dim(0))
			if err != nil {
				return nil, err
			}
			layer := snn.NewDense(ls.Name, w, b, ls.VTh, mode)
			layer.IF.Leak, layer.IF.Refractory = ls.Leak, ls.Refractory
			layers = append(layers, layer)
		case "pool":
			if ls.K < 1 || ls.Stride < 1 {
				return nil, formatErrf("model: pool layer %d has invalid geometry (k %d, stride %d)", i, ls.K, ls.Stride)
			}
			layer := snn.NewAvgPoolIF(ls.Name, ls.K, ls.Stride, ls.VTh, mode)
			layer.IF.Leak, layer.IF.Refractory = ls.Leak, ls.Refractory
			layers = append(layers, layer)
		case "flatten":
			layers = append(layers, snn.NewFlatten(ls.Name))
		case "output":
			w, err := take(2)
			if err != nil {
				return nil, err
			}
			b, err := takeBias(take, ls.HasB, w.Dim(0))
			if err != nil {
				return nil, err
			}
			layers = append(layers, snn.NewOutput(ls.Name, w, b))
		default:
			return nil, formatErrf("model: layer %d has unknown kind %q", i, ls.Kind)
		}
	}
	if next != len(spec.Tensors) {
		return nil, formatErrf("model: %d tensors present, layer table consumed %d", len(spec.Tensors), next)
	}
	for i, st := range spec.Stages {
		if st.SNNLayer < 0 || st.SNNLayer >= len(layers) {
			return nil, formatErrf("model: stage %d references layer %d of %d", i, st.SNNLayer, len(layers))
		}
	}
	return &convert.Converted{
		SNN:           snn.NewNetwork(spec.Name, layers...),
		Lambda:        append([]float64(nil), spec.Lambda...),
		StageANNLayer: append([]int(nil), spec.StageANNLayer...),
		Stages:        append([]convert.Stage(nil), spec.Stages...),
		Cfg:           spec.Convert,
	}, nil
}

// takeBias pops the bias tensor when the spec declares one, validating
// its length against the layer's output count.
func takeBias(take func(int) (*tensor.Tensor, error), has bool, want int) (*tensor.Tensor, error) {
	if !has {
		return nil, nil
	}
	b, err := take(1)
	if err != nil {
		return nil, err
	}
	if b.Dim(0) != want {
		return nil, formatErrf("model: bias length %d, want %d", b.Dim(0), want)
	}
	return b, nil
}
