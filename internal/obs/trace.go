package obs

// TraceEvent is one per-timestep observation of a spiking stage: how
// many spikes stage `Stage` of run `Run` emitted at timestep `Timestep`.
// The input bucket (stage 0 of spiking layouts) traces encoder spikes.
type TraceEvent struct {
	Run      int64  `json:"run"`
	Timestep int    `json:"timestep"`
	Stage    int    `json:"stage"`
	Layer    string `json:"layer"`
	Spikes   int64  `json:"spikes"`
}

// traceRing is a fixed-capacity ring of trace events: pushes overwrite
// the oldest entry once full, bounding memory regardless of run count.
type traceRing struct {
	buf  []TraceEvent
	next int
	full bool
}

// newTraceRing allocates a ring holding up to capacity events.
func newTraceRing(capacity int) *traceRing {
	return &traceRing{buf: make([]TraceEvent, 0, capacity)}
}

// push appends an event, overwriting the oldest when full.
func (g *traceRing) push(ev TraceEvent) {
	if len(g.buf) < cap(g.buf) {
		g.buf = append(g.buf, ev)
		return
	}
	g.buf[g.next] = ev
	g.next = (g.next + 1) % cap(g.buf)
	g.full = true
}

// events returns the retained events oldest-first.
func (g *traceRing) events() []TraceEvent {
	if !g.full {
		out := make([]TraceEvent, len(g.buf))
		copy(out, g.buf)
		return out
	}
	out := make([]TraceEvent, 0, len(g.buf))
	out = append(out, g.buf[g.next:]...)
	out = append(out, g.buf[:g.next]...)
	return out
}
