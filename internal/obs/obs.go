// Package obs is the hardware-counter observability layer: per-stage
// activity counters (spikes, MAC reads, ADC conversions, NoC hops, eDRAM
// accesses) collected by the session engine, merged deterministically
// across concurrent workers, and exported as JSON or Prometheus text
// plus a derived energy attribution on top of the Table III
// coefficients.
//
// The design is zero-cost when disabled: a session compiled without
// arch.WithObserver carries a nil recorder and the engine skips every
// accounting branch; there are no atomics anywhere on that path. With a
// recorder attached, each run accumulates into a private RunRecord shard
// (no cross-worker sharing), and the engine merges shards under the
// recorder lock in input order only — so counter totals are bitwise
// identical between sequential and batched execution at any parallelism,
// the same contract the engine gives for outputs. Float-valued counters
// (accumulated output current) make this ordering load-bearing.
package obs

import (
	"fmt"
	"sync"
)

// Counters is one stage's activity tally. All fields are event counts
// except OutputCurrentUA, which accumulates |I| over columns and
// evaluations (the analog quantity the energy model gates on).
type Counters struct {
	// SpikesEmitted counts output spikes (input-stage entries count
	// encoder spikes entering the pipeline).
	SpikesEmitted int64 `json:"spikes_emitted"`
	// MACReads counts atomic-crossbar evaluations.
	MACReads int64 `json:"mac_reads"`
	// ActiveRowSum accumulates driven rows per crossbar evaluation.
	ActiveRowSum int64 `json:"active_row_sum"`
	// ADCConversions counts spill-path partial-sum digitizations.
	ADCConversions int64 `json:"adc_conversions"`
	// NoCPackets / NoCHops count inter-stage transfers and the mesh hops
	// they traverse.
	NoCPackets int64 `json:"noc_packets"`
	NoCHops    int64 `json:"noc_hops"`
	// EDRAMAccesses counts eDRAM transactions (pipeline stages 1 and 3).
	EDRAMAccesses int64 `json:"edram_accesses"`
	// Cycles counts 110 ns pipeline cycles.
	Cycles int64 `json:"cycles"`
	// SilentStageSkips counts stage-timesteps the event-driven engine
	// skipped entirely because the input spike plane was all-zero.
	SilentStageSkips int64 `json:"silent_stage_skips"`
	// SpikesSkipped counts silent input slots the event-driven path did
	// not drive (plane length minus popcount, per stage-timestep).
	SpikesSkipped int64 `json:"spikes_skipped"`
	// PackedWords counts the packed spike-plane words processed.
	PackedWords int64 `json:"packed_words"`
	// RepeatReads counts crossbar reads served from the timestep-repeat
	// cache (identical spike plane, unchanged conductance generation).
	RepeatReads int64 `json:"repeat_reads"`
	// OutputCurrentUA accumulates column current magnitude in µA.
	OutputCurrentUA float64 `json:"output_current_ua"`
}

// Add folds another tally into c.
func (c *Counters) Add(o Counters) {
	c.SpikesEmitted += o.SpikesEmitted
	c.MACReads += o.MACReads
	c.ActiveRowSum += o.ActiveRowSum
	c.ADCConversions += o.ADCConversions
	c.NoCPackets += o.NoCPackets
	c.NoCHops += o.NoCHops
	c.EDRAMAccesses += o.EDRAMAccesses
	c.Cycles += o.Cycles
	c.SilentStageSkips += o.SilentStageSkips
	c.SpikesSkipped += o.SpikesSkipped
	c.PackedWords += o.PackedWords
	c.RepeatReads += o.RepeatReads
	c.OutputCurrentUA += o.OutputCurrentUA
}

// StageInfo identifies one counter bucket of a compiled pipeline.
type StageInfo struct {
	// Name is the converted layer's name ("input" for the encoder bucket).
	Name string `json:"name"`
	// Kind is the stage kind (encode, conv, dense, pool, flatten, output).
	Kind string `json:"kind"`
	// Domain is the execution domain: "input", "snn" or "ann".
	Domain string `json:"domain"`
	// Core is the neural-core ordinal for weighted stages, -1 otherwise.
	Core int `json:"core"`
	// Tiles is the number of super-tiles serving the stage (spill stages
	// span several), 0 for un-cored stages.
	Tiles int `json:"tiles"`
}

// Layout is the counter schema of one compiled session: the ordered
// stage buckets the engine attributes activity to. Sessions compiled
// from the same model in the same mode produce equal layouts, so one
// recorder may observe any number of them.
type Layout struct {
	Model  string      `json:"model"`
	Mode   string      `json:"mode"`
	Stages []StageInfo `json:"stages"`
}

// equal reports whether two layouts describe the same counter schema.
func (l *Layout) equal(o *Layout) bool {
	if l.Model != o.Model || l.Mode != o.Mode || len(l.Stages) != len(o.Stages) {
		return false
	}
	for i := range l.Stages {
		if l.Stages[i] != o.Stages[i] {
			return false
		}
	}
	return true
}

// RunRecord is one run's private counter shard. The engine allocates one
// per run (never shared between goroutines), fills it lock-free while
// the run executes, and hands it to Recorder.MergeRun on success — or
// drops it on the floor when the run fails, so a recorder only ever
// contains complete runs.
type RunRecord struct {
	layout  *Layout
	stages  []Counters
	trace   []TraceEvent
	traceOn bool
}

// NewRunRecord allocates a shard shaped for the layout. traceOn enables
// per-timestep trace capture (copied from Recorder.TraceEnabled at run
// start so the disabled path never looks at the ring).
func NewRunRecord(l *Layout, traceOn bool) *RunRecord {
	return &RunRecord{layout: l, stages: make([]Counters, len(l.Stages)), traceOn: traceOn}
}

// Stage returns the counter bucket of stage i for in-place accumulation.
func (r *RunRecord) Stage(i int) *Counters { return &r.stages[i] }

// TraceEnabled reports whether the run should emit trace events.
func (r *RunRecord) TraceEnabled() bool { return r.traceOn }

// AddTrace appends a per-timestep trace event; the run ordinal is
// assigned at merge time.
func (r *RunRecord) AddTrace(ev TraceEvent) {
	if r.traceOn {
		r.trace = append(r.trace, ev)
	}
}

// ProgramRecord tallies compile-time activity: crossbar programming
// energy plus the reliability pipeline's BIST / repair / sparing work.
type ProgramRecord struct {
	// Compiles counts sessions compiled against the recorder.
	Compiles int64 `json:"compiles"`
	// ProgramEnergyFJ is the total synapse programming energy.
	ProgramEnergyFJ float64 `json:"program_energy_fj"`
	// BISTReads / WriteRetries are the scan and repair cost counters.
	BISTReads    int64 `json:"bist_reads"`
	WriteRetries int64 `json:"write_retries"`
	// FaultsFound / Repaired / Compensated summarize BIST outcomes.
	FaultsFound int64 `json:"faults_found"`
	Repaired    int64 `json:"repaired"`
	Compensated int64 `json:"compensated"`
	// SparesConsumed counts remapped lines plus retired tiles.
	SparesConsumed int64 `json:"spares_consumed"`
	// DegradationEvents counts cores that tripped the degradation policy.
	DegradationEvents int64 `json:"degradation_events"`
}

// add folds another program record into p.
func (p *ProgramRecord) add(o ProgramRecord) {
	p.Compiles += o.Compiles
	p.ProgramEnergyFJ += o.ProgramEnergyFJ
	p.BISTReads += o.BISTReads
	p.WriteRetries += o.WriteRetries
	p.FaultsFound += o.FaultsFound
	p.Repaired += o.Repaired
	p.Compensated += o.Compensated
	p.SparesConsumed += o.SparesConsumed
	p.DegradationEvents += o.DegradationEvents
}

// Recorder accumulates counter shards from completed runs. One recorder
// may observe several sessions as long as they share a counter schema
// (same model, same mode); Bind enforces that at compile time. All
// methods are safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	layout  *Layout
	totals  []Counters
	runs    int64
	program ProgramRecord
	ring    *traceRing
}

// RecorderOption configures NewRecorder.
type RecorderOption func(*Recorder)

// WithTrace enables the bounded per-timestep trace ring: the newest
// `capacity` events are retained, oldest overwritten first.
func WithTrace(capacity int) RecorderOption {
	return func(r *Recorder) {
		if capacity > 0 {
			r.ring = newTraceRing(capacity)
		}
	}
}

// NewRecorder builds an empty recorder.
func NewRecorder(opts ...RecorderOption) *Recorder {
	r := &Recorder{}
	for _, o := range opts {
		o(r)
	}
	return r
}

// TraceEnabled reports whether the recorder captures trace events.
func (r *Recorder) TraceEnabled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring != nil
}

// Bind attaches the recorder to a compiled session's counter schema.
// The first Bind adopts the layout; subsequent Binds must present an
// equal schema, so totals from different sessions stay comparable.
func (r *Recorder) Bind(l *Layout) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.layout == nil {
		r.layout = l
		r.totals = make([]Counters, len(l.Stages))
		return nil
	}
	if !r.layout.equal(l) {
		return fmt.Errorf("obs: recorder already bound to %s/%s (%d stages); refusing schema %s/%s (%d stages)",
			r.layout.Model, r.layout.Mode, len(r.layout.Stages), l.Model, l.Mode, len(l.Stages))
	}
	return nil
}

// RecordProgram folds compile-time activity into the recorder.
func (r *Recorder) RecordProgram(p ProgramRecord) {
	r.mu.Lock()
	r.program.add(p)
	r.mu.Unlock()
}

// MergeRun folds one completed run's shard into the totals. Callers must
// serialize merge order themselves when order matters: the engine merges
// batch shards in input order after the whole batch succeeds, which is
// what makes batched totals bitwise equal to sequential ones.
func (r *Recorder) MergeRun(rr *RunRecord) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.layout == nil || !r.layout.equal(rr.layout) {
		return fmt.Errorf("obs: run shard layout does not match the bound recorder (Bind the layout first)")
	}
	run := r.runs
	r.runs++
	for i := range rr.stages {
		r.totals[i].Add(rr.stages[i])
	}
	if r.ring != nil {
		for _, ev := range rr.trace {
			ev.Run = run
			r.ring.push(ev)
		}
	}
	return nil
}

// Runs returns the number of merged runs.
func (r *Recorder) Runs() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs
}

// Reset clears counters, program record, run count and trace while
// keeping the layout binding.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.totals {
		r.totals[i] = Counters{}
	}
	r.runs = 0
	r.program = ProgramRecord{}
	if r.ring != nil {
		r.ring = newTraceRing(cap(r.ring.buf))
	}
}

// StageSnapshot pairs a stage's identity with its accumulated counters.
type StageSnapshot struct {
	StageInfo
	Counters
}

// Snapshot is a deterministic point-in-time copy of the recorder: equal
// recorder states marshal to identical bytes (no maps anywhere).
type Snapshot struct {
	Model   string          `json:"model"`
	Mode    string          `json:"mode"`
	Runs    int64           `json:"runs"`
	Program ProgramRecord   `json:"program"`
	Stages  []StageSnapshot `json:"stages"`
	Totals  Counters        `json:"totals"`
}

// Snapshot copies the recorder state. Totals are summed in stage order,
// so the float accumulation is reproducible.
func (r *Recorder) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Runs: r.runs, Program: r.program}
	if r.layout == nil {
		return s
	}
	s.Model, s.Mode = r.layout.Model, r.layout.Mode
	s.Stages = make([]StageSnapshot, len(r.totals))
	for i := range r.totals {
		s.Stages[i] = StageSnapshot{StageInfo: r.layout.Stages[i], Counters: r.totals[i]}
		s.Totals.Add(r.totals[i])
	}
	return s
}

// Trace returns the retained trace events, oldest first.
func (r *Recorder) Trace() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ring == nil {
		return nil
	}
	return r.ring.events()
}
