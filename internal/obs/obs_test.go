package obs

import (
	"bytes"
	"strings"
	"testing"
)

// testLayout returns a small two-stage spiking layout.
func testLayout() *Layout {
	return &Layout{
		Model: "mlp", Mode: "snn",
		Stages: []StageInfo{
			{Name: "input", Kind: "encode", Domain: "input", Core: -1},
			{Name: "fc1", Kind: "dense", Domain: "snn", Core: 0, Tiles: 1},
		},
	}
}

// shard builds a filled RunRecord for the layout.
func shard(l *Layout, scale int64) *RunRecord {
	rr := NewRunRecord(l, false)
	rr.Stage(0).SpikesEmitted = 10 * scale
	c := rr.Stage(1)
	c.SpikesEmitted = 3 * scale
	c.MACReads = 7 * scale
	c.ActiveRowSum = 21 * scale
	c.ADCConversions = scale
	c.NoCPackets = scale
	c.NoCHops = scale
	c.EDRAMAccesses = 2 * scale
	c.Cycles = 5 * scale
	c.OutputCurrentUA = 0.125 * float64(scale)
	return rr
}

func TestRecorderMergeAndSnapshot(t *testing.T) {
	rec := NewRecorder()
	l := testLayout()
	if err := rec.Bind(l); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if err := rec.MergeRun(shard(l, i)); err != nil {
			t.Fatal(err)
		}
	}
	s := rec.Snapshot()
	if s.Runs != 3 {
		t.Fatalf("runs = %d, want 3", s.Runs)
	}
	if got := s.Stages[1].MACReads; got != 7*(1+2+3) {
		t.Fatalf("stage MACReads = %d, want %d", got, 7*6)
	}
	if got := s.Totals.SpikesEmitted; got != 13*(1+2+3) {
		t.Fatalf("total spikes = %d, want %d", got, 13*6)
	}
	//nebula:lint-ignore float-eq exact sum of exactly representable values
	if s.Totals.OutputCurrentUA != 0.125*6 {
		t.Fatalf("total current = %v, want %v", s.Totals.OutputCurrentUA, 0.125*6)
	}
}

func TestRecorderBindRejectsDifferentSchema(t *testing.T) {
	rec := NewRecorder()
	if err := rec.Bind(testLayout()); err != nil {
		t.Fatal(err)
	}
	other := testLayout()
	other.Mode = "ann"
	if err := rec.Bind(other); err == nil {
		t.Fatal("Bind accepted a mismatched schema")
	}
	// Re-binding the same schema (e.g. a second session over the same
	// model) is allowed.
	if err := rec.Bind(testLayout()); err != nil {
		t.Fatalf("Bind rejected an equal schema: %v", err)
	}
}

func TestMergeRunRequiresBind(t *testing.T) {
	rec := NewRecorder()
	if err := rec.MergeRun(shard(testLayout(), 1)); err == nil {
		t.Fatal("MergeRun accepted a shard before Bind")
	}
}

func TestSnapshotExportDeterminism(t *testing.T) {
	build := func() Snapshot {
		rec := NewRecorder()
		l := testLayout()
		if err := rec.Bind(l); err != nil {
			t.Fatal(err)
		}
		rec.RecordProgram(ProgramRecord{Compiles: 1, ProgramEnergyFJ: 42.5, BISTReads: 9})
		for i := int64(1); i <= 4; i++ {
			if err := rec.MergeRun(shard(l, i)); err != nil {
				t.Fatal(err)
			}
		}
		return rec.Snapshot()
	}
	var j1, j2, p1, p2 bytes.Buffer
	if err := build().WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("JSON export is not deterministic")
	}
	if err := build().WritePrometheus(&p1); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&p2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1.Bytes(), p2.Bytes()) {
		t.Fatal("Prometheus export is not deterministic")
	}
	text := p1.String()
	for _, want := range []string{
		`nebula_obs_info{model="mlp",mode="snn"} 1`,
		"nebula_obs_runs_total 4",
		`nebula_obs_mac_reads_total{stage="1",layer="fc1",kind="dense",domain="snn",core="0"} 70`,
		"nebula_obs_bist_reads_total 9",
		"nebula_obs_program_energy_femtojoules_total 42.5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus export missing %q\n%s", want, text)
		}
	}
}

func TestTraceRingBoundsAndOrder(t *testing.T) {
	rec := NewRecorder(WithTrace(4))
	if !rec.TraceEnabled() {
		t.Fatal("trace not enabled")
	}
	l := testLayout()
	if err := rec.Bind(l); err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		rr := NewRunRecord(l, rec.TraceEnabled())
		for ts := 0; ts < 2; ts++ {
			rr.AddTrace(TraceEvent{Timestep: ts, Stage: 1, Layer: "fc1", Spikes: int64(run*10 + ts)})
		}
		if err := rec.MergeRun(rr); err != nil {
			t.Fatal(err)
		}
	}
	evs := rec.Trace()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want capacity 4", len(evs))
	}
	// 6 events pushed into capacity 4: the two oldest (run 0) evicted.
	want := []TraceEvent{
		{Run: 1, Timestep: 0, Stage: 1, Layer: "fc1", Spikes: 10},
		{Run: 1, Timestep: 1, Stage: 1, Layer: "fc1", Spikes: 11},
		{Run: 2, Timestep: 0, Stage: 1, Layer: "fc1", Spikes: 20},
		{Run: 2, Timestep: 1, Stage: 1, Layer: "fc1", Spikes: 21},
	}
	for i, ev := range evs {
		if ev != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
}

func TestRecorderReset(t *testing.T) {
	rec := NewRecorder(WithTrace(8))
	l := testLayout()
	if err := rec.Bind(l); err != nil {
		t.Fatal(err)
	}
	rr := shard(l, 5)
	rr.AddTrace(TraceEvent{Stage: 1})
	if err := rec.MergeRun(rr); err != nil {
		t.Fatal(err)
	}
	rec.RecordProgram(ProgramRecord{Compiles: 1})
	rec.Reset()
	s := rec.Snapshot()
	if s.Runs != 0 || s.Totals != (Counters{}) || s.Program != (ProgramRecord{}) {
		t.Fatalf("Reset left state behind: %+v", s)
	}
	if len(rec.Trace()) != 0 {
		t.Fatal("Reset left trace events behind")
	}
	// The layout binding survives, so merging continues to work.
	if err := rec.MergeRun(shard(l, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestAttribute(t *testing.T) {
	rec := NewRecorder()
	l := testLayout()
	if err := rec.Bind(l); err != nil {
		t.Fatal(err)
	}
	if err := rec.MergeRun(shard(l, 2)); err != nil {
		t.Fatal(err)
	}
	a := DefaultAttribution(rec.Snapshot())
	if len(a.Stages) != 2 {
		t.Fatalf("attribution has %d stages, want 2", len(a.Stages))
	}
	if !(a.TotalJ > 0) {
		t.Fatalf("total energy = %v, want > 0", a.TotalJ)
	}
	fc1 := a.Stages[1]
	if !(fc1.CrossbarJ > 0 && fc1.NeuronJ > 0 && fc1.EDRAMJ > 0 && fc1.NoCJ > 0) {
		t.Fatalf("expected nonzero components, got %+v", fc1)
	}
	sum := fc1.CrossbarJ + fc1.DriverJ + fc1.NeuronJ + fc1.ADCJ + fc1.SRAMJ + fc1.EDRAMJ + fc1.NoCJ
	if diff := sum - fc1.TotalJ; diff > 1e-30 || diff < -1e-30 {
		t.Fatalf("TotalJ %v does not match component sum %v", fc1.TotalJ, sum)
	}
	// Doubling every counter doubles every attributed joule.
	rec2 := NewRecorder()
	if err := rec2.Bind(l); err != nil {
		t.Fatal(err)
	}
	if err := rec2.MergeRun(shard(l, 4)); err != nil {
		t.Fatal(err)
	}
	a2 := DefaultAttribution(rec2.Snapshot())
	if diff := a2.TotalJ - 2*a.TotalJ; diff > 1e-25 || diff < -1e-25 {
		t.Fatalf("attribution not linear in counters: %v vs 2·%v", a2.TotalJ, a.TotalJ)
	}
}
