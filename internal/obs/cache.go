package obs

import (
	"bytes"
	"io"
	"sync/atomic"
)

// This file is the compile-cache observability surface. The
// content-addressed chip-image cache (internal/image) reports its
// lifecycle events — hits, misses, stores, quarantines — through a
// small metrics interface; CacheRecorder is the canonical
// implementation, mirroring FleetRecorder: wait-free atomic adds on the
// compile path and a plain snapshot struct for export.

// CacheRecorder accumulates compile-cache lifecycle counters. The zero
// value is ready to use; all methods are safe for concurrent use. It
// implements image.Metrics.
type CacheRecorder struct {
	hits        atomic.Int64
	misses      atomic.Int64
	stores      atomic.Int64
	quarantines atomic.Int64
}

// AddHit counts a compile served from a verified cached image.
func (c *CacheRecorder) AddHit() { c.hits.Add(1) }

// AddMiss counts a compile with no usable cached image.
func (c *CacheRecorder) AddMiss() { c.misses.Add(1) }

// AddStore counts a freshly compiled image installed into the cache.
func (c *CacheRecorder) AddStore() { c.stores.Add(1) }

// AddQuarantine counts a corrupt entry renamed out of service.
func (c *CacheRecorder) AddQuarantine() { c.quarantines.Add(1) }

// CacheStats is a point-in-time copy of the cache counters. It contains
// no maps or pointers, so equal stats marshal to identical bytes.
type CacheStats struct {
	// Hits / Misses partition cache lookups.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Stores counts installed entries; Quarantines corrupt entries
	// renamed aside.
	Stores      int64 `json:"stores"`
	Quarantines int64 `json:"quarantines"`
}

// Stats snapshots the counters. Concurrent writers may land between
// field loads; callers wanting exact totals quiesce compiles first.
func (c *CacheRecorder) Stats() CacheStats {
	return CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Stores:      c.stores.Load(),
		Quarantines: c.quarantines.Load(),
	}
}

// cacheSeries defines the Prometheus series of one CacheStats, in fixed
// emission order.
var cacheSeries = []struct {
	name, typ, help string
	get             func(CacheStats) float64
}{
	{"nebula_image_cache_hits_total", "counter", "Compiles served from a verified cached chip image.",
		func(s CacheStats) float64 { return float64(s.Hits) }},
	{"nebula_image_cache_misses_total", "counter", "Compiles with no usable cached chip image.",
		func(s CacheStats) float64 { return float64(s.Misses) }},
	{"nebula_image_cache_stores_total", "counter", "Chip images installed into the cache.",
		func(s CacheStats) float64 { return float64(s.Stores) }},
	{"nebula_image_cache_quarantines_total", "counter", "Corrupt cache entries renamed out of service.",
		func(s CacheStats) float64 { return float64(s.Quarantines) }},
}

// WritePrometheus writes the stats in the Prometheus text exposition
// format with fixed series order, matching Snapshot.WritePrometheus.
func (s CacheStats) WritePrometheus(w io.Writer) error {
	var b bytes.Buffer
	for _, m := range cacheSeries {
		b.WriteString("# HELP " + m.name + " " + m.help + "\n")
		b.WriteString("# TYPE " + m.name + " " + m.typ + "\n")
		b.WriteString(m.name + " " + formatValue(m.get(s)) + "\n")
	}
	_, err := w.Write(b.Bytes())
	return err
}
