package obs

import (
	"bytes"
	"io"
	"sync/atomic"
)

// This file is the pool-level observability surface. A session pool
// (internal/fleet) tracks its own lifecycle events — requests served,
// retries, failovers, replica retirements, recompiles, scrub cycles —
// which live above the per-stage counters a Recorder holds, so they get
// their own small recorder. FleetRecorder is wait-free for writers
// (plain atomic adds from the serving path) and snapshots into a plain
// struct for export.

// FleetRecorder accumulates pool lifecycle counters. The zero value is
// ready to use; all methods are safe for concurrent use.
type FleetRecorder struct {
	replicas    atomic.Int64
	healthy     atomic.Int64
	served      atomic.Int64
	failed      atomic.Int64
	retries     atomic.Int64
	failovers   atomic.Int64
	retirements atomic.Int64
	recompiles  atomic.Int64
	scrubCycles atomic.Int64
}

// SetReplicas records the configured pool size (gauge).
func (f *FleetRecorder) SetReplicas(n int) { f.replicas.Store(int64(n)) }

// SetHealthy records the number of replicas currently fit to serve
// (gauge; updated by the router and the maintenance scheduler).
func (f *FleetRecorder) SetHealthy(n int) { f.healthy.Store(int64(n)) }

// AddServed counts requests that returned a result to the caller.
func (f *FleetRecorder) AddServed(n int) { f.served.Add(int64(n)) }

// AddFailed counts requests that exhausted their retry budget or
// deadline without a result.
func (f *FleetRecorder) AddFailed(n int) { f.failed.Add(int64(n)) }

// AddRetry counts re-executions of a request after a failed attempt.
func (f *FleetRecorder) AddRetry() { f.retries.Add(1) }

// AddFailover counts retries that moved to a different replica.
func (f *FleetRecorder) AddFailover() { f.failovers.Add(1) }

// AddRetirement counts replicas pulled from service by the health
// policy.
func (f *FleetRecorder) AddRetirement() { f.retirements.Add(1) }

// AddRecompile counts replica rebuilds that returned to service.
func (f *FleetRecorder) AddRecompile() { f.recompiles.Add(1) }

// AddScrub counts completed online scrub passes.
func (f *FleetRecorder) AddScrub() { f.scrubCycles.Add(1) }

// FleetStats is a point-in-time copy of the pool counters. It contains
// no maps or pointers, so equal stats marshal to identical bytes.
type FleetStats struct {
	// Replicas is the configured pool size; Healthy how many are
	// currently fit to serve.
	Replicas int64 `json:"replicas"`
	Healthy  int64 `json:"healthy"`
	// Served / Failed partition finished requests.
	Served int64 `json:"served"`
	Failed int64 `json:"failed"`
	// Retries counts re-executed attempts; Failovers the subset that
	// moved to a different replica.
	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers"`
	// Retirements / Recompiles / ScrubCycles are maintenance events.
	Retirements int64 `json:"retirements"`
	Recompiles  int64 `json:"recompiles"`
	ScrubCycles int64 `json:"scrub_cycles"`
}

// Stats snapshots the counters. Concurrent writers may land between
// field loads; callers wanting exact totals quiesce the pool first.
func (f *FleetRecorder) Stats() FleetStats {
	return FleetStats{
		Replicas:    f.replicas.Load(),
		Healthy:     f.healthy.Load(),
		Served:      f.served.Load(),
		Failed:      f.failed.Load(),
		Retries:     f.retries.Load(),
		Failovers:   f.failovers.Load(),
		Retirements: f.retirements.Load(),
		Recompiles:  f.recompiles.Load(),
		ScrubCycles: f.scrubCycles.Load(),
	}
}

// fleetSeries defines the Prometheus series of one FleetStats, in fixed
// emission order.
var fleetSeries = []struct {
	name, typ, help string
	get             func(FleetStats) float64
}{
	{"nebula_fleet_replicas", "gauge", "Configured session-pool size.",
		func(s FleetStats) float64 { return float64(s.Replicas) }},
	{"nebula_fleet_healthy_replicas", "gauge", "Replicas currently fit to serve.",
		func(s FleetStats) float64 { return float64(s.Healthy) }},
	{"nebula_fleet_requests_served_total", "counter", "Requests that returned a result.",
		func(s FleetStats) float64 { return float64(s.Served) }},
	{"nebula_fleet_requests_failed_total", "counter", "Requests that exhausted retries or deadline.",
		func(s FleetStats) float64 { return float64(s.Failed) }},
	{"nebula_fleet_retries_total", "counter", "Re-executed attempts after a failure.",
		func(s FleetStats) float64 { return float64(s.Retries) }},
	{"nebula_fleet_failovers_total", "counter", "Retries served by a different replica.",
		func(s FleetStats) float64 { return float64(s.Failovers) }},
	{"nebula_fleet_retirements_total", "counter", "Replicas pulled from service by the health policy.",
		func(s FleetStats) float64 { return float64(s.Retirements) }},
	{"nebula_fleet_recompiles_total", "counter", "Replica rebuilds returned to service.",
		func(s FleetStats) float64 { return float64(s.Recompiles) }},
	{"nebula_fleet_scrub_cycles_total", "counter", "Completed online scrub passes.",
		func(s FleetStats) float64 { return float64(s.ScrubCycles) }},
}

// WritePrometheus writes the stats in the Prometheus text exposition
// format with fixed series order, matching Snapshot.WritePrometheus.
func (s FleetStats) WritePrometheus(w io.Writer) error {
	var b bytes.Buffer
	for _, m := range fleetSeries {
		b.WriteString("# HELP " + m.name + " " + m.help + "\n")
		b.WriteString("# TYPE " + m.name + " " + m.typ + "\n")
		b.WriteString(m.name + " " + formatValue(m.get(s)) + "\n")
	}
	_, err := w.Write(b.Bytes())
	return err
}
