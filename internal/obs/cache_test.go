package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCacheRecorderCountsAndExports(t *testing.T) {
	rec := &CacheRecorder{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				rec.AddHit()
				rec.AddMiss()
			}
			rec.AddStore()
			rec.AddQuarantine()
		}()
	}
	wg.Wait()

	st := rec.Stats()
	want := CacheStats{Hits: 40, Misses: 40, Stores: 4, Quarantines: 4}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}

	var b bytes.Buffer
	if err := st.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, series := range []string{
		"nebula_image_cache_hits_total 40",
		"nebula_image_cache_misses_total 40",
		"nebula_image_cache_stores_total 4",
		"nebula_image_cache_quarantines_total 4",
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("prometheus export missing %q:\n%s", series, out)
		}
	}

	var b2 bytes.Buffer
	if err := st.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), b2.Bytes()) {
		t.Fatal("prometheus export is not deterministic")
	}
}
