package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestFleetRecorderStats(t *testing.T) {
	var rec FleetRecorder
	if rec.Stats() != (FleetStats{}) {
		t.Fatalf("zero recorder has state: %+v", rec.Stats())
	}
	rec.SetReplicas(3)
	rec.SetHealthy(2)
	rec.AddServed(5)
	rec.AddFailed(1)
	rec.AddRetry()
	rec.AddRetry()
	rec.AddFailover()
	rec.AddRetirement()
	rec.AddRecompile()
	rec.AddScrub()
	want := FleetStats{
		Replicas: 3, Healthy: 2, Served: 5, Failed: 1,
		Retries: 2, Failovers: 1, Retirements: 1, Recompiles: 1, ScrubCycles: 1,
	}
	if got := rec.Stats(); got != want {
		t.Fatalf("stats %+v, want %+v", got, want)
	}
	// Gauges overwrite, counters accumulate.
	rec.SetHealthy(3)
	rec.AddServed(2)
	if got := rec.Stats(); got.Healthy != 3 || got.Served != 7 {
		t.Fatalf("gauge/counter semantics wrong: %+v", got)
	}
}

func TestFleetStatsWritePrometheus(t *testing.T) {
	s := FleetStats{
		Replicas: 3, Healthy: 2, Served: 5, Failed: 1,
		Retries: 2, Failovers: 1, Retirements: 1, Recompiles: 4, ScrubCycles: 9,
	}
	var b bytes.Buffer
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		"# TYPE nebula_fleet_replicas gauge",
		"nebula_fleet_replicas 3",
		"# TYPE nebula_fleet_healthy_replicas gauge",
		"nebula_fleet_healthy_replicas 2",
		"nebula_fleet_requests_served_total 5",
		"nebula_fleet_requests_failed_total 1",
		"nebula_fleet_retries_total 2",
		"nebula_fleet_failovers_total 1",
		"nebula_fleet_retirements_total 1",
		"nebula_fleet_recompiles_total 4",
		"nebula_fleet_scrub_cycles_total 9",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, out)
		}
	}
	// Emission order is fixed: the pool-size gauge leads, scrub cycles
	// close — CI diffs the exposition byte for byte.
	if !strings.HasPrefix(out, "# HELP nebula_fleet_replicas ") {
		t.Fatalf("exposition does not lead with the replicas gauge:\n%s", out)
	}
	if idx := strings.Index(out, "nebula_fleet_scrub_cycles_total 9\n"); idx == -1 || idx+len("nebula_fleet_scrub_cycles_total 9\n") != len(out) {
		t.Fatalf("exposition does not end with scrub cycles:\n%s", out)
	}
}
