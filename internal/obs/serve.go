package obs

import (
	"bytes"
	"io"
	"strconv"
	"sync/atomic"
)

// This file is the serving-tier observability surface. The inference
// daemon (internal/serve) coalesces queued requests into dynamic
// batches, and the numbers that describe that machinery — queue depth,
// batch fill, coalesce wait, end-to-end request latency, admission
// rejections — live above both the per-stage hardware counters a
// Recorder holds and the pool lifecycle counters a FleetRecorder holds,
// so they get their own recorder. ServeRecorder is wait-free for
// writers (atomic adds from the admission and dispatch paths) and
// snapshots into a plain struct for export.
//
// Latencies are recorded in nanoseconds as measured by a clock the
// caller injects (internal packages never read the wall clock); a
// server running without a clock records zero durations and the
// latency series simply stay empty.

// serveFillBounds are the batch-fill histogram bucket upper bounds
// (inclusive, in requests per dispatched batch).
var serveFillBounds = []float64{1, 2, 4, 8, 16, 32, 64}

// serveLatencyBounds are the latency histogram bucket upper bounds in
// nanoseconds: powers of four from 16 µs to ~17 s, wide enough for a
// queued SNN inference on a loaded host.
var serveLatencyBounds = []float64{
	1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24,
	1 << 26, 1 << 28, 1 << 30, 1 << 32, 1 << 34,
}

// histogram is a fixed-bound, wait-free histogram: one overflow bucket
// past the last bound, plus a sum for mean computation.
type histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	sum    atomic.Int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// observe records one sample.
func (h *histogram) observe(v int64) {
	i := 0
	for i < len(h.bounds) && float64(v) > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// snapshot copies the histogram into an exportable HistogramStats.
func (h *histogram) snapshot() HistogramStats {
	s := HistogramStats{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistogramStats is a point-in-time copy of one fixed-bound histogram.
// Counts has one entry per bound plus a trailing overflow bucket.
type HistogramStats struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    int64     `json:"sum"`
	Count  int64     `json:"count"`
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the containing bucket, the standard Prometheus histogram
// estimate. The overflow bucket reports its lower bound. Returns 0 for
// an empty histogram.
func (s HistogramStats) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		prev := float64(cum)
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i == len(s.Bounds) {
			return lo
		}
		return lo + (s.Bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average sample, or 0 when empty.
func (s HistogramStats) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// ServeRecorder accumulates serving-tier counters. The zero value is
// not ready to use — construct with NewServeRecorder (the histograms
// need their bucket arrays); all methods are safe for concurrent use.
type ServeRecorder struct {
	queueDepth atomic.Int64
	draining   atomic.Int64

	admitted         atomic.Int64
	rejectedFull     atomic.Int64
	rejectedDraining atomic.Int64
	expiredQueued    atomic.Int64
	served           atomic.Int64
	failed           atomic.Int64
	batches          atomic.Int64

	fill       *histogram
	coalesceNS *histogram
	latencyNS  *histogram
}

// NewServeRecorder returns a ready serving-tier recorder.
func NewServeRecorder() *ServeRecorder {
	return &ServeRecorder{
		fill:       newHistogram(serveFillBounds),
		coalesceNS: newHistogram(serveLatencyBounds),
		latencyNS:  newHistogram(serveLatencyBounds),
	}
}

// SetQueueDepth records the current coalescing-queue occupancy (gauge).
func (s *ServeRecorder) SetQueueDepth(n int) { s.queueDepth.Store(int64(n)) }

// SetDraining records whether the server has stopped admitting (gauge).
func (s *ServeRecorder) SetDraining(on bool) {
	var v int64
	if on {
		v = 1
	}
	s.draining.Store(v)
}

// AddAdmitted counts requests accepted into the queue.
func (s *ServeRecorder) AddAdmitted() { s.admitted.Add(1) }

// AddRejectedQueueFull counts admissions refused on a full queue (the
// 429 backpressure path).
func (s *ServeRecorder) AddRejectedQueueFull() { s.rejectedFull.Add(1) }

// AddRejectedDraining counts admissions refused during drain (the 503
// path).
func (s *ServeRecorder) AddRejectedDraining() { s.rejectedDraining.Add(1) }

// AddExpiredQueued counts requests whose deadline expired while still
// queued — culled at dispatch without ever reaching the pool.
func (s *ServeRecorder) AddExpiredQueued() { s.expiredQueued.Add(1) }

// AddServed counts requests that returned a result.
func (s *ServeRecorder) AddServed() { s.served.Add(1) }

// AddFailed counts dispatched requests that returned an error
// (deadline mid-run, retry exhaustion).
func (s *ServeRecorder) AddFailed() { s.failed.Add(1) }

// ObserveBatch records one dispatched batch of n requests.
func (s *ServeRecorder) ObserveBatch(n int) {
	s.batches.Add(1)
	s.fill.observe(int64(n))
}

// ObserveCoalesceWait records one request's enqueue→dispatch wait.
func (s *ServeRecorder) ObserveCoalesceWait(ns int64) { s.coalesceNS.observe(ns) }

// ObserveLatency records one request's end-to-end admission→response
// latency.
func (s *ServeRecorder) ObserveLatency(ns int64) { s.latencyNS.observe(ns) }

// ServeStats is a point-in-time copy of the serving-tier counters.
type ServeStats struct {
	QueueDepth int64 `json:"queue_depth"`
	Draining   bool  `json:"draining"`
	// Admitted were accepted into the queue; RejectedQueueFull and
	// RejectedDraining were refused at admission; ExpiredQueued were
	// admitted but culled at dispatch after their deadline passed.
	Admitted          int64 `json:"admitted"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedDraining  int64 `json:"rejected_draining"`
	ExpiredQueued     int64 `json:"expired_queued"`
	// Served / Failed partition dispatched requests by outcome.
	Served int64 `json:"served"`
	Failed int64 `json:"failed"`
	// Batches counts dispatched batches; BatchFill their size
	// distribution.
	Batches   int64          `json:"batches"`
	BatchFill HistogramStats `json:"batch_fill"`
	// CoalesceNS is the enqueue→dispatch wait; LatencyNS the end-to-end
	// admission→response latency. Both empty when no clock is injected.
	CoalesceNS HistogramStats `json:"coalesce_ns"`
	LatencyNS  HistogramStats `json:"latency_ns"`
}

// Stats snapshots the counters. Concurrent writers may land between
// field loads; callers wanting exact totals quiesce the server first.
func (s *ServeRecorder) Stats() ServeStats {
	return ServeStats{
		QueueDepth:        s.queueDepth.Load(),
		Draining:          s.draining.Load() != 0,
		Admitted:          s.admitted.Load(),
		RejectedQueueFull: s.rejectedFull.Load(),
		RejectedDraining:  s.rejectedDraining.Load(),
		ExpiredQueued:     s.expiredQueued.Load(),
		Served:            s.served.Load(),
		Failed:            s.failed.Load(),
		Batches:           s.batches.Load(),
		BatchFill:         s.fill.snapshot(),
		CoalesceNS:        s.coalesceNS.snapshot(),
		LatencyNS:         s.latencyNS.snapshot(),
	}
}

// serveScalarSeries defines the scalar Prometheus series of one
// ServeStats, in fixed emission order.
var serveScalarSeries = []struct {
	name, typ, help string
	get             func(ServeStats) float64
}{
	{"nebula_serve_queue_depth", "gauge", "Requests waiting in the coalescing queue.",
		func(s ServeStats) float64 { return float64(s.QueueDepth) }},
	{"nebula_serve_draining", "gauge", "1 while the server refuses new admissions.",
		func(s ServeStats) float64 {
			if s.Draining {
				return 1
			}
			return 0
		}},
	{"nebula_serve_requests_admitted_total", "counter", "Requests accepted into the queue.",
		func(s ServeStats) float64 { return float64(s.Admitted) }},
	{"nebula_serve_rejected_queue_full_total", "counter", "Admissions refused on a full queue (429).",
		func(s ServeStats) float64 { return float64(s.RejectedQueueFull) }},
	{"nebula_serve_rejected_draining_total", "counter", "Admissions refused during drain (503).",
		func(s ServeStats) float64 { return float64(s.RejectedDraining) }},
	{"nebula_serve_expired_queued_total", "counter", "Requests whose deadline expired while queued.",
		func(s ServeStats) float64 { return float64(s.ExpiredQueued) }},
	{"nebula_serve_requests_served_total", "counter", "Requests that returned a result.",
		func(s ServeStats) float64 { return float64(s.Served) }},
	{"nebula_serve_requests_failed_total", "counter", "Dispatched requests that returned an error.",
		func(s ServeStats) float64 { return float64(s.Failed) }},
	{"nebula_serve_batches_total", "counter", "Dispatched coalesced batches.",
		func(s ServeStats) float64 { return float64(s.Batches) }},
	{"nebula_serve_request_latency_p50_seconds", "gauge", "Estimated median end-to-end request latency.",
		func(s ServeStats) float64 { return s.LatencyNS.Quantile(0.50) / 1e9 }},
	{"nebula_serve_request_latency_p99_seconds", "gauge", "Estimated 99th-percentile end-to-end request latency.",
		func(s ServeStats) float64 { return s.LatencyNS.Quantile(0.99) / 1e9 }},
}

// writeHistogram emits one histogram in the Prometheus exposition
// format, with bucket bounds scaled by 1/scale (ns → s for latencies).
func writeHistogram(b *bytes.Buffer, name, help string, h HistogramStats, scale float64) {
	b.WriteString("# HELP " + name + " " + help + "\n")
	b.WriteString("# TYPE " + name + " histogram\n")
	var cum int64
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = formatValue(h.Bounds[i] / scale)
		}
		b.WriteString(name + "_bucket{le=\"" + le + "\"} " + strconv.FormatInt(cum, 10) + "\n")
	}
	b.WriteString(name + "_sum " + formatValue(float64(h.Sum)/scale) + "\n")
	b.WriteString(name + "_count " + strconv.FormatInt(h.Count, 10) + "\n")
}

// WritePrometheus writes the stats in the Prometheus text exposition
// format with fixed series order, matching the other exporters.
func (s ServeStats) WritePrometheus(w io.Writer) error {
	var b bytes.Buffer
	for _, m := range serveScalarSeries {
		b.WriteString("# HELP " + m.name + " " + m.help + "\n")
		b.WriteString("# TYPE " + m.name + " " + m.typ + "\n")
		b.WriteString(m.name + " " + formatValue(m.get(s)) + "\n")
	}
	writeHistogram(&b, "nebula_serve_batch_fill", "Requests per dispatched batch.", s.BatchFill, 1)
	writeHistogram(&b, "nebula_serve_coalesce_latency_seconds", "Enqueue-to-dispatch wait.", s.CoalesceNS, 1e9)
	writeHistogram(&b, "nebula_serve_request_latency_seconds", "End-to-end admission-to-response latency.", s.LatencyNS, 1e9)
	_, err := w.Write(b.Bytes())
	return err
}
