package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []int64{1, 1, 2, 3, 4, 100} {
		h.observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 111 {
		t.Fatalf("sum = %d, want 111", s.Sum)
	}
	want := []int64{2, 1, 2, 1} // le=1: {1,1}; le=2: {2}; le=4: {3,4}; +Inf: {100}
	for i, c := range want {
		if s.Counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], c, s.Counts)
		}
	}
}

func TestHistogramStatsQuantile(t *testing.T) {
	empty := HistogramStats{Bounds: []float64{1, 2}, Counts: []int64{0, 0, 0}}
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	if m := empty.Mean(); m != 0 {
		t.Fatalf("empty mean = %v, want 0", m)
	}

	// 10 samples all in the (2,4] bucket: the median interpolates
	// inside that bucket, between 2 and 4.
	mid := HistogramStats{Bounds: []float64{2, 4}, Counts: []int64{0, 10, 0}, Sum: 30, Count: 10}
	if q := mid.Quantile(0.5); q < 2 || q > 4 {
		t.Fatalf("mid quantile = %v, want within (2,4]", q)
	}
	if m := mid.Mean(); m != 3 {
		t.Fatalf("mean = %v, want 3", m)
	}

	// First bucket interpolates from lower bound 0.
	first := HistogramStats{Bounds: []float64{2, 4}, Counts: []int64{10, 0, 0}, Sum: 10, Count: 10}
	if q := first.Quantile(0.5); q <= 0 || q > 2 {
		t.Fatalf("first-bucket quantile = %v, want within (0,2]", q)
	}

	// Samples in the overflow bucket report its lower bound.
	over := HistogramStats{Bounds: []float64{2, 4}, Counts: []int64{0, 0, 10}, Sum: 1000, Count: 10}
	if q := over.Quantile(0.99); q != 4 {
		t.Fatalf("overflow quantile = %v, want 4", q)
	}
}

func TestServeRecorderStats(t *testing.T) {
	r := NewServeRecorder()
	r.SetQueueDepth(3)
	r.SetDraining(true)
	r.AddAdmitted()
	r.AddAdmitted()
	r.AddRejectedQueueFull()
	r.AddRejectedDraining()
	r.AddExpiredQueued()
	r.AddServed()
	r.AddFailed()
	r.ObserveBatch(2)
	r.ObserveCoalesceWait(1 << 15)
	r.ObserveLatency(1 << 20)

	s := r.Stats()
	if s.QueueDepth != 3 || !s.Draining {
		t.Fatalf("gauges = depth %d draining %v, want 3 true", s.QueueDepth, s.Draining)
	}
	if s.Admitted != 2 || s.RejectedQueueFull != 1 || s.RejectedDraining != 1 {
		t.Fatalf("admission counters = %d/%d/%d, want 2/1/1",
			s.Admitted, s.RejectedQueueFull, s.RejectedDraining)
	}
	if s.ExpiredQueued != 1 || s.Served != 1 || s.Failed != 1 {
		t.Fatalf("outcome counters = %d/%d/%d, want 1/1/1", s.ExpiredQueued, s.Served, s.Failed)
	}
	if s.Batches != 1 || s.BatchFill.Count != 1 || s.BatchFill.Sum != 2 {
		t.Fatalf("batches = %d fill count %d sum %d, want 1/1/2",
			s.Batches, s.BatchFill.Count, s.BatchFill.Sum)
	}
	if s.CoalesceNS.Count != 1 || s.LatencyNS.Count != 1 {
		t.Fatalf("latency counts = %d/%d, want 1/1", s.CoalesceNS.Count, s.LatencyNS.Count)
	}

	r.SetDraining(false)
	if r.Stats().Draining {
		t.Fatal("draining gauge did not clear")
	}
}

func TestServeStatsWritePrometheus(t *testing.T) {
	r := NewServeRecorder()
	r.AddAdmitted()
	r.AddServed()
	r.ObserveBatch(1)
	r.ObserveLatency(1 << 20)

	var b bytes.Buffer
	if err := r.Stats().WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"nebula_serve_requests_admitted_total 1",
		"nebula_serve_requests_served_total 1",
		"nebula_serve_batches_total 1",
		"nebula_serve_batch_fill_bucket{le=\"1\"} 1",
		"nebula_serve_batch_fill_count 1",
		"nebula_serve_request_latency_seconds_bucket{le=\"+Inf\"} 1",
		"nebula_serve_request_latency_seconds_count 1",
		"nebula_serve_request_latency_p50_seconds",
		"# TYPE nebula_serve_queue_depth gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
