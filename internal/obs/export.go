package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"strconv"
	"strings"
)

// WriteJSON writes the snapshot as indented JSON. The snapshot contains
// no maps, so equal snapshots marshal to identical bytes — the property
// the CI obs-determinism gate diffs on.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// counterSeries defines the Prometheus series derived from one Counters
// bucket, in fixed emission order.
var counterSeries = []struct {
	name, help string
	get        func(Counters) float64
}{
	{"nebula_obs_spikes_total", "Output spikes emitted per pipeline stage.",
		func(c Counters) float64 { return float64(c.SpikesEmitted) }},
	{"nebula_obs_mac_reads_total", "Atomic-crossbar evaluations per pipeline stage.",
		func(c Counters) float64 { return float64(c.MACReads) }},
	{"nebula_obs_active_rows_total", "Driven crossbar rows summed over evaluations.",
		func(c Counters) float64 { return float64(c.ActiveRowSum) }},
	{"nebula_obs_adc_conversions_total", "Spill-path partial-sum digitizations.",
		func(c Counters) float64 { return float64(c.ADCConversions) }},
	{"nebula_obs_noc_packets_total", "Inter-stage NoC packets.",
		func(c Counters) float64 { return float64(c.NoCPackets) }},
	{"nebula_obs_noc_hops_total", "Mesh hops traversed by inter-stage packets.",
		func(c Counters) float64 { return float64(c.NoCHops) }},
	{"nebula_obs_edram_accesses_total", "eDRAM transactions (pipeline stages 1 and 3).",
		func(c Counters) float64 { return float64(c.EDRAMAccesses) }},
	{"nebula_obs_cycles_total", "110 ns pipeline cycles consumed.",
		func(c Counters) float64 { return float64(c.Cycles) }},
	{"nebula_obs_silent_stage_skips_total", "Stage-timesteps skipped entirely on an all-zero spike plane.",
		func(c Counters) float64 { return float64(c.SilentStageSkips) }},
	{"nebula_obs_spikes_skipped_total", "Silent input slots not driven by the event-driven path.",
		func(c Counters) float64 { return float64(c.SpikesSkipped) }},
	{"nebula_obs_packed_words_total", "Packed spike-plane words processed.",
		func(c Counters) float64 { return float64(c.PackedWords) }},
	{"nebula_obs_repeat_reads_total", "Crossbar reads served from the timestep-repeat cache.",
		func(c Counters) float64 { return float64(c.RepeatReads) }},
	{"nebula_obs_output_current_microamps_total", "Accumulated column current magnitude in microamps.",
		func(c Counters) float64 { return c.OutputCurrentUA }},
}

// programSeries defines the compile-time series.
var programSeries = []struct {
	name, help string
	get        func(ProgramRecord) float64
}{
	{"nebula_obs_compiles_total", "Sessions compiled against the recorder.",
		func(p ProgramRecord) float64 { return float64(p.Compiles) }},
	{"nebula_obs_program_energy_femtojoules_total", "Synapse programming energy in fJ.",
		func(p ProgramRecord) float64 { return p.ProgramEnergyFJ }},
	{"nebula_obs_bist_reads_total", "BIST scan reads during compilation.",
		func(p ProgramRecord) float64 { return float64(p.BISTReads) }},
	{"nebula_obs_write_retries_total", "Write-verify repair writes during compilation.",
		func(p ProgramRecord) float64 { return float64(p.WriteRetries) }},
	{"nebula_obs_faults_found_total", "Faulty pairs surfaced by BIST.",
		func(p ProgramRecord) float64 { return float64(p.FaultsFound) }},
	{"nebula_obs_spares_consumed_total", "Remapped lines plus retired tiles.",
		func(p ProgramRecord) float64 { return float64(p.SparesConsumed) }},
	{"nebula_obs_degradation_events_total", "Cores that tripped the degradation policy.",
		func(p ProgramRecord) float64 { return float64(p.DegradationEvents) }},
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format. Series order is fixed (metric table order, then layout stage
// order), so equal snapshots produce identical bytes.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b bytes.Buffer
	b.WriteString("# HELP nebula_obs_info Compiled pipeline identity (value is always 1).\n")
	b.WriteString("# TYPE nebula_obs_info gauge\n")
	b.WriteString("nebula_obs_info{model=\"" + escapeLabel(s.Model) +
		"\",mode=\"" + escapeLabel(s.Mode) + "\"} 1\n")
	b.WriteString("# HELP nebula_obs_runs_total Completed runs merged into the recorder.\n")
	b.WriteString("# TYPE nebula_obs_runs_total counter\n")
	b.WriteString("nebula_obs_runs_total " + formatValue(float64(s.Runs)) + "\n")
	for _, m := range counterSeries {
		b.WriteString("# HELP " + m.name + " " + m.help + "\n")
		b.WriteString("# TYPE " + m.name + " counter\n")
		for i, st := range s.Stages {
			b.WriteString(m.name + stageLabels(i, st.StageInfo) + " " + formatValue(m.get(st.Counters)) + "\n")
		}
	}
	for _, m := range programSeries {
		b.WriteString("# HELP " + m.name + " " + m.help + "\n")
		b.WriteString("# TYPE " + m.name + " counter\n")
		b.WriteString(m.name + " " + formatValue(m.get(s.Program)) + "\n")
	}
	_, err := w.Write(b.Bytes())
	return err
}

// stageLabels renders the fixed label set of one stage bucket.
func stageLabels(i int, st StageInfo) string {
	return "{stage=\"" + strconv.Itoa(i) +
		"\",layer=\"" + escapeLabel(st.Name) +
		"\",kind=\"" + escapeLabel(st.Kind) +
		"\",domain=\"" + escapeLabel(st.Domain) +
		"\",core=\"" + strconv.Itoa(st.Core) + "\"}"
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders a sample value; integral counts up to 2^53 print
// exactly.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
