package obs

import "repro/internal/energy"

// Coefficients are the per-event energies used to re-express the
// Table III power model on top of measured activity counters, one set
// per execution domain.
type Coefficients struct {
	// CrossbarRowJ / DriverRowJ are charged per driven row per
	// evaluation (ActiveRowSum); NeuronJ per crossbar evaluation
	// (MACReads).
	CrossbarRowJ float64 `json:"crossbar_row_j"`
	DriverRowJ   float64 `json:"driver_row_j"`
	NeuronJ      float64 `json:"neuron_j"`
	// ConversionJ is charged per ADC conversion (converter + RU add).
	ConversionJ float64 `json:"conversion_j"`
	// SRAMAccessJ / EDRAMAccessJ are charged per spike and per eDRAM
	// transaction respectively.
	SRAMAccessJ  float64 `json:"sram_access_j"`
	EDRAMAccessJ float64 `json:"edram_access_j"`
	// NoCHopBitJ is charged per bit per hop; AERBits sizes a spike
	// packet.
	NoCHopBitJ float64 `json:"noc_hop_bit_j"`
	AERBits    int     `json:"aer_bits"`
}

// DomainCoefficients derives the per-event coefficients of one execution
// domain from the analytic energy model.
func DomainCoefficients(m *energy.Model, mode energy.Mode) Coefficients {
	return Coefficients{
		CrossbarRowJ: m.PerRowCrossbarJ(mode),
		DriverRowJ:   m.PerRowDriverJ(mode),
		NeuronJ:      m.PerEvalNeuronJ(),
		ConversionJ:  m.PerConversionJ(),
		SRAMAccessJ:  m.SRAMAccessJ,
		EDRAMAccessJ: m.EDRAMAccessJ,
		NoCHopBitJ:   m.PerNoCHopBitJ(),
		AERBits:      m.AERBits,
	}
}

// StageEnergy is the derived component-wise energy of one stage bucket.
type StageEnergy struct {
	Name      string  `json:"name"`
	Domain    string  `json:"domain"`
	CrossbarJ float64 `json:"crossbar_j"`
	DriverJ   float64 `json:"driver_j"`
	NeuronJ   float64 `json:"neuron_j"`
	ADCJ      float64 `json:"adc_j"`
	SRAMJ     float64 `json:"sram_j"`
	EDRAMJ    float64 `json:"edram_j"`
	NoCJ      float64 `json:"noc_j"`
	TotalJ    float64 `json:"total_j"`
}

// Attribution is the counter-derived energy split of a snapshot.
type Attribution struct {
	Stages []StageEnergy `json:"stages"`
	TotalJ float64       `json:"total_j"`
}

// Attribute derives a per-stage energy attribution from measured
// counters: every joule is charged to a counted event, so the split
// follows the actual activity of the runs rather than the parametric
// profiles of the analytic model. ANN-domain stages use the ann
// coefficients; spiking and input stages use snn.
func Attribute(s Snapshot, ann, snn Coefficients) Attribution {
	var a Attribution
	a.Stages = make([]StageEnergy, len(s.Stages))
	for i, st := range s.Stages {
		co := snn
		if st.Domain == "ann" {
			co = ann
		}
		e := StageEnergy{Name: st.Name, Domain: st.Domain}
		e.CrossbarJ = float64(st.ActiveRowSum) * co.CrossbarRowJ
		e.DriverJ = float64(st.ActiveRowSum) * co.DriverRowJ
		e.NeuronJ = float64(st.MACReads) * co.NeuronJ
		e.ADCJ = float64(st.ADCConversions) * co.ConversionJ
		e.SRAMJ = float64(st.SpikesEmitted) * co.SRAMAccessJ
		e.EDRAMJ = float64(st.EDRAMAccesses) * co.EDRAMAccessJ
		e.NoCJ = float64(st.NoCHops) * float64(co.AERBits) * co.NoCHopBitJ
		e.TotalJ = e.CrossbarJ + e.DriverJ + e.NeuronJ + e.ADCJ + e.SRAMJ + e.EDRAMJ + e.NoCJ
		a.Stages[i] = e
		a.TotalJ += e.TotalJ
	}
	return a
}

// DefaultAttribution attributes a snapshot with the paper's operating
// point (energy.NewModel()).
func DefaultAttribution(s Snapshot) Attribution {
	m := energy.NewModel()
	return Attribute(s, DomainCoefficients(m, energy.ANN), DomainCoefficients(m, energy.SNN))
}
