// Package inxs models the energy of INXS (Narayanan et al., IJCNN 2017),
// the crossbar SNN accelerator NEBULA's SNN mode is compared against in
// Fig. 13(b).
//
// Per §III of the NEBULA paper, INXS performs weighted accumulation of
// incoming spikes on memristive crossbars but pays, at every algorithmic
// timestep, the two costs NEBULA eliminates:
//
//   - the membrane-potential increment of every neuron is digitized
//     through an ADC and shipped over the network to a digital neuron
//     unit; and
//   - the previous membrane potential is read from SRAM, added, compared
//     against the threshold and written back — per neuron, per timestep.
//
// NEBULA instead stores the membrane in the neuron device's domain-wall
// position and thresholds in situ (§IV-B4), which is where the ≈45×
// energy gap of Fig. 13(b) comes from.
package inxs

import "repro/internal/models"

// Params holds the INXS component model.
type Params struct {
	// ArraySize is the crossbar dimension.
	ArraySize int
	// CycleNS is the accelerator cycle.
	CycleNS float64
	// CrossbarPowerW is the read power of one active array (memristive,
	// so higher-voltage than the spin arrays).
	CrossbarPowerW float64
	// DriverPowerW is the spike driver power per array.
	DriverPowerW float64
	// ADCEnergyPerConvJ digitizes one membrane increment.
	ADCEnergyPerConvJ float64
	// SRAMReadJ / SRAMWriteJ are the per-neuron membrane state accesses.
	SRAMReadJ, SRAMWriteJ float64
	// AddCompareJ is the digital accumulate-and-threshold energy.
	AddCompareJ float64
	// NoCJPerUpdate ships one digitized increment to the neuron unit.
	NoCJPerUpdate float64
	// BufferPowerW is the buffer power per active array's share.
	BufferPowerW float64
}

// DefaultParams returns the operating point used in the Fig. 13(b)
// comparison. SRAM energies follow typical 32 nm register-file accesses;
// the ADC is the same class ISAAC uses.
func DefaultParams() Params {
	return Params{
		ArraySize:         128,
		CycleNS:           100,
		CrossbarPowerW:    1.2e-3,
		DriverPowerW:      0.5e-3,
		ADCEnergyPerConvJ: 2.7e-12,
		SRAMReadJ:         2.5e-12,
		SRAMWriteJ:        3.0e-12,
		AddCompareJ:       0.2e-12,
		NoCJPerUpdate:     2.7e-12,
		BufferPowerW:      1e-3,
	}
}

// LayerEnergy is the per-layer, per-inference energy split.
type LayerEnergy struct {
	Name      string
	CrossbarJ float64
	DriverJ   float64
	ADCJ      float64
	MembraneJ float64 // SRAM read + add/compare + write
	NoCJ      float64
	BufferJ   float64
}

// Total sums the components.
func (l LayerEnergy) Total() float64 {
	return l.CrossbarJ + l.DriverJ + l.ADCJ + l.MembraneJ + l.NoCJ + l.BufferJ
}

// Model evaluates INXS energy.
type Model struct {
	P Params
}

// NewModel returns the default model.
func NewModel() *Model { return &Model{P: DefaultParams()} }

// Layer evaluates one weighted layer over T timesteps with the given
// input spike rate.
func (m *Model) Layer(l models.LayerShape, T int, inRate float64) LayerEnergy {
	if l.Kind == models.AvgPool {
		return LayerEnergy{Name: l.Name}
	}
	n := m.P.ArraySize
	rf := l.Rf()
	rowSplits := (rf + n - 1) / n
	colSplits := (l.Kernels() + n - 1) / n
	arrays := rowSplits * colSplits
	rowFrac := float64(rf) / float64(rowSplits*n)

	evals := float64(l.OutH()*l.OutW()) * float64(T)
	cycleS := m.P.CycleNS * 1e-9

	var e LayerEnergy
	e.Name = l.Name
	// INXS is throughput-oriented: the crossbar evaluates every timestep
	// with all mapped rows driven, whether or not spikes arrived — it
	// lacks the row-level event gating of the spin crossbar. The spike
	// rate only modulates the data-dependent fraction of the read energy.
	gate := 0.5 + 0.5*inRate
	e.CrossbarJ = m.P.CrossbarPowerW * float64(arrays) * rowFrac * gate * evals * cycleS
	e.DriverJ = m.P.DriverPowerW * float64(arrays) * rowFrac * gate * evals * cycleS
	// The membrane update path is NOT event-gated: every neuron's
	// potential must be fetched, updated and stored every timestep, and
	// every increment is digitized first.
	updates := float64(l.OutputNeurons()) * float64(T) * float64(rowSplits)
	e.ADCJ = updates * m.P.ADCEnergyPerConvJ
	e.NoCJ = updates * m.P.NoCJPerUpdate
	neuronUpdates := float64(l.OutputNeurons()) * float64(T)
	e.MembraneJ = neuronUpdates * (m.P.SRAMReadJ + m.P.AddCompareJ + m.P.SRAMWriteJ)
	e.BufferJ = m.P.BufferPowerW * float64(arrays) * evals * cycleS
	return e
}

// Network evaluates all weighted layers of a workload. activity[l] is the
// input spike rate of weighted layer l (same convention as the energy
// package).
func (m *Model) Network(w models.Workload, T int, activity []float64) []LayerEnergy {
	var out []LayerEnergy
	for i, l := range w.WeightedLayers() {
		rate := 0.1
		if len(activity) > 0 {
			idx := i
			if idx >= len(activity) {
				idx = len(activity) - 1
			}
			rate = activity[idx]
		}
		out = append(out, m.Layer(l, T, rate))
	}
	return out
}

// NetworkTotal sums the per-layer energies.
func (m *Model) NetworkTotal(w models.Workload, T int, activity []float64) float64 {
	t := 0.0
	for _, e := range m.Network(w, T, activity) {
		t += e.Total()
	}
	return t
}
