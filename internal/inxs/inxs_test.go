package inxs

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/models"
)

func TestLayerComponentsPositive(t *testing.T) {
	m := NewModel()
	l := models.LayerShape{Name: "c", Kind: models.Conv, InC: 64, OutC: 64, K: 3, Stride: 1, Pad: 1, InH: 16, InW: 16}
	e := m.Layer(l, 100, 0.2)
	if e.CrossbarJ <= 0 || e.DriverJ <= 0 || e.ADCJ <= 0 || e.MembraneJ <= 0 || e.NoCJ <= 0 || e.BufferJ <= 0 {
		t.Fatalf("component missing: %+v", e)
	}
}

func TestPoolLayerFree(t *testing.T) {
	m := NewModel()
	pool := models.LayerShape{Kind: models.AvgPool, InC: 64, OutC: 64, K: 2, Stride: 2, InH: 32, InW: 32}
	if m.Layer(pool, 100, 0.2).Total() != 0 {
		t.Fatal("pooling must be free")
	}
}

func TestMembranePathNotEventGated(t *testing.T) {
	// The defining INXS cost: ADC + SRAM membrane traffic accrues every
	// timestep regardless of spike rate.
	m := NewModel()
	l := models.LayerShape{Name: "c", Kind: models.Conv, InC: 64, OutC: 64, K: 3, Stride: 1, Pad: 1, InH: 16, InW: 16}
	quiet := m.Layer(l, 100, 0.0)
	busy := m.Layer(l, 100, 0.9)
	if quiet.ADCJ != busy.ADCJ {
		t.Fatal("ADC cost must be activity-independent")
	}
	if quiet.MembraneJ != busy.MembraneJ {
		t.Fatal("membrane cost must be activity-independent")
	}
	if quiet.CrossbarJ >= busy.CrossbarJ {
		t.Fatal("crossbar read energy should still grow with activity")
	}
}

func TestEnergyLinearInTimesteps(t *testing.T) {
	m := NewModel()
	l := models.LayerShape{Name: "c", Kind: models.Conv, InC: 64, OutC: 64, K: 3, Stride: 1, Pad: 1, InH: 16, InW: 16}
	e1 := m.Layer(l, 100, 0.2).Total()
	e2 := m.Layer(l, 200, 0.2).Total()
	if e2 != 2*e1 {
		t.Fatalf("energy not ∝ T: %v vs %v", e1, e2)
	}
}

func TestVGGRatioMatchesPaperBand(t *testing.T) {
	// Fig. 13(b): INXS consumes ≈45× more energy than NEBULA-SNN on VGG.
	xm := NewModel()
	em := energy.NewModel()
	w := models.FullVGG13(10, 300, 91.6, 90.05)
	np := mapping.MapWorkload(w)
	act := energy.DefaultActivity(w, energy.DefaultInputRate)
	snn := em.SNNNetwork(np, w.Timesteps, act)
	ratio := xm.NetworkTotal(w, w.Timesteps, act) / snn.EnergyJ
	if ratio < 25 || ratio > 75 {
		t.Fatalf("INXS/NEBULA ratio %v outside the ≈45× band", ratio)
	}
}

func TestEveryLayerFavorsNEBULA(t *testing.T) {
	xm := NewModel()
	em := energy.NewModel()
	w := models.FullVGG13(10, 300, 91.6, 90.05)
	np := mapping.MapWorkload(w)
	act := energy.DefaultActivity(w, energy.DefaultInputRate)
	snn := em.SNNNetwork(np, w.Timesteps, act)
	for i, le := range xm.Network(w, w.Timesteps, act) {
		if le.Total() <= snn.Layers[i].Total() {
			t.Fatalf("layer %s: INXS %v not above NEBULA %v", le.Name, le.Total(), snn.Layers[i].Total())
		}
	}
}

func TestDeepLayersSaveMore(t *testing.T) {
	// Fig. 13(b) trend: savings grow deeper into the network as spiking
	// activity decays (NEBULA's event gating wins more).
	xm := NewModel()
	em := energy.NewModel()
	w := models.FullVGG13(10, 300, 91.6, 90.05)
	np := mapping.MapWorkload(w)
	act := energy.DefaultActivity(w, energy.DefaultInputRate)
	snn := em.SNNNetwork(np, w.Timesteps, act)
	layers := xm.Network(w, w.Timesteps, act)
	first := layers[0].Total() / snn.Layers[0].Total()
	mid := layers[4].Total() / snn.Layers[4].Total()
	if mid <= first {
		t.Fatalf("ratio did not grow with depth: layer0 %v vs layer4 %v", first, mid)
	}
}

func TestNetworkActivityFallback(t *testing.T) {
	m := NewModel()
	w := models.FullLeNet5()
	// nil activity must not panic and must produce positive energies.
	for _, e := range m.Network(w, 40, nil) {
		if e.Total() < 0 {
			t.Fatalf("negative energy %+v", e)
		}
	}
}
