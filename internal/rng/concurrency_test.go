package rng

import (
	"sync"
	"testing"
)

// drawConcurrently follows the package's per-goroutine-stream rule: the
// parent splits one stream per goroutine in a fixed order, then each
// goroutine draws from its own stream concurrently. It returns one
// sequence per goroutine.
func drawConcurrently(seed uint64, goroutines, draws int) [][]uint64 {
	base := New(seed)
	streams := make([]*Rand, goroutines)
	for i := range streams {
		streams[i] = base.Split()
	}
	out := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seq := make([]uint64, draws)
			for j := range seq {
				seq[j] = streams[i].Uint64()
			}
			out[i] = seq
		}(i)
	}
	wg.Wait()
	return out
}

// TestConcurrentStreamsDeterministic drives two same-seed generators from
// concurrent goroutines (each owning its own Split stream) and requires
// the full set of sequences to be identical — scheduling must not leak
// into the output. Run under `go test -race` this also proves the
// per-goroutine-stream rule involves no shared mutable state.
func TestConcurrentStreamsDeterministic(t *testing.T) {
	const goroutines, draws = 8, 1000
	a := drawConcurrently(42, goroutines, draws)
	b := drawConcurrently(42, goroutines, draws)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("stream %d draw %d: %#x vs %#x", i, j, a[i][j], b[i][j])
			}
		}
	}
	// Distinct seeds must not collide, and sibling streams must differ.
	c := drawConcurrently(43, goroutines, draws)
	if c[0][0] == a[0][0] && c[0][1] == a[0][1] {
		t.Fatal("different seeds produced the same stream")
	}
	if a[0][0] == a[1][0] && a[0][1] == a[1][1] {
		t.Fatal("sibling streams are correlated")
	}
}

// TestConcurrentMatchesSequential pins down that the concurrent harness
// is pure bookkeeping: each stream equals what a single-threaded caller
// would read from the same split.
func TestConcurrentMatchesSequential(t *testing.T) {
	const goroutines, draws = 4, 256
	got := drawConcurrently(7, goroutines, draws)
	base := New(7)
	for i := 0; i < goroutines; i++ {
		stream := base.Split()
		for j := 0; j < draws; j++ {
			if want := stream.Uint64(); got[i][j] != want {
				t.Fatalf("stream %d draw %d: concurrent %#x sequential %#x", i, j, got[i][j], want)
			}
		}
	}
}
