// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the NEBULA simulator.
//
// Every stochastic component in the repository (dataset synthesis, weight
// initialization, Poisson spike encoding, device noise, Monte-Carlo
// variation studies) draws from this package rather than math/rand so that
// experiments are reproducible bit-for-bit across runs and platforms.
//
// The core generator is xoshiro256**, seeded through SplitMix64 as
// recommended by its authors. Generators can be split into independent
// streams with Split, which is how parallel workers obtain decorrelated
// randomness without sharing state.
//
// # Concurrency
//
// A Rand is not safe for concurrent use and is never locked. Concurrent
// code must follow the per-goroutine-stream rule: the parent goroutine
// calls Split once per worker, in a fixed order, before spawning, and
// hands each worker its own stream. Because Split is deterministic, the
// set of streams depends only on the seed and the split order — never on
// goroutine scheduling — so concurrent runs reproduce single-threaded
// runs bit for bit. Sharing one Rand across goroutines, or splitting
// from inside workers in completion order, breaks both the race-freedom
// and the reproducibility guarantee.
package rng

import "math"

// Rand is a deterministic random number generator. It is not safe for
// concurrent use; use Split to derive independent generators for separate
// goroutines.
type Rand struct {
	s0, s1, s2, s3 uint64
	// cached spare gaussian from Box-Muller
	spare    float64
	hasSpare bool
}

// splitMix64 advances a SplitMix64 state and returns the next value. It is
// used only for seeding so that nearby seeds yield unrelated streams.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	r.s0 = splitMix64(&sm)
	r.s1 = splitMix64(&sm)
	r.s2 = splitMix64(&sm)
	r.s3 = splitMix64(&sm)
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split returns a new generator whose stream is independent of the
// receiver's future output. The receiver is advanced.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Clone returns an independent copy of the generator frozen at its
// current state: the clone and the receiver emit identical streams from
// here on, and drawing from one never advances the other. This is what
// lets a failed run be replayed bit for bit — reserve a stream, hand a
// clone to the attempt, and hand a fresh clone to the retry.
func (r *Rand) Clone() *Rand {
	c := *r
	return &c
}

// Fingerprint returns a 64-bit digest of the generator's current state
// (stream position and the cached Box-Muller spare). Two generators with
// equal fingerprints emit identical streams from here on, so the digest
// can stand in for the full state wherever identity — not the state
// itself — is what matters, e.g. in a compile-cache key that must
// distinguish a fresh seeded noise source from a partially consumed one.
func (r *Rand) Fingerprint() uint64 {
	h := r.s0
	fold := func(v uint64) {
		h ^= v
		h = splitMix64(&h)
	}
	fold(r.s1)
	fold(r.s2)
	fold(r.s3)
	fold(math.Float64bits(r.spare))
	if r.hasSpare {
		fold(1)
	}
	return h
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a standard normal deviate using the Box-Muller
// transform (polar form avoided for determinism simplicity).
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 1e-300 {
			break
		}
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.hasSpare = true
	return mag * math.Cos(2*math.Pi*v)
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Poisson returns a Poisson-distributed sample with mean lambda using
// Knuth's algorithm for small lambda and a normal approximation above 30.
func (r *Rand) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
