package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not simply mirror the parent stream.
	match := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			match++
		}
	}
	if match > 1 {
		t.Fatalf("split stream tracks parent (%d matches)", match)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) did not cover all values: %v", seen)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 10, 50} {
		r := New(23)
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean %v", lambda, mean)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		if r.Poisson(100) < 0 {
			t.Fatal("negative Poisson sample")
		}
	}
	if r.Poisson(0) != 0 {
		t.Fatal("Poisson(0) must be 0")
	}
	if r.Poisson(-1) != 0 {
		t.Fatal("Poisson(-1) must be 0")
	}
}

func TestBernoulliProbability(t *testing.T) {
	r := New(31)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate %v", p)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
