// Package models is the model zoo for the NEBULA reproduction.
//
// It provides two views of each benchmark network from the paper:
//
//  1. Trainable, scaled-down nn.Networks that keep the structural identity
//     of the originals (layer kinds, depths, pooling placement,
//     depthwise-separable blocks) while being small enough to train from
//     scratch on the synthetic datasets in seconds. These drive every
//     accuracy-shaped experiment (Tables I–II, Figs. 9–10, noise study).
//
//  2. Full-size architecture descriptions (layer shape lists) exactly
//     matching the paper's workloads. These carry no weights and drive the
//     mapping, energy and power experiments (Figs. 12–17), which depend
//     only on layer dimensions and activity statistics.
package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/rng"
)

// ---------------------------------------------------------------------------
// Trainable scaled networks
// ---------------------------------------------------------------------------

// NewMLP3 builds the paper's 3-layer MLP (MNIST benchmark), scaled to the
// synthetic input size. Pure fully-connected with ReLU.
func NewMLP3(inC, inSize, classes int, r *rng.Rand) *nn.Network {
	in := inC * inSize * inSize
	return nn.NewNetwork("mlp3",
		nn.NewFlatten("flat"),
		nn.NewLinear("fc1", in, 128, r),
		nn.NewReLU("relu1"),
		nn.NewLinear("fc2", 128, 64, r),
		nn.NewReLU("relu2"),
		nn.NewLinear("fc3", 64, classes, r),
	)
}

// NewLeNet5 builds a LeNet-5-shaped network: two conv+pool stages and two
// fully-connected layers (average pooling per the conversion constraints).
func NewLeNet5(inC, inSize, classes int, r *rng.Rand) *nn.Network {
	net := nn.NewNetwork("lenet5",
		nn.NewConv2D("conv1", inC, 6, 5, 5, 1, 2, 1, r),
		nn.NewReLU("relu1"),
		nn.NewAvgPool2D("pool1", 2, 2),
		nn.NewConv2D("conv2", 6, 16, 5, 5, 1, 0, 1, r),
		nn.NewReLU("relu2"),
		nn.NewAvgPool2D("pool2", 2, 2),
		nn.NewFlatten("flat"),
	)
	flat := flatSize(net, inC, inSize)
	net.Add(nn.NewLinear("fc1", flat, 84, r))
	net.Add(nn.NewReLU("relu3"))
	net.Add(nn.NewLinear("fc2", 84, classes, r))
	return net
}

// NewVGG13 builds a channel-scaled VGG-13: five conv blocks of two 3×3
// convolutions each (with BatchNorm) followed by pooling, then a classifier.
// Channel widths are 1/8 of the original to stay trainable on a laptop.
func NewVGG13(inC, inSize, classes int, r *rng.Rand) *nn.Network {
	widths := []int{8, 16, 32, 32, 32} // scaled from 64,128,256,512,512
	net := nn.NewNetwork("vgg13")
	c := inC
	size := inSize
	block := 0
	for _, w := range widths {
		if size < 2 {
			break
		}
		block++
		for sub := 1; sub <= 2; sub++ {
			name := fmt.Sprintf("conv%d_%d", block, sub)
			net.Add(nn.NewConv2D(name, c, w, 3, 3, 1, 1, 1, r))
			net.Add(nn.NewBatchNorm2D(name+".bn", w))
			net.Add(nn.NewReLU(name + ".relu"))
			c = w
		}
		net.Add(nn.NewAvgPool2D(fmt.Sprintf("pool%d", block), 2, 2))
		size /= 2
	}
	net.Add(nn.NewFlatten("flat"))
	flat := c * size * size
	net.Add(nn.NewLinear("fc1", flat, 64, r))
	net.Add(nn.NewReLU("fc1.relu"))
	net.Add(nn.NewLinear("fc2", 64, classes, r))
	return net
}

// NewMobileNetV1 builds a width-scaled MobileNet-v1: a stem convolution
// followed by depthwise-separable blocks (depthwise 3×3 + pointwise 1×1,
// each with BatchNorm), exactly the alternating structure whose energy
// signature Fig. 12 examines.
func NewMobileNetV1(inC, inSize, classes int, r *rng.Rand) *nn.Network {
	net := nn.NewNetwork("mobilenet-v1",
		nn.NewConv2D("conv0", inC, 8, 3, 3, 1, 1, 1, r),
		nn.NewBatchNorm2D("conv0.bn", 8),
		nn.NewReLU("conv0.relu"),
	)
	type blk struct{ out, stride int }
	blocks := []blk{{16, 1}, {16, 2}, {32, 1}, {32, 2}, {32, 1}}
	c := 8
	size := inSize
	for i, b := range blocks {
		dw := fmt.Sprintf("dw%d", i+1)
		pw := fmt.Sprintf("pw%d", i+1)
		net.Add(nn.NewConv2D(dw, c, c, 3, 3, b.stride, 1, c, r))
		net.Add(nn.NewBatchNorm2D(dw+".bn", c))
		net.Add(nn.NewReLU(dw + ".relu"))
		net.Add(nn.NewConv2D(pw, c, b.out, 1, 1, 1, 0, 1, r))
		net.Add(nn.NewBatchNorm2D(pw+".bn", b.out))
		net.Add(nn.NewReLU(pw + ".relu"))
		c = b.out
		if b.stride == 2 {
			size = (size + 1) / 2
		}
	}
	net.Add(nn.NewAvgPool2D("gap", size, size))
	net.Add(nn.NewFlatten("flat"))
	net.Add(nn.NewLinear("fc", c, classes, r))
	return net
}

// NewSVHNNet builds the paper's SVHN network shape: a moderately deep
// conv net with three conv blocks and two fully-connected layers.
func NewSVHNNet(inC, inSize, classes int, r *rng.Rand) *nn.Network {
	net := nn.NewNetwork("svhn-net",
		nn.NewConv2D("conv1", inC, 12, 3, 3, 1, 1, 1, r),
		nn.NewReLU("relu1"),
		nn.NewConv2D("conv2", 12, 12, 3, 3, 1, 1, 1, r),
		nn.NewReLU("relu2"),
		nn.NewAvgPool2D("pool1", 2, 2),
		nn.NewConv2D("conv3", 12, 24, 3, 3, 1, 1, 1, r),
		nn.NewReLU("relu3"),
		nn.NewConv2D("conv4", 24, 24, 3, 3, 1, 1, 1, r),
		nn.NewReLU("relu4"),
		nn.NewAvgPool2D("pool2", 2, 2),
		nn.NewFlatten("flat"),
	)
	flat := flatSize(net, inC, inSize)
	net.Add(nn.NewLinear("fc1", flat, 64, r))
	net.Add(nn.NewReLU("relu5"))
	net.Add(nn.NewLinear("fc2", 64, classes, r))
	return net
}

// NewAlexNet builds an AlexNet-shaped network (five convolutions with
// pooling after 1, 2 and 5, then three fully-connected layers), scaled to
// small inputs.
func NewAlexNet(inC, inSize, classes int, r *rng.Rand) *nn.Network {
	net := nn.NewNetwork("alexnet",
		nn.NewConv2D("conv1", inC, 12, 3, 3, 1, 1, 1, r),
		nn.NewReLU("relu1"),
		nn.NewAvgPool2D("pool1", 2, 2),
		nn.NewConv2D("conv2", 12, 24, 3, 3, 1, 1, 1, r),
		nn.NewReLU("relu2"),
		nn.NewAvgPool2D("pool2", 2, 2),
		nn.NewConv2D("conv3", 24, 32, 3, 3, 1, 1, 1, r),
		nn.NewReLU("relu3"),
		nn.NewConv2D("conv4", 32, 32, 3, 3, 1, 1, 1, r),
		nn.NewReLU("relu4"),
		nn.NewConv2D("conv5", 32, 24, 3, 3, 1, 1, 1, r),
		nn.NewReLU("relu5"),
		nn.NewAvgPool2D("pool3", 2, 2),
		nn.NewFlatten("flat"),
	)
	flat := flatSize(net, inC, inSize)
	net.Add(nn.NewLinear("fc1", flat, 96, r))
	net.Add(nn.NewReLU("relu6"))
	net.Add(nn.NewLinear("fc2", 96, 64, r))
	net.Add(nn.NewReLU("relu7"))
	net.Add(nn.NewLinear("fc3", 64, classes, r))
	return net
}

// flatSize runs shape inference on the layers added so far.
func flatSize(net *nn.Network, inC, inSize int) int {
	shape := net.OutShape([]int{inC, inSize, inSize})
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// Builder constructs a trainable scaled network.
type Builder func(inC, inSize, classes int, r *rng.Rand) *nn.Network

// Zoo maps model names to builders for the trainable scaled networks.
var Zoo = map[string]Builder{
	"mlp3":         NewMLP3,
	"lenet5":       NewLeNet5,
	"vgg13":        NewVGG13,
	"mobilenet-v1": NewMobileNetV1,
	"svhn-net":     NewSVHNNet,
	"alexnet":      NewAlexNet,
}
