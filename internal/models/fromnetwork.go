package models

import (
	"fmt"

	"repro/internal/nn"
)

// FromNetwork derives a Workload (layer shape list) from a trainable
// nn.Network by walking its layers with shape inference. This lets any
// trained model — including user-defined ones — drive the mapping,
// placement, compiler and energy analyses, not just the built-in
// full-size paper workloads.
//
// ReLU, BatchNorm and Flatten layers carry no crossbar state and are
// skipped; convolutions with groups == input channels become DWConv.
func FromNetwork(name string, net *nn.Network, inC, inH, inW int) (Workload, error) {
	w := Workload{Name: name}
	c, h, wd := inC, inH, inW
	for _, l := range net.Layers() {
		switch v := l.(type) {
		case *nn.Conv2D:
			kind := Conv
			if v.Groups == v.InC && v.Groups > 1 {
				kind = DWConv
			} else if v.Groups != 1 {
				return Workload{}, fmt.Errorf("models: conv %s has unsupported group count %d (1 or InC only)", v.Name(), v.Groups)
			}
			ls := LayerShape{
				Name: v.Name(), Kind: kind,
				InC: v.InC, OutC: v.OutC,
				K: v.KH, Stride: v.Stride, Pad: v.Pad,
				InH: h, InW: wd,
			}
			if v.KH != v.KW {
				return Workload{}, fmt.Errorf("models: conv %s is non-square (%dx%d)", v.Name(), v.KH, v.KW)
			}
			w.Layers = append(w.Layers, ls)
			c, h, wd = ls.OutC, ls.OutH(), ls.OutW()
		case *nn.Linear:
			ls := LayerShape{Name: v.Name(), Kind: FC, InC: v.In, OutC: v.Out, InH: 1, InW: 1}
			w.Layers = append(w.Layers, ls)
			c, h, wd = v.Out, 1, 1
		case *nn.AvgPool2D:
			ls := LayerShape{Name: v.Name(), Kind: AvgPool, InC: c, OutC: c, K: v.K, Stride: v.Stride, InH: h, InW: wd}
			w.Layers = append(w.Layers, ls)
			h, wd = ls.OutH(), ls.OutW()
		case *nn.MaxPool2D:
			return Workload{}, fmt.Errorf("models: max pooling (%s) is not mappable; retrain with average pooling", v.Name())
		case *nn.ReLU, *nn.BatchNorm2D, *nn.Flatten:
			// No crossbar state.
		default:
			return Workload{}, fmt.Errorf("models: unsupported layer %s (%T)", l.Name(), l)
		}
	}
	if len(w.Layers) == 0 {
		return Workload{}, fmt.Errorf("models: network has no mappable layers")
	}
	return w, nil
}
