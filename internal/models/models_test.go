package models

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestZooNetworksForward(t *testing.T) {
	r := rng.New(1)
	for name, build := range Zoo {
		net := build(3, 16, 10, r.Split())
		x := tensor.New(2, 3, 16, 16)
		for i := range x.Data() {
			x.Data()[i] = r.Float64()
		}
		y := net.Forward(x, false)
		if y.Dim(0) != 2 || y.Dim(1) != 10 {
			t.Fatalf("%s: output shape %v", name, y.Shape())
		}
	}
}

func TestZooNetworksTrainStep(t *testing.T) {
	// One backward pass through each network must not panic and must
	// produce finite gradients.
	r := rng.New(2)
	for name, build := range Zoo {
		net := build(1, 16, 4, r.Split())
		x := tensor.New(4, 1, 16, 16)
		for i := range x.Data() {
			x.Data()[i] = r.Float64()
		}
		y := net.Forward(x, true)
		g := tensor.New(y.Shape()...).Fill(0.1)
		net.ZeroGrad()
		net.Backward(g)
		for _, p := range net.Params() {
			for _, v := range p.Grad.Data() {
				if v != v { // NaN
					t.Fatalf("%s: NaN gradient in %s", name, p.Name)
				}
			}
		}
	}
}

func TestMLP3Structure(t *testing.T) {
	net := NewMLP3(1, 16, 10, rng.New(3))
	// flatten + 3 linear + 2 relu = 6 layers
	if len(net.Layers()) != 6 {
		t.Fatalf("mlp3 has %d layers", len(net.Layers()))
	}
}

func TestLayerShapeGeometry(t *testing.T) {
	l := conv("c", 3, 64, 3, 1, 1, 32, 32)
	if l.OutH() != 32 || l.OutW() != 32 {
		t.Fatalf("conv out %dx%d", l.OutH(), l.OutW())
	}
	if l.Rf() != 27 {
		t.Fatalf("conv Rf = %d", l.Rf())
	}
	if l.OutputNeurons() != 64*32*32 {
		t.Fatalf("conv outputs = %d", l.OutputNeurons())
	}
	if l.MACs() != int64(64*32*32)*27 {
		t.Fatalf("conv MACs = %d", l.MACs())
	}
	if l.Weights() != 64*27 {
		t.Fatalf("conv weights = %d", l.Weights())
	}

	d := dwconv("d", 128, 3, 2, 1, 16, 16)
	if d.Rf() != 9 {
		t.Fatalf("dw Rf = %d", d.Rf())
	}
	if d.OutH() != 8 {
		t.Fatalf("dw out %d", d.OutH())
	}

	f := fc("f", 512, 10)
	if f.Rf() != 512 || f.MACs() != 5120 || f.OutputNeurons() != 10 {
		t.Fatalf("fc geometry wrong: Rf=%d MACs=%d", f.Rf(), f.MACs())
	}
}

func TestFullVGG13Dimensions(t *testing.T) {
	w := FullVGG13(10, 300, 91.6, 90.05)
	weighted := w.WeightedLayers()
	if len(weighted) != 12 { // 10 conv + 2 fc
		t.Fatalf("vgg13 weighted layers = %d", len(weighted))
	}
	// Layer chaining: each conv layer's input channels must match the
	// previous weighted conv's output channels.
	if weighted[1].InC != weighted[0].OutC {
		t.Fatal("conv1_2 input mismatch")
	}
	// First layer Rf must be 27 as used in the paper's utilization
	// discussion ("first layer of VGG-Net will only use 27×64").
	if weighted[0].Rf() != 27 || weighted[0].OutC != 64 {
		t.Fatalf("vgg first layer Rf=%d OutC=%d", weighted[0].Rf(), weighted[0].OutC)
	}
}

func TestFullMobileNetAlternation(t *testing.T) {
	w := FullMobileNetV1(10, 500, 91, 81.08)
	weighted := w.WeightedLayers()
	// stem + 13*(dw+pw) + fc = 28
	if len(weighted) != 28 {
		t.Fatalf("mobilenet weighted layers = %d", len(weighted))
	}
	// Even-indexed layers (1-based even = paper's "even-numbered layers")
	// should be depthwise: layer 2,4,... in 1-based numbering.
	for i := 1; i < 27; i += 2 {
		if weighted[i].Kind != DWConv {
			t.Fatalf("layer %d kind = %v, want dwconv", i+1, weighted[i].Kind)
		}
	}
	for i := 2; i < 27; i += 2 {
		if weighted[i].Kind != Conv || weighted[i].K != 1 {
			t.Fatalf("layer %d should be pointwise conv", i+1)
		}
	}
}

func TestFullAlexNetFCSizes(t *testing.T) {
	w := FullAlexNet()
	var fcs []LayerShape
	for _, l := range w.Layers {
		if l.Kind == FC {
			fcs = append(fcs, l)
		}
	}
	if len(fcs) != 3 || fcs[0].InC != 9216 || fcs[2].OutC != 1000 {
		t.Fatalf("alexnet FC shapes wrong: %+v", fcs)
	}
	// conv1 on 224x224 with k=11 s=4 p=2 gives 55x55.
	if w.Layers[0].OutH() != 55 {
		t.Fatalf("conv1 out = %d", w.Layers[0].OutH())
	}
}

func TestPaperWorkloadsTableI(t *testing.T) {
	ws := PaperWorkloads()
	if len(ws) != 8 {
		t.Fatalf("expected 8 workloads, got %d", len(ws))
	}
	wantT := []int{50, 40, 500, 300, 1000, 1000, 100, 500}
	for i, w := range ws {
		if w.Timesteps != wantT[i] {
			t.Fatalf("%s timesteps = %d want %d", w.Name, w.Timesteps, wantT[i])
		}
		if w.TotalMACs() <= 0 {
			t.Fatalf("%s has no MACs", w.Name)
		}
		// Spatial chaining sanity: every non-FC layer's output feeds the
		// next layer's input dims.
		for j := 0; j+1 < len(w.Layers); j++ {
			cur, next := w.Layers[j], w.Layers[j+1]
			if next.Kind == FC {
				continue
			}
			if cur.OutH() != next.InH || cur.OutW() != next.InW {
				t.Fatalf("%s: layer %s out %dx%d but %s in %dx%d",
					w.Name, cur.Name, cur.OutH(), cur.OutW(), next.Name, next.InH, next.InW)
			}
			if cur.OutC != next.InC {
				t.Fatalf("%s: channel chain broken at %s→%s", w.Name, cur.Name, next.Name)
			}
		}
	}
}

func TestVGGMACsDominatedByConv(t *testing.T) {
	w := FullVGG13(10, 300, 91.6, 90.05)
	var convMACs, fcMACs int64
	for _, l := range w.WeightedLayers() {
		if l.Kind == FC {
			fcMACs += l.MACs()
		} else {
			convMACs += l.MACs()
		}
	}
	if convMACs < 10*fcMACs {
		t.Fatalf("VGG conv MACs (%d) should dominate FC MACs (%d)", convMACs, fcMACs)
	}
}
