package models

import "fmt"

// LayerKind classifies a weighted layer for mapping and energy accounting.
type LayerKind int

// Layer kinds. Pooling layers are folded into the activity model (they
// carry no crossbar weights) but are kept in the shape lists so layer
// numbering matches the paper's figures.
const (
	Conv LayerKind = iota
	DWConv
	FC
	AvgPool
)

// String implements fmt.Stringer.
func (k LayerKind) String() string {
	switch k {
	case Conv:
		return "conv"
	case DWConv:
		return "dwconv"
	case FC:
		return "fc"
	case AvgPool:
		return "avgpool"
	}
	return fmt.Sprintf("LayerKind(%d)", int(k))
}

// LayerShape describes one layer of a full-size paper workload: enough
// geometry to compute receptive fields, output sizes, MAC counts and
// crossbar mappings without any weights.
type LayerShape struct {
	Name           string
	Kind           LayerKind
	InC, OutC      int
	K, Stride, Pad int
	InH, InW       int
}

// OutH returns the output height.
func (l LayerShape) OutH() int {
	if l.Kind == FC {
		return 1
	}
	return (l.InH+2*l.Pad-l.K)/l.Stride + 1
}

// OutW returns the output width.
func (l LayerShape) OutW() int {
	if l.Kind == FC {
		return 1
	}
	return (l.InW+2*l.Pad-l.K)/l.Stride + 1
}

// Rf returns the receptive-field size: the number of crossbar rows one
// output kernel occupies when flattened per Fig. 5 (KH·KW·C; for a
// depthwise convolution each output channel sees only its own input
// channel; for FC it is the full fan-in).
func (l LayerShape) Rf() int {
	switch l.Kind {
	case Conv:
		return l.K * l.K * l.InC
	case DWConv:
		return l.K * l.K
	case FC:
		return l.InC
	case AvgPool:
		return l.K * l.K
	}
	return 0
}

// Kernels returns the number of independent output kernels (crossbar
// columns needed): output channels for conv layers, output neurons for FC.
func (l LayerShape) Kernels() int { return l.OutC }

// OutputNeurons returns the number of output activations.
func (l LayerShape) OutputNeurons() int { return l.OutC * l.OutH() * l.OutW() }

// InputNeurons returns the number of input activations.
func (l LayerShape) InputNeurons() int { return l.InC * l.InH * l.InW }

// MACs returns the multiply-accumulate count of one inference pass.
func (l LayerShape) MACs() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.OutputNeurons()) * int64(l.K*l.K*l.InC)
	case DWConv:
		return int64(l.OutputNeurons()) * int64(l.K*l.K)
	case FC:
		return int64(l.OutC) * int64(l.InC)
	case AvgPool:
		return int64(l.OutputNeurons()) * int64(l.K*l.K)
	}
	return 0
}

// Weights returns the number of synaptic weights the layer programs.
func (l LayerShape) Weights() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.OutC) * int64(l.K*l.K*l.InC)
	case DWConv:
		return int64(l.OutC) * int64(l.K*l.K)
	case FC:
		return int64(l.OutC) * int64(l.InC)
	}
	return 0
}

// Workload is a full-size benchmark: an ordered list of layers plus the
// SNN integration window from Table I.
type Workload struct {
	Name      string
	Dataset   string
	Layers    []LayerShape
	Timesteps int // SNN evidence-integration window (Table I)
	// ANNAccuracy and SNNAccuracy record the paper's Table I numbers for
	// reporting alongside reproduced results.
	ANNAccuracy, SNNAccuracy float64
}

// WeightedLayers returns only the layers that carry crossbar weights.
func (w Workload) WeightedLayers() []LayerShape {
	var out []LayerShape
	for _, l := range w.Layers {
		if l.Kind != AvgPool {
			out = append(out, l)
		}
	}
	return out
}

// TotalMACs sums MACs over all weighted layers.
func (w Workload) TotalMACs() int64 {
	var t int64
	for _, l := range w.WeightedLayers() {
		t += l.MACs()
	}
	return t
}

// conv is a LayerShape constructor shorthand used by the workload tables.
func conv(name string, inC, outC, k, stride, pad, inH, inW int) LayerShape {
	return LayerShape{Name: name, Kind: Conv, InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad, InH: inH, InW: inW}
}

func dwconv(name string, c, k, stride, pad, inH, inW int) LayerShape {
	return LayerShape{Name: name, Kind: DWConv, InC: c, OutC: c, K: k, Stride: stride, Pad: pad, InH: inH, InW: inW}
}

func fc(name string, in, out int) LayerShape {
	return LayerShape{Name: name, Kind: FC, InC: in, OutC: out, InH: 1, InW: 1}
}

func pool(name string, c, k, inH, inW int) LayerShape {
	return LayerShape{Name: name, Kind: AvgPool, InC: c, OutC: c, K: k, Stride: k, InH: inH, InW: inW}
}

// FullMLP3 is the paper's 3-layer MLP on MNIST (784-500-300-10).
func FullMLP3() Workload {
	return Workload{
		Name: "mlp3", Dataset: "MNIST", Timesteps: 50,
		ANNAccuracy: 96.81, SNNAccuracy: 95.75,
		Layers: []LayerShape{
			fc("fc1", 784, 500),
			fc("fc2", 500, 300),
			fc("fc3", 300, 10),
		},
	}
}

// FullLeNet5 is LeNet-5 on 28×28 MNIST.
func FullLeNet5() Workload {
	return Workload{
		Name: "lenet5", Dataset: "MNIST", Timesteps: 40,
		ANNAccuracy: 99.12, SNNAccuracy: 98.56,
		Layers: []LayerShape{
			conv("conv1", 1, 6, 5, 1, 2, 28, 28),
			pool("pool1", 6, 2, 28, 28),
			conv("conv2", 6, 16, 5, 1, 0, 14, 14),
			pool("pool2", 16, 2, 10, 10),
			fc("fc1", 400, 120),
			fc("fc2", 120, 84),
			fc("fc3", 84, 10),
		},
	}
}

// FullVGG13 is VGG-13 on 32×32 CIFAR inputs with the standard channel
// progression 64-128-256-512-512 and a compact CIFAR classifier head.
func FullVGG13(classes, timesteps int, annAcc, snnAcc float64) Workload {
	name := "vgg13-cifar10"
	ds := "CIFAR-10"
	if classes == 100 {
		name = "vgg13-cifar100"
		ds = "CIFAR-100"
	}
	return Workload{
		Name: name, Dataset: ds, Timesteps: timesteps,
		ANNAccuracy: annAcc, SNNAccuracy: snnAcc,
		Layers: []LayerShape{
			conv("conv1_1", 3, 64, 3, 1, 1, 32, 32),
			conv("conv1_2", 64, 64, 3, 1, 1, 32, 32),
			pool("pool1", 64, 2, 32, 32),
			conv("conv2_1", 64, 128, 3, 1, 1, 16, 16),
			conv("conv2_2", 128, 128, 3, 1, 1, 16, 16),
			pool("pool2", 128, 2, 16, 16),
			conv("conv3_1", 128, 256, 3, 1, 1, 8, 8),
			conv("conv3_2", 256, 256, 3, 1, 1, 8, 8),
			pool("pool3", 256, 2, 8, 8),
			conv("conv4_1", 256, 512, 3, 1, 1, 4, 4),
			conv("conv4_2", 512, 512, 3, 1, 1, 4, 4),
			pool("pool4", 512, 2, 4, 4),
			conv("conv5_1", 512, 512, 3, 1, 1, 2, 2),
			conv("conv5_2", 512, 512, 3, 1, 1, 2, 2),
			pool("pool5", 512, 2, 2, 2),
			fc("fc1", 512, 512),
			fc("fc2", 512, classes),
		},
	}
}

// FullMobileNetV1 is MobileNet-v1 at width 1.0 on 32×32 CIFAR inputs: a
// dense stem followed by 13 depthwise-separable blocks. Odd-numbered
// weighted layers are pointwise, even-numbered depthwise, matching the
// alternating energy signature of Fig. 12.
func FullMobileNetV1(classes, timesteps int, annAcc, snnAcc float64) Workload {
	name := "mobilenet-cifar10"
	ds := "CIFAR-10"
	if classes == 100 {
		name = "mobilenet-cifar100"
		ds = "CIFAR-100"
	}
	type blk struct{ out, stride int }
	blocks := []blk{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2},
		{512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1},
	}
	layers := []LayerShape{conv("conv0", 3, 32, 3, 1, 1, 32, 32)}
	c, size := 32, 32
	for i, b := range blocks {
		outSize := size
		if b.stride == 2 {
			outSize = (size + 1) / 2
		}
		layers = append(layers, dwconv(fmt.Sprintf("dw%d", i+1), c, 3, b.stride, 1, size, size))
		layers = append(layers, conv(fmt.Sprintf("pw%d", i+1), c, b.out, 1, 1, 0, outSize, outSize))
		c, size = b.out, outSize
	}
	layers = append(layers, pool("gap", c, size, size, size))
	layers = append(layers, fc("fc", c, classes))
	return Workload{
		Name: name, Dataset: ds, Timesteps: timesteps,
		ANNAccuracy: annAcc, SNNAccuracy: snnAcc,
		Layers: layers,
	}
}

// FullSVHNNet is the paper's 12-layer SVHN network on 32×32 inputs.
func FullSVHNNet() Workload {
	return Workload{
		Name: "svhn-net", Dataset: "SVHN", Timesteps: 100,
		ANNAccuracy: 94.96, SNNAccuracy: 94.48,
		Layers: []LayerShape{
			conv("conv1", 3, 64, 3, 1, 1, 32, 32),
			conv("conv2", 64, 64, 3, 1, 1, 32, 32),
			pool("pool1", 64, 2, 32, 32),
			conv("conv3", 64, 128, 3, 1, 1, 16, 16),
			conv("conv4", 128, 128, 3, 1, 1, 16, 16),
			pool("pool2", 128, 2, 16, 16),
			conv("conv5", 128, 256, 3, 1, 1, 8, 8),
			conv("conv6", 256, 256, 3, 1, 1, 8, 8),
			pool("pool3", 256, 2, 8, 8),
			fc("fc1", 4096, 1024),
			fc("fc2", 1024, 512),
			fc("fc3", 512, 10),
		},
	}
}

// FullAlexNet is AlexNet on 224×224 ImageNet inputs.
func FullAlexNet() Workload {
	return Workload{
		Name: "alexnet", Dataset: "ImageNet", Timesteps: 500,
		ANNAccuracy: 51, SNNAccuracy: 50,
		Layers: []LayerShape{
			conv("conv1", 3, 96, 11, 4, 2, 224, 224),
			pool("pool1", 96, 2, 55, 55),
			conv("conv2", 96, 256, 5, 1, 2, 27, 27),
			pool("pool2", 256, 2, 27, 27),
			conv("conv3", 256, 384, 3, 1, 1, 13, 13),
			conv("conv4", 384, 384, 3, 1, 1, 13, 13),
			conv("conv5", 384, 256, 3, 1, 1, 13, 13),
			pool("pool3", 256, 2, 13, 13),
			fc("fc1", 9216, 4096),
			fc("fc2", 4096, 4096),
			fc("fc3", 4096, 1000),
		},
	}
}

// PaperWorkloads returns the eight benchmark rows of Table I in order.
func PaperWorkloads() []Workload {
	return []Workload{
		FullMLP3(),
		FullLeNet5(),
		FullMobileNetV1(10, 500, 91.00, 81.08),
		FullVGG13(10, 300, 91.60, 90.05),
		FullMobileNetV1(100, 1000, 66.06, 56.88),
		FullVGG13(100, 1000, 71.50, 68.32),
		FullSVHNNet(),
		FullAlexNet(),
	}
}
