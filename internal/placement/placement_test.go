package placement

import (
	"testing"

	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/noc"
)

func TestPlaceVGGFits(t *testing.T) {
	np := mapping.MapWorkload(models.FullVGG13(10, 300, 91.6, 90.05))
	a, err := Place(np, 14, 14)
	if err != nil {
		t.Fatal(err)
	}
	if a.NodesUsed != np.TotalNCs() {
		t.Fatalf("nodes used %d, want %d", a.NodesUsed, np.TotalNCs())
	}
	// No node may be assigned twice.
	seen := map[noc.Node]bool{}
	for _, la := range a.Layers {
		for _, n := range la.Nodes {
			if seen[n] {
				t.Fatalf("node %v assigned twice", n)
			}
			seen[n] = true
			if n.X < 0 || n.X >= 14 || n.Y < 0 || n.Y >= 14 {
				t.Fatalf("node %v out of mesh", n)
			}
		}
	}
}

func TestPlaceRejectsOversizedWorkload(t *testing.T) {
	np := mapping.MapWorkload(models.FullAlexNet())
	if _, err := Place(np, 4, 4); err == nil {
		t.Fatal("AlexNet cannot fit a 4×4 mesh")
	}
}

func TestSnakeOrderAdjacency(t *testing.T) {
	// Consecutive allocations in snake order must be mesh neighbours.
	np := mapping.MapWorkload(models.FullVGG13(10, 300, 91.6, 90.05))
	a, err := Place(np, 14, 14)
	if err != nil {
		t.Fatal(err)
	}
	var flat []noc.Node
	for _, la := range a.Layers {
		flat = append(flat, la.Nodes...)
	}
	mesh := noc.New(noc.DefaultConfig())
	for i := 1; i < len(flat); i++ {
		if mesh.Hops(flat[i-1], flat[i]) != 1 {
			t.Fatalf("allocation %d (%v → %v) not adjacent", i, flat[i-1], flat[i])
		}
	}
}

func TestSpillLayersHaveReducers(t *testing.T) {
	np := mapping.MapWorkload(models.FullAlexNet())
	a, err := Place(np, 20, 20) // AlexNet needs more than 196 cores
	if err != nil {
		t.Fatal(err)
	}
	foundSpill := false
	for _, la := range a.Layers {
		if la.Placement.NeedsADC() {
			foundSpill = true
			if !la.HasRed {
				t.Fatalf("spill layer %s has no reducer", la.Placement.Layer.Name)
			}
		} else if la.HasRed {
			t.Fatalf("non-spill layer %s has a reducer", la.Placement.Layer.Name)
		}
	}
	if !foundSpill {
		t.Fatal("AlexNet should have spill layers")
	}
}

func TestPoolingLayersGetNoCores(t *testing.T) {
	np := mapping.NetworkPlacement{
		Workload: models.FullLeNet5(),
	}
	for _, l := range models.FullLeNet5().Layers {
		np.Placements = append(np.Placements, mapping.Map(l))
	}
	a, err := Place(np, 14, 14)
	if err != nil {
		t.Fatal(err)
	}
	for i, la := range a.Layers {
		if np.Placements[i].Layer.Kind == models.AvgPool && len(la.Nodes) != 0 {
			t.Fatal("pooling layer got cores")
		}
	}
}

func TestSimulateTrafficANN(t *testing.T) {
	np := mapping.MapWorkload(models.FullVGG13(10, 300, 91.6, 90.05))
	a, err := Place(np, 14, 14)
	if err != nil {
		t.Fatal(err)
	}
	r := a.SimulateTraffic(ANNTraffic())
	if r.Stats.Packets <= 0 || r.ActivationBits <= 0 {
		t.Fatalf("no traffic: %+v", r)
	}
	if r.PartialSumBits <= 0 {
		t.Fatal("VGG's spill layers should produce partial-sum traffic")
	}
	if r.EnergyJ() <= 0 || r.MakespanNS <= 0 {
		t.Fatalf("degenerate report: %+v", r)
	}
}

func TestLocalityBeatsMeanHops(t *testing.T) {
	// Snake placement of consecutive layers should beat the
	// uniform-random (W+H)/3 mean-hop assumption of the analytic model.
	np := mapping.MapWorkload(models.FullVGG13(10, 300, 91.6, 90.05))
	a, err := Place(np, 14, 14)
	if err != nil {
		t.Fatal(err)
	}
	r := a.SimulateTraffic(ANNTraffic())
	if r.MeanHopsObserved >= noc.MeanHops(14, 14) {
		t.Fatalf("placed traffic (%.2f hops) no better than random (%.2f)",
			r.MeanHopsObserved, noc.MeanHops(14, 14))
	}
}

func TestSNNTrafficScalesWithRateAndT(t *testing.T) {
	np := mapping.MapWorkload(models.FullLeNet5())
	a, err := Place(np, 14, 14)
	if err != nil {
		t.Fatal(err)
	}
	small := a.SimulateTraffic(SNNTraffic(10, 0.1))
	big := a.SimulateTraffic(SNNTraffic(40, 0.1))
	if big.ActivationBits <= small.ActivationBits {
		t.Fatal("traffic must grow with timesteps")
	}
	quiet := a.SimulateTraffic(SNNTraffic(10, 0.02))
	if quiet.EnergyJ() >= small.EnergyJ() {
		t.Fatal("lower spike rates must reduce NoC energy")
	}
}
