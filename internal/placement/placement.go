// Package placement assigns a mapped workload's neural cores to physical
// mesh coordinates and simulates the resulting network-on-chip traffic.
//
// Package mapping decides *how many* cores each layer needs; this package
// decides *where* they sit on the 14×14 grid of Fig. 6(b) and replaces
// the analytic mean-hop energy approximation with routed, contended
// packet traffic: inter-layer activation/spike transfers and the
// partial-sum reduction trees of the multi-NC spill path.
package placement

import (
	"fmt"

	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/noc"
)

// LayerAssignment is the physical placement of one weighted layer.
type LayerAssignment struct {
	Placement mapping.Placement
	// Nodes are the mesh coordinates of the layer's neural cores.
	Nodes []noc.Node
	// Reducer is the node hosting the layer's reduction RU (only set on
	// the ADC spill path).
	Reducer noc.Node
	HasRed  bool
}

// Assignment is a full workload placement.
type Assignment struct {
	Workload models.Workload
	Layers   []LayerAssignment
	MeshW    int
	MeshH    int
	// NodesUsed is the number of distinct cores allocated.
	NodesUsed int
}

// Place assigns cores to mesh nodes in snake (boustrophedon) order so
// that consecutive layers occupy adjacent cores, minimizing inter-layer
// hop counts. Layers are placed in network order; a layer's reduction RU
// (if any) is its first core's router. Placement fails if the workload
// needs more cores than the mesh provides.
func Place(np mapping.NetworkPlacement, meshW, meshH int) (*Assignment, error) {
	total := meshW * meshH
	a := &Assignment{Workload: np.Workload, MeshW: meshW, MeshH: meshH}
	next := 0
	nodeAt := func(i int) noc.Node {
		y := i / meshW
		x := i % meshW
		if y%2 == 1 { // snake: odd rows run right-to-left
			x = meshW - 1 - x
		}
		return noc.Node{X: x, Y: y}
	}
	for _, p := range np.Placements {
		la := LayerAssignment{Placement: p}
		n := p.NCsUsed
		if p.ACsUsed == 0 {
			// Pooling: no cores; it rides the producer's NU datapath.
			a.Layers = append(a.Layers, la)
			continue
		}
		if next+n > total {
			return nil, fmt.Errorf("placement: workload %s needs %d cores, mesh has %d",
				np.Workload.Name, next+n, total)
		}
		for i := 0; i < n; i++ {
			la.Nodes = append(la.Nodes, nodeAt(next))
			next++
		}
		if p.NeedsADC() {
			la.Reducer = la.Nodes[0]
			la.HasRed = true
		}
		a.Layers = append(a.Layers, la)
	}
	a.NodesUsed = next
	return a, nil
}

// TrafficReport summarizes one simulated inference's NoC behaviour.
type TrafficReport struct {
	Stats noc.Stats
	// MakespanNS is the time at which the last packet arrived.
	MakespanNS float64
	// ActivationBits / PartialSumBits split the traffic by purpose.
	ActivationBits int64
	PartialSumBits int64
	// MeanHopsObserved is hop-flits / flits — the realized locality,
	// comparable against the (W+H)/3 analytic assumption.
	MeanHopsObserved float64
}

// TrafficConfig parameterizes the traffic simulation.
type TrafficConfig struct {
	// ActivationBits per transferred activation (4 in ANN mode) or per
	// spike event (AER word in SNN mode).
	ActivationBits int
	// PartialSumBits per digitized partial sum on the spill path.
	PartialSumBits int
	// ActivityRate scales the number of transferred values (1 for ANN,
	// the spike rate for SNN mode).
	ActivityRate float64
	// Timesteps multiplies the whole pattern (1 for ANN).
	Timesteps int
}

// ANNTraffic returns the configuration for one ANN pass.
func ANNTraffic() TrafficConfig {
	return TrafficConfig{ActivationBits: 4, PartialSumBits: 8, ActivityRate: 1, Timesteps: 1}
}

// SNNTraffic returns the configuration for a T-step spiking run at the
// given mean output spike rate.
func SNNTraffic(T int, rate float64) TrafficConfig {
	return TrafficConfig{ActivationBits: 8, PartialSumBits: 8, ActivityRate: rate, Timesteps: T}
}

// SimulateTraffic routes one inference worth of packets through the mesh:
// for each weighted layer, (1) spill cores send their digitized partial
// sums to the layer's reduction RU, and (2) the layer's output
// activations travel from its cores to every core of the next weighted
// layer (multicast modeled as per-destination unicast, as in
// dimension-ordered wormhole meshes without multicast support).
func (a *Assignment) SimulateTraffic(cfg TrafficConfig) TrafficReport {
	mesh := noc.New(noc.Config{
		Width: a.MeshW, Height: a.MeshH,
		LinkBits:       32,
		HopCycles:      2,
		ClockHz:        1.2e9,
		EnergyPerBitPJ: 0.02,
	})
	var report TrafficReport
	at := int64(0)
	// Find, for each layer with cores, the next layer with cores.
	withCores := make([]int, 0, len(a.Layers))
	for i, la := range a.Layers {
		if len(la.Nodes) > 0 {
			withCores = append(withCores, i)
		}
	}
	for step := 0; step < cfg.Timesteps; step++ {
		for wi, li := range withCores {
			la := a.Layers[li]
			p := la.Placement
			// (1) Partial-sum reduction.
			if la.HasRed {
				perCore := int(float64(p.ADCConversionsPerEval*p.Evaluations) /
					float64(len(la.Nodes)) * float64(cfg.PartialSumBits) * cfg.ActivityRate)
				if perCore > 0 {
					for _, n := range la.Nodes {
						if n == la.Reducer {
							continue
						}
						mesh.Send(n, la.Reducer, perCore, at)
						report.PartialSumBits += int64(perCore)
					}
				}
			}
			// (2) Activations to the next layer's cores.
			if wi+1 >= len(withCores) {
				continue
			}
			dst := a.Layers[withCores[wi+1]]
			values := float64(p.Layer.OutputNeurons()) * cfg.ActivityRate
			bitsTotal := values * float64(cfg.ActivationBits)
			perPair := int(bitsTotal / float64(len(la.Nodes)*len(dst.Nodes)))
			if perPair <= 0 {
				perPair = 1
			}
			for _, s := range la.Nodes {
				for _, d := range dst.Nodes {
					mesh.Send(s, d, perPair, at)
					report.ActivationBits += int64(perPair)
				}
			}
		}
	}
	report.Stats = mesh.Stats()
	report.MakespanNS = mesh.CyclesToNS(report.Stats.MakespanCycles)
	if report.Stats.Flits > 0 {
		report.MeanHopsObserved = float64(report.Stats.HopFlits) / float64(report.Stats.Flits)
	}
	return report
}

// EnergyJ returns the simulated NoC energy in joules.
func (r TrafficReport) EnergyJ() float64 { return r.Stats.EnergyPJ * 1e-12 }
