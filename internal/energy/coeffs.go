package energy

import "repro/internal/mapping"

// This file derives per-event energy coefficients from the Table III
// power budget, so measured activity counters (package obs) can be
// turned into an energy attribution without re-running the analytic
// layer model: power × 110 ns cycle ÷ the events that cycle serves.

// cycleS returns the pipeline cycle in seconds.
func (m *Model) cycleS() float64 { return m.S.CycleNS * 1e-9 }

// crossbarPowerW returns the per-super-tile crossbar power of a mode.
func (m *Model) crossbarPowerW(mode Mode) float64 {
	if mode == SNN {
		return m.S.SNNCrossbarPowerW
	}
	return m.S.ANNCrossbarPowerW
}

// driverPowerW returns the per-super-tile driver power of a mode (DACs
// in ANN mode, spike drivers in SNN mode).
func (m *Model) driverPowerW(mode Mode) float64 {
	if mode == SNN {
		return m.S.SNNDriverPowerW
	}
	return m.S.ANNDACPowerW
}

// PerRowCrossbarJ returns the crossbar array energy attributable to one
// driven row of one atomic-crossbar evaluation: the per-AC share of the
// mode's crossbar power over one cycle, split across the M rows the AC
// drives at full activity. Multiply by an ActiveRowSum counter.
func (m *Model) PerRowCrossbarJ(mode Mode) float64 {
	return m.perAC(m.crossbarPowerW(mode)) * m.cycleS() / float64(mapping.M)
}

// PerRowDriverJ is PerRowCrossbarJ for the input drivers.
func (m *Model) PerRowDriverJ(mode Mode) float64 {
	return m.perAC(m.driverPowerW(mode)) * m.cycleS() / float64(mapping.M)
}

// PerEvalNeuronJ returns the neuron-unit energy of one atomic-crossbar
// evaluation: the per-AC share of the super-tile's NU power over one
// cycle. Multiply by a MACReads counter.
func (m *Model) PerEvalNeuronJ() float64 {
	return m.S.NUPowerW / float64(m.S.ACsPerSuperTile) * m.cycleS()
}

// PerConversionJ returns the energy of digitizing and reducing one
// spill-path partial sum (converter plus routing-unit add).
func (m *Model) PerConversionJ() float64 { return m.ADCConversionJ + m.RUAddJ }

// PerNoCHopBitJ returns the mesh transfer energy per bit per hop.
func (m *Model) PerNoCHopBitJ() float64 { return m.Mesh.Cfg.EnergyPerBitPJ * 1e-12 }
