package energy

import (
	"math"
	"testing"

	"repro/internal/mapping"
	"repro/internal/models"
)

func TestTableIIITotals(t *testing.T) {
	s := TableIII()
	// The derived core totals must reproduce Table III within rounding.
	if got := s.ANNCorePowerW(); math.Abs(got-113.8e-3) > 0.5e-3 {
		t.Fatalf("ANN core power %v, want ≈113.8 mW", got)
	}
	if got := s.SNNCorePowerW(); math.Abs(got-19.66e-3) > 0.2e-3 {
		t.Fatalf("SNN core power %v, want ≈19.66 mW", got)
	}
	if got := s.AUPowerW(); math.Abs(got-0.9e-3) > 1e-6 {
		t.Fatalf("AU power %v, want 0.9 mW", got)
	}
	if got := s.ANNCoreAreaMM2(); math.Abs(got-0.528) > 0.01 {
		t.Fatalf("ANN core area %v, want ≈0.528", got)
	}
	if got := s.SNNCoreAreaMM2(); math.Abs(got-0.431) > 0.01 {
		t.Fatalf("SNN core area %v, want ≈0.431", got)
	}
	// Chip totals: ≈5.2 W and ≈86.7 mm².
	if got := s.ChipPowerW(); math.Abs(got-5.2) > 0.1 {
		t.Fatalf("chip power %v, want ≈5.2 W", got)
	}
	if got := s.ChipAreaMM2(); math.Abs(got-86.7) > 1.0 {
		t.Fatalf("chip area %v, want ≈86.7 mm²", got)
	}
	if s.SNNCoreCount() != 182 || s.ANNCoreCount() != 14 {
		t.Fatalf("core counts: %d SNN, %d ANN", s.SNNCoreCount(), s.ANNCoreCount())
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{CrossbarJ: 1, DriverJ: 2, NUJ: 3, ADCJ: 4, SRAMJ: 5, EDRAMJ: 6, NoCJ: 7, AUJ: 8}
	if b.Total() != 36 {
		t.Fatalf("Total = %v", b.Total())
	}
}

func TestDefaultActivityDecays(t *testing.T) {
	w := models.FullVGG13(10, 300, 91.6, 90.05)
	act := DefaultActivity(w, DefaultInputRate)
	if len(act) != len(w.WeightedLayers())+1 {
		t.Fatalf("activity length %d", len(act))
	}
	if act[0] != DefaultInputRate {
		t.Fatalf("input rate %v", act[0])
	}
	for i := 1; i < len(act); i++ {
		if act[i] > act[i-1]+1e-12 {
			t.Fatalf("activity increased at %d", i)
		}
		if act[i] < 0.02-1e-12 {
			t.Fatalf("activity below floor at %d: %v", i, act[i])
		}
	}
}

func TestANNLayerPooling(t *testing.T) {
	m := NewModel()
	pool := models.LayerShape{Kind: models.AvgPool, InC: 64, OutC: 64, K: 2, Stride: 2, InH: 32, InW: 32}
	rep := m.ANNLayer(mapping.Map(pool))
	if rep.Total() != 0 {
		t.Fatalf("pooling layer consumed crossbar energy: %v", rep.Total())
	}
}

func TestANNLayerEnergyPositiveAndConsistent(t *testing.T) {
	m := NewModel()
	l := models.LayerShape{Name: "c", Kind: models.Conv, InC: 64, OutC: 64, K: 3, Stride: 1, Pad: 1, InH: 16, InW: 16}
	rep := m.ANNLayer(mapping.Map(l))
	if rep.Total() <= 0 || rep.TimeS <= 0 || rep.PeakPowerW <= 0 {
		t.Fatalf("degenerate report %+v", rep)
	}
	if math.Abs(rep.AvgPowerW-rep.Total()/rep.TimeS) > 1e-12 {
		t.Fatal("AvgPower inconsistent with energy/time")
	}
	if rep.AvgPowerW > rep.PeakPowerW+1e-9 {
		t.Fatalf("average power %v exceeds peak %v", rep.AvgPowerW, rep.PeakPowerW)
	}
}

func TestSNNEnergyScalesWithTimesteps(t *testing.T) {
	// With the hardware provisioning fixed, energy is linear in the
	// integration window.
	m := NewModel()
	m.SNNParallelism = 4
	l := models.LayerShape{Name: "c", Kind: models.Conv, InC: 64, OutC: 64, K: 3, Stride: 1, Pad: 1, InH: 16, InW: 16}
	p := mapping.Map(l)
	e100 := m.SNNLayer(p, 100, 0.2, 0.1).Total()
	e200 := m.SNNLayer(p, 200, 0.2, 0.1).Total()
	if math.Abs(e200/e100-2) > 0.05 {
		t.Fatalf("energy not ∝ T: %v vs %v", e100, e200)
	}
}

func TestSNNEnergyScalesWithActivity(t *testing.T) {
	m := NewModel()
	l := models.LayerShape{Name: "c", Kind: models.Conv, InC: 64, OutC: 64, K: 3, Stride: 1, Pad: 1, InH: 16, InW: 16}
	p := mapping.Map(l)
	quiet := m.SNNLayer(p, 100, 0.02, 0.02).Total()
	busy := m.SNNLayer(p, 100, 0.5, 0.3).Total()
	if busy <= quiet {
		t.Fatal("higher spike rates must cost more energy")
	}
}

func TestSNNPeakBelowANNPeak(t *testing.T) {
	// Fig. 14: ANN peak power exceeds SNN peak power for every layer.
	m := NewModel()
	for _, w := range models.PaperWorkloads() {
		np := mapping.MapWorkload(w)
		act := DefaultActivity(w, DefaultInputRate)
		ann := m.ANNNetwork(np)
		snn := m.SNNNetwork(np, w.Timesteps, act)
		for i := range snn.Layers {
			if snn.Layers[i].PeakPowerW >= ann.Layers[i].PeakPowerW {
				t.Fatalf("%s layer %s: SNN peak %v ≥ ANN peak %v",
					w.Name, snn.Layers[i].Name, snn.Layers[i].PeakPowerW, ann.Layers[i].PeakPowerW)
			}
		}
	}
}

func TestPeakPowerRatioBand(t *testing.T) {
	// Fig. 14: the per-layer peak ratio reaches tens of × (paper: "as
	// high as ≈50×") on the deep benchmarks.
	m := NewModel()
	w := models.FullVGG13(10, 300, 91.6, 90.05)
	np := mapping.MapWorkload(w)
	act := DefaultActivity(w, DefaultInputRate)
	ann := m.ANNNetwork(np)
	snn := m.SNNNetwork(np, w.Timesteps, act)
	maxRatio := 0.0
	for i := range snn.Layers {
		if snn.Layers[i].PeakPowerW > 0 {
			if r := ann.Layers[i].PeakPowerW / snn.Layers[i].PeakPowerW; r > maxRatio {
				maxRatio = r
			}
		}
	}
	if maxRatio < 10 || maxRatio > 100 {
		t.Fatalf("max peak ratio %v outside the plausible Fig. 14 band", maxRatio)
	}
}

func TestSNNMorePowerEfficientButMoreEnergyHungry(t *testing.T) {
	// §VI-C: SNN mode draws much less average power but, integrated over
	// its evidence window, consumes more energy than one ANN pass.
	m := NewModel()
	for _, w := range []models.Workload{
		models.FullVGG13(10, 300, 91.6, 90.05),
		models.FullAlexNet(),
		models.FullSVHNNet(),
	} {
		np := mapping.MapWorkload(w)
		act := DefaultActivity(w, DefaultInputRate)
		ann := m.ANNNetwork(np)
		snn := m.SNNNetwork(np, w.Timesteps, act)
		pRatio := ann.AvgPowerW / snn.AvgPowerW
		eRatio := snn.EnergyJ / ann.EnergyJ
		if pRatio < 5 {
			t.Fatalf("%s: power advantage %v below the ≥6.25× band", w.Name, pRatio)
		}
		if eRatio < 1.5 || eRatio > 15 {
			t.Fatalf("%s: SNN/ANN energy ratio %v outside the ≈5-10× band", w.Name, eRatio)
		}
	}
}

func TestSNNMemoryDominatesBreakdown(t *testing.T) {
	// Fig. 15(a): SRAM + eDRAM dominate the SNN-mode energy split.
	m := NewModel()
	w := models.FullVGG13(10, 300, 91.6, 90.05)
	np := mapping.MapWorkload(w)
	snn := m.SNNNetwork(np, w.Timesteps, DefaultActivity(w, DefaultInputRate))
	memShare := (snn.SRAMJ + snn.EDRAMJ) / snn.EnergyJ
	if memShare < 0.3 {
		t.Fatalf("SNN memory share %v, expected dominant (paper: 36.6%% SRAM alone)", memShare)
	}
}

func TestANNCrossbarDACDominateBreakdown(t *testing.T) {
	// Fig. 15(b): crossbars and DACs dominate the ANN-mode energy split
	// (paper: 65.5% from the spiking cores' counterpart components).
	m := NewModel()
	w := models.FullVGG13(10, 300, 91.6, 90.05)
	np := mapping.MapWorkload(w)
	ann := m.ANNNetwork(np)
	share := (ann.CrossbarJ + ann.DriverJ) / ann.EnergyJ
	if share < 0.4 {
		t.Fatalf("ANN crossbar+DAC share %v, expected dominant", share)
	}
}

func TestHybridBetweenSNNAndANN(t *testing.T) {
	// Fig. 17: hybrid energy sits below pure SNN; hybrid power sits below
	// pure ANN.
	m := NewModel()
	w := models.FullVGG13(10, 300, 91.6, 90.05)
	np := mapping.MapWorkload(w)
	act := DefaultActivity(w, DefaultInputRate)
	T := w.Timesteps
	snn := m.SNNNetwork(np, T, act)
	ann := m.ANNNetwork(np)
	hyb := m.HybridNetwork(np, T, 3, act)
	if hyb.EnergyJ >= snn.EnergyJ {
		t.Fatalf("hybrid energy %v not below SNN %v", hyb.EnergyJ, snn.EnergyJ)
	}
	if hyb.AvgPowerW >= ann.AvgPowerW {
		t.Fatalf("hybrid power %v not below ANN %v", hyb.AvgPowerW, ann.AvgPowerW)
	}
	// Fig. 17 protocol: deeper splits run shorter evidence windows
	// (Table II), and the combination draws more average power.
	hyb1 := m.HybridNetwork(np, 250, 1, act)
	hyb6 := m.HybridNetwork(np, 100, 6, act)
	if hyb6.AvgPowerW <= hyb1.AvgPowerW {
		t.Fatalf("power should grow toward the ANN end of the sweep: %v vs %v", hyb1.AvgPowerW, hyb6.AvgPowerW)
	}
}

func TestHybridIncludesAU(t *testing.T) {
	m := NewModel()
	w := models.FullVGG13(10, 300, 91.6, 90.05)
	np := mapping.MapWorkload(w)
	act := DefaultActivity(w, DefaultInputRate)
	hyb := m.HybridNetwork(np, 300, 2, act)
	if hyb.AUJ <= 0 {
		t.Fatal("hybrid run must account accumulator energy")
	}
	ann := m.ANNNetwork(np)
	if ann.AUJ != 0 {
		t.Fatal("pure ANN must not use the AU")
	}
}

func TestSpikingActivityReducesDeepLayerEnergy(t *testing.T) {
	// The Fig. 4 effect: with decaying activity, deeper SNN layers cost
	// less per MAC than shallow ones.
	m := NewModel()
	w := models.FullVGG13(10, 300, 91.6, 90.05)
	np := mapping.MapWorkload(w)
	act := DefaultActivity(w, DefaultInputRate)
	snn := m.SNNNetwork(np, w.Timesteps, act)
	weighted := w.WeightedLayers()
	first := snn.Layers[0].Total() / float64(weighted[0].MACs())
	last := snn.Layers[9].Total() / float64(weighted[9].MACs()) // conv5_2
	if last >= first {
		t.Fatalf("deep-layer energy/MAC %v not below shallow %v", last, first)
	}
}

func TestModeString(t *testing.T) {
	if ANN.String() != "ANN" || SNN.String() != "SNN" {
		t.Fatal("mode strings wrong")
	}
}

func TestInterpolateActivity(t *testing.T) {
	measured := []float64{0.4, 0.2, 0.1}
	out := InterpolateActivity(measured, 6, 0.3)
	if len(out) != 7 {
		t.Fatalf("length %d", len(out))
	}
	if out[0] != 0.3 {
		t.Fatalf("input rate %v", out[0])
	}
	if out[6] != 0.1 {
		t.Fatalf("final rate %v, want measured tail 0.1", out[6])
	}
	// Interior must be monotone non-increasing for a decaying profile.
	for i := 2; i < len(out); i++ {
		if out[i] > out[i-1]+1e-12 {
			t.Fatalf("interpolated profile increased at %d", i)
		}
	}
}

func TestInterpolateActivityEmptyFallsBack(t *testing.T) {
	out := InterpolateActivity(nil, 4, 0.3)
	if len(out) != 5 {
		t.Fatalf("length %d", len(out))
	}
	if out[0] != 0.3 {
		t.Fatalf("fallback input rate %v", out[0])
	}
}

func TestMeasuredActivityDrivesSNNModel(t *testing.T) {
	// A sparser measured profile must reduce the modeled SNN energy.
	m := NewModel()
	w := models.FullVGG13(10, 300, 91.6, 90.05)
	np := mapping.MapWorkload(w)
	layers := len(w.WeightedLayers())
	dense := InterpolateActivity([]float64{0.4, 0.35, 0.3}, layers, 0.4)
	sparse := InterpolateActivity([]float64{0.1, 0.05, 0.02}, layers, 0.1)
	if m.SNNNetwork(np, 300, sparse).EnergyJ >= m.SNNNetwork(np, 300, dense).EnergyJ {
		t.Fatal("sparser measured activity must reduce energy")
	}
}

func TestThroughputMetrics(t *testing.T) {
	m := NewModel()
	w := models.FullVGG13(10, 300, 91.6, 90.05)
	np := mapping.MapWorkload(w)
	ann := m.ANNNetwork(np)
	tp := ThroughputOf(np, ann, 1)
	if tp.InferencesPerSec <= 0 || tp.GOPS <= 0 || tp.TOPSPerWatt <= 0 {
		t.Fatalf("degenerate throughput %+v", tp)
	}
	if tp.EnergyPerInferenceJ != ann.EnergyJ {
		t.Fatal("energy passthrough broken")
	}
	// SNN at T timesteps does T× the raw ops in more time at lower power;
	// both modes should land at plausible efficiency (> 0.1 TOPS/W for an
	// in-memory design).
	snn := m.SNNNetwork(np, w.Timesteps, DefaultActivity(w, DefaultInputRate))
	tps := ThroughputOf(np, snn, w.Timesteps)
	if tps.TOPSPerWatt <= tp.TOPSPerWatt {
		t.Fatalf("SNN ops/W (%v) should beat ANN (%v): binary ops at far lower power", tps.TOPSPerWatt, tp.TOPSPerWatt)
	}
}

func TestAreaReports(t *testing.T) {
	m := NewModel()
	lenet := mapping.MapWorkload(models.FullLeNet5())
	ann := m.AreaANN(lenet)
	snn := m.AreaSNN(lenet)
	if ann.CoresUsed != lenet.TotalNCs() || snn.CoresUsed != lenet.TotalNCs() {
		t.Fatal("core counts wrong")
	}
	if ann.CoreAreaMM2 <= snn.CoreAreaMM2 {
		t.Fatal("ANN cores are larger than SNN cores (Table III)")
	}
	if !snn.FitsChip || !ann.FitsChip {
		t.Fatal("LeNet must fit both partitions")
	}
	if ann.ChipFraction <= 0 || ann.ChipFraction >= 1 {
		t.Fatalf("chip fraction %v", ann.ChipFraction)
	}
	// AlexNet needs more than 14 ANN cores.
	alex := mapping.MapWorkload(models.FullAlexNet())
	if m.AreaANN(alex).FitsChip {
		t.Fatal("AlexNet cannot fit the 14-core ANN partition in one shot")
	}
	if !m.AreaSNN(alex).FitsChip && alex.TotalNCs() <= 182 {
		t.Fatal("SNN partition fit flag inconsistent")
	}
}
