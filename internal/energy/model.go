package energy

import (
	"math"

	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/noc"
)

// Mode selects the NEBULA operating mode for a set of layers.
type Mode int

// Operating modes.
const (
	ANN Mode = iota
	SNN
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ANN {
		return "ANN"
	}
	return "SNN"
}

// Model evaluates NEBULA energy and power. The zero value is not useful;
// use NewModel.
type Model struct {
	S Spec
	// Mesh supplies NoC transfer energy.
	Mesh *noc.Mesh
	// SNNStaticFraction is the fraction of SRAM/eDRAM static power that
	// cannot be gated away between spike events in SNN mode. The paper
	// notes SRAM static power dominates the SNN energy breakdown
	// (§VI-C2), so this stays well above zero.
	SNNStaticFraction float64
	// SNNParallelism is the replication speedup the mapper extracts from
	// the large SNN core partition (Table III allocates 14×13 SNN cores
	// vs 14×1 ANN cores): spare cores hold kernel replicas that process
	// output positions in parallel, shortening each algorithmic timestep.
	// Zero selects the iso-latency provisioning policy: replication grows
	// with the integration window (≈T/50, capped by the available core ratio) so
	// that total inference latency stays roughly independent of T.
	SNNParallelism float64
	// PartialSumBits is the bit width of digitized partial sums on the
	// multi-NC spill path.
	PartialSumBits int
	// ActivationBits is the activation precision (4).
	ActivationBits int
	// EDRAMAccessJ and SRAMAccessJ are the event-driven per-spike access
	// energies of the core memories in SNN mode; spikes are single-bit
	// events, so accesses cost per-word energies rather than full-array
	// active power.
	EDRAMAccessJ float64
	SRAMAccessJ  float64
	// AERBits is the address-event packet size for spike traffic on the
	// mesh.
	AERBits int
	// SpikeGating is the residual switching-energy fraction of a binary
	// spike evaluation relative to the sustained multi-level ANN drive:
	// spike drivers swing a single rail for a fraction of the cycle,
	// whereas ANN DACs hold analog levels for the full evaluation.
	SpikeGating float64
	// ADCPathOverhead is the busy-time multiplier of the multi-NC spill
	// path (the dashed digitize/reduce/activate stages of Fig. 8).
	ADCPathOverhead float64
	// ADCConversionJ is the energy of one 4-bit conversion; RUAddJ is the
	// routing-unit partial-sum add.
	ADCConversionJ float64
	RUAddJ         float64
}

// NewModel returns a model with the paper's operating point.
func NewModel() *Model {
	return &Model{
		S:                 TableIII(),
		Mesh:              noc.New(noc.DefaultConfig()),
		SNNStaticFraction: 0.25,
		SNNParallelism:    0, // auto: iso-latency policy
		PartialSumBits:    8,
		ActivationBits:    4,
		EDRAMAccessJ:      1e-12,
		SRAMAccessJ:       0.5e-12,
		AERBits:           8,
		SpikeGating:       0.3,
		ADCPathOverhead:   3.0,
		ADCConversionJ:    0.5e-12,
		RUAddJ:            0.2e-12,
	}
}

// Breakdown is the component-wise energy split of Figs. 15–16, in joules.
type Breakdown struct {
	CrossbarJ float64 // MTJ crossbar arrays
	DriverJ   float64 // DACs (ANN) or spike drivers (SNN)
	NUJ       float64 // neuron units
	ADCJ      float64
	SRAMJ     float64 // input/output buffers
	EDRAMJ    float64
	NoCJ      float64
	AUJ       float64 // accumulator units (hybrid)
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.CrossbarJ + b.DriverJ + b.NUJ + b.ADCJ + b.SRAMJ + b.EDRAMJ + b.NoCJ + b.AUJ
}

// add accumulates another breakdown.
func (b *Breakdown) add(o Breakdown) {
	b.CrossbarJ += o.CrossbarJ
	b.DriverJ += o.DriverJ
	b.NUJ += o.NUJ
	b.ADCJ += o.ADCJ
	b.SRAMJ += o.SRAMJ
	b.EDRAMJ += o.EDRAMJ
	b.NoCJ += o.NoCJ
	b.AUJ += o.AUJ
}

// LayerReport is the per-layer result.
type LayerReport struct {
	Name string
	Mode Mode
	Breakdown
	// TimeS is the wall-clock time the layer's resources are busy.
	TimeS float64
	// PeakPowerW is the maximum instantaneous power draw.
	PeakPowerW float64
	// AvgPowerW is Total()/TimeS.
	AvgPowerW float64
}

// NetworkReport aggregates a full network pass.
type NetworkReport struct {
	Layers []LayerReport
	Breakdown
	TimeS      float64
	EnergyJ    float64
	AvgPowerW  float64
	PeakPowerW float64
}

// aggregate fills the summary fields from Layers.
func (r *NetworkReport) aggregate() {
	r.Breakdown = Breakdown{}
	r.TimeS, r.EnergyJ, r.PeakPowerW = 0, 0, 0
	for _, l := range r.Layers {
		r.add(l.Breakdown)
		r.TimeS += l.TimeS
		r.EnergyJ += l.Total()
		if l.PeakPowerW > r.PeakPowerW {
			r.PeakPowerW = l.PeakPowerW
		}
	}
	if r.TimeS > 0 {
		r.AvgPowerW = r.EnergyJ / r.TimeS
	}
}

// perAC splits a per-super-tile power across its 16 atomic crossbars.
func (m *Model) perAC(superTilePowerW float64) float64 {
	return superTilePowerW / float64(m.S.ACsPerSuperTile)
}

// rowFraction is the fraction of provisioned crossbar rows actually
// carrying inputs for a placement.
func rowFraction(p mapping.Placement) float64 {
	if p.StackHeight == 0 {
		return 0
	}
	return float64(p.Layer.Rf()) / float64(p.StackHeight*mapping.M)
}

// adcEnergyPerConversionJ derives the per-conversion energy from the ADC
// power budget: the ADC digitizes up to 128 values per 110 ns cycle
// (§IV-B5).
func (m *Model) adcEnergyPerConversionJ() float64 {
	return m.S.ADCPowerW * m.S.CycleNS * 1e-9 / 128
}

// ANNLayer evaluates one layer in ANN mode. Multi-bit inputs drive every
// mapped row each evaluation, so dynamic power is activity-independent.
func (m *Model) ANNLayer(p mapping.Placement) LayerReport {
	if p.ACsUsed == 0 { // pooling: folded into the NU datapath
		return LayerReport{Name: p.Layer.Name, Mode: ANN}
	}
	cycle := m.S.CycleNS * 1e-9
	time := float64(p.Evaluations) * cycle
	if p.NeedsADC() {
		// The multi-NC spill path adds the dashed Fig. 8 stages
		// (digitize, reduce, activate), keeping the NC busy longer.
		time *= m.ADCPathOverhead
	}
	rf := rowFraction(p)
	acs := float64(p.ACsUsed)
	ncs := float64(p.NCsUsed)
	// A layer occupying part of a super-tile shares the core's memories
	// with other layers mapped to the same NC, so buffer and eDRAM power
	// are charged by crossbar share.
	ncShare := acs / float64(m.S.ACsPerSuperTile)
	if ncShare > ncs {
		ncShare = ncs
	}

	var b Breakdown
	b.CrossbarJ = m.perAC(m.S.ANNCrossbarPowerW) * acs * rf * time
	b.DriverJ = m.perAC(m.S.ANNDACPowerW) * acs * rf * time
	b.NUJ = m.S.NUPowerW / float64(m.S.ACsPerSuperTile) * acs * time
	b.SRAMJ = (m.S.ANNIBPowerW + m.S.ANNOBPowerW) * ncShare * time
	b.EDRAMJ = m.S.EDRAMPowerW * ncShare * time

	adcPowerW := 0.0
	if p.NeedsADC() {
		conversions := float64(p.ADCConversionsPerEval) * float64(p.Evaluations)
		b.ADCJ = conversions*m.ADCConversionJ + conversions*m.RUAddJ
		adcPowerW = m.S.ADCPowerW * ncs
		// Partial sums cross the mesh to the reduction RUs.
		bits := float64(p.ADCConversionsPerEval*p.Evaluations) * float64(m.PartialSumBits)
		b.NoCJ += m.Mesh.TransferEnergyPJ(bits) * 1e-12
	}
	// Layer output activations travel to the consumer NC.
	outBits := float64(p.Layer.OutputNeurons()) * float64(m.ActivationBits)
	b.NoCJ += m.Mesh.TransferEnergyPJ(outBits) * 1e-12

	peak := (m.perAC(m.S.ANNCrossbarPowerW)+m.perAC(m.S.ANNDACPowerW))*acs*rf +
		m.S.NUPowerW/float64(m.S.ACsPerSuperTile)*acs +
		(m.S.ANNIBPowerW+m.S.ANNOBPowerW+m.S.EDRAMPowerW)*ncShare + adcPowerW

	if time > 0 {
		peak += (b.ADCJ + b.NoCJ) / time
	}
	rep := LayerReport{Name: p.Layer.Name, Mode: ANN, Breakdown: b, TimeS: time, PeakPowerW: peak}
	if time > 0 {
		rep.AvgPowerW = b.Total() / time
	}
	return rep
}

// policyParallel returns the iso-latency replication factor for a
// deployment whose nominal evidence window is T timesteps.
func (m *Model) policyParallel(nominalT int) float64 {
	parallel := m.SNNParallelism
	if parallel <= 0 {
		parallel = math.Round(float64(nominalT) / 50)
	}
	if parallel < 1 {
		parallel = 1
	}
	if parallel > 10 {
		parallel = 10
	}
	return parallel
}

// SNNLayer evaluates one layer in SNN mode over T timesteps. inRate and
// outRate are the average spikes per neuron per timestep at the layer's
// input and output; event-driven gating scales every dynamic component by
// them, while the ungated fraction of the memory static power accrues for
// the full integration window. Replication is provisioned for a nominal
// window of T (use snnLayer directly to decouple them).
func (m *Model) SNNLayer(p mapping.Placement, T int, inRate, outRate float64) LayerReport {
	return m.snnLayer(p, T, inRate, outRate, m.policyParallel(T))
}

// snnLayer is SNNLayer with an explicit replication factor.
func (m *Model) snnLayer(p mapping.Placement, T int, inRate, outRate float64, parallel float64) LayerReport {
	if p.ACsUsed == 0 {
		return LayerReport{Name: p.Layer.Name, Mode: SNN}
	}
	cycle := m.S.CycleNS * 1e-9
	evalsPerStep := math.Ceil(float64(p.Evaluations) / parallel)
	time := float64(T) * evalsPerStep * cycle
	// Busy time of the (replicated) resources for dynamic energy: the
	// work is conserved across replication.
	workTime := float64(T) * float64(p.Evaluations) * cycle
	if p.NeedsADC() {
		// The spill path's digitize/reduce/activate stages (Fig. 8)
		// stretch the layer's busy time in SNN mode as well.
		time *= m.ADCPathOverhead
		workTime *= m.ADCPathOverhead
	}
	rf := rowFraction(p)
	acs := float64(p.ACsUsed)
	ncs := float64(p.NCsUsed)

	inSpikes := inRate * float64(p.Layer.InputNeurons()) * float64(T)
	outSpikes := outRate * float64(p.Layer.OutputNeurons()) * float64(T)

	var b Breakdown
	gate := inRate * m.SpikeGating
	b.CrossbarJ = m.perAC(m.S.SNNCrossbarPowerW) * acs * rf * gate * workTime
	b.DriverJ = m.perAC(m.S.SNNDriverPowerW) * acs * rf * gate * workTime
	b.NUJ = m.S.NUPowerW / float64(m.S.ACsPerSuperTile) * acs * outRate * m.SpikeGating * workTime
	// Memory: ungated static power for the full window plus event-driven
	// per-spike access energy.
	ncShare := acs / float64(m.S.ACsPerSuperTile)
	if ncShare > ncs {
		ncShare = ncs
	}
	staticP := (m.S.SNNIBPowerW + m.S.SNNOBPowerW) * ncShare
	b.SRAMJ = staticP*m.SNNStaticFraction*time + (inSpikes+outSpikes)*m.SRAMAccessJ
	b.EDRAMJ = m.S.EDRAMPowerW*ncShare*m.SNNStaticFraction*time + (inSpikes+outSpikes)*m.EDRAMAccessJ

	adcPowerW := 0.0
	if p.NeedsADC() {
		// Partial sums are membrane-potential increments: with no input
		// spikes in an NC's rows the increment is zero and the
		// conversion + transfer are skipped, so the spill path is gated
		// by input activity too.
		conversions := float64(p.ADCConversionsPerEval) * float64(p.Evaluations) * float64(T) * inRate
		b.ADCJ = conversions*m.ADCConversionJ + conversions*m.RUAddJ
		adcPowerW = m.S.ADCPowerW * ncs
		bits := conversions * float64(m.PartialSumBits)
		b.NoCJ += m.Mesh.TransferEnergyPJ(bits) * 1e-12
	}
	// Spikes travel the mesh as address events, only when they occur.
	b.NoCJ += m.Mesh.TransferEnergyPJ(outSpikes*float64(m.AERBits)) * 1e-12

	// Peak is reported per replica set: Fig. 14 compares the
	// instantaneous draw of one layer's datapath in each mode.
	peak := (m.perAC(m.S.SNNCrossbarPowerW)+m.perAC(m.S.SNNDriverPowerW))*acs*rf*gate +
		m.S.NUPowerW/float64(m.S.ACsPerSuperTile)*acs*outRate*m.SpikeGating +
		(staticP+m.S.EDRAMPowerW*ncShare)*(m.SNNStaticFraction+inRate*0.5) + adcPowerW

	if time > 0 {
		peak += (b.ADCJ + b.NoCJ) / time
	}
	rep := LayerReport{Name: p.Layer.Name, Mode: SNN, Breakdown: b, TimeS: time, PeakPowerW: peak}
	if time > 0 {
		rep.AvgPowerW = b.Total() / time
	}
	return rep
}

// ANNNetwork evaluates a whole workload in ANN mode.
func (m *Model) ANNNetwork(np mapping.NetworkPlacement) NetworkReport {
	var r NetworkReport
	for _, p := range np.Placements {
		r.Layers = append(r.Layers, m.ANNLayer(p))
	}
	r.aggregate()
	return r
}

// SNNNetwork evaluates a workload in SNN mode. activity[l] is the input
// spike rate of weighted layer l; activity[l+1] (or the floor value for
// the last layer) is its output rate. Use DefaultActivity or a measured
// profile.
func (m *Model) SNNNetwork(np mapping.NetworkPlacement, T int, activity []float64) NetworkReport {
	// Replication is provisioned for the workload's nominal window, so
	// sweeping T models the same hardware integrating for less time.
	parallel := m.policyParallel(nominalWindow(np, T))
	var r NetworkReport
	for i, p := range np.Placements {
		in := rateAt(activity, i)
		out := rateAt(activity, i+1)
		r.Layers = append(r.Layers, m.snnLayer(p, T, in, out, parallel))
	}
	r.aggregate()
	return r
}

// nominalWindow prefers the workload's Table I integration window for
// hardware provisioning, falling back to the requested T.
func nominalWindow(np mapping.NetworkPlacement, T int) int {
	if np.Workload.Timesteps > 0 {
		return np.Workload.Timesteps
	}
	return T
}

// HybridNetwork evaluates a workload with the last nonSpiking weighted
// layers in ANN mode and the rest in SNN mode, including the accumulator
// units that bridge the two domains (Fig. 6(c)). The AU integrates the
// split-boundary spikes for the full window.
func (m *Model) HybridNetwork(np mapping.NetworkPlacement, T int, nonSpiking int, activity []float64) NetworkReport {
	var r NetworkReport
	n := len(np.Placements)
	split := n - nonSpiking
	if split < 0 {
		split = 0
	}
	parallel := m.policyParallel(nominalWindow(np, T))
	for i, p := range np.Placements {
		if i < split {
			r.Layers = append(r.Layers, m.snnLayer(p, T, rateAt(activity, i), rateAt(activity, i+1), parallel))
		} else {
			r.Layers = append(r.Layers, m.ANNLayer(p))
		}
	}
	// AU energy: one accumulation per boundary spike over the window.
	if split > 0 && split < n {
		boundary := np.Placements[split-1].Layer
		neurons := float64(boundary.OutputNeurons())
		auBlocks := math.Ceil(neurons / 1024)
		cycle := m.S.CycleNS * 1e-9
		au := LayerReport{Name: "accumulator", Mode: SNN}
		au.AUJ = m.S.AUPowerW() * auBlocks * float64(T) * cycle * rateAt(activity, split)
		au.TimeS = 0 // overlapped with the spiking front
		au.PeakPowerW = m.S.AUPowerW() * auBlocks
		r.Layers = append(r.Layers, au)
	}
	r.aggregate()
	return r
}

// InterpolateActivity resamples a measured per-stage activity profile
// (e.g. from a scaled model's convert.EvalResult.MeanActivity) onto a
// network with `layers` weighted layers, by relative depth. It lets
// spike statistics measured on the trainable scaled models drive the
// full-size energy analysis in place of the parametric DefaultActivity.
// The returned profile has layers+1 entries (input rate of each layer
// plus the final output rate); measured[0] is treated as the input rate.
func InterpolateActivity(measured []float64, layers int, inputRate float64) []float64 {
	out := make([]float64, layers+1)
	if len(measured) == 0 {
		return DefaultActivity(models.Workload{Layers: make([]models.LayerShape, layers)}, inputRate)
	}
	out[0] = inputRate
	for i := 1; i <= layers; i++ {
		// Position of layer i in the measured profile.
		pos := float64(i) / float64(layers) * float64(len(measured)-1)
		lo := int(pos)
		hi := lo + 1
		if hi >= len(measured) {
			hi = len(measured) - 1
		}
		frac := pos - float64(lo)
		out[i] = measured[lo]*(1-frac) + measured[hi]*frac
	}
	return out
}

// rateAt reads the activity profile with clamping.
func rateAt(activity []float64, i int) float64 {
	if len(activity) == 0 {
		return 0.1
	}
	if i < 0 {
		i = 0
	}
	if i >= len(activity) {
		i = len(activity) - 1
	}
	return activity[i]
}

// DefaultInputRate is the mean Poisson firing probability of the encoded
// input layer used by the analytic experiments (mean pixel intensity of
// the benchmark images).
const DefaultInputRate = 0.3

// DefaultActivity returns a parametric spike-activity profile for a
// workload: the input layer fires at the mean pixel rate and activity
// decays with depth, the Fig. 4 trend. Entry l is the input rate of
// weighted layer l; the last entry is the output rate of the final layer.
func DefaultActivity(w models.Workload, inputRate float64) []float64 {
	weighted := w.WeightedLayers()
	out := make([]float64, len(weighted)+1)
	rate := inputRate
	for i := range out {
		out[i] = rate
		rate *= 0.75
		if rate < 0.02 {
			rate = 0.02
		}
	}
	return out
}
