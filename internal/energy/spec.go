// Package energy implements NEBULA's power, area and energy model: the
// component specifications of Table III encoded as data, and per-layer
// energy/power accounting for the ANN, SNN and hybrid operating modes
// driven by the crossbar mapping and spike-activity statistics. It
// regenerates the quantities behind Figs. 12–17 of the paper.
package energy

// Spec holds the component powers (watts) and areas (mm²) of Table III.
type Spec struct {
	// Neural-core components.
	EDRAMPowerW         float64 // 32 KB eDRAM [25]
	EDRAMAreaMM2        float64
	ADCPowerW           float64 // 4-bit flash ADC [11]
	ADCAreaMM2          float64
	ANNSuperTilePowerW  float64
	ANNSuperTileAreaMM2 float64
	SNNSuperTilePowerW  float64
	SNNSuperTileAreaMM2 float64
	ANNIBPowerW         float64 // 16 KB input buffer
	ANNIBAreaMM2        float64
	SNNIBPowerW         float64 // 4 KB input buffer
	SNNIBAreaMM2        float64
	ANNOBPowerW         float64 // 2 KB output buffer
	ANNOBAreaMM2        float64
	SNNOBPowerW         float64 // 0.5 KB output buffer
	SNNOBAreaMM2        float64

	// Super-tile internals.
	ANNDACPowerW       float64 // 16×128 multi-level drivers, 0.75 V, 4 bit
	ANNDACAreaMM2      float64
	ANNCrossbarPowerW  float64 // 16 arrays of 128×128, 4 bits/cell
	ANNCrossbarAreaMM2 float64
	SNNDriverPowerW    float64 // 16×128 spike drivers, 0.25 V, 1 bit
	SNNDriverAreaMM2   float64
	SNNCrossbarPowerW  float64
	SNNCrossbarAreaMM2 float64
	NUPowerW           float64 // 23×128 neuron units per super-tile
	NUAreaMM2          float64

	// Accumulator unit (hybrid mode).
	AUAdderPowerW     float64 // 1024 8-bit adders
	AUAdderAreaMM2    float64
	AURegisterPowerW  float64 // 1024 16-bit registers (2 KB)
	AURegisterAreaMM2 float64

	// Chip organization.
	ANNCoreCols, ANNCoreRows int // 14×1 ANN cores
	SNNCoreCols, SNNCoreRows int // 14×13 SNN cores
	AUCols, AURows           int // 14×1 accumulator columns
	ClockHz                  float64
	CycleNS                  float64 // 110 ns pipeline stage (§IV-B5)
	ACsPerSuperTile          int
}

// TableIII returns the published component table.
func TableIII() Spec {
	return Spec{
		EDRAMPowerW:  9.55e-3,
		EDRAMAreaMM2: 0.02523,
		ADCPowerW:    0.43e-3,
		ADCAreaMM2:   0.005,

		ANNSuperTilePowerW:  98.87e-3,
		ANNSuperTileAreaMM2: 0.4247,
		SNNSuperTilePowerW:  8.46e-3,
		SNNSuperTileAreaMM2: 0.3822,

		ANNIBPowerW:  4.36e-3,
		ANNIBAreaMM2: 0.06462,
		SNNIBPowerW:  1.08e-3,
		SNNIBAreaMM2: 0.01615,
		ANNOBPowerW:  0.545e-3,
		ANNOBAreaMM2: 0.00808,
		SNNOBPowerW:  0.136e-3,
		SNNOBAreaMM2: 0.00202,

		ANNDACPowerW:       26.56e-3,
		ANNDACAreaMM2:      0.04848,
		ANNCrossbarPowerW:  72.16e-3,
		ANNCrossbarAreaMM2: 0.376,
		SNNDriverPowerW:    0.904e-3,
		SNNDriverAreaMM2:   0.00606,
		SNNCrossbarPowerW:  7.4e-3,
		SNNCrossbarAreaMM2: 0.376,
		NUPowerW:           0.151e-3,
		NUAreaMM2:          0.000189,

		AUAdderPowerW:     0.355e-3,
		AUAdderAreaMM2:    0.00588,
		AURegisterPowerW:  0.545e-3,
		AURegisterAreaMM2: 0.00808,

		ANNCoreCols: 14, ANNCoreRows: 1,
		SNNCoreCols: 14, SNNCoreRows: 13,
		AUCols: 14, AURows: 1,
		ClockHz:         1.2e9,
		CycleNS:         110,
		ACsPerSuperTile: 16,
	}
}

// ANNCorePowerW returns the total power of one ANN neural core
// (Table III "Core Total ANN": 113.8 mW).
func (s Spec) ANNCorePowerW() float64 {
	return s.EDRAMPowerW + s.ADCPowerW + s.ANNSuperTilePowerW + s.ANNIBPowerW + s.ANNOBPowerW
}

// SNNCorePowerW returns the total power of one SNN neural core
// (Table III "Core Total SNN": 19.66 mW).
func (s Spec) SNNCorePowerW() float64 {
	return s.EDRAMPowerW + s.ADCPowerW + s.SNNSuperTilePowerW + s.SNNIBPowerW + s.SNNOBPowerW
}

// AUPowerW returns the power of one accumulator unit block (0.9 mW).
func (s Spec) AUPowerW() float64 { return s.AUAdderPowerW + s.AURegisterPowerW }

// ANNCoreAreaMM2 returns the area of one ANN core (≈0.528 mm²).
func (s Spec) ANNCoreAreaMM2() float64 {
	return s.EDRAMAreaMM2 + s.ADCAreaMM2 + s.ANNSuperTileAreaMM2 + s.ANNIBAreaMM2 + s.ANNOBAreaMM2
}

// SNNCoreAreaMM2 returns the area of one SNN core (≈0.431 mm²).
func (s Spec) SNNCoreAreaMM2() float64 {
	return s.EDRAMAreaMM2 + s.ADCAreaMM2 + s.SNNSuperTileAreaMM2 + s.SNNIBAreaMM2 + s.SNNOBAreaMM2
}

// ChipPowerW returns the total chip power (Table III: ≈5.2 W).
func (s Spec) ChipPowerW() float64 {
	ann := float64(s.ANNCoreCols*s.ANNCoreRows) * s.ANNCorePowerW()
	snn := float64(s.SNNCoreCols*s.SNNCoreRows) * s.SNNCorePowerW()
	// Table III lists 12.6 mW for the 14×1 accumulator columns: 14 AU
	// blocks of 0.9 mW each.
	au := float64(s.AUCols*s.AURows) * s.AUPowerW()
	return ann + snn + au
}

// ChipAreaMM2 returns the total chip area (Table III: ≈86.7 mm²).
func (s Spec) ChipAreaMM2() float64 {
	annArea := float64(s.ANNCoreCols*s.ANNCoreRows) * s.ANNCoreAreaMM2()
	snnArea := float64(s.SNNCoreCols*s.SNNCoreRows) * s.SNNCoreAreaMM2()
	// Table III lists 0.0669 mm² per AU block and 0.937 mm² for the 14×1
	// accumulator columns.
	auArea := float64(s.AUCols*s.AURows) * 0.0669
	return annArea + snnArea + auArea
}

// SNNCoreCount returns the number of SNN neural cores on the chip.
func (s Spec) SNNCoreCount() int { return s.SNNCoreCols * s.SNNCoreRows }

// ANNCoreCount returns the number of ANN neural cores on the chip.
func (s Spec) ANNCoreCount() int { return s.ANNCoreCols * s.ANNCoreRows }
