package energy

import "repro/internal/mapping"

// AreaReport accounts the silicon area a mapped workload occupies, per
// the Table III area figures — the deployment-footprint counterpart of
// the energy reports.
type AreaReport struct {
	// CoresUsed is the number of neural cores the mapping provisions.
	CoresUsed int
	// CoreAreaMM2 is the silicon area of those cores.
	CoreAreaMM2 float64
	// SynapseAreaMM2 is the crossbar portion alone.
	SynapseAreaMM2 float64
	// ChipFraction is CoreAreaMM2 / total chip area.
	ChipFraction float64
	// FitsChip reports whether the mode's core partition can host the
	// workload (Table III: 14 ANN cores, 182 SNN cores).
	FitsChip bool
}

// AreaANN reports the footprint of a workload in ANN mode.
func (m *Model) AreaANN(np mapping.NetworkPlacement) AreaReport {
	return m.area(np, m.S.ANNCoreAreaMM2(), m.S.ANNCrossbarAreaMM2, m.S.ANNCoreCount())
}

// AreaSNN reports the footprint of a workload in SNN mode.
func (m *Model) AreaSNN(np mapping.NetworkPlacement) AreaReport {
	return m.area(np, m.S.SNNCoreAreaMM2(), m.S.SNNCrossbarAreaMM2, m.S.SNNCoreCount())
}

func (m *Model) area(np mapping.NetworkPlacement, coreArea, xbarArea float64, partition int) AreaReport {
	cores := np.TotalNCs()
	r := AreaReport{
		CoresUsed:      cores,
		CoreAreaMM2:    float64(cores) * coreArea,
		SynapseAreaMM2: float64(cores) * xbarArea,
		FitsChip:       cores <= partition,
	}
	if total := m.S.ChipAreaMM2(); total > 0 {
		r.ChipFraction = r.CoreAreaMM2 / total
	}
	return r
}
