package energy

import (
	"repro/internal/mapping"
)

// Throughput summarizes accelerator-level efficiency metrics for a
// workload in one operating mode — the figures of merit (inferences/s,
// GOPS, TOPS/W) customary for accelerator comparisons.
type Throughput struct {
	// InferencesPerSec assumes back-to-back pipelined inference.
	InferencesPerSec float64
	// GOPS counts two operations per MAC.
	GOPS float64
	// TOPSPerWatt is GOPS/1000 divided by average power.
	TOPSPerWatt float64
	// EnergyPerInferenceJ repeats the report total for convenience.
	EnergyPerInferenceJ float64
}

// ThroughputOf derives throughput metrics from a network report. For SNN
// mode pass the integration window T (operations repeat every timestep);
// use T = 1 for ANN mode.
func ThroughputOf(np mapping.NetworkPlacement, r NetworkReport, T int) Throughput {
	if T < 1 {
		T = 1
	}
	var t Throughput
	if r.TimeS > 0 {
		t.InferencesPerSec = 1 / r.TimeS
		ops := 2 * float64(np.Workload.TotalMACs()) * float64(T)
		t.GOPS = ops / r.TimeS / 1e9
	}
	if r.AvgPowerW > 0 {
		t.TOPSPerWatt = t.GOPS / 1e3 / r.AvgPowerW
	}
	t.EnergyPerInferenceJ = r.EnergyJ
	return t
}
