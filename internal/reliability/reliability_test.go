package reliability

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func testArray(t *testing.T, cfg *Config, seed uint64) *crossbar.Crossbar {
	t.Helper()
	ccfg := crossbar.Config{}
	if cfg.Protection >= ProtectSpareRemap {
		ccfg.SpareRows = cfg.Policy.SpareRows
		ccfg.SpareCols = cfg.Policy.SpareCols
	}
	cb := crossbar.New(64, 64, device.DefaultParams(), ccfg, rng.New(seed))
	w := tensor.New(64, 64)
	r := rng.New(seed + 1)
	for i := range w.Data() {
		w.Data()[i] = 2*r.Float64() - 1
	}
	if err := cb.Program(w, 1); err != nil {
		t.Fatal(err)
	}
	return cb
}

func TestParseProtection(t *testing.T) {
	for in, want := range map[string]Protection{
		"none": ProtectNone, "verify": ProtectWriteVerify, "write-verify": ProtectWriteVerify,
		"spare": ProtectSpareRemap, "sparing+remap": ProtectSpareRemap, "remap": ProtectSpareRemap,
	} {
		got, err := ParseProtection(in)
		if err != nil || got != want {
			t.Fatalf("ParseProtection(%q) = %v, %v", in, got, err)
		}
		if round, err := ParseProtection(got.String()); err != nil || round != got {
			t.Fatalf("String/Parse roundtrip broken for %v", got)
		}
	}
	if _, err := ParseProtection("everything"); err == nil {
		t.Fatal("unknown protection accepted")
	}
}

func TestInjectionDeterministicPerSeed(t *testing.T) {
	cfg := StudyConfig(0.05, ProtectSpareRemap)
	run := func() (*crossbar.FaultMap, Report) {
		cb := testArray(t, cfg, 77)
		eng := NewEngine(cfg, rng.New(99))
		eng.Inject(cb)
		return cb.Verify(), eng.Report()
	}
	m1, r1 := run()
	m2, r2 := run()
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("fault maps differ for identical seeds")
	}
	if r1 != r2 {
		t.Fatalf("injection reports differ: %+v vs %+v", r1, r2)
	}
	if r1.DevicesFaulted == 0 {
		t.Fatal("fixture injected nothing")
	}
}

func TestWriteVerifyRepairsWeakDevices(t *testing.T) {
	// All-weak profile: every fault is repairable, so the retry loop must
	// clear (nearly) everything the unprotected scan reports.
	cfg := &Config{
		Faults:     FaultProfile{DeviceRate: 0.05, PermanentFrac: 0},
		Protection: ProtectWriteVerify,
		Policy:     DefaultPolicy(),
	}
	cfg.Policy.MaxWriteRetries = 8
	cb := testArray(t, cfg, 5)
	eng := NewEngine(cfg, rng.New(6))
	eng.Inject(cb)
	found := cb.Verify().Count()
	if found == 0 {
		t.Fatal("fixture injected nothing")
	}
	left := eng.ProtectArray(cb)
	rpt := eng.Report()
	if rpt.Repaired == 0 {
		t.Fatal("write-verify repaired nothing")
	}
	if left > found/10 {
		t.Fatalf("weak faults should mostly repair: %d of %d left", left, found)
	}
	if rpt.RepairWrites == 0 || rpt.ScanReads == 0 {
		t.Fatalf("cost counters empty: %+v", rpt)
	}
}

func TestProtectNoneOnlyObserves(t *testing.T) {
	cfg := StudyConfig(0.05, ProtectNone)
	cb := testArray(t, cfg, 8)
	eng := NewEngine(cfg, rng.New(9))
	eng.Inject(cb)
	before := cb.Verify()
	left := eng.ProtectArray(cb)
	if left != before.Count() {
		t.Fatalf("unprotected array changed: %d vs %d", left, before.Count())
	}
	rpt := eng.Report()
	if rpt.Repaired != 0 || rpt.Compensated != 0 || rpt.RepairWrites != 0 {
		t.Fatalf("unprotected pipeline repaired: %+v", rpt)
	}
}

func TestSpareRemapClearsDeadLines(t *testing.T) {
	cfg := &Config{
		Faults:     FaultProfile{RowDeadRate: 0.02, ColDeadRate: 0.02},
		Protection: ProtectSpareRemap,
		Policy:     DefaultPolicy(),
	}
	cb := testArray(t, cfg, 14)
	eng := NewEngine(cfg, rng.New(16))
	eng.Inject(cb)
	rpt := eng.Report()
	if rpt.RowsDead == 0 && rpt.ColsDead == 0 {
		t.Fatal("fixture seed drew no dead lines; pick another seed")
	}
	if int(rpt.RowsDead) > cfg.Policy.SpareRows || int(rpt.ColsDead) > cfg.Policy.SpareCols {
		t.Fatalf("fixture drew more dead lines than spares: %+v", rpt)
	}
	left := eng.ProtectArray(cb)
	rpt = eng.Report()
	if rpt.RowsRemapped+rpt.ColsRemapped == 0 {
		t.Fatalf("no lines remapped: %+v", rpt)
	}
	if left != 0 {
		t.Fatalf("dead lines left unmitigated with spares available: %d", left)
	}
}

func TestReportMergeAndRender(t *testing.T) {
	a := Report{ArraysScanned: 1, Repaired: 2, MaxDriftAge: 5}
	b := Report{ArraysScanned: 2, Repaired: 3, MaxDriftAge: 3, Degraded: true}
	a.Merge(b)
	if a.ArraysScanned != 3 || a.Repaired != 5 || a.MaxDriftAge != 5 || !a.Degraded {
		t.Fatalf("merge wrong: %+v", a)
	}
	var buf bytes.Buffer
	a.Render(&buf)
	if !strings.Contains(buf.String(), "DEGRADED") {
		t.Fatalf("render missing degraded status:\n%s", buf.String())
	}
}

func TestDegradedErrorCarriesReport(t *testing.T) {
	err := error(&DegradedError{
		Reason: "test trip",
		Report: Report{Unmitigated: 7, PairsScanned: 100},
	})
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatal("errors.As failed")
	}
	if de.Report.Unmitigated != 7 {
		t.Fatalf("report lost: %+v", de.Report)
	}
	if !strings.Contains(err.Error(), "test trip") || !strings.Contains(err.Error(), "7/100") {
		t.Fatalf("error text: %s", err.Error())
	}
}

func TestStudyConfigLayout(t *testing.T) {
	c := StudyConfig(0.1, ProtectWriteVerify)
	if c.Faults.DeviceRate != 0.1 || c.Faults.RowDeadRate != 0.005 || c.Faults.ColDeadRate != 0.005 {
		t.Fatalf("rates: %+v", c.Faults)
	}
	if c.Protection != ProtectWriteVerify || c.Policy.MaxWriteRetries == 0 {
		t.Fatalf("config: %+v", c)
	}
	if !c.Faults.Any() {
		t.Fatal("study profile reports empty")
	}
	if (FaultProfile{DriftTauSteps: 10}).Any() {
		t.Fatal("drift alone is not an injected fault population")
	}
}

func TestReportHealthyAndZeroScan(t *testing.T) {
	// The zero-scan report is healthy, not NaN: a chip that scanned
	// nothing has no evidence of degradation.
	var empty Report
	if f := empty.UnmitigatedFrac(); f != 0 {
		t.Fatalf("zero-scan unmitigated fraction %v, want 0", f)
	}
	if !empty.Healthy(0) {
		t.Fatal("zero-scan report must be healthy")
	}
	clean := Report{PairsScanned: 1000}
	if !clean.Healthy(0) {
		t.Fatal("clean scan must pass the strictest threshold")
	}
	residual := Report{PairsScanned: 1000, Unmitigated: 15}
	if residual.Healthy(0.01) {
		t.Fatal("1.5% residual must fail a 1% threshold")
	}
	if !residual.Healthy(0.02) {
		t.Fatal("1.5% residual must pass a 2% threshold")
	}
	tripped := Report{PairsScanned: 1000, Degraded: true}
	if tripped.Healthy(1) {
		t.Fatal("a tripped degradation policy overrides any threshold")
	}
}
