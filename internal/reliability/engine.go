package reliability

import (
	"repro/internal/crossbar"
	"repro/internal/rng"
)

// Engine drives fault injection and the mitigation pipeline over the
// atomic crossbars of one core. It owns a private RNG stream (split from
// the chip's noise generator in a fixed order), so the injected fault
// pattern for a given seed is reproducible and — for a fixed array
// geometry — identical across protection levels; sparing adds spare
// lines to the physical array, whose extra devices draw from the same
// stream (the spares are injected too, equally fallible).
type Engine struct {
	cfg *Config
	r   *rng.Rand
	rpt Report
}

// NewEngine builds an engine over one core. A nil RNG disables injection
// and the stochastic part of repair (weak devices then never clear).
func NewEngine(cfg *Config, r *rng.Rand) *Engine {
	return &Engine{cfg: cfg, r: r}
}

// Report returns the engine's accumulated counters.
func (e *Engine) Report() Report { return e.rpt }

// NoteRetired records a tile retirement performed by the caller (the
// super-tile owns the spare-array bookkeeping).
func (e *Engine) NoteRetired() { e.rpt.TilesRetired++ }

// Inject draws the configured fault population into one physical
// crossbar: device faults (permanent stuck or weak, per PermanentFrac)
// over every device including spares, and dead row/column lines.
func (e *Engine) Inject(cb *crossbar.Crossbar) {
	f := e.cfg.Faults
	if e.r == nil || !f.Any() {
		return
	}
	states := cb.P.States()
	if f.DeviceRate > 0 {
		for row := 0; row < cb.PhysRows(); row++ {
			for col := 0; col < cb.PhysCols(); col++ {
				for side := 0; side < 2; side++ {
					if !e.r.Bernoulli(f.DeviceRate) {
						continue
					}
					plus := side == 0
					if e.r.Bernoulli(f.PermanentFrac) {
						cb.SetStuck(row, col, plus, f.Mode)
					} else {
						cb.SetWeak(row, col, plus, e.r.Intn(states))
					}
					e.rpt.DevicesFaulted++
				}
			}
		}
	}
	if f.RowDeadRate > 0 {
		for row := 0; row < cb.PhysRows(); row++ {
			if e.r.Bernoulli(f.RowDeadRate) && cb.KillRow(row) {
				e.rpt.RowsDead++
			}
		}
	}
	if f.ColDeadRate > 0 {
		for col := 0; col < cb.PhysCols(); col++ {
			if e.r.Bernoulli(f.ColDeadRate) && cb.KillCol(col) {
				e.rpt.ColsDead++
			}
		}
	}
}

// ProtectArray runs the BIST + mitigation pipeline on one programmed
// crossbar and returns its residual unmitigated pair count. The caller
// owns what happens to arrays that stay bad (retirement, degradation) —
// the engine only accounts Unmitigated once per final array, via the
// caller adding the returned count.
func (e *Engine) ProtectArray(cb *crossbar.Crossbar) int {
	m := cb.Verify()
	e.rpt.ArraysScanned++
	e.rpt.PairsScanned += int64(m.Rows * m.Cols)
	e.rpt.ScanReads += m.ScanReads
	e.rpt.FaultsFound += int64(m.Count())
	if e.cfg.Protection == ProtectNone {
		return m.Count()
	}

	// Dead lines first: a remapped line's pairs become repairable device
	// faults (the spare's own defects), caught by the rescan below.
	if e.cfg.Protection >= ProtectSpareRemap && (len(m.DeadRows) > 0 || len(m.DeadCols) > 0) {
		for _, row := range m.DeadRows {
			if cb.RemapRow(row) {
				e.rpt.RowsRemapped++
				e.rpt.RepairWrites += int64(2 * m.Cols)
			}
		}
		for _, col := range m.DeadCols {
			if cb.RemapCol(col) {
				e.rpt.ColsRemapped++
				e.rpt.RepairWrites += int64(2 * m.Rows)
			}
		}
		m = cb.Verify()
		e.rpt.ScanReads += m.ScanReads
	}

	// Write-verify retry loop per faulty pair: each attempt may pin a
	// weak device's wall (clearing the weakness), then re-drives the pair
	// toward its target and re-reads it.
	retries := e.cfg.Policy.MaxWriteRetries
	if retries < 1 {
		retries = 1
	}
	for _, pf := range m.Pairs {
		repaired := false
		for attempt := 0; attempt < retries; attempt++ {
			weakP, weakM := cb.WeakAt(pf.Row, pf.Col)
			if weakP && e.r != nil && e.r.Bernoulli(e.cfg.Policy.RetrySuccessProb) {
				cb.ClearWeak(pf.Row, pf.Col, true)
			}
			if weakM && e.r != nil && e.r.Bernoulli(e.cfg.Policy.RetrySuccessProb) {
				cb.ClearWeak(pf.Row, pf.Col, false)
			}
			cb.WritePair(pf.Row, pf.Col)
			e.rpt.RepairWrites += 2
			if cb.PairError(pf.Row, pf.Col) == 0 {
				repaired = true
				break
			}
			stuckP, stuckM := cb.StuckAt(pf.Row, pf.Col)
			wp, wm := cb.WeakAt(pf.Row, pf.Col)
			if (stuckP || stuckM) && !wp && !wm {
				// Only permanent faults left; rewriting cannot converge.
				break
			}
		}
		if repaired {
			e.rpt.Repaired++
			continue
		}
		if e.cfg.Protection >= ProtectSpareRemap {
			e.rpt.RepairWrites++
			if cb.CompensatePair(pf.Row, pf.Col) == 0 {
				e.rpt.Compensated++
			}
		}
	}

	final := cb.Verify()
	e.rpt.ScanReads += final.ScanReads
	return final.Count()
}
