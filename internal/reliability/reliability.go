// Package reliability is the chip-level fault detection and mitigation
// subsystem: it decides which faults to inject (the fault profile), how
// hard to fight them (the protection level and policy), and when to give
// up (the degradation policy).
//
// The paper's abstract claims NEBULA is "as efficient and fault-tolerant
// as the brain"; this package turns that from an assertion into a
// testable pipeline. After every super-tile is programmed, a BIST
// read-verify scan (Crossbar.Verify) diffs read-back differential levels
// against the programmed targets. Depending on the protection level the
// engine then runs a write-verify retry loop for weak devices (the
// dominant, repairable DW-MTJ failure mode — cf. Cui et al.,
// arXiv:2405.14851), differential-pair compensation and fault-aware
// zeroing for permanently stuck devices, spare-line remapping for dead
// rows/columns, and finally tile retirement for arrays that remain too
// faulty. Whatever survives all of that is counted as unmitigated; when
// the unmitigated fraction of a core exceeds the policy threshold, the
// chip refuses to compute garbage and returns a DegradedError carrying
// the health report.
//
// Mechanisms (what a write, remap or scan physically does) live in
// package crossbar; this package owns only policy, which keeps the
// dependency direction device → crossbar → reliability → arch.
package reliability

import (
	"fmt"
	"io"

	"repro/internal/crossbar"
)

// Protection selects how much of the mitigation pipeline runs.
type Protection int

const (
	// ProtectNone injects faults but never scans or repairs — the
	// unprotected baseline curve.
	ProtectNone Protection = iota
	// ProtectWriteVerify adds the BIST scan and the write-verify retry
	// loop for weak devices. Permanent faults and dead lines remain.
	ProtectWriteVerify
	// ProtectSpareRemap adds differential-pair compensation for stuck
	// devices, spare row/column remapping for dead lines, and tile
	// retirement on top of write-verify.
	ProtectSpareRemap
)

// String implements fmt.Stringer.
func (p Protection) String() string {
	switch p {
	case ProtectNone:
		return "none"
	case ProtectWriteVerify:
		return "write-verify"
	case ProtectSpareRemap:
		return "sparing+remap"
	}
	return fmt.Sprintf("protection(%d)", int(p))
}

// ParseProtection maps a CLI flag value to a protection level.
func ParseProtection(s string) (Protection, error) {
	switch s {
	case "none":
		return ProtectNone, nil
	case "verify", "write-verify":
		return ProtectWriteVerify, nil
	case "spare", "sparing+remap", "remap":
		return ProtectSpareRemap, nil
	}
	return ProtectNone, fmt.Errorf("reliability: unknown protection %q (want none|verify|spare)", s)
}

// FaultProfile describes the fault population injected into every
// physical crossbar — spare lines and spare tiles included, so
// redundancy is as fallible as what it replaces.
type FaultProfile struct {
	// DeviceRate is the per-device probability of an injected fault.
	DeviceRate float64
	// PermanentFrac is the fraction of device faults that are permanently
	// stuck (mode below); the rest are weak devices whose writes land at
	// an arbitrary wrong level until a verify retry pins them.
	PermanentFrac float64
	// Mode is the stuck polarity of permanent faults.
	Mode crossbar.FaultMode
	// RowDeadRate / ColDeadRate are per-line probabilities of a dead
	// driver or sense amplifier.
	RowDeadRate, ColDeadRate float64
	// ReadDisturbProb is forwarded to crossbar.Config: per-device
	// per-evaluation probability of a one-level transient upset.
	ReadDisturbProb float64
	// DriftTauSteps is forwarded to crossbar.Config: the retention time
	// constant in timesteps (0 disables drift).
	DriftTauSteps float64
}

// Any reports whether the profile injects anything at all.
func (f FaultProfile) Any() bool {
	return f.DeviceRate > 0 || f.RowDeadRate > 0 || f.ColDeadRate > 0
}

// Policy bounds the cost of mitigation and sets the give-up thresholds.
type Policy struct {
	// MaxWriteRetries caps write-verify attempts per faulty pair.
	MaxWriteRetries int
	// RetrySuccessProb is the per-attempt probability that a weak device's
	// wall finally pins (clearing the weakness).
	RetrySuccessProb float64
	// SpareRows / SpareCols provision redundant lines per atomic crossbar
	// (forwarded to crossbar.Config under ProtectSpareRemap).
	SpareRows, SpareCols int
	// RetireThreshold retires an atomic crossbar whose unmitigated pair
	// count stays above this after repair; its weight slice is re-placed
	// onto a spare array of the same super-tile.
	RetireThreshold int
	// MaxUnmitigatedFrac is the degradation threshold: if, after all
	// mitigation, more than this fraction of a core's pairs remain
	// faulty, the run returns a DegradedError instead of computing.
	MaxUnmitigatedFrac float64
	// ScrubEverySteps refreshes (rewrites) protected cores every N
	// timesteps to undo drift and read disturb; 0 disables scrubbing.
	ScrubEverySteps int
}

// DefaultPolicy returns the policy used by the paper-reproduction
// studies: three verify retries at 70% per-attempt success, 4+4 spare
// lines per AC, retirement above 192 bad pairs (~1.2% of an AC, about
// what two unmapped dead lines cost), and a 2% degradation threshold.
func DefaultPolicy() Policy {
	return Policy{
		MaxWriteRetries:    3,
		RetrySuccessProb:   0.7,
		SpareRows:          4,
		SpareCols:          4,
		RetireThreshold:    192,
		MaxUnmitigatedFrac: 0.02,
	}
}

// Config is the complete reliability configuration attached to a chip.
type Config struct {
	Faults     FaultProfile
	Protection Protection
	Policy     Policy
}

// StudyConfig derives the standard fault-study configuration from a
// single device fault rate: line faults at 1/20th the device rate and a
// 20% permanent fraction, under the default policy. This is the knob the
// three-curve FaultResilience experiment sweeps.
func StudyConfig(rate float64, prot Protection) *Config {
	return &Config{
		Faults: FaultProfile{
			DeviceRate:    rate,
			PermanentFrac: 0.2,
			Mode:          crossbar.StuckAP,
			RowDeadRate:   rate / 20,
			ColDeadRate:   rate / 20,
		},
		Protection: prot,
		Policy:     DefaultPolicy(),
	}
}

// Report is the chip health snapshot: cumulative counters over every
// core prepared and protected since the chip was created. All totals are
// deterministic for a fixed chip seed.
type Report struct {
	// ArraysScanned counts BIST-scanned atomic crossbars; PairsScanned
	// counts the differential pairs covered.
	ArraysScanned, PairsScanned int64
	// DevicesFaulted / RowsDead / ColsDead count injected faults.
	DevicesFaulted, RowsDead, ColsDead int64
	// FaultsFound counts faulty pairs surfaced by the first BIST scan
	// (dead lines counted as whole lines of pairs).
	FaultsFound int64
	// Repaired counts pairs fixed by the write-verify retry loop;
	// Compensated counts pairs absorbed by reprogramming the healthy
	// sibling device (including fault-aware zeroing).
	Repaired, Compensated int64
	// RowsRemapped / ColsRemapped count dead lines routed to spares;
	// TilesRetired counts atomic crossbars replaced by spare arrays.
	RowsRemapped, ColsRemapped, TilesRetired int64
	// Unmitigated counts pairs still faulty after all mitigation.
	Unmitigated int64
	// ScanReads / RepairWrites are the BIST and repair cost counters.
	ScanReads, RepairWrites int64
	// Refreshes counts scrub passes; MaxDriftAge is the oldest retention
	// age (in timesteps) any array reached since programming.
	Refreshes   int64
	MaxDriftAge int64
	// Degraded records whether any core tripped the degradation policy.
	Degraded bool
}

// Merge folds another report's counters into r.
func (r *Report) Merge(o Report) {
	r.ArraysScanned += o.ArraysScanned
	r.PairsScanned += o.PairsScanned
	r.DevicesFaulted += o.DevicesFaulted
	r.RowsDead += o.RowsDead
	r.ColsDead += o.ColsDead
	r.FaultsFound += o.FaultsFound
	r.Repaired += o.Repaired
	r.Compensated += o.Compensated
	r.RowsRemapped += o.RowsRemapped
	r.ColsRemapped += o.ColsRemapped
	r.TilesRetired += o.TilesRetired
	r.Unmitigated += o.Unmitigated
	r.ScanReads += o.ScanReads
	r.RepairWrites += o.RepairWrites
	r.Refreshes += o.Refreshes
	if o.MaxDriftAge > r.MaxDriftAge {
		r.MaxDriftAge = o.MaxDriftAge
	}
	r.Degraded = r.Degraded || o.Degraded
}

// Delta returns the counter-wise difference r − prev, attributing the
// work of one window (e.g. a single session compilation) out of a
// cumulative report. MaxDriftAge is copied from r (it is a level, not a
// counter); Degraded reports whether the chip became degraded inside
// the window.
func (r Report) Delta(prev Report) Report {
	return Report{
		ArraysScanned:  r.ArraysScanned - prev.ArraysScanned,
		PairsScanned:   r.PairsScanned - prev.PairsScanned,
		DevicesFaulted: r.DevicesFaulted - prev.DevicesFaulted,
		RowsDead:       r.RowsDead - prev.RowsDead,
		ColsDead:       r.ColsDead - prev.ColsDead,
		FaultsFound:    r.FaultsFound - prev.FaultsFound,
		Repaired:       r.Repaired - prev.Repaired,
		Compensated:    r.Compensated - prev.Compensated,
		RowsRemapped:   r.RowsRemapped - prev.RowsRemapped,
		ColsRemapped:   r.ColsRemapped - prev.ColsRemapped,
		TilesRetired:   r.TilesRetired - prev.TilesRetired,
		Unmitigated:    r.Unmitigated - prev.Unmitigated,
		ScanReads:      r.ScanReads - prev.ScanReads,
		RepairWrites:   r.RepairWrites - prev.RepairWrites,
		Refreshes:      r.Refreshes - prev.Refreshes,
		MaxDriftAge:    r.MaxDriftAge,
		Degraded:       r.Degraded && !prev.Degraded,
	}
}

// UnmitigatedFrac returns the fraction of scanned pairs left faulty. A
// report with nothing scanned is defined as fully mitigated (0, never
// NaN), so an empty scan reads as healthy rather than poisoning every
// downstream threshold comparison.
func (r Report) UnmitigatedFrac() float64 {
	if r.PairsScanned == 0 {
		return 0
	}
	return float64(r.Unmitigated) / float64(r.PairsScanned)
}

// Healthy reports whether the scanned hardware is fit to serve: nothing
// tripped the degradation policy and the residual fault fraction is
// within maxUnmitigatedFrac. Routers steering work across session
// replicas call this with their own (typically stricter) threshold — a
// fleet that can retire and recompile replicas has no reason to keep
// serving through residual faults a lone chip would have to tolerate.
func (r Report) Healthy(maxUnmitigatedFrac float64) bool {
	return !r.Degraded && r.UnmitigatedFrac() <= maxUnmitigatedFrac
}

// Render writes the health report as the nebula-sim -health block.
func (r Report) Render(w io.Writer) {
	fmt.Fprintf(w, "chip health: %d pairs scanned across %d arrays\n", r.PairsScanned, r.ArraysScanned)
	fmt.Fprintf(w, "  injected   %d faulty devices, %d dead rows, %d dead cols\n",
		r.DevicesFaulted, r.RowsDead, r.ColsDead)
	fmt.Fprintf(w, "  BIST       %d faulty pairs found (%d scan reads)\n", r.FaultsFound, r.ScanReads)
	fmt.Fprintf(w, "  repaired   %d write-verify, %d compensated (%d repair writes)\n",
		r.Repaired, r.Compensated, r.RepairWrites)
	fmt.Fprintf(w, "  remapped   %d rows, %d cols; %d tiles retired\n",
		r.RowsRemapped, r.ColsRemapped, r.TilesRetired)
	status := "OK"
	if r.Degraded {
		status = "DEGRADED"
	}
	fmt.Fprintf(w, "  residual   %d unmitigated pairs (%.3f%%) → %s\n",
		r.Unmitigated, r.UnmitigatedFrac()*100, status)
	if r.Refreshes > 0 || r.MaxDriftAge > 0 {
		fmt.Fprintf(w, "  retention  max drift age %d steps, %d scrub refreshes\n",
			r.MaxDriftAge, r.Refreshes)
	}
}

// DegradedError is returned by chip runs when mitigation is exhausted:
// the residual fault density exceeds the policy threshold, so the chip
// declines to return silently corrupted results. It carries the health
// report so callers can decide what to retire or re-place.
type DegradedError struct {
	// Reason names the tripped policy check.
	Reason string
	// Report is the chip health snapshot at the moment of refusal.
	Report Report
}

// Error implements the error interface.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("reliability: chip degraded: %s (%d/%d pairs unmitigated)",
		e.Reason, e.Report.Unmitigated, e.Report.PairsScanned)
}
