// Package quant implements the precision pipeline of §IV-C of the NEBULA
// paper: percentile-based activation clipping, range-based linear
// quantization of activations and weights to a fixed number of resolution
// levels (16 levels ≡ 4 bits in the paper), the conductance-ratio
// constraint imposed by the MTJ ON/OFF resistance ratio, and the
// Monte-Carlo weight-variation study of §IV-D.
package quant

import (
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Percentile returns the p-th percentile (0..100) of the values. It copies
// and sorts; intended for calibration passes, not hot loops.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// QuantizeUniform maps v into one of `levels` evenly spaced values on
// [0, max] (for non-negative ranges). Values outside are clipped. With
// levels <= 1 or max <= 0 it returns 0.
func QuantizeUniform(v, max float64, levels int) float64 {
	if levels <= 1 || max <= 0 {
		return 0
	}
	if v < 0 {
		v = 0
	}
	if v > max {
		v = max
	}
	step := max / float64(levels-1)
	return math.Round(v/step) * step
}

// QuantizeSymmetric maps v onto a zero-centered symmetric grid with
// ⌊(levels−1)/2⌋ positive and negative steps, the range-based linear
// quantizer of [94] (Distiller). Zero and ±max are exactly representable,
// which matters for sparse weights and the conductance-ratio constraint.
// Used for weights, which are signed.
func QuantizeSymmetric(v, max float64, levels int) float64 {
	half := (levels - 1) / 2
	if half < 1 || max <= 0 {
		return 0
	}
	step := max / float64(half)
	k := math.Round(v / step)
	if k > float64(half) {
		k = float64(half)
	}
	if k < -float64(half) {
		k = -float64(half)
	}
	return k * step
}

// LayerRanges holds the calibrated per-layer clipping ranges.
type LayerRanges struct {
	// ActMax[i] is the activation ceiling a_max for layer i of the
	// network (by layer index, 0 for layers without activations).
	ActMax []float64
	// WMax[i] is the symmetric weight clipping range for layer i.
	WMax []float64
}

// CalibrationConfig controls range calibration.
type CalibrationConfig struct {
	// ActPercentile is the activation percentile used as a_max (the paper
	// clips "at a certain percentile of the activation values").
	ActPercentile float64
	// WeightPercentile clips kernel values to limit the required
	// conductance ratio ("clipping the kernel values to a certain range
	// ... empirically decided for each layer").
	WeightPercentile float64
	// Samples is the number of calibration images passed through the model.
	Samples int
}

// DefaultCalibration matches the paper's approach: near-max percentiles.
func DefaultCalibration() CalibrationConfig {
	return CalibrationConfig{ActPercentile: 99.7, WeightPercentile: 99.9, Samples: 64}
}

// Calibrate runs part of the training set through the network and records
// per-layer activation ceilings and weight ranges.
func Calibrate(net *nn.Network, data *dataset.Dataset, cfg CalibrationConfig) *LayerRanges {
	n := cfg.Samples
	if n > data.Len() {
		n = data.Len()
	}
	layers := net.Layers()
	acts := make([][]float64, len(layers))
	x, _ := data.Batch(0, n)
	outs := net.ForwardCapture(x, false)
	for i, out := range outs {
		acts[i] = append(acts[i], out.Data()...)
	}
	r := &LayerRanges{
		ActMax: make([]float64, len(layers)),
		WMax:   make([]float64, len(layers)),
	}
	for i := range layers {
		r.ActMax[i] = Percentile(acts[i], cfg.ActPercentile)
		var wvals []float64
		for _, p := range layers[i].Params() {
			wvals = append(wvals, absAll(p.Value.Data())...)
		}
		if len(wvals) > 0 {
			r.WMax[i] = Percentile(wvals, cfg.WeightPercentile)
		}
	}
	return r
}

func absAll(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = math.Abs(v)
	}
	return out
}

// Config describes a full quantization of a network.
type Config struct {
	WeightLevels     int // resolution levels for weights (16 ≡ 4 bits)
	ActivationLevels int // resolution levels for activations
	// ConductanceRatio is the max/min device conductance ratio the
	// crossbar supports (the paper cites an experimentally observed 7×).
	// Weights whose magnitude falls below WMax/ConductanceRatio cannot be
	// distinguished from the OFF state and are flushed to zero. A ratio
	// of 0 disables the constraint.
	ConductanceRatio float64
	// PerChannel quantizes each output channel (crossbar column group)
	// against its own weight range instead of one per-layer range. The
	// per-column scale factors are absorbed by the peripheral circuitry,
	// as §IV-C notes ("some signal scaling factors are needed at every
	// layer – this is taken care of by the peripheral circuitry").
	PerChannel bool
}

// DefaultConfig is the paper's operating point: 16 levels (4 bits) for
// both weights and activations.
func DefaultConfig() Config {
	return Config{WeightLevels: 16, ActivationLevels: 16, ConductanceRatio: 0}
}

// Apply quantizes the network in place: weights are clipped to the
// calibrated per-layer range and quantized symmetrically; ReLU layers are
// replaced by clipped ReLUs whose ceiling is the calibrated a_max,
// quantized on the forward pass by the activation grid. It returns a
// function that quantizes activations of layer i (used by the converter).
//
// The network should be a trained model; Apply mutates parameter values.
func Apply(net *nn.Network, ranges *LayerRanges, cfg Config) {
	layers := net.Layers()
	for i, l := range layers {
		wmax := ranges.WMax[i]
		for _, p := range l.Params() {
			if p.Value.NDim() < 2 {
				// Biases and batch-norm affine terms stay full precision:
				// they are realized by peripheral circuitry, not synapses.
				continue
			}
			d := p.Value.Data()
			if cfg.PerChannel {
				// One range per output channel (the leading dimension of
				// both conv and linear weights).
				outC := p.Value.Dim(0)
				perOut := p.Value.Size() / outC
				for oc := 0; oc < outC; oc++ {
					row := d[oc*perOut : (oc+1)*perOut]
					cmax := 0.0
					for _, v := range row {
						if a := math.Abs(v); a > cmax {
							cmax = a
						}
					}
					if cmax == 0 {
						continue
					}
					for j, v := range row {
						q := QuantizeSymmetric(v, cmax, cfg.WeightLevels)
						if cfg.ConductanceRatio > 0 && q != 0 && math.Abs(q) < cmax/cfg.ConductanceRatio {
							q = 0
						}
						row[j] = q
					}
				}
				continue
			}
			for j, v := range d {
				q := QuantizeSymmetric(v, wmax, cfg.WeightLevels)
				if cfg.ConductanceRatio > 0 && q != 0 {
					floor := wmax / cfg.ConductanceRatio
					if math.Abs(q) < floor {
						q = 0
					}
				}
				d[j] = q
			}
		}
		// Saturate ReLUs at the calibrated ceiling so the analog neuron's
		// limited output range is modeled during inference.
		if relu, ok := l.(*nn.ReLU); ok {
			if ranges.ActMax[i] > 0 {
				relu.Clip = ranges.ActMax[i]
			}
		}
	}
}

// QuantizedForward runs inference with activations snapped to the
// quantization grid after every layer, the full fixed-point pipeline of
// §IV-C. Weights must already be quantized via Apply.
func QuantizedForward(net *nn.Network, x *tensor.Tensor, ranges *LayerRanges, cfg Config) *tensor.Tensor {
	layers := net.Layers()
	for i, l := range layers {
		x = l.Forward(x, false)
		if _, ok := l.(*nn.ReLU); ok {
			amax := ranges.ActMax[i]
			d := x.Data()
			for j, v := range d {
				d[j] = QuantizeUniform(v, amax, cfg.ActivationLevels)
			}
		}
	}
	return x
}

// EvaluateQuantized returns the accuracy of the fully quantized pipeline.
func EvaluateQuantized(net *nn.Network, data *dataset.Dataset, ranges *LayerRanges, cfg Config, batch int) float64 {
	if data.Len() == 0 {
		return 0
	}
	correct := 0
	for start := 0; start < data.Len(); start += batch {
		n := batch
		if start+n > data.Len() {
			n = data.Len() - start
		}
		x, y := data.Batch(start, n)
		logits := QuantizedForward(net, x, ranges, cfg)
		for i := 0; i < n; i++ {
			if logits.Row(i).ArgMax() == y[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(data.Len())
}

// PerturbWeights applies multiplicative gaussian noise of relative
// standard deviation sigma to every weight matrix, modelling device
// variation (§IV-D runs this with sigma = 0.10). It returns a restore
// function that puts the original weights back.
func PerturbWeights(net *nn.Network, sigma float64, r *rng.Rand) (restore func()) {
	var saved []*tensor.Tensor
	var params []*nn.Param
	for _, p := range net.Params() {
		if p.Value.NDim() < 2 {
			continue
		}
		saved = append(saved, p.Value.Clone())
		params = append(params, p)
		d := p.Value.Data()
		for i, v := range d {
			d[i] = v * (1 + sigma*r.NormFloat64())
		}
	}
	return func() {
		for i, p := range params {
			copy(p.Value.Data(), saved[i].Data())
		}
	}
}

// MonteCarloAccuracy runs trials of noisy inference and returns the mean
// accuracy across trials, reproducing the §IV-D resilience experiment.
func MonteCarloAccuracy(net *nn.Network, data *dataset.Dataset, ranges *LayerRanges, cfg Config, sigma float64, trials int, seed uint64) float64 {
	r := rng.New(seed)
	total := 0.0
	for t := 0; t < trials; t++ {
		restore := PerturbWeights(net, sigma, r.Split())
		total += EvaluateQuantized(net, data, ranges, cfg, 32)
		restore()
	}
	return total / float64(trials)
}
