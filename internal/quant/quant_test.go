package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/train"
)

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if Percentile(vals, 0) != 1 {
		t.Fatal("p0")
	}
	if Percentile(vals, 100) != 5 {
		t.Fatal("p100")
	}
	if Percentile(vals, 50) != 3 {
		t.Fatal("p50")
	}
	if Percentile(vals, 25) != 2 {
		t.Fatal("p25")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty should give 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Percentile(vals, 50)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatal("Percentile mutated input")
	}
}

func TestQuantizeUniformGrid(t *testing.T) {
	// 16 levels on [0, 1.5]: step = 0.1
	step := 1.5 / 15
	for _, v := range []float64{0, 0.04, 0.06, 0.75, 1.5, 2.0, -1} {
		q := QuantizeUniform(v, 1.5, 16)
		if q < 0 || q > 1.5 {
			t.Fatalf("q(%v) = %v out of range", v, q)
		}
		ratio := q / step
		if math.Abs(ratio-math.Round(ratio)) > 1e-9 {
			t.Fatalf("q(%v) = %v not on grid", v, q)
		}
	}
	if QuantizeUniform(2.0, 1.5, 16) != 1.5 {
		t.Fatal("clipping above max failed")
	}
	if QuantizeUniform(-3, 1.5, 16) != 0 {
		t.Fatal("negative must clip to 0")
	}
}

func TestQuantizeSymmetricGrid(t *testing.T) {
	if QuantizeSymmetric(10, 1, 16) != 1 {
		t.Fatal("clip high")
	}
	if QuantizeSymmetric(-10, 1, 16) != -1 {
		t.Fatal("clip low")
	}
	q := QuantizeSymmetric(0.5, 1, 3) // grid: -1, 0, 1
	if q != 1 && q != 0 {
		t.Fatalf("3-level quantization gave %v", q)
	}
	if QuantizeSymmetric(0.3, 0, 16) != 0 {
		t.Fatal("max 0 must give 0")
	}
	if QuantizeSymmetric(0, 1, 16) != 0 {
		t.Fatal("zero must be exactly representable")
	}
	if QuantizeSymmetric(1, 1, 16) != 1 {
		t.Fatal("max must be exactly representable")
	}
}

func TestQuantizeIdempotentProperty(t *testing.T) {
	if err := quick.Check(func(raw int16, lraw uint8) bool {
		v := float64(raw) / 1000
		levels := int(lraw%30) + 2
		q := QuantizeSymmetric(v, 1, levels)
		return QuantizeSymmetric(q, 1, levels) == q
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeErrorBound(t *testing.T) {
	// Quantization error within range must be at most half a step.
	max := 2.0
	levels := 16
	step := max / float64((levels-1)/2)
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		v := (2*r.Float64() - 1) * max
		q := QuantizeSymmetric(v, max, levels)
		if math.Abs(q-v) > step/2+1e-12 {
			t.Fatalf("error %v exceeds half-step for v=%v", math.Abs(q-v), v)
		}
	}
}

// trainedMLP returns a small trained model plus datasets for quantization
// tests (trained once per test that needs it; fast at this scale).
func trainedMLP(t *testing.T) (*nn.Network, *dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	r := rng.New(77)
	tr, te := dataset.TrainTest(dataset.MNISTLike, 300, 150, 21)
	net := models.NewMLP3(1, 16, 10, r)
	cfg := train.DefaultConfig()
	cfg.Epochs = 5
	train.Run(net, tr, te, cfg)
	return net, tr, te
}

func TestCalibrateProducesPositiveRanges(t *testing.T) {
	net, tr, _ := trainedMLP(t)
	ranges := Calibrate(net, tr, DefaultCalibration())
	if len(ranges.ActMax) != len(net.Layers()) {
		t.Fatal("range count mismatch")
	}
	// Each ReLU layer should have a positive activation ceiling.
	for i, l := range net.Layers() {
		if _, ok := l.(*nn.ReLU); ok && ranges.ActMax[i] <= 0 {
			t.Fatalf("layer %d ReLU ceiling = %v", i, ranges.ActMax[i])
		}
	}
	// Linear layers must have positive weight ranges.
	for i, l := range net.Layers() {
		if _, ok := l.(*nn.Linear); ok && ranges.WMax[i] <= 0 {
			t.Fatalf("layer %d weight range = %v", i, ranges.WMax[i])
		}
	}
}

func TestApplyQuantizesWeightsToGrid(t *testing.T) {
	net, tr, _ := trainedMLP(t)
	ranges := Calibrate(net, tr, DefaultCalibration())
	cfg := DefaultConfig()
	Apply(net, ranges, cfg)
	for i, l := range net.Layers() {
		wmax := ranges.WMax[i]
		for _, p := range l.Params() {
			if p.Value.NDim() < 2 {
				continue
			}
			step := wmax / float64((cfg.WeightLevels-1)/2)
			for _, v := range p.Value.Data() {
				ratio := v / step
				if math.Abs(ratio-math.Round(ratio)) > 1e-6 {
					t.Fatalf("weight %v of %s not on %d-level grid", v, p.Name, cfg.WeightLevels)
				}
			}
		}
	}
}

func TestQuantizedAccuracyCloseToFloat(t *testing.T) {
	net, tr, te := trainedMLP(t)
	floatAcc := train.Evaluate(net, te, 32)
	ranges := Calibrate(net, tr, DefaultCalibration())
	cfg := DefaultConfig()
	Apply(net, ranges, cfg)
	qAcc := EvaluateQuantized(net, te, ranges, cfg, 32)
	if qAcc < floatAcc-0.15 {
		t.Fatalf("16-level quantization lost too much: float %.3f vs quant %.3f", floatAcc, qAcc)
	}
}

func TestFewerLevelsHurtMore(t *testing.T) {
	// Accuracy at 2 weight levels must not beat accuracy at 16 levels by
	// a wide margin — and typically is far worse (the Fig. 9 trend).
	net, tr, te := trainedMLP(t)
	ranges := Calibrate(net, tr, DefaultCalibration())

	run := func(levels int) float64 {
		clone := models.NewMLP3(1, 16, 10, rng.New(1))
		copyParams(clone, net)
		cfg := Config{WeightLevels: levels, ActivationLevels: 16}
		Apply(clone, ranges, cfg)
		return EvaluateQuantized(clone, te, ranges, cfg, 32)
	}
	acc16 := run(16)
	acc2 := run(2)
	if acc2 > acc16+0.05 {
		t.Fatalf("2-level (%v) should not beat 16-level (%v)", acc2, acc16)
	}
}

func copyParams(dst, src *nn.Network) {
	dp, sp := dst.Params(), src.Params()
	for i := range dp {
		copy(dp[i].Value.Data(), sp[i].Value.Data())
	}
}

func TestConductanceRatioFlushesSmallWeights(t *testing.T) {
	net, tr, _ := trainedMLP(t)
	ranges := Calibrate(net, tr, DefaultCalibration())
	cfg := DefaultConfig()
	cfg.ConductanceRatio = 4 // aggressive: anything below wmax/4 → 0
	Apply(net, ranges, cfg)
	for i, l := range net.Layers() {
		wmax := ranges.WMax[i]
		for _, p := range l.Params() {
			if p.Value.NDim() < 2 {
				continue
			}
			for _, v := range p.Value.Data() {
				if v != 0 && math.Abs(v) < wmax/4-1e-9 {
					t.Fatalf("weight %v below conductance floor survived", v)
				}
			}
		}
	}
}

func TestPerturbWeightsRestores(t *testing.T) {
	net, _, _ := trainedMLP(t)
	var before []float64
	for _, p := range net.Params() {
		before = append(before, p.Value.Data()...)
	}
	restore := PerturbWeights(net, 0.1, rng.New(5))
	changed := false
	idx := 0
	for _, p := range net.Params() {
		for _, v := range p.Value.Data() {
			if v != before[idx] {
				changed = true
			}
			idx++
		}
	}
	if !changed {
		t.Fatal("perturbation changed nothing")
	}
	restore()
	idx = 0
	for _, p := range net.Params() {
		for _, v := range p.Value.Data() {
			if v != before[idx] {
				t.Fatal("restore failed")
			}
			idx++
		}
	}
}

func TestMonteCarloNoiseResilience(t *testing.T) {
	// The §IV-D result: 10% weight noise costs only a small accuracy drop
	// on a quantized model.
	net, tr, te := trainedMLP(t)
	ranges := Calibrate(net, tr, DefaultCalibration())
	cfg := DefaultConfig()
	Apply(net, ranges, cfg)
	clean := EvaluateQuantized(net, te, ranges, cfg, 32)
	noisy := MonteCarloAccuracy(net, te, ranges, cfg, 0.10, 3, 9)
	if clean-noisy > 0.15 {
		t.Fatalf("10%% noise dropped accuracy too much: %.3f → %.3f", clean, noisy)
	}
}

func TestPerChannelQuantizationAtLeastAsGood(t *testing.T) {
	// Per-channel ranges adapt to each kernel's magnitude and should not
	// lose accuracy relative to one per-layer range at coarse precision.
	net, tr, te := trainedMLP(t)
	ranges := Calibrate(net, tr, DefaultCalibration())
	run := func(perChannel bool) float64 {
		clone := models.NewMLP3(1, 16, 10, rng.New(1))
		copyParams(clone, net)
		cfg := Config{WeightLevels: 6, ActivationLevels: 16, PerChannel: perChannel}
		Apply(clone, ranges, cfg)
		return EvaluateQuantized(clone, te, ranges, cfg, 32)
	}
	perTensor := run(false)
	perChannel := run(true)
	if perChannel < perTensor-0.05 {
		t.Fatalf("per-channel (%.3f) worse than per-tensor (%.3f)", perChannel, perTensor)
	}
}

func TestPerChannelGridPerRow(t *testing.T) {
	net, tr, _ := trainedMLP(t)
	ranges := Calibrate(net, tr, DefaultCalibration())
	cfg := Config{WeightLevels: 16, ActivationLevels: 16, PerChannel: true}
	Apply(net, ranges, cfg)
	for _, l := range net.Layers() {
		for _, p := range l.Params() {
			if p.Value.NDim() < 2 {
				continue
			}
			outC := p.Value.Dim(0)
			perOut := p.Value.Size() / outC
			d := p.Value.Data()
			for oc := 0; oc < outC; oc++ {
				row := d[oc*perOut : (oc+1)*perOut]
				cmax := 0.0
				for _, v := range row {
					if a := math.Abs(v); a > cmax {
						cmax = a
					}
				}
				if cmax == 0 {
					continue
				}
				step := cmax / float64((cfg.WeightLevels-1)/2)
				for _, v := range row {
					ratio := v / step
					if math.Abs(ratio-math.Round(ratio)) > 1e-6 {
						t.Fatalf("weight %v not on channel grid (step %v)", v, step)
					}
				}
			}
		}
	}
}
