package isaac

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/models"
)

func TestColumnsPerWeight(t *testing.T) {
	m := NewModel()
	if m.columnsPerWeight() != 2 {
		t.Fatalf("4-bit weights on 2-bit cells need 2 columns, got %d", m.columnsPerWeight())
	}
}

func TestLayerEnergyComponentsPositive(t *testing.T) {
	m := NewModel()
	l := models.LayerShape{Name: "c", Kind: models.Conv, InC: 64, OutC: 64, K: 3, Stride: 1, Pad: 1, InH: 16, InW: 16}
	e := m.Layer(l)
	if e.CrossbarJ <= 0 || e.DACJ <= 0 || e.ADCJ <= 0 || e.DigitalJ <= 0 || e.BufferJ <= 0 {
		t.Fatalf("component missing: %+v", e)
	}
}

func TestPoolLayerFree(t *testing.T) {
	m := NewModel()
	pool := models.LayerShape{Kind: models.AvgPool, InC: 64, OutC: 64, K: 2, Stride: 2, InH: 32, InW: 32}
	if m.Layer(pool).Total() != 0 {
		t.Fatal("pooling must not consume crossbar energy")
	}
}

func TestADCDominates(t *testing.T) {
	// §III: "their ADC operation in every cycle is a major power
	// bottleneck" — the ADC must be the single largest component for a
	// typical dense layer.
	m := NewModel()
	l := models.LayerShape{Name: "c", Kind: models.Conv, InC: 128, OutC: 128, K: 3, Stride: 1, Pad: 1, InH: 16, InW: 16}
	e := m.Layer(l)
	for _, c := range []float64{e.CrossbarJ, e.DACJ, e.DigitalJ, e.BufferJ} {
		if e.ADCJ <= c {
			t.Fatalf("ADC (%v) not dominant in %+v", e.ADCJ, e)
		}
	}
}

func TestBitSerialCostsFourCycles(t *testing.T) {
	m4 := NewModel()
	m16 := NewModel()
	m16.P.InputBits = 16
	l := models.LayerShape{Name: "c", Kind: models.Conv, InC: 64, OutC: 64, K: 3, Stride: 1, Pad: 1, InH: 8, InW: 8}
	e4 := m4.Layer(l).Total()
	e16 := m16.Layer(l).Total()
	if e16/e4 < 3.9 || e16/e4 > 4.1 {
		t.Fatalf("16-bit/4-bit energy ratio %v, want ≈4 (bit-serial)", e16/e4)
	}
}

func TestNetworkRatiosMatchPaperBands(t *testing.T) {
	// Figs. 12–13(a): ISAAC consumes ≈2.8× (AlexNet) to ≈7.9× (MobileNet)
	// more energy than NEBULA-ANN, with the ordering preserved.
	im := NewModel()
	em := energy.NewModel()
	ratio := func(w models.Workload) float64 {
		np := mapping.MapWorkload(w)
		return im.NetworkTotal(w) / em.ANNNetwork(np).EnergyJ
	}
	alex := ratio(models.FullAlexNet())
	mobile := ratio(models.FullMobileNetV1(10, 500, 91, 81.08))
	vgg := ratio(models.FullVGG13(10, 300, 91.6, 90.05))
	if alex < 1.5 || alex > 6 {
		t.Fatalf("AlexNet ratio %v outside ≈2.8× band", alex)
	}
	if mobile < 5 || mobile > 14 {
		t.Fatalf("MobileNet ratio %v outside ≈7.9× band", mobile)
	}
	if !(alex < vgg && vgg < mobile) {
		t.Fatalf("ordering broken: alex=%v vgg=%v mobile=%v", alex, vgg, mobile)
	}
}

func TestDepthwiseSavesMoreThanPointwise(t *testing.T) {
	// Fig. 12: "energy savings in the even-numbered layers ...
	// depthwise-separable convolutions ... are generally higher as
	// compared to the savings in the odd-numbered layers".
	im := NewModel()
	em := energy.NewModel()
	w := models.FullMobileNetV1(10, 500, 91, 81.08)
	np := mapping.MapWorkload(w)
	ann := em.ANNNetwork(np)
	layers := im.Network(w)
	var dwSum, pwSum float64
	var dwN, pwN int
	for i, l := range w.WeightedLayers() {
		if ann.Layers[i].Total() == 0 {
			continue
		}
		r := layers[i].Total() / ann.Layers[i].Total()
		switch {
		case l.Kind == models.DWConv:
			dwSum += r
			dwN++
		case l.Kind == models.Conv && l.K == 1:
			pwSum += r
			pwN++
		}
	}
	if dwSum/float64(dwN) <= pwSum/float64(pwN) {
		t.Fatalf("depthwise savings (%v) not above pointwise (%v)",
			dwSum/float64(dwN), pwSum/float64(pwN))
	}
}

func TestArraysUsedAccountsColumnSplit(t *testing.T) {
	m := NewModel()
	// 128 kernels × 2 columns = 256 columns → 2 column splits.
	l := models.LayerShape{Kind: models.Conv, InC: 14, OutC: 128, K: 3, Stride: 1, Pad: 1, InH: 8, InW: 8}
	if got := m.ArraysUsed(l); got != 2 {
		t.Fatalf("arrays used %d, want 2", got)
	}
}

func TestNetworkTotalsSumLayers(t *testing.T) {
	m := NewModel()
	w := models.FullLeNet5()
	sum := 0.0
	for _, e := range m.Network(w) {
		sum += e.Total()
	}
	if got := m.NetworkTotal(w); got != sum {
		t.Fatalf("NetworkTotal %v != sum %v", got, sum)
	}
}
