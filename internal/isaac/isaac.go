// Package isaac models the energy of ISAAC (Shafiee et al., ISCA 2016),
// the memristive bit-serial CNN accelerator NEBULA's ANN mode is compared
// against in Figs. 12–13(a).
//
// Following §VI of the NEBULA paper, the model is adapted from 16-bit to
// 4-bit computation for a fair comparison: bit-serial input feeding drops
// from 16 cycles to 4, and ADC power is scaled accordingly. The defining
// costs retained from the ISAAC design are:
//
//   - 1-bit DAC input feeding: every evaluation takes InputBits cycles;
//   - 2-bit memristor cells: a 4-bit weight spans two crossbar columns;
//   - an ADC conversion for every crossbar column every cycle — the
//     "major power bottleneck" §III identifies — followed by shift-and-add
//     merging of bit-slices and column pairs;
//   - no current-domain aggregation: any kernel taller than one array is
//     merged digitally.
package isaac

import "repro/internal/models"

// Params holds the adapted ISAAC component model.
type Params struct {
	// ArraySize is the memristive crossbar dimension (128).
	ArraySize int
	// CellBits is the per-device weight resolution (2).
	CellBits int
	// WeightBits and InputBits are the adapted precisions (4 each).
	WeightBits, InputBits int
	// CycleNS is the IMA cycle time (100 ns in ISAAC).
	CycleNS float64
	// CrossbarPowerW is the read power of one active 128×128 array.
	CrossbarPowerW float64
	// DACPowerW is the 1-bit driver array power per crossbar.
	DACPowerW float64
	// ADCEnergyPerConvJ is the energy of one column conversion, derived
	// from ISAAC's 1.28 GS/s ADC scaled to 4 bits.
	ADCEnergyPerConvJ float64
	// ShiftAddEnergyJ is the digital merge energy per conversion.
	ShiftAddEnergyJ float64
	// BufferPowerW is the eDRAM/register buffer power per active array's
	// share.
	BufferPowerW float64
}

// DefaultParams returns the 4-bit-adapted ISAAC operating point used in
// the comparison.
func DefaultParams() Params {
	return Params{
		ArraySize:  128,
		CellBits:   2,
		WeightBits: 4,
		InputBits:  4,
		CycleNS:    100,
		// ISAAC reports ~0.3 mW crossbar read and ~0.5 mW of DAC array
		// power per crossbar (4 mW DAC / 8 arrays per IMA).
		CrossbarPowerW: 0.3e-3,
		DACPowerW:      0.5e-3,
		// 8-bit 1.28 GS/s ADC at 16 mW → 12.5 pJ/conv; scaling the flash
		// ADC to 4 bits lands at ≈3 pJ per conversion.
		ADCEnergyPerConvJ: 3e-12,
		ShiftAddEnergyJ:   0.2e-12,
		BufferPowerW:      1e-3,
	}
}

// LayerEnergy is the per-layer energy split of the ISAAC model.
type LayerEnergy struct {
	Name      string
	CrossbarJ float64
	DACJ      float64
	ADCJ      float64
	DigitalJ  float64
	BufferJ   float64
}

// Total sums the components.
func (l LayerEnergy) Total() float64 {
	return l.CrossbarJ + l.DACJ + l.ADCJ + l.DigitalJ + l.BufferJ
}

// Model evaluates ISAAC energy for NEBULA's workloads.
type Model struct {
	P Params
}

// NewModel returns a model at the default operating point.
func NewModel() *Model { return &Model{P: DefaultParams()} }

// columnsPerWeight is how many crossbar columns one weight occupies.
func (m *Model) columnsPerWeight() int {
	c := (m.P.WeightBits + m.P.CellBits - 1) / m.P.CellBits
	if c < 1 {
		c = 1
	}
	return c
}

// Layer evaluates one weighted layer.
func (m *Model) Layer(l models.LayerShape) LayerEnergy {
	if l.Kind == models.AvgPool {
		return LayerEnergy{Name: l.Name}
	}
	n := m.P.ArraySize
	rf := l.Rf()
	cols := l.Kernels() * m.columnsPerWeight()
	rowSplits := (rf + n - 1) / n
	colSplits := (cols + n - 1) / n
	arrays := rowSplits * colSplits

	evals := l.OutH() * l.OutW()
	cycles := float64(evals) * float64(m.P.InputBits) // bit-serial feeding
	cycleS := m.P.CycleNS * 1e-9

	// Row utilization: partial arrays drive only their mapped rows.
	rowFrac := float64(rf) / float64(rowSplits*n)

	var e LayerEnergy
	e.Name = l.Name
	e.CrossbarJ = m.P.CrossbarPowerW * float64(arrays) * rowFrac * cycles * cycleS
	e.DACJ = m.P.DACPowerW * float64(arrays) * rowFrac * cycles * cycleS
	// Every column of every active array is digitized every cycle.
	conversions := cycles * float64(arrays) * float64(n)
	e.ADCJ = conversions * m.P.ADCEnergyPerConvJ
	e.DigitalJ = conversions * m.P.ShiftAddEnergyJ
	e.BufferJ = m.P.BufferPowerW * float64(arrays) * cycles * cycleS
	return e
}

// Network evaluates all weighted layers of a workload.
func (m *Model) Network(w models.Workload) []LayerEnergy {
	var out []LayerEnergy
	for _, l := range w.WeightedLayers() {
		out = append(out, m.Layer(l))
	}
	return out
}

// NetworkTotal returns the summed inference energy.
func (m *Model) NetworkTotal(w models.Workload) float64 {
	t := 0.0
	for _, e := range m.Network(w) {
		t += e.Total()
	}
	return t
}

// ArraysUsed reports the crossbar arrays ISAAC provisions for a layer,
// for utilization comparisons with the morphable mapping.
func (m *Model) ArraysUsed(l models.LayerShape) int {
	if l.Kind == models.AvgPool {
		return 0
	}
	n := m.P.ArraySize
	rf := l.Rf()
	cols := l.Kernels() * m.columnsPerWeight()
	return ((rf + n - 1) / n) * ((cols + n - 1) / n)
}
