package hybrid

import (
	"fmt"

	"repro/internal/convert"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/models"
)

// OperatingPoint is one (split, window) configuration with its measured
// accuracy and modeled cost.
type OperatingPoint struct {
	NonSpiking int
	Timesteps  int
	Accuracy   float64
	EnergyJ    float64
	AvgPowerW  float64
}

// OptimizeResult is the outcome of an operating-point search.
type OptimizeResult struct {
	// Best is the minimum-energy point meeting the accuracy target.
	Best OperatingPoint
	// Frontier is every evaluated point, for inspection.
	Frontier []OperatingPoint
	// Found reports whether any point met the target.
	Found bool
}

// Optimize searches the hybrid design space for the minimum-energy
// configuration meeting an accuracy target — the §V-B trade-off ("keeping
// both latency and energy in check, while also maintaining higher
// accuracy") automated.
//
// Accuracy is measured on the converted scaled model over maxSamples test
// images; energy/power come from the analytic model applied to the
// full-size workload `w` (the deployment target). splits and windows
// enumerate the candidate grid.
func Optimize(c *convert.Converted, data *dataset.Dataset, w models.Workload,
	splits, windows []int, target float64, maxSamples int, seed uint64) (*OptimizeResult, error) {
	if len(splits) == 0 || len(windows) == 0 {
		return nil, fmt.Errorf("hybrid: empty search grid")
	}
	em := energy.NewModel()
	np := mapping.MapWorkload(w)
	act := energy.DefaultActivity(w, energy.DefaultInputRate)

	res := &OptimizeResult{}
	for _, k := range splits {
		m, err := Split(c, k)
		if err != nil {
			continue // invalid split for this topology: skip
		}
		for _, T := range windows {
			acc := m.Evaluate(data, T, maxSamples, seed)
			rep := em.HybridNetwork(np, T, k, act)
			pt := OperatingPoint{
				NonSpiking: k, Timesteps: T,
				Accuracy: acc, EnergyJ: rep.EnergyJ, AvgPowerW: rep.AvgPowerW,
			}
			res.Frontier = append(res.Frontier, pt)
			if acc >= target && (!res.Found || pt.EnergyJ < res.Best.EnergyJ) {
				res.Best = pt
				res.Found = true
			}
		}
	}
	if len(res.Frontier) == 0 {
		return nil, fmt.Errorf("hybrid: no valid operating points (splits %v)", splits)
	}
	return res, nil
}

// ParetoFront filters a frontier down to its accuracy/energy Pareto set:
// points where no other point has both higher accuracy and lower energy.
func ParetoFront(points []OperatingPoint) []OperatingPoint {
	var front []OperatingPoint
	for _, p := range points {
		dominated := false
		for _, q := range points {
			if q.Accuracy >= p.Accuracy && q.EnergyJ < p.EnergyJ && (q.Accuracy > p.Accuracy || q.EnergyJ < p.EnergyJ) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	return front
}
