package hybrid

import (
	"testing"

	"repro/internal/models"
)

func TestOptimizeFindsFeasiblePoint(t *testing.T) {
	c, _, te := fixtures(t)
	w := models.FullMLP3()
	res, err := Optimize(c, te, w,
		[]int{1, 2}, []int{20, 60, 120}, 0.6, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("no operating point met target; frontier: %+v", res.Frontier)
	}
	if res.Best.Accuracy < 0.6 {
		t.Fatalf("best point misses target: %+v", res.Best)
	}
	// Best must be minimal energy among qualifying points.
	for _, p := range res.Frontier {
		if p.Accuracy >= 0.6 && p.EnergyJ < res.Best.EnergyJ {
			t.Fatalf("point %+v beats reported best %+v", p, res.Best)
		}
	}
	if len(res.Frontier) != 6 {
		t.Fatalf("frontier size %d, want 6", len(res.Frontier))
	}
}

func TestOptimizeUnreachableTarget(t *testing.T) {
	c, _, te := fixtures(t)
	res, err := Optimize(c, te, models.FullMLP3(),
		[]int{1}, []int{5}, 1.01, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("accuracy > 1 cannot be met")
	}
}

func TestOptimizeEmptyGrid(t *testing.T) {
	c, _, te := fixtures(t)
	if _, err := Optimize(c, te, models.FullMLP3(), nil, nil, 0.5, 10, 1); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func TestParetoFront(t *testing.T) {
	pts := []OperatingPoint{
		{Accuracy: 0.9, EnergyJ: 10},
		{Accuracy: 0.8, EnergyJ: 5},
		{Accuracy: 0.7, EnergyJ: 8}, // dominated by (0.8, 5)
		{Accuracy: 0.95, EnergyJ: 20},
	}
	front := ParetoFront(pts)
	if len(front) != 3 {
		t.Fatalf("front size %d: %+v", len(front), front)
	}
	for _, p := range front {
		if p.Accuracy == 0.7 {
			t.Fatal("dominated point survived")
		}
	}
}

func TestParetoFrontAllIncomparable(t *testing.T) {
	pts := []OperatingPoint{
		{Accuracy: 0.9, EnergyJ: 10},
		{Accuracy: 0.8, EnergyJ: 5},
	}
	if got := len(ParetoFront(pts)); got != 2 {
		t.Fatalf("front size %d", got)
	}
}
