// Package hybrid implements the SNN-ANN hybrid models of §V-B of the
// NEBULA paper: a converted network is split so that the first part (near
// the input) runs in the spiking domain while the last k weighted layers
// run as a conventional ANN.
//
// At the split, an Accumulator Unit (AU, Fig. 6(c)) integrates the spike
// train of the last spiking stage over the evidence window and scales the
// resulting rate by that stage's activation factor λ, recovering a
// continuous activation estimate that feeds the ANN tail. This prevents
// the information loss of deep spike propagation while retaining the low
// instantaneous power of the spiking front (Fig. 17).
package hybrid

import (
	"fmt"

	"repro/internal/convert"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// Model is a hybrid SNN-ANN network.
type Model struct {
	Name string
	// Front is the spiking portion.
	Front *snn.Network
	// Folded is the full BN-free ANN; the tail runs layers
	// [TailStart, len) of it.
	Folded    *nn.Network
	TailStart int
	// LambdaSplit rescales accumulated rates back to activation units.
	LambdaSplit float64
	// NonSpiking is the number of weighted layers running in ANN mode.
	NonSpiking int
	// SpikingWeighted is the number of weighted layers running spiking.
	SpikingWeighted int
	Cfg             convert.Config
}

// Split cuts a converted network so its last nonSpiking weighted layers
// (including the read-out) run in the ANN domain. nonSpiking must be at
// least 1 (the read-out) and leave at least one weighted spiking layer.
func Split(c *convert.Converted, nonSpiking int) (*Model, error) {
	var weightedIdx []int // indices into c.Stages of weighted stages
	for i, s := range c.Stages {
		if s.Weighted {
			weightedIdx = append(weightedIdx, i)
		}
	}
	total := len(weightedIdx)
	if nonSpiking < 1 || nonSpiking >= total {
		return nil, fmt.Errorf("hybrid: nonSpiking must be in [1, %d), got %d", total, nonSpiking)
	}
	// The first ANN-domain weighted stage:
	firstTail := c.Stages[weightedIdx[total-nonSpiking]]
	// The spiking front runs every SNN layer before that stage. Skip
	// trailing stateless stages (flatten) from the front; the ANN tail's
	// own flatten handles reshaping.
	frontEnd := firstTail.SNNLayer // exclusive
	// λ at the split is the Lambda of the last IF stage before the cut.
	lambdaSplit := 1.0
	for _, s := range c.Stages {
		if s.SNNLayer < frontEnd && s.Kind != "flatten" {
			lambdaSplit = s.Lambda
		}
	}
	front := snn.NewNetwork(c.SNN.Name()+"-front", c.SNN.Layers[:frontEnd]...)
	return &Model{
		Name:            fmt.Sprintf("%s-hyb%d", c.SNN.Name(), nonSpiking),
		Front:           front,
		Folded:          c.Folded,
		TailStart:       firstTail.ANNStart,
		LambdaSplit:     lambdaSplit,
		NonSpiking:      nonSpiking,
		SpikingWeighted: total - nonSpiking,
		Cfg:             c.Cfg,
	}, nil
}

// RunResult summarizes one hybrid inference.
type RunResult struct {
	Output *tensor.Tensor
	// FrontSpikes is the total spike count in the spiking front
	// (including none from stateless stages).
	FrontSpikes float64
	// AccumulatedRate is the mean output rate at the AU.
	AccumulatedRate float64
	Timesteps       int
}

// Predict returns the argmax class.
func (r *RunResult) Predict() int { return r.Output.ArgMax() }

// Run performs hybrid inference on one image: T timesteps of the spiking
// front, AU accumulation, then a single ANN pass over the tail.
func (m *Model) Run(img *tensor.Tensor, T int, r *rng.Rand) *RunResult {
	m.Front.Reset()
	enc := snn.NewPoissonEncoder(m.Cfg.Gain, r)
	var acc *tensor.Tensor
	for t := 0; t < T; t++ {
		out := m.Front.Step(enc.Encode(img))
		if acc == nil {
			acc = tensor.New(out.Shape()...)
		}
		acc.AddInPlace(out)
	}
	// AU: spike count → rate → activation estimate (white "e" in Fig. 11).
	acc.ScaleInPlace(m.LambdaSplit / float64(T))

	// ANN tail on the recovered activations.
	x := acc.Reshape(append([]int{1}, acc.Shape()...)...)
	layers := m.Folded.Layers()
	for _, l := range layers[m.TailStart:] {
		x = l.Forward(x, false)
	}

	var frontSpikes float64
	for _, l := range m.Front.Layers {
		s, _ := l.Spikes()
		frontSpikes += s
	}
	return &RunResult{
		Output:          x.Reshape(x.Size()),
		FrontSpikes:     frontSpikes,
		AccumulatedRate: acc.Mean() / maxf(m.LambdaSplit, 1e-12),
		Timesteps:       T,
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Evaluate returns the hybrid model's accuracy over up to maxSamples.
func (m *Model) Evaluate(data *dataset.Dataset, T, maxSamples int, seed uint64) float64 {
	r := rng.New(seed)
	n := maxSamples
	if n > data.Len() {
		n = data.Len()
	}
	correct := 0
	for i := 0; i < n; i++ {
		img, label := data.Sample(i)
		if m.Run(img, T, r.Split()).Predict() == label {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// SweepPoint is one row of the Table II style sweep.
type SweepPoint struct {
	NonSpiking int
	Timesteps  int
	Accuracy   float64
}

// Sweep evaluates hybrid variants over the given split depths and
// timestep budgets, producing the data behind Table II and Fig. 17.
func Sweep(c *convert.Converted, splits, timesteps []int, data *dataset.Dataset, maxSamples int, seed uint64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, k := range splits {
		m, err := Split(c, k)
		if err != nil {
			return nil, err
		}
		for _, T := range timesteps {
			out = append(out, SweepPoint{
				NonSpiking: k,
				Timesteps:  T,
				Accuracy:   m.Evaluate(data, T, maxSamples, seed),
			})
		}
	}
	return out, nil
}

// TailLayerCheck verifies the tail starts at a weighted layer (useful
// invariant for tests and the energy model).
func (m *Model) TailLayerCheck() error {
	layers := m.Folded.Layers()
	if m.TailStart < 0 || m.TailStart >= len(layers) {
		return fmt.Errorf("hybrid: tail start %d out of range", m.TailStart)
	}
	switch layers[m.TailStart].(type) {
	case *nn.Conv2D, *nn.Linear:
		return nil
	}
	return fmt.Errorf("hybrid: tail starts at non-weighted layer %s", layers[m.TailStart].Name())
}
