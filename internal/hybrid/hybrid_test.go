package hybrid

import (
	"sync"
	"testing"

	"repro/internal/convert"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/train"
)

var (
	once      sync.Once
	mlpConv   *convert.Converted
	lenetConv *convert.Converted
	teData    *dataset.Dataset
	mlpANN    *nn.Network
)

func fixtures(t *testing.T) (*convert.Converted, *convert.Converted, *dataset.Dataset) {
	t.Helper()
	once.Do(func() {
		tr, te := dataset.TrainTest(dataset.MNISTLike, 400, 150, 51)
		teData = te

		mlpANN = models.NewMLP3(1, 16, 10, rng.New(17))
		cfg := train.DefaultConfig()
		cfg.Epochs = 6
		train.Run(mlpANN, tr, te, cfg)
		var err error
		mlpConv, err = convert.Convert(mlpANN, tr, convert.DefaultConfig())
		if err != nil {
			panic(err)
		}

		lenet := models.NewLeNet5(1, 16, 10, rng.New(18))
		cfg.Epochs = 5
		train.Run(lenet, tr, te, cfg)
		lenetConv, err = convert.Convert(lenet, tr, convert.DefaultConfig())
		if err != nil {
			panic(err)
		}
	})
	return mlpConv, lenetConv, teData
}

func TestSplitBounds(t *testing.T) {
	c, _, _ := fixtures(t)
	// MLP has 3 weighted layers; valid splits are 1 and 2.
	if _, err := Split(c, 0); err == nil {
		t.Fatal("split 0 must fail")
	}
	if _, err := Split(c, 3); err == nil {
		t.Fatal("split = total weighted must fail (no spiking layer left)")
	}
	m, err := Split(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NonSpiking != 1 || m.SpikingWeighted != 2 {
		t.Fatalf("split accounting: non=%d spiking=%d", m.NonSpiking, m.SpikingWeighted)
	}
}

func TestTailStartsAtWeightedLayer(t *testing.T) {
	c, lc, _ := fixtures(t)
	for _, tc := range []struct {
		name string
		conv *convert.Converted
		max  int
	}{{"mlp", c, 2}, {"lenet", lc, 3}} {
		for k := 1; k <= tc.max; k++ {
			m, err := Split(tc.conv, k)
			if err != nil {
				t.Fatalf("%s split %d: %v", tc.name, k, err)
			}
			if err := m.TailLayerCheck(); err != nil {
				t.Fatalf("%s split %d: %v", tc.name, k, err)
			}
		}
	}
}

func TestHybridAccuracyNearSNN(t *testing.T) {
	c, _, te := fixtures(t)
	snnAcc := c.Evaluate(te, 100, 60, 3).Accuracy
	m, err := Split(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	hybAcc := m.Evaluate(te, 100, 60, 3)
	// Hybrid with 1 ANN layer should be at least as good as the pure SNN
	// (within noise): the ANN read-out removes output-stage spike noise.
	if hybAcc < snnAcc-0.10 {
		t.Fatalf("hybrid acc %.3f well below SNN %.3f", hybAcc, snnAcc)
	}
}

func TestHybridBeatsSNNAtShortWindows(t *testing.T) {
	// The paper's motivation: at small T, hybrids reach higher accuracy
	// than pure SNNs because fewer spiking layers attenuate the signal.
	_, lc, te := fixtures(t)
	const T = 8
	snnAcc := lc.Evaluate(te, T, 60, 9).Accuracy
	m, err := Split(lc, 3)
	if err != nil {
		t.Fatal(err)
	}
	hybAcc := m.Evaluate(te, T, 60, 9)
	if hybAcc < snnAcc-0.05 {
		t.Fatalf("at T=%d hybrid (%.3f) should not trail SNN (%.3f)", T, hybAcc, snnAcc)
	}
}

func TestRunResultFields(t *testing.T) {
	c, _, te := fixtures(t)
	m, err := Split(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	img, _ := te.Sample(0)
	res := m.Run(img, 50, rng.New(1))
	if res.Output.Size() != 10 {
		t.Fatalf("output size %d", res.Output.Size())
	}
	if res.FrontSpikes <= 0 {
		t.Fatal("front produced no spikes")
	}
	if res.Timesteps != 50 {
		t.Fatalf("timesteps %d", res.Timesteps)
	}
	p := res.Predict()
	if p < 0 || p > 9 {
		t.Fatalf("prediction %d", p)
	}
}

func TestSweepShape(t *testing.T) {
	c, _, te := fixtures(t)
	pts, err := Sweep(c, []int{1, 2}, []int{10, 40}, te, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("sweep points: %d", len(pts))
	}
	for _, p := range pts {
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Fatalf("accuracy %v", p.Accuracy)
		}
	}
}

func TestDeeperSplitMoreANN(t *testing.T) {
	// With all but one layer in ANN mode and a reasonable window, the
	// hybrid should approach the ANN accuracy.
	c, _, te := fixtures(t)
	annAcc := train.Evaluate(mlpANN, te, 32)
	m, err := Split(c, 2) // only fc1 spiking
	if err != nil {
		t.Fatal(err)
	}
	hybAcc := m.Evaluate(te, 150, 80, 11)
	if hybAcc < annAcc-0.15 {
		t.Fatalf("deep hybrid %.3f too far below ANN %.3f", hybAcc, annAcc)
	}
}
