// Package core is the public facade of the NEBULA reproduction: a
// Simulator that ties together the full flow of the paper —
//
//	train an ANN → calibrate and quantize (§IV-C) → convert to an SNN
//	(§V-A) → optionally split into a hybrid (§V-B) → map onto the chip
//	(§IV-B) → evaluate accuracy on simulated hardware and estimate
//	energy/power with the Table III component model.
//
// Downstream users construct a Simulator, build a Pipeline for their model
// and dataset, and query accuracy, energy and power in any of the three
// operating modes.
package core

import (
	"context"
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/hybrid"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
	"repro/internal/train"
)

// Simulator bundles the device, circuit and architecture models.
type Simulator struct {
	// Device is the DW-MTJ calibration.
	Device device.Params
	// Crossbar holds the analog non-ideality knobs.
	Crossbar crossbar.Config
	// Energy is the Table III power/energy model.
	Energy *energy.Model
	// Seed drives every stochastic component.
	Seed uint64
}

// New returns a simulator at the paper's operating point.
func New() *Simulator {
	return &Simulator{
		Device: device.DefaultParams(),
		Energy: energy.NewModel(),
		Seed:   1,
	}
}

// PipelineConfig controls Build.
type PipelineConfig struct {
	// Train configures the ANN training run.
	Train train.Config
	// Quant configures weight/activation discretization; zero values
	// select the paper's 4-bit operating point.
	Quant quant.Config
	// Convert configures the ANN→SNN conversion.
	Convert convert.Config
	// SkipQuantization trains and converts at full precision.
	SkipQuantization bool
}

// DefaultPipelineConfig returns the standard flow settings.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Train:   train.DefaultConfig(),
		Quant:   quant.DefaultConfig(),
		Convert: convert.DefaultConfig(),
	}
}

// Pipeline is a trained, quantized, converted model ready for evaluation
// in any NEBULA mode.
type Pipeline struct {
	Sim       *Simulator
	ANN       *nn.Network
	Ranges    *quant.LayerRanges
	Converted *convert.Converted
	Train     *dataset.Dataset
	Test      *dataset.Dataset
	Cfg       PipelineConfig
}

// Build trains net on the datasets, calibrates and quantizes it, and
// converts it to a spiking network.
func (s *Simulator) Build(net *nn.Network, trainDS, testDS *dataset.Dataset, cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Train.Epochs == 0 {
		cfg.Train = train.DefaultConfig()
	}
	if cfg.Quant.WeightLevels == 0 {
		cfg.Quant = quant.DefaultConfig()
	}
	if cfg.Convert.Percentile == 0 {
		cfg.Convert = convert.DefaultConfig()
	}
	train.Run(net, trainDS, testDS, cfg.Train)
	ranges := quant.Calibrate(net, trainDS, quant.DefaultCalibration())
	if !cfg.SkipQuantization {
		quant.Apply(net, ranges, cfg.Quant)
	}
	conv, err := convert.Convert(net, trainDS, cfg.Convert)
	if err != nil {
		return nil, fmt.Errorf("core: conversion failed: %w", err)
	}
	return &Pipeline{
		Sim: s, ANN: net, Ranges: ranges, Converted: conv,
		Train: trainDS, Test: testDS, Cfg: cfg,
	}, nil
}

// EvaluateANN returns the (quantized) ANN accuracy on the test set.
func (p *Pipeline) EvaluateANN() float64 {
	if p.Cfg.SkipQuantization {
		return train.Evaluate(p.ANN, p.Test, 32)
	}
	return quant.EvaluateQuantized(p.ANN, p.Test, p.Ranges, p.Cfg.Quant, 32)
}

// EvaluateSNN runs the converted SNN for T timesteps over up to maxSamples
// test images.
func (p *Pipeline) EvaluateSNN(T, maxSamples int) convert.EvalResult {
	return p.Converted.Evaluate(p.Test, T, maxSamples, p.Sim.Seed)
}

// EvaluateHybrid evaluates a hybrid split with nonSpiking ANN layers.
func (p *Pipeline) EvaluateHybrid(nonSpiking, T, maxSamples int) (float64, error) {
	m, err := hybrid.Split(p.Converted, nonSpiking)
	if err != nil {
		return 0, err
	}
	return m.Evaluate(p.Test, T, maxSamples, p.Sim.Seed), nil
}

// NewChip builds a hardware chip simulator with the pipeline's device and
// crossbar settings. Pass a noise source to enable analog non-idealities.
func (s *Simulator) NewChip(noise *rng.Rand) *arch.Chip {
	return arch.NewChip(s.Device, s.Crossbar, noise)
}

// RunOnChip executes one test image on simulated hardware in SNN mode,
// compiling a single-use session. For more than a handful of images use
// CompileChip once and stream the batch through the returned session.
func (p *Pipeline) RunOnChip(imageIdx, T int) (*arch.RunResult, int, error) {
	img, label := p.Test.Sample(imageIdx)
	chip := p.Sim.NewChip(nil)
	enc := snn.NewPoissonEncoder(p.Cfg.Convert.Gain, rng.New(p.Sim.Seed+uint64(imageIdx)))
	sess, err := chip.Compile(p.Converted,
		arch.WithMode(arch.ModeSNN),
		arch.WithTimesteps(T),
		arch.WithSharedEncoder(enc),
		arch.WithInputShape(img.Shape()...))
	if err != nil {
		return nil, 0, err
	}
	//nebula:lint-ignore ctxflow single-use convenience entry; deadline-aware callers use CompileChip and RunBatchOnChip
	res, err := sess.Run(context.Background(), img)
	return res, label, err
}

// ChipConfig returns the pipeline's compile configuration for SNN-mode
// inference over test-set-shaped images, as a round-trippable
// arch.CompileConfig. This is the supported way to inspect or vary what
// CompileChip compiles — start from it and pass cfg.Options() — instead
// of assembling ad-hoc option lists or poking session internals.
func (p *Pipeline) ChipConfig(T, parallelism int) arch.CompileConfig {
	img, _ := p.Test.Sample(0)
	return arch.CompileConfig{
		Mode:        arch.ModeSNN,
		Timesteps:   T,
		Parallelism: parallelism,
		Seed:        p.Sim.Seed,
		SeedSet:     true,
		InputShape:  append([]int(nil), img.Shape()...),
	}
}

// CompileChip programs the converted network onto a fresh chip once and
// returns a session for SNN-mode inference over test-set-shaped images:
// the program-once / run-many path. Parallelism ≤ 0 uses all cores.
// Extra options (e.g. arch.WithObserver) are appended after the
// pipeline's defaults; pass arch.WithImageCache(dir) to route the
// compile through the content-addressed chip-image cache, where a hit
// rehydrates the session from disk instead of re-programming.
func (p *Pipeline) CompileChip(T, parallelism int, opts ...arch.Option) (*arch.Session, error) {
	return p.Sim.NewChip(nil).Compile(p.Converted,
		append(p.ChipConfig(T, parallelism).Options(), opts...)...)
}

// RunBatchOnChip compiles once and streams n consecutive test images
// (starting at first) through the session engine concurrently. It returns
// the per-image results and labels in input order. Extra options are
// forwarded to CompileChip, so arch.WithImageCache(dir) makes repeated
// batches rehydrate the chip instead of recompiling it.
func (p *Pipeline) RunBatchOnChip(ctx context.Context, first, n, T, parallelism int, opts ...arch.Option) ([]*arch.RunResult, []int, error) {
	sess, err := p.CompileChip(T, parallelism, opts...)
	if err != nil {
		return nil, nil, err
	}
	imgs := make([]*tensor.Tensor, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		imgs[i], labels[i] = p.Test.Sample(first + i)
	}
	res, err := sess.RunBatch(ctx, imgs)
	if err != nil {
		return nil, nil, err
	}
	return res, labels, nil
}

// EstimateANN returns the energy/power report of a full-size workload in
// ANN mode.
func (s *Simulator) EstimateANN(w models.Workload) energy.NetworkReport {
	return s.Energy.ANNNetwork(mapping.MapWorkload(w))
}

// EstimateSNN returns the energy/power report of a full-size workload in
// SNN mode over T timesteps with the default activity profile.
func (s *Simulator) EstimateSNN(w models.Workload, T int) energy.NetworkReport {
	np := mapping.MapWorkload(w)
	return s.Energy.SNNNetwork(np, T, energy.DefaultActivity(w, energy.DefaultInputRate))
}

// EstimateHybrid returns the report of a hybrid configuration.
func (s *Simulator) EstimateHybrid(w models.Workload, T, nonSpiking int) energy.NetworkReport {
	np := mapping.MapWorkload(w)
	return s.Energy.HybridNetwork(np, T, nonSpiking, energy.DefaultActivity(w, energy.DefaultInputRate))
}

// DescribeMapping writes the per-layer placement of a workload.
func (s *Simulator) DescribeMapping(w models.Workload, out io.Writer) {
	np := mapping.MapWorkload(w)
	fmt.Fprintf(out, "mapping of %s onto NEBULA (%d weighted layers)\n", w.Name, len(np.Placements))
	fmt.Fprintln(out, "  layer       Rf     kernels  NU   ACs  NCs  util    evals")
	for _, p := range np.Placements {
		fmt.Fprintf(out, "  %-10s %6d  %6d   %-3s %4d %4d  %.4f  %d\n",
			p.Layer.Name, p.Layer.Rf(), p.Layer.Kernels(), p.Level, p.ACsUsed, p.NCsUsed, p.Utilization, p.Evaluations)
	}
	fmt.Fprintf(out, "  totals: %d ACs, %d NCs, mean utilization %.4f\n",
		np.TotalACs(), np.TotalNCs(), np.MeanUtilization())
}
