package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
)

var (
	once sync.Once
	pipe *Pipeline
)

func fixture(t *testing.T) *Pipeline {
	t.Helper()
	once.Do(func() {
		sim := New()
		tr, te := dataset.TrainTest(dataset.MNISTLike, 400, 120, 42)
		net := models.NewMLP3(1, 16, 10, rng.New(3))
		cfg := DefaultPipelineConfig()
		cfg.Train.Epochs = 6
		p, err := sim.Build(net, tr, te, cfg)
		if err != nil {
			panic(err)
		}
		pipe = p
	})
	return pipe
}

func TestPipelineANNAccuracy(t *testing.T) {
	p := fixture(t)
	if acc := p.EvaluateANN(); acc < 0.5 {
		t.Fatalf("quantized ANN accuracy %v", acc)
	}
}

func TestPipelineSNNAccuracy(t *testing.T) {
	p := fixture(t)
	res := p.EvaluateSNN(100, 60)
	if res.Accuracy < 0.45 {
		t.Fatalf("SNN accuracy %v", res.Accuracy)
	}
	if len(res.MeanActivity) == 0 {
		t.Fatal("no activity recorded")
	}
}

func TestPipelineHybrid(t *testing.T) {
	p := fixture(t)
	acc, err := p.EvaluateHybrid(1, 100, 60)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.45 {
		t.Fatalf("hybrid accuracy %v", acc)
	}
	if _, err := p.EvaluateHybrid(99, 100, 10); err == nil {
		t.Fatal("absurd split accepted")
	}
}

func TestPipelineChipRun(t *testing.T) {
	p := fixture(t)
	res, label, err := p.RunOnChip(0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Spikes <= 0 {
		t.Fatalf("no hardware activity: %+v", res)
	}
	if label < 0 || label > 9 {
		t.Fatalf("label %d", label)
	}
}

func TestEstimators(t *testing.T) {
	sim := New()
	w := models.FullVGG13(10, 300, 91.6, 90.05)
	ann := sim.EstimateANN(w)
	snn := sim.EstimateSNN(w, w.Timesteps)
	hyb := sim.EstimateHybrid(w, 150, 3)
	if !(ann.EnergyJ < hyb.EnergyJ && hyb.EnergyJ < snn.EnergyJ) {
		t.Fatalf("energy ordering broken: ann %v hyb %v snn %v", ann.EnergyJ, hyb.EnergyJ, snn.EnergyJ)
	}
	if !(snn.AvgPowerW < ann.AvgPowerW) {
		t.Fatalf("power ordering broken: snn %v ann %v", snn.AvgPowerW, ann.AvgPowerW)
	}
}

func TestDescribeMapping(t *testing.T) {
	var b bytes.Buffer
	New().DescribeMapping(models.FullLeNet5(), &b)
	out := b.String()
	if !strings.Contains(out, "lenet5") || !strings.Contains(out, "totals") {
		t.Fatalf("mapping description incomplete:\n%s", out)
	}
}

func TestBuildRejectsBadNetwork(t *testing.T) {
	sim := New()
	tr, te := dataset.TrainTest(dataset.MNISTLike, 50, 20, 1)
	// Network ends in ReLU: conversion must fail cleanly.
	net := models.NewMLP3(1, 16, 10, rng.New(1))
	net.Add(nn.NewReLU("trailing-relu"))
	cfg := DefaultPipelineConfig()
	cfg.Train.Epochs = 1
	if _, err := sim.Build(net, tr, te, cfg); err == nil {
		t.Fatal("expected conversion error")
	}
}
