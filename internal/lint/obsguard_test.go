package lint

import "testing"

func TestObsguardFlagsConsolePrinting(t *testing.T) {
	src := `package engine

import (
	"fmt"
	"log"
)

func debugDump(v int) {
	fmt.Println("value:", v)
	fmt.Printf("value: %d\n", v)
	log.Printf("value: %d", v)
	log.Fatal("boom")
}
`
	active, _ := partition(runFixture(t, ObsguardAnalyzer(), "repro/internal/engine", src))
	if len(active) != 4 {
		t.Fatalf("findings %d, want 4 (Println, Printf, log.Printf, log.Fatal): %+v", len(active), active)
	}
	for _, f := range active {
		if f.Severity != SeverityError {
			t.Fatalf("obsguard finding not error severity: %+v", f)
		}
	}
}

func TestObsguardAllowedForms(t *testing.T) {
	// Explicit writers are the sanctioned output path, and a shadowing
	// local identifier named fmt must not be mistaken for the package.
	src := `package engine

import (
	"bytes"
	"fmt"
)

type printer struct{}

func (printer) Println(args ...any) {}

func render(b *bytes.Buffer, v int) string {
	fmt.Fprintf(b, "value: %d\n", v)
	var fmtLike printer
	fmtLike.Println("not the fmt package")
	return fmt.Sprintf("%d", v)
}
`
	if fs := runFixture(t, ObsguardAnalyzer(), "repro/internal/engine", src); len(fs) != 0 {
		t.Fatalf("allowed forms should pass, got %+v", fs)
	}
	// cmd/ owns the console.
	cmdSrc := `package main

import "fmt"

func main() { fmt.Println("ok") }
`
	if fs := runFixture(t, ObsguardAnalyzer(), "repro/cmd/nebula-sim", cmdSrc); len(fs) != 0 {
		t.Fatalf("cmd/ should be exempt, got %+v", fs)
	}
	// internal/lint deals in diagnostics by design.
	lintSrc := `package lint

import "fmt"

func shout() { fmt.Println("finding") }
`
	if fs := runFixture(t, ObsguardAnalyzer(), "repro/internal/lint", lintSrc); len(fs) != 0 {
		t.Fatalf("internal/lint should be exempt, got %+v", fs)
	}
}

func TestObsguardSuppression(t *testing.T) {
	src := `package engine

import "fmt"

func trace(v int) {
	//nebula:lint-ignore obsguard temporary bring-up tracing
	fmt.Println("v:", v)
}
`
	active, suppressed := partition(runFixture(t, ObsguardAnalyzer(), "repro/internal/engine", src))
	if len(active) != 0 || len(suppressed) != 1 {
		t.Fatalf("active %d suppressed %d, want 0/1", len(active), len(suppressed))
	}
}
