package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// writeModule lays out a throwaway module on disk and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoaderStdlibOnlyModule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"a/a.go": `package a

import "strings"

func Upper(s string) string { return strings.ToUpper(s) }
`,
		"b/b.go": `package b

import "example.com/m/a"

func Shout(s string) string { return a.Upper(s) + "!" }
`,
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if l.Module != "example.com/m" {
		t.Fatalf("module = %q", l.Module)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 || pkgs[0].Path != "example.com/m/a" || pkgs[1].Path != "example.com/m/b" {
		t.Fatalf("loaded %v", pkgs)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) != 0 {
			t.Errorf("%s: unexpected type errors %v", p.Path, p.TypeErrors)
		}
		if p.Types == nil {
			t.Errorf("%s: nil Types", p.Path)
		}
	}
	// Memoization: a second Load returns the same *Package.
	again, err := l.Load("example.com/m/a")
	if err != nil {
		t.Fatal(err)
	}
	if again != pkgs[0] {
		t.Error("Load is not memoized")
	}
}

// TestLoaderTypeErrors proves analysis degrades gracefully: a package
// that fails type-checking still loads with its AST and suppressions so
// syntax-level analyzers keep working, and the errors are surfaced.
func TestLoaderTypeErrors(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"bad/bad.go": `package bad

func Broken() int {
	return undefinedSymbol
}
`,
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.Load("example.com/m/bad")
	if err != nil {
		t.Fatalf("Load returned a hard error for a type-broken package: %v", err)
	}
	if len(p.TypeErrors) == 0 {
		t.Fatal("type errors not surfaced")
	}
	if len(p.Files) != 1 {
		t.Fatalf("AST not retained: %d files", len(p.Files))
	}
	if p.Info == nil {
		t.Fatal("partial type info not retained")
	}
	// The driver still runs: package-level analyzers see the package.
	fs := Run([]*Package{p}, Analyzers())
	_ = fs // no panic is the property under test
}

func TestLoaderSkipsTestdataAndHidden(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                "module example.com/m\n\ngo 1.22\n",
		"a/a.go":                "package a\n",
		"a/testdata/fix/fix.go": "package fix\n\nthis does not even parse",
		"a/.hidden/h.go":        "package h\n",
		"a/_wip/w.go":           "package w\n",
		"a/a_test.go":           "package a\n\nimport \"testing\"\n\nfunc TestX(t *testing.T) {}\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "example.com/m/a" {
		t.Fatalf("loaded %v, want only example.com/m/a", pkgs)
	}
	if len(pkgs[0].Files) != 1 {
		t.Fatalf("test files not excluded: %d files", len(pkgs[0].Files))
	}
}

func TestLoaderModulePathErrors(t *testing.T) {
	if _, err := NewLoader(t.TempDir()); err == nil {
		t.Error("NewLoader succeeded without go.mod")
	}
	root := writeModule(t, map[string]string{"go.mod": "// no module line\n"})
	if _, err := NewLoader(root); err == nil {
		t.Error("NewLoader succeeded with a go.mod lacking a module directive")
	}
}

// TestLoaderSuppressionPlacement pins the two accepted directive
// positions — same line and directly above — through a disk-loaded
// package rather than a synthetic fixture.
func TestLoaderSuppressionPlacement(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"a/a.go": `package a

var sameLine = 1.5 //nebula:lint-ignore float-eq same-line directive

//nebula:lint-ignore float-eq preceding-line directive
var aboveLine = 2.5

var gap = 3.5
`,
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.Load("example.com/m/a")
	if err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(root, "a", "a.go")
	if reason, ok := p.suppressedAt("float-eq", file, 3); !ok || reason != "same-line directive" {
		t.Errorf("same-line: %q %v", reason, ok)
	}
	if reason, ok := p.suppressedAt("float-eq", file, 6); !ok || reason != "preceding-line directive" {
		t.Errorf("preceding-line: %q %v", reason, ok)
	}
	if _, ok := p.suppressedAt("float-eq", file, 8); ok {
		t.Error("directive leaked to an unrelated line")
	}
	if _, ok := p.suppressedAt("determinism", file, 3); ok {
		t.Error("rule-specific directive suppressed a different rule")
	}
}
