package lint

import "testing"

func TestPanicAuditFlagsRecoverablePanics(t *testing.T) {
	src := `package compiler

import "fmt"

func Lower(name string) int {
	if name == "" {
		panic("compiler: empty layer name")
	}
	if len(name) > 64 {
		panic(fmt.Sprintf("compiler: name %q too long", name))
	}
	return len(name)
}
`
	active, _ := partition(runFixture(t, PanicAuditAnalyzer(), "repro/internal/compiler", src))
	if len(active) != 2 {
		t.Fatalf("findings %d, want 2: %+v", len(active), active)
	}
	for _, f := range active {
		if f.Severity != SeverityWarning {
			t.Fatalf("panic-audit must report warnings, got %v", f.Severity)
		}
	}
}

func TestPanicAuditRecognizedInvariantForms(t *testing.T) {
	src := `package compiler

import "fmt"

func MustLower(name string) int {
	if name == "" {
		panic("empty name") // Must* helpers may panic
	}
	return len(name)
}

func step(state int) {
	switch state {
	case 0, 1:
	default:
		panic(fmt.Sprintf("compiler: unreachable state %d", state))
	}
}

func check(ok bool) {
	if !ok {
		panic("compiler: schedule invariant violated")
	}
}

func guarded() {
	defer func() {
		if r := recover(); r != nil {
			panic(r) // re-panic after cleanup
		}
	}()
}
`
	if fs := runFixture(t, PanicAuditAnalyzer(), "repro/internal/compiler", src); len(fs) != 0 {
		t.Fatalf("recognized invariant forms should pass, got %+v", fs)
	}
	// Commands may panic freely (flag handling exits anyway).
	mainSrc := `package main

func main() { panic("boom") }
`
	if fs := runFixture(t, PanicAuditAnalyzer(), "repro/cmd/tool", mainSrc); len(fs) != 0 {
		t.Fatalf("package main should be exempt, got %+v", fs)
	}
}

func TestPanicAuditReliabilityEscalation(t *testing.T) {
	// Inside the reliability subsystem a plain panic is a gate failure:
	// fault handling must return the DegradedError path, not crash.
	src := `package reliability

func mitigate(residual int) {
	if residual > 0 {
		panic("reliability: mitigation exhausted")
	}
}

func MustPolicy(ok bool) {
	if !ok {
		panic("bad policy") // Must* helpers stay exempt even here
	}
}
`
	active, _ := partition(runFixture(t, PanicAuditAnalyzer(), "repro/internal/reliability", src))
	if len(active) != 1 {
		t.Fatalf("findings %d, want 1: %+v", len(active), active)
	}
	if active[0].Severity != SeverityError {
		t.Fatalf("reliability panic must escalate to error, got %v", active[0].Severity)
	}
	if ErrorCount(active) != 1 {
		t.Fatalf("escalated finding must fail the gate")
	}
}

func TestPanicAuditSuppressedFinding(t *testing.T) {
	src := `package compiler

func divide(a, b int) int {
	if b == 0 {
		//nebula:lint-ignore panic-audit caller pre-validates divisor
		panic("compiler: zero divisor")
	}
	return a / b
}
`
	active, suppressed := partition(runFixture(t, PanicAuditAnalyzer(), "repro/internal/compiler", src))
	if len(active) != 0 || len(suppressed) != 1 {
		t.Fatalf("active %d suppressed %d, want 0/1", len(active), len(suppressed))
	}
}
