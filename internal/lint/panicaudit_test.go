package lint

import "testing"

func TestPanicAuditFlagsRecoverablePanics(t *testing.T) {
	src := `package compiler

import "fmt"

func Lower(name string) int {
	if name == "" {
		panic("compiler: empty layer name")
	}
	if len(name) > 64 {
		panic(fmt.Sprintf("compiler: name %q too long", name))
	}
	return len(name)
}
`
	active, _ := partition(runFixture(t, PanicAuditAnalyzer(), "repro/internal/compiler", src))
	if len(active) != 2 {
		t.Fatalf("findings %d, want 2: %+v", len(active), active)
	}
	for _, f := range active {
		if f.Severity != SeverityWarning {
			t.Fatalf("panic-audit must report warnings, got %v", f.Severity)
		}
	}
}

func TestPanicAuditRecognizedInvariantForms(t *testing.T) {
	src := `package compiler

import "fmt"

func MustLower(name string) int {
	if name == "" {
		panic("empty name") // Must* helpers may panic
	}
	return len(name)
}

func step(state int) {
	switch state {
	case 0, 1:
	default:
		panic(fmt.Sprintf("compiler: unreachable state %d", state))
	}
}

func check(ok bool) {
	if !ok {
		panic("compiler: schedule invariant violated")
	}
}

func guarded() {
	defer func() {
		if r := recover(); r != nil {
			panic(r) // re-panic after cleanup
		}
	}()
}
`
	if fs := runFixture(t, PanicAuditAnalyzer(), "repro/internal/compiler", src); len(fs) != 0 {
		t.Fatalf("recognized invariant forms should pass, got %+v", fs)
	}
	// Commands may panic freely (flag handling exits anyway).
	mainSrc := `package main

func main() { panic("boom") }
`
	if fs := runFixture(t, PanicAuditAnalyzer(), "repro/cmd/tool", mainSrc); len(fs) != 0 {
		t.Fatalf("package main should be exempt, got %+v", fs)
	}
}

func TestPanicAuditSuppressedFinding(t *testing.T) {
	src := `package compiler

func divide(a, b int) int {
	if b == 0 {
		//nebula:lint-ignore panic-audit caller pre-validates divisor
		panic("compiler: zero divisor")
	}
	return a / b
}
`
	active, suppressed := partition(runFixture(t, PanicAuditAnalyzer(), "repro/internal/compiler", src))
	if len(active) != 0 || len(suppressed) != 1 {
		t.Fatalf("active %d suppressed %d, want 0/1", len(active), len(suppressed))
	}
}
