package lint

import "testing"

func TestErrcheckFlagsDiscardedErrors(t *testing.T) {
	src := `package modelio

import "os"

func Cleanup(path string) {
	os.Remove(path)
}

func save(f *os.File, data []byte) {
	f.Write(data)
	f.Close()
}
`
	active, _ := partition(runFixture(t, ErrcheckAnalyzer(), "repro/internal/modelio", src))
	if len(active) != 3 {
		t.Fatalf("findings %d, want 3 (Remove, Write, Close): %+v", len(active), active)
	}
}

func TestErrcheckAllowedForms(t *testing.T) {
	src := `package modelio

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func report(f *os.File) error {
	var b bytes.Buffer
	var sb strings.Builder
	fmt.Fprintf(&b, "header\n") // fmt printing: error is plumbing
	b.WriteString("body")       // bytes.Buffer never fails
	sb.WriteString("tail")      // strings.Builder never fails
	fmt.Println(b.String(), sb.String())
	_ = f.Sync()       // explicit discard is visible and intentional
	defer f.Close()    // deferred cleanup idiom
	return f.Close()   // handled
}
`
	if fs := runFixture(t, ErrcheckAnalyzer(), "repro/internal/modelio", src); len(fs) != 0 {
		t.Fatalf("allowed forms should pass, got %+v", fs)
	}
	// Packages outside cmd/ and internal/ are out of scope.
	outSrc := `package examples

import "os"

func sloppy() { os.Remove("x") }
`
	if fs := runFixture(t, ErrcheckAnalyzer(), "repro/examples/demo", outSrc); len(fs) != 0 {
		t.Fatalf("examples/ should be exempt, got %+v", fs)
	}
}

func TestErrcheckSuppressedFinding(t *testing.T) {
	src := `package modelio

import "os"

func BestEffortCleanup(path string) {
	//nebula:lint-ignore errcheck best-effort temp file removal
	os.Remove(path)
}
`
	active, suppressed := partition(runFixture(t, ErrcheckAnalyzer(), "repro/internal/modelio", src))
	if len(active) != 0 || len(suppressed) != 1 {
		t.Fatalf("active %d suppressed %d, want 0/1", len(active), len(suppressed))
	}
}
