package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// loadFixture type-checks one synthetic source file as a package with the
// given import path and returns it ready for analyzers. Fixtures may
// import anything from the standard library.
func loadFixture(t *testing.T, importPath, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	p := &Package{
		Path:  importPath,
		Fset:  fset,
		Files: []*ast.File{file},
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
		suppressions: map[string][]suppression{},
	}
	p.suppressions["fixture.go"] = collectSuppressions(fset, file)
	gc := importer.ForCompiler(fset, "gc", nil)
	srcImp := importer.ForCompiler(fset, "source", nil)
	cfg := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			pkg, err := gc.Import(path)
			if err == nil {
				return pkg, nil
			}
			return srcImp.Import(path)
		}),
		Error: func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.Types, _ = cfg.Check(importPath, fset, p.Files, p.Info)
	for _, te := range p.TypeErrors {
		t.Fatalf("fixture does not type-check: %v", te)
	}
	return p
}

// runFixture applies one analyzer to a fixture through the full driver so
// suppression resolution is exercised.
func runFixture(t *testing.T, a *Analyzer, importPath, src string) []Finding {
	t.Helper()
	return Run([]*Package{loadFixture(t, importPath, src)}, []*Analyzer{a})
}

// partition splits findings into active and suppressed sets.
func partition(fs []Finding) (active, suppressed []Finding) {
	for _, f := range fs {
		if f.Suppressed {
			suppressed = append(suppressed, f)
		} else {
			active = append(active, f)
		}
	}
	return active, suppressed
}

func TestSuppressionDirectiveParsing(t *testing.T) {
	p := loadFixture(t, "repro/internal/fix", `package fix

//nebula:lint-ignore float-eq calibration constants are exact
var a = 1.5

// nebula:lint-ignore all legacy file
var b = 2.5
`)
	if got := len(p.suppressions["fixture.go"]); got != 2 {
		t.Fatalf("parsed %d directives, want 2", got)
	}
	if reason, ok := p.suppressedAt("float-eq", "fixture.go", 4); !ok || reason != "calibration constants are exact" {
		t.Fatalf("line-above suppression not found: %q %v", reason, ok)
	}
	// The "all" directive covers any rule on its own or the next line.
	if _, ok := p.suppressedAt("sync", "fixture.go", 7); !ok {
		t.Fatal("all-rule suppression not found")
	}
	// Unrelated rule/line combinations stay active.
	if _, ok := p.suppressedAt("sync", "fixture.go", 4); ok {
		t.Fatal("sync suppressed by a float-eq directive")
	}
	if _, ok := p.suppressedAt("float-eq", "fixture.go", 5); ok {
		t.Fatal("directive leaked two lines down")
	}
}

func TestReportTallies(t *testing.T) {
	findings := []Finding{
		{Rule: "float-eq", Severity: SeverityError},
		{Rule: "panic-audit", Severity: SeverityWarning},
		{Rule: "sync", Severity: SeverityError, Suppressed: true, SuppressReason: "justified"},
	}
	r := NewReport(findings)
	if r.Errors != 1 || r.Warnings != 1 || r.Suppressed != 1 {
		t.Fatalf("tallies %d/%d/%d, want 1/1/1", r.Errors, r.Warnings, r.Suppressed)
	}
	if ErrorCount(findings) != 1 {
		t.Fatalf("ErrorCount %d, want 1", ErrorCount(findings))
	}
}
