package lint

import (
	"go/ast"
	"go/types"
)

// SyncAnalyzer catches the two sync-package misuse patterns that have
// bitten simulator worker pools:
//
//   - wg.Add called inside the goroutine the WaitGroup is waiting for.
//     If the spawning loop reaches wg.Wait before the scheduler runs the
//     new goroutine, Wait observes a zero counter and returns early — the
//     classic lost-worker race. Add must happen before the go statement.
//   - sync.Mutex / RWMutex / WaitGroup / Once / Cond / Pool / Map passed,
//     returned or assigned by value. A copied lock guards nothing, and
//     copying a WaitGroup forks its counter; both misbehave only under
//     load. Flagged forms: bare (non-pointer) parameters and results, and
//     value assignments between variables of these types.
func SyncAnalyzer() *Analyzer {
	return &Analyzer{
		Name:     "sync",
		Doc:      "flag wg.Add inside spawned goroutines and by-value copies of sync types",
		Severity: SeverityError,
		Run:      runSync,
	}
}

func runSync(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.GoStmt:
				if fl, ok := v.Call.Fun.(*ast.FuncLit); ok {
					out = append(out, findAddInsideGoroutine(p, fl)...)
				}
			case *ast.FuncDecl:
				out = append(out, checkSyncValueParams(p, v.Type)...)
			case *ast.FuncLit:
				out = append(out, checkSyncValueParams(p, v.Type)...)
			case *ast.AssignStmt:
				out = append(out, checkSyncValueAssign(p, v)...)
			}
			return true
		})
	}
	return out
}

// findAddInsideGoroutine reports wg.Add calls lexically inside a goroutine
// body (nested go statements are checked when the walker reaches them).
func findAddInsideGoroutine(p *Package, fl *ast.FuncLit) []Finding {
	var out []Finding
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		tv, ok := p.Info.Types[sel.X]
		if !ok {
			return true
		}
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if namedSyncType(t) != "WaitGroup" {
			return true
		}
		out = append(out, findingAt(p.Fset, call.Pos(),
			"WaitGroup.Add inside the spawned goroutine; call Add before the go statement so Wait cannot observe a zero counter"))
		return true
	})
	return out
}

// checkSyncValueParams flags bare sync-type parameters and results.
func checkSyncValueParams(p *Package, ft *ast.FuncType) []Finding {
	var out []Finding
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := p.Info.Types[field.Type]
			if !ok {
				continue
			}
			if name := namedSyncType(tv.Type); name != "" {
				out = append(out, findingAt(p.Fset, field.Type.Pos(),
					"sync."+name+" "+kind+" passed by value copies its internal state; use a pointer"))
			}
		}
	}
	check(ft.Params, "parameter")
	check(ft.Results, "result")
	return out
}

// checkSyncValueAssign flags `a := b` / `a = b` where the right-hand side
// is a sync-type value read from another variable or field (composite
// literals initializing a fresh zero value are fine).
func checkSyncValueAssign(p *Package, as *ast.AssignStmt) []Finding {
	var out []Finding
	for i, rhs := range as.Rhs {
		switch rhs.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			continue // literals, calls, etc. construct new values
		}
		if i < len(as.Lhs) {
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				continue // blank discard does not produce a usable copy
			}
		}
		tv, ok := p.Info.Types[rhs]
		if !ok {
			continue
		}
		if name := namedSyncType(tv.Type); name != "" {
			out = append(out, findingAt(p.Fset, rhs.Pos(),
				"assignment copies a sync."+name+" by value; take a pointer to the original"))
		}
	}
	return out
}
