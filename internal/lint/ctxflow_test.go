package lint

import (
	"strings"
	"testing"
)

func TestCtxflowFirstParam(t *testing.T) {
	src := `package fix

import "context"

func Good(ctx context.Context, n int) {}

func Bad(n int, ctx context.Context) {}

func NoCtx(n int) {}
`
	fs := runFixture(t, CtxflowAnalyzer(), "repro/internal/fix", src)
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly the Bad signature", fs)
	}
	f := fs[0]
	if !strings.Contains(f.Message, "Bad takes a context.Context that is not the first parameter") {
		t.Errorf("message = %q", f.Message)
	}
	if f.Severity != SeverityError {
		t.Errorf("severity = %v, want error (hard rule)", f.Severity)
	}
}

func TestCtxflowNoFreshRoots(t *testing.T) {
	src := `package fix

import "context"

func root() {
	ctx := context.Background()
	_ = ctx
}

func todo() {
	_ = context.TODO()
}

func discards(ctx context.Context) {
	use(context.Background())
}

func use(ctx context.Context) {}

func waived() {
	//nebula:lint-ignore ctxflow fixture exercises suppression
	_ = context.Background()
}
`
	fs := runFixture(t, CtxflowAnalyzer(), "repro/internal/fix", src)
	active, suppressed := partition(fs)
	if len(active) != 3 {
		t.Fatalf("active = %v, want Background, TODO and the discards call", active)
	}
	if !strings.Contains(active[0].Message, "context.Background creates a fresh context root inside internal/") {
		t.Errorf("root message = %q", active[0].Message)
	}
	if !strings.Contains(active[1].Message, "context.TODO creates a fresh context root") {
		t.Errorf("todo message = %q", active[1].Message)
	}
	// With a ctx parameter in scope the message names the better fix.
	if !strings.Contains(active[2].Message, "discards the caller's deadline and cancellation; propagate discards's ctx parameter") {
		t.Errorf("discards message = %q", active[2].Message)
	}
	for _, f := range active {
		if f.Severity != SeverityError {
			t.Errorf("%q severity = %v, want error", f.Message, f.Severity)
		}
	}
	if len(suppressed) != 1 {
		t.Fatalf("suppressed = %v, want the waived Background", suppressed)
	}
}

func TestCtxflowPropagation(t *testing.T) {
	src := `package fix

import "context"

func callee(ctx context.Context, n int) {}

func Good(ctx context.Context) {
	callee(ctx, 1)
}

func Derived(ctx context.Context) {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	callee(child, 2)
}

func Stale(ctx context.Context, saved context.Context) {
	callee(saved, 3)
}
`
	fs := runFixture(t, CtxflowAnalyzer(), "repro/internal/fix", src)
	active, _ := partition(fs)
	if len(active) != 1 {
		t.Fatalf("active = %v, want only the stale propagation", active)
	}
	f := active[0]
	if !strings.Contains(f.Message, "context argument saved does not propagate the enclosing function's ctx parameter") {
		t.Errorf("message = %q", f.Message)
	}
	if f.Severity != SeverityWarning {
		t.Errorf("severity = %v, want warning (propagation is advisory)", f.Severity)
	}
}

func TestCtxflowScope(t *testing.T) {
	// Outside internal/ the analyzer stays silent.
	src := `package fix

import "context"

func Bad(n int, ctx context.Context) {
	_ = context.Background()
}
`
	if fs := runFixture(t, CtxflowAnalyzer(), "repro/pkg/fix", src); len(fs) != 0 {
		t.Errorf("findings outside internal/: %v", fs)
	}
	// main packages under internal/ (e.g. internal tools) are roots too.
	mainSrc := `package main

import "context"

func main() {
	_ = context.Background()
}
`
	if fs := runFixture(t, CtxflowAnalyzer(), "repro/internal/tool", mainSrc); len(fs) != 0 {
		t.Errorf("findings in a main package: %v", fs)
	}
}
