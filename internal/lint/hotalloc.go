package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The hotalloc analyzer proves the zero-allocation property of the
// engine's steady-state read path. Functions annotated with a
// //nebula:hotpath doc-comment directive are roots; the analyzer takes
// the transitive closure over the intra-module call graph and rejects
// allocation-inducing constructs anywhere in the closure: make/new,
// appends that can grow, slice and map composite literals,
// &T{...} heap literals, closures, boxing of concrete values into
// interface parameters, fmt.Sprint*/Errorf, and string concatenation
// inside loops.
//
// Real hot paths are not allocation-free in the naive syntactic sense,
// so three idioms are recognized as off the steady state:
//
//   - Cold exits. A return statement whose results carry a non-nil
//     error (directly or inside a call's result tuple) is an error
//     tail, and a panic call is an invariant failure; both terminate
//     the hot iteration, so the statement — including any fmt.Errorf
//     inside it — is skipped entirely, and calls made only there are
//     not pulled into the closure. //nebula:coldpath on (or directly
//     above) a statement marks other cold regions explicitly.
//   - Amortized growth guards. Inside the body of an if whose
//     condition consults len/cap or compares against nil, allocation
//     constructs are excused: "grow scratch when undersized" runs a
//     bounded number of times, not per iteration. The excuse covers
//     only the allocation constructs — calls made under a guard are
//     still pulled into the hot closure (the kernel-dispatch guard in
//     MACReadInto must not hide its callees).
//   - Recycled appends. append(x[:0], ...) and appends to a variable
//     previously reset with x = x[:0] reuse capacity and settle after
//     warm-up.
//
// Calls through interfaces and function values are not resolved by the
// call graph and therefore not checked (the documented callgraph.go
// boundary); keep hot paths monomorphic.

// HotpathDirective marks a function as a hot-path root in its doc
// comment.
const HotpathDirective = "nebula:hotpath"

// ColdpathDirective marks a statement (same line or line above) as off
// the steady-state path.
const ColdpathDirective = "nebula:coldpath"

// HotallocAnalyzer returns the hotalloc rule.
func HotallocAnalyzer() *Analyzer {
	return &Analyzer{
		Name:       "hotalloc",
		Doc:        "//nebula:hotpath closures must be free of allocation-inducing constructs",
		Severity:   SeverityError,
		RunProgram: runHotalloc,
	}
}

func runHotalloc(prog *Program) []Finding {
	var findings []Finding
	// Roots in deterministic (package, file, declaration) order.
	var queue []*FuncInfo
	root := map[*FuncInfo]string{}
	for _, p := range prog.Pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasDirective(fd.Doc, HotpathDirective) {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if fi := prog.Funcs[obj]; fi != nil {
					root[fi] = fi.Name()
					queue = append(queue, fi)
				}
			}
		}
	}
	coldLines := coldpathLines(prog)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		hc := &hotChecker{fn: fn, root: root[fn]}
		hc.analyze(coldLines[fn.Pkg])
		findings = append(findings, hc.findings...)
		for _, site := range fn.Callees {
			if hc.inCold(site.Call.Pos()) {
				continue
			}
			callee := site.Callee
			if _, seen := root[callee]; seen {
				continue
			}
			root[callee] = root[fn]
			queue = append(queue, callee)
		}
	}
	return findings
}

// coldpathLines indexes, per package and file, the lines carrying a
// //nebula:coldpath directive.
func coldpathLines(prog *Program) map[*Package]map[string]map[int]bool {
	out := map[*Package]map[string]map[int]bool{}
	for _, p := range prog.Pkgs {
		files := map[string]map[int]bool{}
		for _, file := range p.Files {
			fname := p.Fset.Position(file.Pos()).Filename
			lines := map[int]bool{}
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if hasDirective(&ast.CommentGroup{List: []*ast.Comment{c}}, ColdpathDirective) {
						lines[p.Fset.Position(c.Pos()).Line] = true
					}
				}
			}
			files[fname] = lines
		}
		out[p] = files
	}
	return out
}

// span is a source interval.
type span struct{ from, to token.Pos }

func (s span) contains(pos token.Pos) bool { return pos >= s.from && pos <= s.to }

func inSpans(spans []span, pos token.Pos) bool {
	for _, s := range spans {
		if s.contains(pos) {
			return true
		}
	}
	return false
}

// hotChecker analyzes one function of the hot closure.
type hotChecker struct {
	fn       *FuncInfo
	root     string
	findings []Finding

	cold    []span // skipped entirely: error tails, panics, //nebula:coldpath
	excused []span // growth-guard bodies: allocation constructs excused
	loops   []span // loop bodies: string concatenation banned here
}

func (hc *hotChecker) inCold(pos token.Pos) bool { return inSpans(hc.cold, pos) }

func (hc *hotChecker) analyze(coldFiles map[string]map[int]bool) {
	p := hc.fn.Pkg
	body := hc.fn.Decl.Body
	fname := p.Fset.Position(body.Pos()).Filename
	coldDirective := coldFiles[fname]

	// Pass 1: classify regions.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if hc.returnsError(n) {
				hc.cold = append(hc.cold, span{n.Pos(), n.End()})
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isBuiltinCall(p, call, "panic") {
				hc.cold = append(hc.cold, span{n.Pos(), n.End()})
			}
		case *ast.IfStmt:
			if isGrowthGuard(p, n) {
				hc.excused = append(hc.excused, span{n.Body.Pos(), n.Body.End()})
			}
		case *ast.ForStmt:
			hc.loops = append(hc.loops, span{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			hc.loops = append(hc.loops, span{n.Body.Pos(), n.Body.End()})
		}
		if stmt, ok := n.(ast.Stmt); ok && coldDirective != nil {
			line := p.Fset.Position(stmt.Pos()).Line
			if coldDirective[line] || coldDirective[line-1] {
				hc.cold = append(hc.cold, span{stmt.Pos(), stmt.End()})
			}
		}
		return true
	})

	// Pass 2: flag banned constructs outside cold regions, tracking
	// recycled-append destinations in source order.
	recycled := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if hc.inCold(n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			hc.noteRecycled(n, recycled)
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 &&
				typeIsString(p.Info.Types[n.Lhs[0]].Type) && inSpans(hc.loops, n.Pos()) {
				hc.flag(n.Pos(), "string concatenation in a loop reallocates every iteration")
			}
		case *ast.CallExpr:
			hc.checkCall(n, recycled)
		case *ast.CompositeLit:
			t := p.Info.Types[n].Type
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				if !inSpans(hc.excused, n.Pos()) {
					hc.flag(n.Pos(), "slice literal allocates")
				}
			case *types.Map:
				if !inSpans(hc.excused, n.Pos()) {
					hc.flag(n.Pos(), "map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && !inSpans(hc.excused, n.Pos()) {
					hc.flag(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.FuncLit:
			hc.flag(n.Pos(), "closure allocates; hoist the function or pass state explicitly")
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD && typeIsString(p.Info.Types[n.X].Type) && inSpans(hc.loops, n.Pos()) {
				hc.flag(n.Pos(), "string concatenation in a loop reallocates every iteration")
			}
		}
		return true
	})
}

// flag records one finding with hot-path provenance.
func (hc *hotChecker) flag(pos token.Pos, msg string) {
	prov := "declared //nebula:hotpath"
	if hc.root != hc.fn.Name() {
		prov = "hot via root " + hc.root
	}
	hc.findings = append(hc.findings, findingAt(hc.fn.Pkg.Fset, pos, fmt.Sprintf(
		"%s in hot function %s (%s)", msg, hc.fn.Name(), prov)))
}

// checkCall classifies one call expression on the hot path.
func (hc *hotChecker) checkCall(call *ast.CallExpr, recycled map[string]bool) {
	p := hc.fn.Pkg
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := p.Info.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "make":
				if !inSpans(hc.excused, call.Pos()) {
					hc.flag(call.Pos(), "make allocates")
				}
			case "new":
				if !inSpans(hc.excused, call.Pos()) {
					hc.flag(call.Pos(), "new allocates")
				}
			case "append":
				if !hc.appendIsRecycled(call, recycled) && !inSpans(hc.excused, call.Pos()) {
					hc.flag(call.Pos(), "append may grow its backing array; recycle with x = append(x[:0], ...) or guard the growth")
				}
			}
			return
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			if strings.HasPrefix(fn.Name(), "Sprint") || fn.Name() == "Errorf" {
				hc.flag(call.Pos(), "fmt."+fn.Name()+" allocates and boxes its operands")
				return
			}
		}
	}
	tv := p.Info.Types[call.Fun]
	if tv.Type == nil {
		return
	}
	if tv.IsType() {
		// Conversion: concrete → interface boxes.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && isConcrete(p.Info.Types[call.Args[0]].Type) {
			hc.flag(call.Pos(), "conversion boxes a concrete value into an interface")
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	hc.checkBoxing(call, sig)
}

// checkBoxing flags arguments that box concrete values into interface
// parameters, including variadic ...interface{} slots.
func (hc *hotChecker) checkBoxing(call *ast.CallExpr, sig *types.Signature) {
	p := hc.fn.Pkg
	params := sig.Params()
	if params == nil {
		return
	}
	fixed := params.Len()
	if sig.Variadic() {
		fixed--
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < fixed:
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if types.IsInterface(pt) && isConcrete(p.Info.Types[arg].Type) {
			hc.flag(arg.Pos(), "argument boxes a concrete value into an interface parameter")
		}
	}
}

// appendIsRecycled reports whether the append reuses capacity: its
// destination is x[:0] inline or a variable previously reset to [:0].
func (hc *hotChecker) appendIsRecycled(call *ast.CallExpr, recycled map[string]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	dst := ast.Unparen(call.Args[0])
	if isZeroReslice(dst) {
		return true
	}
	return recycled[types.ExprString(dst)]
}

// noteRecycled tracks recycled-append destinations: x = x[:0] and
// x = append(x[:0], ...) make x recycled, x = append(x, ...) keeps it,
// any other assignment clears it.
func (hc *hotChecker) noteRecycled(n *ast.AssignStmt, recycled map[string]bool) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, l := range n.Lhs {
		key := types.ExprString(ast.Unparen(l))
		r := ast.Unparen(n.Rhs[i])
		if s, ok := r.(*ast.SliceExpr); ok && isZeroReslice(s) && types.ExprString(ast.Unparen(s.X)) == key {
			recycled[key] = true
			continue
		}
		if call, ok := r.(*ast.CallExpr); ok && isBuiltinCall(hc.fn.Pkg, call, "append") && len(call.Args) > 0 {
			dst := ast.Unparen(call.Args[0])
			if s, ok := dst.(*ast.SliceExpr); ok && isZeroReslice(s) && types.ExprString(ast.Unparen(s.X)) == key {
				recycled[key] = true
				continue
			}
			if types.ExprString(dst) == key {
				continue // x = append(x, ...) keeps x's status
			}
		}
		delete(recycled, key)
	}
}

// isZeroReslice matches e[:0].
func isZeroReslice(e ast.Expr) bool {
	s, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || s.Low != nil || s.High == nil {
		return false
	}
	lit, ok := ast.Unparen(s.High).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// returnsError reports whether a return statement carries a non-nil
// error, directly or inside a call's result tuple — the error-tail
// pattern that terminates a hot iteration.
func (hc *hotChecker) returnsError(ret *ast.ReturnStmt) bool {
	p := hc.fn.Pkg
	for _, r := range ret.Results {
		tv := p.Info.Types[r]
		if tv.Type == nil {
			continue
		}
		if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, isNil := ast.Unparen(r).(*ast.Ident); isNil && types.ExprString(ast.Unparen(r)) == "nil" {
			continue
		}
		if typeCarriesError(tv.Type) {
			return true
		}
	}
	return false
}

// typeCarriesError reports whether t is error or a tuple containing
// error.
func typeCarriesError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if typeCarriesError(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isGrowthGuard reports whether an if condition consults len/cap or a
// nil comparison — the amortized grow-on-demand idiom.
func isGrowthGuard(p *Package, n *ast.IfStmt) bool {
	guard := false
	check := func(e ast.Expr) {
		ast.Inspect(e, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.CallExpr:
				if isBuiltinCall(p, x, "len") || isBuiltinCall(p, x, "cap") {
					guard = true
				}
			case *ast.BinaryExpr:
				if isNilIdent(x.X) || isNilIdent(x.Y) {
					guard = true
				}
			}
			return true
		})
	}
	check(n.Cond)
	return guard
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isBuiltinCall reports whether the call invokes the named builtin.
func isBuiltinCall(p *Package, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isConcrete reports whether t is a concrete (boxable) type: not an
// interface, not untyped nil.
func isConcrete(t types.Type) bool {
	if t == nil || types.IsInterface(t) {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// typeIsString reports whether t's underlying type is string.
func typeIsString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
