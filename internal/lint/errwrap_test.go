package lint

import "testing"

func TestErrwrapFlagsValueVerbs(t *testing.T) {
	src := `package sessions

import "fmt"

func compile(name string, cause error) error {
	return fmt.Errorf("compile %s: %v", name, cause)
}

func load(path string, err error) error {
	return fmt.Errorf("load %q: %s", path, err)
}

func quote(err error) error {
	return fmt.Errorf("cause was %q", err)
}
`
	active, _ := partition(runFixture(t, ErrwrapAnalyzer(), "repro/internal/sessions", src))
	if len(active) != 3 {
		t.Fatalf("findings %d, want 3: %+v", len(active), active)
	}
	for _, f := range active {
		if f.Severity != SeverityError {
			t.Fatalf("errwrap finding not error severity: %+v", f)
		}
	}
}

func TestErrwrapAllowedForms(t *testing.T) {
	// The typed-chain contract of the session API: %w keeps errors.As
	// working; flattening via err.Error() is visible and deliberate; and
	// non-error arguments under %v are fine.
	src := `package sessions

import "fmt"

func wrap(mode string, cause error) error {
	return fmt.Errorf("compile %s session: %w", mode, cause)
}

func flatten(cause error) error {
	return fmt.Errorf("summary only: %s", cause.Error())
}

func values(n int, name string) error {
	return fmt.Errorf("stage %d (%v) does not fit", n, name)
}

func dynamic(format string, cause error) error {
	return fmt.Errorf(format, cause) // dynamic format: not analyzable
}
`
	active, _ := partition(runFixture(t, ErrwrapAnalyzer(), "repro/internal/sessions", src))
	if len(active) != 0 {
		t.Fatalf("false positives: %+v", active)
	}
}

func TestErrwrapStarAndIndexedVerbs(t *testing.T) {
	// Width * consumes an argument; explicit %[n]v indexes must map to
	// the right operand.
	src := `package sessions

import "fmt"

func widths(pad int, err error) error {
	return fmt.Errorf("%*d oops %v", pad, 7, err)
}

func indexed(err error, name string) error {
	return fmt.Errorf("%[2]s failed: %[1]v", err, name)
}
`
	active, _ := partition(runFixture(t, ErrwrapAnalyzer(), "repro/internal/sessions", src))
	if len(active) != 2 {
		t.Fatalf("findings %d, want 2 (the %%v in widths, the %%[1]v in indexed): %+v", len(active), active)
	}
}

func TestErrwrapSuppression(t *testing.T) {
	src := `package sessions

import "fmt"

func report(err error) error {
	//nebula:lint-ignore errwrap user-facing summary must not expose the chain
	return fmt.Errorf("run failed: %v", err)
}
`
	active, suppressed := partition(runFixture(t, ErrwrapAnalyzer(), "repro/internal/sessions", src))
	if len(active) != 0 || len(suppressed) != 1 {
		t.Fatalf("active %d suppressed %d, want 0/1", len(active), len(suppressed))
	}
}
