package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file builds the module-wide view behind the flow-sensitive
// analyzers (genstamp, hotalloc): a Program bundling every loaded
// package with a lightweight intra-module static call graph. The graph
// is deliberately simple — it resolves only direct calls to named
// functions and methods (through go/types object identity, which the
// loader preserves across packages by memoizing type-checked imports).
// Calls through interfaces, function values and builtins are not
// resolved; analyzers that consume the graph document that boundary.

// CallSite is one statically resolved call inside a function body.
type CallSite struct {
	// Callee is the resolved target.
	Callee *FuncInfo
	// Call is the call expression at the site.
	Call *ast.CallExpr
}

// FuncInfo is one function or method declaration of the module.
type FuncInfo struct {
	// Obj is the type-checker object of the declaration.
	Obj *types.Func
	// Decl is the AST declaration (always with a body; bodyless
	// declarations are not registered).
	Decl *ast.FuncDecl
	// Pkg is the package the declaration lives in.
	Pkg *Package
	// Callees lists the statically resolved intra-module calls made by
	// the body, in source order.
	Callees []CallSite
}

// Name returns the qualified name package.Func or package.Type.Method.
func (f *FuncInfo) Name() string {
	name := f.Obj.Name()
	if recv := f.Obj.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name() + "." + name
		}
	}
	return f.Pkg.Path + "." + name
}

// Program is the whole-module view handed to flow analyzers: every
// loaded package plus the intra-module call graph over their function
// declarations.
type Program struct {
	// Pkgs holds the loaded packages, sorted by import path.
	Pkgs []*Package
	// Funcs indexes every function/method declaration by its
	// type-checker object.
	Funcs map[*types.Func]*FuncInfo

	byFile map[string]*Package // filename -> owning package
}

// NewProgram builds the call graph over the given packages. Packages
// must come from one Loader (or share a FileSet) so cross-package
// object identity holds.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:   append([]*Package(nil), pkgs...),
		Funcs:  map[*types.Func]*FuncInfo{},
		byFile: map[string]*Package{},
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	// Pass 1: register declarations.
	for _, p := range prog.Pkgs {
		for _, file := range p.Files {
			prog.byFile[p.Fset.Position(file.Pos()).Filename] = p
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				prog.Funcs[obj] = &FuncInfo{Obj: obj, Decl: fd, Pkg: p}
			}
		}
	}
	// Pass 2: resolve call sites against the registered declarations.
	for _, fn := range prog.Funcs {
		fn := fn
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := prog.calleeOf(fn.Pkg, call); callee != nil {
				fn.Callees = append(fn.Callees, CallSite{Callee: callee, Call: call})
			}
			return true
		})
	}
	return prog
}

// PackageFor returns the package owning the given file, or nil.
func (prog *Program) PackageFor(file string) *Package {
	return prog.byFile[file]
}

// calleeOf resolves the static target of a call within pkg, returning
// nil for builtins, conversions, function values, interface dispatch
// and out-of-module targets.
func (prog *Program) calleeOf(p *Package, call *ast.CallExpr) *FuncInfo {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		// Method call or package-qualified function: both resolve
		// through the selector identifier. For method values reached
		// through embedding the selection carries the real target.
		if sel, ok := p.Info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = p.Info.Uses[fun.Sel]
		}
	default:
		return nil
	}
	f, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return prog.Funcs[f]
}

// receiverObj returns the object of a method's receiver variable, or
// nil for free functions and anonymous receivers.
func receiverObj(p *Package, decl *ast.FuncDecl) types.Object {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	return p.Info.Defs[decl.Recv.List[0].Names[0]]
}

// receiverNamed returns the named type a method declaration is bound
// to, looking through one pointer.
func receiverNamed(p *Package, decl *ast.FuncDecl) *types.Named {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return nil
	}
	t := p.Info.Types[decl.Recv.List[0].Type].Type
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
