package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsguardAnalyzer flags ambient console output in internal/ packages:
// fmt.Print/Printf/Println and the log package's Print/Fatal/Panic
// families. Library code must report through returned errors and the
// internal/obs recorders; writing to the process's stdout or stderr from
// inside the simulator corrupts the machine-readable exports (JSON
// snapshots, Prometheus text, BENCH_*.json) the CI gates diff byte for
// byte. Commands under cmd/ own the console and are exempt, as is
// internal/lint itself, whose fixtures and reporters deal in diagnostics
// by design.
func ObsguardAnalyzer() *Analyzer {
	return &Analyzer{
		Name:     "obsguard",
		Doc:      "flag fmt/log console printing inside internal/ packages",
		Severity: SeverityError,
		Run:      runObsguard,
	}
}

func runObsguard(p *Package) []Finding {
	if !pathIsInternal(p.Path) || strings.HasPrefix(p.Path, "repro/internal/lint") {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, bad := ambientPrint(p, call); bad {
				out = append(out, findingAt(p.Fset, call.Pos(),
					name+" writes to the ambient console from library code; return an error or record through internal/obs"))
			}
			return true
		})
	}
	return out
}

// ambientPrint reports whether the call is a package-level fmt print or
// log call that targets the process console, plus its printable name.
// fmt.Fprint* is allowed: it targets an explicit writer chosen by the
// caller, which is how the exporters themselves are built.
func ambientPrint(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkg, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	switch pkg.Imported().Path() {
	case "fmt":
		if strings.HasPrefix(name, "Print") {
			return "fmt." + name, true
		}
	case "log":
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fatal") ||
			strings.HasPrefix(name, "Panic") {
			return "log." + name, true
		}
	}
	return "", false
}
