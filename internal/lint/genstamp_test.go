package lint

import (
	"strings"
	"testing"
)

// genstampFixture is a stamped type exercising the core flow cases:
// dominated writes, undominated writes, branch/loop/switch merges, the
// alwaysInvalidates helper pattern and exempt fields/methods.
const genstampFixture = `package fix

type Dev struct {
	gen uint64
	w   []float64
	m   map[string]int
	//nebula:genstamp-exempt activity counter, not read-visible
	hits int
}

func (d *Dev) invalidate() { d.gen++ }

// stamp always invalidates on every return, like writeDevice.
func (d *Dev) stamp() {
	d.invalidate()
}

func (d *Dev) Good(i int, v float64) {
	d.invalidate()
	d.w[i] = v
}

func (d *Dev) ViaHelper(v float64) {
	d.stamp()
	d.w[0] = v
}

func (d *Dev) Bad(i int, v float64) {
	d.w[i] = v
}

func (d *Dev) BothBranches(ok bool, v float64) {
	if ok {
		d.invalidate()
	} else {
		d.invalidate()
	}
	d.w[0] = v
}

func (d *Dev) OneBranch(ok bool, v float64) {
	if ok {
		d.invalidate()
	}
	d.w[0] = v
}

func (d *Dev) EarlyReturn(ok bool, v float64) {
	if !ok {
		return
	}
	d.invalidate()
	d.w[0] = v
}

func (d *Dev) InLoop(vs []float64) {
	d.invalidate()
	for i, v := range vs {
		d.w[i] = v
	}
}

func (d *Dev) SwitchDefault(k int, v float64) {
	switch k {
	case 0:
		d.invalidate()
	default:
		d.invalidate()
	}
	d.w[0] = v
}

func (d *Dev) SwitchNoDefault(k int, v float64) {
	switch k {
	case 0:
		d.invalidate()
	case 1:
		d.invalidate()
	}
	d.w[0] = v
}

func (d *Dev) CountHit() {
	d.hits++
}

//nebula:genstamp-exempt lazy allocation, read results unchanged
func (d *Dev) ensure() {
	if d.m == nil {
		d.m = map[string]int{}
	}
}

// plain has a gen field but no invalidate method: not stamped, writes
// are unchecked.
type plain struct {
	gen uint64
	buf []float64
}

func (p *plain) Set(v float64) { p.buf[0] = v }
`

func genstampFindingsByFunc(t *testing.T, src string) (active, suppressed map[string]int) {
	t.Helper()
	fs := runFixture(t, GenstampAnalyzer(), "repro/internal/fix", src)
	active, suppressed = map[string]int{}, map[string]int{}
	for _, f := range fs {
		// Messages carry "Dev.<Method> writes device field ...".
		name := f.Message[:strings.Index(f.Message, " writes")]
		if f.Suppressed {
			suppressed[name]++
		} else {
			active[name]++
		}
		if f.Severity != SeverityError {
			t.Errorf("%s: severity %v, want error", name, f.Severity)
		}
	}
	return active, suppressed
}

func TestGenstampFlow(t *testing.T) {
	active, _ := genstampFindingsByFunc(t, genstampFixture)
	wantClean := []string{"Dev.Good", "Dev.ViaHelper", "Dev.BothBranches", "Dev.EarlyReturn",
		"Dev.InLoop", "Dev.SwitchDefault", "Dev.CountHit", "Dev.ensure", "plain.Set"}
	for _, name := range wantClean {
		if active[name] != 0 {
			t.Errorf("%s flagged %d times, want clean", name, active[name])
		}
	}
	wantFlagged := []string{"Dev.Bad", "Dev.OneBranch", "Dev.SwitchNoDefault"}
	for _, name := range wantFlagged {
		if active[name] != 1 {
			t.Errorf("%s flagged %d times, want 1", name, active[name])
		}
	}
	if total := len(wantFlagged); len(active) != total {
		t.Errorf("active findings for %v, want exactly %v", active, wantFlagged)
	}
}

func TestGenstampSurvey(t *testing.T) {
	p := loadFixture(t, "repro/internal/fix", genstampFixture)
	survey := MutatorSurvey(NewProgram([]*Package{p}))
	got, ok := survey["repro/internal/fix.Dev"]
	if !ok {
		t.Fatalf("survey %v missing stamped type Dev", survey)
	}
	// Every method writing d.w is a mutator; exempt-field and
	// exempt-method writes are not; plain is not stamped at all.
	want := []string{"Bad", "BothBranches", "EarlyReturn", "Good", "InLoop",
		"OneBranch", "SwitchDefault", "SwitchNoDefault", "ViaHelper"}
	if len(got) != len(want) {
		t.Fatalf("survey = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("survey = %v, want %v", got, want)
		}
	}
	if _, ok := survey["repro/internal/fix.plain"]; ok {
		t.Error("plain (no invalidate method) surveyed as a stamped type")
	}
}

func TestGenstampAliasAndEscape(t *testing.T) {
	src := `package fix

func sink(p *[]float64) {}

type Dev struct {
	gen uint64
	w   []float64
}

func (d *Dev) invalidate() { d.gen++ }

func (d *Dev) AliasWrite(v float64) {
	w := d.w
	w[0] = v
}

func (d *Dev) AliasCovered(v float64) {
	w := d.w
	d.invalidate()
	w[0] = v
}

func (d *Dev) Escape() {
	sink(&d.w)
}

func (d *Dev) EscapeCovered() {
	d.invalidate()
	sink(&d.w)
}

func (d *Dev) ScalarCopy() float64 {
	v := d.w[0]
	v = v * 2
	return v
}
`
	active, _ := genstampFindingsByFunc(t, src)
	for _, name := range []string{"Dev.AliasWrite", "Dev.Escape"} {
		if active[name] != 1 {
			t.Errorf("%s flagged %d times, want 1", name, active[name])
		}
	}
	for _, name := range []string{"Dev.AliasCovered", "Dev.EscapeCovered", "Dev.ScalarCopy"} {
		if active[name] != 0 {
			t.Errorf("%s flagged %d times, want clean", name, active[name])
		}
	}
}

func TestGenstampTransitiveSurveyAndSuppression(t *testing.T) {
	src := `package fix

type Dev struct {
	gen uint64
	w   []float64
}

func (d *Dev) invalidate() { d.gen++ }

func (d *Dev) Bad(v float64) {
	d.w[0] = v
}

// Wrap writes only through Bad: a transitive mutator.
func (d *Dev) Wrap() {
	d.Bad(1)
}

func (d *Dev) Waived(v float64) {
	//nebula:lint-ignore genstamp fixture exercises suppression
	d.w[0] = v
}
`
	fs := runFixture(t, GenstampAnalyzer(), "repro/internal/fix", src)
	active, suppressed := partition(fs)
	if len(active) != 1 || !strings.Contains(active[0].Message, "Dev.Bad") {
		t.Fatalf("active = %v, want one Dev.Bad finding", active)
	}
	if len(suppressed) != 1 || !strings.Contains(suppressed[0].Message, "Dev.Waived") {
		t.Fatalf("suppressed = %v, want one Dev.Waived finding", suppressed)
	}
	p := loadFixture(t, "repro/internal/fix", src)
	survey := MutatorSurvey(NewProgram([]*Package{p}))
	got := survey["repro/internal/fix.Dev"]
	want := []string{"Bad", "Waived", "Wrap"}
	if len(got) != len(want) {
		t.Fatalf("survey = %v, want %v (Wrap mutates transitively)", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("survey = %v, want %v", got, want)
		}
	}
}
