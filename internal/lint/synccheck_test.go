package lint

import "testing"

func TestSyncFlagsAddInsideGoroutineAndValueCopies(t *testing.T) {
	src := `package pool

import "sync"

func Spawn(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // racy: Wait may run before the scheduler gets here
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func TakeLock(mu sync.Mutex) { // bare parameter: copies the lock
	mu.Lock()
	defer mu.Unlock()
}

func Fork(wg sync.WaitGroup) sync.WaitGroup { // parameter and result
	return wg
}

func Alias(mu *sync.Mutex) {
	local := *mu // value assignment copies lock state
	local.Lock()
}
`
	active, _ := partition(runFixture(t, SyncAnalyzer(), "repro/internal/pool", src))
	if len(active) != 5 {
		t.Fatalf("findings %d, want 5 (Add-in-goroutine, 3 bare params/results, 1 copy): %+v", len(active), active)
	}
}

func TestSyncCorrectPoolShapePasses(t *testing.T) {
	src := `package pool

import "sync"

func Spawn(n int) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			total += i
			mu.Unlock()
		}(i)
	}
	wg.Wait()
}

func WithPtr(wg *sync.WaitGroup, mu *sync.Mutex) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		mu.Lock()
		defer mu.Unlock()
	}()
}
`
	if fs := runFixture(t, SyncAnalyzer(), "repro/internal/pool", src); len(fs) != 0 {
		t.Fatalf("correct pool shape should pass, got %+v", fs)
	}
}

func TestSyncSuppressedFinding(t *testing.T) {
	src := `package pool

import "sync"

func Snapshot(o sync.Once) bool { //nebula:lint-ignore sync diagnostic read of a settled Once
	_ = o
	return true
}
`
	active, suppressed := partition(runFixture(t, SyncAnalyzer(), "repro/internal/pool", src))
	if len(active) != 0 || len(suppressed) != 1 {
		t.Fatalf("active %d suppressed %d, want 0/1: %+v", len(active), len(suppressed), active)
	}
}
