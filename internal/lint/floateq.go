package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEqAnalyzer flags == and != between floating-point operands.
// Accumulated rounding error makes exact equality between computed floats
// order-sensitive, which breaks when evaluation order changes (e.g. a
// worker count changes the reduction order) — the same class of bug the
// determinism rule exists to prevent. Comparisons where one side is an
// exact zero literal are allowed: zero is exactly representable and such
// comparisons are the conventional divide-by-zero / dead-stage guards.
// Test files are not checked.
func FloatEqAnalyzer() *Analyzer {
	return &Analyzer{
		Name:     "float-eq",
		Doc:      "flag ==/!= between floating-point operands (zero-literal guards exempt)",
		Severity: SeverityError,
		Run:      runFloatEq,
	}
}

func runFloatEq(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := p.Info.Types[be.X], p.Info.Types[be.Y]
			if !typeIsFloat(xt.Type) && !typeIsFloat(yt.Type) {
				return true
			}
			if isExactZero(xt) || isExactZero(yt) {
				return true
			}
			out = append(out, findingAt(p.Fset, be.OpPos,
				"floating-point "+be.Op.String()+" comparison; use an epsilon or restructure (exact equality is rounding-order dependent)"))
			return true
		})
	}
	return out
}

// isExactZero reports whether the operand is a compile-time constant equal
// to zero (exactly representable, so == 0 guards are sound).
func isExactZero(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0
}
