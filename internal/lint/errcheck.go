package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrcheckAnalyzer flags statements in cmd/ and internal/ that call a
// function returning an error and drop the result on the floor. An
// explicit `_ =` assignment is treated as an intentional, visible discard
// and is not flagged; neither are deferred calls (the deferred-Close
// idiom) or go statements. A small whitelist covers calls that cannot
// meaningfully fail: the fmt print family and the in-memory writers
// bytes.Buffer / strings.Builder, whose error results are documented to
// be always nil.
func ErrcheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name:     "errcheck",
		Doc:      "flag discarded error returns in cmd/ and internal/",
		Severity: SeverityError,
		Run:      runErrcheck,
	}
}

func runErrcheck(p *Package) []Finding {
	if !pathIsInternal(p.Path) && !pathIsCmd(p.Path) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, drops := dropsError(p, call); drops && !errWhitelisted(p, call) {
				out = append(out, findingAt(p.Fset, call.Pos(),
					name+" returns an error that is discarded; handle it or assign to _ explicitly"))
			}
			return true
		})
	}
	return out
}

// dropsError reports whether the call returns at least one error that the
// enclosing expression statement discards, plus a printable callee name.
func dropsError(p *Package, call *ast.CallExpr) (string, bool) {
	tv, ok := p.Info.Types[call.Fun]
	if !ok {
		return "", false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return "", false // conversion or builtin
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return calleeName(call), true
		}
	}
	return "", false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errWhitelisted reports whether the callee's error result is documented
// to always be nil (fmt printing, in-memory writers).
func errWhitelisted(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-level fmt.Print / Printf / Println / Fprint* calls.
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj, ok := p.Info.Uses[id].(*types.PkgName); ok && obj.Imported().Path() == "fmt" {
			return strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")
		}
	}
	// Methods on *bytes.Buffer and *strings.Builder.
	if selInfo, ok := p.Info.Selections[sel]; ok {
		recv := selInfo.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
			full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if full == "bytes.Buffer" || full == "strings.Builder" {
				return true
			}
		}
	}
	return false
}

// calleeName renders the called function for the finding message.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
