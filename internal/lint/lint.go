// Package lint implements nebula-lint, a repo-specific static-analysis
// suite enforcing the simulator's reproducibility and robustness
// invariants. It is built only on the standard library (go/parser, go/ast,
// go/types) so the module stays dependency-free.
//
// The suite currently enforces ten rules:
//
//   - determinism: internal packages other than internal/rng must not
//     import math/rand (or math/rand/v2) or read the wall clock via
//     time.Now/time.Since/time.Until. All randomness flows through the
//     seeded internal/rng package so experiments replay bit-for-bit.
//   - float-eq: == and != between floating-point operands are flagged
//     outside test files (comparisons against an exact zero literal are
//     permitted as divide-by-zero guards).
//   - panic-audit: panic calls in library (non-main) packages are
//     reported and ranked unless they are recognized invariant-violation
//     forms (Must* helpers, or messages naming an invariant/unreachable
//     state/internal error). Panics inside internal/reliability escalate
//     to error severity: fault-handling code must return errors (the
//     DegradedError path), never panic.
//   - errcheck: call statements in cmd/ and internal/ that discard a
//     returned error are flagged, with a small whitelist for fmt printing
//     and in-memory writers that cannot fail.
//   - errwrap: fmt.Errorf calls that format an error-typed argument with
//     %v, %s or %q instead of %w are flagged — a value verb flattens the
//     cause and severs the errors.Is/errors.As chain the typed session
//     errors (CompileError → DegradedError) rely on.
//   - sync: sync.Mutex/RWMutex/WaitGroup/Once/Cond values that are copied
//     (bare parameters, results, assignments) and wg.Add calls issued
//     inside the spawned goroutine instead of before the go statement.
//   - obsguard: fmt.Print* and log.Print*/Fatal*/Panic* calls inside
//     internal/ packages (internal/lint excepted) are errors — library
//     code reports through returned errors and internal/obs recorders,
//     never by writing to the ambient console, so the machine-readable
//     exports the CI gates diff stay byte-clean.
//   - genstamp: on any type carrying a kernel generation field (a `gen`
//     counter plus an `invalidate` method, e.g. crossbar.Crossbar),
//     every method that writes device state — field or element
//     assignment, directly or through same-type callees — must call
//     invalidate() on every path before the write. Fields and methods
//     outside the read-visible contract are declared with
//     //nebula:genstamp-exempt. See genstamp.go.
//   - hotalloc: functions annotated //nebula:hotpath, and everything
//     they transitively call within the module, may not contain
//     allocation-inducing constructs (make, growing append, slice/map
//     literals, closures, interface boxing, fmt.Sprint*, string
//     concatenation in loops). Amortized grow-on-demand guards and
//     terminating error/panic paths are recognized as off the
//     steady-state path; //nebula:coldpath marks the rest. See
//     hotalloc.go.
//   - ctxflow: inside internal/ packages context.Context must be the
//     first parameter, and context.Background()/context.TODO() are
//     banned — contexts enter at roots (cmd/, examples, tests) and are
//     threaded down. See ctxflow.go.
//
// The first seven rules are per-package and purely syntax/type driven;
// the last three are flow analyses over the module-wide call graph
// built by NewProgram (callgraph.go).
//
// Any finding can be suppressed with a justification comment on the same
// line or the line directly above it:
//
//	//nebula:lint-ignore <rule> <reason>
//
// Suppressed findings are retained in the JSON report (Suppressed: true)
// but do not affect the exit status.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity classifies how a finding affects the lint exit status.
type Severity int

const (
	// SeverityWarning findings are reported but do not fail the gate.
	SeverityWarning Severity = iota
	// SeverityError findings fail the gate unless suppressed.
	SeverityError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == SeverityError {
		return "error"
	}
	return "warning"
}

// MarshalJSON encodes the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	// Rule is the analyzer name (e.g. "determinism").
	Rule string `json:"rule"`
	// Package is the import path of the package the finding is in.
	Package string `json:"package"`
	// File, Line and Col locate the finding.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message describes the violation.
	Message  string   `json:"message"`
	Severity Severity `json:"severity"`
	// Suppressed marks findings covered by a //nebula:lint-ignore
	// directive; SuppressReason carries the justification text.
	Suppressed     bool   `json:"suppressed,omitempty"`
	SuppressReason string `json:"suppressReason,omitempty"`
}

// Position renders the file:line:col anchor of the finding.
func (f Finding) Position() string {
	return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col)
}

// Package is one type-checked package presented to analyzers.
type Package struct {
	// Path is the import path (e.g. "repro/internal/convert").
	Path string
	// Dir is the directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// Types and Info hold the go/types results. Info is always non-nil;
	// Types may be nil if type checking failed catastrophically.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker diagnostics (analysis proceeds on
	// partial information).
	TypeErrors []error

	suppressions map[string][]suppression // file -> directives
}

// IsMain reports whether the package is a command (package main).
func (p *Package) IsMain() bool {
	return len(p.Files) > 0 && p.Files[0].Name.Name == "main"
}

// Analyzer is one lint rule. Exactly one of Run and RunProgram is set:
// Run rules inspect packages independently, RunProgram rules see the
// whole module at once (with its call graph) for inter-procedural flow
// analysis.
type Analyzer struct {
	// Name is the rule name used in reports and suppression directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Severity is applied to every finding the rule emits.
	Severity Severity
	// Run inspects one package and returns raw findings. The driver fills
	// in Rule/Severity/Package and resolves suppressions.
	Run func(p *Package) []Finding
	// RunProgram inspects the whole module. Findings are attributed to
	// packages by file; the driver resolves suppressions the same way.
	RunProgram func(prog *Program) []Finding
}

// Analyzers returns the full nebula-lint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		FloatEqAnalyzer(),
		PanicAuditAnalyzer(),
		ErrcheckAnalyzer(),
		ErrwrapAnalyzer(),
		SyncAnalyzer(),
		ObsguardAnalyzer(),
		GenstampAnalyzer(),
		HotallocAnalyzer(),
		CtxflowAnalyzer(),
	}
}

// AnalyzerNames returns the rule names of the full suite, in order.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Run applies every analyzer to every package and returns findings sorted
// by file, line and rule. Suppression directives are resolved here so
// analyzers never need to consult comments. The module-wide Program for
// flow analyzers is built once and shared.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram != nil {
			prog = NewProgram(pkgs)
			break
		}
	}
	var out []Finding
	finalize := func(a *Analyzer, p *Package, f Finding) Finding {
		f.Rule = a.Name
		// The analyzer's severity is a floor: a rule may escalate
		// individual findings (e.g. panic-audit inside the
		// reliability subsystem) but never emit below its level.
		if a.Severity > f.Severity {
			f.Severity = a.Severity
		}
		if p != nil {
			f.Package = p.Path
			if reason, ok := p.suppressedAt(a.Name, f.File, f.Line); ok {
				f.Suppressed = true
				f.SuppressReason = reason
			}
		}
		return f
	}
	for _, p := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			for _, f := range a.Run(p) {
				out = append(out, finalize(a, p, f))
			}
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		for _, f := range a.RunProgram(prog) {
			out = append(out, finalize(a, prog.PackageFor(f.File), f))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// ErrorCount returns the number of unsuppressed error-severity findings —
// the quantity that decides the gate's exit status.
func ErrorCount(findings []Finding) int {
	n := 0
	for _, f := range findings {
		if f.Severity == SeverityError && !f.Suppressed {
			n++
		}
	}
	return n
}

// suppression is one parsed //nebula:lint-ignore directive.
type suppression struct {
	rule   string // rule name, or "all"
	reason string
	line   int // line the directive appears on
}

// IgnoreDirective is the comment prefix that suppresses a finding.
const IgnoreDirective = "nebula:lint-ignore"

// collectSuppressions scans a file's comments for ignore directives.
func collectSuppressions(fset *token.FileSet, file *ast.File) []suppression {
	var out []suppression
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, IgnoreDirective) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, IgnoreDirective))
			rule, reason := rest, ""
			if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
				rule, reason = rest[:sp], strings.TrimSpace(rest[sp:])
			}
			if rule == "" {
				continue
			}
			out = append(out, suppression{
				rule:   rule,
				reason: reason,
				line:   fset.Position(c.Pos()).Line,
			})
		}
	}
	return out
}

// suppressedAt reports whether a directive for rule covers file:line. A
// directive applies to its own line and the line directly below it (the
// standalone-comment-above-the-statement form).
func (p *Package) suppressedAt(rule, file string, line int) (string, bool) {
	for _, s := range p.suppressions[file] {
		if s.rule != rule && s.rule != "all" {
			continue
		}
		if s.line == line || s.line == line-1 {
			return s.reason, true
		}
	}
	return "", false
}

// pathIsInternal reports whether the package lives under internal/ of the
// repo module (any depth).
func pathIsInternal(path string) bool {
	return strings.Contains(path, "/internal/") || strings.HasSuffix(path, "/internal")
}

// pathIsCmd reports whether the package lives under cmd/.
func pathIsCmd(path string) bool {
	return strings.Contains(path, "/cmd/")
}

// typeIsFloat reports whether t's underlying type is a floating-point
// scalar (or untyped float constant).
func typeIsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}

// namedSyncType returns the sync package type name ("Mutex", ...) if t is
// one of the by-value-unsafe sync types, or "" otherwise.
func namedSyncType(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
		return obj.Name()
	}
	return ""
}

// findingAt builds a position-filled finding for the driver to complete.
func findingAt(fset *token.FileSet, pos token.Pos, msg string) Finding {
	position := fset.Position(pos)
	return Finding{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: msg,
	}
}
