package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// PanicAuditAnalyzer reports panic calls in library (non-main) packages.
// A library panic turns a recoverable input problem into a process kill
// for every caller, so new ones should be error returns. Recognized
// invariant-violation forms are allowed without annotation:
//
//   - panics inside functions named Must* / must* (the conventional
//     panic-on-error wrappers);
//   - panics whose message (string literal, named string constant, or
//     fmt.Sprintf format) names an internal contract: it contains
//     "invariant", "unreachable", "internal error", "corrupt", or
//     "must " / "must:" phrasing;
//   - re-panics of a recovered value (panic(r) inside a recover branch is
//     matched textually as panic of a bare identifier assigned from
//     recover()).
//
// Everything else is reported at warning severity — the tool emits a
// ranked per-package report rather than failing the gate — so the
// inventory stays visible while conversions to error returns proceed
// incrementally. Individual sites that are genuine invariant checks but
// do not match the recognized forms should be annotated:
//
//	//nebula:lint-ignore panic-audit <why this is an invariant>
//
// One exception is escalated to error severity and fails the gate: panics
// inside the reliability subsystem (internal/reliability). Fault handling
// exists precisely to survive bad hardware, so it must degrade gracefully
// — exhausted mitigation is reported by returning *reliability.DegradedError
// up through the chip run, never by killing the process.
func PanicAuditAnalyzer() *Analyzer {
	return &Analyzer{
		Name:     "panic-audit",
		Doc:      "rank panic sites in library packages; recognized invariant forms exempt",
		Severity: SeverityWarning,
		Run:      runPanicAudit,
	}
}

// isReliabilityPath reports whether a package belongs to the reliability
// subsystem, where panic-audit findings escalate to gate failures.
func isReliabilityPath(path string) bool {
	return strings.Contains(path, "internal/reliability")
}

// invariantMarkers are message fragments that mark a panic as an
// intentional internal-contract check.
var invariantMarkers = []string{
	"invariant", "unreachable", "internal error", "corrupt", "must ", "must:",
}

func runPanicAudit(p *Package) []Finding {
	if p.IsMain() {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		// Track the enclosing function name while walking.
		var walk func(n ast.Node, fn string)
		walk = func(n ast.Node, fn string) {
			ast.Inspect(n, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.FuncDecl:
					if v.Body != nil {
						walk(v.Body, v.Name.Name)
					}
					return false
				case *ast.CallExpr:
					id, ok := v.Fun.(*ast.Ident)
					if !ok || id.Name != "panic" || len(v.Args) != 1 {
						return true
					}
					if obj := p.Info.Uses[id]; obj != nil && obj != types.Universe.Lookup("panic") {
						// A locally shadowed panic, not the builtin.
						return true
					}
					if strings.HasPrefix(strings.ToLower(fn), "must") {
						return true
					}
					if msg, ok := panicMessage(p, v.Args[0]); ok && isInvariantMessage(msg) {
						return true
					}
					if isRecoveredValue(p, file, v.Args[0]) {
						return true
					}
					f := findingAt(p.Fset, v.Pos(),
						"panic in library package (func "+fn+"); return an error for recoverable conditions or annotate the invariant")
					if isReliabilityPath(p.Path) {
						f.Severity = SeverityError
						f.Message = "panic in reliability subsystem (func " + fn + "); fault handling must degrade gracefully — return a *reliability.DegradedError (or a wrapped error), never panic"
					}
					out = append(out, f)
					return true
				}
				return true
			})
		}
		walk(file, "")
	}
	return out
}

// panicMessage extracts the static message of a panic argument: a string
// constant, or the format string of a fmt.Sprintf/fmt.Errorf call.
func panicMessage(p *Package, arg ast.Expr) (string, bool) {
	if tv, ok := p.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	call, ok := arg.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "fmt" {
		return "", false
	}
	switch sel.Sel.Name {
	case "Sprintf", "Errorf", "Sprint":
	default:
		return "", false
	}
	if tv, ok := p.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	return "", false
}

// isInvariantMessage reports whether a panic message names an internal
// contract rather than a user-facing input problem.
func isInvariantMessage(msg string) bool {
	lower := strings.ToLower(msg)
	for _, marker := range invariantMarkers {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}

// isRecoveredValue reports whether arg is a bare identifier that was
// assigned from recover() somewhere in the same file (the re-panic idiom
// inside a deferred handler).
func isRecoveredValue(p *Package, file *ast.File, arg ast.Expr) bool {
	id, ok := arg.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || p.Info.Defs[lid] != obj && p.Info.Uses[lid] != obj {
				continue
			}
			if i < len(as.Rhs) {
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
					if cid, ok := call.Fun.(*ast.Ident); ok && cid.Name == "recover" {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
