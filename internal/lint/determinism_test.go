package lint

import (
	"strings"
	"testing"
)

func TestDeterminismFlagsMathRandAndWallClock(t *testing.T) {
	src := `package sim

import (
	"math/rand"
	"time"
)

func Jitter() float64 {
	return rand.Float64() * float64(time.Now().UnixNano())
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}
`
	active, _ := partition(runFixture(t, DeterminismAnalyzer(), "repro/internal/sim", src))
	if len(active) != 3 {
		t.Fatalf("findings %d, want 3 (import, time.Now, time.Since): %+v", len(active), active)
	}
	if !strings.Contains(active[0].Message, "math/rand") {
		t.Fatalf("first finding should be the import: %s", active[0].Message)
	}
}

func TestDeterminismSuppressedFinding(t *testing.T) {
	src := `package sim

import "time"

func LogStamp() int64 {
	//nebula:lint-ignore determinism log timestamps never feed simulation state
	return time.Now().UnixNano()
}
`
	active, suppressed := partition(runFixture(t, DeterminismAnalyzer(), "repro/internal/sim", src))
	if len(active) != 0 || len(suppressed) != 1 {
		t.Fatalf("active %d suppressed %d, want 0/1", len(active), len(suppressed))
	}
	if suppressed[0].SuppressReason != "log timestamps never feed simulation state" {
		t.Fatalf("reason %q", suppressed[0].SuppressReason)
	}
}

func TestDeterminismExemptPackages(t *testing.T) {
	src := `package rng

import "math/rand"

func Seed() int64 { return rand.Int63() }
`
	// internal/rng itself is the sanctioned home of randomness.
	if fs := runFixture(t, DeterminismAnalyzer(), "repro/internal/rng", src); len(fs) != 0 {
		t.Fatalf("internal/rng should be exempt, got %+v", fs)
	}
	// Packages outside internal/ (cmd, examples) are not covered.
	if fs := runFixture(t, DeterminismAnalyzer(), "repro/cmd/bench", src); len(fs) != 0 {
		t.Fatalf("cmd/ should be exempt, got %+v", fs)
	}
	// time.Time values and non-clock time functions are fine.
	okSrc := `package sim

import "time"

func Window() time.Duration { return 5 * time.Millisecond }
`
	if fs := runFixture(t, DeterminismAnalyzer(), "repro/internal/sim", okSrc); len(fs) != 0 {
		t.Fatalf("duration arithmetic should pass, got %+v", fs)
	}
}
