package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The ctxflow analyzer enforces the context-propagation discipline
// that per-request deadlines will rely on: inside internal/ library
// packages, context.Context must be the first parameter of any
// function that takes one, context.Background()/context.TODO() are
// banned (contexts enter at roots — cmd/, examples, tests — and are
// threaded down), and a function holding a ctx parameter must pass
// that ctx (or something derived from it) to every context-accepting
// callee. Deprecated shims that deliberately root a fresh context
// carry //nebula:lint-ignore ctxflow suppressions.

// CtxflowAnalyzer returns the ctxflow rule.
func CtxflowAnalyzer() *Analyzer {
	return &Analyzer{
		Name:     "ctxflow",
		Doc:      "internal/ packages take ctx first, never create context roots, and propagate ctx to callees",
		Severity: SeverityWarning,
		Run:      runCtxflow,
	}
}

func runCtxflow(p *Package) []Finding {
	if !pathIsInternal(p.Path) || p.IsMain() {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			out = append(out, checkCtxFunc(p, fd)...)
		}
	}
	return out
}

// checkCtxFunc applies the three ctxflow rules to one declaration.
func checkCtxFunc(p *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ctxParam := ctxParamObj(p, fd)
	// Rule 1: ctx is the first parameter.
	if ctxParam != nil && fd.Type.Params != nil {
		first := fd.Type.Params.List[0]
		if !isContextType(p.Info.Types[first.Type].Type) {
			out = append(out, errorFinding(p, fd.Name.Pos(), fmt.Sprintf(
				"%s takes a context.Context that is not the first parameter; ctx leads the signature so call sites read uniformly", fd.Name.Name)))
		}
	}
	if fd.Body == nil {
		return out
	}
	derived := derivedCtxObjs(p, fd, ctxParam)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Rule 2: no fresh context roots inside internal/.
		if name := contextRootCall(p, call); name != "" {
			msg := fmt.Sprintf("context.%s creates a fresh context root inside internal/; accept a ctx parameter and thread it from the caller", name)
			if ctxParam != nil {
				msg = fmt.Sprintf("context.%s discards the caller's deadline and cancellation; propagate %s's ctx parameter instead", name, fd.Name.Name)
			}
			out = append(out, errorFinding(p, call.Pos(), msg))
			return true
		}
		// Rule 3: context-accepting callees receive the function's ctx.
		if ctxParam == nil {
			return true
		}
		out = append(out, checkCtxArgs(p, call, derived)...)
		return true
	})
	return out
}

// errorFinding builds an error-severity finding (the analyzer floor is
// warning; the hard rules escalate).
func errorFinding(p *Package, pos token.Pos, msg string) Finding {
	f := findingAt(p.Fset, pos, msg)
	f.Severity = SeverityError
	return f
}

// ctxParamObj returns the object of the declaration's context.Context
// parameter, or nil.
func ctxParamObj(p *Package, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		if !isContextType(p.Info.Types[field.Type].Type) {
			continue
		}
		if len(field.Names) == 0 {
			return nil
		}
		return p.Info.Defs[field.Names[0]]
	}
	return nil
}

// derivedCtxObjs computes the set of variables carrying the function's
// context or something derived from it (context.WithCancel/WithTimeout
// results, re-assignments), by iterating simple assignments to a
// fixpoint.
func derivedCtxObjs(p *Package, fd *ast.FuncDecl, ctxParam types.Object) map[types.Object]bool {
	derived := map[types.Object]bool{}
	if ctxParam == nil {
		return derived
	}
	derived[ctxParam] = true
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			tainted := false
			for _, r := range as.Rhs {
				if exprMentions(p, r, derived) {
					tainted = true
				}
			}
			if !tainted {
				return true
			}
			for _, l := range as.Lhs {
				id, ok := ast.Unparen(l).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj != nil && !derived[obj] && isContextType(obj.Type()) {
					derived[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return derived
}

// checkCtxArgs verifies each context-typed argument slot of a call
// references the function's (derived) ctx.
func checkCtxArgs(p *Package, call *ast.CallExpr, derived map[types.Object]bool) []Finding {
	tv := p.Info.Types[call.Fun]
	if tv.Type == nil || tv.IsType() {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	var out []Finding
	for i := 0; i < params.Len() && i < len(call.Args); i++ {
		if !isContextType(params.At(i).Type()) {
			continue
		}
		arg := call.Args[i]
		if exprMentions(p, arg, derived) {
			continue
		}
		if c, ok := ast.Unparen(arg).(*ast.CallExpr); ok && contextRootCall(p, c) != "" {
			continue // the fresh root itself already draws the rule-2 error
		}
		out = append(out, findingAt(p.Fset, arg.Pos(), fmt.Sprintf(
			"context argument %s does not propagate the enclosing function's ctx parameter", types.ExprString(arg))))
	}
	return out
}

// exprMentions reports whether the expression references any object in
// the set.
func exprMentions(p *Package, e ast.Expr, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && set[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// contextRootCall returns "Background" or "TODO" when the call creates
// a fresh context root, else "".
func contextRootCall(p *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
