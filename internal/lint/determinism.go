package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// DeterminismAnalyzer enforces the repository's reproducibility rule: all
// randomness inside internal/ flows through the seeded internal/rng
// package, and simulation code never reads the wall clock. The paper's
// accuracy and energy tables depend on seeded stochastic spike trains and
// device variation, so a stray math/rand or time.Now() silently breaks
// bit-for-bit replay of every experiment.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name:     "determinism",
		Doc:      "forbid math/rand and wall-clock reads in internal/ outside internal/rng",
		Severity: SeverityError,
		Run:      runDeterminism,
	}
}

// forbiddenClockFuncs are time-package functions that read the wall clock.
var forbiddenClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDeterminism(p *Package) []Finding {
	if !pathIsInternal(p.Path) || strings.HasSuffix(p.Path, "/internal/rng") {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, findingAt(p.Fset, imp.Pos(),
					"import of "+path+" in internal package; use the seeded repro/internal/rng instead"))
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if _, isFunc := obj.(*types.Func); !isFunc || !forbiddenClockFuncs[sel.Sel.Name] {
				return true
			}
			out = append(out, findingAt(p.Fset, sel.Pos(),
				"time."+sel.Sel.Name+" reads the wall clock in a simulation package; thread an explicit timestamp or counter instead"))
			return true
		})
	}
	return out
}
