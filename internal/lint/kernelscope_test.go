package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestDeterminismCoversKernelFiles pins that the frozen-kernel read
// path (internal/crossbar/kernel.go and its tests) is inside the
// loader's scope, so the determinism and float-equality rules apply to
// it like any other simulator internals. A loader exclusion — or a move
// of the kernel out of internal/ — would silently drop the fastest,
// most bitwise-sensitive code in the tree from the lint gate.
func TestDeterminismCoversKernelFiles(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	var cb *Package
	for _, p := range pkgs {
		if p.Path == "repro/internal/crossbar" {
			cb = p
			break
		}
	}
	if cb == nil {
		t.Fatal("loader did not load repro/internal/crossbar")
	}
	found := false
	for _, f := range cb.Files {
		name := filepath.Base(cb.Fset.Position(f.Pos()).Filename)
		if name == "kernel.go" {
			found = true
		}
	}
	if !found {
		t.Fatal("kernel.go not in the crossbar package's loaded file set")
	}
	for _, fd := range Run([]*Package{cb}, Analyzers()) {
		if fd.Suppressed {
			continue
		}
		if strings.HasPrefix(filepath.Base(fd.File), "kernel") {
			t.Errorf("%s: %s:%d: %s", fd.Rule, fd.File, fd.Line, fd.Message)
		}
	}
}
