package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModulePath reads the module path from the go.mod at root.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// Loader parses and type-checks packages of one module from source. It
// resolves intra-module imports itself and delegates everything else to
// the toolchain's importers, so it needs no dependencies beyond the
// standard library.
type Loader struct {
	Root   string // module root directory
	Module string // module path from go.mod

	fset *token.FileSet
	pkgs map[string]*Package // import path -> loaded package
	std  types.Importer      // stdlib importer (gc, with source fallback)
	stdS types.Importer
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	module, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:   root,
		Module: module,
		fset:   fset,
		pkgs:   map[string]*Package{},
		std:    importer.ForCompiler(fset, "gc", nil),
		stdS:   importer.ForCompiler(fset, "source", nil),
	}, nil
}

// LoadAll discovers every package directory under the module root
// (skipping hidden directories and testdata) and loads them all,
// returning packages sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		path := l.Module
		if rel != "." {
			path = l.Module + "/" + filepath.ToSlash(rel)
		}
		p, err := l.Load(path)
		if err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", path, err)
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Load parses and type-checks one package by import path (memoized).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle guard
	dir := l.dirFor(path)
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	p := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
		suppressions: map[string][]suppression{},
	}
	for _, f := range files {
		fname := l.fset.Position(f.Pos()).Filename
		p.suppressions[fname] = collectSuppressions(l.fset, f)
	}

	cfg := types.Config{
		Importer: importerFunc(func(ip string) (*types.Package, error) { return l.importPkg(ip) }),
		Error: func(err error) {
			p.TypeErrors = append(p.TypeErrors, err)
		},
	}
	tpkg, _ := cfg.Check(path, l.fset, files, p.Info)
	p.Types = tpkg
	l.pkgs[path] = p
	return p, nil
}

// dirFor maps an intra-module import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.Module {
		return l.Root
	}
	rel := strings.TrimPrefix(path, l.Module+"/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// parseDir parses every non-test Go file in dir with comments.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// importPkg resolves an import: intra-module paths load from source,
// everything else goes to the stdlib importer (gc export data first,
// falling back to type-checking the standard library from source).
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		if p.Types == nil {
			return nil, fmt.Errorf("type-checking %s failed", path)
		}
		return p.Types, nil
	}
	pkg, err := l.std.Import(path)
	if err == nil {
		return pkg, nil
	}
	return l.stdS.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
