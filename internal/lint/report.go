package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Report is the machine-readable output of one lint run.
type Report struct {
	// Findings holds every diagnostic, including suppressed ones.
	Findings []Finding `json:"findings"`
	// Errors is the number of unsuppressed error-severity findings (the
	// gate fails when it is non-zero).
	Errors int `json:"errors"`
	// Warnings is the number of unsuppressed warning-severity findings.
	Warnings int `json:"warnings"`
	// Suppressed is the number of findings covered by ignore directives.
	Suppressed int `json:"suppressed"`
}

// NewReport tallies findings into a Report.
func NewReport(findings []Finding) Report {
	r := Report{Findings: findings}
	for _, f := range findings {
		switch {
		case f.Suppressed:
			r.Suppressed++
		case f.Severity == SeverityError:
			r.Errors++
		default:
			r.Warnings++
		}
	}
	return r
}

// WriteJSON emits the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteHuman emits the report for terminals: one line per active finding,
// then the ranked panic-audit inventory, then a one-line summary.
// showSuppressed additionally lists suppressed findings with their
// justifications.
func (r Report) WriteHuman(w io.Writer, showSuppressed bool) {
	panicPerPkg := map[string]int{}
	for _, f := range r.Findings {
		if f.Rule == "panic-audit" && !f.Suppressed {
			panicPerPkg[f.Package]++
		}
		if f.Suppressed {
			if showSuppressed {
				fmt.Fprintf(w, "%s: [%s] suppressed (%s): %s\n", f.Position(), f.Rule, f.SuppressReason, f.Message)
			}
			continue
		}
		fmt.Fprintf(w, "%s: [%s] %s: %s\n", f.Position(), f.Rule, f.Severity, f.Message)
	}
	if len(panicPerPkg) > 0 {
		fmt.Fprintf(w, "\npanic-audit ranking (unannotated library panics per package):\n")
		type row struct {
			pkg string
			n   int
		}
		rows := make([]row, 0, len(panicPerPkg))
		for pkg, n := range panicPerPkg {
			rows = append(rows, row{pkg, n})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].pkg < rows[j].pkg
		})
		for _, r := range rows {
			fmt.Fprintf(w, "  %4d  %s\n", r.n, r.pkg)
		}
	}
	fmt.Fprintf(w, "\nnebula-lint: %d error(s), %d warning(s), %d suppressed\n",
		r.Errors, r.Warnings, r.Suppressed)
}
