package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// ErrwrapAnalyzer flags fmt.Errorf calls that format an error-typed
// argument with a value verb (%v, %s, %q) instead of %w. A value verb
// flattens the cause into text, so errors.Is / errors.As can no longer
// reach it — exactly the typed chains the session API promises
// (*arch.CompileError wrapping *reliability.DegradedError) would be
// silently severed. Re-phrasing without wrapping is still possible by
// formatting err.Error() explicitly, which documents the intent.
func ErrwrapAnalyzer() *Analyzer {
	return &Analyzer{
		Name:     "errwrap",
		Doc:      "flag fmt.Errorf formatting an error with %v/%s/%q instead of %w",
		Severity: SeverityError,
		Run:      runErrwrap,
	}
}

func runErrwrap(p *Package) []Finding {
	if !pathIsInternal(p.Path) && !pathIsCmd(p.Path) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isFmtErrorf(p, call) || len(call.Args) < 2 {
				return true
			}
			format, ok := stringLiteral(p, call.Args[0])
			if !ok {
				return true // dynamic format string: nothing to check
			}
			args := call.Args[1:]
			for _, v := range formatVerbs(format) {
				if v.verb == 'w' || v.arg >= len(args) {
					continue
				}
				if v.verb != 'v' && v.verb != 's' && v.verb != 'q' {
					continue
				}
				if !argIsError(p, args[v.arg]) {
					continue
				}
				out = append(out, findingAt(p.Fset, args[v.arg].Pos(), fmt.Sprintf(
					"error-typed argument formatted with %%%c; use %%w so errors.Is/errors.As reach the cause (or format err.Error() to flatten deliberately)",
					v.verb)))
			}
			return true
		})
	}
	return out
}

// isFmtErrorf reports whether the call is fmt.Errorf, confirmed through
// the type info so a local package named fmt cannot spoof it.
func isFmtErrorf(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "fmt"
}

// stringLiteral unquotes expr when it is a constant string (a literal or
// a named constant the type checker folded).
func stringLiteral(p *Package, expr ast.Expr) (string, bool) {
	if lit, ok := expr.(*ast.BasicLit); ok && lit.Kind == token.STRING {
		s, err := strconv.Unquote(lit.Value)
		return s, err == nil
	}
	if tv, ok := p.Info.Types[expr]; ok && tv.Value != nil {
		if s := tv.Value.ExactString(); len(s) >= 2 && s[0] == '"' {
			unq, err := strconv.Unquote(s)
			return unq, err == nil
		}
	}
	return "", false
}

// argIsError reports whether the expression's static type satisfies the
// error interface — the condition under which %w would wrap it.
func argIsError(p *Package, expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(tv.Type, errIface)
}

// fmtVerb is one formatting directive: its verb rune and the index of the
// variadic argument it consumes.
type fmtVerb struct {
	verb rune
	arg  int
}

// formatVerbs parses a Printf-style format string and maps each verb to
// the variadic argument it consumes, accounting for %%, flags, *
// width/precision (which consume an argument themselves) and explicit
// argument indexes like %[1]s.
func formatVerbs(format string) []fmtVerb {
	var out []fmtVerb
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		// Flags.
		for i < len(runes) && (runes[i] == '+' || runes[i] == '-' || runes[i] == '#' ||
			runes[i] == ' ' || runes[i] == '0') {
			i++
		}
		// Width (a * consumes an argument).
		if i < len(runes) && runes[i] == '*' {
			arg++
			i++
		} else {
			for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
				i++
			}
		}
		// Precision.
		if i < len(runes) && runes[i] == '.' {
			i++
			if i < len(runes) && runes[i] == '*' {
				arg++
				i++
			} else {
				for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
					i++
				}
			}
		}
		// Explicit argument index %[n]v.
		if i < len(runes) && runes[i] == '[' {
			j := i + 1
			n := 0
			for j < len(runes) && runes[j] >= '0' && runes[j] <= '9' {
				n = n*10 + int(runes[j]-'0')
				j++
			}
			if j < len(runes) && runes[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i >= len(runes) {
			break
		}
		out = append(out, fmtVerb{verb: runes[i], arg: arg})
		arg++
	}
	return out
}
