package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The genstamp analyzer proves the kernel-invalidation contract of
// generation-stamped types (crossbar.Crossbar today): any method that
// writes device state — a field or element assignment, directly or
// through same-type callees — must have called invalidate() on every
// path reaching the write, so a baked read kernel can never observe a
// mutation it was not invalidated for. This statically supersedes the
// hand-maintained per-mutator freshness table: the analyzer discovers
// the mutator set from the code instead of trusting a test author to
// extend a list.
//
// A type is "stamped" when it declares an unsigned integer field named
// gen and an invalidate method in the same package. Every other field
// is device state by default; fields and methods outside the
// read-visible contract opt out with a declaration-site directive
// (reason text required):
//
//	//nebula:genstamp-exempt <reason>
//
// on the field (activity counters, caches keyed by gen) or on the
// method (lazy allocation that leaves read results unchanged). Exempt
// is a contract annotation reviewed with the declaration — distinct
// from //nebula:lint-ignore, which waives one finding at one site.
//
// The flow analysis is a forward walk over each method body tracking
// whether invalidate has definitely been called ("inv"). inv is
// established by a direct c.invalidate() statement or by calling a
// same-receiver method that itself invalidates on every return (e.g.
// writeDevice), and is monotone — nothing un-invalidates — so loop
// bodies are analyzed once from their entry state. Branches merge
// conservatively: paths that terminate (return/panic) drop out of the
// merge. Locals assigned from receiver fields of reference type
// (slice/map/pointer) are tracked as aliases so writes through them
// count as device writes. Writes through escaped pointers other than
// &c.field call arguments are outside the analysis, as are calls made
// through interfaces or function values (the callgraph.go boundary).

// GenstampExemptDirective marks a struct field or method of a stamped
// type as outside the generation contract.
const GenstampExemptDirective = "nebula:genstamp-exempt"

// GenstampAnalyzer returns the genstamp rule.
func GenstampAnalyzer() *Analyzer {
	return &Analyzer{
		Name:     "genstamp",
		Doc:      "device-state writes on generation-stamped types must be dominated by invalidate()",
		Severity: SeverityError,
		RunProgram: func(prog *Program) []Finding {
			fs, _ := genstampAnalyze(prog)
			return fs
		},
	}
}

// MutatorSurvey runs the genstamp discovery over prog and returns, per
// stamped type (keyed "pkgpath.TypeName"), the sorted names of methods
// that write device state directly or via same-type callees. The
// runtime freshness table cross-checks against this so the two gates
// cannot silently diverge.
func MutatorSurvey(prog *Program) map[string][]string {
	_, survey := genstampAnalyze(prog)
	return survey
}

// stampedType is one discovered generation-stamped type.
type stampedType struct {
	named      *types.Named
	pkg        *Package
	invalidate *types.Func
	exempt     map[string]bool // field name -> exempt from the contract
}

func (s *stampedType) key() string {
	return s.pkg.Path + "." + s.named.Obj().Name()
}

// genstampAnalyze discovers stamped types and checks every method.
func genstampAnalyze(prog *Program) ([]Finding, map[string][]string) {
	var findings []Finding
	survey := map[string][]string{}
	for _, st := range stampedTypes(prog) {
		ck := &genstampChecker{prog: prog, st: st, summaries: map[*types.Func]*mutSummary{}}
		var names []string
		for _, m := range ck.methods() {
			sum := ck.summary(m)
			findings = append(findings, sum.findings...)
			if sum.writes {
				names = append(names, m.Obj.Name())
			}
		}
		sort.Strings(names)
		survey[st.key()] = names
	}
	return findings, survey
}

// stampedTypes discovers every generation-stamped struct type in the
// program, in deterministic (package, file, declaration) order.
func stampedTypes(prog *Program) []*stampedType {
	var out []*stampedType
	for _, p := range prog.Pkgs {
		if p.Types == nil {
			continue
		}
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					sd, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					named, ok := tn.Type().(*types.Named)
					if !ok || !hasGenField(p, sd) {
						continue
					}
					inv := invalidateMethodOf(p, named)
					if inv == nil {
						continue
					}
					st := &stampedType{named: named, pkg: p, invalidate: inv, exempt: map[string]bool{}}
					for _, f := range sd.Fields.List {
						if hasDirective(f.Doc, GenstampExemptDirective) || hasDirective(f.Comment, GenstampExemptDirective) {
							for _, n := range f.Names {
								st.exempt[n.Name] = true
							}
						}
					}
					out = append(out, st)
				}
			}
		}
	}
	return out
}

// hasGenField reports whether the struct declares an unsigned integer
// field named gen.
func hasGenField(p *Package, sd *ast.StructType) bool {
	for _, f := range sd.Fields.List {
		for _, n := range f.Names {
			if n.Name != "gen" {
				continue
			}
			t := p.Info.Types[f.Type].Type
			if t == nil {
				continue
			}
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsUnsigned != 0 {
				return true
			}
		}
	}
	return false
}

// invalidateMethodOf returns the type's invalidate method if declared
// in the same package, else nil.
func invalidateMethodOf(p *Package, named *types.Named) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, p.Types, "invalidate")
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() != p.Types {
		return nil
	}
	return fn
}

// hasDirective reports whether the comment group carries the given
// machine directive (alone or followed by free text).
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// mutSummary is the memoized per-method result.
type mutSummary struct {
	// writes reports whether the method writes device state, directly
	// or via same-type callees — the MutatorSurvey membership bit.
	writes bool
	// alwaysInvalidates reports whether every normal return of the
	// method has called invalidate — what lets callers rely on e.g.
	// writeDevice to establish the invalidated state.
	alwaysInvalidates bool
	findings          []Finding
}

// genstampChecker analyzes all methods of one stamped type.
type genstampChecker struct {
	prog      *Program
	st        *stampedType
	summaries map[*types.Func]*mutSummary
}

// methods returns the type's method declarations in deterministic
// order, excluding invalidate itself and exempt methods.
func (ck *genstampChecker) methods() []*FuncInfo {
	var out []*FuncInfo
	p := ck.st.pkg
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || receiverNamed(p, fd) != ck.st.named {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok || obj == ck.st.invalidate {
				continue
			}
			if hasDirective(fd.Doc, GenstampExemptDirective) {
				continue
			}
			if fi := ck.prog.Funcs[obj]; fi != nil {
				out = append(out, fi)
			}
		}
	}
	return out
}

// summary computes (memoized) the method's mutation summary, emitting
// findings for device writes not dominated by invalidate.
func (ck *genstampChecker) summary(m *FuncInfo) *mutSummary {
	if s, ok := ck.summaries[m.Obj]; ok {
		return s
	}
	// Conservative placeholder breaks recursion cycles: an in-progress
	// method neither writes nor invalidates until proven otherwise.
	s := &mutSummary{}
	ck.summaries[m.Obj] = s
	if hasDirective(m.Decl.Doc, GenstampExemptDirective) {
		return s
	}
	mc := &methodChecker{ck: ck, m: m, recv: receiverObj(m.Pkg, m.Decl), sum: s}
	if mc.recv == nil {
		return s
	}
	st := newGenState()
	mc.stmt(m.Decl.Body, st)
	if !st.term && !st.inv {
		mc.endsWithoutInv = true
	}
	s.alwaysInvalidates = !mc.endsWithoutInv
	// Survey propagation: any call on the receiver to a writing method,
	// wherever it appears, makes this method a (transitive) mutator.
	ast.Inspect(m.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := mc.receiverCallee(call); callee != nil && callee != m.Obj {
			if fi := ck.prog.Funcs[callee]; fi != nil && ck.summary(fi).writes {
				s.writes = true
			}
		}
		return true
	})
	return s
}

// genState is the abstract state of the forward walk.
type genState struct {
	// inv records whether invalidate has definitely been called on
	// every path reaching this point.
	inv bool
	// term records whether every path to this point has terminated
	// (returned, panicked, or branched away).
	term bool
	// aliases maps local variables of reference type to the receiver
	// field they were copied from.
	aliases map[types.Object]string
}

func newGenState() *genState {
	return &genState{aliases: map[types.Object]string{}}
}

func (st *genState) clone() *genState {
	c := &genState{inv: st.inv, term: st.term, aliases: map[types.Object]string{}}
	for k, v := range st.aliases {
		c.aliases[k] = v
	}
	return c
}

// mergeInto folds the outcomes of sibling branches back into st: only
// non-terminated branches constrain inv, and aliases union (an alias
// on any path makes later writes through the variable device writes).
func (st *genState) mergeInto(branches ...*genState) {
	inv := true
	term := true
	for _, b := range branches {
		if b.term {
			continue
		}
		term = false
		if !b.inv {
			inv = false
		}
		for k, v := range b.aliases {
			st.aliases[k] = v
		}
	}
	st.inv = inv && !term
	st.term = term
}

// methodChecker runs the walk over one method body.
type methodChecker struct {
	ck             *genstampChecker
	m              *FuncInfo
	recv           types.Object
	sum            *mutSummary
	endsWithoutInv bool
}

func (mc *methodChecker) pkg() *Package { return mc.m.Pkg }

func (mc *methodChecker) isRecv(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && mc.pkg().Info.Uses[id] == mc.recv
}

// receiverCallee resolves a call on the receiver (c.method(...)) to
// its *types.Func, or nil for anything else.
func (mc *methodChecker) receiverCallee(call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !mc.isRecv(sel.X) {
		return nil
	}
	fn, _ := mc.pkg().Info.Uses[sel.Sel].(*types.Func)
	return fn
}

// fieldOf resolves the receiver field an lvalue ultimately writes,
// looking through index expressions, selector chains and tracked
// aliases.
func (mc *methodChecker) fieldOf(e ast.Expr, st *genState) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := mc.pkg().Info.Uses[e]
		if obj == nil {
			obj = mc.pkg().Info.Defs[e]
		}
		if f, ok := st.aliases[obj]; ok {
			return f, true
		}
	case *ast.SelectorExpr:
		if mc.isRecv(e.X) {
			return e.Sel.Name, true
		}
		return mc.fieldOf(e.X, st)
	case *ast.IndexExpr:
		return mc.fieldOf(e.X, st)
	case *ast.StarExpr:
		return mc.fieldOf(e.X, st)
	}
	return "", false
}

// checkWrite records a device write and emits a finding when the
// invalidated state has not been established. A plain identifier
// target rebinds a local (updateAliases handles it); only writes
// through selectors, indexes or dereferences reach device state.
func (mc *methodChecker) checkWrite(lhs ast.Expr, st *genState, pos token.Pos) {
	if _, rebind := ast.Unparen(lhs).(*ast.Ident); rebind {
		return
	}
	field, ok := mc.fieldOf(lhs, st)
	if !ok || field == "gen" || mc.ck.st.exempt[field] {
		return
	}
	mc.sum.writes = true
	if !st.inv {
		mc.sum.findings = append(mc.sum.findings, findingAt(mc.pkg().Fset, pos, fmt.Sprintf(
			"%s.%s writes device field %q of generation-stamped type %s on a path that has not called invalidate(); a baked read kernel could survive this mutation",
			mc.ck.st.named.Obj().Name(), mc.m.Obj.Name(), field, mc.ck.st.key())))
	}
}

// scanEscapes flags &c.field arguments: handing out the address of a
// non-exempt device field is treated as a write at the call site.
func (mc *methodChecker) scanEscapes(e ast.Expr, st *genState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			return true
		}
		if _, isLit := ast.Unparen(u.X).(*ast.CompositeLit); isLit {
			return true
		}
		mc.checkWrite(u.X, st, u.Pos())
		return true
	})
}

// callEffect applies the state effect of a statement-level call:
// invalidate (or an alwaysInvalidates same-type method) establishes
// the invalidated state; panic terminates the path.
func (mc *methodChecker) callEffect(call *ast.CallExpr, st *genState) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := mc.pkg().Info.Uses[id].(*types.Builtin); isB && b.Name() == "panic" {
			st.term = true
			return
		}
	}
	callee := mc.receiverCallee(call)
	if callee == nil {
		return
	}
	if callee == mc.ck.st.invalidate {
		st.inv = true
		return
	}
	if fi := mc.ck.prog.Funcs[callee]; fi != nil && mc.ck.summary(fi).alwaysInvalidates {
		st.inv = true
	}
}

// updateAliases tracks locals copied from reference-typed receiver
// fields (or from other aliases) so writes through them are seen.
func (mc *methodChecker) updateAliases(lhs, rhs []ast.Expr, define bool, st *genState) {
	if len(lhs) != len(rhs) {
		return
	}
	for i, l := range lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		var obj types.Object
		if define {
			obj = mc.pkg().Info.Defs[id]
		} else {
			obj = mc.pkg().Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		delete(st.aliases, obj)
		r := ast.Unparen(rhs[i])
		if sel, ok := r.(*ast.SelectorExpr); ok && mc.isRecv(sel.X) && isRefType(mc.pkg().Info.Types[r].Type) {
			st.aliases[obj] = sel.Sel.Name
		} else if rid, ok := r.(*ast.Ident); ok {
			src := mc.pkg().Info.Uses[rid]
			if f, ok := st.aliases[src]; ok {
				st.aliases[obj] = f
			}
		}
	}
}

// isRefType reports whether writes through a copy of the value write
// the original (slices, maps, pointers).
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return true
	}
	return false
}

// stmt advances the abstract state through one statement, emitting
// findings for undominated device writes.
func (mc *methodChecker) stmt(s ast.Stmt, st *genState) {
	if s == nil || st.term {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			mc.stmt(sub, st)
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			mc.scanEscapes(r, st)
		}
		for _, l := range s.Lhs {
			mc.checkWrite(l, st, l.Pos())
		}
		if s.Tok == token.DEFINE || s.Tok == token.ASSIGN {
			mc.updateAliases(s.Lhs, s.Rhs, s.Tok == token.DEFINE, st)
		}
	case *ast.IncDecStmt:
		mc.checkWrite(s.X, st, s.X.Pos())
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			for _, a := range call.Args {
				mc.scanEscapes(a, st)
			}
			mc.callEffect(call, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == len(vs.Names) {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					mc.updateAliases(lhs, vs.Values, true, st)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			mc.scanEscapes(r, st)
		}
		if !st.inv {
			mc.endsWithoutInv = true
		}
		st.term = true
	case *ast.BranchStmt:
		// break/continue/goto leave the linear walk; treating the path
		// as terminated keeps the merge conservative.
		st.term = true
	case *ast.IfStmt:
		mc.stmt(s.Init, st)
		mc.scanEscapes(s.Cond, st)
		body := st.clone()
		mc.stmt(s.Body, body)
		alt := st.clone()
		mc.stmt(s.Else, alt)
		st.mergeInto(body, alt)
	case *ast.ForStmt:
		mc.stmt(s.Init, st)
		// invalidate is monotone and nothing resets it, so one walk of
		// the body from the loop-entry state is exact for this lattice.
		body := st.clone()
		mc.stmt(s.Body, body)
		mc.stmt(s.Post, body)
		st.mergeInto(st.clone(), body)
	case *ast.RangeStmt:
		body := st.clone()
		mc.stmt(s.Body, body)
		st.mergeInto(st.clone(), body)
	case *ast.SwitchStmt:
		mc.stmt(s.Init, st)
		mc.caseMerge(s.Body, st, hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		mc.stmt(s.Init, st)
		mc.caseMerge(s.Body, st, hasDefaultClause(s.Body))
	case *ast.SelectStmt:
		mc.caseMerge(s.Body, st, false)
	case *ast.LabeledStmt:
		mc.stmt(s.Stmt, st)
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred/spawned work runs outside the linear walk; its writes
		// are caught only if the callee is itself a checked method.
	}
}

// caseMerge walks each clause of a switch/select body from the current
// state and merges the outcomes; a missing default keeps the
// fall-through path in the merge.
func (mc *methodChecker) caseMerge(body *ast.BlockStmt, st *genState, hasDefault bool) {
	var branches []*genState
	for _, clause := range body.List {
		b := st.clone()
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, sub := range c.Body {
				mc.stmt(sub, b)
			}
		case *ast.CommClause:
			mc.stmt(c.Comm, b)
			for _, sub := range c.Body {
				mc.stmt(sub, b)
			}
		}
		branches = append(branches, b)
	}
	if !hasDefault {
		branches = append(branches, st.clone())
	}
	st.mergeInto(branches...)
}

// hasDefaultClause reports whether a switch body has a default case.
func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if c, ok := clause.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}
