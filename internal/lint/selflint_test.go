package lint

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestSelfLint loads the entire module through the real loader and runs
// the full suite: the tree must stay free of unsuppressed error-severity
// findings, which is the same gate cmd/nebula-lint enforces in CI.
func TestSelfLint(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if loader.Module != "repro" {
		t.Fatalf("module %q, want repro", loader.Module)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing directories", len(pkgs))
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, te)
		}
	}
	report := NewReport(Run(pkgs, Analyzers()))
	if report.Errors > 0 {
		var b bytes.Buffer
		report.WriteHuman(&b, false)
		t.Fatalf("repository violates lint invariants:\n%s", b.String())
	}
	// The JSON path must stay encodable for tooling.
	var b bytes.Buffer
	if err := report.WriteJSON(&b); err != nil {
		t.Fatalf("JSON encoding: %v", err)
	}
}
