package lint

import (
	"strings"
	"testing"
)

func hotallocMessages(t *testing.T, src string) (active, suppressed []string) {
	t.Helper()
	fs := runFixture(t, HotallocAnalyzer(), "repro/internal/fix", src)
	for _, f := range fs {
		if f.Severity != SeverityError {
			t.Errorf("hotalloc finding %q severity %v, want error", f.Message, f.Severity)
		}
		if f.Suppressed {
			suppressed = append(suppressed, f.Message)
		} else {
			active = append(active, f.Message)
		}
	}
	return active, suppressed
}

// countContaining tallies messages mentioning every given fragment.
func countContaining(msgs []string, frags ...string) int {
	n := 0
	for _, m := range msgs {
		all := true
		for _, frag := range frags {
			if !strings.Contains(m, frag) {
				all = false
				break
			}
		}
		if all {
			n++
		}
	}
	return n
}

// TestHotallocBannedConstructs seeds one instance of every banned
// construct class in a single hot root and checks each is caught.
func TestHotallocBannedConstructs(t *testing.T) {
	src := `package fix

import "fmt"

type obs interface{ note(int) }

//nebula:hotpath
func Hot(xs []float64, o obs, name string) float64 {
	buf := make([]float64, 8)
	p := new(int)
	xs = append(xs, 1)
	lit := []float64{1, 2}
	m := map[string]int{"a": 1}
	q := &obsImpl{}
	f := func() {}
	f()
	o.note(len(lit))
	var boxed interface{} = 42
	_ = boxed
	s := fmt.Sprintf("%s", name)
	msg := ""
	for i := range xs {
		msg += name
		_ = name + s
		_ = i
	}
	_ = buf
	_ = p
	_ = m
	_ = q
	_ = msg
	return xs[0]
}

type obsImpl struct{}

func (*obsImpl) note(int) {}
`
	active, _ := hotallocMessages(t, src)
	checks := []struct {
		frag string
		want int
	}{
		{"make allocates", 1},
		{"new allocates", 1},
		{"append may grow", 1},
		{"slice literal allocates", 1},
		{"map literal allocates", 1},
		{"&composite literal escapes", 1},
		{"closure allocates", 1},
		{"fmt.Sprintf allocates", 1},
		{"string concatenation in a loop", 2},
	}
	for _, c := range checks {
		if got := countContaining(active, c.frag); got != c.want {
			t.Errorf("%q: %d findings, want %d\nall: %v", c.frag, got, c.want, active)
		}
	}
	// var boxed interface{} = 42 is a declaration, not a call; boxing
	// detection covers call arguments and conversions (tested below).
	for _, m := range active {
		if !strings.Contains(m, "in hot function repro/internal/fix.Hot (declared //nebula:hotpath)") {
			t.Errorf("finding lacks root provenance: %q", m)
		}
	}
}

func TestHotallocBoxing(t *testing.T) {
	src := `package fix

func sink(v interface{})        {}
func sinks(vs ...interface{})   {}
func typed(n int, v interface{}) {}

type iface interface{ m() }
type impl struct{}

func (impl) m() {}

//nebula:hotpath
func Hot(pre []interface{}) {
	sink(3)
	sinks(1, 2)
	sinks(pre...)
	typed(1, impl{})
	var i iface = iface(impl{})
	_ = i
}
`
	active, _ := hotallocMessages(t, src)
	if got := countContaining(active, "argument boxes a concrete value"); got != 4 {
		t.Errorf("boxing findings = %d, want 4 (sink, sinks x2, typed)\nall: %v", got, active)
	}
	if got := countContaining(active, "conversion boxes a concrete value"); got != 1 {
		t.Errorf("conversion findings = %d, want 1\nall: %v", got, active)
	}
	// The ... spread passes an existing slice (sinks(pre...)): counted
	// above — 4 argument findings means the spread slot stayed clean.
}

// TestHotallocColdAndExcused verifies the three steady-state idioms:
// error tails, panics and //nebula:coldpath are skipped; growth guards
// and recycled appends are excused.
func TestHotallocColdAndExcused(t *testing.T) {
	src := `package fix

import (
	"errors"
	"fmt"
)

func check(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("negative")
	}
	return n, nil
}

//nebula:hotpath
func Hot(dst, xs []float64, n int) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("hot: bad n %d", n)
	}
	if _, err := check(n); err != nil {
		return nil, fmt.Errorf("hot: %w", err)
	}
	if len(dst) < n {
		dst = make([]float64, n)
	}
	if dst == nil {
		dst = []float64{0}
	}
	dst = append(dst[:0], xs...)
	dst = append(dst, 1)
	scratch := xs
	scratch = scratch[:0]
	scratch = append(scratch, 2)
	if n > 1e9 {
		panic(fmt.Sprintf("hot: absurd n %d", n))
	}
	//nebula:coldpath warm-up only
	trace := make([]float64, n)
	_ = trace
	return dst, nil
}
`
	active, _ := hotallocMessages(t, src)
	if len(active) != 0 {
		t.Errorf("steady-state idioms flagged: %v", active)
	}
}

// TestHotallocTransitive checks closure traversal, provenance labels,
// cold call sites not pulling callees, and that a growth guard excuses
// allocations but not the calls made under it.
func TestHotallocTransitive(t *testing.T) {
	src := `package fix

import "errors"

func leafAlloc() []float64 {
	return make([]float64, 4)
}

func coldOnly() error {
	_ = make([]float64, 1)
	return errors.New("cold")
}

func guarded() {
	_ = make([]int, 2)
}

//nebula:hotpath
func Hot(xs []float64) ([]float64, error) {
	if len(xs) == 0 {
		guarded()
		return nil, coldOnly()
	}
	return leafAlloc(), nil
}
`
	active, _ := hotallocMessages(t, src)
	if got := countContaining(active, "leafAlloc", "hot via root repro/internal/fix.Hot"); got != 1 {
		t.Errorf("leafAlloc findings = %d, want 1 with provenance\nall: %v", got, active)
	}
	// coldOnly is called only inside an error-tail return: not pulled.
	if got := countContaining(active, "coldOnly"); got != 0 {
		t.Errorf("coldOnly pulled into hot closure: %v", active)
	}
	// guarded is called under a len() guard: the guard excuses only
	// allocation constructs, the callee is still hot.
	if got := countContaining(active, "guarded"); got != 1 {
		t.Errorf("guarded findings = %d, want 1 (guards excuse allocs, not calls)\nall: %v", got, active)
	}
}

func TestHotallocSuppression(t *testing.T) {
	src := `package fix

//nebula:hotpath
func Hot(n int) []float64 {
	//nebula:lint-ignore hotalloc one-time setup measured off the loop
	return make([]float64, n)
}
`
	active, suppressed := hotallocMessages(t, src)
	if len(active) != 0 {
		t.Errorf("active = %v, want none", active)
	}
	if len(suppressed) != 1 || !strings.Contains(suppressed[0], "make allocates") {
		t.Errorf("suppressed = %v, want one make finding", suppressed)
	}
}

func TestHotallocNoRootsNoFindings(t *testing.T) {
	src := `package fix

func Cold() []float64 {
	return make([]float64, 1024)
}
`
	active, suppressed := hotallocMessages(t, src)
	if len(active)+len(suppressed) != 0 {
		t.Errorf("findings without any //nebula:hotpath root: %v %v", active, suppressed)
	}
}
