package lint

import "testing"

func TestFloatEqFlagsComparisons(t *testing.T) {
	src := `package sim

func Converged(a, b float64) bool { return a == b }

func Mismatch(x float32, y float32) bool { return x != y }

func AgainstConstant(rate float64) bool { return rate == 0.5 }
`
	active, _ := partition(runFixture(t, FloatEqAnalyzer(), "repro/internal/sim", src))
	if len(active) != 3 {
		t.Fatalf("findings %d, want 3: %+v", len(active), active)
	}
}

func TestFloatEqZeroGuardAndIntsExempt(t *testing.T) {
	src := `package sim

func Guard(variance float64) float64 {
	if variance == 0 {
		return 1
	}
	if 0.0 != variance {
		return variance
	}
	return variance
}

func Ints(a, b int) bool { return a == b }
`
	if fs := runFixture(t, FloatEqAnalyzer(), "repro/internal/sim", src); len(fs) != 0 {
		t.Fatalf("zero guards and int comparisons should pass, got %+v", fs)
	}
}

func TestFloatEqSuppressedFinding(t *testing.T) {
	src := `package sim

// Sentinel is an exact bit-pattern flag, never computed.
const Sentinel = 2.0

func IsSentinel(v float64) bool {
	//nebula:lint-ignore float-eq sentinel is assigned, never accumulated
	return v == Sentinel
}
`
	active, suppressed := partition(runFixture(t, FloatEqAnalyzer(), "repro/internal/sim", src))
	if len(active) != 0 || len(suppressed) != 1 {
		t.Fatalf("active %d suppressed %d, want 0/1: %+v", len(active), len(suppressed), active)
	}
}
