package convert

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/train"
)

// Shared trained fixtures: training even small nets repeatedly is the slow
// part of this package's tests.
var (
	fixtureOnce sync.Once
	fixMLP      *nn.Network
	fixLeNet    *nn.Network
	fixTrain    *dataset.Dataset
	fixTest     *dataset.Dataset
)

func fixtures(t *testing.T) (*nn.Network, *nn.Network, *dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixTrain, fixTest = dataset.TrainTest(dataset.MNISTLike, 400, 150, 31)
		fixMLP = models.NewMLP3(1, 16, 10, rng.New(7))
		cfg := train.DefaultConfig()
		cfg.Epochs = 6
		train.Run(fixMLP, fixTrain, fixTest, cfg)

		fixLeNet = models.NewLeNet5(1, 16, 10, rng.New(8))
		cfg.Epochs = 5
		train.Run(fixLeNet, fixTrain, fixTest, cfg)
	})
	return fixMLP, fixLeNet, fixTrain, fixTest
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if p := pearson(a, a); math.Abs(p-1) > 1e-12 {
		t.Fatalf("self-correlation = %v", p)
	}
	b := []float64{4, 3, 2, 1}
	if p := pearson(a, b); math.Abs(p+1) > 1e-12 {
		t.Fatalf("anti-correlation = %v", p)
	}
	c := []float64{5, 5, 5, 5}
	if p := pearson(a, c); p != 0 {
		t.Fatalf("constant vector correlation = %v", p)
	}
}

func TestFoldBatchNormRemovesBN(t *testing.T) {
	r := rng.New(3)
	net := nn.NewNetwork("bn-net",
		nn.NewConv2D("c", 1, 4, 3, 3, 1, 1, 1, r),
		nn.NewBatchNorm2D("bn", 4),
		nn.NewReLU("relu"),
	)
	// Push some batches through so BN has non-trivial running stats.
	for i := 0; i < 20; i++ {
		x := tensor.New(4, 1, 8, 8)
		for j := range x.Data() {
			x.Data()[j] = r.NormFloat64()*2 + 1
		}
		net.Forward(x, true)
	}
	folded, err := FoldBatchNorm(net)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range folded.Layers() {
		if _, ok := l.(*nn.BatchNorm2D); ok {
			t.Fatal("BN layer survived folding")
		}
	}
	// Folded network must match original inference outputs.
	x := tensor.New(2, 1, 8, 8)
	for j := range x.Data() {
		x.Data()[j] = r.NormFloat64()
	}
	want := net.Forward(x, false)
	got := folded.Forward(x, false)
	for i := range want.Data() {
		if math.Abs(want.Data()[i]-got.Data()[i]) > 1e-9 {
			t.Fatalf("folded output differs at %d: %v vs %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestFoldBatchNormDoesNotMutateSource(t *testing.T) {
	r := rng.New(4)
	net := nn.NewNetwork("bn-net",
		nn.NewConv2D("c", 1, 2, 3, 3, 1, 1, 1, r),
		nn.NewBatchNorm2D("bn", 2),
	)
	orig := net.Layers()[0].(*nn.Conv2D).Weight.Value.Clone()
	if _, err := FoldBatchNorm(net); err != nil {
		t.Fatal(err)
	}
	now := net.Layers()[0].(*nn.Conv2D).Weight.Value
	for i := range orig.Data() {
		if orig.Data()[i] != now.Data()[i] {
			t.Fatal("FoldBatchNorm mutated the source network")
		}
	}
}

func TestConvertRejectsMaxPool(t *testing.T) {
	r := rng.New(5)
	net := nn.NewNetwork("bad",
		nn.NewConv2D("c", 1, 2, 3, 3, 1, 1, 1, r),
		nn.NewReLU("relu"),
		nn.NewMaxPool2D("mp", 2, 2),
		nn.NewFlatten("f"),
		nn.NewLinear("fc", 2*8*8, 10, r),
	)
	d := dataset.Generate(dataset.MNISTLike, 10, 1)
	if _, err := Convert(net, d, DefaultConfig()); err == nil {
		t.Fatal("max pooling must be rejected")
	} else if !strings.Contains(err.Error(), "max pooling") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestConvertRequiresLinearReadout(t *testing.T) {
	r := rng.New(6)
	net := nn.NewNetwork("bad",
		nn.NewLinear("fc", 4, 2, r),
		nn.NewReLU("relu"),
	)
	d := dataset.Generate(dataset.MNISTLike, 4, 1)
	if _, err := Convert(net, d, DefaultConfig()); err == nil {
		t.Fatal("network ending in ReLU must be rejected")
	}
}

func TestConvertedMLPAccuracy(t *testing.T) {
	mlp, _, tr, te := fixtures(t)
	annAcc := train.Evaluate(mlp, te, 32)
	conv, err := Convert(mlp, tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := conv.Evaluate(te, 120, 60, 99)
	if res.Accuracy < annAcc-0.20 {
		t.Fatalf("SNN accuracy %.3f too far below ANN %.3f", res.Accuracy, annAcc)
	}
	if res.MeanInputRate <= 0 || res.MeanInputRate > 1 {
		t.Fatalf("input rate %v", res.MeanInputRate)
	}
}

func TestMoreTimestepsHelp(t *testing.T) {
	// Core premise of the paper's hybrid study: accuracy improves (or at
	// worst saturates) with longer evidence-integration windows.
	mlp, _, tr, te := fixtures(t)
	conv, err := Convert(mlp, tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	short := conv.Evaluate(te, 5, 80, 7).Accuracy
	long := conv.Evaluate(te, 150, 80, 7).Accuracy
	if long < short-0.05 {
		t.Fatalf("accuracy degraded with longer window: T=5 %.3f vs T=150 %.3f", short, long)
	}
}

func TestConvertedLeNetRunsAndSpikes(t *testing.T) {
	_, lenet, tr, te := fixtures(t)
	conv, err := Convert(lenet, tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := conv.Evaluate(te, 60, 20, 3)
	if res.Accuracy < 0.3 {
		t.Fatalf("converted LeNet accuracy %.3f", res.Accuracy)
	}
	// Activity must be recorded for conv, pool and dense stages.
	if len(res.MeanActivity) < 4 {
		t.Fatalf("activity for %d stages only", len(res.MeanActivity))
	}
	for i, a := range res.MeanActivity[:len(res.MeanActivity)-1] {
		if a < 0 || a > 1 {
			t.Fatalf("stage %d activity %v out of [0,1]", i, a)
		}
	}
}

func TestCorrelationHighForMLP(t *testing.T) {
	mlp, _, tr, te := fixtures(t)
	conv, err := Convert(mlp, tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	corr := conv.Correlation(te, 200, 10, 5)
	if len(corr) != 2 { // two hidden stages (fc1, fc2); output not included
		t.Fatalf("correlation entries: %d", len(corr))
	}
	for s, c := range corr {
		if c < 0.5 {
			t.Fatalf("stage %d ANN/SNN correlation %.3f too low", s, c)
		}
	}
}

func TestCorrelationImprovesWithTimesteps(t *testing.T) {
	// Fig. 10: longer windows give higher ANN/SNN correlation.
	mlp, _, tr, te := fixtures(t)
	conv, err := Convert(mlp, tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	short := conv.Correlation(te, 10, 8, 5)
	long := conv.Correlation(te, 300, 8, 5)
	last := len(short) - 1
	if long[last] < short[last]-0.02 {
		t.Fatalf("deep-layer correlation did not improve: T=10 %.3f vs T=300 %.3f", short[last], long[last])
	}
}

func TestLambdaPositive(t *testing.T) {
	mlp, _, tr, _ := fixtures(t)
	conv, err := Convert(mlp, tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for s, l := range conv.Lambda {
		if l <= 0 {
			t.Fatalf("lambda[%d] = %v", s, l)
		}
	}
}

func TestLeakyConversionDegradesGracefully(t *testing.T) {
	// Leaky IF dynamics lose some accuracy vs pure IF (charge decays
	// between spikes) but inference must still work.
	mlp, _, tr, te := fixtures(t)
	cfg := DefaultConfig()
	pure, err := Convert(mlp, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Leak = 0.95
	cfg.Refractory = 1
	leaky, err := Convert(mlp, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pureAcc := pure.Evaluate(te, 120, 60, 5).Accuracy
	leakyAcc := leaky.Evaluate(te, 120, 60, 5).Accuracy
	if leakyAcc < 0.3 {
		t.Fatalf("leaky network collapsed: %v", leakyAcc)
	}
	if leakyAcc > pureAcc+0.1 {
		t.Fatalf("leak should not help: pure %v leaky %v", pureAcc, leakyAcc)
	}
}
