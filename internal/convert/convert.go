// Package convert implements the ANN-to-SNN conversion pipeline of §V-A of
// the NEBULA paper, adapted from Cao et al., Diehl et al. and Rueckauer et
// al.:
//
//   - batch-normalization layers are folded into the weights and biases of
//     the preceding convolution, producing a BN-free network;
//   - max pooling is rejected (networks must be trained with average
//     pooling) and an IF neuron layer is inserted after every pooling
//     stage;
//   - thresholds are set by data-based weight normalization: per-stage
//     activation maxima λ are measured on calibration data and each
//     stage's weights/biases are rescaled so all IF thresholds are 1.
//
// The package also provides the ANN/SNN feature-map correlation analysis
// of Fig. 10 and accuracy evaluation of converted networks (Table I).
package convert

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
)

// Config controls conversion.
type Config struct {
	// Percentile used for the data-based normalization factors λ
	// (Rueckauer et al. recommend a high percentile rather than the raw
	// max for robustness).
	Percentile float64
	// CalibrationSamples is the number of images used to measure λ.
	CalibrationSamples int
	// Mode is the IF reset behaviour.
	Mode snn.ResetMode
	// Gain is the Poisson input rate per unit pixel intensity.
	Gain float64
	// Leak is the per-step membrane retention factor applied to every IF
	// stage (1 = pure IF, the conversion default; <1 adds the leaky
	// dynamics §II-A mentions as an extension). Zero means 1.
	Leak float64
	// Refractory is the post-spike dead time in timesteps (0 default).
	Refractory int
}

// DefaultConfig returns the settings used throughout the reproduction.
func DefaultConfig() Config {
	return Config{Percentile: 99.5, CalibrationSamples: 64, Mode: snn.ResetBySubtraction, Gain: 1.0}
}

// Stage links one layer of the spiking network back to the span of folded
// ANN layers it implements. The hybrid splitter uses this to cut the
// network at any stage boundary.
type Stage struct {
	// SNNLayer indexes into Converted.SNN.Layers.
	SNNLayer int
	// ANNStart and ANNEnd delimit the folded ANN layers [ANNStart,
	// ANNEnd] realized by this stage; ANNEnd is the layer whose output is
	// the stage's activation.
	ANNStart, ANNEnd int
	// Weighted reports whether the stage carries crossbar weights
	// (conv/dense/output, not pool/flatten).
	Weighted bool
	// Lambda is the activation scale divided out of this stage's outputs
	// (1 for stateless stages and the output read-out).
	Lambda float64
	// Kind is one of "conv", "dense", "pool", "flatten", "output".
	Kind string
}

// Converted bundles a spiking network with the metadata linking it back to
// its source ANN.
type Converted struct {
	SNN *snn.Network
	// Folded is the BN-free ANN the SNN was derived from.
	Folded *nn.Network
	// Lambda[s] is the activation scale of spiking stage s (the
	// normalization factor divided out of that stage's outputs).
	Lambda []float64
	// StageANNLayer[s] is the index into Folded.Layers() whose output is
	// the ANN counterpart of spiking stage s (the post-ReLU activation).
	StageANNLayer []int
	// Stages describes every SNN layer in order, including stateless ones.
	Stages []Stage
	Cfg    Config
}

// FoldBatchNorm returns a copy of net with every BatchNorm2D folded into
// the preceding Conv2D, per §V-A ("Handling Batch-Normalization Layers").
// Other layers are deep-copied unchanged. Networks containing layer types
// the conversion pipeline does not support are rejected with an error.
func FoldBatchNorm(net *nn.Network) (*nn.Network, error) {
	src := net.Layers()
	out := nn.NewNetwork(net.Name() + "-folded")
	for i := 0; i < len(src); i++ {
		if conv, ok := src[i].(*nn.Conv2D); ok && i+1 < len(src) {
			if bn, ok2 := src[i+1].(*nn.BatchNorm2D); ok2 {
				out.Add(foldConvBN(conv, bn))
				i++ // skip the BN layer
				continue
			}
		}
		clone, err := cloneLayer(src[i])
		if err != nil {
			return nil, err
		}
		out.Add(clone)
	}
	return out, nil
}

// foldConvBN merges BN statistics into a cloned convolution:
// w' = γ/√(σ²+ε)·w ;  b' = γ(b−μ)/√(σ²+ε) + β.
func foldConvBN(conv *nn.Conv2D, bn *nn.BatchNorm2D) *nn.Conv2D {
	c := cloneConv(conv)
	gamma, beta := bn.Gamma.Value.Data(), bn.Beta.Value.Data()
	mean, variance := bn.RunningMean.Data(), bn.RunningVar.Data()
	w := c.Weight.Value
	b := c.Bias.Value.Data()
	perOut := w.Size() / w.Dim(0)
	wd := w.Data()
	for oc := 0; oc < w.Dim(0); oc++ {
		scale := gamma[oc] / math.Sqrt(variance[oc]+bn.Eps)
		for j := 0; j < perOut; j++ {
			wd[oc*perOut+j] *= scale
		}
		b[oc] = scale*(b[oc]-mean[oc]) + beta[oc]
	}
	return c
}

func cloneConv(src *nn.Conv2D) *nn.Conv2D {
	c := nn.NewConv2D(src.Name(), src.InC, src.OutC, src.KH, src.KW, src.Stride, src.Pad, src.Groups, rng.New(0))
	copy(c.Weight.Value.Data(), src.Weight.Value.Data())
	copy(c.Bias.Value.Data(), src.Bias.Value.Data())
	return c
}

func cloneLinear(src *nn.Linear) *nn.Linear {
	l := nn.NewLinear(src.Name(), src.In, src.Out, rng.New(0))
	copy(l.Weight.Value.Data(), src.Weight.Value.Data())
	copy(l.Bias.Value.Data(), src.Bias.Value.Data())
	return l
}

// cloneLayer deep-copies the layer types the conversion pipeline supports
// and rejects anything else: an unknown layer is a caller input problem
// (the network was built outside the supported zoo), not a simulator bug.
func cloneLayer(l nn.Layer) (nn.Layer, error) {
	switch v := l.(type) {
	case *nn.Conv2D:
		return cloneConv(v), nil
	case *nn.Linear:
		return cloneLinear(v), nil
	case *nn.ReLU:
		return nn.NewClippedReLU(v.Name(), v.Clip), nil
	case *nn.AvgPool2D:
		return nn.NewAvgPool2D(v.Name(), v.K, v.Stride), nil
	case *nn.MaxPool2D:
		return nn.NewMaxPool2D(v.Name(), v.K, v.Stride), nil
	case *nn.Flatten:
		return nn.NewFlatten(v.Name()), nil
	case *nn.BatchNorm2D:
		// Standalone BN (no preceding conv) cannot be folded; copy it.
		bn := nn.NewBatchNorm2D(v.Name(), v.C)
		copy(bn.Gamma.Value.Data(), v.Gamma.Value.Data())
		copy(bn.Beta.Value.Data(), v.Beta.Value.Data())
		copy(bn.RunningMean.Data(), v.RunningMean.Data())
		copy(bn.RunningVar.Data(), v.RunningVar.Data())
		return bn, nil
	default:
		return nil, fmt.Errorf("convert: cannot clone layer %s (%T)", l.Name(), l)
	}
}

// stage is an intermediate grouping of folded ANN layers into spiking
// stages: each weighted layer (conv/linear) or pooling layer becomes one
// stage whose output passes through IF neurons.
type stage struct {
	kind     string // "conv", "dense", "pool", "flatten", "output"
	conv     *nn.Conv2D
	lin      *nn.Linear
	pool     *nn.AvgPool2D
	annStart int // index in folded.Layers() of the stage's first layer
	annLayer int // index in folded.Layers() of the stage's output activation
}

// buildStages walks the folded network and groups layers into stages. The
// final Linear becomes the non-firing output stage.
func buildStages(folded *nn.Network) ([]stage, error) {
	layers := folded.Layers()
	var stages []stage
	for i := 0; i < len(layers); i++ {
		switch v := layers[i].(type) {
		case *nn.Conv2D:
			s := stage{kind: "conv", conv: v, annStart: i, annLayer: i}
			// The stage's ANN activation is the following ReLU if present.
			if i+1 < len(layers) {
				if _, ok := layers[i+1].(*nn.ReLU); ok {
					s.annLayer = i + 1
					i++
				}
			}
			stages = append(stages, s)
		case *nn.Linear:
			s := stage{kind: "dense", lin: v, annStart: i, annLayer: i}
			if i+1 < len(layers) {
				if _, ok := layers[i+1].(*nn.ReLU); ok {
					s.annLayer = i + 1
					i++
					stages = append(stages, s)
					continue
				}
			}
			// Linear with no following ReLU: the read-out layer.
			s.kind = "output"
			stages = append(stages, s)
		case *nn.AvgPool2D:
			stages = append(stages, stage{kind: "pool", pool: v, annStart: i, annLayer: i})
		case *nn.Flatten:
			stages = append(stages, stage{kind: "flatten", annStart: i, annLayer: i})
		case *nn.MaxPool2D:
			return nil, fmt.Errorf("convert: %s uses max pooling; retrain with average pooling (§V-A)", v.Name())
		case *nn.BatchNorm2D:
			return nil, fmt.Errorf("convert: unfolded batch norm %s; call FoldBatchNorm first", v.Name())
		default:
			return nil, fmt.Errorf("convert: unsupported layer %s (%T)", layers[i].Name(), layers[i])
		}
	}
	if len(stages) == 0 || stages[len(stages)-1].kind != "output" {
		return nil, fmt.Errorf("convert: network must end in a Linear read-out layer")
	}
	return stages, nil
}

// Convert builds a rate-coded spiking network from a trained ANN using
// data-based weight normalization on calibration images.
func Convert(net *nn.Network, calib *dataset.Dataset, cfg Config) (*Converted, error) {
	folded, err := FoldBatchNorm(net)
	if err != nil {
		return nil, err
	}
	stages, err := buildStages(folded)
	if err != nil {
		return nil, err
	}

	// Measure per-layer activation maxima λ on calibration data.
	n := cfg.CalibrationSamples
	if n > calib.Len() {
		n = calib.Len()
	}
	x, _ := calib.Batch(0, n)
	outs := folded.ForwardCapture(x, false)

	lambda := func(layerIdx int) float64 {
		v := quant.Percentile(outs[layerIdx].Data(), cfg.Percentile)
		if v <= 0 {
			// A dead stage: keep scale 1 to avoid dividing by zero.
			return 1
		}
		return v
	}

	conv := &Converted{Folded: folded, Cfg: cfg}
	var snnLayers []snn.Layer
	prevLambda := 1.0 // inputs are pixel intensities in [0, 1]
	addStage := func(kind string, s stage, lam float64, weighted bool) {
		conv.Stages = append(conv.Stages, Stage{
			SNNLayer: len(snnLayers) - 1,
			ANNStart: s.annStart,
			ANNEnd:   s.annLayer,
			Weighted: weighted,
			Lambda:   lam,
			Kind:     kind,
		})
	}
	for _, s := range stages {
		switch s.kind {
		case "conv":
			lam := lambda(s.annLayer)
			w := s.conv.Weight.Value.Clone()
			w.ScaleInPlace(prevLambda / lam)
			b := s.conv.Bias.Value.Clone()
			b.ScaleInPlace(1 / lam)
			snnLayers = append(snnLayers, snn.NewConv(s.conv.Name(), w, b, s.conv.Stride, s.conv.Pad, s.conv.Groups, 1.0, cfg.Mode))
			conv.Lambda = append(conv.Lambda, lam)
			conv.StageANNLayer = append(conv.StageANNLayer, s.annLayer)
			addStage("conv", s, lam, true)
			prevLambda = lam
		case "dense":
			lam := lambda(s.annLayer)
			w := s.lin.Weight.Value.Clone()
			w.ScaleInPlace(prevLambda / lam)
			b := s.lin.Bias.Value.Clone()
			b.ScaleInPlace(1 / lam)
			snnLayers = append(snnLayers, snn.NewDense(s.lin.Name(), w, b, 1.0, cfg.Mode))
			conv.Lambda = append(conv.Lambda, lam)
			conv.StageANNLayer = append(conv.StageANNLayer, s.annLayer)
			addStage("dense", s, lam, true)
			prevLambda = lam
		case "pool":
			// Average pooling of unit-scale rates stays unit-scale; the
			// added IF layer (threshold 1, subtraction reset) re-emits
			// spikes and preserves the long-run average rate exactly.
			snnLayers = append(snnLayers, snn.NewAvgPoolIF(s.pool.Name(), s.pool.K, s.pool.Stride, 1.0, cfg.Mode))
			conv.Lambda = append(conv.Lambda, prevLambda)
			conv.StageANNLayer = append(conv.StageANNLayer, s.annLayer)
			addStage("pool", s, prevLambda, false)
		case "flatten":
			snnLayers = append(snnLayers, snn.NewFlatten("flatten"))
			addStage("flatten", s, prevLambda, false)
		case "output":
			w := s.lin.Weight.Value.Clone()
			w.ScaleInPlace(prevLambda)
			b := s.lin.Bias.Value.Clone()
			snnLayers = append(snnLayers, snn.NewOutput(s.lin.Name(), w, b))
			addStage("output", s, 1, true)
		}
	}
	conv.SNN = snn.NewNetwork(net.Name()+"-snn", snnLayers...)
	if cfg.Leak > 0 && cfg.Leak < 1 || cfg.Refractory > 0 {
		leak := cfg.Leak
		if leak <= 0 {
			leak = 1
		}
		for _, l := range conv.SNN.Layers {
			switch v := l.(type) {
			case *snn.Dense:
				v.IF.Leak, v.IF.Refractory = leak, cfg.Refractory
			case *snn.Conv:
				v.IF.Leak, v.IF.Refractory = leak, cfg.Refractory
			case *snn.AvgPoolIF:
				v.IF.Leak, v.IF.Refractory = leak, cfg.Refractory
			}
		}
	}
	return conv, nil
}

// EvalResult reports SNN accuracy and spiking statistics over a dataset.
type EvalResult struct {
	Accuracy float64
	// MeanActivity[l] is spikes per neuron per timestep for stateful
	// layer l, averaged over evaluated images (Fig. 4).
	MeanActivity []float64
	// MeanInputRate is the average encoder spike probability.
	MeanInputRate float64
	Timesteps     int
	Samples       int
}

// Evaluate runs the converted SNN over up to maxSamples of data for T
// timesteps per image and reports accuracy plus layer activity. Images
// are evaluated concurrently on up to GOMAXPROCS worker networks; each
// image's encoder seed derives deterministically from its index, so the
// result is independent of scheduling.
func (c *Converted) Evaluate(data *dataset.Dataset, T, maxSamples int, seed uint64) EvalResult {
	n := maxSamples
	if n > data.Len() {
		n = data.Len()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	// Pre-derive one encoder RNG per image (order-independent).
	encs := make([]*rng.Rand, n)
	base := rng.New(seed)
	for i := range encs {
		encs[i] = base.Split()
	}

	type partial struct {
		correct   int
		activity  []float64
		inputRate float64
	}
	results := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker gets a private copy of the network's mutable
			// state by rebuilding the layer list with fresh IF state
			// (weights are shared read-only).
			net := c.cloneSNN()
			p := &results[w]
			for i := w; i < n; i += workers {
				img, label := data.Sample(i)
				enc := snn.NewPoissonEncoder(c.Cfg.Gain, encs[i])
				res := net.Run(img, T, enc)
				if res.Predict() == label {
					p.correct++
				}
				act := res.ActivityPerLayer()
				if p.activity == nil {
					p.activity = make([]float64, len(act))
				}
				for j, a := range act {
					p.activity[j] += a
				}
				p.inputRate += res.InputSpikes / float64(res.InputNeurons) / float64(T)
			}
		}(w)
	}
	wg.Wait()

	out := EvalResult{Timesteps: T, Samples: n}
	var activity []float64
	inputRate := 0.0
	correct := 0
	for _, p := range results {
		correct += p.correct
		inputRate += p.inputRate
		if p.activity != nil {
			if activity == nil {
				activity = make([]float64, len(p.activity))
			}
			for j, a := range p.activity {
				activity[j] += a
			}
		}
	}
	for j := range activity {
		activity[j] /= float64(n)
	}
	out.Accuracy = float64(correct) / float64(n)
	out.MeanActivity = activity
	out.MeanInputRate = inputRate / float64(n)
	return out
}

// cloneSNN builds a network sharing weights but with private membrane
// state, for concurrent evaluation.
func (c *Converted) cloneSNN() *snn.Network {
	copyDynamics := func(dst, src *snn.IFState) {
		dst.Leak = src.Leak
		dst.Refractory = src.Refractory
	}
	layers := make([]snn.Layer, len(c.SNN.Layers))
	for i, l := range c.SNN.Layers {
		switch v := l.(type) {
		case *snn.Dense:
			d := snn.NewDense(v.Name(), v.W, v.B, v.IF.VTh, v.IF.Mode)
			copyDynamics(d.IF, v.IF)
			layers[i] = d
		case *snn.Conv:
			d := snn.NewConv(v.Name(), v.W, v.B, v.Stride, v.Pad, v.Groups, v.IF.VTh, v.IF.Mode)
			copyDynamics(d.IF, v.IF)
			layers[i] = d
		case *snn.AvgPoolIF:
			d := snn.NewAvgPoolIF(v.Name(), v.K, v.Stride, v.IF.VTh, v.IF.Mode)
			copyDynamics(d.IF, v.IF)
			layers[i] = d
		case *snn.Flatten:
			layers[i] = snn.NewFlatten(v.Name())
		case *snn.Output:
			layers[i] = snn.NewOutput(v.Name(), v.W, v.B)
		default:
			// Convert built this network from exactly the layer kinds above,
			// so an unknown type here is simulator corruption, not input.
			//nebula:lint-ignore panic-audit SNN layer set is closed under Convert; unknown type is an internal invariant violation
			panic(fmt.Sprintf("convert: cannot clone SNN layer %T", l))
		}
	}
	return snn.NewNetwork(c.SNN.Name(), layers...)
}

// Correlation computes the Pearson correlation between the ANN activation
// map and the SNN firing-rate map of every spiking stage for a batch of
// images, reproducing the Fig. 10 analysis. Entry s corresponds to
// spiking stage s (same order as Lambda).
func (c *Converted) Correlation(data *dataset.Dataset, T, samples int, seed uint64) []float64 {
	r := rng.New(seed)
	n := samples
	if n > data.Len() {
		n = data.Len()
	}
	sums := make([]float64, len(c.StageANNLayer))
	for i := 0; i < n; i++ {
		img, _ := data.Sample(i)
		batch := img.Reshape(append([]int{1}, img.Shape()...)...)
		annOuts := c.Folded.ForwardCapture(batch, false)
		enc := snn.NewPoissonEncoder(c.Cfg.Gain, r.Split())
		c.SNN.Run(img, T, enc)
		rates := c.SNN.StatefulRates(T)
		for s, annIdx := range c.StageANNLayer {
			ann := annOuts[annIdx].Data()
			normalized := make([]float64, len(ann))
			for j, v := range ann {
				normalized[j] = v / c.Lambda[s]
			}
			sums[s] += pearson(normalized, rates[s].Data())
		}
	}
	for s := range sums {
		sums[s] /= float64(n)
	}
	return sums
}

// pearson returns the Pearson correlation coefficient of two equal-length
// vectors (0 when either is constant).
func pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		// Both vectors come from the same stage of the same network, so a
		// length mismatch can only be an internal indexing bug.
		//nebula:lint-ignore panic-audit ANN and SNN maps of one stage always match; mismatch is an internal invariant violation
		panic("convert: pearson length mismatch")
	}
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
