package convert

import (
	"runtime"
	"testing"
)

// TestEvaluateDeterministicAcrossRuns is the worker-pool regression test:
// it runs the same multi-worker conversion twice and requires bitwise
// identical results. Evaluate promises schedule independence (per-image
// encoder RNGs derived up front, one result slot per worker, fixed
// summation order); any data race or schedule-dependent accumulation
// breaks the bitwise equality below, and under `go test -race` the race
// detector flags the unsynchronized access directly.
func TestEvaluateDeterministicAcrossRuns(t *testing.T) {
	if old := runtime.GOMAXPROCS(0); old < 2 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(old)
	}
	mlp, _, tr, te := fixtures(t)
	conv, err := Convert(mlp, tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	a := conv.Evaluate(te, 40, 24, 17)
	b := conv.Evaluate(te, 40, 24, 17)

	if a.Accuracy != b.Accuracy {
		t.Fatalf("accuracy differs across runs: %v vs %v", a.Accuracy, b.Accuracy)
	}
	if a.MeanInputRate != b.MeanInputRate {
		t.Fatalf("input rate differs across runs: %v vs %v", a.MeanInputRate, b.MeanInputRate)
	}
	if a.Samples != b.Samples || a.Timesteps != b.Timesteps {
		t.Fatalf("metadata differs: %+v vs %+v", a, b)
	}
	if len(a.MeanActivity) != len(b.MeanActivity) {
		t.Fatalf("activity lengths differ: %d vs %d", len(a.MeanActivity), len(b.MeanActivity))
	}
	for i := range a.MeanActivity {
		if a.MeanActivity[i] != b.MeanActivity[i] {
			t.Fatalf("layer %d activity differs: %v vs %v", i, a.MeanActivity[i], b.MeanActivity[i])
		}
	}
}
