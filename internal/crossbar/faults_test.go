package crossbar

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestStuckAPPairCancelsExactly(t *testing.T) {
	// Property: whatever weight a pair was programmed to, sticking BOTH of
	// its devices at AP collapses the differential to exactly zero — the
	// two parallel-path currents cancel, so the pair contributes nothing.
	p := device.DefaultParams()
	r := rng.New(11)
	const rows, cols = 8, 8
	for trial := 0; trial < 20; trial++ {
		cb := New(rows, cols, p, Config{}, nil)
		if err := cb.Program(randWeights(r, rows, cols, 1), 1); err != nil {
			t.Fatal(err)
		}
		row, col := r.Intn(rows), r.Intn(cols)
		cb.SetStuck(row, col, true, StuckAP)
		cb.SetStuck(row, col, false, StuckAP)
		if got := cb.EffectiveWeight(row, col); got != 0 {
			t.Fatalf("trial %d: stuck-AP pair weight %v, want exactly 0", trial, got)
		}
		// Drive only the faulted row: the faulted column must read 0.
		x := make([]float64, rows)
		x[row] = 1
		out, err := cb.MAC(x)
		if err != nil {
			t.Fatal(err)
		}
		if out[col] != 0 {
			t.Fatalf("trial %d: stuck-AP pair MAC contribution %v, want exactly 0", trial, out[col])
		}
	}
}

func TestStuckPContributesFullScale(t *testing.T) {
	// A single device stuck at P presents full-scale conductance: with the
	// sibling at AP the pair reads ±wmax regardless of the programmed
	// weight.
	p := device.DefaultParams()
	r := rng.New(12)
	const rows, cols = 4, 4
	for trial := 0; trial < 20; trial++ {
		cb := New(rows, cols, p, Config{}, nil)
		if err := cb.Program(tensor.New(rows, cols), 1); err != nil {
			t.Fatal(err)
		}
		row, col := r.Intn(rows), r.Intn(cols)
		plus := r.Bernoulli(0.5)
		cb.SetStuck(row, col, plus, StuckP)
		want := 1.0
		if !plus {
			want = -1.0
		}
		if got := cb.EffectiveWeight(row, col); math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: stuck-P weight %v, want %v", trial, got, want)
		}
		x := make([]float64, rows)
		x[row] = 1
		out, err := cb.MAC(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out[col]-want) > 1e-12 {
			t.Fatalf("trial %d: stuck-P MAC %v, want %v", trial, out[col], want)
		}
	}
}

func TestInjectedFaultsSurviveReprogramming(t *testing.T) {
	// Recorded faults are sticky: Program must re-apply them rather than
	// silently overwriting the stuck levels (the old footgun).
	p := device.DefaultParams()
	const rows, cols = 16, 16
	cb := New(rows, cols, p, Config{}, rng.New(5))
	w := randWeights(rng.New(6), rows, cols, 1)
	if err := cb.Program(w, 1); err != nil {
		t.Fatal(err)
	}
	n := cb.InjectStuckFaults(rng.New(7), 0.2, StuckAP)
	if n == 0 {
		t.Fatal("no faults injected at 20%")
	}
	before := make([]float64, 0, rows*cols)
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			before = append(before, cb.EffectiveWeight(row, col))
		}
	}
	if err := cb.Program(w, 1); err != nil {
		t.Fatal(err)
	}
	i := 0
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			if got := cb.EffectiveWeight(row, col); got != before[i] {
				t.Fatalf("pair (%d,%d) changed across reprogram: %v -> %v (faults not sticky)",
					row, col, before[i], got)
			}
			i++
		}
	}
}

func TestVerifyFindsExactlyTheFaultedPairs(t *testing.T) {
	p := device.DefaultParams()
	const rows, cols = 8, 8
	cb := New(rows, cols, p, Config{}, nil)
	if err := cb.Program(randWeights(rng.New(8), rows, cols, 1), 1); err != nil {
		t.Fatal(err)
	}
	if m := cb.Verify(); m.Count() != 0 {
		t.Fatalf("clean array reports %d faults", m.Count())
	}
	cb.SetWeak(2, 3, true, 0)
	cb.SetStuck(5, 1, false, StuckP)
	cb.KillRow(6)
	m := cb.Verify()
	if len(m.DeadRows) != 1 || m.DeadRows[0] != 6 {
		t.Fatalf("dead rows %v, want [6]", m.DeadRows)
	}
	found := map[[2]int]bool{}
	for _, pf := range m.Pairs {
		found[[2]int{pf.Row, pf.Col}] = true
	}
	// SetWeak to level 0 could coincide with the target; be tolerant only
	// about that specific pair if its target really was level 0.
	if !found[[2]int{5, 1}] {
		t.Fatalf("stuck pair (5,1) not found: %+v", m.Pairs)
	}
	if m.ScanReads != rows*cols+rows+cols {
		t.Fatalf("scan reads %d, want %d", m.ScanReads, rows*cols+rows+cols)
	}
}

func TestFaultMapSameSeedDeterministic(t *testing.T) {
	// The same seed must yield an identical FaultMap twice — injection,
	// programming variation and the scan are all replayable.
	p := device.DefaultParams()
	build := func() *FaultMap {
		cfg := Config{ProgramVariationLevels: 0.8, SpareRows: 2, SpareCols: 2}
		cb := New(32, 32, p, cfg, rng.New(42))
		if err := cb.Program(randWeights(rng.New(43), 32, 32, 1), 1); err != nil {
			t.Fatal(err)
		}
		cb.InjectStuckFaults(rng.New(44), 0.1, StuckAP)
		cb.KillRow(3)
		return cb.Verify()
	}
	m1, m2 := build(), build()
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("fault maps differ across identical seeds:\n%+v\n%+v", m1, m2)
	}
	if m1.Count() == 0 {
		t.Fatal("fixture produced no faults")
	}
}

func TestSpareRemapRestoresLine(t *testing.T) {
	p := device.DefaultParams()
	cfg := Config{SpareRows: 2, SpareCols: 2}
	const rows, cols = 8, 8
	cb := New(rows, cols, p, cfg, nil)
	w := randWeights(rng.New(9), rows, cols, 1)
	if err := cb.Program(w, 1); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, cols)
	for col := 0; col < cols; col++ {
		want[col] = cb.EffectiveWeight(4, col)
	}
	cb.KillRow(4)
	if m := cb.Verify(); len(m.DeadRows) != 1 {
		t.Fatalf("dead rows %v", m.DeadRows)
	}
	if !cb.RemapRow(4) {
		t.Fatal("remap failed with spares available")
	}
	if m := cb.Verify(); m.Count() != 0 {
		t.Fatalf("faults remain after remap: %d", m.Count())
	}
	for col := 0; col < cols; col++ {
		if got := cb.EffectiveWeight(4, col); got != want[col] {
			t.Fatalf("col %d: remapped weight %v, want %v", col, got, want[col])
		}
	}
	if left, _ := cb.SparesLeft(); left != 1 {
		t.Fatalf("spare rows left %d, want 1", left)
	}
}

func TestCompensatePairAbsorbsStuckDevice(t *testing.T) {
	p := device.DefaultParams()
	const rows, cols = 4, 4
	cb := New(rows, cols, p, Config{}, nil)
	// Mid-scale weights leave compensation headroom on the sibling.
	w := tensor.New(rows, cols)
	for i := range w.Data() {
		w.Data()[i] = 0.2
	}
	if err := cb.Program(w, 1); err != nil {
		t.Fatal(err)
	}
	want := cb.EffectiveWeight(1, 1)
	// Plus device stuck full-on: the minus sibling compensates by rising
	// to (stuck − targetDiff), well within its range for a 0.2 weight.
	cb.SetStuck(1, 1, true, StuckP)
	if cb.EffectiveWeight(1, 1) == want {
		t.Fatal("stuck device did not disturb the pair")
	}
	if resid := cb.CompensatePair(1, 1); resid != 0 {
		t.Fatalf("compensation residual %d", resid)
	}
	if got := cb.EffectiveWeight(1, 1); got != want {
		t.Fatalf("compensated weight %v, want %v", got, want)
	}
}

func TestRetentionDriftAndRefresh(t *testing.T) {
	p := device.DefaultParams()
	cfg := Config{DriftTauSteps: 50}
	cb := New(2, 2, p, cfg, nil)
	w := tensor.FromSlice([]float64{1, 1, 1, 1}, 2, 2)
	if err := cb.Program(w, 1); err != nil {
		t.Fatal(err)
	}
	fresh, err := cb.MAC([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	cb.Tick(100)
	aged, err := cb.MAC([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	wantScale := math.Exp(-100.0 / 50.0)
	if math.Abs(aged[0]-fresh[0]*wantScale) > 1e-9 {
		t.Fatalf("drift scale: aged %v, fresh %v, want factor %v", aged[0], fresh[0], wantScale)
	}
	cb.Refresh()
	if cb.Age() != 0 {
		t.Fatalf("refresh did not reset age: %d", cb.Age())
	}
	restored, err := cb.MAC([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if restored[0] != fresh[0] {
		t.Fatalf("refresh did not restore current: %v vs %v", restored[0], fresh[0])
	}
}
