package crossbar

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func idealDot(w *tensor.Tensor, x []float64) []float64 {
	rows, cols := w.Dim(0), w.Dim(1)
	out := make([]float64, cols)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			out[c] += x[r] * w.At(r, c)
		}
	}
	return out
}

func randWeights(r *rng.Rand, rows, cols int, wmax float64) *tensor.Tensor {
	w := tensor.New(rows, cols)
	for i := range w.Data() {
		w.Data()[i] = (2*r.Float64() - 1) * wmax
	}
	return w
}

func TestProgramShapeCheck(t *testing.T) {
	cb := New(4, 4, device.DefaultParams(), Config{}, nil)
	if err := cb.Program(tensor.New(3, 4), 1); err == nil {
		t.Fatal("wrong shape accepted")
	}
	if err := cb.Program(tensor.New(4, 4), 0); err == nil {
		t.Fatal("wmax 0 accepted")
	}
}

func TestMACMatchesIdealWithinQuantization(t *testing.T) {
	r := rng.New(1)
	p := device.DefaultParams()
	const rows, cols = 16, 8
	const wmax = 1.0
	w := randWeights(r, rows, cols, wmax)
	cb := New(rows, cols, p, Config{}, nil)
	if err := cb.Program(w, wmax); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, rows)
	for i := range x {
		x[i] = r.Float64()
	}
	got, err := cb.MAC(x)
	if err != nil {
		t.Fatal(err)
	}
	want := idealDot(w, x)
	// Max quantization error per weight is wmax/(2·(states−1)); summed over
	// rows with |x|≤1 that bounds the dot-product error.
	bound := wmax / (2 * float64(p.States()-1)) * float64(rows)
	for c := range got {
		if math.Abs(got[c]-want[c]) > bound {
			t.Fatalf("col %d: crossbar %v vs ideal %v (bound %v)", c, got[c], want[c], bound)
		}
	}
}

func TestMACExactOnGridWeights(t *testing.T) {
	// Weights already on the device grid must be reproduced exactly.
	p := device.DefaultParams()
	cb := New(2, 2, p, Config{}, nil)
	q := 1.0 / float64(p.States()-1)
	w := tensor.FromSlice([]float64{q * 5, -q * 3, q * 15, 0}, 2, 2)
	if err := cb.Program(w, 1); err != nil {
		t.Fatal(err)
	}
	got, err := cb.MAC([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{q*5 + q*15, -q * 3}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("col %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestEffectiveWeightQuantizes(t *testing.T) {
	p := device.DefaultParams()
	cb := New(1, 1, p, Config{}, nil)
	if err := cb.Program(tensor.FromSlice([]float64{0.5}, 1, 1), 1); err != nil {
		t.Fatal(err)
	}
	// 0.5 * 15 = 7.5 → level 8 → 8/15
	want := 8.0 / 15
	if got := cb.EffectiveWeight(0, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("effective weight %v, want %v", got, want)
	}
}

func TestNegativeWeightUsesMinusDevice(t *testing.T) {
	p := device.DefaultParams()
	cb := New(1, 1, p, Config{}, nil)
	if err := cb.Program(tensor.FromSlice([]float64{-1}, 1, 1), 1); err != nil {
		t.Fatal(err)
	}
	if got := cb.EffectiveWeight(0, 0); got != -1 {
		t.Fatalf("effective weight %v, want -1", got)
	}
	out, _ := cb.MAC([]float64{1})
	if out[0] != -1 {
		t.Fatalf("MAC with negative weight: %v", out[0])
	}
}

func TestZeroInputRowsInactive(t *testing.T) {
	p := device.DefaultParams()
	cb := New(4, 1, p, Config{}, nil)
	w := tensor.New(4, 1).Fill(1)
	if err := cb.Program(w, 1); err != nil {
		t.Fatal(err)
	}
	cb.MAC([]float64{0, 0, 1, 0})
	s := cb.Stats()
	if s.ActiveRowSum != 1 {
		t.Fatalf("active rows %d, want 1", s.ActiveRowSum)
	}
	if s.MACs != 1 {
		t.Fatalf("MACs %d", s.MACs)
	}
}

func TestIRDropAttenuates(t *testing.T) {
	p := device.DefaultParams()
	w := tensor.New(8, 1).Fill(1)
	clean := New(8, 1, p, Config{}, nil)
	droopy := New(8, 1, p, Config{IRDropAlpha: 0.5}, nil)
	clean.Program(w, 1)
	droopy.Program(w, 1)
	x := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	a, _ := clean.MAC(x)
	b, _ := droopy.MAC(x)
	if b[0] >= a[0] {
		t.Fatalf("IR drop did not attenuate: %v vs %v", b[0], a[0])
	}
	// Fewer active rows → less droop (relative attenuation closer to 1).
	xSparse := []float64{1, 0, 0, 0, 0, 0, 0, 0}
	aS, _ := clean.MAC(xSparse)
	bS, _ := droopy.MAC(xSparse)
	if bS[0]/aS[0] <= b[0]/a[0] {
		t.Fatalf("sparse input should droop less: %v vs %v", bS[0]/aS[0], b[0]/a[0])
	}
}

func TestReadNoisePerturbs(t *testing.T) {
	p := device.DefaultParams()
	w := tensor.New(4, 1).Fill(0.5)
	cb := New(4, 1, p, Config{ReadNoiseSigma: 0.05}, rng.New(3))
	cb.Program(w, 1)
	x := []float64{1, 1, 1, 1}
	a, _ := cb.MAC(x)
	b, _ := cb.MAC(x)
	if a[0] == b[0] {
		t.Fatal("noisy MAC returned identical results")
	}
	// Noise must be small relative to the signal.
	ideal := 4 * (8.0 / 15)
	if math.Abs(a[0]-ideal)/ideal > 0.3 {
		t.Fatalf("noise too large: %v vs %v", a[0], ideal)
	}
}

func TestProgramEnergyProportionalToMoves(t *testing.T) {
	p := device.DefaultParams()
	cb := New(1, 1, p, Config{}, nil)
	cb.Program(tensor.FromSlice([]float64{1}, 1, 1), 1) // 0 → 15 levels
	e1 := cb.Stats().ProgramEnergyFJ
	if math.Abs(e1-p.WriteEnergyFJ) > 1e-9 {
		t.Fatalf("full-scale program energy %v, want %v", e1, p.WriteEnergyFJ)
	}
	cb.Program(tensor.FromSlice([]float64{1}, 1, 1), 1) // no move
	if cb.Stats().ProgramEnergyFJ != e1 {
		t.Fatal("reprogramming same value consumed energy")
	}
	cb.Program(tensor.FromSlice([]float64{-1}, 1, 1), 1) // 15→0 and 0→15
	e3 := cb.Stats().ProgramEnergyFJ
	if math.Abs(e3-3*p.WriteEnergyFJ) > 1e-9 {
		t.Fatalf("sign-flip program energy %v, want %v", e3, 3*p.WriteEnergyFJ)
	}
}

func TestUtilization(t *testing.T) {
	p := device.DefaultParams()
	cb := New(2, 2, p, Config{}, nil)
	w := tensor.FromSlice([]float64{1, 0, 0, 0}, 2, 2)
	cb.Program(w, 1)
	if u := cb.Utilization(); u != 0.25 {
		t.Fatalf("utilization %v, want 0.25", u)
	}
}

func TestMACInputLengthCheck(t *testing.T) {
	cb := New(4, 2, device.DefaultParams(), Config{}, nil)
	if _, err := cb.MAC([]float64{1}); err == nil {
		t.Fatal("short input accepted")
	}
}

func BenchmarkMAC128(b *testing.B) {
	r := rng.New(1)
	p := device.DefaultParams()
	cb := New(128, 128, p, Config{}, nil)
	cb.Program(randWeights(r, 128, 128, 1), 1)
	x := make([]float64, 128)
	for i := range x {
		x[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb.MAC(x)
	}
}

func TestProgramVariationPerturbsLevels(t *testing.T) {
	p := device.DefaultParams()
	clean := New(8, 8, p, Config{}, nil)
	noisy := New(8, 8, p, Config{ProgramVariationLevels: 1.5}, rng.New(7))
	w := tensor.New(8, 8).Fill(0.5)
	clean.Program(w, 1)
	noisy.Program(w, 1)
	diffs := 0
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if clean.EffectiveWeight(r, c) != noisy.EffectiveWeight(r, c) {
				diffs++
			}
		}
	}
	if diffs == 0 {
		t.Fatal("program variation changed nothing")
	}
	// Levels must stay clamped to the device range.
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if ew := noisy.EffectiveWeight(r, c); ew < -1 || ew > 1 {
				t.Fatalf("weight %v out of device range", ew)
			}
		}
	}
}

func TestProgramVariationWithoutRNGIsClean(t *testing.T) {
	p := device.DefaultParams()
	cb := New(2, 2, p, Config{ProgramVariationLevels: 2}, nil) // nil RNG
	w := tensor.New(2, 2).Fill(0.5)
	cb.Program(w, 1)
	want := 8.0 / 15
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if cb.EffectiveWeight(r, c) != want {
				t.Fatal("variation applied without an RNG")
			}
		}
	}
}

func TestInjectStuckFaults(t *testing.T) {
	p := device.DefaultParams()
	cb := New(16, 16, p, Config{}, nil)
	w := tensor.New(16, 16).Fill(0.5)
	cb.Program(w, 1)
	n := cb.InjectStuckFaults(rng.New(3), 0.1, StuckAP)
	if n == 0 {
		t.Fatal("no faults injected at 10%")
	}
	// Expect roughly 2·256·0.1 ≈ 51 faulted devices.
	if n < 20 || n > 90 {
		t.Fatalf("fault count %d implausible for 10%%", n)
	}
	// Outputs remain bounded and computable.
	x := make([]float64, 16)
	for i := range x {
		x[i] = 1
	}
	out, err := cb.MAC(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != v || v < -16 || v > 16 {
			t.Fatalf("fault corrupted MAC beyond physical range: %v", v)
		}
	}
	if cb.InjectStuckFaults(nil, 0.5, StuckAP) != 0 {
		t.Fatal("nil RNG must inject nothing")
	}
	if cb.InjectStuckFaults(rng.New(1), 0, StuckP) != 0 {
		t.Fatal("zero fraction must inject nothing")
	}
}

func TestStuckPBiasesPositive(t *testing.T) {
	p := device.DefaultParams()
	cb := New(8, 1, p, Config{}, nil)
	cb.Program(tensor.New(8, 1), 1) // all-zero weights
	cb.InjectStuckFaults(rng.New(5), 1.0, StuckP)
	// All plus and minus devices stuck at max → differential cancels.
	out, _ := cb.MAC([]float64{1, 1, 1, 1, 1, 1, 1, 1})
	if out[0] != 0 {
		t.Fatalf("fully symmetric stuck-P should cancel: %v", out[0])
	}
}
