package crossbar

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file is State's wire codec: a flat little-endian blob shaped by
// what arrays actually hold.
//
//   - nil (all-zero) level planes collapse to a one-word sentinel, so a
//     spare array costs bytes proportional to its fault records, not its
//     geometry;
//   - each plane picks the narrower of a dense and a sparse (index,
//     value) layout from its exact nonzero count, and dense planes pick
//     the narrowest element width (u8/u16/u32) that holds their values —
//     device levels fit a byte at the paper's 4-bit operating point;
//   - target planes are stored as zigzag deltas against the level
//     planes: write-verify drives levels onto their targets, so the
//     delta plane is sparse even on a fully programmed array (only
//     program variation and fault pins diverge);
//   - fault records and dead-line lists are sparse by construction.
//
// State implements gob.GobEncoder / gob.GobDecoder with this blob, and
// the chip-image payload embeds the blob bytes directly so tile states
// can be decoded in parallel on load. All layout choices are pure
// functions of the value, so equal states encode to identical bytes —
// the byte-determinism the image cache and `make image-check` rely on.

// stateCodecVersion tags the blob layout; a decoder rejects versions it
// does not know instead of misreading them.
const stateCodecVersion = 3

// nilPlane is the length sentinel for a nil (all-zero) plane.
const nilPlane = ^uint32(0)

// sparseLayout flags a plane's layout byte as sparse (index, value)
// entries rather than dense elements; the low bits keep the element
// width.
const sparseLayout = 0x80

// maxPlaneElems caps a decoded plane's claimed element count. The
// largest real plane is a spill block (MaxRowsPerNC rows) plus spare
// provisioning on both axes — well under this; anything bigger is a
// corrupt or hostile blob, rejected before any allocation.
const maxPlaneElems = 1 << 22

// GobEncode serializes the snapshot as a flat binary blob.
func (st State) GobEncode() ([]byte, error) {
	w := make([]byte, 0, stateEncodedSizeHint(&st))
	u32 := func(v uint32) { w = binary.LittleEndian.AppendUint32(w, v) }
	u64 := func(v uint64) { w = binary.LittleEndian.AppendUint64(w, v) }
	faults := func(fs []Fault) {
		u32(uint32(len(fs)))
		for _, f := range fs {
			u32(uint32(f.Idx))
			w = append(w, f.Kind)
			w = binary.LittleEndian.AppendUint16(w, uint16(f.Level))
		}
	}
	idxList := func(s []int) {
		u32(uint32(len(s)))
		for _, v := range s {
			u32(uint32(v))
		}
	}

	w = append(w, stateCodecVersion)
	u32(uint32(st.Rows))
	u32(uint32(st.Cols))
	u32(uint32(st.PhysRows))
	u32(uint32(st.PhysCols))
	w = appendInts(w, st.RowMap)
	w = appendInts(w, st.ColMap)
	w = appendInts(w, st.LevelPlus)
	w = appendInts(w, st.LevelMinus)
	w = appendInts(w, targetDelta(st.TargetPlus, st.LevelPlus))
	w = appendInts(w, targetDelta(st.TargetMinus, st.LevelMinus))
	faults(st.FaultsPlus)
	faults(st.FaultsMinus)
	idxList(st.DeadRows)
	idxList(st.DeadCols)
	w = appendInts(w, st.SpareRowsFree)
	w = appendInts(w, st.SpareColsFree)
	u64(uint64(st.Age))
	u64(math.Float64bits(st.WMax))
	u64(uint64(st.Stats.MACs))
	u64(uint64(st.Stats.ActiveRowSum))
	u64(math.Float64bits(st.Stats.OutputCurrentUA))
	u64(math.Float64bits(st.Stats.ProgramEnergyFJ))
	return w, nil
}

// planeElem constrains the element types a wire plane can carry: the
// wide int of the remap tables and spare lists, and the int16 of the
// device level planes (a level fits a byte at the paper's 4-bit
// operating point; int16 keeps headroom while quartering the memory
// traffic of every plane fill against []int).
type planeElem interface{ ~int | ~int16 }

// appendElem appends one plane element at the given width.
func appendElem(w []byte, v int, width uint8) []byte {
	switch width {
	case 1:
		return append(w, byte(v))
	case 2:
		return binary.LittleEndian.AppendUint16(w, uint16(v))
	default:
		return binary.LittleEndian.AppendUint32(w, uint32(int32(v)))
	}
}

// appendInts appends a plane in its wire layout: the nilPlane sentinel,
// or the narrower of a dense and a sparse (index, value) encoding at
// the narrowest element width that holds the values.
func appendInts[T planeElem](w []byte, s []T) []byte {
	if s == nil {
		return binary.LittleEndian.AppendUint32(w, nilPlane)
	}
	w = binary.LittleEndian.AppendUint32(w, uint32(len(s)))
	width := intWidth(s)
	nz := 0
	for _, v := range s {
		if v != 0 {
			nz++
		}
	}
	if nz*(4+int(width)) < len(s)*int(width) {
		w = append(w, width|sparseLayout)
		w = binary.LittleEndian.AppendUint32(w, uint32(nz))
		for i, v := range s {
			if v != 0 {
				w = binary.LittleEndian.AppendUint32(w, uint32(i))
				w = appendElem(w, int(v), width)
			}
		}
		return w
	}
	w = append(w, width)
	for _, v := range s {
		w = appendElem(w, int(v), width)
	}
	return w
}

// stateEncodedSizeHint upper-bounds the dense portion of the encoding so
// the writer allocates once.
func stateEncodedSizeHint(st *State) int {
	n := 0
	for _, p := range [][]int{st.RowMap, st.ColMap, st.SpareRowsFree, st.SpareColsFree} {
		n += 5 + 4*len(p)
	}
	for _, p := range [][]int16{st.LevelPlus, st.LevelMinus, st.TargetPlus, st.TargetMinus} {
		n += 5 + 4*len(p)
	}
	return 160 + n + 7*(len(st.FaultsPlus)+len(st.FaultsMinus))
}

// targetDelta derives the zigzag delta plane target−level; nil means the
// target plane equals the level plane (the write-verify steady state).
// The delta is what goes on the wire: it is zero wherever programming
// converged, so it stays sparse even on dense arrays.
func targetDelta(target, level []int16) []int {
	if target == nil && level == nil {
		return nil
	}
	n := len(target)
	if n == 0 {
		n = len(level)
	}
	var out []int
	for i := 0; i < n; i++ {
		t, l := 0, 0
		if target != nil {
			t = int(target[i])
		}
		if level != nil {
			l = int(level[i])
		}
		if t != l && out == nil {
			out = make([]int, n)
		}
		if out != nil {
			out[i] = zigzag(t - l)
		}
	}
	return out
}

// applyTargetDelta reverses targetDelta: target[i] = level[i] +
// unzigzag(delta[i]), collapsing an all-zero result back to nil so the
// round trip is exact.
func applyTargetDelta(delta []int, level []int16, n int) []int16 {
	if delta == nil && level == nil {
		return nil
	}
	out := make([]int16, n)
	allZero := true
	for i := range out {
		v := 0
		if level != nil {
			v = int(level[i])
		}
		if delta != nil {
			v += unzigzag(delta[i])
		}
		out[i] = int16(v)
		if out[i] != 0 {
			allZero = false
		}
	}
	if allZero {
		return nil
	}
	return out
}

// zigzag folds a signed delta into a small unsigned value so narrow
// widths still apply.
func zigzag(v int) int { return int((uint64(int64(v)) << 1) ^ uint64(int64(v)>>63)) }

// unzigzag reverses zigzag.
func unzigzag(v int) int { return int(int64(uint64(v)>>1) ^ -int64(uint64(v)&1)) }

// intWidth returns the narrowest element width (1, 2 or 4 bytes) that
// round-trips every value in s. The choice depends only on the values,
// keeping the encoding deterministic.
func intWidth[T planeElem](s []T) uint8 {
	width := uint8(1)
	for _, v := range s {
		switch {
		case int(v) < 0 || int(v) > math.MaxUint16:
			return 4
		case int(v) > math.MaxUint8:
			width = 2
		}
	}
	return width
}

// stateReader is a bounds-checked cursor over an encoded State blob.
// Every read checks the remaining length, and every claimed element
// count is validated against the bytes actually present before
// allocating, so a truncated or bit-flipped blob yields an error, never
// a panic or an attacker-sized allocation.
type stateReader struct {
	b   []byte
	off int
	err error
}

func (r *stateReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *stateReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("crossbar: state blob truncated at offset %d (want %d more bytes)", r.off, n)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *stateReader) u8() uint8 {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *stateReader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *stateReader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

// elem reads one plane element of the given width.
func (r *stateReader) elem(width int) int {
	switch width {
	case 1:
		return int(r.u8())
	case 2:
		s := r.take(2)
		if s == nil {
			return 0
		}
		return int(binary.LittleEndian.Uint16(s))
	default:
		return int(int32(r.u32()))
	}
}

// ints reads an int slice in any of its layouts: the nilPlane sentinel
// (→ nil), dense elements, or sparse (index, value) entries.
func (r *stateReader) ints() []int { return readPlane[int](r) }

// readPlane reads a plane in any of its layouts into a fresh slice of
// the requested element type. A wire value the element type cannot hold
// is a decode error, not a silent wrap — width 4 can carry values no
// int16 plane ever produced.
func readPlane[T planeElem](r *stateReader) []T {
	raw := r.u32()
	if r.err != nil || raw == nilPlane {
		return nil
	}
	n := int(raw)
	layout := r.u8()
	width := int(layout &^ sparseLayout)
	if r.err == nil && width != 1 && width != 2 && width != 4 {
		r.fail("crossbar: state blob has element width %d", width)
	}
	if r.err == nil && n > maxPlaneElems {
		r.fail("crossbar: state blob claims a %d-element plane", n)
	}
	if r.err != nil {
		return nil
	}
	if layout&sparseLayout != 0 {
		nz := int(r.u32())
		if r.err == nil && (nz > n || nz*(4+width) > len(r.b)-r.off) {
			r.fail("crossbar: state blob claims %d sparse entries in a %d-element plane", nz, n)
		}
		if r.err != nil {
			return nil
		}
		out := make([]T, n)
		for j := 0; j < nz; j++ {
			i := int(r.u32())
			v := r.elem(width)
			if r.err != nil {
				return nil
			}
			if i >= n {
				r.fail("crossbar: state blob sparse entry at %d beyond %d-element plane", i, n)
				return nil
			}
			if int(T(v)) != v {
				r.fail("crossbar: state blob element %d overflows the plane's element type", v)
				return nil
			}
			out[i] = T(v)
		}
		return out
	}
	if n*width > len(r.b)-r.off {
		r.fail("crossbar: state blob claims %d elements with %d bytes left", n, len(r.b)-r.off)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]T, n)
	data := r.take(n * width)
	for i := range out {
		var v int
		switch width {
		case 1:
			v = int(data[i])
		case 2:
			v = int(binary.LittleEndian.Uint16(data[2*i:]))
		default:
			v = int(int32(binary.LittleEndian.Uint32(data[4*i:])))
		}
		if int(T(v)) != v {
			r.fail("crossbar: state blob element %d overflows the plane's element type", v)
			return nil
		}
		out[i] = T(v)
	}
	return out
}

// faults reads a sparse fault-record list.
func (r *stateReader) faults() []Fault {
	nz := int(r.u32())
	if r.err == nil && nz*7 > len(r.b)-r.off {
		r.fail("crossbar: state blob claims %d fault records with %d bytes left", nz, len(r.b)-r.off)
	}
	if r.err != nil || nz == 0 {
		return nil
	}
	out := make([]Fault, nz)
	for j := range out {
		idx := r.u32()
		kind := r.u8()
		lv := r.take(2)
		if r.err != nil {
			return nil
		}
		out[j] = Fault{Idx: int32(idx), Kind: kind, Level: int16(binary.LittleEndian.Uint16(lv))}
	}
	return out
}

// idxList reads a sparse index list.
func (r *stateReader) idxList() []int {
	nz := int(r.u32())
	if r.err == nil && nz*4 > len(r.b)-r.off {
		r.fail("crossbar: state blob claims %d indices with %d bytes left", nz, len(r.b)-r.off)
	}
	if r.err != nil || nz == 0 {
		return nil
	}
	out := make([]int, nz)
	for j := range out {
		out[j] = int(int32(r.u32()))
	}
	if r.err != nil {
		return nil
	}
	return out
}

// intsInto reads a plane into dst, which must already have the plane's
// length: the nilPlane sentinel scan-clears dst, a dense layout
// overwrites every element, and a sparse layout scan-clears then sets
// the listed entries. This is the in-place analogue of ints — the hot
// import path decodes straight into the receiving array's planes, so a
// rehydrate allocates nothing per plane.
func (r *stateReader) intsInto(dst []int) {
	raw := r.u32()
	if r.err != nil {
		return
	}
	if raw == nilPlane {
		clearInts(dst)
		return
	}
	n := int(raw)
	if n != len(dst) {
		r.fail("crossbar: state blob plane sized %d, geometry wants %d", n, len(dst))
		return
	}
	layout := r.u8()
	width := int(layout &^ sparseLayout)
	if r.err == nil && width != 1 && width != 2 && width != 4 {
		r.fail("crossbar: state blob has element width %d", width)
	}
	if r.err != nil {
		return
	}
	if layout&sparseLayout != 0 {
		nz := int(r.u32())
		if r.err == nil && (nz > n || nz*(4+width) > len(r.b)-r.off) {
			r.fail("crossbar: state blob claims %d sparse entries in a %d-element plane", nz, n)
		}
		if r.err != nil {
			return
		}
		clearInts(dst)
		for j := 0; j < nz; j++ {
			i := int(r.u32())
			v := r.elem(width)
			if r.err != nil {
				return
			}
			if i >= n {
				r.fail("crossbar: state blob sparse entry at %d beyond %d-element plane", i, n)
				return
			}
			dst[i] = v
		}
		return
	}
	data := r.take(n * width)
	if r.err != nil {
		return
	}
	switch width {
	case 1:
		for i := range dst {
			dst[i] = int(data[i])
		}
	case 2:
		for i := range dst {
			dst[i] = int(binary.LittleEndian.Uint16(data[2*i:]))
		}
	default:
		for i := range dst {
			dst[i] = int(int32(binary.LittleEndian.Uint32(data[4*i:])))
		}
	}
}

// planeSection is one plane's wire section, captured without
// materializing the plane: layout, entry count and the raw element
// bytes. Capturing sections lets the importer process planes out of
// wire order — a target-delta plane is applied against a level plane
// that precedes it on the wire by one section.
type planeSection struct {
	isNil  bool
	sparse bool
	n, nz  int
	width  int
	data   []byte
}

// section captures one plane's wire section, validating its framing
// against the expected plane length.
func (r *stateReader) section(wantLen int) planeSection {
	raw := r.u32()
	if r.err != nil {
		return planeSection{}
	}
	if raw == nilPlane {
		return planeSection{isNil: true, n: wantLen}
	}
	n := int(raw)
	if n != wantLen {
		r.fail("crossbar: state blob plane sized %d, geometry wants %d", n, wantLen)
		return planeSection{}
	}
	layout := r.u8()
	width := int(layout &^ sparseLayout)
	if r.err == nil && width != 1 && width != 2 && width != 4 {
		r.fail("crossbar: state blob has element width %d", width)
	}
	if r.err != nil {
		return planeSection{}
	}
	s := planeSection{n: n, width: width}
	if layout&sparseLayout != 0 {
		s.sparse = true
		s.nz = int(r.u32())
		if r.err == nil && (s.nz > n || s.nz*(4+width) > len(r.b)-r.off) {
			r.fail("crossbar: state blob claims %d sparse entries in a %d-element plane", s.nz, n)
			return planeSection{}
		}
		s.data = r.take(s.nz * (4 + width))
		return s
	}
	s.data = r.take(n * width)
	return s
}

// sparseEntry returns the j-th (index, value) pair of a sparse section.
func (s *planeSection) sparseEntry(j int) (int, int) {
	e := s.data[j*(4+s.width):]
	i := int(binary.LittleEndian.Uint32(e))
	switch s.width {
	case 1:
		return i, int(e[4])
	case 2:
		return i, int(binary.LittleEndian.Uint16(e[4:]))
	default:
		return i, int(int32(binary.LittleEndian.Uint32(e[4:])))
	}
}

// denseElem returns the i-th element of a dense section.
func (s *planeSection) denseElem(i int) int {
	switch s.width {
	case 1:
		return int(s.data[i])
	case 2:
		return int(binary.LittleEndian.Uint16(s.data[2*i:]))
	default:
		return int(int32(binary.LittleEndian.Uint32(s.data[4*i:])))
	}
}

// fillPlanes materializes a level plane and its target plane (stored as
// a zigzag delta against the level) into lv and tg in place, validating
// every level against the device's state count. pristine asserts both
// destinations are still all-zero — a freshly constructed array — which
// lets sparse and nil layouts skip the clearing scans entirely, so a
// sparse plane imports in time proportional to its entries, not its
// geometry.
func fillPlanes(lv, tg []int16, lvSec, dSec planeSection, pristine bool, states int) error {
	switch {
	case lvSec.isNil:
		if !pristine {
			clearInts(lv)
		}
	case lvSec.sparse:
		if !pristine {
			clearInts(lv)
		}
		for j := 0; j < lvSec.nz; j++ {
			i, v := lvSec.sparseEntry(j)
			if i >= lvSec.n {
				return fmt.Errorf("crossbar: state blob sparse entry at %d beyond %d-element plane", i, lvSec.n)
			}
			if v < 0 || v > states-1 {
				return fmt.Errorf("crossbar: state level at %d outside [0,%d]", i, states-1)
			}
			lv[i] = int16(v)
		}
	default:
		for i := range lv {
			v := lvSec.denseElem(i)
			if v < 0 || v > states-1 {
				return fmt.Errorf("crossbar: state level at %d outside [0,%d]", i, states-1)
			}
			lv[i] = int16(v)
		}
	}

	// The target plane starts from "equals level" — the nil-delta case
	// and the base of the sparse-delta case — then listed deltas adjust
	// individual devices.
	if dSec.isNil || dSec.sparse {
		switch {
		case pristine && (lvSec.isNil || lvSec.sparse):
			for j := 0; j < lvSec.nz; j++ {
				i, _ := lvSec.sparseEntry(j)
				tg[i] = lv[i]
			}
		case pristine:
			copy(tg, lv)
		default:
			copyInts(tg, lv)
		}
		for j := 0; j < dSec.nz; j++ {
			i, v := dSec.sparseEntry(j)
			if i >= dSec.n {
				return fmt.Errorf("crossbar: state blob sparse entry at %d beyond %d-element plane", i, dSec.n)
			}
			tg[i] = int16(int(lv[i]) + unzigzag(v))
		}
		return nil
	}
	for i := range tg {
		tg[i] = int16(int(lv[i]) + unzigzag(dSec.denseElem(i)))
	}
	return nil
}

// clearInts zeroes a plane, scanning first so an already-zero plane —
// a freshly built skeleton — costs reads, not page dirtying.
func clearInts[T planeElem](s []T) {
	for i, v := range s {
		if v != 0 {
			clear(s[i:])
			return
		}
	}
}

// copyInts copies src over dst, scanning for the first difference first
// so equal planes cost reads only.
func copyInts[T planeElem](dst, src []T) {
	for i := range src {
		if dst[i] != src[i] {
			copy(dst[i:], src[i:])
			return
		}
	}
}

// ImportStateBlob decodes an encoded State blob straight into the
// receiver: the streaming, allocation-free equivalent of GobDecode
// followed by ImportState. Planes are written in place — dense layouts
// overwrite every element, sparse and nil layouts scan-clear first — so
// rehydrating a freshly built skeleton costs one pass over the blob and
// no per-plane garbage. This is what makes a chip-image load cheap: the
// image holds one blob per array, and each lands in the live planes
// without an intermediate State.
//
// Semantics match ImportState, including the validation set, with one
// difference: ImportState validates before mutating, while this decodes
// as it goes, so on error the receiver is left partially overwritten and
// must be discarded. The load path does exactly that — any import error
// abandons the whole session.
func (c *Crossbar) ImportStateBlob(data []byte) error {
	r := &stateReader{b: data}
	if v := r.u8(); r.err == nil && v != stateCodecVersion {
		return fmt.Errorf("crossbar: state blob codec version %d, this build reads %d", v, stateCodecVersion)
	}
	rows := int(int32(r.u32()))
	cols := int(int32(r.u32()))
	physRows := int(int32(r.u32()))
	physCols := int(int32(r.u32()))
	if r.err != nil {
		return r.err
	}
	if rows != c.Rows || cols != c.Cols {
		return fmt.Errorf("crossbar: state is %d×%d, array is %d×%d", rows, cols, c.Rows, c.Cols)
	}
	if physRows != c.physRows || physCols != c.physCols {
		return fmt.Errorf("crossbar: state physical geometry %d×%d, array %d×%d (spare provisioning must match)",
			physRows, physCols, c.physRows, c.physCols)
	}
	// gen == 0 means no mutator has ever touched this array — the
	// freshly built skeleton of a rehydrating session — so its planes
	// are known all-zero and the plane fill can skip every clearing
	// scan. The genstamp contract (every mutator bumps gen) is what
	// makes this sound.
	pristine := c.gen == 0
	c.invalidate()
	r.intsInto(c.rowMap)
	r.intsInto(c.colMap)
	n := c.physRows * c.physCols
	lvPlus := r.section(n)
	lvMinus := r.section(n)
	dPlus := r.section(n)
	dMinus := r.section(n)
	if r.err != nil {
		return r.err
	}
	states := c.P.States()
	if err := fillPlanes(c.levelPlus, c.targetPlus, lvPlus, dPlus, pristine, states); err != nil {
		return err
	}
	if err := fillPlanes(c.levelMinus, c.targetMinus, lvMinus, dMinus, pristine, states); err != nil {
		return err
	}
	faultsPlus := r.faults()
	faultsMinus := r.faults()
	deadRows := r.idxList()
	deadCols := r.idxList()
	spareRows := r.ints()
	spareCols := r.ints()
	age := int64(r.u64())
	wmax := math.Float64frombits(r.u64())
	var stats Stats
	stats.MACs = int64(r.u64())
	stats.ActiveRowSum = int64(r.u64())
	stats.OutputCurrentUA = math.Float64frombits(r.u64())
	stats.ProgramEnergyFJ = math.Float64frombits(r.u64())
	if r.err != nil {
		return r.err
	}
	if r.off != len(data) {
		return fmt.Errorf("crossbar: state blob has %d trailing bytes", len(data)-r.off)
	}

	for _, p := range c.rowMap {
		if p < 0 || p >= c.physRows {
			return fmt.Errorf("crossbar: state row map entry %d out of physical range %d", p, c.physRows)
		}
	}
	for _, p := range c.colMap {
		if p < 0 || p >= c.physCols {
			return fmt.Errorf("crossbar: state col map entry %d out of physical range %d", p, c.physCols)
		}
	}
	for _, fs := range [][]Fault{faultsPlus, faultsMinus} {
		for _, f := range fs {
			if f.Idx < 0 || int(f.Idx) >= n {
				return fmt.Errorf("crossbar: state fault at device %d beyond the %d-device plane", f.Idx, n)
			}
			if f.Kind == uint8(kindNone) || f.Kind > uint8(kindStuckP) {
				return fmt.Errorf("crossbar: state fault at device %d has unknown kind %d", f.Idx, f.Kind)
			}
		}
	}
	for _, row := range deadRows {
		if row < 0 || row >= c.physRows {
			return fmt.Errorf("crossbar: state dead row %d out of physical range %d", row, c.physRows)
		}
	}
	for _, col := range deadCols {
		if col < 0 || col >= c.physCols {
			return fmt.Errorf("crossbar: state dead col %d out of physical range %d", col, c.physCols)
		}
	}
	for _, s := range spareRows {
		if s < 0 || s >= c.physRows {
			return fmt.Errorf("crossbar: state spare row %d out of physical range %d", s, c.physRows)
		}
	}
	for _, s := range spareCols {
		if s < 0 || s >= c.physCols {
			return fmt.Errorf("crossbar: state spare col %d out of physical range %d", s, c.physCols)
		}
	}

	if len(faultsPlus) > 0 || len(faultsMinus) > 0 || len(deadRows) > 0 || len(deadCols) > 0 {
		c.ensureFaults()
		clearFaults(c.faultPlus)
		clearFaults(c.faultMinus)
		for _, f := range faultsPlus {
			c.faultPlus[f.Idx] = faultRec{kind: FaultKind(f.Kind), level: f.Level}
		}
		for _, f := range faultsMinus {
			c.faultMinus[f.Idx] = faultRec{kind: FaultKind(f.Kind), level: f.Level}
		}
		clearDead(c.deadRow)
		clearDead(c.deadCol)
		for _, row := range deadRows {
			c.deadRow[row] = true
		}
		for _, col := range deadCols {
			c.deadCol[col] = true
		}
	} else {
		c.faultPlus, c.faultMinus = nil, nil
		c.deadRow, c.deadCol = nil, nil
	}
	c.spareRowsFree = append(c.spareRowsFree[:0], spareRows...)
	c.spareColsFree = append(c.spareColsFree[:0], spareCols...)
	c.age = age
	c.wmax = wmax
	c.stats = stats
	c.DropKernel()
	return nil
}

// GobDecode restores a snapshot from its blob. Malformed input returns
// an error; the geometry/range validation beyond framing stays with
// ImportState.
func (st *State) GobDecode(data []byte) error {
	r := &stateReader{b: data}
	if v := r.u8(); r.err == nil && v != stateCodecVersion {
		return fmt.Errorf("crossbar: state blob codec version %d, this build reads %d", v, stateCodecVersion)
	}
	st.Rows = int(int32(r.u32()))
	st.Cols = int(int32(r.u32()))
	st.PhysRows = int(int32(r.u32()))
	st.PhysCols = int(int32(r.u32()))
	if r.err == nil && (st.PhysRows < 0 || st.PhysCols < 0 ||
		st.PhysRows > maxPlaneElems || st.PhysCols > maxPlaneElems ||
		int64(st.PhysRows)*int64(st.PhysCols) > maxPlaneElems) {
		return fmt.Errorf("crossbar: state blob claims implausible %d×%d physical geometry", st.PhysRows, st.PhysCols)
	}
	n := st.PhysRows * st.PhysCols
	st.RowMap = r.ints()
	st.ColMap = r.ints()
	st.LevelPlus = readPlane[int16](r)
	st.LevelMinus = readPlane[int16](r)
	for _, p := range [][]int16{st.LevelPlus, st.LevelMinus} {
		if r.err == nil && p != nil && len(p) != n {
			return fmt.Errorf("crossbar: state blob level plane sized %d, geometry wants %d", len(p), n)
		}
	}
	deltaPlus := r.ints()
	deltaMinus := r.ints()
	for _, p := range [][]int{deltaPlus, deltaMinus} {
		if r.err == nil && p != nil && len(p) != n {
			return fmt.Errorf("crossbar: state blob target plane sized %d, geometry wants %d", len(p), n)
		}
	}
	if r.err == nil {
		st.TargetPlus = applyTargetDelta(deltaPlus, st.LevelPlus, n)
		st.TargetMinus = applyTargetDelta(deltaMinus, st.LevelMinus, n)
	}
	st.FaultsPlus = r.faults()
	st.FaultsMinus = r.faults()
	st.DeadRows = r.idxList()
	st.DeadCols = r.idxList()
	st.SpareRowsFree = r.ints()
	st.SpareColsFree = r.ints()
	st.Age = int64(r.u64())
	st.WMax = math.Float64frombits(r.u64())
	st.Stats.MACs = int64(r.u64())
	st.Stats.ActiveRowSum = int64(r.u64())
	st.Stats.OutputCurrentUA = math.Float64frombits(r.u64())
	st.Stats.ProgramEnergyFJ = math.Float64frombits(r.u64())
	if r.err != nil {
		return r.err
	}
	if r.off != len(data) {
		return fmt.Errorf("crossbar: state blob has %d trailing bytes", len(data)-r.off)
	}
	return nil
}
