package crossbar

import (
	"errors"
	"math"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/device"
	"repro/internal/lint"
	"repro/internal/rng"
	"repro/internal/spikeplane"
)

// kernelCfg is the stress configuration for the differential tests:
// every analog effect the read path models is switched on, so a kernel
// that mishandles any of them diverges from the dense reference.
func kernelCfg() Config {
	return Config{
		IRDropAlpha:            0.3,
		ReadNoiseSigma:         0.02,
		ProgramVariationLevels: 0.7,
		SpareRows:              4,
		SpareCols:              4,
		DriftTauSteps:          5000,
	}
}

// newTwin builds two identically seeded, identically programmed
// crossbars. The reference twin never bakes a kernel; the subject twin
// is the one under test. Any op applied to both afterwards keeps their
// construction RNG streams in lockstep.
func newTwin(seed uint64, rows, cols int, cfg Config) (ref, sub *Crossbar) {
	p := device.DefaultParams()
	ref = New(rows, cols, p, cfg, rng.New(seed))
	sub = New(rows, cols, p, cfg, rng.New(seed))
	w := randWeights(rng.New(seed+1), rows, cols, 1.0)
	if err := ref.Program(w, 1.0); err != nil {
		panic(err)
	}
	if err := sub.Program(w.Clone(), 1.0); err != nil {
		panic(err)
	}
	return ref, sub
}

// sparseInput fills an input vector at the given active fraction and
// returns it with its increasing active-index list.
func sparseInput(r *rng.Rand, rows int, activeFrac float64) ([]float64, []int) {
	in := make([]float64, rows)
	var act []int
	for i := range in {
		if r.Float64() < activeFrac {
			in[i] = r.Float64() + 0.1
			act = append(act, i)
		}
	}
	return in, act
}

// assertBitwise compares two read results bit for bit; an exact-zero
// tolerance is the kernel's contract, so even a ±0.0 sign flip fails.
func assertBitwise(t *testing.T, tag string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d, want %d", tag, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: col %d: kernel %v (bits %#x) != dense %v (bits %#x)",
				tag, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// readPair drives one identical read through both twins — the reference
// on the dense path, the subject on whatever path its kernel state
// selects — with identically seeded noise streams, and returns both
// results plus the subject's explicit-active-list result.
func readPair(t *testing.T, ref, sub *Crossbar, in []float64, act []int, noiseSeed uint64) (want, got, gotAct []float64) {
	t.Helper()
	want, err := ref.MACRead(in, rng.New(noiseSeed), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err = sub.MACRead(in, rng.New(noiseSeed), nil)
	if err != nil {
		t.Fatal(err)
	}
	gotAct = make([]float64, sub.Cols)
	if err := sub.MACReadInto(gotAct, in, act, rng.New(noiseSeed), nil); err != nil {
		t.Fatal(err)
	}
	return want, got, gotAct
}

// TestMACReadKernelBitwise is the core differential test: across random
// geometries, sparsities, fault loads, drift ages and noise, the baked
// kernel must reproduce the dense read bit for bit — both when scanning
// the input and when driven by an explicit spike list.
func TestMACReadKernelBitwise(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{}},
		{"irdrop", Config{IRDropAlpha: 0.25}},
		{"noise", Config{ReadNoiseSigma: 0.05}},
		{"drift", Config{DriftTauSteps: 800}},
		{"variation", Config{ProgramVariationLevels: 1.2}},
		{"everything", kernelCfg()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rng.New(0xC0FFEE)
			for trial := 0; trial < 12; trial++ {
				rows := 1 + r.Intn(160)
				cols := 1 + r.Intn(96)
				seed := r.Uint64()
				ref, sub := newTwin(seed, rows, cols, tc.cfg)

				// A sprinkling of faults, kills and remaps on both twins.
				if trial%2 == 0 {
					ref.InjectStuckFaults(rng.New(seed+2), 0.03, StuckAP)
					sub.InjectStuckFaults(rng.New(seed+2), 0.03, StuckAP)
				}
				if trial%3 == 0 {
					row, col := r.Intn(rows), r.Intn(cols)
					ref.KillRow(row)
					sub.KillRow(row)
					ref.KillCol(col)
					sub.KillCol(col)
					if tc.cfg.SpareRows > 0 {
						ref.RemapRow(row)
						sub.RemapRow(row)
					}
				}
				if tc.cfg.DriftTauSteps > 0 {
					age := int64(r.Intn(2000))
					ref.Tick(age)
					sub.Tick(age)
				}
				sub.BakeKernel()
				if !sub.KernelFresh() {
					t.Fatal("kernel stale immediately after bake")
				}

				for _, frac := range []float64{0, 0.1, 0.5, 0.9, 1} {
					in, act := sparseInput(r, rows, frac)
					noiseSeed := r.Uint64()
					want, got, gotAct := readPair(t, ref, sub, in, act, noiseSeed)
					assertBitwise(t, tc.name+"/scan", want, got)
					assertBitwise(t, tc.name+"/active", want, gotAct)
				}
			}
		})
	}
}

// TestMACReadKernelStats checks the fast path reports the same MAC
// accounting — active-row count and output current — as the dense walk.
func TestMACReadKernelStats(t *testing.T) {
	ref, sub := newTwin(7, 64, 48, kernelCfg())
	sub.BakeKernel()
	r := rng.New(11)
	in, act := sparseInput(r, 64, 0.3)
	var sRef, sSub Stats
	out := make([]float64, 48)
	if err := ref.MACReadInto(out, in, nil, rng.New(3), &sRef); err != nil {
		t.Fatal(err)
	}
	if err := sub.MACReadInto(out, in, act, rng.New(3), &sSub); err != nil {
		t.Fatal(err)
	}
	if sRef.MACs != sSub.MACs || sRef.ActiveRowSum != sSub.ActiveRowSum ||
		math.Float64bits(sRef.OutputCurrentUA) != math.Float64bits(sSub.OutputCurrentUA) {
		t.Fatalf("stats diverged: dense %+v, kernel %+v", sRef, sSub)
	}
}

// TestMACReadIntoChecksLengths covers the fast path's error returns.
func TestMACReadIntoChecksLengths(t *testing.T) {
	_, sub := newTwin(5, 8, 6, Config{})
	sub.BakeKernel()
	if err := sub.MACReadInto(make([]float64, 5), make([]float64, 8), nil, nil, nil); err == nil {
		t.Fatal("wrong destination length accepted")
	}
	if err := sub.MACReadInto(make([]float64, 6), make([]float64, 7), nil, nil, nil); err == nil {
		t.Fatal("wrong input length accepted")
	}
}

// freshnessTable is the runtime half of the kernel-invalidation gate:
// one entry per exported mutator of read-visible state, each applied to
// a freshly baked crossbar to prove it marks the kernel stale. The
// genstamp static analyzer discovers the same mutator set from the code
// itself; TestFreshnessTableMatchesGenstamp cross-checks the two so a
// new mutator cannot land without a table entry.
var freshnessTable = []struct {
	name   string
	mutate func(t *testing.T, c *Crossbar)
}{
	{"Program", func(t *testing.T, c *Crossbar) {
		if err := c.Program(randWeights(rng.New(9), c.Rows, c.Cols, 1), 1); err != nil {
			t.Fatal(err)
		}
	}},
	{"InjectStuckFaults", func(t *testing.T, c *Crossbar) { c.InjectStuckFaults(rng.New(4), 0.1, StuckAP) }},
	{"SetStuck", func(t *testing.T, c *Crossbar) { c.SetStuck(1, 1, true, StuckP) }},
	{"SetWeak", func(t *testing.T, c *Crossbar) { c.SetWeak(2, 2, false, 1) }},
	{"ClearWeak", func(t *testing.T, c *Crossbar) {
		c.SetWeak(2, 2, false, 1)
		c.BakeKernel()
		if !c.ClearWeak(2, 2, false) {
			t.Fatal("ClearWeak found nothing to clear")
		}
	}},
	{"KillRow", func(t *testing.T, c *Crossbar) { c.KillRow(3) }},
	{"KillCol", func(t *testing.T, c *Crossbar) { c.KillCol(3) }},
	{"RemapRow", func(t *testing.T, c *Crossbar) {
		if !c.RemapRow(0) {
			t.Fatal("no spare row")
		}
	}},
	{"RemapCol", func(t *testing.T, c *Crossbar) {
		if !c.RemapCol(0) {
			t.Fatal("no spare col")
		}
	}},
	{"WritePair", func(t *testing.T, c *Crossbar) { c.WritePair(0, 0) }},
	{"CompensatePair", func(t *testing.T, c *Crossbar) {
		c.SetStuck(0, 0, true, StuckP)
		c.BakeKernel()
		c.CompensatePair(0, 0)
	}},
	{"Tick", func(t *testing.T, c *Crossbar) { c.Tick(1) }},
	{"Refresh", func(t *testing.T, c *Crossbar) { c.Refresh() }},
	{"ImportState", func(t *testing.T, c *Crossbar) {
		if err := c.ImportState(c.ExportState()); err != nil {
			t.Fatal(err)
		}
	}},
	{"ImportStateBlob", func(t *testing.T, c *Crossbar) {
		blob, err := c.ExportState().GobEncode()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.ImportStateBlob(blob); err != nil {
			t.Fatal(err)
		}
	}},
}

// TestKernelFreshAfterMutators pins the invalidation contract: every
// mutator of read-visible state must mark the kernel stale, and a rebake
// must restore the fast path.
func TestKernelFreshAfterMutators(t *testing.T) {
	for _, tc := range freshnessTable {
		t.Run(tc.name, func(t *testing.T) {
			_, sub := newTwin(21, 16, 12, kernelCfg())
			sub.BakeKernel()
			if !sub.KernelFresh() {
				t.Fatal("kernel stale after bake")
			}
			tc.mutate(t, sub)
			if sub.KernelFresh() {
				t.Fatalf("%s left the kernel fresh", tc.name)
			}
			sub.BakeKernel()
			if !sub.KernelFresh() {
				t.Fatal("rebake did not restore freshness")
			}
		})
	}
}

// TestFreshnessTableMatchesGenstamp cross-checks the runtime freshness
// table against the genstamp analyzer's statically discovered mutator
// set: every table entry must be rediscovered from the code, and the
// only mutators beyond the table must be the known internal ones, so
// neither gate can silently fall behind the other.
func TestFreshnessTableMatchesGenstamp(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	survey := lint.MutatorSurvey(lint.NewProgram(pkgs))
	discovered := survey["repro/internal/crossbar.Crossbar"]
	if len(discovered) == 0 {
		t.Fatalf("genstamp discovered no Crossbar mutators; survey keys: %v", keysOf(survey))
	}
	set := map[string]bool{}
	for _, name := range discovered {
		set[name] = true
	}
	for _, tc := range freshnessTable {
		if !set[tc.name] {
			t.Errorf("freshness-table entry %s not discovered by genstamp; stale table entry?", tc.name)
		}
	}
	// The complement direction: mutators the analyzer sees beyond the
	// table. MAC mutates only through stochastic read disturb (its own
	// invalidation is exercised by the interleaved property test), and
	// the unexported helpers are reached through exported entries.
	known := map[string]bool{"MAC": true, "writeDevice": true, "applyReadDisturb": true}
	tabled := map[string]bool{}
	for _, tc := range freshnessTable {
		tabled[tc.name] = true
	}
	for _, name := range discovered {
		if !tabled[name] && !known[name] {
			t.Errorf("genstamp discovered mutator %s with no freshness-table entry; add one to TestKernelFreshAfterMutators", name)
		}
	}
}

func keysOf(m map[string][]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestKernelInvalidationInterleaved is the property test of the
// invalidation contract: a random interleaving of fault injection,
// repair, scrubbing and retention ticks is applied identically to both
// twins while the subject rebakes only sometimes — so reads land on
// fresh kernels, stale-and-fallen-back kernels and the dense path in
// random succession — and every read must stay bitwise identical to the
// kernel-free reference.
func TestKernelInvalidationInterleaved(t *testing.T) {
	const rows, cols = 48, 32
	ref, sub := newTwin(0xFEED, rows, cols, kernelCfg())
	sub.BakeKernel()
	r := rng.New(0xDECAF)

	// Each op mutates both twins with identical arguments and reports
	// whether it is guaranteed to have invalidated the kernel.
	ops := []func(c *Crossbar, seed uint64, row, col, n int) bool{
		func(c *Crossbar, seed uint64, row, col, n int) bool {
			c.SetStuck(row, col, n%2 == 0, StuckAP)
			return true
		},
		func(c *Crossbar, seed uint64, row, col, n int) bool {
			c.SetWeak(row, col, n%2 == 1, n%3)
			return true
		},
		func(c *Crossbar, seed uint64, row, col, n int) bool {
			return c.ClearWeak(row, col, n%2 == 1)
		},
		func(c *Crossbar, seed uint64, row, col, n int) bool { return c.KillRow(row) },
		func(c *Crossbar, seed uint64, row, col, n int) bool { return c.KillCol(col) },
		func(c *Crossbar, seed uint64, row, col, n int) bool { return c.RemapRow(row) },
		func(c *Crossbar, seed uint64, row, col, n int) bool { return c.RemapCol(col) },
		func(c *Crossbar, seed uint64, row, col, n int) bool {
			c.WritePair(row, col)
			return true
		},
		func(c *Crossbar, seed uint64, row, col, n int) bool {
			c.CompensatePair(row, col)
			return false // no-fault pairs are a pure read
		},
		func(c *Crossbar, seed uint64, row, col, n int) bool {
			c.Tick(int64(n + 1))
			return true
		},
		func(c *Crossbar, seed uint64, row, col, n int) bool {
			c.Refresh()
			return true
		},
		func(c *Crossbar, seed uint64, row, col, n int) bool {
			c.InjectStuckFaults(rng.New(seed), 0.02, StuckP)
			return true
		},
		func(c *Crossbar, seed uint64, row, col, n int) bool {
			if err := c.Program(randWeights(rng.New(seed), c.Rows, c.Cols, 1), 1); err != nil {
				t.Fatal(err)
			}
			return true
		},
	}

	for iter := 0; iter < 400; iter++ {
		op := ops[r.Intn(len(ops))]
		seed, row, col, n := r.Uint64(), r.Intn(rows), r.Intn(cols), r.Intn(16)
		mutated := op(ref, seed, row, col, n)
		if m := op(sub, seed, row, col, n); m != mutated {
			t.Fatalf("iter %d: twins diverged: op reported %v vs %v", iter, m, mutated)
		}
		if mutated && sub.KernelFresh() {
			t.Fatalf("iter %d: mutation left the kernel fresh", iter)
		}
		if r.Float64() < 0.5 {
			sub.BakeKernel()
		}
		in, act := sparseInput(r, rows, r.Float64())
		want, got, gotAct := readPair(t, ref, sub, in, act, r.Uint64())
		assertBitwise(t, "interleaved/scan", want, got)
		assertBitwise(t, "interleaved/active", want, gotAct)
	}
}

// FuzzMACReadKernel lets the fuzzer search for a geometry, sparsity,
// fault load or age where the baked kernel diverges from the dense read.
func FuzzMACReadKernel(f *testing.F) {
	f.Add(uint64(1), uint8(16), uint8(8), uint8(128), uint8(0))
	f.Add(uint64(2), uint8(1), uint8(1), uint8(0), uint8(7))
	f.Add(uint64(3), uint8(200), uint8(64), uint8(255), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, rows8, cols8, sparsity, flags uint8) {
		rows, cols := int(rows8)+1, int(cols8)+1
		cfg := Config{}
		if flags&1 != 0 {
			cfg.ReadNoiseSigma = 0.05
		}
		if flags&2 != 0 {
			cfg.IRDropAlpha = 0.4
		}
		if flags&4 != 0 {
			cfg.DriftTauSteps = 300
		}
		ref, sub := newTwin(seed, rows, cols, cfg)
		if flags&8 != 0 {
			ref.InjectStuckFaults(rng.New(seed+9), 0.05, StuckAP)
			sub.InjectStuckFaults(rng.New(seed+9), 0.05, StuckAP)
		}
		if cfg.DriftTauSteps > 0 {
			ref.Tick(int64(sparsity))
			sub.Tick(int64(sparsity))
		}
		sub.BakeKernel()
		r := rng.New(seed ^ 0xA5A5)
		in, act := sparseInput(r, rows, float64(sparsity)/255)
		want, got, gotAct := readPair(t, ref, sub, in, act, seed+17)
		assertBitwise(t, "fuzz/scan", want, got)
		assertBitwise(t, "fuzz/active", want, gotAct)
	})
}

// packMask bit-packs the nonzero positions of an input vector.
func packMask(in []float64) []uint64 {
	var p spikeplane.Plane
	p.Pack(in)
	return p.WordSlice()
}

// TestMACReadPackedBitwise is the packed-path differential test: across
// the same stress configurations as the kernel test, a full-width
// MACReadPacked must reproduce the dense read bit for bit, and a
// column/row-trimmed read must reproduce the leading columns bit for
// bit (per-column sums are independent and noise draws are in column
// index order, so trimming the tail never perturbs the head).
func TestMACReadPackedBitwise(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{}},
		{"irdrop", Config{IRDropAlpha: 0.25}},
		{"noise", Config{ReadNoiseSigma: 0.05}},
		{"drift", Config{DriftTauSteps: 800}},
		{"everything", kernelCfg()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rng.New(0xBEEFCAFE)
			for trial := 0; trial < 10; trial++ {
				rows := 1 + r.Intn(160)
				cols := 1 + r.Intn(96)
				seed := r.Uint64()
				ref, sub := newTwin(seed, rows, cols, tc.cfg)
				if trial%2 == 0 {
					ref.InjectStuckFaults(rng.New(seed+2), 0.03, StuckAP)
					sub.InjectStuckFaults(rng.New(seed+2), 0.03, StuckAP)
				}
				if trial%3 == 0 {
					row := r.Intn(rows)
					ref.KillRow(row)
					sub.KillRow(row)
				}
				if tc.cfg.DriftTauSteps > 0 {
					age := int64(r.Intn(2000))
					ref.Tick(age)
					sub.Tick(age)
				}
				sub.BakeKernel()

				for _, frac := range []float64{0, 0.1, 0.5, 1} {
					in, _ := sparseInput(r, rows, frac)
					mask := packMask(in)
					noiseSeed := r.Uint64()
					want, err := ref.MACRead(in, rng.New(noiseSeed), nil)
					if err != nil {
						t.Fatal(err)
					}
					var sRef, sSub Stats
					if err := ref.MACReadInto(make([]float64, cols), in, nil, rng.New(noiseSeed), &sRef); err != nil {
						t.Fatal(err)
					}
					got := make([]float64, cols)
					if err := sub.MACReadPacked(got, in, mask, rng.New(noiseSeed), &sSub); err != nil {
						t.Fatal(err)
					}
					assertBitwise(t, tc.name+"/packed", want, got)
					if sRef.MACs != sSub.MACs || sRef.ActiveRowSum != sSub.ActiveRowSum ||
						math.Float64bits(sRef.OutputCurrentUA) != math.Float64bits(sSub.OutputCurrentUA) {
						t.Fatalf("%s: stats diverged: dense %+v, packed %+v", tc.name, sRef, sSub)
					}

					// Trimmed read: silent tail rows dropped from the input,
					// only the leading columns computed.
					inLen := rows - r.Intn(rows/2+1)
					for i := inLen; i < rows; i++ {
						in[i] = 0
					}
					mask = packMask(in[:inLen])
					wantTrim, err := ref.MACRead(in, rng.New(noiseSeed), nil)
					if err != nil {
						t.Fatal(err)
					}
					nd := 1 + r.Intn(cols)
					trim := make([]float64, nd)
					if err := sub.MACReadPacked(trim, in[:inLen], mask, rng.New(noiseSeed), nil); err != nil {
						t.Fatal(err)
					}
					assertBitwise(t, tc.name+"/trimmed", wantTrim[:nd], trim)
				}
			}
		})
	}
}

// TestMACReadPackedStaleKernel pins the fallback contract: without a
// fresh kernel the packed path refuses with ErrStaleKernel rather than
// silently computing on stale terms.
func TestMACReadPackedStaleKernel(t *testing.T) {
	_, sub := newTwin(5, 8, 6, Config{})
	in, _ := sparseInput(rng.New(1), 8, 0.5)
	mask := packMask(in)
	dst := make([]float64, 6)
	if err := sub.MACReadPacked(dst, in, mask, nil, nil); !errors.Is(err, ErrStaleKernel) {
		t.Fatalf("unbaked packed read: got %v, want ErrStaleKernel", err)
	}
	sub.BakeKernel()
	if err := sub.MACReadPacked(dst, in, mask, nil, nil); err != nil {
		t.Fatalf("fresh packed read failed: %v", err)
	}
	sub.KillRow(0)
	if err := sub.MACReadPacked(dst, in, mask, nil, nil); !errors.Is(err, ErrStaleKernel) {
		t.Fatalf("stale packed read: got %v, want ErrStaleKernel", err)
	}
	sub.BakeKernel()
	if err := sub.MACReadPacked(make([]float64, 7), in, mask, nil, nil); err == nil {
		t.Fatal("oversized destination accepted")
	}
	if err := sub.MACReadPacked(dst, make([]float64, 9), mask, nil, nil); err == nil {
		t.Fatal("oversized input accepted")
	}
}

// benchmarkSparsity measures the dense reference against the baked
// kernel at one active-row fraction on a full 128×128 array. The suffix
// in the benchmark names is the SPARSITY (fraction of silent rows):
// Sparsity90 drives 10% of the rows.
func benchmarkSparsity(b *testing.B, activeFrac float64) {
	const rows, cols = 128, 128
	_, cb := newTwin(99, rows, cols, Config{IRDropAlpha: 0.3})
	in, act := sparseInput(rng.New(42), rows, activeFrac)
	dst := make([]float64, cols)
	b.Run("dense", func(b *testing.B) {
		cb.DropKernel()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := cb.MACReadInto(dst, in, act, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kernel", func(b *testing.B) {
		cb.BakeKernel()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := cb.MACReadInto(dst, in, act, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMACRead_Sparsity90(b *testing.B) { benchmarkSparsity(b, 0.10) }
func BenchmarkMACRead_Sparsity50(b *testing.B) { benchmarkSparsity(b, 0.50) }
func BenchmarkMACRead_Sparsity10(b *testing.B) { benchmarkSparsity(b, 0.90) }
