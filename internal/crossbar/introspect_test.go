package crossbar

import (
	"testing"

	"repro/internal/device"
)

// TestFaultIntrospection pins the per-pair introspection surface the
// BIST and scrub paths read: physical geometry, weak/stuck queries,
// differential pair error, and the stats reset.
func TestFaultIntrospection(t *testing.T) {
	p := device.DefaultParams()
	cb := New(4, 4, p, Config{}, nil)

	if cb.PhysRows() < 4 || cb.PhysCols() < 4 {
		t.Fatalf("physical geometry %dx%d smaller than logical 4x4", cb.PhysRows(), cb.PhysCols())
	}

	if plus, minus := cb.WeakAt(1, 1); plus || minus {
		t.Fatalf("fresh array reports weak devices: %v %v", plus, minus)
	}
	if plus, minus := cb.StuckAt(1, 1); plus || minus {
		t.Fatalf("fresh array reports stuck devices: %v %v", plus, minus)
	}
	if e := cb.PairError(1, 1); e != 0 {
		t.Fatalf("fresh pair error %d, want 0", e)
	}

	cb.SetWeak(1, 1, true, 2)
	if plus, _ := cb.WeakAt(1, 1); !plus {
		t.Fatal("SetWeak not visible through WeakAt")
	}
	if _, minus := cb.WeakAt(1, 1); minus {
		t.Fatal("weak plus device leaked onto the minus sibling")
	}
	if plus, minus := cb.StuckAt(1, 1); plus || minus {
		t.Fatal("weak device misreported as stuck")
	}

	cb.ResetStats()
	if s := cb.Stats(); s.MACs != 0 {
		t.Fatalf("stats after reset: %+v", s)
	}

	a := Stats{MACs: 5, ActiveRowSum: 10}
	d := a.Diff(Stats{MACs: 2, ActiveRowSum: 4})
	if d.MACs != 3 || d.ActiveRowSum != 6 {
		t.Fatalf("stats diff = %+v, want MACs 3 ActiveRowSum 6", d)
	}
}
