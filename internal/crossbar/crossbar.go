// Package crossbar models the "All-Spin" neuromorphic crossbar array of
// Fig. 3: DW-MTJ synapses at the junctions perform a parallel analog
// dot-product by Kirchhoff current summation along the source lines, and
// the summed currents drive DW-MTJ neurons directly (no current-to-voltage
// conversion, §II-C).
//
// Signed weights are realized as differential device pairs (G⁺ − G⁻), so
// the anti-parallel baseline conductance cancels between the two columns.
// The model includes the two dominant analog non-idealities the paper's
// design section discusses: source-line IR drop (which grows with the
// number of simultaneously active rows) and read-current noise.
//
// The array also carries the device-level reliability model consumed by
// package reliability: persistent per-device fault records (stuck and
// weak devices survive reprogramming), dead row/column lines, read
// disturb, retention drift, and spare lines reachable through a logical→
// physical line indirection. See faults.go.
package crossbar

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Stats accumulates activity statistics used by the energy model.
type Stats struct {
	// MACs counts crossbar evaluations (one per Step over all columns).
	MACs int64
	// ActiveRowSum accumulates the number of driven rows per evaluation.
	ActiveRowSum int64
	// OutputCurrentUA accumulates |I| over columns and evaluations.
	OutputCurrentUA float64
	// ProgramEnergyFJ is the total synapse programming energy.
	ProgramEnergyFJ float64
}

// Diff returns the activity accumulated since a prior snapshot of the
// same Stats — the per-stage delta the observability layer attributes
// while one run funnels every crossbar read into a single Stats.
func (s Stats) Diff(prev Stats) Stats {
	return Stats{
		MACs:            s.MACs - prev.MACs,
		ActiveRowSum:    s.ActiveRowSum - prev.ActiveRowSum,
		OutputCurrentUA: s.OutputCurrentUA - prev.OutputCurrentUA,
		ProgramEnergyFJ: s.ProgramEnergyFJ - prev.ProgramEnergyFJ,
	}
}

// Config holds the crossbar's analog non-ideality knobs.
type Config struct {
	// IRDropAlpha scales the source-line voltage droop: each row's
	// effective drive is multiplied by 1/(1 + IRDropAlpha·activeFrac).
	// Zero disables the effect.
	IRDropAlpha float64
	// ReadNoiseSigma is the relative standard deviation of multiplicative
	// read noise on column currents. Zero disables noise.
	ReadNoiseSigma float64
	// ProgramVariationLevels is the standard deviation, in device levels,
	// of programming error: each synapse lands within a few pinning sites
	// of its target (device mismatch, §IV-D). Zero disables it.
	ProgramVariationLevels float64
	// SpareRows and SpareCols provision redundant physical lines per array
	// for dead-line remapping by the reliability layer. Zero disables
	// sparing and keeps the array purely logical.
	SpareRows, SpareCols int
	// ReadDisturbProb is the per-device per-evaluation probability that a
	// read pulse nudges a stored domain wall one pinning site toward AP
	// (a transient retention upset). Requires a noise generator; zero
	// disables the effect.
	ReadDisturbProb float64
	// DriftTauSteps is the retention time constant in elapsed timesteps
	// (advanced by Tick): read currents decay by exp(-age/τ) as the
	// programmed walls relax toward their unpinned rest state. Zero
	// disables drift.
	DriftTauSteps float64
}

// Crossbar is an R×C array of differential DW-MTJ synapse pairs.
type Crossbar struct {
	Rows, Cols int
	P          device.Params
	Cfg        Config

	// Physical geometry: the logical lines plus Cfg's spare lines. The
	// rowMap/colMap indirection routes each logical line to a physical
	// line; it is the identity until a remap consumes a spare.
	physRows, physCols int
	rowMap, colMap     []int

	// levelPlus/levelMinus hold the stored device levels, indexed
	// physRow*physCols+physCol. targetPlus/targetMinus hold the levels
	// the last Program intended — what BIST verifies against and what
	// write-verify rewrites toward.
	levelPlus, levelMinus   []int16
	targetPlus, targetMinus []int16

	// faultPlus/faultMinus record injected device faults (allocated
	// lazily on first injection); deadRow/deadCol mark failed physical
	// lines. spareRowsFree/spareColsFree list physical spares not yet
	// consumed by a remap; the free lists are pure allocator
	// bookkeeping — which spares remain does not affect what a read
	// observes until a remap rewrites the line maps.
	faultPlus, faultMinus []faultRec
	deadRow, deadCol      []bool
	//nebula:genstamp-exempt spare-line free lists are allocator state, not read-visible
	spareRowsFree, spareColsFree []int

	// age counts elapsed timesteps since the last full (re)programming,
	// driving retention drift.
	age int64

	// wmax maps level States-1 to weight magnitude wmax.
	wmax float64
	// stats accumulates activity counters; readers fold deltas into
	// their own Stats, so the shared counters never feed a read result.
	//nebula:genstamp-exempt activity accounting, not read-visible state
	stats Stats
	noise *rng.Rand

	// gen counts mutations of the read-visible state (levels, line maps,
	// dead lines, retention clock); kern is the frozen read kernel baked
	// against one generation. A kernel whose generation falls behind is
	// stale and the read path falls back to the dense walk. See kernel.go.
	gen uint64
	//nebula:genstamp-exempt the kernel is the cache keyed by gen, not the state it caches
	kern *readKernel
}

// New allocates an unprogrammed crossbar.
func New(rows, cols int, p device.Params, cfg Config, noise *rng.Rand) *Crossbar {
	physRows, physCols := rows+cfg.SpareRows, cols+cfg.SpareCols
	c := &Crossbar{
		Rows: rows, Cols: cols, P: p, Cfg: cfg,
		physRows: physRows, physCols: physCols,
		rowMap: make([]int, rows), colMap: make([]int, cols),
		levelPlus:   make([]int16, physRows*physCols),
		levelMinus:  make([]int16, physRows*physCols),
		targetPlus:  make([]int16, physRows*physCols),
		targetMinus: make([]int16, physRows*physCols),
		noise:       noise,
	}
	for i := range c.rowMap {
		c.rowMap[i] = i
	}
	for i := range c.colMap {
		c.colMap[i] = i
	}
	for s := rows; s < physRows; s++ {
		c.spareRowsFree = append(c.spareRowsFree, s)
	}
	for s := cols; s < physCols; s++ {
		c.spareColsFree = append(c.spareColsFree, s)
	}
	return c
}

// Program loads a rows×cols weight matrix. Weights are clipped to ±wmax
// and quantized to the device's discrete levels; positive weights program
// the plus device, negative the minus device. Programming energy is
// accounted per level step moved. Recorded device faults persist: a stuck
// or weak device ignores the write and keeps its fault level, so
// reprogramming does not silently heal injected defects.
func (c *Crossbar) Program(w *tensor.Tensor, wmax float64) error {
	if w.NDim() != 2 || w.Dim(0) != c.Rows || w.Dim(1) != c.Cols {
		return fmt.Errorf("crossbar: weights %v do not fit %d×%d array", w.Shape(), c.Rows, c.Cols)
	}
	if wmax <= 0 {
		return fmt.Errorf("crossbar: wmax must be positive")
	}
	c.invalidate()
	c.wmax = wmax
	states := c.P.States()
	stepEnergy := c.P.WriteEnergyFJ / float64(states-1)
	wd := w.Data()
	for r := 0; r < c.Rows; r++ {
		pr := c.rowMap[r]
		for col := 0; col < c.Cols; col++ {
			v := wd[r*c.Cols+col]
			mag := math.Abs(v)
			if mag > wmax {
				mag = wmax
			}
			level := int(math.Round(mag / wmax * float64(states-1)))
			written := level
			if c.Cfg.ProgramVariationLevels > 0 && c.noise != nil {
				written += int(math.Round(c.Cfg.ProgramVariationLevels * c.noise.NormFloat64()))
				if written < 0 {
					written = 0
				}
				if written > states-1 {
					written = states - 1
				}
			}
			var tp, tm, ap, am int
			if v >= 0 {
				tp, ap = level, written
			} else {
				tm, am = level, written
			}
			pi := pr*c.physCols + c.colMap[col]
			c.targetPlus[pi], c.targetMinus[pi] = int16(tp), int16(tm)
			ap = c.appliedLevel(pi, true, ap)
			am = c.appliedLevel(pi, false, am)
			c.stats.ProgramEnergyFJ += math.Abs(float64(int16(ap)-c.levelPlus[pi])) * stepEnergy
			c.stats.ProgramEnergyFJ += math.Abs(float64(int16(am)-c.levelMinus[pi])) * stepEnergy
			c.levelPlus[pi] = int16(ap)
			c.levelMinus[pi] = int16(am)
		}
	}
	c.age = 0
	return nil
}

// EffectiveWeight returns the programmed (quantized) weight at (row, col).
func (c *Crossbar) EffectiveWeight(row, col int) float64 {
	states := c.P.States()
	i := c.rowMap[row]*c.physCols + c.colMap[col]
	return float64(c.levelPlus[i]-c.levelMinus[i]) / float64(states-1) * c.wmax
}

// MAC drives the rows with input levels in [0, 1] (bit-line voltage as a
// fraction of VRead) and returns the per-column dot products in weight
// units, as thresholded by the neuron units. Column read currents are
// derived from the device conductances, so quantization, IR drop, read
// noise, dead lines, retention drift and read disturb all act on the
// result.
//
// MAC models wear: every call may disturb stored walls and mutates the
// array's shared activity counters, so it must not be called concurrently.
// Sessions that freeze the programmed conductances use MACRead instead.
func (c *Crossbar) MAC(input []float64) ([]float64, error) {
	out, active, currentSum, err := c.macCompute(input, c.noise)
	if err != nil {
		return nil, err
	}
	c.applyReadDisturb(active)
	c.stats.MACs++
	c.stats.ActiveRowSum += int64(active)
	c.stats.OutputCurrentUA += currentSum
	return out, nil
}

// MACRead evaluates the same analog dot product as MAC without the wear
// side effects: no read disturb, no retention-clock interaction, and no
// mutation of the array's shared counters. Read-noise draws come from the
// caller's stream (nil disables noise) and activity is accumulated into
// the caller's stats (nil discards it), so any number of goroutines may
// call MACRead against the same programmed array concurrently, as long as
// nothing reprograms, ticks or injects faults into it meanwhile.
//
// When a fresh kernel is baked (BakeKernel) the evaluation takes the
// event-driven fast path; results are bitwise identical either way.
func (c *Crossbar) MACRead(input []float64, noise *rng.Rand, stats *Stats) ([]float64, error) {
	out := make([]float64, c.Cols)
	if err := c.MACReadInto(out, input, nil, noise, stats); err != nil {
		return nil, err
	}
	return out, nil
}

// macCompute is the dense analog evaluation shared by MAC and the
// kernel-free read path. It reads only programmed state (levels, line
// maps, age) and the supplied noise stream, never the receiver's mutable
// wear state.
func (c *Crossbar) macCompute(input []float64, noise *rng.Rand) (out []float64, active int, currentSum float64, err error) {
	out = make([]float64, c.Cols)
	active, currentSum, err = c.macComputeInto(out, input, noise)
	if err != nil {
		return nil, 0, 0, err
	}
	return out, active, currentSum, nil
}

// macComputeInto is macCompute writing into a caller-provided buffer of
// length Cols. Every element of dst is assigned.
func (c *Crossbar) macComputeInto(dst, input []float64, noise *rng.Rand) (active int, currentSum float64, err error) {
	if len(input) != c.Rows {
		return 0, 0, fmt.Errorf("crossbar: input length %d, want %d rows", len(input), c.Rows)
	}
	for _, v := range input {
		if v != 0 {
			active++
		}
	}
	atten := 1.0
	if c.Cfg.IRDropAlpha > 0 && c.Rows > 0 {
		atten = 1 / (1 + c.Cfg.IRDropAlpha*float64(active)/float64(c.Rows))
	}
	drift := 1.0
	if c.Cfg.DriftTauSteps > 0 && c.age > 0 {
		drift = math.Exp(-float64(c.age) / c.Cfg.DriftTauSteps)
	}
	states := c.P.States()
	deltaG := (c.P.GParallelUS - c.P.GAntiParallelUS) / float64(states-1) // µS per level
	for col := 0; col < c.Cols; col++ {
		pc := c.colMap[col]
		if c.deadCol != nil && c.deadCol[pc] {
			// A dead sense line contributes no current; the column reads 0.
			dst[col] = 0
			continue
		}
		// Differential column current: Σ V_i·ΔG·(level⁺−level⁻).
		var iDiff float64 // in µA
		for row := 0; row < c.Rows; row++ {
			v := input[row]
			if v == 0 {
				continue
			}
			pr := c.rowMap[row]
			if c.deadRow != nil && c.deadRow[pr] {
				continue
			}
			idx := pr*c.physCols + pc
			g := float64(c.levelPlus[idx]-c.levelMinus[idx]) * deltaG
			iDiff += v * atten * c.P.VReadMV * 1e-3 * g // mV·µS → µA·1e-3... see scale below
		}
		// Scale: (V in volts)·(G in µS) = µA. Drift scales the stored
		// polarization uniformly before the read noise is applied.
		iDiff *= drift
		if c.Cfg.ReadNoiseSigma > 0 && noise != nil {
			iDiff *= 1 + c.Cfg.ReadNoiseSigma*noise.NormFloat64()
		}
		currentSum += math.Abs(iDiff)
		// Convert current back to weight units: a full-scale weight wmax
		// at input 1.0 produces V·(States−1)·ΔG.
		fullScale := c.P.VReadMV * 1e-3 * float64(states-1) * deltaG
		dst[col] = iDiff / fullScale * c.wmax
	}
	return active, currentSum, nil
}

// Stats returns a copy of the accumulated activity counters.
func (c *Crossbar) Stats() Stats { return c.stats }

// ResetStats clears the activity counters (not the programmed weights).
func (c *Crossbar) ResetStats() { c.stats = Stats{} }

// Utilization returns the fraction of synapses with a non-zero programmed
// level, the quantity behind the paper's morphable-tile motivation.
func (c *Crossbar) Utilization() float64 {
	used := 0
	for r := 0; r < c.Rows; r++ {
		for col := 0; col < c.Cols; col++ {
			i := c.rowMap[r]*c.physCols + c.colMap[col]
			if c.levelPlus[i] != 0 || c.levelMinus[i] != 0 {
				used++
			}
		}
	}
	return float64(used) / float64(c.Rows*c.Cols)
}

// FaultMode selects the stuck state of an injected device fault.
type FaultMode int

// Fault modes: a stuck-AP device reads as minimum conductance (weight
// contribution 0 after differential cancellation), a stuck-P device as
// maximum.
const (
	StuckAP FaultMode = iota
	StuckP
)

// InjectStuckFaults forces a random fraction of synapse devices into a
// permanently stuck conductance state, modelling fabrication defects and
// endurance failures. Both devices of a differential pair are candidates
// independently; spare devices are as fallible as primary ones. It
// returns the number of devices faulted. Faults are recorded per device
// and re-applied by every subsequent Program call, so a reprogrammed
// array keeps its defects.
func (c *Crossbar) InjectStuckFaults(r *rng.Rand, fraction float64, mode FaultMode) int {
	if r == nil || fraction <= 0 {
		return 0
	}
	c.invalidate()
	c.ensureFaults()
	states := c.P.States()
	stuck := 0
	if mode == StuckP {
		stuck = states - 1
	}
	kind := kindStuckAP
	if mode == StuckP {
		kind = kindStuckP
	}
	n := 0
	for i := range c.levelPlus {
		if r.Bernoulli(fraction) {
			c.faultPlus[i] = faultRec{kind: kind, level: int16(stuck)}
			c.levelPlus[i] = int16(stuck)
			n++
		}
		if r.Bernoulli(fraction) {
			c.faultMinus[i] = faultRec{kind: kind, level: int16(stuck)}
			c.levelMinus[i] = int16(stuck)
			n++
		}
	}
	return n
}
