// Package crossbar models the "All-Spin" neuromorphic crossbar array of
// Fig. 3: DW-MTJ synapses at the junctions perform a parallel analog
// dot-product by Kirchhoff current summation along the source lines, and
// the summed currents drive DW-MTJ neurons directly (no current-to-voltage
// conversion, §II-C).
//
// Signed weights are realized as differential device pairs (G⁺ − G⁻), so
// the anti-parallel baseline conductance cancels between the two columns.
// The model includes the two dominant analog non-idealities the paper's
// design section discusses: source-line IR drop (which grows with the
// number of simultaneously active rows) and read-current noise.
package crossbar

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Stats accumulates activity statistics used by the energy model.
type Stats struct {
	// MACs counts crossbar evaluations (one per Step over all columns).
	MACs int64
	// ActiveRowSum accumulates the number of driven rows per evaluation.
	ActiveRowSum int64
	// OutputCurrentUA accumulates |I| over columns and evaluations.
	OutputCurrentUA float64
	// ProgramEnergyFJ is the total synapse programming energy.
	ProgramEnergyFJ float64
}

// Config holds the crossbar's analog non-ideality knobs.
type Config struct {
	// IRDropAlpha scales the source-line voltage droop: each row's
	// effective drive is multiplied by 1/(1 + IRDropAlpha·activeFrac).
	// Zero disables the effect.
	IRDropAlpha float64
	// ReadNoiseSigma is the relative standard deviation of multiplicative
	// read noise on column currents. Zero disables noise.
	ReadNoiseSigma float64
	// ProgramVariationLevels is the standard deviation, in device levels,
	// of programming error: each synapse lands within a few pinning sites
	// of its target (device mismatch, §IV-D). Zero disables it.
	ProgramVariationLevels float64
}

// Crossbar is an R×C array of differential DW-MTJ synapse pairs.
type Crossbar struct {
	Rows, Cols int
	P          device.Params
	Cfg        Config

	// levelPlus/levelMinus hold the programmed device levels.
	levelPlus, levelMinus []int
	// wmax maps level States-1 to weight magnitude wmax.
	wmax  float64
	stats Stats
	noise *rng.Rand
}

// New allocates an unprogrammed crossbar.
func New(rows, cols int, p device.Params, cfg Config, noise *rng.Rand) *Crossbar {
	return &Crossbar{
		Rows: rows, Cols: cols, P: p, Cfg: cfg,
		levelPlus:  make([]int, rows*cols),
		levelMinus: make([]int, rows*cols),
		noise:      noise,
	}
}

// Program loads a rows×cols weight matrix. Weights are clipped to ±wmax
// and quantized to the device's discrete levels; positive weights program
// the plus device, negative the minus device. Programming energy is
// accounted per level step moved.
func (c *Crossbar) Program(w *tensor.Tensor, wmax float64) error {
	if w.NDim() != 2 || w.Dim(0) != c.Rows || w.Dim(1) != c.Cols {
		return fmt.Errorf("crossbar: weights %v do not fit %d×%d array", w.Shape(), c.Rows, c.Cols)
	}
	if wmax <= 0 {
		return fmt.Errorf("crossbar: wmax must be positive")
	}
	c.wmax = wmax
	states := c.P.States()
	stepEnergy := c.P.WriteEnergyFJ / float64(states-1)
	wd := w.Data()
	for i, v := range wd {
		mag := math.Abs(v)
		if mag > wmax {
			mag = wmax
		}
		level := int(math.Round(mag / wmax * float64(states-1)))
		if c.Cfg.ProgramVariationLevels > 0 && c.noise != nil {
			level += int(math.Round(c.Cfg.ProgramVariationLevels * c.noise.NormFloat64()))
			if level < 0 {
				level = 0
			}
			if level > states-1 {
				level = states - 1
			}
		}
		var plus, minus int
		if v >= 0 {
			plus = level
		} else {
			minus = level
		}
		c.stats.ProgramEnergyFJ += math.Abs(float64(plus-c.levelPlus[i])) * stepEnergy
		c.stats.ProgramEnergyFJ += math.Abs(float64(minus-c.levelMinus[i])) * stepEnergy
		c.levelPlus[i] = plus
		c.levelMinus[i] = minus
	}
	return nil
}

// EffectiveWeight returns the programmed (quantized) weight at (row, col).
func (c *Crossbar) EffectiveWeight(row, col int) float64 {
	states := c.P.States()
	i := row*c.Cols + col
	return float64(c.levelPlus[i]-c.levelMinus[i]) / float64(states-1) * c.wmax
}

// MAC drives the rows with input levels in [0, 1] (bit-line voltage as a
// fraction of VRead) and returns the per-column dot products in weight
// units, as thresholded by the neuron units. Column read currents are
// derived from the device conductances, so quantization, IR drop and read
// noise all act on the result.
func (c *Crossbar) MAC(input []float64) ([]float64, error) {
	if len(input) != c.Rows {
		return nil, fmt.Errorf("crossbar: input length %d, want %d rows", len(input), c.Rows)
	}
	active := 0
	for _, v := range input {
		if v != 0 {
			active++
		}
	}
	atten := 1.0
	if c.Cfg.IRDropAlpha > 0 && c.Rows > 0 {
		atten = 1 / (1 + c.Cfg.IRDropAlpha*float64(active)/float64(c.Rows))
	}
	states := c.P.States()
	deltaG := (c.P.GParallelUS - c.P.GAntiParallelUS) / float64(states-1) // µS per level
	out := make([]float64, c.Cols)
	var currentSum float64
	for col := 0; col < c.Cols; col++ {
		// Differential column current: Σ V_i·ΔG·(level⁺−level⁻).
		var iDiff float64 // in µA
		for row := 0; row < c.Rows; row++ {
			v := input[row]
			if v == 0 {
				continue
			}
			idx := row*c.Cols + col
			g := float64(c.levelPlus[idx]-c.levelMinus[idx]) * deltaG
			iDiff += v * atten * c.P.VReadMV * 1e-3 * g // mV·µS → µA·1e-3... see scale below
		}
		// Scale: (V in volts)·(G in µS) = µA.
		if c.Cfg.ReadNoiseSigma > 0 && c.noise != nil {
			iDiff *= 1 + c.Cfg.ReadNoiseSigma*c.noise.NormFloat64()
		}
		currentSum += math.Abs(iDiff)
		// Convert current back to weight units: a full-scale weight wmax
		// at input 1.0 produces V·(States−1)·ΔG.
		fullScale := c.P.VReadMV * 1e-3 * float64(states-1) * deltaG
		out[col] = iDiff / fullScale * c.wmax
	}
	c.stats.MACs++
	c.stats.ActiveRowSum += int64(active)
	c.stats.OutputCurrentUA += currentSum
	return out, nil
}

// Stats returns a copy of the accumulated activity counters.
func (c *Crossbar) Stats() Stats { return c.stats }

// ResetStats clears the activity counters (not the programmed weights).
func (c *Crossbar) ResetStats() { c.stats = Stats{} }

// Utilization returns the fraction of synapses with a non-zero programmed
// level, the quantity behind the paper's morphable-tile motivation.
func (c *Crossbar) Utilization() float64 {
	used := 0
	for i := range c.levelPlus {
		if c.levelPlus[i] != 0 || c.levelMinus[i] != 0 {
			used++
		}
	}
	return float64(used) / float64(len(c.levelPlus))
}

// FaultMode selects the stuck state of an injected device fault.
type FaultMode int

// Fault modes: a stuck-AP device reads as minimum conductance (weight
// contribution 0 after differential cancellation), a stuck-P device as
// maximum.
const (
	StuckAP FaultMode = iota
	StuckP
)

// InjectStuckFaults forces a random fraction of synapse devices into a
// stuck conductance state, modelling fabrication defects and endurance
// failures. Both devices of a differential pair are candidates
// independently. It returns the number of devices faulted. Subsequent
// Program calls overwrite faults (call again after reprogramming to model
// permanent defects).
func (c *Crossbar) InjectStuckFaults(r *rng.Rand, fraction float64, mode FaultMode) int {
	if r == nil || fraction <= 0 {
		return 0
	}
	states := c.P.States()
	stuck := 0
	if mode == StuckP {
		stuck = states - 1
	}
	n := 0
	for i := range c.levelPlus {
		if r.Bernoulli(fraction) {
			c.levelPlus[i] = stuck
			n++
		}
		if r.Bernoulli(fraction) {
			c.levelMinus[i] = stuck
			n++
		}
	}
	return n
}
