package crossbar

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/rng"
)

// This file is the frozen read kernel of the session fast path. Once a
// session compiles (programming, fault injection, BIST/protect all
// done), the conductance planes are immutable for the life of the
// session, so everything macCompute re-derives per read — the rowMap/
// colMap line indirection, the level⁺−level⁻ differential, the ΔG
// scale, the dead-line masks — can be baked once into a flat row-major
// term plane. MACReadInto then runs an event-driven axpy over only the
// active rows: O(nnz·Cols) sequential memory traffic instead of
// O(Rows·Cols) pointer-chasing.
//
// The kernel is a pure cache: every result it produces is bitwise
// identical to the dense macCompute path (enforced by the differential
// fuzz tests in kernel_test.go), and a generation stamp invalidates it
// the moment any mutator touches levels, maps, dead lines or the
// retention clock. A stale kernel is never rebaked implicitly — reads
// may run on many goroutines, so the fast path silently falls back to
// the dense walk until the owner bakes again.

// readKernel is the baked read-path cache of one crossbar.
type readKernel struct {
	// gen is the crossbar generation the bake captured; the kernel is
	// valid only while it equals the crossbar's current generation.
	gen uint64
	// terms holds the per-pair differential conductance terms
	// float64(level⁺−level⁻)·ΔG in logical row-major order
	// (terms[row·Cols+col]), with the rowMap/colMap indirection folded
	// in. Rows routed to dead lines keep zero terms and are skipped via
	// rowDead — they must not be zero-summed, because adding a signed
	// zero can flip a −0.0 accumulator and break bitwise equality.
	terms []float64
	// rowDead / colDead are the dead-line masks in logical coordinates.
	rowDead, colDead []bool
	// rowLive is the bit-packed complement of rowDead (bit set = live
	// logical row), so packed spike planes intersect against it with a
	// word-AND instead of a per-index branch.
	rowLive []uint64
	// fullScale is the hoisted output divisor VRead·(States−1)·ΔG; it is
	// the same deterministic expression macCompute evaluates per column.
	fullScale float64
}

// BakeKernel (re)builds the frozen read kernel from the current
// programmed state. Call it when the conductances freeze — after
// programming, fault injection and repair are done — and again after any
// deliberate mutation. Baking never changes read results; it only makes
// MACRead/MACReadInto take the sparse fast path while the kernel stays
// fresh.
func (c *Crossbar) BakeKernel() {
	states := c.P.States()
	deltaG := (c.P.GParallelUS - c.P.GAntiParallelUS) / float64(states-1)
	k := &readKernel{
		gen:       c.gen,
		terms:     make([]float64, c.Rows*c.Cols),
		rowDead:   make([]bool, c.Rows),
		colDead:   make([]bool, c.Cols),
		rowLive:   make([]uint64, (c.Rows+63)/64),
		fullScale: c.P.VReadMV * 1e-3 * float64(states-1) * deltaG,
	}
	for col := 0; col < c.Cols; col++ {
		if c.deadCol != nil && c.deadCol[c.colMap[col]] {
			k.colDead[col] = true
		}
	}
	for row := 0; row < c.Rows; row++ {
		pr := c.rowMap[row]
		if c.deadRow != nil && c.deadRow[pr] {
			k.rowDead[row] = true
			continue
		}
		k.rowLive[row>>6] |= 1 << uint(row&63)
		base := pr * c.physCols
		trow := k.terms[row*c.Cols : (row+1)*c.Cols]
		for col := range trow {
			idx := base + c.colMap[col]
			trow[col] = float64(c.levelPlus[idx]-c.levelMinus[idx]) * deltaG
		}
	}
	c.kern = k
}

// KernelFresh reports whether a baked kernel exists and still matches
// the crossbar's generation — i.e. whether MACRead currently takes the
// fast path.
func (c *Crossbar) KernelFresh() bool {
	return c.kern != nil && c.kern.gen == c.gen
}

// DropKernel discards the baked kernel, forcing the dense path.
func (c *Crossbar) DropKernel() { c.kern = nil }

// Generation returns the crossbar's mutation counter. Every mutator of
// read-visible state (levels, line maps, dead lines, the retention
// clock) bumps it, so two snapshots comparing equal prove the array has
// not been touched in between — the staleness check session pools use to
// keep serving replicas bitwise reproducible.
func (c *Crossbar) Generation() uint64 { return c.gen }

// invalidate bumps the crossbar generation, marking any baked kernel
// stale. Every mutator of levels, line maps, dead lines or the
// retention clock must call it.
func (c *Crossbar) invalidate() { c.gen++ }

// MACReadInto is MACRead writing into a caller-provided destination
// buffer of length Cols, so steady-state readers allocate nothing.
//
// active, when non-nil, must list exactly the indices of the non-zero
// input entries in increasing order (dead-row positions included — they
// still load the source line and count toward IR drop). The engine
// passes the previous layer's spike list here; nil makes MACReadInto
// scan the input itself. A wrong active list silently corrupts the
// result, so only pass lists derived from the same input slice.
//
// Like MACRead, it has no wear side effects and may run on any number
// of goroutines against a programmed array, as long as nothing mutates
// the array meanwhile.
//
//nebula:hotpath
func (c *Crossbar) MACReadInto(dst, input []float64, active []int, noise *rng.Rand, stats *Stats) error {
	if len(dst) != c.Cols {
		return fmt.Errorf("crossbar: destination length %d, want %d cols", len(dst), c.Cols)
	}
	var activeN int
	var currentSum float64
	var err error
	if k := c.kern; k != nil && k.gen == c.gen {
		activeN, currentSum, err = c.macKernel(k, dst, input, active, noise)
	} else {
		activeN, currentSum, err = c.macComputeInto(dst, input, noise)
	}
	if err != nil {
		return err
	}
	if stats != nil {
		stats.MACs++
		stats.ActiveRowSum += int64(activeN)
		stats.OutputCurrentUA += currentSum
	}
	return nil
}

// macKernel is the baked fast path: an axpy accumulation over only the
// active rows. Per output column the partial products are summed in the
// same increasing logical-row order, with the same operation grouping
// (((v·atten)·VRead)·1e-3)·g, as the dense walk — which is what keeps
// the result bitwise identical.
func (c *Crossbar) macKernel(k *readKernel, dst, input []float64, active []int, noise *rng.Rand) (activeN int, currentSum float64, err error) {
	if len(input) != c.Rows {
		return 0, 0, fmt.Errorf("crossbar: input length %d, want %d rows", len(input), c.Rows)
	}
	if active != nil {
		activeN = len(active)
	} else {
		for _, v := range input {
			if v != 0 {
				activeN++
			}
		}
	}
	atten := 1.0
	if c.Cfg.IRDropAlpha > 0 && c.Rows > 0 {
		atten = 1 / (1 + c.Cfg.IRDropAlpha*float64(activeN)/float64(c.Rows))
	}
	drift := 1.0
	if c.Cfg.DriftTauSteps > 0 && c.age > 0 {
		drift = math.Exp(-float64(c.age) / c.Cfg.DriftTauSteps)
	}
	for i := range dst {
		dst[i] = 0
	}
	cols := c.Cols
	vread := c.P.VReadMV
	if active != nil {
		for _, row := range active {
			if k.rowDead[row] {
				continue
			}
			vv := input[row] * atten * vread * 1e-3
			trow := k.terms[row*cols : (row+1)*cols]
			for col, g := range trow {
				dst[col] += vv * g
			}
		}
	} else {
		for row, v := range input {
			if v == 0 || k.rowDead[row] {
				continue
			}
			vv := v * atten * vread * 1e-3
			trow := k.terms[row*cols : (row+1)*cols]
			for col, g := range trow {
				dst[col] += vv * g
			}
		}
	}
	// Finalize per column in index order so the read-noise draws stay in
	// the dense path's stream order; dead sense lines read 0 and draw no
	// noise, exactly as macCompute skips them.
	sigma := c.Cfg.ReadNoiseSigma
	for col := 0; col < cols; col++ {
		if k.colDead[col] {
			dst[col] = 0
			continue
		}
		iDiff := dst[col] * drift
		if sigma > 0 && noise != nil {
			iDiff *= 1 + sigma*noise.NormFloat64()
		}
		currentSum += math.Abs(iDiff)
		dst[col] = iDiff / k.fullScale * c.wmax
	}
	return activeN, currentSum, nil
}

// ErrStaleKernel is returned by MACReadPacked when no fresh baked
// kernel exists. Unlike MACReadInto, the packed path has no dense
// fallback of its own — the packed mask cannot drive macCompute's
// full-width walk — so the caller must fall back (typically by
// materializing indices and using MACReadInto).
var ErrStaleKernel = errors.New("crossbar: read kernel stale or missing")

// MACReadPacked is the event-driven read: the active rows arrive as a
// bit-packed word mask instead of an index list, and both buffers may
// be trimmed to the logically mapped extent of the array.
//
// Contract, looser than MACReadInto in two ways and stricter in one:
//
//   - len(input) may be ≤ Rows: rows at or beyond len(input) are
//     treated as silent, so callers pass the unpadded window slice.
//   - len(dst) may be ≤ Cols: only the leading len(dst) columns are
//     computed. Per-column sums are independent, so each computed
//     column is bitwise identical to the same column of a full-width
//     read. Stats.OutputCurrentUA consequently sums only those
//     columns; on a faultless array the unmapped tail reads exactly
//     zero and the total is unchanged, but stuck faults parked in
//     unmapped columns would have contributed |I| in the dense walk
//     (DESIGN.md §15). Read-noise draws are likewise per computed
//     column, so trimmed reads consume a different stream count —
//     the engine only takes this path when noise is nil.
//   - mask must have no bit set at or beyond len(input); bit i set
//     iff input[i] != 0. Dead-row bits stay set (they count toward
//     IR drop, exactly like MACReadInto's active list). Trailing
//     words may be omitted entirely.
//
// The accumulation visits rows in increasing order with the same
// operation grouping as the dense walk, so results are bitwise
// identical (±0.0 column sign aside when a trimmed silent read skips
// the zero-summing the dense path performs — the engine never
// consumes the sign of a zero).
//
//nebula:hotpath
func (c *Crossbar) MACReadPacked(dst, input []float64, mask []uint64, noise *rng.Rand, stats *Stats) error {
	k := c.kern
	if k == nil || k.gen != c.gen {
		return ErrStaleKernel
	}
	if len(dst) > c.Cols {
		return fmt.Errorf("crossbar: destination length %d exceeds %d cols", len(dst), c.Cols)
	}
	if len(input) > c.Rows {
		return fmt.Errorf("crossbar: input length %d exceeds %d rows", len(input), c.Rows)
	}
	nw := (len(input) + 63) / 64
	if len(mask) < nw {
		nw = len(mask)
	}
	activeN := 0
	for i := 0; i < nw; i++ {
		activeN += bits.OnesCount64(mask[i])
	}
	atten := 1.0
	if c.Cfg.IRDropAlpha > 0 && c.Rows > 0 {
		atten = 1 / (1 + c.Cfg.IRDropAlpha*float64(activeN)/float64(c.Rows))
	}
	drift := 1.0
	if c.Cfg.DriftTauSteps > 0 && c.age > 0 {
		drift = math.Exp(-float64(c.age) / c.Cfg.DriftTauSteps)
	}
	for i := range dst {
		dst[i] = 0
	}
	cols := c.Cols
	nd := len(dst)
	vread := c.P.VReadMV
	for wi := 0; wi < nw; wi++ {
		w := mask[wi] & k.rowLive[wi]
		base := wi << 6
		for w != 0 {
			row := base + bits.TrailingZeros64(w)
			w &= w - 1
			vv := input[row] * atten * vread * 1e-3
			// Re-slicing to nd == len(dst) lets the compiler drop the
			// per-column bounds checks; the 4-wide unroll breaks the
			// store-to-load chain across independent columns. Each
			// column's own accumulation order is unchanged, so sums
			// stay bitwise identical to the dense walk.
			trow := k.terms[row*cols:]
			trow = trow[:nd]
			col := 0
			for ; col+3 < nd; col += 4 {
				dst[col] += vv * trow[col]
				dst[col+1] += vv * trow[col+1]
				dst[col+2] += vv * trow[col+2]
				dst[col+3] += vv * trow[col+3]
			}
			for ; col < nd; col++ {
				dst[col] += vv * trow[col]
			}
		}
	}
	sigma := c.Cfg.ReadNoiseSigma
	var currentSum float64
	for col := 0; col < nd; col++ {
		if k.colDead[col] {
			dst[col] = 0
			continue
		}
		iDiff := dst[col] * drift
		if sigma > 0 && noise != nil {
			iDiff *= 1 + sigma*noise.NormFloat64()
		}
		currentSum += math.Abs(iDiff)
		dst[col] = iDiff / k.fullScale * c.wmax
	}
	if stats != nil {
		stats.MACs++
		stats.ActiveRowSum += int64(activeN)
		stats.OutputCurrentUA += currentSum
	}
	return nil
}
