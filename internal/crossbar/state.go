package crossbar

import "fmt"

// This file is the serialization boundary of the array: State is a plain
// exported snapshot of everything the generation-stamp contract counts as
// read-visible device state (levels, targets, fault records, line maps,
// dead lines, spare allocator, retention clock, weight range) plus the
// activity counters needed to reproduce compile-time accounting. A State
// round-trips through its own binary codec (statecodec.go), so a chip
// image can persist the programmed conductances bit for bit and a loaded
// array reads exactly like the one it was exported from. Baked kernels
// are deliberately not part of State: they are caches, rebaked after
// import.

// Fault is one sparse fault record: a device index within the physical
// plane and the fault it carries.
type Fault struct {
	// Idx is the flattened physical device index (row*PhysCols + col).
	Idx int32
	// Kind is the FaultKind ordinal (never kindNone — healthy devices
	// have no record).
	Kind uint8
	// Level is the level the fault presents, for kinds that pin one.
	Level int16
}

// State is an exported deep snapshot of one crossbar's device state.
//
// The representation is shaped by what arrays actually hold, so spare
// arrays snapshot to almost nothing and chip images stay proportional to
// the programmed state: a nil level or target plane means all-zero, and
// fault records and dead lines are sparse lists in ascending index
// order (empty means none materialized).
type State struct {
	Rows, Cols         int
	PhysRows, PhysCols int

	RowMap, ColMap []int

	LevelPlus, LevelMinus   []int16
	TargetPlus, TargetMinus []int16

	FaultsPlus, FaultsMinus []Fault
	DeadRows, DeadCols      []int

	SpareRowsFree, SpareColsFree []int

	Age   int64
	WMax  float64
	Stats Stats
}

// ExportState deep-copies the array's read-visible state. The snapshot
// shares no memory with the receiver.
func (c *Crossbar) ExportState() State {
	st := State{
		Rows: c.Rows, Cols: c.Cols,
		PhysRows: c.physRows, PhysCols: c.physCols,
		RowMap:        append([]int(nil), c.rowMap...),
		ColMap:        append([]int(nil), c.colMap...),
		LevelPlus:     copyPlane(c.levelPlus),
		LevelMinus:    copyPlane(c.levelMinus),
		TargetPlus:    copyPlane(c.targetPlus),
		TargetMinus:   copyPlane(c.targetMinus),
		FaultsPlus:    exportFaults(c.faultPlus),
		FaultsMinus:   exportFaults(c.faultMinus),
		DeadRows:      exportDead(c.deadRow),
		DeadCols:      exportDead(c.deadCol),
		SpareRowsFree: append([]int(nil), c.spareRowsFree...),
		SpareColsFree: append([]int(nil), c.spareColsFree...),
		Age:           c.age,
		WMax:          c.wmax,
		Stats:         c.stats,
	}
	return st
}

// copyPlane deep-copies a level plane, collapsing the all-zero case —
// a never-programmed array — to nil.
func copyPlane(p []int16) []int16 {
	for _, v := range p {
		if v != 0 {
			return append([]int16(nil), p...)
		}
	}
	return nil
}

// exportFaults flattens a dense fault-record plane into its sparse form,
// ascending by device index.
func exportFaults(recs []faultRec) []Fault {
	var out []Fault
	for i, rec := range recs {
		if rec.kind != kindNone {
			out = append(out, Fault{Idx: int32(i), Kind: uint8(rec.kind), Level: rec.level})
		}
	}
	return out
}

// exportDead flattens a dense dead-line map into an ascending index list.
func exportDead(dead []bool) []int {
	var out []int
	for i, d := range dead {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// ImportState replaces the array's read-visible state with the snapshot.
// The receiver must have been constructed with the same logical and
// physical geometry (same rows/cols and spare provisioning); everything
// else — levels, maps, faults, spares, retention clock, weight range,
// activity counters — is overwritten from the snapshot.
//
// The snapshot's line maps and level planes are ADOPTED, not copied: the
// receiver keeps the slices, so the caller must not reuse the snapshot
// (or any slice it holds) afterwards. Adoption is what makes rehydrating
// a chip image proportional to the bytes decoded rather than to the
// provisioned geometry. The generation stamp is bumped and any baked
// kernel is dropped, so the importer must rebake before frozen reads.
func (c *Crossbar) ImportState(st State) error {
	if st.Rows != c.Rows || st.Cols != c.Cols {
		return fmt.Errorf("crossbar: state is %d×%d, array is %d×%d", st.Rows, st.Cols, c.Rows, c.Cols)
	}
	if st.PhysRows != c.physRows || st.PhysCols != c.physCols {
		return fmt.Errorf("crossbar: state physical geometry %d×%d, array %d×%d (spare provisioning must match)",
			st.PhysRows, st.PhysCols, c.physRows, c.physCols)
	}
	n := c.physRows * c.physCols
	if len(st.RowMap) != c.Rows || len(st.ColMap) != c.Cols {
		return fmt.Errorf("crossbar: state line maps sized %d/%d, want %d/%d",
			len(st.RowMap), len(st.ColMap), c.Rows, c.Cols)
	}
	for _, p := range [][]int16{st.LevelPlus, st.LevelMinus, st.TargetPlus, st.TargetMinus} {
		if p != nil && len(p) != n {
			return fmt.Errorf("crossbar: state level plane sized %d, want %d (or nil for all-zero)", len(p), n)
		}
	}
	for _, fs := range [][]Fault{st.FaultsPlus, st.FaultsMinus} {
		for _, f := range fs {
			if f.Idx < 0 || int(f.Idx) >= n {
				return fmt.Errorf("crossbar: state fault at device %d beyond the %d-device plane", f.Idx, n)
			}
			if f.Kind == uint8(kindNone) || f.Kind > uint8(kindStuckP) {
				return fmt.Errorf("crossbar: state fault at device %d has unknown kind %d", f.Idx, f.Kind)
			}
		}
	}
	for _, r := range st.DeadRows {
		if r < 0 || r >= c.physRows {
			return fmt.Errorf("crossbar: state dead row %d out of physical range %d", r, c.physRows)
		}
	}
	for _, col := range st.DeadCols {
		if col < 0 || col >= c.physCols {
			return fmt.Errorf("crossbar: state dead col %d out of physical range %d", col, c.physCols)
		}
	}
	for _, p := range st.RowMap {
		if p < 0 || p >= c.physRows {
			return fmt.Errorf("crossbar: state row map entry %d out of physical range %d", p, c.physRows)
		}
	}
	for _, p := range st.ColMap {
		if p < 0 || p >= c.physCols {
			return fmt.Errorf("crossbar: state col map entry %d out of physical range %d", p, c.physCols)
		}
	}
	for _, s := range st.SpareRowsFree {
		if s < 0 || s >= c.physRows {
			return fmt.Errorf("crossbar: state spare row %d out of physical range %d", s, c.physRows)
		}
	}
	for _, s := range st.SpareColsFree {
		if s < 0 || s >= c.physCols {
			return fmt.Errorf("crossbar: state spare col %d out of physical range %d", s, c.physCols)
		}
	}
	states := c.P.States()
	for _, p := range [][]int16{st.LevelPlus, st.LevelMinus} {
		for i, v := range p {
			if v < 0 || int(v) > states-1 {
				return fmt.Errorf("crossbar: state level at %d outside [0,%d]", i, states-1)
			}
		}
	}

	c.invalidate()
	c.rowMap = st.RowMap
	c.colMap = st.ColMap
	c.levelPlus = adoptPlane(c.levelPlus, st.LevelPlus)
	c.levelMinus = adoptPlane(c.levelMinus, st.LevelMinus)
	c.targetPlus = adoptPlane(c.targetPlus, st.TargetPlus)
	c.targetMinus = adoptPlane(c.targetMinus, st.TargetMinus)
	hasFaults := len(st.FaultsPlus) > 0 || len(st.FaultsMinus) > 0 ||
		len(st.DeadRows) > 0 || len(st.DeadCols) > 0
	if hasFaults {
		c.ensureFaults()
		clearFaults(c.faultPlus)
		clearFaults(c.faultMinus)
		for _, f := range st.FaultsPlus {
			c.faultPlus[f.Idx] = faultRec{kind: FaultKind(f.Kind), level: f.Level}
		}
		for _, f := range st.FaultsMinus {
			c.faultMinus[f.Idx] = faultRec{kind: FaultKind(f.Kind), level: f.Level}
		}
		clearDead(c.deadRow)
		clearDead(c.deadCol)
		for _, r := range st.DeadRows {
			c.deadRow[r] = true
		}
		for _, col := range st.DeadCols {
			c.deadCol[col] = true
		}
	} else {
		c.faultPlus, c.faultMinus = nil, nil
		c.deadRow, c.deadCol = nil, nil
	}
	c.spareRowsFree = append(c.spareRowsFree[:0], st.SpareRowsFree...)
	c.spareColsFree = append(c.spareColsFree[:0], st.SpareColsFree...)
	c.age = st.Age
	c.wmax = st.WMax
	c.stats = st.Stats
	c.DropKernel()
	return nil
}

// adoptPlane installs a snapshot plane into the receiver, adopting its
// backing array; a nil snapshot plane means all-zero, which keeps the
// live plane and zeroes it. Both paths scan before writing so a plane
// that is already in the target state — the freshly-built skeleton of a
// loaded chip image — costs reads, not page dirtying.
func adoptPlane(dst, src []int16) []int16 {
	if src != nil {
		return src
	}
	for i, v := range dst {
		if v != 0 {
			clear(dst[i:])
			break
		}
	}
	return dst
}

// clearFaults zeroes a dense fault-record plane, scanning first so an
// already-clean plane is not dirtied.
func clearFaults(recs []faultRec) {
	for i := range recs {
		if recs[i].kind != kindNone || recs[i].level != 0 {
			clear(recs[i:])
			return
		}
	}
}

// clearDead zeroes a dense dead-line map, scanning first.
func clearDead(dead []bool) {
	for i, d := range dead {
		if d {
			clear(dead[i:])
			return
		}
	}
}

// Blank reports whether the snapshot equals the state of a freshly
// constructed, never-touched array of the same geometry: identity line
// maps, all-zero level planes, no fault or dead-line records, a full
// spare free list in allocation order, zero retention age, zero weight
// range and zero counters. Image writers skip blank arrays — a loader
// reconstructs them from geometry alone.
func (st State) Blank() bool {
	//nebula:lint-ignore float-eq exact zero means never programmed, not approximately zero
	if st.Age != 0 || st.WMax != 0 || st.Stats != (Stats{}) {
		return false
	}
	if len(st.FaultsPlus) != 0 || len(st.FaultsMinus) != 0 ||
		len(st.DeadRows) != 0 || len(st.DeadCols) != 0 {
		return false
	}
	for i, p := range st.RowMap {
		if p != i {
			return false
		}
	}
	for i, p := range st.ColMap {
		if p != i {
			return false
		}
	}
	for _, p := range [][]int16{st.LevelPlus, st.LevelMinus, st.TargetPlus, st.TargetMinus} {
		for _, v := range p {
			if v != 0 {
				return false
			}
		}
	}
	if len(st.SpareRowsFree) != st.PhysRows-st.Rows || len(st.SpareColsFree) != st.PhysCols-st.Cols {
		return false
	}
	for i, s := range st.SpareRowsFree {
		if s != st.Rows+i {
			return false
		}
	}
	for i, s := range st.SpareColsFree {
		if s != st.Cols+i {
			return false
		}
	}
	return true
}
