package crossbar

import (
	"math"

	"repro/internal/tensor"
)

// This file carries the device-level reliability model: persistent fault
// records, dead lines, spare-line remapping, the BIST read-verify scan
// and the repair primitives driven by package reliability. The division
// of labor: this package owns the physical mechanisms (what a write or a
// remap does to devices), package reliability owns the policy (when to
// retry, when to remap, when to give up).

// FaultKind classifies a recorded device fault.
type FaultKind uint8

const (
	// kindNone marks a healthy device.
	kindNone FaultKind = iota
	// kindWeak marks a device whose writes fail: the wall lands at an
	// arbitrary wrong level and stays there until a verify retry finally
	// pins it (the dominant DW-MTJ failure mode, repairable by
	// write-verify).
	kindWeak
	// kindStuckAP / kindStuckP mark permanently stuck devices; no write
	// can move them.
	kindStuckAP
	kindStuckP
)

// faultRec is one device's fault record. level is the conductance level
// the device actually presents regardless of writes.
type faultRec struct {
	kind  FaultKind
	level int16
}

func (f faultRec) stuck() bool { return f.kind == kindStuckAP || f.kind == kindStuckP }

// ensureFaults lazily allocates the fault-record and dead-line state so
// fault-free arrays pay nothing. Materializing the all-healthy state
// changes nothing a read can observe, so the method sits outside the
// generation contract; every caller that then records a fault
// invalidates on its own behalf.
//
//nebula:genstamp-exempt allocates all-healthy records; read results unchanged
func (c *Crossbar) ensureFaults() {
	if c.faultPlus == nil {
		c.faultPlus = make([]faultRec, c.physRows*c.physCols)
		c.faultMinus = make([]faultRec, c.physRows*c.physCols)
		c.deadRow = make([]bool, c.physRows)
		c.deadCol = make([]bool, c.physCols)
	}
}

// appliedLevel resolves what level a write of `want` actually leaves on
// the device at physical index pi: healthy devices take the write, faulted
// devices keep their fault level.
func (c *Crossbar) appliedLevel(pi int, plus bool, want int) int {
	if c.faultPlus == nil {
		return want
	}
	rec := c.faultMinus[pi]
	if plus {
		rec = c.faultPlus[pi]
	}
	if rec.kind == kindNone {
		return want
	}
	return int(rec.level)
}

// PhysRows returns the physical row count including spares.
func (c *Crossbar) PhysRows() int { return c.physRows }

// PhysCols returns the physical column count including spares.
func (c *Crossbar) PhysCols() int { return c.physCols }

// Age returns the elapsed timesteps since the last full programming.
func (c *Crossbar) Age() int64 { return c.age }

// Tick advances the retention clock by the given number of timesteps.
// Although drift is derived from the age at read time (a fresh kernel
// reads it per call), Tick still invalidates the kernel: the frozen fast
// path belongs to sessions whose arrays do not age mid-run, and a
// conservative stamp keeps the invalidation contract uniform.
func (c *Crossbar) Tick(steps int64) {
	if steps > 0 {
		c.invalidate()
		c.age += steps
	}
}

// SetStuck records a permanent stuck fault on one device of the physical
// pair (row, col) — plus selects the G⁺ device — and applies its level.
func (c *Crossbar) SetStuck(row, col int, plus bool, mode FaultMode) {
	c.invalidate()
	c.ensureFaults()
	states := c.P.States()
	rec := faultRec{kind: kindStuckAP}
	if mode == StuckP {
		rec = faultRec{kind: kindStuckP, level: int16(states - 1)}
	}
	pi := row*c.physCols + col
	if plus {
		c.faultPlus[pi] = rec
		c.levelPlus[pi] = rec.level
	} else {
		c.faultMinus[pi] = rec
		c.levelMinus[pi] = rec.level
	}
}

// SetWeak records a weak (write-failing) device at the physical pair
// (row, col): the device presents `level` regardless of writes until
// ClearWeak frees it.
func (c *Crossbar) SetWeak(row, col int, plus bool, level int) {
	c.invalidate()
	c.ensureFaults()
	pi := row*c.physCols + col
	rec := faultRec{kind: kindWeak, level: int16(clampLevel(level, c.P.States()))}
	if plus {
		c.faultPlus[pi] = rec
		c.levelPlus[pi] = rec.level
	} else {
		c.faultMinus[pi] = rec
		c.levelMinus[pi] = rec.level
	}
}

// ClearWeak releases a weak device at the *logical* pair (row, col) —
// modelling a verify retry that finally pinned the wall. Stuck devices
// are not clearable. It reports whether a weak record was cleared.
func (c *Crossbar) ClearWeak(row, col int, plus bool) bool {
	if c.faultPlus == nil {
		return false
	}
	pi := c.rowMap[row]*c.physCols + c.colMap[col]
	recs := c.faultMinus
	if plus {
		recs = c.faultPlus
	}
	if recs[pi].kind != kindWeak {
		return false
	}
	c.invalidate()
	recs[pi] = faultRec{}
	return true
}

// WeakAt reports whether the logical pair's devices are currently weak.
func (c *Crossbar) WeakAt(row, col int) (plus, minus bool) {
	if c.faultPlus == nil {
		return false, false
	}
	pi := c.rowMap[row]*c.physCols + c.colMap[col]
	return c.faultPlus[pi].kind == kindWeak, c.faultMinus[pi].kind == kindWeak
}

// StuckAt reports whether the logical pair's devices are permanently
// stuck.
func (c *Crossbar) StuckAt(row, col int) (plus, minus bool) {
	if c.faultPlus == nil {
		return false, false
	}
	pi := c.rowMap[row]*c.physCols + c.colMap[col]
	return c.faultPlus[pi].stuck(), c.faultMinus[pi].stuck()
}

// KillRow marks a physical row line dead (driver failure: no device on
// the row receives read current). It reports whether the line was alive.
func (c *Crossbar) KillRow(row int) bool {
	c.ensureFaults()
	if c.deadRow[row] {
		return false
	}
	c.invalidate()
	c.deadRow[row] = true
	return true
}

// KillCol marks a physical column line dead (sense-amp failure: the
// column reads 0). It reports whether the line was alive.
func (c *Crossbar) KillCol(col int) bool {
	c.ensureFaults()
	if c.deadCol[col] {
		return false
	}
	c.invalidate()
	c.deadCol[col] = true
	return true
}

// PairFault is one mismatched differential pair found by Verify.
type PairFault struct {
	// Row, Col locate the pair in logical coordinates.
	Row, Col int
	// Got and Want are the read-back and intended differential levels
	// (level⁺ − level⁻).
	Got, Want int
}

// FaultMap is the result of one BIST read-verify scan of a crossbar.
type FaultMap struct {
	Rows, Cols int
	// Pairs lists the differential pairs whose read-back level differs
	// from the programmed target, in row-major order.
	Pairs []PairFault
	// DeadRows / DeadCols list logical lines currently routed to a dead
	// physical line.
	DeadRows, DeadCols []int
	// ScanReads counts the read pulses the scan spent (the BIST cost).
	ScanReads int64
}

// Count returns the total faulty pairs implied by the map: mismatched
// pairs plus every pair on a dead line.
func (m *FaultMap) Count() int {
	return len(m.Pairs) + len(m.DeadRows)*m.Cols + len(m.DeadCols)*m.Rows
}

// Verify performs the post-programming built-in self-test: it reads every
// logical pair back and diffs the stored differential level against the
// programmed target, and probes every line for dead drivers/sense-amps.
// The scan observes pair differentials (what the column current shows),
// not individual devices — a fault on the unused device of a pair that
// happens to cancel is invisible, exactly as it is to the NU.
func (c *Crossbar) Verify() *FaultMap {
	m := &FaultMap{Rows: c.Rows, Cols: c.Cols}
	m.ScanReads = int64(c.Rows*c.Cols + c.Rows + c.Cols)
	for r := 0; r < c.Rows; r++ {
		if c.deadRow != nil && c.deadRow[c.rowMap[r]] {
			m.DeadRows = append(m.DeadRows, r)
		}
	}
	for col := 0; col < c.Cols; col++ {
		if c.deadCol != nil && c.deadCol[c.colMap[col]] {
			m.DeadCols = append(m.DeadCols, col)
		}
	}
	deadColSet := map[int]bool{}
	for _, col := range m.DeadCols {
		deadColSet[col] = true
	}
	for r := 0; r < c.Rows; r++ {
		if c.deadRow != nil && c.deadRow[c.rowMap[r]] {
			continue
		}
		pr := c.rowMap[r]
		for col := 0; col < c.Cols; col++ {
			if deadColSet[col] {
				continue
			}
			pi := pr*c.physCols + c.colMap[col]
			got := int(c.levelPlus[pi]) - int(c.levelMinus[pi])
			want := int(c.targetPlus[pi]) - int(c.targetMinus[pi])
			if got != want {
				m.Pairs = append(m.Pairs, PairFault{Row: r, Col: col, Got: got, Want: want})
			}
		}
	}
	return m
}

// PairError returns the differential level error (got − want) of the
// logical pair (row, col).
func (c *Crossbar) PairError(row, col int) int {
	pi := c.rowMap[row]*c.physCols + c.colMap[col]
	return (int(c.levelPlus[pi]) - int(c.levelMinus[pi])) - (int(c.targetPlus[pi]) - int(c.targetMinus[pi]))
}

// WritePair re-drives both devices of the logical pair (row, col) toward
// their programmed targets, honoring fault records (stuck and weak
// devices ignore the write). Programming energy is accounted per level
// moved.
func (c *Crossbar) WritePair(row, col int) {
	pi := c.rowMap[row]*c.physCols + c.colMap[col]
	c.writeDevice(pi, true, int(c.targetPlus[pi]))
	c.writeDevice(pi, false, int(c.targetMinus[pi]))
}

// writeDevice drives one device of the physical pair pi toward `want`,
// honoring its fault record and accounting energy for the level moved.
func (c *Crossbar) writeDevice(pi int, plus bool, want int) {
	c.invalidate()
	applied := c.appliedLevel(pi, plus, want)
	states := c.P.States()
	stepEnergy := c.P.WriteEnergyFJ / float64(states-1)
	if plus {
		c.stats.ProgramEnergyFJ += math.Abs(float64(int16(applied)-c.levelPlus[pi])) * stepEnergy
		c.levelPlus[pi] = int16(applied)
	} else {
		c.stats.ProgramEnergyFJ += math.Abs(float64(int16(applied)-c.levelMinus[pi])) * stepEnergy
		c.levelMinus[pi] = int16(applied)
	}
}

// CompensatePair attempts to absorb a fault on the logical pair (row,
// col) by reprogramming the healthy sibling device so the differential
// reads the target again — the standard differential-pair trick: if G⁺ is
// stuck at s and the target differential is d, drive G⁻ to s−d. It
// returns the remaining absolute differential error in levels: 0 means
// fully compensated (or neutralized, see below). If exact compensation is
// out of range, or both devices are faulted, the sibling is driven to
// cancel the pair entirely (the fault-aware zeroing fallback — a zero
// weight beats an arbitrary wrong one), and the residual versus the
// target is returned.
func (c *Crossbar) CompensatePair(row, col int) int {
	c.ensureFaults()
	pi := c.rowMap[row]*c.physCols + c.colMap[col]
	d := int(c.targetPlus[pi]) - int(c.targetMinus[pi])
	fp, fm := c.faultPlus[pi], c.faultMinus[pi]
	states := c.P.States()
	switch {
	case fp.kind != kindNone && fm.kind == kindNone:
		s := int(c.levelPlus[pi])
		m := clampLevel(s-d, states)
		c.writeDevice(pi, false, m)
		c.targetPlus[pi], c.targetMinus[pi] = int16(s), int16(m)
		return abs((s - m) - d)
	case fm.kind != kindNone && fp.kind == kindNone:
		s := int(c.levelMinus[pi])
		p := clampLevel(s+d, states)
		c.writeDevice(pi, true, p)
		c.targetPlus[pi], c.targetMinus[pi] = int16(p), int16(s)
		return abs((p - s) - d)
	default:
		// Both devices faulted (or neither — nothing to do): the pair
		// reads whatever it reads.
		return abs((int(c.levelPlus[pi]) - int(c.levelMinus[pi])) - d)
	}
}

// RemapRow routes the logical row to a healthy spare physical line,
// copying the row's programmed targets onto the spare and writing them
// (the spare's own device faults apply — spares are not magically
// healthy). Dead spares are discarded. It reports whether a spare was
// available.
func (c *Crossbar) RemapRow(row int) bool {
	phys := c.takeSpare(&c.spareRowsFree, c.deadRow)
	if phys < 0 {
		return false
	}
	c.invalidate()
	old := c.rowMap[row]
	c.rowMap[row] = phys
	for col := 0; col < c.Cols; col++ {
		po := old*c.physCols + c.colMap[col]
		pn := phys*c.physCols + c.colMap[col]
		c.targetPlus[pn], c.targetMinus[pn] = c.targetPlus[po], c.targetMinus[po]
		c.writeDevice(pn, true, int(c.targetPlus[pn]))
		c.writeDevice(pn, false, int(c.targetMinus[pn]))
	}
	return true
}

// RemapCol routes the logical column to a healthy spare physical line,
// copying the column's programmed targets onto the spare. It reports
// whether a spare was available.
func (c *Crossbar) RemapCol(col int) bool {
	phys := c.takeSpare(&c.spareColsFree, c.deadCol)
	if phys < 0 {
		return false
	}
	c.invalidate()
	old := c.colMap[col]
	c.colMap[col] = phys
	for r := 0; r < c.Rows; r++ {
		po := c.rowMap[r]*c.physCols + old
		pn := c.rowMap[r]*c.physCols + phys
		c.targetPlus[pn], c.targetMinus[pn] = c.targetPlus[po], c.targetMinus[po]
		c.writeDevice(pn, true, int(c.targetPlus[pn]))
		c.writeDevice(pn, false, int(c.targetMinus[pn]))
	}
	return true
}

// takeSpare pops the next live spare line, permanently discarding dead
// ones, and returns -1 when none remain.
func (c *Crossbar) takeSpare(free *[]int, dead []bool) int {
	for len(*free) > 0 {
		phys := (*free)[0]
		*free = (*free)[1:]
		if dead == nil || !dead[phys] {
			return phys
		}
	}
	return -1
}

// SparesLeft returns the unconsumed live spare line counts.
func (c *Crossbar) SparesLeft() (rows, cols int) {
	for _, s := range c.spareRowsFree {
		if c.deadRow == nil || !c.deadRow[s] {
			rows++
		}
	}
	for _, s := range c.spareColsFree {
		if c.deadCol == nil || !c.deadCol[s] {
			cols++
		}
	}
	return rows, cols
}

// Refresh rewrites every logical pair to its programmed target (honoring
// fault records) and resets the retention clock — the scrub operation
// that undoes drift and accumulated read disturb.
func (c *Crossbar) Refresh() {
	c.invalidate()
	for r := 0; r < c.Rows; r++ {
		for col := 0; col < c.Cols; col++ {
			c.WritePair(r, col)
		}
	}
	c.age = 0
}

// TargetWeights reconstructs the weight matrix the array was programmed
// with, from the stored pair targets — what tile retirement reprograms
// onto a spare array. The second result is the weight range wmax.
func (c *Crossbar) TargetWeights() (*tensor.Tensor, float64) {
	states := c.P.States()
	w := tensor.New(c.Rows, c.Cols)
	for r := 0; r < c.Rows; r++ {
		for col := 0; col < c.Cols; col++ {
			pi := c.rowMap[r]*c.physCols + c.colMap[col]
			w.Set(float64(c.targetPlus[pi]-c.targetMinus[pi])/float64(states-1)*c.wmax, r, col)
		}
	}
	return w, c.wmax
}

// applyReadDisturb models transient read upsets: each evaluation gives
// every device on a driven row a small chance of its wall slipping one
// pinning site toward AP. The expected number of events is
// ReadDisturbProb·active·2·Cols; the simulator draws the event count from
// a Poisson of that mean and picks victims uniformly, which preserves the
// statistics without a per-device Bernoulli in the hot loop.
func (c *Crossbar) applyReadDisturb(active int) {
	p := c.Cfg.ReadDisturbProb
	if p <= 0 || c.noise == nil || active == 0 || c.Rows == 0 || c.Cols == 0 {
		return
	}
	lam := p * float64(active) * float64(2*c.Cols)
	n := c.noise.Poisson(lam)
	if n == 0 {
		return
	}
	c.invalidate()
	for i := 0; i < n; i++ {
		pr := c.rowMap[c.noise.Intn(c.Rows)]
		pc := c.colMap[c.noise.Intn(c.Cols)]
		pi := pr*c.physCols + pc
		if c.noise.Bernoulli(0.5) {
			if c.levelPlus[pi] > 0 {
				c.levelPlus[pi]--
			}
		} else {
			if c.levelMinus[pi] > 0 {
				c.levelMinus[pi]--
			}
		}
	}
}

func clampLevel(level, states int) int {
	if level < 0 {
		return 0
	}
	if level > states-1 {
		return states - 1
	}
	return level
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
