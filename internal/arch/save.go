package arch

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/crossbar"
	"repro/internal/image"
)

// This file is the save half of chip imaging: a compiled session is
// flattened into an image.Payload — model spec, chip environment,
// compile configuration and every non-blank crossbar's device state, in
// the canonical forEachSuperTile order — and written in the versioned
// wire format. The load half lives in load.go; the two walk the
// pipeline in the same order, which is what lets the loader consume the
// tile list without any addressing scheme.

// SaveImage writes the session's chip image to w: everything needed to
// rehydrate an equivalent session with LoadSession, skipping
// programming, fault injection and the BIST/protect pipeline. Wear-mode
// sessions and sessions with caller-supplied encoders are not imageable
// and return an error.
func (s *Session) SaveImage(w io.Writer) error {
	p, err := s.imagePayload()
	if err != nil {
		return err
	}
	return image.Encode(w, p)
}

// imagePayload assembles the session's image payload.
func (s *Session) imagePayload() (*image.Payload, error) {
	if s.cfg.Wear {
		return nil, fmt.Errorf("arch: wear session is not imageable: its runs mutate the programmed arrays")
	}
	if s.cfg.sharedEnc != nil || s.cfg.encCustom {
		return nil, fmt.Errorf("arch: session with a caller-supplied encoder is not imageable: the encoder has no serializable form")
	}
	spec, err := image.EncodeModel(s.model)
	if err != nil {
		return nil, err
	}
	tiles, err := s.exportTiles()
	if err != nil {
		return nil, err
	}
	return &image.Payload{
		Model:  *spec,
		Chip:   s.chip.imageSpec(),
		Config: imageConfig(s.cfg.CompileConfig),
		Tiles:  tiles,
	}, nil
}

// imageSpec snapshots the chip's hardware environment for an image (and
// for the compile-cache key).
func (ch *Chip) imageSpec() image.ChipSpec {
	spec := image.ChipSpec{
		Device:    ch.P,
		Crossbar:  ch.Cfg,
		WMax:      ch.WMax,
		FaultRate: ch.FaultRate,
		FaultMode: int(ch.FaultMode),
		HadNoise:  ch.noise != nil,
		Health:    ch.health,
	}
	if ch.Rel != nil {
		rel := *ch.Rel
		spec.Rel = &rel
	}
	switch {
	case ch.noiseFPSet:
		spec.NoiseFingerprint = ch.noiseFP
	case ch.noise != nil:
		spec.NoiseFingerprint = ch.noise.Fingerprint()
	}
	return spec
}

// imageConfig maps the serializable compile configuration onto its
// image mirror.
func imageConfig(c CompileConfig) image.SessionConfig {
	return image.SessionConfig{
		Mode:           int(c.Mode),
		Timesteps:      c.Timesteps,
		HybridSplit:    c.HybridSplit,
		Parallelism:    c.Parallelism,
		Seed:           c.Seed,
		SeedSet:        c.SeedSet,
		InputShape:     append([]int(nil), c.InputShape...),
		Wear:           c.Wear,
		NoFrozenKernel: c.NoFrozenKernel,
	}
}

// configFromImage is the inverse of imageConfig.
func configFromImage(c image.SessionConfig) CompileConfig {
	return CompileConfig{
		Mode:           Mode(c.Mode),
		Timesteps:      c.Timesteps,
		HybridSplit:    c.HybridSplit,
		Parallelism:    c.Parallelism,
		Seed:           c.Seed,
		SeedSet:        c.SeedSet,
		InputShape:     append([]int(nil), c.InputShape...),
		Wear:           c.Wear,
		NoFrozenKernel: c.NoFrozenKernel,
	}
}

// exportTiles snapshots every routed super-tile in the canonical
// pipeline order. Blank arrays — fresh spares that were never touched —
// are skipped; the loader reconstructs them from geometry alone, which
// keeps images proportional to the programmed state, not the 16-AC
// provisioning.
//
// Member arrays are exported and encoded concurrently: the arrays are
// disjoint and ExportState only reads, so the fan-out is safe, and the
// results are assembled in the canonical order, so the image bytes are
// identical to a sequential walk.
func (s *Session) exportTiles() ([]image.TileState, error) {
	var tiles []image.TileState
	type job struct {
		tile, index int
		ac          *crossbar.Crossbar
	}
	var jobs []job
	s.forEachSuperTile(func(st *SuperTile) {
		t := image.TileState{
			Rows:    st.rows,
			Cols:    st.cols,
			WMax:    st.wmax,
			SlotAC:  append([]int(nil), st.slotAC...),
			Retired: append([]bool(nil), st.retired...),
		}
		for i, ac := range st.acs {
			jobs = append(jobs, job{tile: len(tiles), index: i, ac: ac})
		}
		tiles = append(tiles, t)
	})

	blobs := make([][]byte, len(jobs))
	errs := make([]error, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < importWorkers(len(jobs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(jobs) {
					return
				}
				state := jobs[j].ac.ExportState()
				if state.Blank() {
					continue
				}
				blobs[j], errs[j] = state.GobEncode()
			}
		}()
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("arch: encode array state: %w", err)
		}
		if blobs[j] != nil {
			t := &tiles[jobs[j].tile]
			t.ACs = append(t.ACs, image.ACState{Index: jobs[j].index, State: blobs[j]})
		}
	}
	return tiles, nil
}

// importWorkers sizes the worker pool for the parallel tile
// export/import fan-outs.
func importWorkers(jobs int) int {
	w := runtime.GOMAXPROCS(0)
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}
