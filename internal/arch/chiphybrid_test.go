package arch

import (
	"math"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

func TestAccumulatorUnitRecoverRate(t *testing.T) {
	au := NewAccumulatorUnit(2.5)
	spike := tensor.FromSlice([]float64{1}, 1)
	quiet := tensor.FromSlice([]float64{0}, 1)
	// 3 spikes over 10 steps → rate 0.3 → activation 0.75.
	for i := 0; i < 10; i++ {
		if i < 3 {
			au.Accumulate(spike)
		} else {
			au.Accumulate(quiet)
		}
	}
	got := au.Read().Data()[0]
	if math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("AU read %v, want 0.75", got)
	}
	if au.Adds != 3 {
		t.Fatalf("adder ops %d, want 3 (event-driven adds)", au.Adds)
	}
	au.Reset()
	if au.Read() != nil {
		t.Fatal("Read after Reset should be nil")
	}
}

func TestChipRunHybridClassifies(t *testing.T) {
	c, te := chipFixture(t)
	chip := NewChip(device.DefaultParams(), crossbar.Config{}, nil)
	correct := 0
	const n, T = 20, 60
	r := rng.New(31)
	for i := 0; i < n; i++ {
		img, label := te.Sample(i)
		res, err := chip.RunHybrid(c, 1, img, T, snn.NewPoissonEncoder(1.0, r.Split()))
		if err != nil {
			t.Fatal(err)
		}
		if res.Prediction == label {
			correct++
		}
		if res.Spikes <= 0 {
			t.Fatal("no spiking activity in hybrid front")
		}
	}
	if acc := float64(correct) / n; acc < 0.5 {
		t.Fatalf("hybrid hardware accuracy %.2f", acc)
	}
}

func TestChipRunHybridDeepSplit(t *testing.T) {
	// With all but one weighted layer in the ANN domain, accuracy should
	// approach the pure-ANN chip run.
	c, te := chipFixture(t)
	chip := NewChip(device.DefaultParams(), crossbar.Config{}, nil)
	r := rng.New(33)
	matches := 0
	const n, T = 15, 80
	for i := 0; i < n; i++ {
		img, _ := te.Sample(i)
		hyb, err := chip.RunHybrid(c, 2, img, T, snn.NewPoissonEncoder(1.0, r.Split()))
		if err != nil {
			t.Fatal(err)
		}
		ann, err := chip.RunANN(c, img)
		if err != nil {
			t.Fatal(err)
		}
		if hyb.Prediction == ann.Prediction {
			matches++
		}
	}
	if matches < n*2/3 {
		t.Fatalf("deep hybrid agrees with ANN on only %d/%d", matches, n)
	}
}

func TestChipRunHybridSplitBounds(t *testing.T) {
	c, te := chipFixture(t)
	chip := NewChip(device.DefaultParams(), crossbar.Config{}, nil)
	img, _ := te.Sample(0)
	enc := snn.NewPoissonEncoder(1.0, rng.New(1))
	if _, err := chip.RunHybrid(c, 0, img, 5, enc); err == nil {
		t.Fatal("split 0 accepted")
	}
	if _, err := chip.RunHybrid(c, 3, img, 5, enc); err == nil {
		t.Fatal("all-ANN split accepted (no spiking layer left)")
	}
}

func TestChipFaultResilience(t *testing.T) {
	// Neuromorphic inference degrades gracefully under stuck-at faults
	// (§IV-D: "neuromorphic applications are known to be resilient").
	c, te := chipFixture(t)
	accAt := func(rate float64) float64 {
		chip := NewChip(device.DefaultParams(), crossbar.Config{}, rng.New(21))
		chip.FaultRate = rate
		correct := 0
		const n, T = 20, 60
		r := rng.New(23)
		for i := 0; i < n; i++ {
			img, label := te.Sample(i)
			res, err := chip.RunSNN(c, img, T, snn.NewPoissonEncoder(1.0, r.Split()))
			if err != nil {
				t.Fatal(err)
			}
			if res.Prediction == label {
				correct++
			}
		}
		return float64(correct) / n
	}
	clean := accAt(0)
	mild := accAt(0.01)
	severe := accAt(0.30)
	if clean < 0.5 {
		t.Fatalf("clean hardware accuracy %v", clean)
	}
	if mild < clean-0.30 {
		t.Fatalf("1%% faults collapsed accuracy: %v → %v", clean, mild)
	}
	if severe > clean {
		t.Fatalf("30%% faults should not help: %v vs clean %v", severe, clean)
	}
}
