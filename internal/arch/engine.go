package arch

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/crossbar"
	"repro/internal/device"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/spikeplane"
	"repro/internal/tensor"
)

// This file is the session execution engine: the unified stage stepper
// shared by every mode, the per-run scratch arena, and the RunBatch
// worker pool. One implementation serves both execution regimes — the
// wear path (sequential, mutating crossbar reads, retention ticking,
// mesh traffic: the semantics of the deprecated entry points) and the
// frozen-conductance path (wear-free crossbar reads against programmed
// state, safe for any number of concurrent workers).

// runStreams are the two private RNG streams reserved for one input:
// the encoder stream and the crossbar read-noise stream. Reservation
// happens in input order under the session mutex, which is what makes
// batched results bitwise identical to sequential runs at any
// parallelism.
type runStreams struct {
	enc, noise *rng.Rand
}

// reserveStreams draws n stream pairs from the session parent in input
// order.
func (s *Session) reserveStreams(n int) []runStreams {
	out := make([]runStreams, n)
	s.mu.Lock()
	for i := range out {
		out[i].enc = s.streams.Split()
		out[i].noise = s.streams.Split()
	}
	s.mu.Unlock()
	return out
}

// runState is the per-run mutable half of a compiled session: one entry
// per spiking stage plus the hybrid accumulator. Instances are recycled
// through the session arena; reset returns every component to the
// post-programming rest state so each run is an independent inference.
type runState struct {
	stages []*stageRun
	au     *AccumulatorUnit
	// encPlane is the packed spike plane of the encoder's output, the
	// head of the event-driven plane chain threaded through the stages.
	encPlane spikeplane.Plane
	// encT is the recycled encoder output buffer (IntoEncoder path).
	encT *tensor.Tensor
}

// stageRun holds one stage's per-run state. Exactly one group of the
// semantic fields is populated, matching the stage kind; the scratch
// fields below them are reused across the stage's timesteps so the
// steady-state hot loop allocates nothing per step.
type stageRun struct {
	// neurons is the position-replica MTJ bank of an in-core stage.
	neurons []*device.SpikingNeuron
	// membranes are the RU registers of a spill stage.
	membranes []float64
	// poolIF is the IF bank following NU average pooling.
	poolIF *snn.IFState
	// outAcc accumulates read-out increments across timesteps.
	outAcc *tensor.Tensor

	// sums receives the stage's crossbar column sums (frozen path only;
	// the wear path keeps its allocating reads). fire receives the spike
	// vector; its tensor wrapper is rebuilt per step (cheap header).
	sums, fire []float64
	// act gathers the indices of the non-zero input entries — the spike
	// list handed down to the crossbar kernels.
	act []int
	// sc holds the super-tile evaluation scratch (window, partials,
	// per-height active lists).
	sc EvalScratch
	// total accumulates a spill stage's digitized block partials.
	total []float64
	// colBuf / cols are a conv stage's receptive-field window and its
	// reused im2col unfold; convOut is its reused output plane.
	colBuf  []float64
	cols    *tensor.Tensor
	convOut *tensor.Tensor
	// outInc is the read-out stage's per-step increment row; outIncFlat
	// is the same buffer viewed as a vector.
	outInc, outIncFlat *tensor.Tensor
	// fireT is the cached tensor view over fire a dense stage emits.
	fireT *tensor.Tensor

	// outPlane is the stage's packed output spike plane (event path).
	outPlane spikeplane.Plane
	// winPlane is the packed scratch for conv receptive-field windows
	// and spill-block views.
	winPlane spikeplane.Plane
	// poolZero is the cached zero output of a silent pool stage.
	poolZero *tensor.Tensor

	// Timestep-repeat cache of a dense in-core stage (event path).
	// The cached column sums are a pure function of (input values,
	// conductance generation), so the cache stays valid across runs
	// recycled through the arena; lastIn is only kept for graded
	// (non-binary) planes, whose bit pattern underdetermines the
	// values. lastCross is the cached read's crossbar-stats delta,
	// replayed on a hit so accounting is identical either way.
	lastPlane spikeplane.Plane
	lastIn    []float64
	lastSums  []float64
	lastCross crossbar.Stats
	lastGen   uint64
	haveLast  bool
}

// newRunState allocates scratch state shaped for the compiled pipeline.
func (s *Session) newRunState() *runState {
	st := &runState{stages: make([]*stageRun, len(s.snnStages))}
	for i, hw := range s.snnStages {
		sr := &stageRun{}
		switch {
		case hw.snnCore != nil:
			sr.neurons = make([]*device.SpikingNeuron, len(hw.snnCore.neurons))
			for j := range sr.neurons {
				sr.neurons[j] = device.NewSpikingNeuron(hw.snnCore.ST.P)
			}
			sr.sums = make([]float64, hw.snnCore.ST.cols)
			sr.fire = make([]float64, hw.snnCore.ST.cols)
		case hw.spill != nil:
			sr.membranes = make([]float64, len(hw.spill.membranes))
			sr.sums = make([]float64, hw.spill.kernels)
			sr.total = make([]float64, hw.spill.kernels)
			sr.fire = make([]float64, hw.spill.kernels)
		case hw.kind == "pool":
			sr.poolIF = snn.NewIFState(1.0, snn.ResetToZero)
		}
		st.stages[i] = sr
	}
	if s.cfg.Mode == ModeHybrid {
		st.au = NewAccumulatorUnit(s.lambda)
	}
	return st
}

// reset returns the scratch state to rest.
func (st *runState) reset() {
	for _, sr := range st.stages {
		for _, n := range sr.neurons {
			n.Reset()
		}
		for i := range sr.membranes {
			sr.membranes[i] = 0
		}
		if sr.poolIF != nil {
			sr.poolIF.Reset()
		}
		sr.outAcc = nil
	}
	if st.au != nil {
		st.au.Reset()
	}
}

// execEnv parameterizes one run's execution regime.
type execEnv struct {
	ch   *Chip
	wear bool
	// noise is the run's private read-noise stream (nil when the chip has
	// no noise generator or in wear mode, where arrays draw from their
	// own streams).
	noise *rng.Rand
	// cross collects crossbar activity on the frozen-conductance path
	// (nil in wear mode, where the arrays' shared counters accumulate).
	cross *crossbar.Stats
	// shard is the run's private counter shard (nil: observation
	// disabled, the engine takes no accounting branches).
	shard *obs.RunRecord
	// hops is the mesh distance charged per inter-stage packet.
	hops int64
	// event selects the bit-packed event-driven stepping path: spike
	// planes thread between stages, silent stages and windows skip
	// their reads, and dense stages consult the timestep-repeat cache.
	// Only enabled off the wear path with a nil read-noise stream, so
	// skipping reads cannot shift an RNG stream (DESIGN.md §15).
	event bool
	// sc is the evaluation scratch of callers without a stage-owned one
	// (the continuous ANN stages).
	sc EvalScratch
}

// stageMark snapshots the run counters before one stage executes, so
// the stage's contribution can be attributed as a delta afterwards.
type stageMark struct {
	cycles, spikes, packets, hops, adc, edram int64
	skips, skipped, packed, repeats           int64
	cross                                     crossbar.Stats
}

// mark snapshots the current counters.
func (env *execEnv) mark(res *RunResult) stageMark {
	m := stageMark{cycles: res.Cycles, spikes: res.Spikes, packets: res.NoCPackets,
		hops: res.NoCHops, adc: res.ADCConversions, edram: res.EDRAMAccesses,
		skips: res.SilentStageSkips, skipped: res.SpikesSkipped,
		packed: res.PackedWords, repeats: res.RepeatReads}
	if env.cross != nil {
		m.cross = *env.cross
	}
	return m
}

// observe folds the delta since m into one shard bucket and returns the
// stage's spike count for tracing. Crossbar-level counters (MAC reads,
// driven rows, output current) are only attributable on the
// frozen-conductance path; wear-mode runs accumulate them into the
// arrays' own counters, as the deprecated entry points always did.
func (env *execEnv) observe(m stageMark, res *RunResult, c *obs.Counters) int64 {
	dSpikes := res.Spikes - m.spikes
	c.SpikesEmitted += dSpikes
	c.Cycles += res.Cycles - m.cycles
	c.NoCPackets += res.NoCPackets - m.packets
	c.NoCHops += res.NoCHops - m.hops
	c.ADCConversions += res.ADCConversions - m.adc
	c.EDRAMAccesses += res.EDRAMAccesses - m.edram
	c.SilentStageSkips += res.SilentStageSkips - m.skips
	c.SpikesSkipped += res.SpikesSkipped - m.skipped
	c.PackedWords += res.PackedWords - m.packed
	c.RepeatReads += res.RepeatReads - m.repeats
	if env.cross != nil {
		d := env.cross.Diff(m.cross)
		c.MACReads += d.MACs
		c.ActiveRowSum += d.ActiveRowSum
		c.OutputCurrentUA += d.OutputCurrentUA
	}
	return dSpikes
}

// evaluate drives a super-tile through the regime's read path. On the
// frozen-conductance path the result lands in dst (allocated when nil)
// through the baked kernels, skipping the rows outside act — the spike
// list of the previous layer (nil: scan the input). The wear path keeps
// its legacy allocating reads and ignores act/dst/sc.
//
//nebula:hotpath
func (env *execEnv) evaluate(st *SuperTile, in []float64, act []int, dst []float64, sc *EvalScratch) ([]float64, error) {
	if env.wear {
		return st.Evaluate(in)
	}
	if dst == nil || len(dst) != st.cols {
		dst = make([]float64, st.cols)
	}
	if sc == nil {
		sc = &env.sc
	}
	if err := st.EvaluateReadInto(dst, in, act, env.noise, env.cross, sc); err != nil {
		return nil, err
	}
	return dst, nil
}

// coreStep advances one in-core spiking position by one timestep against
// the run's private neuron bank, mirroring SNNCore.step cycle for cycle.
// act is the input spike list (nil: scan); the spike vector returned
// aliases sr.fire and is valid until the stage's next step.
//
//nebula:hotpath
func (env *execEnv) coreStep(core *SNNCore, sr *stageRun, pos int, in []float64, act []int, bias []float64, res *RunResult) ([]float64, error) {
	bank := sr.neurons
	if (pos+1)*core.kernels > len(bank) {
		return nil, fmt.Errorf("arch: position %d beyond allocated replicas", pos)
	}
	res.Cycles++ // cycle 1: eDRAM → IB
	res.EDRAMAccesses++
	sums, err := env.evaluate(core.ST, in, act, sr.sums, &sr.sc)
	if err != nil {
		return nil, err
	}
	res.Cycles++ // cycle 2: drive crossbars, integrate at NU
	if bias != nil {
		for i := range sums {
			if i < len(bias) {
				sums[i] += bias[i]
			}
		}
	}
	if len(sr.fire) != len(sums) {
		sr.fire = make([]float64, len(sums))
	}
	spikes := integrateBankInto(sr.fire, core.ST.P, core.VTh, bank[pos*core.kernels:(pos+1)*core.kernels], sums)
	res.Spikes += spikes
	res.Cycles++ // cycle 3: OB → eDRAM
	res.EDRAMAccesses++
	return sr.fire, nil
}

// float64sEqual reports bitwise equality of two value vectors.
//
//nebula:hotpath
func float64sEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if math.Float64bits(v) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// coreStepEvent is coreStep on the event-driven path: the input spike
// plane drives a packed super-tile read (silent stack-height windows
// skip their AC reads entirely), and dense stages additionally consult
// the timestep-repeat cache — when the input plane and the
// super-tile's conductance generation both match the previous step,
// the cached column sums and the read's crossbar-stats delta are
// replayed instead of recomputed. Membrane integration always runs
// against the replica bank, so neuron state stays cycle-exact and the
// emitted spikes are bitwise identical to the dense walk. When outPl
// is non-nil the emitted fire vector's plane is built during the
// integrate walk (no separate Pack scan).
//
//nebula:hotpath
func (env *execEnv) coreStepEvent(core *SNNCore, sr *stageRun, pos int, in []float64, pl *spikeplane.Plane, outPl *spikeplane.Plane, bias []float64, useCache bool, res *RunResult) ([]float64, error) {
	bank := sr.neurons
	if (pos+1)*core.kernels > len(bank) {
		return nil, fmt.Errorf("arch: position %d beyond allocated replicas", pos)
	}
	res.Cycles++ // cycle 1: eDRAM → IB
	res.EDRAMAccesses++
	res.PackedWords += int64(len(pl.WordSlice()))
	res.SpikesSkipped += int64(pl.Len() - pl.Count())
	if len(sr.sums) != core.ST.cols {
		sr.sums = make([]float64, core.ST.cols)
	}
	hit := false
	if useCache && sr.haveLast {
		if gen := core.ST.GenSum(); gen == sr.lastGen &&
			pl.Binary() == sr.lastPlane.Binary() &&
			pl.EqualWords(&sr.lastPlane) &&
			(pl.Binary() || float64sEqual(in, sr.lastIn)) {
			copy(sr.sums, sr.lastSums)
			res.RepeatReads++
			hit = true
		}
	}
	if !hit {
		// Evaluate into a private stats bucket and fold it below with
		// the exact adds the hit path replays — that shared fold is
		// what makes a cache hit's accounting bitwise identical to a
		// miss (a scalar after-minus-before delta would round
		// differently than the original per-array accumulation).
		sr.lastCross = crossbar.Stats{}
		if err := core.ST.EvaluateReadPacked(sr.sums, in, pl, env.noise, &sr.lastCross, &sr.sc); err != nil {
			return nil, err
		}
		if useCache {
			sr.lastPlane.CopyFrom(pl)
			if !pl.Binary() {
				sr.lastIn = append(sr.lastIn[:0], in...)
			}
			if len(sr.lastSums) != len(sr.sums) {
				sr.lastSums = make([]float64, len(sr.sums))
			}
			copy(sr.lastSums, sr.sums)
			sr.lastGen = core.ST.GenSum()
			sr.haveLast = true
		}
	}
	if env.cross != nil {
		env.cross.MACs += sr.lastCross.MACs
		env.cross.ActiveRowSum += sr.lastCross.ActiveRowSum
		env.cross.OutputCurrentUA += sr.lastCross.OutputCurrentUA
	}
	sums := sr.sums
	res.Cycles++ // cycle 2: drive crossbars, integrate at NU
	if bias != nil {
		for i := range sums {
			if i < len(bias) {
				sums[i] += bias[i]
			}
		}
	}
	if len(sr.fire) != len(sums) {
		sr.fire = make([]float64, len(sums))
	}
	var spikes int64
	if outPl != nil {
		spikes = integrateBankIntoPlane(sr.fire, outPl, core.ST.P, core.VTh, bank[pos*core.kernels:(pos+1)*core.kernels], sums)
	} else {
		spikes = integrateBankInto(sr.fire, core.ST.P, core.VTh, bank[pos*core.kernels:(pos+1)*core.kernels], sums)
	}
	res.Spikes += spikes
	res.Cycles++ // cycle 3: OB → eDRAM
	res.EDRAMAccesses++
	return sr.fire, nil
}

// spillStep advances one spill-stage position against the run's private
// RU membrane registers, mirroring RUSpillCore.StepAt. The spike vector
// returned aliases sr.fire. Spill blocks let the kernels rediscover
// their slice's activity (the per-block row windows would need the
// spike list re-based anyway).
//
//nebula:hotpath
func (env *execEnv) spillStep(sp *RUSpillCore, sr *stageRun, pos int, in, bias []float64, pl *spikeplane.Plane, res *RunResult) ([]float64, error) {
	membranes := sr.membranes
	if (pos+1)*sp.kernels > len(membranes) {
		return nil, fmt.Errorf("arch: position %d beyond allocated registers", pos)
	}
	if len(in) != sp.rowBounds[len(sp.rowBounds)-1] {
		return nil, fmt.Errorf("arch: input length %d, want %d", len(in), sp.rowBounds[len(sp.rowBounds)-1])
	}
	res.Cycles++ // fetch
	res.EDRAMAccesses++
	if len(sr.total) != sp.kernels {
		sr.total = make([]float64, sp.kernels)
	}
	total := sr.total
	for i := range total {
		total[i] = 0
	}
	if env.event && pl != nil {
		res.PackedWords += int64(len(pl.WordSlice()))
		res.SpikesSkipped += int64(pl.Len() - pl.Count())
	}
	for b, st := range sp.blocks {
		lo, hi := sp.rowBounds[b], sp.rowBounds[b+1]
		var part []float64
		if env.event && pl != nil {
			// Event path: window the stage's spike plane onto this
			// block's rows (block bounds are 64-aligned, so the view is
			// a subslice). A silent block contributes quantizePartial(0)
			// = +0 to every kernel, exactly what total already holds —
			// skip its reads and conversion charges. The membrane loop
			// below always runs, because residual potentials can cross
			// threshold on zero input.
			win := spikeplane.Window(pl.WordSlice(), lo, hi, nil)
			if spikeplane.IsZeroWords(win) {
				continue
			}
			sr.winPlane.AsView(win, hi-lo, pl.Binary())
			if len(sr.sums) != st.cols {
				sr.sums = make([]float64, st.cols)
			}
			if err := st.EvaluateReadPacked(sr.sums, in[lo:hi], &sr.winPlane, env.noise, env.cross, &sr.sc); err != nil {
				return nil, err
			}
			part = sr.sums
		} else {
			var err error
			part, err = env.evaluate(st, in[lo:hi], nil, sr.sums, &sr.sc)
			if err != nil {
				return nil, err
			}
		}
		// Digitize the block's partial sums (one conversion per kernel).
		for kIdx, v := range part {
			total[kIdx] += sp.quantizePartial(v)
		}
		res.ADCConversions += int64(sp.kernels)
		res.Cycles++ // one digitization cycle per block (≤128/cycle)
	}
	res.Cycles++ // reduce + activate at the RU
	bank := membranes[pos*sp.kernels : (pos+1)*sp.kernels]
	if len(sr.fire) != sp.kernels {
		sr.fire = make([]float64, sp.kernels)
	}
	out := sr.fire
	for i := range out {
		out[i] = 0
	}
	// On the event path the fire plane is built during this walk, so
	// the caller hands the packed output on without a Pack re-scan.
	fill := env.event && pl != nil
	if fill {
		sr.outPlane.Reset(sp.kernels)
	}
	for kIdx := range bank {
		inc := total[kIdx]
		if bias != nil && kIdx < len(bias) {
			inc += bias[kIdx]
		}
		bank[kIdx] += inc
		if bank[kIdx] >= sp.VTh {
			out[kIdx] = 1
			if fill {
				sr.outPlane.Set(kIdx)
			}
			bank[kIdx] -= sp.VTh
			res.Spikes++
		}
	}
	res.Cycles++ // write back
	res.EDRAMAccesses++
	return out, nil
}

// biasData unwraps an optional bias tensor.
func biasData(b *tensor.Tensor) []float64 {
	if b == nil {
		return nil
	}
	return b.Data()
}

// stepStage advances one spiking stage by one timestep. pl is the
// packed spike plane of x on the event-driven path (nil selects the
// exact legacy dense walk); the returned plane covers the returned
// tensor and is nil when the stage does not produce one. Event-driven
// skips are value-preserving by construction: a silent stage or window
// can only be skipped when doing so leaves every membrane, accumulator
// and output bit identical to the dense walk (DESIGN.md §15).
func (env *execEnv) stepStage(hw *stageHW, sr *stageRun, x *tensor.Tensor, pl *spikeplane.Plane, res *RunResult) (*tensor.Tensor, *spikeplane.Plane, error) {
	switch hw.kind {
	case "conv":
		if hw.snnCore.neurons == nil {
			return nil, nil, fmt.Errorf("arch: conv stage not programmed (compile with WithInputShape)")
		}
		h, w := x.Dim(1), x.Dim(2)
		oh := tensor.ConvOutSize(h, hw.kh, hw.stride, hw.pad)
		ow := tensor.ConvOutSize(w, hw.kw, hw.stride, hw.pad)
		out := sr.convOut
		if out == nil || out.Dim(0) != hw.outC || out.Dim(1) != oh || out.Dim(2) != ow {
			out = tensor.New(hw.outC, oh, ow)
			sr.convOut = out
		}
		if pl != nil {
			// Event path: pre-zero the output plane so skipped positions
			// need no writes, and take the whole-stage exit on a silent
			// input (zero windows integrate nothing, so no neuron state
			// moves; a bias would break that, hence the guard).
			od := out.Data()
			for i := range od {
				od[i] = 0
			}
			res.PackedWords += int64(len(pl.WordSlice()))
			if hw.bias == nil && pl.IsZero() {
				res.SilentStageSkips++
				res.SpikesSkipped += int64(pl.Len())
				sr.outPlane.Reset(out.Size())
				return out, &sr.outPlane, nil
			}
		}
		gcIn := hw.inC / hw.groups
		gcOut := hw.outC / hw.groups
		rfg := gcIn * hw.kh * hw.kw
		if len(sr.colBuf) != rfg {
			sr.colBuf = make([]float64, rfg)
		}
		colBuf := sr.colBuf
		area := h * w
		for g := 0; g < hw.groups; g++ {
			sub := tensor.FromSlice(x.Data()[g*gcIn*area:(g+1)*gcIn*area], gcIn, h, w)
			if sr.cols == nil || sr.cols.Dim(0) != rfg || sr.cols.Dim(1) != oh*ow {
				sr.cols = tensor.New(rfg, oh*ow)
			}
			cols := sr.cols
			tensor.Im2ColInto(cols, sub, hw.kh, hw.kw, hw.stride, hw.pad)
			for pos := 0; pos < oh*ow; pos++ {
				// Grouped case: per-group kernel matrices share the row
				// space; each (position, group) pair owns a replica bank.
				bankPos := pos
				if hw.groups > 1 {
					bankPos = pos*hw.groups + g
				}
				var spikes []float64
				var err error
				if pl != nil {
					// Gather the receptive-field window and pack its
					// spike plane in one pass (im2col scatters indices,
					// so the window plane is rebuilt, not windowed).
					wp := &sr.winPlane
					wp.Reset(rfg)
					for r := 0; r < rfg; r++ {
						v := cols.At(r, pos)
						colBuf[r] = v
						if v != 0 {
							wp.Set(r)
							//nebula:lint-ignore float-eq binary detection is exact by design: only the literal 1.0 lets the bit pattern stand in for the value
							if v != 1.0 {
								wp.MarkGraded()
							}
						}
					}
					if hw.bias == nil && wp.IsZero() {
						// Silent window: the replica bank integrates
						// nothing and every output slot stays zero.
						res.PackedWords += int64(len(wp.WordSlice()))
						res.SpikesSkipped += int64(rfg)
						continue
					}
					spikes, err = env.coreStepEvent(hw.snnCore, sr, bankPos, colBuf, wp, nil, biasData(hw.bias), false, res)
				} else {
					// Gather the receptive-field window and its spike
					// list in one pass; the kernels skip silent rows.
					act := sr.act[:0]
					for r := 0; r < rfg; r++ {
						v := cols.At(r, pos)
						colBuf[r] = v
						if v != 0 {
							act = append(act, r)
						}
					}
					sr.act = act
					spikes, err = env.coreStep(hw.snnCore, sr, bankPos, colBuf, act, biasData(hw.bias), res)
				}
				if err != nil {
					return nil, nil, err
				}
				for k := 0; k < gcOut; k++ {
					out.Set(spikes[g*gcOut+k], g*gcOut+k, pos/ow, pos%ow)
				}
			}
		}
		// Spikes travel to the consumer stage over the mesh; the shared
		// mesh simulator is only driven on the sequential wear path.
		res.NoCPackets++
		res.NoCHops += env.hops
		if env.wear {
			env.ch.Mesh.Send(noc.Node{X: 0, Y: 0}, noc.Node{X: 1, Y: 0}, maxInt(1, int(out.Sum())), 0)
		}
		if pl != nil {
			sr.outPlane.Pack(out.Data())
			return out, &sr.outPlane, nil
		}
		return out, nil, nil
	case "dense":
		flat := x.Reshape(x.Size())
		var spikes []float64
		var err error
		switch {
		case hw.spill != nil:
			spikes, err = env.spillStep(hw.spill, sr, 0, flat.Data(), biasData(hw.bias), pl, res)
		case pl != nil:
			if hw.bias == nil && pl.IsZero() {
				// Whole-stage skip: integrateBankInto ignores zero
				// increments, so the dense walk would touch no neuron
				// and emit no spike — return the zero vector without
				// charging cycles, packets or accesses.
				res.SilentStageSkips++
				res.PackedWords += int64(len(pl.WordSlice()))
				res.SpikesSkipped += int64(pl.Len())
				if len(sr.fire) != hw.snnCore.ST.cols {
					sr.fire = make([]float64, hw.snnCore.ST.cols)
				}
				for i := range sr.fire {
					sr.fire[i] = 0
				}
				if sr.fireT == nil || sr.fireT.Size() != len(sr.fire) {
					sr.fireT = tensor.FromSlice(sr.fire, len(sr.fire))
				}
				sr.outPlane.Reset(len(sr.fire))
				return sr.fireT, &sr.outPlane, nil
			}
			spikes, err = env.coreStepEvent(hw.snnCore, sr, 0, flat.Data(), pl, &sr.outPlane, biasData(hw.bias), true, res)
		default:
			// Gather the previous layer's spike list so the crossbar
			// kernels touch only the active rows.
			act := sr.act[:0]
			for i, v := range flat.Data() {
				if v != 0 {
					act = append(act, i)
				}
			}
			sr.act = act
			spikes, err = env.coreStep(hw.snnCore, sr, 0, flat.Data(), act, biasData(hw.bias), res)
		}
		if err != nil {
			return nil, nil, err
		}
		res.NoCPackets++
		res.NoCHops += env.hops
		if env.wear {
			return tensor.FromSlice(spikes, len(spikes)), nil, nil
		}
		// Frozen path: spikes aliases sr.fire, whose backing array only
		// changes when its length does — the cached view stays valid.
		if sr.fireT == nil || sr.fireT.Size() != len(spikes) {
			sr.fireT = tensor.FromSlice(spikes, len(spikes))
		}
		if pl != nil {
			// sr.outPlane was filled during the integrate (coreStepEvent)
			// or threshold (spillStep) walk — no Pack re-scan needed.
			return sr.fireT, &sr.outPlane, nil
		}
		return sr.fireT, nil, nil
	case "pool":
		if pl != nil {
			res.PackedWords += int64(len(pl.WordSlice()))
			if pl.IsZero() {
				// Silent input: average pooling of zeros is zero, and a
				// zero-current IF step moves no membrane (leak 1, no
				// refractory) and fires nothing — the cached zero
				// output is the exact dense result.
				res.SilentStageSkips++
				res.SpikesSkipped += int64(pl.Len())
				if sr.poolZero == nil {
					sr.poolZero = snn.AvgPool(x, hw.pool.K, hw.pool.Stride)
				}
				sr.outPlane.Reset(sr.poolZero.Size())
				return sr.poolZero, &sr.outPlane, nil
			}
			out := sr.poolIF.Fire(snn.AvgPool(x, hw.pool.K, hw.pool.Stride))
			sr.outPlane.Pack(out.Data())
			return out, &sr.outPlane, nil
		}
		return sr.poolIF.Fire(snn.AvgPool(x, hw.pool.K, hw.pool.Stride)), nil, nil
	case "flatten":
		// Flattening reorders nothing, so the plane carries over.
		return x.Reshape(x.Size()), pl, nil
	case "output":
		// Digital accumulation at the routing units.
		flat := x.Reshape(1, -1)
		n := hw.outW.Dim(0)
		if sr.outInc == nil || sr.outInc.Dim(1) != n {
			sr.outInc = tensor.New(1, n)
			sr.outIncFlat = sr.outInc.Reshape(n)
		}
		if sr.outAcc == nil {
			sr.outAcc = tensor.New(n)
		}
		if pl != nil {
			res.PackedWords += int64(len(pl.WordSlice()))
			if hw.outB == nil && pl.IsZero() {
				// Silent timestep contributes exactly zero to every
				// class accumulator — skip the read-out entirely.
				res.SilentStageSkips++
				res.SpikesSkipped += int64(pl.Len())
				return sr.outAcc, nil, nil
			}
			if pl.Binary() {
				// Binary plane: each active bit contributes its weight
				// verbatim (1.0·w == w), and summing in ascending index
				// order matches the dense inner product bit for bit —
				// skipped zero terms only ever add ±0 to a sum that is
				// never −0.
				wd := hw.outW.Data()
				inLen := flat.Size()
				od := sr.outIncFlat.Data()
				for k := 0; k < n; k++ {
					row := wd[k*inLen : (k+1)*inLen]
					s := 0.0
					it := pl.Iter()
					for j, ok := it.Next(); ok; j, ok = it.Next() {
						s += row[j]
					}
					od[k] = s
				}
				res.SpikesSkipped += int64(pl.Len() - pl.Count())
			} else {
				tensor.MatMulTransBInto(sr.outInc, flat, hw.outW)
			}
			if hw.outB != nil {
				sr.outInc.Row(0).AddInPlace(hw.outB)
			}
			sr.outAcc.AddInPlace(sr.outIncFlat)
			// The accumulator is only read after the final timestep;
			// returning it uncloned avoids a per-step allocation.
			return sr.outAcc, nil, nil
		}
		tensor.MatMulTransBInto(sr.outInc, flat, hw.outW)
		if hw.outB != nil {
			sr.outInc.Row(0).AddInPlace(hw.outB)
		}
		sr.outAcc.AddInPlace(sr.outIncFlat)
		return sr.outAcc.Clone(), nil, nil
	}
	return nil, nil, fmt.Errorf("arch: unknown stage kind %q", hw.kind)
}

// annExec drives a batch of input vectors through an ANN core with the
// stage bias injected pre-saturation, mirroring the legacy
// Execute/annExecuteWithBias pair without mutating the shared core.
func (env *execEnv) annExec(core *ANNCore, inputs [][]float64, bias *tensor.Tensor, res *RunResult) ([][]float64, error) {
	bd := biasData(bias)
	out := make([][]float64, len(inputs))
	for i, in := range inputs {
		res.Cycles++ // cycle 1: eDRAM → IB
		res.EDRAMAccesses++
		sums, err := env.evaluate(core.ST, in, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		res.Cycles++ // cycle 2: drive crossbars, threshold at NU
		row := make([]float64, len(sums))
		for j, v := range sums {
			if bd != nil {
				// Bias is added pre-saturation: rectify the raw sum at a
				// lifted ceiling, inject the bias, then apply the device
				// transfer — identical to the deprecated clip-lift dance.
				if v < 0 {
					v = 0
				} else if v > 1e18 {
					v = 1e18
				}
				if j < len(bd) {
					v += bd[j]
				}
			}
			if v < 0 {
				v = 0
			} else if v > core.Clip {
				v = core.Clip
			}
			row[j] = v
		}
		out[i] = row
		res.Cycles++ // cycle 3: OB → eDRAM
		res.EDRAMAccesses++
	}
	return out, nil
}

// annStage executes one compiled stage in ANN mode.
func (env *execEnv) annStage(hw *annStageHW, x *tensor.Tensor, res *RunResult) (*tensor.Tensor, error) {
	switch hw.kind {
	case "conv":
		h, w := x.Dim(1), x.Dim(2)
		oh := tensor.ConvOutSize(h, hw.kh, hw.stride, hw.pad)
		ow := tensor.ConvOutSize(w, hw.kw, hw.stride, hw.pad)
		out := tensor.New(hw.outC, oh, ow)
		gcOut := hw.outC / hw.groups
		area := h * w
		for g := 0; g < hw.groups; g++ {
			sub := x
			if hw.groups > 1 {
				sub = tensor.FromSlice(x.Data()[g*hw.gcIn*area:(g+1)*hw.gcIn*area], hw.gcIn, h, w)
			}
			cols := tensor.Im2Col(sub, hw.kh, hw.kw, hw.stride, hw.pad)
			inputs := make([][]float64, oh*ow)
			for pos := range inputs {
				col := make([]float64, cols.Dim(0))
				for r := range col {
					col[r] = cols.At(r, pos)
				}
				inputs[pos] = col
			}
			sums, err := env.annExec(hw.core, inputs, hw.bias, res)
			if err != nil {
				return nil, err
			}
			for pos, row := range sums {
				for k := g * gcOut; k < (g+1)*gcOut; k++ {
					out.Set(row[k], k, pos/ow, pos%ow)
				}
			}
		}
		return out, nil
	case "dense":
		flat := x.Reshape(x.Size())
		sums, err := env.annExec(hw.core, [][]float64{flat.Data()}, hw.bias, res)
		if err != nil {
			return nil, err
		}
		return tensor.FromSlice(sums[0], len(sums[0])), nil
	case "pool":
		// ANN mode: plain average pooling in the NU datapath (no IF).
		return snn.AvgPool(x, hw.poolK, hw.poolStride), nil
	case "flatten":
		return x.Reshape(x.Size()), nil
	case "output":
		flat := x.Reshape(1, -1)
		out := tensor.MatMulTransB(flat, hw.outW)
		if hw.outB != nil {
			out.Row(0).AddInPlace(hw.outB)
		}
		return out.Reshape(hw.outW.Dim(0)), nil
	}
	return nil, fmt.Errorf("arch: unknown ANN stage kind %q", hw.kind)
}

// stepStageObs advances spiking stage i by one timestep, attributing
// the counter delta (and a trace event) to its bucket when the run
// carries a shard. The nil-shard path is a single branch on top of the
// unobserved stepStage.
func (s *Session) stepStageObs(env *execEnv, i, t int, hw *stageHW, sr *stageRun, x *tensor.Tensor, pl *spikeplane.Plane, res *RunResult) (*tensor.Tensor, *spikeplane.Plane, error) {
	if env.shard == nil {
		return env.stepStage(hw, sr, x, pl, res)
	}
	m := env.mark(res)
	out, opl, err := env.stepStage(hw, sr, x, pl, res)
	if err != nil {
		return nil, nil, err
	}
	idx := s.snnBase + i
	d := env.observe(m, res, env.shard.Stage(idx))
	if env.shard.TraceEnabled() {
		env.shard.AddTrace(obs.TraceEvent{Timestep: t, Stage: idx, Layer: hw.name, Spikes: d})
	}
	return out, opl, nil
}

// annStageObs executes continuous stage j, attributing the counter
// delta to its bucket when the run carries a shard.
func (s *Session) annStageObs(env *execEnv, j int, hw *annStageHW, x *tensor.Tensor, res *RunResult) (*tensor.Tensor, error) {
	if env.shard == nil {
		return env.annStage(hw, x, res)
	}
	m := env.mark(res)
	out, err := env.annStage(hw, x, res)
	if err != nil {
		return nil, err
	}
	env.observe(m, res, env.shard.Stage(s.annBase+j))
	return out, nil
}

// encodeObs encodes one timestep, attributing the input spikes entering
// the pipeline to the input bucket (stage 0 of spiking layouts). On the
// event-driven path it encodes into the run's recycled buffer, packs
// the spike plane that heads the per-timestep plane chain, and derives
// the spike count from the plane's popcount.
func (s *Session) encodeObs(env *execEnv, st *runState, enc snn.Encoder, img *tensor.Tensor, t int) (*tensor.Tensor, *spikeplane.Plane) {
	var x *tensor.Tensor
	var pl *spikeplane.Plane
	if env.event {
		pl = &st.encPlane
		switch ie := enc.(type) {
		case snn.PlaneEncoder:
			// The encoder builds the packed plane during its own walk —
			// no Pack re-scan of the dense vector.
			if st.encT == nil || !tensor.SameShape(st.encT, img) {
				st.encT = tensor.New(img.Shape()...)
			}
			ie.EncodeIntoPlane(st.encT, pl, img)
			x = st.encT
		case snn.IntoEncoder:
			if st.encT == nil || !tensor.SameShape(st.encT, img) {
				st.encT = tensor.New(img.Shape()...)
			}
			ie.EncodeInto(st.encT, img)
			x = st.encT
			pl.Pack(x.Data())
		default:
			x = enc.Encode(img)
			pl.Pack(x.Data())
		}
	} else {
		x = enc.Encode(img)
	}
	if sh := env.shard; sh != nil {
		var n int64
		if pl != nil {
			n = int64(pl.Count())
		} else {
			n = snn.CountSpikes(x)
		}
		sh.Stage(0).SpikesEmitted += n
		if sh.TraceEnabled() {
			sh.AddTrace(obs.TraceEvent{Timestep: t, Stage: 0, Layer: "input", Spikes: n})
		}
	}
	return x, pl
}

// execANN runs one continuous-activation pass.
func (s *Session) execANN(ctx context.Context, img *tensor.Tensor, env *execEnv) (*RunResult, error) {
	res := &RunResult{}
	x := img
	for j, hw := range s.annStages {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		x, err = s.annStageObs(env, j, hw, x, res)
		if err != nil {
			return nil, err
		}
	}
	res.Output = x.Clone()
	res.Prediction = x.ArgMax()
	return res, nil
}

// execSNN runs T encoded timesteps through the spiking pipeline.
// Cancellation is checked between timesteps so a hung experiment is
// killable mid-window.
func (s *Session) execSNN(ctx context.Context, img *tensor.Tensor, env *execEnv, enc snn.Encoder, st *runState) (*RunResult, error) {
	res := &RunResult{}
	for t := 0; t < s.cfg.Timesteps; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x, pl := s.encodeObs(env, st, enc, img, t)
		for i, hw := range s.snnStages {
			var err error
			x, pl, err = s.stepStageObs(env, i, t, hw, st.stages[i], x, pl, res)
			if err != nil {
				return nil, err
			}
		}
		if env.wear {
			s.chip.tickRetention(s.snnStages, t)
		}
	}
	// The read-out stage integrates increments across timesteps; its
	// accumulator holds the final class potentials.
	out := runOutput(st, s.snnStages)
	res.Output = out
	res.Prediction = out.ArgMax()
	return res, nil
}

// execHybrid runs the spiking front, accumulates boundary spikes at the
// AU, and finishes with the compiled ANN tail.
func (s *Session) execHybrid(ctx context.Context, img *tensor.Tensor, env *execEnv, enc snn.Encoder, st *runState) (*RunResult, error) {
	res := &RunResult{}
	for t := 0; t < s.cfg.Timesteps; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x, pl := s.encodeObs(env, st, enc, img, t)
		for i, hw := range s.snnStages {
			var err error
			x, pl, err = s.stepStageObs(env, i, t, hw, st.stages[i], x, pl, res)
			if err != nil {
				return nil, err
			}
		}
		st.au.Accumulate(x)
		if env.wear {
			s.chip.tickRetention(s.snnStages, t)
		}
	}
	// The recovered activations are in the source (unnormalized) scale of
	// the boundary; renormalize to [0,1] with λ so the normalized weights
	// of the remaining stages apply directly.
	x := st.au.Read()
	x.ScaleInPlace(1 / s.lambda)
	for j, hw := range s.annStages {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		x, err = s.annStageObs(env, j, hw, x, res)
		if err != nil {
			return nil, err
		}
	}
	res.Output = x.Clone()
	res.Prediction = x.ArgMax()
	return res, nil
}

// runOutput reads the final class potentials from the per-run read-out
// accumulator.
func runOutput(st *runState, stages []*stageHW) *tensor.Tensor {
	if n := len(stages); n > 0 {
		if acc := st.stages[n-1].outAcc; acc != nil {
			return acc.Clone()
		}
	}
	return tensor.New(1)
}

// runOne executes a single inference with the given reserved streams.
// When the session carries a recorder, the run fills a private counter
// shard and returns it alongside the result; the caller decides when
// (and whether) to merge it. A failed run's shard is discarded.
func (s *Session) runOne(ctx context.Context, input *tensor.Tensor, rs runStreams) (*RunResult, *obs.RunRecord, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	env := &execEnv{ch: s.chip, wear: s.cfg.Wear, hops: s.engineHops}
	if s.rec != nil {
		env.shard = obs.NewRunRecord(s.obsLayout, s.traceOn)
	}
	if env.wear {
		// Wear runs mutate the programmed arrays, the mesh and the chip
		// health report; serialize them.
		s.wearMu.Lock()
		defer s.wearMu.Unlock()
	} else {
		if s.chip.noise != nil {
			env.noise = rs.noise
		}
		env.cross = &crossbar.Stats{}
		// Event-driven stepping requires a nil read-noise stream: noise
		// draws advance per live column, so skipping a read would shift
		// every later draw. Without noise, skips are value-exact.
		env.event = env.noise == nil && !s.cfg.noEvent
	}
	var enc snn.Encoder
	if s.cfg.Mode != ModeANN {
		enc = s.cfg.sharedEnc
		if enc == nil {
			enc = s.cfg.encFactory(rs.enc)
		}
	}
	st := s.arena.Get().(*runState)
	st.reset()
	defer s.arena.Put(st)
	var res *RunResult
	var err error
	switch s.cfg.Mode {
	case ModeANN:
		res, err = s.execANN(ctx, input, env)
	case ModeSNN:
		res, err = s.execSNN(ctx, input, env, enc, st)
	default:
		res, err = s.execHybrid(ctx, input, env, enc, st)
	}
	if err != nil {
		return nil, nil, err
	}
	if env.cross != nil {
		res.Crossbar = *env.cross
	}
	return res, env.shard, nil
}

// mergeShards folds a batch's completed shards into the recorder in
// input order. Input-order merging is what keeps counter totals (which
// include float columns) bitwise identical between sequential and
// parallel execution of the same batch.
func (s *Session) mergeShards(shards []*obs.RunRecord) error {
	if s.rec == nil {
		return nil
	}
	for _, sh := range shards {
		if sh == nil {
			continue
		}
		if err := s.rec.MergeRun(sh); err != nil {
			return err
		}
	}
	return nil
}

// Run executes one inference. Each call reserves the next pair of
// per-run RNG streams, so a loop of Run calls is bitwise identical to
// one RunBatch over the same inputs.
func (s *Session) Run(ctx context.Context, input *tensor.Tensor) (*RunResult, error) {
	res, shard, err := s.runOne(ctx, input, s.reserveStreams(1)[0])
	if err != nil {
		return nil, err
	}
	if shard != nil {
		if err := s.mergeShards([]*obs.RunRecord{shard}); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ReservedStreams is a pair of per-run RNG streams reserved outside the
// session — by a session pool that owns the stream parent and must be
// able to replay the exact same draws on a different replica. The pool
// reserves one pair per request in request order, keeps the originals,
// and hands each attempt fresh Clones; RunReserved then consumes the
// clone, so a retry of the same request reproduces the failed attempt
// bit for bit no matter which replica serves it.
type ReservedStreams struct {
	// Enc drives the input encoder; Noise drives crossbar read noise.
	Enc, Noise *rng.Rand
}

// RunReserved is Run with the per-run RNG streams supplied by the
// caller instead of drawn from the session parent. The session's own
// stream reservation state is untouched, so sessions used purely
// through RunReserved stay interchangeable: two replicas compiled with
// the same seed produce bitwise-identical results for the same input
// and streams. Safe for concurrent use under the same conditions as
// Run.
func (s *Session) RunReserved(ctx context.Context, input *tensor.Tensor, rs ReservedStreams) (*RunResult, error) {
	res, shard, err := s.runOne(ctx, input, runStreams{enc: rs.Enc, noise: rs.Noise})
	if err != nil {
		return nil, err
	}
	if shard != nil {
		if err := s.mergeShards([]*obs.RunRecord{shard}); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// RunBatch executes a batch of inferences across the session's worker
// pool and returns one result per input, in input order. Per-run RNG
// streams are reserved in input order before any worker starts, so the
// outputs are bitwise identical to calling Run on each input
// sequentially, at any parallelism. Cancellation is honoured between
// batch items and between the timesteps of each spiking run; on error
// the first observed failure is returned and the batch is abandoned.
//
// When the session carries a recorder, each run fills a private counter
// shard; the shards are merged into the recorder in input order only
// after the whole batch succeeds, so recorded totals are bitwise
// identical to sequential execution at any parallelism. A failed or
// cancelled batch contributes nothing to the recorder — not even its
// completed runs.
func (s *Session) RunBatch(ctx context.Context, inputs []*tensor.Tensor) ([]*RunResult, error) {
	if len(inputs) == 0 {
		return nil, nil
	}
	streams := s.reserveStreams(len(inputs))
	results := make([]*RunResult, len(inputs))
	shards := make([]*obs.RunRecord, len(inputs))
	par := s.Parallelism(len(inputs))
	if par <= 1 {
		for i, in := range inputs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, shard, err := s.runOne(ctx, in, streams[i])
			if err != nil {
				return nil, fmt.Errorf("arch: batch input %d: %w", i, err)
			}
			results[i] = res
			shards[i] = shard
		}
		if err := s.mergeShards(shards); err != nil {
			return nil, err
		}
		return results, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(inputs))
	idx := make(chan int)
	done := make(chan struct{})
	for w := 0; w < par; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range idx {
				if err := cctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				res, shard, err := s.runOne(cctx, inputs[i], streams[i])
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				results[i] = res
				shards[i] = shard
			}
		}()
	}
	for i := range inputs {
		idx <- i
	}
	close(idx)
	for w := 0; w < par; w++ {
		<-done
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Prefer the lowest-index real failure over cancellations it caused.
	var first error
	for i, err := range errs {
		if err == nil {
			continue
		}
		wrapped := fmt.Errorf("arch: batch input %d: %w", i, err)
		if !errors.Is(err, context.Canceled) {
			return nil, wrapped
		}
		if first == nil {
			first = wrapped
		}
	}
	if first != nil {
		return nil, first
	}
	if err := s.mergeShards(shards); err != nil {
		return nil, err
	}
	return results, nil
}
