package arch

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/nn"
	"repro/internal/reliability"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// sessionChip builds the noisy chip used by the determinism tests: read
// noise makes the per-run noise streams load-bearing, so any stream
// misordering under concurrency shows up as a bitwise mismatch.
func sessionChip() *Chip {
	return NewChip(device.DefaultParams(), crossbar.Config{ReadNoiseSigma: 0.05}, rng.New(41))
}

// compileSession compiles a fresh session over a fresh chip so every
// comparison sees identically programmed hardware and identical streams.
func compileSession(t *testing.T, c *convert.Converted, opts ...Option) *Session {
	t.Helper()
	sess, err := sessionChip().Compile(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// assertBatchMatchesSequential checks that RunBatch reproduces the
// sequential Run results bit for bit at every parallelism level the
// acceptance criteria name: 1, 4 and NumCPU.
func assertBatchMatchesSequential(t *testing.T, c *convert.Converted, imgs []*tensor.Tensor, opts ...Option) {
	t.Helper()
	ctx := context.Background()
	seq := compileSession(t, c, opts...)
	want := make([]*RunResult, len(imgs))
	for i, img := range imgs {
		res, err := seq.Run(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	for _, par := range []int{1, 4, runtime.NumCPU()} {
		sess := compileSession(t, c, append(append([]Option(nil), opts...), WithParallelism(par))...)
		got, err := sess.RunBatch(ctx, imgs)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d results, want %d", par, len(got), len(want))
		}
		for i := range got {
			wd, gd := want[i].Output.Data(), got[i].Output.Data()
			if len(wd) != len(gd) {
				t.Fatalf("parallelism %d input %d: output size %d, want %d", par, i, len(gd), len(wd))
			}
			for j := range wd {
				if wd[j] != gd[j] {
					t.Fatalf("parallelism %d input %d col %d: %v != %v (batched run not bitwise identical)",
						par, i, j, gd[j], wd[j])
				}
			}
			if got[i].Prediction != want[i].Prediction || got[i].Spikes != want[i].Spikes ||
				got[i].Cycles != want[i].Cycles || got[i].NoCPackets != want[i].NoCPackets ||
				got[i].NoCHops != want[i].NoCHops || got[i].EDRAMAccesses != want[i].EDRAMAccesses {
				t.Fatalf("parallelism %d input %d: stats diverged: %+v vs %+v", par, i, got[i], want[i])
			}
		}
	}
}

func sessionImages(t *testing.T, te *dataset.Dataset, n int) []*tensor.Tensor {
	t.Helper()
	imgs := make([]*tensor.Tensor, n)
	for i := range imgs {
		imgs[i], _ = te.Sample(i)
	}
	return imgs
}

func TestSessionRunBatchBitwiseANN(t *testing.T) {
	c, te := chipFixture(t)
	assertBatchMatchesSequential(t, c, sessionImages(t, te, 8),
		WithMode(ModeANN), WithSeed(42))
}

func TestSessionRunBatchBitwiseSNN(t *testing.T) {
	c, te := chipFixture(t)
	assertBatchMatchesSequential(t, c, sessionImages(t, te, 8),
		WithMode(ModeSNN), WithTimesteps(20), WithSeed(42))
}

func TestSessionRunBatchBitwiseHybrid(t *testing.T) {
	c, te := chipFixture(t)
	assertBatchMatchesSequential(t, c, sessionImages(t, te, 8),
		WithMode(ModeHybrid), WithHybridSplit(1), WithTimesteps(20), WithSeed(42))
}

func TestSessionRunBatchBitwiseConv(t *testing.T) {
	// Grouped convolution exercises the per-run position-replica banks —
	// the largest piece of mutable state the arena has to keep private.
	r := rng.New(19)
	net := nn.NewNetwork("dw",
		nn.NewConv2D("dw", 4, 4, 3, 3, 1, 1, 4, r),
		nn.NewReLU("relu"),
		nn.NewFlatten("flat"),
		nn.NewLinear("fc", 4*8*8, 4, r),
	)
	d := dataset.Generate(dataset.Spec{Name: "x", Classes: 4, Channels: 4, Size: 8, Noise: 0.1, Jitter: 1}, 16, 1)
	c, err := convert.Convert(net, d, convert.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertBatchMatchesSequential(t, c, sessionImages(t, d, 6),
		WithMode(ModeSNN), WithTimesteps(10), WithSeed(42), WithInputShape(4, 8, 8))
}

func TestSessionRunCanceledContext(t *testing.T) {
	c, te := chipFixture(t)
	sess := compileSession(t, c, WithMode(ModeSNN), WithTimesteps(20))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	img, _ := te.Sample(0)
	if _, err := sess.Run(ctx, img); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with canceled context: got %v, want context.Canceled", err)
	}
	if _, err := sess.RunBatch(ctx, sessionImages(t, te, 4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunBatch with canceled context: got %v, want context.Canceled", err)
	}
	// The session must remain usable after a cancellation.
	if _, err := sess.Run(context.Background(), img); err != nil {
		t.Fatalf("Run after cancellation: %v", err)
	}
}

func TestSessionCompileErrorWrapsDegraded(t *testing.T) {
	// When the BIST/protect pipeline refuses a core at compile time, the
	// typed chain must survive: errors.As reaches both the *CompileError
	// envelope and the *reliability.DegradedError cause.
	c, _ := chipFixture(t)
	chip := NewChip(device.DefaultParams(), crossbar.Config{}, rng.New(93))
	chip.Rel = &reliability.Config{
		Faults:     reliability.FaultProfile{DeviceRate: 0.3, PermanentFrac: 1, Mode: crossbar.StuckAP},
		Protection: reliability.ProtectWriteVerify,
		Policy:     reliability.DefaultPolicy(),
	}
	_, err := chip.Compile(c, WithMode(ModeSNN), WithTimesteps(5))
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CompileError, got %v", err)
	}
	if ce.Mode != ModeSNN {
		t.Fatalf("CompileError.Mode = %v, want snn", ce.Mode)
	}
	var de *reliability.DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("*reliability.DegradedError lost in the chain: %v", err)
	}
}

func TestSessionCompileValidation(t *testing.T) {
	c, _ := chipFixture(t)
	cases := []struct {
		name string
		opts []Option
	}{
		{"snn without timesteps", []Option{WithMode(ModeSNN)}},
		{"hybrid split out of range", []Option{WithMode(ModeHybrid), WithHybridSplit(0), WithTimesteps(5)}},
		{"unknown mode", []Option{WithMode(Mode(17))}},
	}
	for _, tc := range cases {
		_, err := sessionChip().Compile(c, tc.opts...)
		var ce *CompileError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: want *CompileError, got %v", tc.name, err)
		}
	}
}

func TestSessionCompileConvNeedsShape(t *testing.T) {
	r := rng.New(19)
	net := nn.NewNetwork("dw",
		nn.NewConv2D("dw", 4, 4, 3, 3, 1, 1, 4, r),
		nn.NewReLU("relu"),
		nn.NewFlatten("flat"),
		nn.NewLinear("fc", 4*8*8, 4, r),
	)
	d := dataset.Generate(dataset.Spec{Name: "x", Classes: 4, Channels: 4, Size: 8, Noise: 0.1, Jitter: 1}, 16, 1)
	c, err := convert.Convert(net, d, convert.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = sessionChip().Compile(c, WithMode(ModeSNN), WithTimesteps(5))
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("conv model without WithInputShape: want *CompileError, got %v", err)
	}
}

func TestSessionSharedEncoderSerializes(t *testing.T) {
	c, _ := chipFixture(t)
	sess := compileSession(t, c, WithMode(ModeSNN), WithTimesteps(5),
		WithSharedEncoder(snn.NewPoissonEncoder(1.0, rng.New(1))), WithParallelism(8))
	if p := sess.Parallelism(16); p != 1 {
		t.Fatalf("shared-encoder session parallelism = %d, want 1", p)
	}
	wear := compileSession(t, c, WithMode(ModeANN), WithWear(true), WithParallelism(8))
	if p := wear.Parallelism(16); p != 1 {
		t.Fatalf("wear session parallelism = %d, want 1", p)
	}
}
