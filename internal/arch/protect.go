package arch

import (
	"context"
	"fmt"

	"repro/internal/crossbar"
	"repro/internal/device"
	"repro/internal/mapping"
	"repro/internal/reliability"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// This file wires the reliability subsystem into the chip: fault
// injection and the BIST/repair pipeline at core-programming time, tile
// retirement, the degradation policy, retention ticking during runs, and
// the chip-scale HealthScan behind `nebula-sim -health`.

// protect injects the configured fault profile into a freshly programmed
// super-tile and runs the protection pipeline over its configured slots.
// It merges the outcome into the chip health report and returns a
// *reliability.DegradedError when the residual fault density exceeds the
// policy threshold.
func (ch *Chip) protect(st *SuperTile) error {
	eng := reliability.NewEngine(ch.Rel, ch.split())
	for _, ac := range st.AllACs() {
		eng.Inject(ac)
	}
	if ch.Rel.Protection == reliability.ProtectNone && !ch.Rel.Faults.Any() {
		return nil
	}
	var unmit, pairs int
	if ch.Rel.Protection == reliability.ProtectNone {
		// Unprotected chips do not BIST; they compute through whatever
		// was injected. Only the injection counters reach the report.
		ch.health.Merge(eng.Report())
		return nil
	}
	for slot := 0; slot < st.Slots(); slot++ {
		u := eng.ProtectArray(st.SlotCrossbar(slot))
		if ch.Rel.Protection >= reliability.ProtectSpareRemap && u > ch.Rel.Policy.RetireThreshold {
			if st.Retire(slot) {
				eng.NoteRetired()
				// The replacement array carries its own injected faults;
				// protect it in turn.
				u = eng.ProtectArray(st.SlotCrossbar(slot))
			}
		}
		unmit += u
		pairs += mapping.M * mapping.M
	}
	rpt := eng.Report()
	rpt.Unmitigated = int64(unmit)
	if pairs > 0 && float64(unmit)/float64(pairs) > ch.Rel.Policy.MaxUnmitigatedFrac {
		rpt.Degraded = true
		ch.health.Merge(rpt)
		return &reliability.DegradedError{
			Reason: fmt.Sprintf("core unmitigated fault fraction %.4f exceeds policy %.4f",
				float64(unmit)/float64(pairs), ch.Rel.Policy.MaxUnmitigatedFrac),
			Report: ch.health,
		}
	}
	ch.health.Merge(rpt)
	return nil
}

// Health returns the chip's cumulative reliability report: every core
// prepared since creation (or the last ResetHealth). Totals are
// deterministic for a fixed chip seed.
func (ch *Chip) Health() reliability.Report { return ch.health }

// ResetHealth clears the cumulative reliability report.
func (ch *Chip) ResetHealth() { ch.health = reliability.Report{} }

// tickRetention advances the retention clock of every stateful core by
// one timestep and runs the scrub policy. t is the zero-based timestep
// just completed.
func (ch *Chip) tickRetention(stages []*stageHW, t int) {
	if ch.Rel == nil || ch.Rel.Faults.DriftTauSteps <= 0 {
		return
	}
	scrub := ch.Rel.Policy.ScrubEverySteps > 0 &&
		ch.Rel.Protection >= reliability.ProtectWriteVerify &&
		(t+1)%ch.Rel.Policy.ScrubEverySteps == 0
	tick := func(st *SuperTile) {
		st.Tick(1)
		if scrub {
			st.Refresh()
			ch.health.Refreshes++
		}
		if age := st.MaxAge(); age > ch.health.MaxDriftAge {
			ch.health.MaxDriftAge = age
		}
	}
	for _, s := range stages {
		if s.snnCore != nil && s.snnCore.ST.Slots() > 0 {
			tick(s.snnCore.ST)
		}
		if s.spill != nil {
			for _, st := range s.spill.blocks {
				tick(st)
			}
		}
	}
}

// HealthScan is the chip-scale BIST pass behind `nebula-sim -health`: it
// provisions the neural cores of a mapped workload, programs each with
// synthetic weights (the analytic workloads carry no trained values),
// injects the fault profile and runs the protection pipeline, returning
// the aggregate health report. Per-core degradation does not abort the
// scan — a refused core marks the report Degraded and the scan moves on,
// which is exactly what a commissioning pass wants to know. Cancelling
// ctx aborts between cores; the partial report covers the cores scanned
// so far.
func HealthScan(ctx context.Context, np mapping.NetworkPlacement, p device.Params, cfg crossbar.Config, rel *reliability.Config, seed uint64) (reliability.Report, error) {
	ch := NewChip(p, cfg, rng.New(seed))
	ch.Rel = rel
	wstream := ch.split()
	for _, pl := range np.Placements {
		if pl.ACsUsed == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return ch.Health(), fmt.Errorf("arch: health scan %s: %w", pl.Layer.Name, err)
		}
		// Per-NC geometry: clamp the placement's stack/sets to one
		// super-tile, mirroring how the mapper chunks oversized layers.
		sets := pl.Sets
		if sets > mapping.ACsPerNC {
			sets = mapping.ACsPerNC
		}
		stack := mapping.ACsPerNC / sets
		if pl.StackHeight < stack {
			stack = pl.StackHeight
		}
		if stack < 1 {
			stack = 1
		}
		rows, cols := stack*mapping.M, sets*mapping.M
		for nc := 0; nc < pl.NCsUsed; nc++ {
			if err := ctx.Err(); err != nil {
				return ch.Health(), fmt.Errorf("arch: health scan %s: %w", pl.Layer.Name, err)
			}
			st := NewSuperTile(p, ch.coreCfg(), ch.split())
			w := tensor.New(rows, cols)
			wd := w.Data()
			for i := range wd {
				wd[i] = wstream.Float64()*2 - 1
			}
			if err := st.Program(w, 1.0); err != nil {
				return ch.Health(), fmt.Errorf("arch: health scan %s: %w", pl.Layer.Name, err)
			}
			if err := ch.prepare(st); err != nil {
				var de *reliability.DegradedError
				if !asDegraded(err, &de) {
					return ch.Health(), err
				}
			}
		}
	}
	return ch.Health(), nil
}

// asDegraded unwraps err into a *reliability.DegradedError, a minimal
// errors.As for the one error type the reliability layer returns.
func asDegraded(err error, out **reliability.DegradedError) bool {
	de, ok := err.(*reliability.DegradedError)
	if ok {
		*out = de
	}
	return ok
}
