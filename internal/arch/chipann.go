package arch

import (
	"fmt"

	"repro/internal/convert"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// RunANN executes one image through the same converted (normalized)
// network in ANN mode: multi-level drivers feed the continuous
// activations, saturating MTJ neurons clip at 1 (a full domain-wall
// traversal), and a single pass produces the class scores — the morphable
// multi-modality of §IV-B4 exercised on identical crossbar contents.
//
// Inputs are pixel intensities in [0, 1]; because the converted weights
// are normalized, every intermediate activation also lives in [0, 1].
func (ch *Chip) RunANN(c *convert.Converted, img *tensor.Tensor) (*RunResult, error) {
	res := &RunResult{}
	x := img
	for _, st := range c.Stages {
		layer := c.SNN.Layers[st.SNNLayer]
		var err error
		x, err = ch.annStage(layer, x, res)
		if err != nil {
			return nil, err
		}
	}
	res.Output = x.Clone()
	res.Prediction = x.ArgMax()
	return res, nil
}

// annStage executes one converted stage in ANN mode.
func (ch *Chip) annStage(layer snn.Layer, x *tensor.Tensor, res *RunResult) (*tensor.Tensor, error) {
	switch v := layer.(type) {
	case *snn.Conv:
		outC := v.W.Dim(0)
		kh, kw := v.W.Dim(2), v.W.Dim(3)
		gcIn := v.W.Dim(1)
		gcOut := outC / v.Groups
		rf := gcIn * kh * kw
		if !FitsInCore(rf, outC) {
			return nil, fmt.Errorf("arch: stage %s does not fit one core", v.Name())
		}
		core := NewANNCore(ch.P, ch.coreCfg(), 1.0, ch.split())
		km := v.W.Reshape(outC, rf).Transpose()
		if err := core.Program(km, ch.WMax); err != nil {
			return nil, err
		}
		if err := ch.prepare(core.ST); err != nil {
			return nil, err
		}
		h, w := x.Dim(1), x.Dim(2)
		oh := tensor.ConvOutSize(h, kh, v.Stride, v.Pad)
		ow := tensor.ConvOutSize(w, kw, v.Stride, v.Pad)
		out := tensor.New(outC, oh, ow)
		hw := h * w
		for g := 0; g < v.Groups; g++ {
			sub := x
			if v.Groups > 1 {
				sub = tensor.FromSlice(x.Data()[g*gcIn*hw:(g+1)*gcIn*hw], gcIn, h, w)
			}
			cols := tensor.Im2Col(sub, kh, kw, v.Stride, v.Pad)
			inputs := make([][]float64, oh*ow)
			for pos := range inputs {
				col := make([]float64, cols.Dim(0))
				for r := range col {
					col[r] = cols.At(r, pos)
				}
				inputs[pos] = col
			}
			// Bias is injected at the driver stage before thresholding.
			sums, err := ch.annExecuteWithBias(core, inputs, v.B)
			if err != nil {
				return nil, err
			}
			for pos, row := range sums {
				for k := g * gcOut; k < (g+1)*gcOut; k++ {
					out.Set(row[k], k, pos/ow, pos%ow)
				}
			}
		}
		res.Cycles += core.Stats.Cycles
		return out, nil
	case *snn.Dense:
		km := v.W.Transpose()
		if !FitsInCore(km.Dim(0), km.Dim(1)) {
			return nil, fmt.Errorf("arch: stage %s does not fit one core", v.Name())
		}
		core := NewANNCore(ch.P, ch.coreCfg(), 1.0, ch.split())
		if err := core.Program(km, ch.WMax); err != nil {
			return nil, err
		}
		if err := ch.prepare(core.ST); err != nil {
			return nil, err
		}
		flat := x.Reshape(x.Size())
		sums, err := ch.annExecuteWithBias(core, [][]float64{flat.Data()}, v.B)
		if err != nil {
			return nil, err
		}
		res.Cycles += core.Stats.Cycles
		return tensor.FromSlice(sums[0], len(sums[0])), nil
	case *snn.AvgPoolIF:
		// ANN mode: plain average pooling in the NU datapath (no IF).
		pooled := avgPool(x, v.K, v.Stride)
		return pooled, nil
	case *snn.Flatten:
		return x.Reshape(x.Size()), nil
	case *snn.Output:
		flat := x.Reshape(1, -1)
		out := tensor.MatMulTransB(flat, v.W)
		if v.B != nil {
			out.Row(0).AddInPlace(v.B)
		}
		return out.Reshape(v.W.Dim(0)), nil
	}
	return nil, fmt.Errorf("arch: unsupported stage type %T", layer)
}

// annExecuteWithBias runs the core and adds bias before rectification.
func (ch *Chip) annExecuteWithBias(core *ANNCore, inputs [][]float64, bias *tensor.Tensor) ([][]float64, error) {
	if bias == nil {
		return core.Execute(inputs)
	}
	// Temporarily lift the clip so bias addition happens pre-saturation,
	// then re-apply the device transfer.
	clip := core.Clip
	core.Clip = 1e18
	raw, err := core.Execute(inputs)
	if err != nil {
		return nil, err
	}
	core.Clip = clip
	bd := bias.Data()
	for _, row := range raw {
		for j := range row {
			v := row[j]
			if j < len(bd) {
				v += bd[j]
			}
			if v < 0 {
				v = 0
			} else if v > clip {
				v = clip
			}
			row[j] = v
		}
	}
	return raw, nil
}

// avgPool is the NU-datapath average pooling used by the ANN mode.
func avgPool(x *tensor.Tensor, k, stride int) *tensor.Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh := tensor.ConvOutSize(h, k, stride, 0)
	ow := tensor.ConvOutSize(w, k, stride, 0)
	out := tensor.New(c, oh, ow)
	inv := 1.0 / float64(k*k)
	for ch := 0; ch < c; ch++ {
		for oi := 0; oi < oh; oi++ {
			for oj := 0; oj < ow; oj++ {
				s := 0.0
				for ki := 0; ki < k; ki++ {
					for kj := 0; kj < k; kj++ {
						s += x.At(ch, oi*stride+ki, oj*stride+kj)
					}
				}
				out.Set(s*inv, ch, oi, oj)
			}
		}
	}
	return out
}
