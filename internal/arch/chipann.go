package arch

import (
	"context"
	"fmt"

	"repro/internal/convert"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// annStageHW is the compiled hardware realization of one converted stage
// in ANN mode: multi-level drivers feed the continuous activations,
// saturating MTJ neurons clip at 1 (a full domain-wall traversal) — the
// morphable multi-modality of §IV-B4 exercised on identical crossbar
// contents.
type annStageHW struct {
	kind string
	// name is the converted layer's name, the key counter snapshots
	// carry.
	name string
	// core holds the programmed crossbars of a weighted stage.
	core *ANNCore
	// conv geometry (kind == "conv")
	kh, kw, stride, pad int
	groups, outC, gcIn  int
	// bias injected at the driver stage before thresholding.
	bias *tensor.Tensor
	// pool geometry (kind == "pool")
	poolK, poolStride int
	// output weights (kind == "output") — digitally applied at RUs.
	outW, outB *tensor.Tensor
}

// buildANNStages lowers the converted stages from index `from` onward
// onto programmed (and protected) ANN cores — the compile-time half of
// the legacy per-call RunANN path, in the same core/stream order.
func (ch *Chip) buildANNStages(c *convert.Converted, from int) ([]*annStageHW, error) {
	var stages []*annStageHW
	for _, st := range c.Stages[from:] {
		layer := c.SNN.Layers[st.SNNLayer]
		switch v := layer.(type) {
		case *snn.Conv:
			outC := v.W.Dim(0)
			kh, kw := v.W.Dim(2), v.W.Dim(3)
			gcIn := v.W.Dim(1)
			rf := gcIn * kh * kw
			if !FitsInCore(rf, outC) {
				return nil, fmt.Errorf("arch: stage %s does not fit one core", v.Name())
			}
			core := NewANNCore(ch.P, ch.coreCfg(), 1.0, ch.split())
			km := v.W.Reshape(outC, rf).Transpose()
			if err := ch.programANN(core, km); err != nil {
				return nil, err
			}
			if err := ch.prepare(core.ST); err != nil {
				return nil, err
			}
			stages = append(stages, &annStageHW{kind: "conv", name: v.Name(), core: core,
				kh: kh, kw: kw, stride: v.Stride, pad: v.Pad,
				groups: v.Groups, outC: outC, gcIn: gcIn, bias: v.B})
		case *snn.Dense:
			km := v.W.Transpose()
			if !FitsInCore(km.Dim(0), km.Dim(1)) {
				return nil, fmt.Errorf("arch: stage %s does not fit one core", v.Name())
			}
			core := NewANNCore(ch.P, ch.coreCfg(), 1.0, ch.split())
			if err := ch.programANN(core, km); err != nil {
				return nil, err
			}
			if err := ch.prepare(core.ST); err != nil {
				return nil, err
			}
			stages = append(stages, &annStageHW{kind: "dense", name: v.Name(), core: core, bias: v.B})
		case *snn.AvgPoolIF:
			stages = append(stages, &annStageHW{kind: "pool", name: v.Name(), poolK: v.K, poolStride: v.Stride})
		case *snn.Flatten:
			stages = append(stages, &annStageHW{kind: "flatten", name: v.Name()})
		case *snn.Output:
			stages = append(stages, &annStageHW{kind: "output", name: v.Name(), outW: v.W, outB: v.B})
		default:
			return nil, fmt.Errorf("arch: unsupported stage type %T", layer)
		}
	}
	return stages, nil
}

// RunANN executes one image through the same converted (normalized)
// network in ANN mode. Inputs are pixel intensities in [0, 1]; because
// the converted weights are normalized, every intermediate activation
// also lives in [0, 1].
//
// Deprecated: RunANN re-programs every core per call. Use Compile with
// WithMode(ModeANN) once, then Run/RunBatch per input; this shim is a
// Compile + one wear-mode Run.
func (ch *Chip) RunANN(c *convert.Converted, img *tensor.Tensor) (*RunResult, error) {
	sess, err := ch.Compile(c, WithMode(ModeANN), WithWear(true))
	if err != nil {
		return nil, err
	}
	//nebula:lint-ignore ctxflow deprecated shim has no ctx to thread; callers wanting deadlines use Compile+Run
	return sess.Run(context.Background(), img)
}
