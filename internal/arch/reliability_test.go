package arch

import (
	"context"
	"errors"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/device"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/reliability"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

func TestSuperTileRetireRelocatesSlot(t *testing.T) {
	p := device.DefaultParams()
	st := NewSuperTile(p, crossbar.Config{}, nil)
	// One 128×128 slot in use → 15 physical spares available.
	w := tensor.New(mapping.M, mapping.M)
	r := rng.New(3)
	for i := range w.Data() {
		w.Data()[i] = 2*r.Float64() - 1
	}
	if err := st.Program(w, 1); err != nil {
		t.Fatal(err)
	}
	in := make([]float64, mapping.M)
	for i := range in {
		in[i] = r.Float64()
	}
	before, err := st.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < mapping.ACsPerNC-1; round++ {
		if !st.Retire(0) {
			t.Fatalf("retirement %d refused with spares left", round)
		}
		after, err := st.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		// Reprogramming from stored pair targets round-trips exactly.
		for c := range after {
			if after[c] != before[c] {
				t.Fatalf("round %d col %d: %v != %v after retirement", round, c, after[c], before[c])
			}
		}
	}
	if st.Retire(0) {
		t.Fatal("retirement accepted with all physical arrays used or retired")
	}
}

func TestChipRunSNNWithProtectionMatchesClean(t *testing.T) {
	// At a 5% device fault rate the protected chip must classify like the
	// fault-free chip on the same samples.
	c, te := chipFixture(t)
	run := func(rel *reliability.Config) []int {
		chip := NewChip(device.DefaultParams(), crossbar.Config{}, rng.New(91))
		chip.Rel = rel
		r := rng.New(92)
		var preds []int
		for i := 0; i < 8; i++ {
			img, _ := te.Sample(i)
			res, err := chip.RunSNN(c, img, 40, snn.NewPoissonEncoder(1.0, r.Split()))
			if err != nil {
				t.Fatal(err)
			}
			preds = append(preds, res.Prediction)
		}
		return preds
	}
	clean := run(nil)
	prot := run(reliability.StudyConfig(0.05, reliability.ProtectSpareRemap))
	agree := 0
	for i := range clean {
		if clean[i] == prot[i] {
			agree++
		}
	}
	if agree < len(clean)-1 {
		t.Fatalf("protected chip diverged from clean: %v vs %v", prot, clean)
	}
}

func TestChipDegradedErrorSurfaces(t *testing.T) {
	// Write-verify cannot fix an extreme all-permanent fault population:
	// the run must refuse with a typed DegradedError, not compute garbage.
	c, te := chipFixture(t)
	chip := NewChip(device.DefaultParams(), crossbar.Config{}, rng.New(93))
	chip.Rel = &reliability.Config{
		Faults:     reliability.FaultProfile{DeviceRate: 0.3, PermanentFrac: 1, Mode: crossbar.StuckAP},
		Protection: reliability.ProtectWriteVerify,
		Policy:     reliability.DefaultPolicy(),
	}
	img, _ := te.Sample(0)
	_, err := chip.RunSNN(c, img, 5, snn.NewPoissonEncoder(1.0, rng.New(1)))
	var de *reliability.DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("want DegradedError, got %v", err)
	}
	if !de.Report.Degraded || de.Report.Unmitigated == 0 {
		t.Fatalf("degraded report incomplete: %+v", de.Report)
	}
	if !chip.Health().Degraded {
		t.Fatal("chip health does not record the degradation")
	}
}

func TestChipHealthResetAndAccumulation(t *testing.T) {
	c, te := chipFixture(t)
	chip := NewChip(device.DefaultParams(), crossbar.Config{}, rng.New(94))
	chip.Rel = reliability.StudyConfig(0.02, reliability.ProtectWriteVerify)
	img, _ := te.Sample(0)
	if _, err := chip.RunSNN(c, img, 3, snn.NewPoissonEncoder(1.0, rng.New(1))); err != nil {
		t.Fatal(err)
	}
	h1 := chip.Health()
	if h1.ArraysScanned == 0 || h1.DevicesFaulted == 0 {
		t.Fatalf("health empty after faulted run: %+v", h1)
	}
	if _, err := chip.RunSNN(c, img, 3, snn.NewPoissonEncoder(1.0, rng.New(1))); err != nil {
		t.Fatal(err)
	}
	if h2 := chip.Health(); h2.ArraysScanned <= h1.ArraysScanned {
		t.Fatalf("health did not accumulate: %+v vs %+v", h2, h1)
	}
	chip.ResetHealth()
	if h := chip.Health(); h != (reliability.Report{}) {
		t.Fatalf("reset left state: %+v", h)
	}
}

func TestHealthScanDeterministicAndScrub(t *testing.T) {
	var w models.Workload
	found := false
	for _, cand := range models.PaperWorkloads() {
		if cand.Name == "lenet5" {
			w, found = cand, true
		}
	}
	if !found {
		t.Fatal("lenet5 workload missing")
	}
	np := mapping.MapWorkload(w)
	rel := reliability.StudyConfig(0.05, reliability.ProtectSpareRemap)
	ctx := context.Background()
	r1, err := HealthScan(ctx, np, device.DefaultParams(), crossbar.Config{}, rel, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := HealthScan(ctx, np, device.DefaultParams(), crossbar.Config{}, rel, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("health scan not deterministic:\n%+v\n%+v", r1, r2)
	}
	if r1.ArraysScanned == 0 || r1.Repaired == 0 {
		t.Fatalf("scan did nothing: %+v", r1)
	}
	r3, err := HealthScan(ctx, np, device.DefaultParams(), crossbar.Config{}, rel, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Fatal("different seeds produced identical scans")
	}
}

func TestRetentionScrubResetsDriftAge(t *testing.T) {
	c, te := chipFixture(t)
	rel := &reliability.Config{
		Faults:     reliability.FaultProfile{DriftTauSteps: 200},
		Protection: reliability.ProtectWriteVerify,
		Policy:     reliability.DefaultPolicy(),
	}
	rel.Policy.ScrubEverySteps = 4
	chip := NewChip(device.DefaultParams(), crossbar.Config{}, rng.New(95))
	chip.Rel = rel
	img, _ := te.Sample(0)
	if _, err := chip.RunSNN(c, img, 10, snn.NewPoissonEncoder(1.0, rng.New(1))); err != nil {
		t.Fatal(err)
	}
	h := chip.Health()
	if h.Refreshes == 0 {
		t.Fatalf("no scrub refreshes over 10 steps at period 4: %+v", h)
	}
	// Scrubbing every 4 steps bounds the drift age below the period.
	if h.MaxDriftAge >= 4 {
		t.Fatalf("scrub did not bound drift age: %d", h.MaxDriftAge)
	}
	// Without scrubbing the age grows to the full window.
	chip2 := NewChip(device.DefaultParams(), crossbar.Config{}, rng.New(95))
	rel2 := *rel
	rel2.Policy.ScrubEverySteps = 0
	chip2.Rel = &rel2
	if _, err := chip2.RunSNN(c, img, 10, snn.NewPoissonEncoder(1.0, rng.New(1))); err != nil {
		t.Fatal(err)
	}
	if h2 := chip2.Health(); h2.MaxDriftAge != 10 {
		t.Fatalf("unscrubbed drift age %d, want 10", h2.MaxDriftAge)
	}
}
