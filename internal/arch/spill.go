package arch

import (
	"fmt"

	"repro/internal/crossbar"
	"repro/internal/device"
	"repro/internal/mapping"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// RUSpillCore executes a weighted stage whose receptive field exceeds one
// super-tile's 16M rows: the kernel matrix is sliced row-wise across
// several cores, each core's column currents are digitized (the ADC path
// of §IV-B3), and the partial sums are reduced and thresholded by digital
// spike logic at a routing unit — the dashed pipeline stages of Fig. 8.
//
// Unlike the in-core SNNCore, membrane potentials here live in RU
// registers rather than neuron devices; that is exactly the cost NEBULA's
// mapping tries to avoid, and the reason spill stages are more expensive
// in the energy model.
type RUSpillCore struct {
	P   device.Params
	Cfg crossbar.Config
	VTh float64

	blocks    []*SuperTile
	rowBounds []int // block b holds rows [rowBounds[b], rowBounds[b+1])
	kernels   int
	// membranes holds per-position, per-kernel RU registers.
	membranes []float64
	// ADCBits quantizes each digitized partial sum (0 disables
	// quantization; the paper uses 4-bit converters with per-layer
	// scaling handled by the peripheral circuitry).
	ADCBits int

	Stats PipelineStats
	// ADCConversions counts partial-sum digitizations.
	ADCConversions int64

	noise *rng.Rand
}

// NewRUSpillCore allocates an unprogrammed spill core.
func NewRUSpillCore(p device.Params, cfg crossbar.Config, vth float64, noise *rng.Rand) *RUSpillCore {
	return &RUSpillCore{P: p, Cfg: cfg, VTh: vth, noise: noise}
}

// Program slices the Rf×K kernel matrix across as many super-tiles as the
// receptive field requires and allocates RU membrane registers for
// `positions` time-multiplexed outputs.
func (c *RUSpillCore) Program(km *tensor.Tensor, wmax float64, positions int) error {
	if positions < 1 {
		return fmt.Errorf("arch: positions must be ≥ 1")
	}
	rf, k := km.Dim(0), km.Dim(1)
	sets := (k + mapping.M - 1) / mapping.M
	if sets > mapping.ACsPerNC {
		return fmt.Errorf("arch: %d kernels exceed one core's column capacity; column spill is not supported by the chip runner", k)
	}
	// Rows per block: bounded by the super-tile's AC budget given the
	// column sets the block must also carry.
	maxStack := mapping.ACsPerNC / sets
	blockRows := maxStack * mapping.M
	if blockRows > mapping.MaxRowsPerNC {
		blockRows = mapping.MaxRowsPerNC
	}
	c.blocks = nil
	c.rowBounds = []int{0}
	for lo := 0; lo < rf; lo += blockRows {
		hi := lo + blockRows
		if hi > rf {
			hi = rf
		}
		st := NewSuperTile(c.P, c.Cfg, c.splitNoise())
		sub := tensor.New(hi-lo, k)
		for r := lo; r < hi; r++ {
			for col := 0; col < k; col++ {
				sub.Set(km.At(r, col), r-lo, col)
			}
		}
		if err := st.Program(sub, wmax); err != nil {
			return err
		}
		c.blocks = append(c.blocks, st)
		c.rowBounds = append(c.rowBounds, hi)
	}
	c.kernels = k
	c.membranes = make([]float64, k*positions)
	return nil
}

// configure is the restore-path half of Program: the identical row
// partition and per-block switch geometry, with no device writes — the
// image loader imports each block's recorded state afterwards.
func (c *RUSpillCore) configure(km *tensor.Tensor, wmax float64, positions int) error {
	if positions < 1 {
		return fmt.Errorf("arch: positions must be ≥ 1")
	}
	rf, k := km.Dim(0), km.Dim(1)
	sets := (k + mapping.M - 1) / mapping.M
	if sets > mapping.ACsPerNC {
		return fmt.Errorf("arch: %d kernels exceed one core's column capacity; column spill is not supported by the chip runner", k)
	}
	maxStack := mapping.ACsPerNC / sets
	blockRows := maxStack * mapping.M
	if blockRows > mapping.MaxRowsPerNC {
		blockRows = mapping.MaxRowsPerNC
	}
	c.blocks = nil
	c.rowBounds = []int{0}
	for lo := 0; lo < rf; lo += blockRows {
		hi := lo + blockRows
		if hi > rf {
			hi = rf
		}
		st := NewSuperTile(c.P, c.Cfg, c.splitNoise())
		if err := st.Configure(hi-lo, k, wmax); err != nil {
			return err
		}
		c.blocks = append(c.blocks, st)
		c.rowBounds = append(c.rowBounds, hi)
	}
	c.kernels = k
	c.membranes = make([]float64, k*positions)
	return nil
}

func (c *RUSpillCore) splitNoise() *rng.Rand {
	if c.noise == nil {
		return nil
	}
	return c.noise.Split()
}

// Blocks returns the number of spilled cores.
func (c *RUSpillCore) Blocks() int { return len(c.blocks) }

// Reset clears the RU membrane registers and counters.
func (c *RUSpillCore) Reset() {
	for i := range c.membranes {
		c.membranes[i] = 0
	}
	c.Stats = PipelineStats{}
	c.ADCConversions = 0
}

// StepAt advances one timestep at output position pos: every block
// evaluates its row slice, each partial sum is digitized, the RU reduces
// them and updates the digital membranes, and threshold crossings emit
// spikes (reset by subtraction, matching the converted network).
func (c *RUSpillCore) StepAt(pos int, spikes []float64, bias []float64) ([]float64, error) {
	if c.blocks == nil {
		return nil, fmt.Errorf("arch: spill core not programmed")
	}
	if (pos+1)*c.kernels > len(c.membranes) {
		return nil, fmt.Errorf("arch: position %d beyond allocated registers", pos)
	}
	if len(spikes) != c.rowBounds[len(c.rowBounds)-1] {
		return nil, fmt.Errorf("arch: input length %d, want %d", len(spikes), c.rowBounds[len(c.rowBounds)-1])
	}
	c.Stats.Cycles++ // fetch
	c.Stats.EDRAMReads++
	total := make([]float64, c.kernels)
	for b, st := range c.blocks {
		part, err := st.Evaluate(spikes[c.rowBounds[b]:c.rowBounds[b+1]])
		if err != nil {
			return nil, err
		}
		// Digitize the block's partial sums (one conversion per kernel).
		for kIdx, v := range part {
			total[kIdx] += c.quantizePartial(v)
		}
		c.ADCConversions += int64(c.kernels)
		c.Stats.Cycles++ // one digitization cycle per block (≤128/cycle)
	}
	c.Stats.Evaluations++
	c.Stats.Cycles++ // reduce + activate at the RU
	bank := c.membranes[pos*c.kernels : (pos+1)*c.kernels]
	out := make([]float64, c.kernels)
	for kIdx := range bank {
		inc := total[kIdx]
		if bias != nil && kIdx < len(bias) {
			inc += bias[kIdx]
		}
		bank[kIdx] += inc
		if bank[kIdx] >= c.VTh {
			out[kIdx] = 1
			bank[kIdx] -= c.VTh
			c.Stats.Spikes++
		}
	}
	c.Stats.Cycles++ // write back
	c.Stats.EDRAMWrites++
	return out, nil
}

// quantizePartial models the 4-bit digitization of a partial sum: the
// converter covers ±1 in weight-normalized units with 2^bits levels.
func (c *RUSpillCore) quantizePartial(v float64) float64 {
	if c.ADCBits <= 0 {
		return v
	}
	levels := float64(int(1) << c.ADCBits)
	step := 2.0 / levels
	q := float64(int(v/step+0.5*sign(v))) * step
	if q > 1 {
		q = 1
	}
	if q < -1 {
		q = -1
	}
	return q
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
