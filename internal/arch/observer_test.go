package arch

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"

	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/reliability"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// obsExport renders a recorder snapshot into the two exchange formats
// and returns their concatenation, so one byte comparison covers both.
func obsExport(t *testing.T, rec *obs.Recorder) []byte {
	t.Helper()
	var b bytes.Buffer
	snap := rec.Snapshot()
	if err := snap.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// assertObsDeterminism checks the shard-merge contract: the exported
// counter snapshot of a parallel RunBatch is bitwise identical to a
// sequential loop of Run calls over the same inputs, at every
// parallelism level the acceptance criteria name.
func assertObsDeterminism(t *testing.T, c *convert.Converted, imgs []*tensor.Tensor, opts ...Option) {
	t.Helper()
	ctx := context.Background()
	recSeq := obs.NewRecorder()
	seq := compileSession(t, c, append(append([]Option(nil), opts...), WithObserver(recSeq))...)
	for _, img := range imgs {
		if _, err := seq.Run(ctx, img); err != nil {
			t.Fatal(err)
		}
	}
	want := obsExport(t, recSeq)
	if recSeq.Runs() != int64(len(imgs)) {
		t.Fatalf("sequential recorder counted %d runs, want %d", recSeq.Runs(), len(imgs))
	}
	for _, par := range []int{1, 4, runtime.NumCPU()} {
		rec := obs.NewRecorder()
		sess := compileSession(t, c, append(append([]Option(nil), opts...),
			WithObserver(rec), WithParallelism(par))...)
		if _, err := sess.RunBatch(ctx, imgs); err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		got := obsExport(t, rec)
		if !bytes.Equal(got, want) {
			t.Fatalf("parallelism %d: exported snapshot not bitwise identical to sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
				par, want, got)
		}
	}
}

func TestObserverSnapshotDeterminismANN(t *testing.T) {
	c, te := chipFixture(t)
	assertObsDeterminism(t, c, sessionImages(t, te, 8),
		WithMode(ModeANN), WithSeed(42))
}

func TestObserverSnapshotDeterminismSNN(t *testing.T) {
	c, te := chipFixture(t)
	assertObsDeterminism(t, c, sessionImages(t, te, 8),
		WithMode(ModeSNN), WithTimesteps(20), WithSeed(42))
}

func TestObserverSnapshotDeterminismHybrid(t *testing.T) {
	c, te := chipFixture(t)
	assertObsDeterminism(t, c, sessionImages(t, te, 8),
		WithMode(ModeHybrid), WithHybridSplit(1), WithTimesteps(20), WithSeed(42))
}

// TestObserverZeroEffectOnOutputs pins the zero-cost guarantee's
// semantic half: attaching a recorder must not perturb a single output
// bit (the recorder only reads counters the engine already maintains).
func TestObserverZeroEffectOnOutputs(t *testing.T) {
	c, te := chipFixture(t)
	imgs := sessionImages(t, te, 4)
	ctx := context.Background()
	opts := []Option{WithMode(ModeSNN), WithTimesteps(20), WithSeed(42)}
	plain := compileSession(t, c, opts...)
	observed := compileSession(t, c, append(append([]Option(nil), opts...),
		WithObserver(obs.NewRecorder()))...)
	for i, img := range imgs {
		a, err := plain.Run(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		b, err := observed.Run(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		ad, bd := a.Output.Data(), b.Output.Data()
		for j := range ad {
			if ad[j] != bd[j] {
				t.Fatalf("input %d col %d: observed run diverged: %v != %v", i, j, bd[j], ad[j])
			}
		}
		if a.Spikes != b.Spikes || a.Cycles != b.Cycles {
			t.Fatalf("input %d: stats diverged under observation: %+v vs %+v", i, b, a)
		}
	}
}

// TestObserverCountersMatchRunResult cross-checks the per-stage
// attribution against the engine's own aggregate counters.
func TestObserverCountersMatchRunResult(t *testing.T) {
	c, te := chipFixture(t)
	ctx := context.Background()
	rec := obs.NewRecorder()
	sess := compileSession(t, c, WithMode(ModeSNN), WithTimesteps(20), WithSeed(42),
		WithObserver(rec))
	img, _ := te.Sample(0)
	res, err := sess.Run(ctx, img)
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	tot := snap.Totals
	if tot.Cycles != res.Cycles || tot.NoCPackets != res.NoCPackets ||
		tot.NoCHops != res.NoCHops || tot.ADCConversions != res.ADCConversions ||
		tot.EDRAMAccesses != res.EDRAMAccesses {
		t.Fatalf("snapshot totals %+v disagree with RunResult %+v", tot, res)
	}
	// Stage buckets include the encoder's input spikes on top of the
	// hardware spikes the RunResult counts.
	if tot.SpikesEmitted < res.Spikes {
		t.Fatalf("total spikes %d < hardware spikes %d", tot.SpikesEmitted, res.Spikes)
	}
	if tot.MACReads != res.Crossbar.MACs || tot.ActiveRowSum != res.Crossbar.ActiveRowSum {
		t.Fatalf("crossbar attribution %+v disagrees with run stats %+v", tot, res.Crossbar)
	}
	if snap.Mode != "snn" || len(snap.Stages) == 0 || snap.Stages[0].Name != "input" {
		t.Fatalf("unexpected layout in snapshot: %+v", snap)
	}
}

// TestObserverProgramRecord checks that compile-time work — programming
// energy and the BIST/repair pipeline — lands in the program record.
func TestObserverProgramRecord(t *testing.T) {
	c, _ := chipFixture(t)
	chip := NewChip(device.DefaultParams(), crossbar.Config{}, rng.New(93))
	chip.Rel = &reliability.Config{
		Faults:     reliability.FaultProfile{DeviceRate: 0.002, PermanentFrac: 1, Mode: crossbar.StuckAP},
		Protection: reliability.ProtectSpareRemap,
		Policy:     reliability.DefaultPolicy(),
	}
	rec := obs.NewRecorder()
	if _, err := chip.Compile(c, WithMode(ModeSNN), WithTimesteps(5), WithObserver(rec)); err != nil {
		t.Fatal(err)
	}
	p := rec.Snapshot().Program
	if p.Compiles != 1 {
		t.Fatalf("Compiles = %d, want 1", p.Compiles)
	}
	if p.ProgramEnergyFJ <= 0 {
		t.Fatalf("ProgramEnergyFJ = %v, want > 0", p.ProgramEnergyFJ)
	}
	if p.BISTReads == 0 {
		t.Fatalf("BISTReads = 0, want the scan's read count")
	}
	if p.FaultsFound == 0 {
		t.Fatalf("FaultsFound = 0 under an injected fault profile")
	}
}

// TestObserverBindRejectsSecondSchema: one recorder serves many
// sessions only when their counter schemas agree; a different pipeline
// shape must be refused at Compile.
func TestObserverBindRejectsSecondSchema(t *testing.T) {
	c, _ := chipFixture(t)
	rec := obs.NewRecorder()
	if _, err := sessionChip().Compile(c, WithMode(ModeSNN), WithTimesteps(5), WithObserver(rec)); err != nil {
		t.Fatal(err)
	}
	// Same model, same schema: accepted.
	if _, err := sessionChip().Compile(c, WithMode(ModeSNN), WithTimesteps(5), WithObserver(rec)); err != nil {
		t.Fatalf("re-bind with identical schema: %v", err)
	}
	// ANN mode drops the input bucket and relabels domains: refused.
	_, err := sessionChip().Compile(c, WithMode(ModeANN), WithObserver(rec))
	if err == nil {
		t.Fatal("bind with a different schema succeeded")
	}
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CompileError, got %v", err)
	}
}

// TestObserverTrace checks the bounded ring: events carry run ordinals
// assigned at merge time and the ring keeps only the newest entries.
func TestObserverTrace(t *testing.T) {
	c, te := chipFixture(t)
	ctx := context.Background()
	rec := obs.NewRecorder(obs.WithTrace(16))
	sess := compileSession(t, c, WithMode(ModeSNN), WithTimesteps(5), WithSeed(42),
		WithObserver(rec))
	if _, err := sess.RunBatch(ctx, sessionImages(t, te, 3)); err != nil {
		t.Fatal(err)
	}
	ev := rec.Trace()
	if len(ev) != 16 {
		t.Fatalf("trace length %d, want ring capacity 16", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		a, b := ev[i-1], ev[i]
		if b.Run < a.Run || (b.Run == a.Run && b.Timestep < a.Timestep) {
			t.Fatalf("trace not in run/timestep order at %d: %+v then %+v", i, a, b)
		}
	}
	if last := ev[len(ev)-1]; last.Run != 2 {
		t.Fatalf("newest trace event from run %d, want 2", last.Run)
	}
}

// cancellingEncoder cancels a context on its n-th Encode call, which
// lands the cancellation inside a spiking run's timestep loop.
type cancellingEncoder struct {
	inner  snn.Encoder
	cancel context.CancelFunc
	after  int
	calls  int
}

func (e *cancellingEncoder) Encode(img *tensor.Tensor) *tensor.Tensor {
	e.calls++
	if e.calls == e.after {
		e.cancel()
	}
	return e.inner.Encode(img)
}

// TestRunCancelMidTimestep: cancellation raised inside a run's timestep
// loop surfaces promptly as ctx.Err() and the aborted run's shard is
// discarded — the recorder never sees a partial run.
func TestRunCancelMidTimestep(t *testing.T) {
	c, te := chipFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := obs.NewRecorder()
	enc := &cancellingEncoder{inner: snn.NewPoissonEncoder(1.0, rng.New(1)), cancel: cancel, after: 5}
	sess := compileSession(t, c, WithMode(ModeSNN), WithTimesteps(20),
		WithSharedEncoder(enc), WithObserver(rec))
	img, _ := te.Sample(0)
	if _, err := sess.Run(ctx, img); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run cancelled mid-timestep: got %v, want context.Canceled", err)
	}
	if enc.calls != 5 {
		t.Fatalf("encoder ran %d timesteps after cancellation, want 5 (prompt exit)", enc.calls)
	}
	if rec.Runs() != 0 {
		t.Fatalf("recorder merged %d runs from a cancelled inference, want 0", rec.Runs())
	}
}

// TestRunBatchCancelMidBatch: a cancellation landing inside one batch
// item aborts the whole batch with ctx.Err(), and per the discard
// contract none of the batch's runs — not even completed ones — reach
// the recorder.
func TestRunBatchCancelMidBatch(t *testing.T) {
	c, te := chipFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := obs.NewRecorder()
	const T = 10
	// Cancel inside input 1's fifth timestep: input 0 completes first.
	enc := &cancellingEncoder{inner: snn.NewPoissonEncoder(1.0, rng.New(1)), cancel: cancel, after: T + 5}
	sess := compileSession(t, c, WithMode(ModeSNN), WithTimesteps(T),
		WithSharedEncoder(enc), WithObserver(rec))
	_, err := sess.RunBatch(ctx, sessionImages(t, te, 4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunBatch cancelled mid-batch: got %v, want context.Canceled", err)
	}
	if enc.calls != T+5 {
		t.Fatalf("encoder ran %d timesteps after cancellation, want %d (prompt exit)", enc.calls, T+5)
	}
	if rec.Runs() != 0 {
		t.Fatalf("recorder kept %d runs from an aborted batch, want 0 (discard contract)", rec.Runs())
	}
}

// TestRunBatchErrorDiscardsShards: a failing input in a parallel batch
// abandons every shard, and the recorder stays usable for the next
// (successful) batch.
func TestRunBatchErrorDiscardsShards(t *testing.T) {
	c, te := chipFixture(t)
	ctx := context.Background()
	rec := obs.NewRecorder()
	sess := compileSession(t, c, WithMode(ModeANN), WithSeed(42),
		WithObserver(rec), WithParallelism(4))
	imgs := sessionImages(t, te, 4)
	bad := append(append([]*tensor.Tensor(nil), imgs...), tensor.New(3))
	if _, err := sess.RunBatch(ctx, bad); err == nil {
		t.Fatal("batch with a malformed input succeeded")
	}
	if rec.Runs() != 0 {
		t.Fatalf("recorder kept %d runs from a failed batch, want 0", rec.Runs())
	}
	if _, err := sess.RunBatch(ctx, imgs); err != nil {
		t.Fatalf("batch after failure: %v", err)
	}
	if rec.Runs() != int64(len(imgs)) {
		t.Fatalf("recorder counted %d runs, want %d", rec.Runs(), len(imgs))
	}
}
