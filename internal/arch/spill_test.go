package arch

import (
	"math"
	"testing"

	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

func TestRUSpillCoreProgramBlocks(t *testing.T) {
	c := NewRUSpillCore(device.DefaultParams(), crossbar.Config{}, 1.0, nil)
	// 3000 rows × 64 kernels: 1 column set → 16 ACs of rows per block
	// (2048) → 2 blocks.
	km := tensor.New(3000, 64)
	if err := c.Program(km, 1, 1); err != nil {
		t.Fatal(err)
	}
	if c.Blocks() != 2 {
		t.Fatalf("blocks %d, want 2", c.Blocks())
	}
	// 300 rows × 600 kernels: 5 column sets → 3 stacks per block (384
	// rows) → 1 block.
	c2 := NewRUSpillCore(device.DefaultParams(), crossbar.Config{}, 1.0, nil)
	if err := c2.Program(tensor.New(300, 600), 1, 1); err != nil {
		t.Fatal(err)
	}
	if c2.Blocks() != 1 {
		t.Fatalf("blocks %d, want 1", c2.Blocks())
	}
}

func TestRUSpillCoreRejectsColumnSpill(t *testing.T) {
	c := NewRUSpillCore(device.DefaultParams(), crossbar.Config{}, 1.0, nil)
	if err := c.Program(tensor.New(100, 3000), 1, 1); err == nil {
		t.Fatal("column spill accepted")
	}
}

func TestRUSpillCoreMatchesInCoreDynamics(t *testing.T) {
	// A spill core with quantization disabled must reproduce the in-core
	// SNN dynamics on a kernel that happens to fit both.
	r := rng.New(4)
	const rf, k = 2100, 32 // forces 2 blocks in the spill core
	km := tensor.New(rf, k)
	for i := range km.Data() {
		km.Data()[i] = (2*r.Float64() - 1) * 0.05
	}
	// An off-grid threshold avoids exact membrane/threshold ties (the
	// quantized weight grid makes sums land exactly on 1.0, where
	// floating-point summation order would decide the comparison).
	const vth = 0.9973
	sp := NewRUSpillCore(device.DefaultParams(), crossbar.Config{}, vth, nil)
	if err := sp.Program(km, 1, 1); err != nil {
		t.Fatal(err)
	}

	// Software reference with identical device quantization: use the
	// crossbar-quantized weights.
	ref := snn.NewDense("ref", quantizedTranspose(km, 1), nil, vth, snn.ResetBySubtraction)

	for step := 0; step < 30; step++ {
		in := make([]float64, rf)
		for i := range in {
			if r.Bernoulli(0.2) {
				in[i] = 1
			}
		}
		hw, err := sp.StepAt(0, in, nil)
		if err != nil {
			t.Fatal(err)
		}
		sw := ref.Step(tensor.FromSlice(append([]float64(nil), in...), rf))
		for kIdx := 0; kIdx < k; kIdx++ {
			if hw[kIdx] != sw.Data()[kIdx] {
				t.Fatalf("step %d kernel %d: hw %v vs sw %v", step, kIdx, hw[kIdx], sw.Data()[kIdx])
			}
		}
	}
	if sp.ADCConversions == 0 {
		t.Fatal("spill path recorded no conversions")
	}
}

// quantizedTranspose returns the device-quantized out×in weight matrix
// corresponding to an in×out kernel matrix.
func quantizedTranspose(km *tensor.Tensor, wmax float64) *tensor.Tensor {
	p := device.DefaultParams()
	states := float64(p.States() - 1)
	rf, k := km.Dim(0), km.Dim(1)
	out := tensor.New(k, rf)
	for r := 0; r < rf; r++ {
		for c := 0; c < k; c++ {
			v := km.At(r, c)
			mag := math.Abs(v)
			if mag > wmax {
				mag = wmax
			}
			q := math.Round(mag/wmax*states) / states * wmax
			if v < 0 {
				q = -q
			}
			out.Set(q, c, r)
		}
	}
	return out
}

func TestChipRunsSpilledDenseStage(t *testing.T) {
	// A network with a >2048-input dense layer executes end-to-end on the
	// chip via the RU spill path.
	r := rng.New(33)
	spec := dataset.Spec{Name: "wide", Classes: 4, Channels: 12, Size: 16, Noise: 0.1, Jitter: 1}
	d := dataset.Generate(spec, 60, 9)
	net := nn.NewNetwork("wide-mlp",
		nn.NewFlatten("flat"),
		nn.NewLinear("fc1", 12*16*16, 32, r), // Rf = 3072 > 2048
		nn.NewReLU("relu1"),
		nn.NewLinear("fc2", 32, 4, r),
	)
	conv, err := convert.Convert(net, d, convert.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The mapping agrees this layer spills onto the ADC path.
	if FitsInCore(3072, 32) {
		t.Fatal("test premise broken: layer fits one core")
	}
	fcShape := models.LayerShape{Kind: models.FC, InC: 3072, OutC: 32, InH: 1, InW: 1}
	if !mapping.Map(fcShape).NeedsADC() {
		t.Fatal("mapping disagrees: fc1 should need the ADC path")
	}

	chip := NewChip(device.DefaultParams(), crossbar.Config{}, nil)
	img, _ := d.Sample(0)
	res, err := chip.RunSNN(conv, img, 20, snn.NewPoissonEncoder(1.0, rng.New(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.ADCConversions == 0 {
		t.Fatal("spilled stage did not digitize partial sums")
	}
	if res.Output.Size() != 4 {
		t.Fatalf("output size %d", res.Output.Size())
	}
}
