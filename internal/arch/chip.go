package arch

import (
	"context"
	"fmt"

	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/device"
	"repro/internal/noc"
	"repro/internal/reliability"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// Chip executes converted networks on simulated NEBULA hardware: one
// neural core per weighted stage (dedicated SNN or ANN cores, Fig. 6(b)),
// pooling in the NU datapath, digital accumulation at the routing units
// for the read-out, and a mesh NoC carrying inter-stage spikes.
//
// The chip consumes the output of convert.Convert, whose weights are
// normalized so that every IF threshold is 1 and activations live in
// [0, 1] — exactly the operating range of the 4-bit drivers and the
// saturating MTJ neurons.
type Chip struct {
	P    device.Params
	Cfg  crossbar.Config
	Mesh *noc.Mesh
	// WMax is the crossbar weight range per synapse pair; normalized
	// kernels are clipped to ±WMax at programming time.
	WMax float64
	// FaultRate injects stuck-at device faults into every programmed
	// super-tile (requires a noise generator). FaultMode selects the
	// stuck state. This is the legacy uniform-stuck-at path; the full
	// fault model lives behind Rel.
	FaultRate float64
	FaultMode crossbar.FaultMode
	// Rel, when non-nil, enables the reliability subsystem: the richer
	// fault profile is injected into every programmed core (spares
	// included), the BIST/repair pipeline runs per the protection level,
	// and runs return a *reliability.DegradedError when mitigation is
	// exhausted. Requires a noise generator for injection.
	Rel *reliability.Config

	noise  *rng.Rand
	health reliability.Report
	// restore marks a chip being rehydrated from a chip image: the build
	// path lays out geometry only (no programming writes, no fault
	// injection, no BIST) and the loader imports the recorded device
	// state afterwards.
	restore bool
	// noiseFP, when set, pins the noise-stream fingerprint recorded in
	// images: a rehydrated chip carries a sentinel stream whose state is
	// not the saved one, so re-saving must emit the original fingerprint
	// for the save→load→save fixed point (and the cache key) to hold.
	noiseFP    uint64
	noiseFPSet bool
}

// NewChip builds a chip with the given device and crossbar configuration.
// A nil noise generator disables stochastic non-idealities.
func NewChip(p device.Params, cfg crossbar.Config, noise *rng.Rand) *Chip {
	return &Chip{P: p, Cfg: cfg, Mesh: noc.New(noc.DefaultConfig()), WMax: 1.0, noise: noise}
}

// stageHW is the hardware realization of one converted stage.
type stageHW struct {
	kind string
	// name is the converted layer's name, the key counter snapshots and
	// trace events carry.
	name string
	// snnCore / annCore hold the crossbars for weighted stages (only one
	// is populated depending on the run mode).
	snnCore *SNNCore
	annCore *ANNCore
	// conv geometry (kind == "conv")
	kh, kw, stride, pad int
	inC, outC, groups   int
	// pool (kind == "pool")
	pool *snn.AvgPoolIF
	// output weights (kind == "output") — digitally accumulated at RUs.
	outW, outB *tensor.Tensor
	outAcc     *tensor.Tensor
	// spill holds the multi-core ADC-path realization of a dense stage
	// whose receptive field exceeds one super-tile (nil otherwise).
	spill *RUSpillCore
	// bias currents injected alongside the crossbar evaluation.
	bias *tensor.Tensor
	// kmProgram programs the kernel matrix once the number of
	// time-multiplexed positions is known (conv stages; invoked by
	// Compile via programPositions).
	kmProgram func(positions int) error
}

// RunResult reports a chip-level inference.
type RunResult struct {
	Output     *tensor.Tensor
	Prediction int
	// Cycles is the total pipeline cycle count across cores.
	Cycles int64
	// Spikes is the total hardware spike count (SNN mode).
	Spikes int64
	// NoCPackets counts inter-stage transfers.
	NoCPackets int64
	// ADCConversions counts spill-path partial-sum digitizations.
	ADCConversions int64
	// NoCHops counts the mesh hops traversed by inter-stage packets.
	NoCHops int64
	// EDRAMAccesses counts eDRAM transactions (pipeline stages 1 and 3).
	EDRAMAccesses int64
	// SilentStageSkips counts stage-timesteps the event-driven engine
	// skipped entirely because the stage's input spike plane was zero.
	// Skipped stages charge no cycles, packets or accesses — the
	// hardware semantics of an event-driven chip (PAPER.md §IV).
	SilentStageSkips int64
	// SpikesSkipped counts silent input slots not driven on the
	// event-driven path (plane length minus popcount per stage step).
	SpikesSkipped int64
	// PackedWords counts packed spike-plane words processed.
	PackedWords int64
	// RepeatReads counts crossbar reads served from the timestep-repeat
	// cache; the replayed read's stats are re-charged, so results and
	// crossbar accounting are identical to a cache-free event run.
	RepeatReads int64
	// Crossbar collects the run's crossbar activity on the session
	// engine's frozen-conductance path (wear-mode runs accumulate into
	// the arrays' own counters instead, as the deprecated entry points
	// always did).
	Crossbar crossbar.Stats
}

// buildSNN lowers a converted network onto hardware SNN cores.
func (ch *Chip) buildSNN(c *convert.Converted) ([]*stageHW, error) {
	var stages []*stageHW
	for _, st := range c.Stages {
		layer := c.SNN.Layers[st.SNNLayer]
		switch v := layer.(type) {
		case *snn.Conv:
			outC := v.W.Dim(0)
			kh, kw := v.W.Dim(2), v.W.Dim(3)
			gcIn := v.W.Dim(1)
			inC := gcIn * v.Groups
			rf := gcIn * kh * kw
			if !FitsInCore(rf, outC) {
				return nil, fmt.Errorf("arch: stage %s (Rf=%d, K=%d) does not fit one core; multi-core spill is modeled analytically in package energy", v.Name(), rf, outC)
			}
			// Kernel matrix: Rf×outC per Fig. 5. For grouped convolutions
			// the matrix is block-diagonal over groups; the simulator
			// keeps one matrix per group and routes each group's input
			// window to its block (the morphable switches isolate the
			// per-group column ranges).
			km := v.W.Reshape(outC, rf).Transpose()
			core := NewSNNCore(ch.P, ch.coreCfg(), 1.0, ch.split())
			// Positions allocated lazily at run time (depends on input size).
			s := &stageHW{kind: "conv", name: v.Name(), snnCore: core, kh: kh, kw: kw,
				stride: v.Stride, pad: v.Pad, inC: inC, outC: outC, groups: v.Groups}
			s.kmProgram = func(positions int) error { return ch.programSNN(core, km, positions) }
			s.bias = v.B
			stages = append(stages, s)
		case *snn.Dense:
			km := v.W.Transpose() // in×out
			rf, outC := km.Dim(0), km.Dim(1)
			if !FitsInCore(rf, outC) {
				// Multi-core spill: digitized partial sums reduced at a
				// routing unit (§IV-B3's Rf > 16M path).
				sp := NewRUSpillCore(ch.P, ch.coreCfg(), 1.0, ch.split())
				sp.ADCBits = 8
				if err := ch.programSpill(sp, km, 1); err != nil {
					return nil, err
				}
				for _, st := range sp.blocks {
					if err := ch.prepare(st); err != nil {
						return nil, err
					}
				}
				s := &stageHW{kind: "dense", name: v.Name(), spill: sp, outC: outC}
				s.bias = v.B
				stages = append(stages, s)
				continue
			}
			core := NewSNNCore(ch.P, ch.coreCfg(), 1.0, ch.split())
			if err := ch.programSNN(core, km, 1); err != nil {
				return nil, err
			}
			if err := ch.prepare(core.ST); err != nil {
				return nil, err
			}
			s := &stageHW{kind: "dense", name: v.Name(), snnCore: core, outC: outC}
			s.bias = v.B
			stages = append(stages, s)
		case *snn.AvgPoolIF:
			stages = append(stages, &stageHW{kind: "pool", name: v.Name(),
				pool: snn.NewAvgPoolIF(v.Name(), v.K, v.Stride, 1.0, snn.ResetToZero)})
		case *snn.Flatten:
			stages = append(stages, &stageHW{kind: "flatten", name: v.Name()})
		case *snn.Output:
			stages = append(stages, &stageHW{kind: "output", name: v.Name(), outW: v.W, outB: v.B})
		default:
			return nil, fmt.Errorf("arch: unsupported stage type %T", layer)
		}
	}
	return stages, nil
}

func (ch *Chip) split() *rng.Rand {
	if ch.noise == nil {
		return nil
	}
	return ch.noise.Split()
}

// injectFaults applies the chip's configured stuck-at fault rate to a
// freshly programmed super-tile (the legacy uniform model).
func (ch *Chip) injectFaults(st *SuperTile) {
	if ch.FaultRate > 0 && ch.noise != nil {
		st.InjectStuckFaults(ch.noise.Split(), ch.FaultRate, ch.FaultMode)
	}
}

// coreCfg derives the crossbar configuration for a new core: the chip's
// base config plus the reliability knobs (spare lines under
// sparing+remap, read disturb and drift from the fault profile).
func (ch *Chip) coreCfg() crossbar.Config {
	cfg := ch.Cfg
	if ch.Rel != nil {
		if ch.Rel.Protection >= reliability.ProtectSpareRemap {
			cfg.SpareRows = ch.Rel.Policy.SpareRows
			cfg.SpareCols = ch.Rel.Policy.SpareCols
		}
		cfg.ReadDisturbProb = ch.Rel.Faults.ReadDisturbProb
		cfg.DriftTauSteps = ch.Rel.Faults.DriftTauSteps
	}
	return cfg
}

// prepare post-processes a freshly programmed super-tile: under the
// reliability subsystem it injects the fault profile and runs the
// protection pipeline (possibly refusing with a DegradedError);
// otherwise it applies the legacy uniform fault rate. A restoring chip
// skips both — the imported state already carries the injected faults
// and every repair the original compile performed.
func (ch *Chip) prepare(st *SuperTile) error {
	if ch.restore {
		return nil
	}
	if ch.Rel != nil {
		return ch.protect(st)
	}
	ch.injectFaults(st)
	return nil
}

// programSNN routes a spiking core's kernel programming through the
// restore switch: a restoring chip configures geometry and neuron banks
// only, leaving the device state to the image loader.
func (ch *Chip) programSNN(core *SNNCore, km *tensor.Tensor, positions int) error {
	if ch.restore {
		return core.configure(km, ch.WMax, positions)
	}
	return core.Program(km, ch.WMax, positions)
}

// programANN is programSNN for continuous cores.
func (ch *Chip) programANN(core *ANNCore, km *tensor.Tensor) error {
	if ch.restore {
		return core.configure(km, ch.WMax)
	}
	return core.Program(km, ch.WMax)
}

// programSpill is programSNN for spill cores.
func (ch *Chip) programSpill(sp *RUSpillCore, km *tensor.Tensor, positions int) error {
	if ch.restore {
		return sp.configure(km, ch.WMax, positions)
	}
	return sp.Program(km, ch.WMax, positions)
}

// RunSNN executes T Poisson-encoded timesteps of one image through the
// hardware. Conv stages time-multiplex output positions over their core
// with per-position replica neurons; the membrane of every neuron lives
// in its device between timesteps.
//
// Deprecated: RunSNN re-compiles the whole pipeline per call. Use
// Compile with WithMode(ModeSNN) once, then Run/RunBatch per input; this
// shim is a Compile + one wear-mode Run with the caller's encoder.
func (ch *Chip) RunSNN(c *convert.Converted, img *tensor.Tensor, T int, enc *snn.PoissonEncoder) (*RunResult, error) {
	sess, err := ch.Compile(c,
		WithMode(ModeSNN),
		WithTimesteps(T),
		WithSharedEncoder(enc),
		WithInputShape(img.Shape()...),
		WithWear(true))
	if err != nil {
		return nil, err
	}
	//nebula:lint-ignore ctxflow deprecated shim has no ctx to thread; callers wanting deadlines use Compile+Run
	return sess.Run(context.Background(), img)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
