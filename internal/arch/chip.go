package arch

import (
	"fmt"

	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/device"
	"repro/internal/noc"
	"repro/internal/reliability"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// Chip executes converted networks on simulated NEBULA hardware: one
// neural core per weighted stage (dedicated SNN or ANN cores, Fig. 6(b)),
// pooling in the NU datapath, digital accumulation at the routing units
// for the read-out, and a mesh NoC carrying inter-stage spikes.
//
// The chip consumes the output of convert.Convert, whose weights are
// normalized so that every IF threshold is 1 and activations live in
// [0, 1] — exactly the operating range of the 4-bit drivers and the
// saturating MTJ neurons.
type Chip struct {
	P    device.Params
	Cfg  crossbar.Config
	Mesh *noc.Mesh
	// WMax is the crossbar weight range per synapse pair; normalized
	// kernels are clipped to ±WMax at programming time.
	WMax float64
	// FaultRate injects stuck-at device faults into every programmed
	// super-tile (requires a noise generator). FaultMode selects the
	// stuck state. This is the legacy uniform-stuck-at path; the full
	// fault model lives behind Rel.
	FaultRate float64
	FaultMode crossbar.FaultMode
	// Rel, when non-nil, enables the reliability subsystem: the richer
	// fault profile is injected into every programmed core (spares
	// included), the BIST/repair pipeline runs per the protection level,
	// and runs return a *reliability.DegradedError when mitigation is
	// exhausted. Requires a noise generator for injection.
	Rel *reliability.Config

	noise  *rng.Rand
	health reliability.Report
}

// NewChip builds a chip with the given device and crossbar configuration.
// A nil noise generator disables stochastic non-idealities.
func NewChip(p device.Params, cfg crossbar.Config, noise *rng.Rand) *Chip {
	return &Chip{P: p, Cfg: cfg, Mesh: noc.New(noc.DefaultConfig()), WMax: 1.0, noise: noise}
}

// stageHW is the hardware realization of one converted stage.
type stageHW struct {
	kind string
	// snnCore / annCore hold the crossbars for weighted stages (only one
	// is populated depending on the run mode).
	snnCore *SNNCore
	annCore *ANNCore
	// conv geometry (kind == "conv")
	kh, kw, stride, pad int
	inC, outC, groups   int
	// pool (kind == "pool")
	pool *snn.AvgPoolIF
	// output weights (kind == "output") — digitally accumulated at RUs.
	outW, outB *tensor.Tensor
	outAcc     *tensor.Tensor
	// spill holds the multi-core ADC-path realization of a dense stage
	// whose receptive field exceeds one super-tile (nil otherwise).
	spill *RUSpillCore
	// bias currents injected alongside the crossbar evaluation.
	bias *tensor.Tensor
	// kmProgram lazily programs the kernel matrix once the number of
	// time-multiplexed positions is known (conv stages).
	kmProgram func(positions int) error
}

// RunResult reports a chip-level inference.
type RunResult struct {
	Output     *tensor.Tensor
	Prediction int
	// Cycles is the total pipeline cycle count across cores.
	Cycles int64
	// Spikes is the total hardware spike count (SNN mode).
	Spikes int64
	// NoCPackets counts inter-stage transfers.
	NoCPackets int64
	// ADCConversions counts spill-path partial-sum digitizations.
	ADCConversions int64
}

// buildSNN lowers a converted network onto hardware SNN cores.
func (ch *Chip) buildSNN(c *convert.Converted) ([]*stageHW, error) {
	var stages []*stageHW
	for _, st := range c.Stages {
		layer := c.SNN.Layers[st.SNNLayer]
		switch v := layer.(type) {
		case *snn.Conv:
			outC := v.W.Dim(0)
			kh, kw := v.W.Dim(2), v.W.Dim(3)
			gcIn := v.W.Dim(1)
			inC := gcIn * v.Groups
			rf := gcIn * kh * kw
			if !FitsInCore(rf, outC) {
				return nil, fmt.Errorf("arch: stage %s (Rf=%d, K=%d) does not fit one core; multi-core spill is modeled analytically in package energy", v.Name(), rf, outC)
			}
			// Kernel matrix: Rf×outC per Fig. 5. For grouped convolutions
			// the matrix is block-diagonal over groups; the simulator
			// keeps one matrix per group and routes each group's input
			// window to its block (the morphable switches isolate the
			// per-group column ranges).
			km := v.W.Reshape(outC, rf).Transpose()
			core := NewSNNCore(ch.P, ch.coreCfg(), 1.0, ch.split())
			// Positions allocated lazily at run time (depends on input size).
			s := &stageHW{kind: "conv", snnCore: core, kh: kh, kw: kw,
				stride: v.Stride, pad: v.Pad, inC: inC, outC: outC, groups: v.Groups}
			s.kmProgram = func(positions int) error { return core.Program(km, ch.WMax, positions) }
			s.bias = v.B
			stages = append(stages, s)
		case *snn.Dense:
			km := v.W.Transpose() // in×out
			rf, outC := km.Dim(0), km.Dim(1)
			if !FitsInCore(rf, outC) {
				// Multi-core spill: digitized partial sums reduced at a
				// routing unit (§IV-B3's Rf > 16M path).
				sp := NewRUSpillCore(ch.P, ch.coreCfg(), 1.0, ch.split())
				sp.ADCBits = 8
				if err := sp.Program(km, ch.WMax, 1); err != nil {
					return nil, err
				}
				for _, st := range sp.blocks {
					if err := ch.prepare(st); err != nil {
						return nil, err
					}
				}
				s := &stageHW{kind: "dense", spill: sp, outC: outC}
				s.bias = v.B
				stages = append(stages, s)
				continue
			}
			core := NewSNNCore(ch.P, ch.coreCfg(), 1.0, ch.split())
			if err := core.Program(km, ch.WMax, 1); err != nil {
				return nil, err
			}
			if err := ch.prepare(core.ST); err != nil {
				return nil, err
			}
			s := &stageHW{kind: "dense", snnCore: core, outC: outC}
			s.bias = v.B
			stages = append(stages, s)
		case *snn.AvgPoolIF:
			stages = append(stages, &stageHW{kind: "pool",
				pool: snn.NewAvgPoolIF(v.Name(), v.K, v.Stride, 1.0, snn.ResetToZero)})
		case *snn.Flatten:
			stages = append(stages, &stageHW{kind: "flatten"})
		case *snn.Output:
			stages = append(stages, &stageHW{kind: "output", outW: v.W, outB: v.B})
		default:
			return nil, fmt.Errorf("arch: unsupported stage type %T", layer)
		}
	}
	return stages, nil
}

func (ch *Chip) split() *rng.Rand {
	if ch.noise == nil {
		return nil
	}
	return ch.noise.Split()
}

// injectFaults applies the chip's configured stuck-at fault rate to a
// freshly programmed super-tile (the legacy uniform model).
func (ch *Chip) injectFaults(st *SuperTile) {
	if ch.FaultRate > 0 && ch.noise != nil {
		st.InjectStuckFaults(ch.noise.Split(), ch.FaultRate, ch.FaultMode)
	}
}

// coreCfg derives the crossbar configuration for a new core: the chip's
// base config plus the reliability knobs (spare lines under
// sparing+remap, read disturb and drift from the fault profile).
func (ch *Chip) coreCfg() crossbar.Config {
	cfg := ch.Cfg
	if ch.Rel != nil {
		if ch.Rel.Protection >= reliability.ProtectSpareRemap {
			cfg.SpareRows = ch.Rel.Policy.SpareRows
			cfg.SpareCols = ch.Rel.Policy.SpareCols
		}
		cfg.ReadDisturbProb = ch.Rel.Faults.ReadDisturbProb
		cfg.DriftTauSteps = ch.Rel.Faults.DriftTauSteps
	}
	return cfg
}

// prepare post-processes a freshly programmed super-tile: under the
// reliability subsystem it injects the fault profile and runs the
// protection pipeline (possibly refusing with a DegradedError);
// otherwise it applies the legacy uniform fault rate.
func (ch *Chip) prepare(st *SuperTile) error {
	if ch.Rel != nil {
		return ch.protect(st)
	}
	ch.injectFaults(st)
	return nil
}

// RunSNN executes T Poisson-encoded timesteps of one image through the
// hardware. Conv stages time-multiplex output positions over their core
// with per-position replica neurons; the membrane of every neuron lives
// in its device between timesteps.
func (ch *Chip) RunSNN(c *convert.Converted, img *tensor.Tensor, T int, enc *snn.PoissonEncoder) (*RunResult, error) {
	stages, err := ch.buildSNN(c)
	if err != nil {
		return nil, err
	}
	res := &RunResult{}
	for t := 0; t < T; t++ {
		x := enc.Encode(img)
		for _, s := range stages {
			x, err = ch.stepStage(s, x, res)
			if err != nil {
				return nil, err
			}
		}
		ch.tickRetention(stages, t)
	}
	// The read-out stage integrates increments across timesteps; its
	// accumulator holds the final class potentials.
	out := stagesOutput(stages)
	res.Output = out
	res.Prediction = out.ArgMax()
	for _, s := range stages {
		if s.snnCore != nil {
			res.Cycles += s.snnCore.Stats.Cycles
			res.Spikes += s.snnCore.Stats.Spikes
		}
		if s.spill != nil {
			res.Cycles += s.spill.Stats.Cycles
			res.Spikes += s.spill.Stats.Spikes
			res.ADCConversions += s.spill.ADCConversions
		}
	}
	return res, nil
}

// stepStage advances one stage by one timestep.
func (ch *Chip) stepStage(s *stageHW, x *tensor.Tensor, res *RunResult) (*tensor.Tensor, error) {
	switch s.kind {
	case "conv":
		h, w := x.Dim(1), x.Dim(2)
		oh := tensor.ConvOutSize(h, s.kh, s.stride, s.pad)
		ow := tensor.ConvOutSize(w, s.kw, s.stride, s.pad)
		if s.snnCore.neurons == nil {
			// One replica bank per (position, group) pair.
			if err := s.kmProgram(oh * ow * s.groups); err != nil {
				return nil, err
			}
			if err := ch.prepare(s.snnCore.ST); err != nil {
				return nil, err
			}
		}
		out := tensor.New(s.outC, oh, ow)
		gcIn := s.inC / s.groups
		gcOut := s.outC / s.groups
		rfg := gcIn * s.kh * s.kw
		colBuf := make([]float64, rfg)
		hw := x.Dim(1) * x.Dim(2)
		for g := 0; g < s.groups; g++ {
			sub := tensor.FromSlice(x.Data()[g*gcIn*hw:(g+1)*gcIn*hw], gcIn, h, w)
			cols := tensor.Im2Col(sub, s.kh, s.kw, s.stride, s.pad)
			for pos := 0; pos < oh*ow; pos++ {
				for r := 0; r < rfg; r++ {
					colBuf[r] = cols.At(r, pos)
				}
				spikes, err := ch.stepConvGroup(s, g, pos, colBuf)
				if err != nil {
					return nil, err
				}
				for k := 0; k < gcOut; k++ {
					out.Set(spikes[g*gcOut+k], g*gcOut+k, pos/ow, pos%ow)
				}
			}
		}
		// Spikes travel to the consumer stage over the mesh.
		res.NoCPackets++
		ch.Mesh.Send(noc.Node{X: 0, Y: 0}, noc.Node{X: 1, Y: 0}, maxInt(1, int(out.Sum())), 0)
		return out, nil
	case "dense":
		flat := x.Reshape(x.Size())
		var spikes []float64
		var err error
		if s.spill != nil {
			var biasData []float64
			if s.bias != nil {
				biasData = s.bias.Data()
			}
			spikes, err = s.spill.StepAt(0, flat.Data(), biasData)
		} else {
			spikes, err = ch.stepWithBias(s, 0, flat.Data())
		}
		if err != nil {
			return nil, err
		}
		res.NoCPackets++
		return tensor.FromSlice(spikes, len(spikes)), nil
	case "pool":
		return s.pool.Step(x), nil
	case "flatten":
		return x.Reshape(x.Size()), nil
	case "output":
		// Digital accumulation at the routing units.
		flat := x.Reshape(1, -1)
		inc := tensor.MatMulTransB(flat, s.outW)
		if s.outB != nil {
			inc.Row(0).AddInPlace(s.outB)
		}
		if s.outAcc == nil {
			s.outAcc = tensor.New(s.outW.Dim(0))
		}
		s.outAcc.AddInPlace(inc.Reshape(s.outW.Dim(0)))
		return s.outAcc.Clone(), nil
	}
	return nil, fmt.Errorf("arch: unknown stage kind %q", s.kind)
}

// stepWithBias drives one position through a spiking core, adding the
// stage bias current before integration by superposing it on the result.
func (ch *Chip) stepWithBias(s *stageHW, pos int, spikes []float64) ([]float64, error) {
	if s.bias == nil {
		return s.snnCore.StepAt(pos, spikes)
	}
	// Bias rows: the crossbar reserves a constantly-driven row per the
	// standard bias mapping; the simulator adds the bias current directly
	// into the neuron integration by extending the evaluation result.
	return s.snnCore.stepAtWithBias(pos, spikes, s.bias.Data())
}

// stepConvGroup drives one group's input window: the full-width spike
// vector is zero outside the group's rows, so only the group's
// block-diagonal columns receive current.
func (ch *Chip) stepConvGroup(s *stageHW, g, pos int, groupSpikes []float64) ([]float64, error) {
	if s.groups == 1 {
		return ch.stepWithBias(s, pos, groupSpikes)
	}
	// Grouped case: the per-group kernel matrices share the crossbar's
	// row space (each group's Rf_g rows drive only its gcOut columns, a
	// block-diagonal layout). The simulator evaluates the shared rows
	// with this group's window; columns of other groups see the same
	// rows but their spikes are masked out by the caller.
	out, err := ch.stepWithBias(s, pos*s.groups+g, groupSpikes)
	return out, err
}

func stagesOutput(stages []*stageHW) *tensor.Tensor {
	last := stages[len(stages)-1]
	if last.outAcc != nil {
		return last.outAcc.Clone()
	}
	return tensor.New(1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
