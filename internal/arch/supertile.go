// Package arch is the structural simulator of the NEBULA chip: atomic
// crossbars ganged into morphable tiles and super-tiles with the
// current-domain neuron-unit hierarchy (Fig. 7), ANN and SNN neural cores
// with the Fig. 8 pipeline, and a chip that executes converted networks on
// the simulated crossbar hardware.
//
// Where package energy answers "what does it cost", this package answers
// "does the datapath compute the right thing": layers run through actual
// device-quantized crossbar MACs, current summation across the hierarchy,
// and MTJ neuron thresholding, so architectural claims (morphable mapping,
// ADC-free aggregation up to 16M rows, in-device membrane storage) are
// exercised functionally.
package arch

import (
	"fmt"

	"repro/internal/crossbar"
	"repro/internal/device"
	"repro/internal/mapping"
	"repro/internal/rng"
	"repro/internal/spikeplane"
	"repro/internal/tensor"
)

// SuperTile is a 2×2 array of morphable tiles, each 2×2 atomic crossbars:
// 16 ACs of M×M DW-MTJ synapses. Vertical switch configuration gangs
// `stack` ACs per kernel-column group, summing their source-line currents
// in the analog domain at the appropriate NU hierarchy level.
type SuperTile struct {
	P   device.Params
	Cfg crossbar.Config

	acs   []*crossbar.Crossbar
	stack int // ACs ganged vertically per set
	sets  int // kernel column groups
	rows  int // mapped kernel rows (Rf)
	cols  int // mapped kernel count
	wmax  float64
	// slotAC routes each configured slot (set*stack+height) to a physical
	// AC index; identity after Program, diverging when tile retirement
	// re-places a slot onto a spare array. retired marks physical ACs
	// taken out of service.
	slotAC  []int
	retired []bool
}

// NewSuperTile allocates an unconfigured super-tile.
func NewSuperTile(p device.Params, cfg crossbar.Config, noise *rng.Rand) *SuperTile {
	st := &SuperTile{P: p, Cfg: cfg}
	for i := 0; i < mapping.ACsPerNC; i++ {
		var r *rng.Rand
		if noise != nil {
			r = noise.Split()
		}
		st.acs = append(st.acs, crossbar.New(mapping.M, mapping.M, p, cfg, r))
	}
	return st
}

// Program loads a kernel matrix of shape Rf×K: Rf rows (the flattened
// receptive field, Fig. 5) by K kernels. It configures the morphable
// switches for stack = ceil(Rf/M) and sets = ceil(K/M) and programs the
// constituent ACs. The layer must fit: stack·sets ≤ 16 and Rf ≤ 16M.
func (st *SuperTile) Program(w *tensor.Tensor, wmax float64) error {
	if w.NDim() != 2 {
		return fmt.Errorf("arch: kernel matrix must be 2-D, got %v", w.Shape())
	}
	rf, k := w.Dim(0), w.Dim(1)
	if rf > mapping.MaxRowsPerNC {
		return fmt.Errorf("arch: Rf %d exceeds super-tile capacity %d", rf, mapping.MaxRowsPerNC)
	}
	stack := (rf + mapping.M - 1) / mapping.M
	sets := (k + mapping.M - 1) / mapping.M
	if stack*sets > mapping.ACsPerNC {
		return fmt.Errorf("arch: layer needs %d ACs, super-tile has %d", stack*sets, mapping.ACsPerNC)
	}
	st.stack, st.sets, st.rows, st.cols, st.wmax = stack, sets, rf, k, wmax
	st.slotAC = make([]int, stack*sets)
	for i := range st.slotAC {
		st.slotAC[i] = i
	}
	st.retired = make([]bool, len(st.acs))

	for s := 0; s < sets; s++ {
		colLo := s * mapping.M
		colHi := min(colLo+mapping.M, k)
		for h := 0; h < stack; h++ {
			rowLo := h * mapping.M
			rowHi := min(rowLo+mapping.M, rf)
			sub := tensor.New(mapping.M, mapping.M)
			for r := rowLo; r < rowHi; r++ {
				for c := colLo; c < colHi; c++ {
					sub.Set(w.At(r, c), r-rowLo, c-colLo)
				}
			}
			if err := st.ac(s, h).Program(sub, wmax); err != nil {
				return err
			}
		}
	}
	return nil
}

// Configure sets the morphable-switch geometry for an Rf×K kernel
// matrix without programming a single device — the skeleton half of
// Program, used by the image loader, which imports the recorded
// per-array state immediately afterwards. Slot routing starts at
// identity; importSlots replaces it when the image recorded
// retirements.
func (st *SuperTile) Configure(rf, k int, wmax float64) error {
	if rf > mapping.MaxRowsPerNC {
		return fmt.Errorf("arch: Rf %d exceeds super-tile capacity %d", rf, mapping.MaxRowsPerNC)
	}
	stack := (rf + mapping.M - 1) / mapping.M
	sets := (k + mapping.M - 1) / mapping.M
	if stack*sets > mapping.ACsPerNC {
		return fmt.Errorf("arch: layer needs %d ACs, super-tile has %d", stack*sets, mapping.ACsPerNC)
	}
	st.stack, st.sets, st.rows, st.cols, st.wmax = stack, sets, rf, k, wmax
	st.slotAC = make([]int, stack*sets)
	for i := range st.slotAC {
		st.slotAC[i] = i
	}
	st.retired = make([]bool, len(st.acs))
	return nil
}

// importSlots restores the slot→array routing and retirement flags
// recorded in a chip image. The tile must be Configured to the same
// geometry first.
func (st *SuperTile) importSlots(slotAC []int, retired []bool) error {
	if len(slotAC) != st.stack*st.sets {
		return fmt.Errorf("arch: slot routing has %d entries, tile has %d slots", len(slotAC), st.stack*st.sets)
	}
	if len(retired) != len(st.acs) {
		return fmt.Errorf("arch: retirement map has %d entries, tile has %d arrays", len(retired), len(st.acs))
	}
	for _, phys := range slotAC {
		if phys < 0 || phys >= len(st.acs) {
			return fmt.Errorf("arch: slot routed to array %d of %d", phys, len(st.acs))
		}
	}
	copy(st.slotAC, slotAC)
	copy(st.retired, retired)
	return nil
}

// ac returns the atomic crossbar at (set, height) in the logical stack,
// through the retirement indirection.
func (st *SuperTile) ac(set, height int) *crossbar.Crossbar {
	return st.acs[st.slotAC[set*st.stack+height]]
}

// Slots returns the number of configured AC slots (stack·sets), or 0
// before Program.
func (st *SuperTile) Slots() int { return st.stack * st.sets }

// SlotCrossbar returns the physical array currently serving a slot.
func (st *SuperTile) SlotCrossbar(slot int) *crossbar.Crossbar {
	return st.acs[st.slotAC[slot]]
}

// AllACs returns every physical atomic crossbar of the super-tile,
// configured or spare — the injection domain of the reliability layer
// (spare arrays are as fallible as active ones).
func (st *SuperTile) AllACs() []*crossbar.Crossbar { return st.acs }

// Retire takes the slot's current array out of service and re-places its
// weight slice onto an unused physical AC of the same super-tile
// (reprogramming from the stored pair targets; the spare's own recorded
// faults apply). It reports whether a spare array was available.
func (st *SuperTile) Retire(slot int) bool {
	if st.stack == 0 || slot < 0 || slot >= st.stack*st.sets {
		return false
	}
	inUse := make([]bool, len(st.acs))
	for _, phys := range st.slotAC {
		inUse[phys] = true
	}
	spare := -1
	for phys := range st.acs {
		if !inUse[phys] && !st.retired[phys] {
			spare = phys
			break
		}
	}
	if spare < 0 {
		return false
	}
	old := st.acs[st.slotAC[slot]]
	w, wmax := old.TargetWeights()
	if err := st.acs[spare].Program(w, wmax); err != nil {
		return false
	}
	st.retired[st.slotAC[slot]] = true
	st.slotAC[slot] = spare
	return true
}

// Tick advances the retention clock of every configured array.
func (st *SuperTile) Tick(steps int64) {
	for slot := 0; slot < st.stack*st.sets; slot++ {
		st.acs[st.slotAC[slot]].Tick(steps)
	}
}

// MaxAge returns the oldest retention age among configured arrays.
func (st *SuperTile) MaxAge() int64 {
	var maxAge int64
	for slot := 0; slot < st.stack*st.sets; slot++ {
		if a := st.acs[st.slotAC[slot]].Age(); a > maxAge {
			maxAge = a
		}
	}
	return maxAge
}

// Refresh scrubs every configured array: pairs are rewritten to their
// targets and the retention clocks reset.
func (st *SuperTile) Refresh() {
	for slot := 0; slot < st.stack*st.sets; slot++ {
		st.acs[st.slotAC[slot]].Refresh()
	}
}

// NULevel returns the hierarchy level that thresholds this configuration.
func (st *SuperTile) NULevel() mapping.NULevel {
	switch {
	case st.stack <= 1:
		return mapping.LevelH0
	case st.stack <= mapping.ACsPerTile:
		return mapping.LevelH1
	default:
		return mapping.LevelH2
	}
}

// Evaluate drives one input vector (length Rf, values in [0, 1]) through
// the configured arrays and returns the K column dot products, aggregated
// across the stack by Kirchhoff current summation — no digitization.
//
// Evaluate models wear on the constituent arrays (read disturb, shared
// activity counters) and must not be called concurrently; the session
// engine's frozen-conductance path uses EvaluateRead.
func (st *SuperTile) Evaluate(input []float64) ([]float64, error) {
	return st.evaluate(input, func(ac *crossbar.Crossbar, in []float64) ([]float64, error) {
		return ac.MAC(in)
	})
}

// EvaluateRead is Evaluate through the wear-free crossbar read path:
// noise draws come from the caller's stream and activity lands in the
// caller's stats, so concurrent goroutines may evaluate one programmed
// super-tile as long as nothing reprograms, retires, ticks or refreshes
// it meanwhile.
func (st *SuperTile) EvaluateRead(input []float64, noise *rng.Rand, stats *crossbar.Stats) ([]float64, error) {
	if st.stack == 0 {
		return nil, fmt.Errorf("arch: super-tile not programmed")
	}
	out := make([]float64, st.cols)
	var sc EvalScratch
	if err := st.EvaluateReadInto(out, input, nil, noise, stats, &sc); err != nil {
		return nil, err
	}
	return out, nil
}

// GenSum folds the generation stamps of the configured arrays (through
// the retirement indirection) into one fingerprint. Any mutation of
// read-visible state — reprogramming, fault injection, retention
// ticks, refresh, slot retirement — changes the fingerprint, so two
// equal snapshots prove the super-tile's reads are unchanged between
// them. The engine's timestep-repeat cache keys on it.
//
//nebula:hotpath
func (st *SuperTile) GenSum() uint64 {
	var h uint64
	for slot := 0; slot < st.stack*st.sets; slot++ {
		h = h*1099511628211 + st.acs[st.slotAC[slot]].Generation()
	}
	return h
}

// Bake freezes the read kernel of every configured array (crossbar
// BakeKernel), switching EvaluateRead/EvaluateReadInto onto the
// event-driven fast path. Call it when the session's conductances
// freeze; results are bitwise identical with or without the bake.
func (st *SuperTile) Bake() {
	for slot := 0; slot < st.stack*st.sets; slot++ {
		st.acs[st.slotAC[slot]].BakeKernel()
	}
}

// EvalScratch holds the buffers one reader goroutine reuses across
// EvaluateReadInto calls: the M-padded per-AC input window, the per-AC
// partial sums, and the active-row lists regrouped per stack height.
// A zero EvalScratch is ready to use; buffers grow on first use and are
// reused afterwards. Scratches must not be shared between concurrent
// readers.
type EvalScratch struct {
	slice  []float64 // M-padded input window of one stack height
	part   []float64 // per-AC partial dot products
	actBuf []int     // window-local active rows, grouped by height
	hOff   []int     // actBuf offsets: height h owns [hOff[h], hOff[h+1])
	idx    []int     // materialized plane indices for the packed-path fallback
}

// EvaluateReadInto is EvaluateRead writing the K column sums into a
// caller-provided buffer of length K, gathering the active-row list
// once per call instead of once per atomic crossbar.
//
// active, when non-nil, must list exactly the indices of the non-zero
// input entries in increasing order — the previous layer's spike list.
// nil makes the scratch build the list by scanning the input once.
//
//nebula:hotpath
func (st *SuperTile) EvaluateReadInto(dst, input []float64, active []int, noise *rng.Rand, stats *crossbar.Stats, sc *EvalScratch) error {
	if st.stack == 0 {
		return fmt.Errorf("arch: super-tile not programmed")
	}
	if len(input) != st.rows {
		return fmt.Errorf("arch: input length %d, want Rf %d", len(input), st.rows)
	}
	if len(dst) != st.cols {
		return fmt.Errorf("arch: destination length %d, want K %d", len(dst), st.cols)
	}
	if len(sc.slice) != mapping.M {
		sc.slice = make([]float64, mapping.M)
		sc.part = make([]float64, mapping.M)
	}
	// Regroup the active rows into window-local lists, one per stack
	// height, so each AC of a set reuses its height's list.
	sc.actBuf = sc.actBuf[:0]
	sc.hOff = append(sc.hOff[:0], 0)
	if active != nil {
		i := 0
		for h := 0; h < st.stack; h++ {
			rowLo := h * mapping.M
			rowHi := min(rowLo+mapping.M, st.rows)
			for i < len(active) && active[i] < rowHi {
				sc.actBuf = append(sc.actBuf, active[i]-rowLo)
				i++
			}
			sc.hOff = append(sc.hOff, len(sc.actBuf))
		}
	} else {
		for h := 0; h < st.stack; h++ {
			rowLo := h * mapping.M
			rowHi := min(rowLo+mapping.M, st.rows)
			for r := rowLo; r < rowHi; r++ {
				if input[r] != 0 {
					sc.actBuf = append(sc.actBuf, r-rowLo)
				}
			}
			sc.hOff = append(sc.hOff, len(sc.actBuf))
		}
	}
	for i := range dst {
		dst[i] = 0
	}
	// Keep the set-outer / height-inner walk of the dense path: the
	// per-AC read-noise draws must come off the stream in the same order.
	for s := 0; s < st.sets; s++ {
		colLo := s * mapping.M
		colHi := min(colLo+mapping.M, st.cols)
		for h := 0; h < st.stack; h++ {
			rowLo := h * mapping.M
			rowHi := min(rowLo+mapping.M, st.rows)
			for i := range sc.slice {
				sc.slice[i] = 0
			}
			copy(sc.slice, input[rowLo:rowHi])
			act := sc.actBuf[sc.hOff[h]:sc.hOff[h+1]]
			if err := st.ac(s, h).MACReadInto(sc.part, sc.slice, act, noise, stats); err != nil {
				return err
			}
			// SL current summation: partial dot products add in the
			// current domain across the vertical stack (§IV-B3).
			for c := colLo; c < colHi; c++ {
				dst[c] += sc.part[c-colLo]
			}
		}
	}
	return nil
}

// EvaluateReadPacked is EvaluateReadInto driven by a bit-packed spike
// plane instead of an index list: the per-window re-basing of the
// active list becomes a word-aligned window view of the plane
// (mapping.M is a multiple of 64, so every stack-height window is
// word-aligned and views cost nothing), the per-AC input is the
// unpadded row window, and only the mapped columns of each set are
// computed (MACReadPacked's trimmed contract).
//
// Two event-driven deviations from the dense walk, both gated on
// noise being nil so the RNG stream is untouched:
//
//   - a stack-height window with no active bits skips its AC read
//     entirely — no MAC is issued, so stats count fewer MACs than the
//     dense walk (that is the point: silent windows draw no read
//     current);
//   - trimmed columns make stats.OutputCurrentUA sum mapped columns
//     only (see MACReadPacked).
//
// Column sums for the mapped columns remain bitwise identical to
// EvaluateReadInto. Noisy reads (non-nil noise) and stale kernels fall
// back transparently to the index path, materializing the plane's
// indices into the scratch: trimmed columns draw fewer noise values
// per array, which would shift the stream for every later array in
// the stack, so the packed walk is only defined for noiseless reads.
//
//nebula:hotpath
func (st *SuperTile) EvaluateReadPacked(dst, input []float64, plane *spikeplane.Plane, noise *rng.Rand, stats *crossbar.Stats, sc *EvalScratch) error {
	if st.stack == 0 {
		return fmt.Errorf("arch: super-tile not programmed")
	}
	if len(input) != st.rows {
		return fmt.Errorf("arch: input length %d, want Rf %d", len(input), st.rows)
	}
	if len(dst) != st.cols {
		return fmt.Errorf("arch: destination length %d, want K %d", len(dst), st.cols)
	}
	if plane.Len() != st.rows {
		return fmt.Errorf("arch: plane length %d, want Rf %d", plane.Len(), st.rows)
	}
	if noise != nil {
		sc.idx = plane.AppendIndices(sc.idx[:0])
		return st.EvaluateReadInto(dst, input, sc.idx, noise, stats, sc)
	}
	for slot := 0; slot < st.stack*st.sets; slot++ {
		if !st.acs[st.slotAC[slot]].KernelFresh() {
			// Stale kernel: the packed fast path cannot serve this read;
			// fall back to the index path, which has its own dense
			// fallback per array.
			sc.idx = plane.AppendIndices(sc.idx[:0])
			return st.EvaluateReadInto(dst, input, sc.idx, noise, stats, sc)
		}
	}
	if len(sc.part) != mapping.M {
		sc.part = make([]float64, mapping.M)
	}
	for i := range dst {
		dst[i] = 0
	}
	words := plane.WordSlice()
	for s := 0; s < st.sets; s++ {
		colLo := s * mapping.M
		colHi := min(colLo+mapping.M, st.cols)
		part := sc.part[:colHi-colLo]
		for h := 0; h < st.stack; h++ {
			rowLo := h * mapping.M
			rowHi := min(rowLo+mapping.M, st.rows)
			win := spikeplane.Window(words, rowLo, rowHi, nil)
			if spikeplane.IsZeroWords(win) {
				// Silent window: no read current, no MAC (noise is nil
				// past the fallback above, so no draw is skipped).
				continue
			}
			if err := st.ac(s, h).MACReadPacked(part, input[rowLo:rowHi], win, noise, stats); err != nil {
				return err
			}
			// SL current summation: partial dot products add in the
			// current domain across the vertical stack (§IV-B3).
			for c := colLo; c < colHi; c++ {
				dst[c] += part[c-colLo]
			}
		}
	}
	return nil
}

// evaluate is the stack/set aggregation shared by Evaluate and
// EvaluateRead; mac performs one atomic-crossbar dot product.
func (st *SuperTile) evaluate(input []float64, mac func(*crossbar.Crossbar, []float64) ([]float64, error)) ([]float64, error) {
	if st.stack == 0 {
		return nil, fmt.Errorf("arch: super-tile not programmed")
	}
	if len(input) != st.rows {
		return nil, fmt.Errorf("arch: input length %d, want Rf %d", len(input), st.rows)
	}
	out := make([]float64, st.cols)
	slice := make([]float64, mapping.M)
	for s := 0; s < st.sets; s++ {
		colLo := s * mapping.M
		colHi := min(colLo+mapping.M, st.cols)
		for h := 0; h < st.stack; h++ {
			rowLo := h * mapping.M
			rowHi := min(rowLo+mapping.M, st.rows)
			for i := range slice {
				slice[i] = 0
			}
			copy(slice, input[rowLo:rowHi])
			part, err := mac(st.ac(s, h), slice)
			if err != nil {
				return nil, err
			}
			// SL current summation: partial dot products add in the
			// current domain across the vertical stack (§IV-B3).
			for c := colLo; c < colHi; c++ {
				out[c] += part[c-colLo]
			}
		}
	}
	return out, nil
}

// Utilization reports the synapse utilization of the configured layer.
func (st *SuperTile) Utilization() float64 {
	if st.stack == 0 {
		return 0
	}
	return float64(st.rows*st.cols) / float64(st.stack*st.sets*mapping.M*mapping.M)
}

// Stats aggregates activity counters across the configured ACs.
func (st *SuperTile) Stats() crossbar.Stats {
	var total crossbar.Stats
	for _, ac := range st.acs {
		s := ac.Stats()
		total.MACs += s.MACs
		total.ActiveRowSum += s.ActiveRowSum
		total.OutputCurrentUA += s.OutputCurrentUA
		total.ProgramEnergyFJ += s.ProgramEnergyFJ
	}
	return total
}

// InjectStuckFaults forces a fraction of the configured arrays' devices
// into stuck states, for fault-resilience studies. Returns the number of
// faulted devices.
func (st *SuperTile) InjectStuckFaults(r *rng.Rand, fraction float64, mode crossbar.FaultMode) int {
	n := 0
	for s := 0; s < st.sets; s++ {
		for h := 0; h < st.stack; h++ {
			n += st.ac(s, h).InjectStuckFaults(r, fraction, mode)
		}
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
