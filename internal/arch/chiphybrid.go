package arch

import (
	"context"

	"repro/internal/convert"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// AccumulatorUnit is the digital spike-count accumulator of Fig. 6(c):
// an adder and a register per neuron, integrating the boundary spike
// train over the evidence window and scaling it back to activation units
// for the ANN cores.
type AccumulatorUnit struct {
	// Lambda is the activation scale of the boundary stage.
	Lambda float64
	counts *tensor.Tensor
	steps  int
	// Adds counts adder operations (for energy cross-checks).
	Adds int64
}

// NewAccumulatorUnit allocates an AU for the given boundary shape.
func NewAccumulatorUnit(lambda float64) *AccumulatorUnit {
	return &AccumulatorUnit{Lambda: lambda}
}

// Accumulate folds one timestep of boundary spikes into the registers.
func (au *AccumulatorUnit) Accumulate(spikes *tensor.Tensor) {
	if au.counts == nil {
		au.counts = tensor.New(spikes.Shape()...)
	}
	cd, sd := au.counts.Data(), spikes.Data()
	for i, v := range sd {
		if v != 0 {
			cd[i] += v
			au.Adds++
		}
	}
	au.steps++
}

// Read returns the recovered activation estimate: rate × λ.
func (au *AccumulatorUnit) Read() *tensor.Tensor {
	if au.counts == nil || au.steps == 0 {
		return nil
	}
	out := au.counts.Clone()
	out.ScaleInPlace(au.Lambda / float64(au.steps))
	return out
}

// Reset clears the registers.
func (au *AccumulatorUnit) Reset() {
	au.counts = nil
	au.steps = 0
	au.Adds = 0
}

// RunHybrid executes a hybrid inference on simulated hardware: the first
// stages run on SNN cores for T timesteps, an AccumulatorUnit integrates
// the boundary spikes, and the remaining stages run once on ANN cores.
// nonSpiking counts weighted layers (including the read-out) executed in
// the ANN domain, mirroring hybrid.Split.
//
// Deprecated: RunHybrid re-compiles both domains per call. Use Compile
// with WithMode(ModeHybrid) and WithHybridSplit once, then Run/RunBatch
// per input; this shim is a Compile + one wear-mode Run with the
// caller's encoder.
func (ch *Chip) RunHybrid(c *convert.Converted, nonSpiking int, img *tensor.Tensor, T int, enc *snn.PoissonEncoder) (*RunResult, error) {
	sess, err := ch.Compile(c,
		WithMode(ModeHybrid),
		WithHybridSplit(nonSpiking),
		WithTimesteps(T),
		WithSharedEncoder(enc),
		WithInputShape(img.Shape()...),
		WithWear(true))
	if err != nil {
		return nil, err
	}
	//nebula:lint-ignore ctxflow deprecated shim has no ctx to thread; callers wanting deadlines use Compile+Run
	return sess.Run(context.Background(), img)
}
