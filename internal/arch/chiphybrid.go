package arch

import (
	"fmt"

	"repro/internal/convert"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// AccumulatorUnit is the digital spike-count accumulator of Fig. 6(c):
// an adder and a register per neuron, integrating the boundary spike
// train over the evidence window and scaling it back to activation units
// for the ANN cores.
type AccumulatorUnit struct {
	// Lambda is the activation scale of the boundary stage.
	Lambda float64
	counts *tensor.Tensor
	steps  int
	// Adds counts adder operations (for energy cross-checks).
	Adds int64
}

// NewAccumulatorUnit allocates an AU for the given boundary shape.
func NewAccumulatorUnit(lambda float64) *AccumulatorUnit {
	return &AccumulatorUnit{Lambda: lambda}
}

// Accumulate folds one timestep of boundary spikes into the registers.
func (au *AccumulatorUnit) Accumulate(spikes *tensor.Tensor) {
	if au.counts == nil {
		au.counts = tensor.New(spikes.Shape()...)
	}
	cd, sd := au.counts.Data(), spikes.Data()
	for i, v := range sd {
		if v != 0 {
			cd[i] += v
			au.Adds++
		}
	}
	au.steps++
}

// Read returns the recovered activation estimate: rate × λ.
func (au *AccumulatorUnit) Read() *tensor.Tensor {
	if au.counts == nil || au.steps == 0 {
		return nil
	}
	out := au.counts.Clone()
	out.ScaleInPlace(au.Lambda / float64(au.steps))
	return out
}

// Reset clears the registers.
func (au *AccumulatorUnit) Reset() {
	au.counts = nil
	au.steps = 0
	au.Adds = 0
}

// RunHybrid executes a hybrid inference on simulated hardware: the first
// stages run on SNN cores for T timesteps, an AccumulatorUnit integrates
// the boundary spikes, and the remaining stages run once on ANN cores.
// nonSpiking counts weighted layers (including the read-out) executed in
// the ANN domain, mirroring hybrid.Split.
func (ch *Chip) RunHybrid(c *convert.Converted, nonSpiking int, img *tensor.Tensor, T int, enc *snn.PoissonEncoder) (*RunResult, error) {
	// Locate the split: index into c.Stages of the first ANN-domain
	// weighted stage.
	var weighted []int
	for i, s := range c.Stages {
		if s.Weighted {
			weighted = append(weighted, i)
		}
	}
	if nonSpiking < 1 || nonSpiking >= len(weighted) {
		return nil, fmt.Errorf("arch: nonSpiking must be in [1, %d)", len(weighted))
	}
	splitStage := weighted[len(weighted)-nonSpiking]
	// λ of the last IF stage before the cut.
	lambda := 1.0
	for _, s := range c.Stages[:splitStage] {
		if s.Kind != "flatten" {
			lambda = s.Lambda
		}
	}

	// Hardware for the spiking front.
	frontHW, err := ch.buildSNN(c)
	if err != nil {
		return nil, err
	}
	frontHW = frontHW[:c.Stages[splitStage].SNNLayer]

	res := &RunResult{}
	au := NewAccumulatorUnit(lambda)
	for t := 0; t < T; t++ {
		x := enc.Encode(img)
		for _, s := range frontHW {
			x, err = ch.stepStage(s, x, res)
			if err != nil {
				return nil, err
			}
		}
		au.Accumulate(x)
		ch.tickRetention(frontHW, t)
	}
	for _, s := range frontHW {
		if s.snnCore != nil {
			res.Cycles += s.snnCore.Stats.Cycles
			res.Spikes += s.snnCore.Stats.Spikes
		}
		if s.spill != nil {
			res.Cycles += s.spill.Stats.Cycles
			res.Spikes += s.spill.Stats.Spikes
			res.ADCConversions += s.spill.ADCConversions
		}
	}

	// ANN tail on the recovered activations, on ANN-core hardware. The
	// recovered activations are in the source (unnormalized) scale of the
	// boundary; renormalize to [0,1] with λ so the normalized weights of
	// the remaining stages apply directly.
	x := au.Read()
	x.ScaleInPlace(1 / lambda)
	for _, st := range c.Stages[splitStage:] {
		layer := c.SNN.Layers[st.SNNLayer]
		x, err = ch.annStage(layer, x, res)
		if err != nil {
			return nil, err
		}
	}
	res.Output = x.Clone()
	res.Prediction = x.ArgMax()
	return res, nil
}
