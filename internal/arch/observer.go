package arch

import (
	"repro/internal/obs"
	"repro/internal/reliability"
)

// This file wires the observability layer into the session lifecycle:
// the counter schema (obs.Layout) is derived from the compiled pipeline,
// the recorder is bound to it, and the compilation's programming energy
// plus reliability work are folded into the recorder's program record.
// The run-time half — per-stage shard accounting — lives in engine.go.

// attachObserver binds the recorder to this session's counter schema and
// records the compile-time activity.
func (s *Session) attachObserver(rec *obs.Recorder, healthBefore reliability.Report) error {
	s.buildObsLayout()
	if err := rec.Bind(s.obsLayout); err != nil {
		return err
	}
	s.rec = rec
	s.traceOn = rec.TraceEnabled()
	rec.RecordProgram(s.compileRecord(healthBefore))
	return nil
}

// buildObsLayout derives the counter schema of the compiled pipeline:
// an input bucket for the encoder in spiking modes, then one bucket per
// spiking stage, then one per continuous stage. Weighted stages carry a
// neural-core ordinal and their super-tile count.
func (s *Session) buildObsLayout() {
	l := &obs.Layout{Model: s.model.SNN.Name(), Mode: s.cfg.Mode.String()}
	if s.cfg.Mode != ModeANN {
		l.Stages = append(l.Stages, obs.StageInfo{Name: "input", Kind: "encode", Domain: "input", Core: -1})
	}
	core := 0
	s.snnBase = len(l.Stages)
	for _, hw := range s.snnStages {
		si := obs.StageInfo{Name: hw.name, Kind: hw.kind, Domain: "snn", Core: -1}
		switch {
		case hw.snnCore != nil:
			si.Core, si.Tiles = core, 1
			core++
		case hw.spill != nil:
			si.Core, si.Tiles = core, hw.spill.Blocks()
			core++
		}
		l.Stages = append(l.Stages, si)
	}
	s.annBase = len(l.Stages)
	for _, hw := range s.annStages {
		si := obs.StageInfo{Name: hw.name, Kind: hw.kind, Domain: "ann", Core: -1}
		if hw.core != nil {
			si.Core, si.Tiles = core, 1
			core++
		}
		l.Stages = append(l.Stages, si)
	}
	s.obsLayout = l
}

// compileRecord summarizes this compilation: the synapse programming
// energy of every core built for the session plus the reliability
// pipeline's work since healthBefore.
func (s *Session) compileRecord(healthBefore reliability.Report) obs.ProgramRecord {
	p := reliabilityRecord(s.chip.health.Delta(healthBefore))
	p.Compiles = 1
	for _, hw := range s.snnStages {
		switch {
		case hw.snnCore != nil:
			p.ProgramEnergyFJ += hw.snnCore.ST.Stats().ProgramEnergyFJ
		case hw.spill != nil:
			for _, st := range hw.spill.blocks {
				p.ProgramEnergyFJ += st.Stats().ProgramEnergyFJ
			}
		}
	}
	for _, hw := range s.annStages {
		if hw.core != nil {
			p.ProgramEnergyFJ += hw.core.ST.Stats().ProgramEnergyFJ
		}
	}
	return p
}

// failedCompileRecord summarizes a compile that was refused after doing
// reliability work; the degradation refusal itself is counted.
func failedCompileRecord(delta reliability.Report, err error) obs.ProgramRecord {
	p := reliabilityRecord(delta)
	var de *reliability.DegradedError
	if asDegraded(err, &de) || delta.Degraded {
		p.DegradationEvents = 1
	}
	return p
}

// reliabilityRecord maps a reliability report delta onto the program
// counters.
func reliabilityRecord(d reliability.Report) obs.ProgramRecord {
	p := obs.ProgramRecord{
		BISTReads:      d.ScanReads,
		WriteRetries:   d.RepairWrites,
		FaultsFound:    d.FaultsFound,
		Repaired:       d.Repaired,
		Compensated:    d.Compensated,
		SparesConsumed: d.RowsRemapped + d.ColsRemapped + d.TilesRetired,
	}
	if d.Degraded {
		p.DegradationEvents = 1
	}
	return p
}
