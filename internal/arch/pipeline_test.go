package arch

import (
	"math"
	"testing"

	"repro/internal/mapping"
	"repro/internal/models"
)

func TestPipelineSingleItemLatency(t *testing.T) {
	p := NewCorePipeline(0)
	rep := p.Stream(1)
	if rep.FirstOutCycle != 3 {
		t.Fatalf("fill latency %d, want 3 (Fig. 8)", rep.FirstOutCycle)
	}
	if rep.Cycles != 3 {
		t.Fatalf("cycles %d", rep.Cycles)
	}
}

func TestPipelineSteadyStateThroughput(t *testing.T) {
	p := NewCorePipeline(0)
	rep := p.Stream(100)
	// One item per cycle after fill: 100 items in 3 + 99 cycles.
	if rep.Cycles != 102 {
		t.Fatalf("cycles %d, want 102", rep.Cycles)
	}
	if math.Abs(rep.SteadyStateIPC-1) > 1e-9 {
		t.Fatalf("IPC %v, want 1", rep.SteadyStateIPC)
	}
}

func TestPipelineReductionAddsLatencyNotThroughput(t *testing.T) {
	short := NewCorePipeline(0).Stream(50)
	long := NewCorePipeline(3).Stream(50)
	if long.FirstOutCycle != short.FirstOutCycle+3 {
		t.Fatalf("reduction latency: %d vs %d", long.FirstOutCycle, short.FirstOutCycle)
	}
	if math.Abs(long.SteadyStateIPC-short.SteadyStateIPC) > 1e-9 {
		t.Fatal("pipelined reduction must not cut steady-state throughput")
	}
}

func TestStreamLayerMatchesLatencyModel(t *testing.T) {
	// StreamLayer's cycle count must agree with the analytic LatencyNS of
	// package mapping for in-core layers.
	l := models.LayerShape{Kind: models.Conv, InC: 64, OutC: 64, K: 3, Stride: 1, Pad: 1, InH: 16, InW: 16}
	p := mapping.Map(l)
	rep := StreamLayer(p)
	if math.Abs(rep.WallTimeNS-p.LatencyNS()) > 1e-9 {
		t.Fatalf("pipeline wall time %v vs analytic %v", rep.WallTimeNS, p.LatencyNS())
	}
}

func TestNetworkStreamThroughputBoundedBySlowestLayer(t *testing.T) {
	np := mapping.MapWorkload(models.FullVGG13(10, 300, 91.6, 90.05))
	rep := NetworkStream(np, 100)
	// VGG's slowest layer runs 1024 evaluations per image.
	want := 1.0 / 1024
	if math.Abs(rep.SteadyStateIPC-want) > 1e-12 {
		t.Fatalf("IPC %v, want %v", rep.SteadyStateIPC, want)
	}
	if rep.FirstOutCycle <= 1024 {
		t.Fatalf("fill latency %d too small", rep.FirstOutCycle)
	}
	// Streaming 100 images must take less than 100× one image's latency
	// — the point of pipelining.
	single := NetworkStream(np, 1)
	if rep.Cycles >= 100*single.Cycles {
		t.Fatalf("no pipelining benefit: %d vs %d", rep.Cycles, 100*single.Cycles)
	}
}

func TestNetworkStreamMLPFast(t *testing.T) {
	np := mapping.MapWorkload(models.FullMLP3())
	rep := NetworkStream(np, 10)
	// Every MLP layer is a single evaluation: IPC 1.
	if rep.SteadyStateIPC != 1 {
		t.Fatalf("MLP IPC %v", rep.SteadyStateIPC)
	}
}
