package arch

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/convert"
	"repro/internal/dataset"
	"repro/internal/image"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// imageBytes saves a compiled session's chip image.
func imageBytes(t *testing.T, sess *Session) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sess.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertImageRoundTrip compiles a session, saves its chip image, and
// checks that sessions loaded from the image reproduce the compiled
// session's outputs, run statistics and exported observability
// snapshot bit for bit, at every parallelism level the acceptance
// criteria name.
func assertImageRoundTrip(t *testing.T, c *convert.Converted, imgs []*tensor.Tensor, opts ...Option) {
	t.Helper()
	ctx := context.Background()
	recWant := obs.NewRecorder()
	sess := compileSession(t, c, append(append([]Option(nil), opts...), WithObserver(recWant))...)
	data := imageBytes(t, sess)
	want, err := sess.RunBatch(ctx, imgs)
	if err != nil {
		t.Fatal(err)
	}
	wantObs := obsExport(t, recWant)

	for _, par := range []int{1, 4, runtime.NumCPU()} {
		recGot := obs.NewRecorder()
		loaded, err := LoadSession(bytes.NewReader(data), append(append([]Option(nil), opts...),
			WithObserver(recGot), WithParallelism(par))...)
		if err != nil {
			t.Fatalf("parallelism %d: load: %v", par, err)
		}
		got, err := loaded.RunBatch(ctx, imgs)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for i := range got {
			wd, gd := want[i].Output.Data(), got[i].Output.Data()
			if len(wd) != len(gd) {
				t.Fatalf("parallelism %d input %d: output size %d, want %d", par, i, len(gd), len(wd))
			}
			for j := range wd {
				//nebula:lint-ignore float-eq bitwise identity is the contract under test
				if wd[j] != gd[j] {
					t.Fatalf("parallelism %d input %d col %d: loaded session diverged: %v != %v",
						par, i, j, gd[j], wd[j])
				}
			}
			if got[i].Prediction != want[i].Prediction || got[i].Spikes != want[i].Spikes ||
				got[i].Cycles != want[i].Cycles || got[i].NoCPackets != want[i].NoCPackets ||
				got[i].NoCHops != want[i].NoCHops || got[i].EDRAMAccesses != want[i].EDRAMAccesses {
				t.Fatalf("parallelism %d input %d: stats diverged: %+v vs %+v", par, i, got[i], want[i])
			}
		}
		if gotObs := obsExport(t, recGot); !bytes.Equal(gotObs, wantObs) {
			t.Fatalf("parallelism %d: loaded session's exported snapshot not bitwise identical\n--- compiled ---\n%s\n--- loaded ---\n%s",
				par, wantObs, gotObs)
		}
	}
}

func TestImageRoundTripBitwiseANN(t *testing.T) {
	c, te := chipFixture(t)
	assertImageRoundTrip(t, c, sessionImages(t, te, 6),
		WithMode(ModeANN), WithSeed(42))
}

func TestImageRoundTripBitwiseSNN(t *testing.T) {
	c, te := chipFixture(t)
	assertImageRoundTrip(t, c, sessionImages(t, te, 6),
		WithMode(ModeSNN), WithTimesteps(20), WithSeed(42))
}

func TestImageRoundTripBitwiseHybrid(t *testing.T) {
	c, te := chipFixture(t)
	assertImageRoundTrip(t, c, sessionImages(t, te, 6),
		WithMode(ModeHybrid), WithHybridSplit(1), WithTimesteps(20), WithSeed(42))
}

func TestImageRoundTripBitwiseConv(t *testing.T) {
	// Grouped convolution exercises the position-replica banks and the
	// spill blocks — the geometry the loader must rebuild exactly.
	r := rng.New(19)
	net := nn.NewNetwork("dw",
		nn.NewConv2D("dw", 4, 4, 3, 3, 1, 1, 4, r),
		nn.NewReLU("relu"),
		nn.NewFlatten("flat"),
		nn.NewLinear("fc", 4*8*8, 4, r),
	)
	d := dataset.Generate(dataset.Spec{Name: "x", Classes: 4, Channels: 4, Size: 8, Noise: 0.1, Jitter: 1}, 16, 1)
	c, err := convert.Convert(net, d, convert.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertImageRoundTrip(t, c, sessionImages(t, d, 4),
		WithMode(ModeSNN), WithTimesteps(10), WithSeed(42), WithInputShape(4, 8, 8))
}

// TestImageByteIdenticalAcrossCompiles pins the determinism half of the
// format contract: two independent compiles of the same model over
// identically seeded chips emit byte-identical images (what `make
// image-check` gates).
func TestImageByteIdenticalAcrossCompiles(t *testing.T) {
	c, te := chipFixture(t)
	_ = te
	opts := []Option{WithMode(ModeSNN), WithTimesteps(20), WithSeed(42)}
	a := imageBytes(t, compileSession(t, c, opts...))
	b := imageBytes(t, compileSession(t, c, opts...))
	if !bytes.Equal(a, b) {
		t.Fatalf("two compiles of the same model emitted different images (%d vs %d bytes)", len(a), len(b))
	}
}

// TestImageStableAcrossLoad pins the save→load→save fixed point: a
// session rehydrated from an image must re-save to the exact same
// bytes, proving the import captured every exported field.
func TestImageStableAcrossLoad(t *testing.T) {
	c, te := chipFixture(t)
	_ = te
	opts := []Option{WithMode(ModeSNN), WithTimesteps(20), WithSeed(42)}
	data := imageBytes(t, compileSession(t, c, opts...))
	loaded, err := LoadSession(bytes.NewReader(data), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if resaved := imageBytes(t, loaded); !bytes.Equal(resaved, data) {
		t.Fatalf("re-saved image differs from the original (%d vs %d bytes)", len(resaved), len(data))
	}
}

// TestLoadSessionRejectsBakedOptionChanges checks that options changing
// the programmed state itself cannot be overridden at load time.
func TestLoadSessionRejectsBakedOptionChanges(t *testing.T) {
	c, te := chipFixture(t)
	_ = te
	sess := compileSession(t, c, WithMode(ModeSNN), WithTimesteps(20), WithSeed(42))
	data := imageBytes(t, sess)
	for name, opts := range map[string][]Option{
		"mode":  {WithMode(ModeANN)},
		"split": {WithMode(ModeSNN), WithTimesteps(20), WithHybridSplit(2)},
		"shape": {WithMode(ModeSNN), WithTimesteps(20), WithInputShape(1, 16, 16)},
		"wear":  {WithMode(ModeSNN), WithTimesteps(20), WithWear(true)},
	} {
		if _, err := LoadSession(bytes.NewReader(data), opts...); err == nil {
			t.Fatalf("%s: load accepted an option that contradicts the image's programmed state", name)
		}
	}
	// Run-behaviour overrides stay legal.
	if _, err := LoadSession(bytes.NewReader(data),
		WithMode(ModeSNN), WithTimesteps(20), WithParallelism(2), WithSeed(7)); err != nil {
		t.Fatalf("run-behaviour override rejected: %v", err)
	}
}

// TestLoadSessionCrossVersionRejected flips the format version field and
// expects a typed *image.FormatError naming the version, before any
// checksum or payload work.
func TestLoadSessionCrossVersionRejected(t *testing.T) {
	c, te := chipFixture(t)
	_ = te
	data := imageBytes(t, compileSession(t, c, WithMode(ModeANN), WithSeed(42)))
	data[8]++ // format version, little-endian at offset 8
	var fe *image.FormatError
	if _, err := LoadSession(bytes.NewReader(data)); !errors.As(err, &fe) {
		t.Fatalf("version-skewed image: got %v, want *image.FormatError", err)
	}
}

// TestLoadSessionTruncatedAndFlipped holds the decoder to its typed-error
// contract on damaged inputs.
func TestLoadSessionTruncatedAndFlipped(t *testing.T) {
	c, te := chipFixture(t)
	_ = te
	data := imageBytes(t, compileSession(t, c, WithMode(ModeANN), WithSeed(42)))

	for _, n := range []int{0, 4, 19, len(data) / 2, len(data) - 1} {
		var fe *image.FormatError
		if _, err := LoadSession(bytes.NewReader(data[:n])); !errors.As(err, &fe) {
			t.Fatalf("truncated to %d bytes: got %v, want *image.FormatError", n, err)
		}
	}

	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	var ce *image.ChecksumError
	if _, err := LoadSession(bytes.NewReader(flipped)); !errors.As(err, &ce) {
		t.Fatalf("bit-flipped payload: got %v, want *image.ChecksumError", err)
	}
}

// FuzzLoadSession holds LoadSession to "never panics on hostile input":
// any byte string must yield a session or an error, not a crash.
func FuzzLoadSession(f *testing.F) {
	d := dataset.Generate(dataset.Spec{Name: "f", Classes: 4, Channels: 1, Size: 8, Noise: 0.1, Jitter: 1}, 16, 1)
	conv, err := convert.Convert(models.NewMLP3(1, 8, 4, rng.New(7)), d, convert.DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	sess, err := sessionChip().Compile(conv, WithMode(ModeANN), WithSeed(3))
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := sess.SaveImage(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add([]byte{})
	f.Add([]byte("NEBULAIM\x01\x00\x00\x00garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := LoadSession(bytes.NewReader(data))
		if err == nil && s == nil {
			t.Fatal("nil session without error")
		}
	})
}

// TestCompileCachedHitMissQuarantine drives the cache through its three
// lifecycle paths — miss+store, verified hit, corrupt entry quarantined
// and recompiled — checking outputs stay bitwise identical and the
// metrics sink sees every event.
func TestCompileCachedHitMissQuarantine(t *testing.T) {
	c, te := chipFixture(t)
	imgs := sessionImages(t, te, 4)
	ctx := context.Background()
	rec := &obs.CacheRecorder{}
	cache, err := image.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache.SetMetrics(rec)
	opts := []Option{WithMode(ModeSNN), WithTimesteps(20), WithSeed(42)}

	s1, err := sessionChip().CompileCached(c, cache, opts...)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sessionChip().CompileCached(c, cache, opts...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s1.RunBatch(ctx, imgs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.RunBatch(ctx, imgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		wd, gd := want[i].Output.Data(), got[i].Output.Data()
		for j := range wd {
			//nebula:lint-ignore float-eq bitwise identity is the contract under test
			if wd[j] != gd[j] {
				t.Fatalf("input %d col %d: cache hit diverged from compile: %v != %v", i, j, gd[j], wd[j])
			}
		}
	}
	if st := rec.Stats(); st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("after miss+hit: stats %+v, want 1 hit / 1 miss / 1 store", st)
	}

	// Corrupt the entry on disk: the next compile must quarantine it,
	// recompile, and reinstall — never fail.
	entries, err := filepath.Glob(filepath.Join(cache.Dir(), "*.nebimg"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries %v (err %v), want exactly one", entries, err)
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(entries[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sessionChip().CompileCached(c, cache, opts...); err != nil {
		t.Fatalf("compile over corrupt entry: %v", err)
	}
	if st := rec.Stats(); st.Quarantines != 1 || st.Misses != 2 || st.Stores != 2 {
		t.Fatalf("after corruption: stats %+v, want 1 quarantine / 2 misses / 2 stores", st)
	}
	if quarantined, _ := filepath.Glob(filepath.Join(cache.Dir(), "*.corrupt")); len(quarantined) != 1 {
		t.Fatalf("quarantined files %v, want exactly one", quarantined)
	}
}

// TestWithImageCacheOption covers the functional-option route into the
// cached path: Compile(WithImageCache) must hit on the second call and
// reproduce the first session's outputs bit for bit.
func TestWithImageCacheOption(t *testing.T) {
	c, te := chipFixture(t)
	imgs := sessionImages(t, te, 4)
	ctx := context.Background()
	dir := t.TempDir()
	rec := &obs.CacheRecorder{}
	opts := []Option{WithMode(ModeANN), WithSeed(42), WithImageCache(dir), WithImageCacheMetrics(rec)}

	s1, err := sessionChip().Compile(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sessionChip().Compile(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s1.RunBatch(ctx, imgs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.RunBatch(ctx, imgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		wd, gd := want[i].Output.Data(), got[i].Output.Data()
		for j := range wd {
			//nebula:lint-ignore float-eq bitwise identity is the contract under test
			if wd[j] != gd[j] {
				t.Fatalf("input %d col %d: WithImageCache hit diverged: %v != %v", i, j, gd[j], wd[j])
			}
		}
	}
	if st := rec.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss", st)
	}
}

// TestSessionGetters pins the introspection surface a session exposes.
func TestSessionGetters(t *testing.T) {
	c, te := chipFixture(t)
	_ = te
	sess := compileSession(t, c,
		WithMode(ModeHybrid), WithHybridSplit(1), WithTimesteps(12),
		WithSeed(7), WithParallelism(3))
	if sess.Mode() != ModeHybrid {
		t.Fatalf("Mode() = %v", sess.Mode())
	}
	if sess.Timesteps() != 12 {
		t.Fatalf("Timesteps() = %d", sess.Timesteps())
	}
	if sess.HybridSplit() != 1 {
		t.Fatalf("HybridSplit() = %d", sess.HybridSplit())
	}
	if sess.Seed() != 7 {
		t.Fatalf("Seed() = %d", sess.Seed())
	}
	if sess.ParallelismLimit() != 3 {
		t.Fatalf("ParallelismLimit() = %d", sess.ParallelismLimit())
	}
	if sess.EncoderKind() != "poisson" {
		t.Fatalf("EncoderKind() = %q", sess.EncoderKind())
	}

	ann := compileSession(t, c, WithMode(ModeANN))
	if ann.Timesteps() != 0 || ann.HybridSplit() != 0 {
		t.Fatalf("ANN session reports timesteps %d, split %d", ann.Timesteps(), ann.HybridSplit())
	}
	if ann.Seed() != defaultSessionSeed {
		t.Fatalf("unseeded session Seed() = %d, want the fixed default", ann.Seed())
	}

	shared := compileSession(t, c, WithMode(ModeSNN), WithTimesteps(10),
		WithSharedEncoder(snn.NewPoissonEncoder(1.0, rng.New(1))))
	if shared.EncoderKind() != "shared" {
		t.Fatalf("EncoderKind() = %q, want shared", shared.EncoderKind())
	}

	cfg := sess.Config()
	if cfg.Mode != ModeHybrid || cfg.Timesteps != 12 || cfg.HybridSplit != 1 ||
		cfg.Seed != 7 || !cfg.SeedSet || cfg.Parallelism != 3 {
		t.Fatalf("Config() = %+v", cfg)
	}
}

// TestCompileConfigRoundTrip checks the CompileConfig ↔ option-list ↔
// hash contract: Options reproduces the configuration, WithConfig
// restores it wholesale, and Hash is stable and field-sensitive.
func TestCompileConfigRoundTrip(t *testing.T) {
	cfg := CompileConfig{
		Mode: ModeHybrid, Timesteps: 9, HybridSplit: 1, Parallelism: 2,
		Seed: 99, SeedSet: true, InputShape: []int{1, 16, 16},
	}
	var sc sessionConfig
	for _, o := range cfg.Options() {
		o(&sc)
	}
	if !reflect.DeepEqual(sc.CompileConfig, cfg) {
		t.Fatalf("Options round trip: %+v != %+v", sc.CompileConfig, cfg)
	}
	var sc2 sessionConfig
	WithConfig(cfg)(&sc2)
	if !reflect.DeepEqual(sc2.CompileConfig, cfg) {
		t.Fatalf("WithConfig round trip: %+v != %+v", sc2.CompileConfig, cfg)
	}

	if cfg.Hash() != cfg.Hash() {
		t.Fatal("Hash is not deterministic")
	}
	seen := map[string]string{cfg.Hash(): "base"}
	for name, mutate := range map[string]func(*CompileConfig){
		"mode":      func(c *CompileConfig) { c.Mode = ModeSNN },
		"timesteps": func(c *CompileConfig) { c.Timesteps = 10 },
		"split":     func(c *CompileConfig) { c.HybridSplit = 2 },
		"seed":      func(c *CompileConfig) { c.Seed = 100 },
		"shape":     func(c *CompileConfig) { c.InputShape = []int{1, 8, 8} },
		"wear":      func(c *CompileConfig) { c.Wear = true },
		"kernel":    func(c *CompileConfig) { c.NoFrozenKernel = true },
	} {
		m := cfg
		m.InputShape = append([]int(nil), cfg.InputShape...)
		mutate(&m)
		h := m.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("mutating %s collides with %s", name, prev)
		}
		seen[h] = name
	}
}
