package arch

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/image"
	"repro/internal/reliability"
	"repro/internal/rng"
)

// This file is the load half of chip imaging. Rehydration reuses the
// normal compile path under the chip's restore flag — the build lays
// out identical geometry, slot routing and neuron banks but writes no
// device — then imports the recorded per-crossbar state in the same
// forEachSuperTile order the saver walked, rebakes the read kernels and
// seals the session. A loaded session is interchangeable with the one
// that was saved: same outputs bit for bit, same observability
// snapshots, at any parallelism.

// LoadSession rehydrates a compiled session from a chip image.
//
// Options adjusting run behaviour — WithTimesteps, WithParallelism,
// WithSeed, WithObserver, WithEncoder, WithSharedEncoder,
// WithFrozenKernel — may override what the image recorded. Options that
// would change the programmed state itself — WithMode, WithHybridSplit,
// WithInputShape, WithWear — must match the image (a changed value is
// rejected): that state was baked in at compile time and a load cannot
// re-derive it.
//
// Malformed, truncated or version-skewed images yield a typed
// *image.FormatError / *image.ChecksumError; LoadSession never panics
// on hostile input.
func LoadSession(r io.Reader, opts ...Option) (*Session, error) {
	p, err := image.Decode(r)
	if err != nil {
		return nil, err
	}
	cfg := sessionConfig{CompileConfig: configFromImage(p.Config)}
	stored := cfg.CompileConfig
	for _, o := range opts {
		o(&cfg)
	}
	cfg.cacheDir = "" // a load is already past the cache
	if cfg.Mode != stored.Mode {
		return nil, fmt.Errorf("arch: load: image was compiled for mode %s, not %s; the mode is baked into the programmed state", stored.Mode, cfg.Mode)
	}
	if cfg.HybridSplit != stored.HybridSplit {
		return nil, fmt.Errorf("arch: load: image was compiled with hybrid split %d, not %d", stored.HybridSplit, cfg.HybridSplit)
	}
	if !equalShape(cfg.InputShape, stored.InputShape) {
		return nil, fmt.Errorf("arch: load: image was compiled for input shape %v, not %v", stored.InputShape, cfg.InputShape)
	}
	if cfg.Wear != stored.Wear {
		return nil, fmt.Errorf("arch: load: wear mode cannot be enabled on a loaded session; compile one instead")
	}
	return loadSession(p, cfg)
}

// loadSession rehydrates a session from a decoded payload under an
// already-resolved configuration, rebuilding the model from the
// payload's spec.
func loadSession(p *image.Payload, cfg sessionConfig) (*Session, error) {
	model, err := image.DecodeModel(&p.Model)
	if err != nil {
		return nil, err
	}
	return loadSessionModel(p, model, cfg)
}

// loadSessionModel rehydrates a session from a decoded payload and an
// already-materialized model. The cache hit path enters here with the
// caller's own converted network: key equality guarantees the stored
// spec describes exactly that model, so re-deriving it from the payload
// would only reproduce what the caller already holds.
func loadSessionModel(p *image.Payload, model *convert.Converted, cfg sessionConfig) (*Session, error) {
	ch := chipFromImage(&p.Chip)
	ch.restore = true
	s, err := ch.compile(model, cfg)
	if err != nil {
		ch.restore = false
		return nil, err
	}
	if err := s.importTiles(p.Tiles); err != nil {
		ch.restore = false
		return nil, err
	}
	ch.restore = false
	if err := s.finish(reliability.Report{}); err != nil {
		return nil, err
	}
	return s, nil
}

// chipFromImage rebuilds the hardware environment a chip image records.
func chipFromImage(spec *image.ChipSpec) *Chip {
	ch := NewChip(spec.Device, spec.Crossbar, nil)
	ch.WMax = spec.WMax
	ch.FaultRate = spec.FaultRate
	ch.FaultMode = crossbar.FaultMode(spec.FaultMode)
	if spec.Rel != nil {
		rel := *spec.Rel
		ch.Rel = &rel
	}
	if spec.HadNoise {
		// A sentinel noise source. Its presence is what gates per-run
		// read noise in the engine; the chip-level stream itself is
		// never drawn from on the frozen path (runs draw from their own
		// reserved streams), so any seed reproduces the saved session's
		// behaviour bit for bit. The one divergence — per-array
		// program-variation streams consulted by post-load Retire — is
		// documented in DESIGN.md §13.
		ch.noise = rng.New(defaultSessionSeed)
	}
	ch.noiseFP, ch.noiseFPSet = spec.NoiseFingerprint, true
	ch.health = spec.Health
	return ch
}

// importTiles walks the rebuilt pipeline in canonical order and imports
// each super-tile's recorded state. The tile count and every geometry
// claim must match the rebuild exactly; a mismatch is a *FormatError.
//
// The walk itself is serial — it validates geometry, slot routing and
// index ordering — but the per-array work, decoding each state blob and
// importing it, fans out across a worker pool: the arrays are disjoint,
// so the import order does not matter, and this is where nearly all the
// load time goes. On failure the first error in canonical order is
// returned, so a corrupt image reports deterministically regardless of
// worker scheduling.
func (s *Session) importTiles(tiles []image.TileState) error {
	i := 0
	var impErr error
	var jobs []acImport
	s.forEachSuperTile(func(st *SuperTile) {
		if impErr != nil {
			return
		}
		if i >= len(tiles) {
			impErr = &image.FormatError{Reason: fmt.Sprintf("image holds %d tiles, rebuilt pipeline routes more", len(tiles))}
			return
		}
		jobs, impErr = st.importState(&tiles[i], jobs)
		i++
	})
	if impErr != nil {
		return impErr
	}
	if i != len(tiles) {
		return &image.FormatError{Reason: fmt.Sprintf("image holds %d tiles, rebuilt pipeline routes %d", len(tiles), i)}
	}
	return runImports(jobs)
}

// acImport is one deferred array restore: the target array and its
// encoded state blob.
type acImport struct {
	ac   *crossbar.Crossbar
	blob []byte
}

// runImports decodes and imports the collected array states in parallel.
func runImports(jobs []acImport) error {
	errs := make([]error, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < importWorkers(len(jobs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(jobs) {
					return
				}
				errs[j] = jobs[j].ac.ImportStateBlob(jobs[j].blob)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return &image.FormatError{Reason: "array state rejected", Err: err}
		}
	}
	return nil
}

// importState restores one super-tile from its image record: weight
// range, slot routing and retirement flags immediately, the listed
// arrays' device states as deferred jobs appended to imports. Arrays the
// image skipped stay blank, exactly as the saved tile's untouched spares
// were.
func (st *SuperTile) importState(t *image.TileState, imports []acImport) ([]acImport, error) {
	if t.Rows != st.rows || t.Cols != st.cols {
		return imports, &image.FormatError{Reason: fmt.Sprintf("tile recorded as %d×%d, rebuilt pipeline expects %d×%d", t.Rows, t.Cols, st.rows, st.cols)}
	}
	st.wmax = t.WMax
	if err := st.importSlots(t.SlotAC, t.Retired); err != nil {
		return imports, &image.FormatError{Reason: err.Error()}
	}
	last := -1
	for _, ac := range t.ACs {
		if ac.Index <= last || ac.Index >= len(st.acs) {
			return imports, &image.FormatError{Reason: fmt.Sprintf("array index %d out of order or beyond the tile's %d arrays", ac.Index, len(st.acs))}
		}
		last = ac.Index
		imports = append(imports, acImport{ac: st.acs[ac.Index], blob: ac.State})
	}
	return imports, nil
}

// equalShape compares two declared input shapes.
func equalShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
