package arch

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/spikeplane"
	"repro/internal/tensor"
)

// eventChip builds the noiseless chip the event-driven path engages on:
// with no read-noise stream, skipping a silent read cannot shift any
// RNG draw, so the engine self-gates onto bit-packed stepping.
func eventChip() *Chip {
	return NewChip(device.DefaultParams(), crossbar.Config{}, nil)
}

// compileEventSession compiles a session over a fresh noiseless chip.
func compileEventSession(t *testing.T, c *convert.Converted, opts ...Option) *Session {
	t.Helper()
	sess, err := eventChip().Compile(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// assertEventMatchesDense runs the same batch through a dense-walk
// session (WithEventDriven(false)) and event-driven sessions at
// parallelism 1, 4 and NumCPU, requiring bitwise-identical outputs,
// predictions and spike counts. Cycle/packet/access counters are
// allowed to differ: skipped stages charge nothing — that is the
// event-driven accounting contract, not a divergence. The event runs
// must actually engage the packed path (PackedWords > 0) and the dense
// runs must not.
func assertEventMatchesDense(t *testing.T, c *convert.Converted, imgs []*tensor.Tensor, opts ...Option) {
	t.Helper()
	ctx := context.Background()
	dense := compileEventSession(t, c, append(append([]Option(nil), opts...), WithEventDriven(false))...)
	want, err := dense.RunBatch(ctx, imgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range want {
		if res.PackedWords != 0 || res.SilentStageSkips != 0 || res.RepeatReads != 0 {
			t.Fatalf("input %d: dense walk touched the packed path: %+v", i, res)
		}
	}
	for _, par := range []int{1, 4, runtime.NumCPU()} {
		sess := compileEventSession(t, c, append(append([]Option(nil), opts...), WithParallelism(par))...)
		got, err := sess.RunBatch(ctx, imgs)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		var packed int64
		for i := range want {
			wd, gd := want[i].Output.Data(), got[i].Output.Data()
			if len(wd) != len(gd) {
				t.Fatalf("parallelism %d input %d: output size %d, want %d", par, i, len(gd), len(wd))
			}
			for j := range wd {
				if wd[j] != gd[j] {
					t.Fatalf("parallelism %d input %d col %d: event %v != dense %v (event path not bitwise identical)",
						par, i, j, gd[j], wd[j])
				}
			}
			if got[i].Prediction != want[i].Prediction || got[i].Spikes != want[i].Spikes {
				t.Fatalf("parallelism %d input %d: prediction/spikes diverged: %+v vs %+v",
					par, i, got[i], want[i])
			}
			packed += got[i].PackedWords
		}
		if packed == 0 {
			t.Fatalf("parallelism %d: event sessions processed no packed words — packed path never engaged", par)
		}
	}
}

func TestSessionEventDrivenSNN(t *testing.T) {
	c, te := chipFixture(t)
	assertEventMatchesDense(t, c, sessionImages(t, te, 8),
		WithMode(ModeSNN), WithTimesteps(20), WithSeed(42))
}

func TestSessionEventDrivenHybrid(t *testing.T) {
	c, te := chipFixture(t)
	assertEventMatchesDense(t, c, sessionImages(t, te, 8),
		WithMode(ModeHybrid), WithHybridSplit(1), WithTimesteps(20), WithSeed(42))
}

func TestSessionEventDrivenConv(t *testing.T) {
	// Grouped convolution exercises the per-position window planes and
	// the silent-window skip inside the im2col walk.
	r := rng.New(19)
	net := nn.NewNetwork("dw",
		nn.NewConv2D("dw", 4, 4, 3, 3, 1, 1, 4, r),
		nn.NewReLU("relu"),
		nn.NewFlatten("flat"),
		nn.NewLinear("fc", 4*8*8, 4, r),
	)
	d := dataset.Generate(dataset.Spec{Name: "x", Classes: 4, Channels: 4, Size: 8, Noise: 0.1, Jitter: 1}, 16, 1)
	c, err := convert.Convert(net, d, convert.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertEventMatchesDense(t, c, sessionImages(t, d, 6),
		WithMode(ModeSNN), WithTimesteps(10), WithSeed(42), WithInputShape(4, 8, 8))
}

// TestSessionEventDrivenSkipsAndRepeats pins that the event machinery
// actually fires on a session-shaped workload: a constant (DC) encoder
// makes every timestep identical, so after the first step the dense
// stage must serve every read from the timestep-repeat cache.
func TestSessionEventDrivenSkipsAndRepeats(t *testing.T) {
	c, te := chipFixture(t)
	const T = 10
	sess := compileEventSession(t, c,
		WithMode(ModeSNN), WithTimesteps(T), WithSeed(42),
		WithEncoder(func(r *rng.Rand) snn.Encoder { return directEnc{} }))
	img, _ := te.Sample(0)
	res, err := sess.Run(context.Background(), img)
	if err != nil {
		t.Fatal(err)
	}
	if res.RepeatReads == 0 {
		t.Fatalf("constant input produced no repeat-cache hits: %+v", res)
	}
	// Identical planes every step: the first read misses, the rest of
	// the first dense stage's steps hit.
	if res.PackedWords == 0 {
		t.Fatal("packed path never engaged")
	}
	dense, err := compileEventSession(t, c,
		WithMode(ModeSNN), WithTimesteps(T), WithSeed(42), WithEventDriven(false),
		WithEncoder(func(r *rng.Rand) snn.Encoder { return directEnc{} })).Run(context.Background(), img)
	if err != nil {
		t.Fatal(err)
	}
	od, dd := res.Output.Data(), dense.Output.Data()
	for j := range dd {
		if od[j] != dd[j] {
			t.Fatalf("col %d: repeat-cache run %v != dense %v", j, od[j], dd[j])
		}
	}
	// The repeat cache survives arena recycling (column sums are a pure
	// function of input values and conductance generation), so when the
	// arena hands run 2 the recycled state, its very first step replays
	// run 1's last read — one more hit than the cold run. The arena is
	// a sync.Pool, which may also drop the state and miss that step.
	// Either way the crossbar stats must match bitwise: hit and miss
	// fold identical per-read stats, which is the replay contract.
	res2, err := sess.Run(context.Background(), img)
	if err != nil {
		t.Fatal(err)
	}
	if res2.RepeatReads < res.RepeatReads {
		t.Fatalf("second run hit %d times, want at least the cold run's %d",
			res2.RepeatReads, res.RepeatReads)
	}
	if res2.Crossbar != res.Crossbar {
		t.Fatalf("replayed crossbar stats not bitwise identical: %+v vs %+v",
			res2.Crossbar, res.Crossbar)
	}
	od2 := res2.Output.Data()
	for j := range od {
		if od2[j] != od[j] {
			t.Fatalf("col %d: warm-cache run %v != cold run %v", j, od2[j], od[j])
		}
	}
}

// directEnc feeds the raw image every timestep (a graded, constant
// plane) — the workload the timestep-repeat cache exists for.
type directEnc struct{}

func (directEnc) Encode(img *tensor.Tensor) *tensor.Tensor { return img.Clone() }

// TestSuperTileEvaluateReadPacked drives a programmed super-tile
// through the packed and index read paths with the same inputs and
// requires bitwise-identical column sums, covering sparse, dense,
// all-zero and noisy planes plus the stale-kernel fallback.
func TestSuperTileEvaluateReadPacked(t *testing.T) {
	const rf, k = 200, 40 // stack=2 (second window ragged), sets=1
	r := rng.New(7)
	w := tensor.New(rf, k)
	for i := range w.Data() {
		w.Data()[i] = r.Float64()*2 - 1
	}
	build := func(noise *rng.Rand) *SuperTile {
		st := NewSuperTile(device.DefaultParams(), crossbar.Config{ReadNoiseSigma: 0}, noise)
		if err := st.Program(w, 1.0); err != nil {
			t.Fatal(err)
		}
		st.Bake()
		return st
	}
	st := build(nil)
	mkInput := func(density float64, seed uint64) ([]float64, *spikeplane.Plane) {
		rr := rng.New(seed)
		in := make([]float64, rf)
		for i := range in {
			if rr.Float64() < density {
				in[i] = 1
			}
		}
		var pl spikeplane.Plane
		pl.Pack(in)
		return in, &pl
	}
	for _, density := range []float64{0, 0.01, 0.1, 0.5, 1} {
		in, pl := mkInput(density, 11)
		want := make([]float64, k)
		got := make([]float64, k)
		var sc, scP EvalScratch
		if err := st.EvaluateReadInto(want, in, nil, nil, nil, &sc); err != nil {
			t.Fatal(err)
		}
		if err := st.EvaluateReadPacked(got, in, pl, nil, nil, &scP); err != nil {
			t.Fatal(err)
		}
		for c := range want {
			if want[c] != got[c] {
				t.Fatalf("density %v col %d: packed %v != index %v", density, c, got[c], want[c])
			}
		}
	}
	// Noisy read: identical streams must produce identical sums — the
	// packed path must not skip silent windows when draws are at stake.
	stN := NewSuperTile(device.DefaultParams(), crossbar.Config{ReadNoiseSigma: 0.05}, rng.New(3))
	if err := stN.Program(w, 1.0); err != nil {
		t.Fatal(err)
	}
	stN.Bake()
	in, pl := mkInput(0.1, 13)
	want := make([]float64, k)
	got := make([]float64, k)
	var sc, scP EvalScratch
	if err := stN.EvaluateReadInto(want, in, nil, rng.New(99), nil, &sc); err != nil {
		t.Fatal(err)
	}
	if err := stN.EvaluateReadPacked(got, in, pl, rng.New(99), nil, &scP); err != nil {
		t.Fatal(err)
	}
	for c := range want {
		if want[c] != got[c] {
			t.Fatalf("noisy col %d: packed %v != index %v", c, got[c], want[c])
		}
	}
	// Stale kernel: invalidate one array and require the transparent
	// index-path fallback to keep serving identical sums.
	stale := build(nil)
	stale.acs[stale.slotAC[0]].InjectStuckFaults(rng.New(5), 0.01, crossbar.StuckAP)
	if stale.acs[stale.slotAC[0]].KernelFresh() {
		t.Fatal("fault injection did not invalidate the kernel")
	}
	in2, pl2 := mkInput(0.1, 17)
	want2 := make([]float64, k)
	got2 := make([]float64, k)
	var sc2, scP2 EvalScratch
	if err := stale.EvaluateReadInto(want2, in2, nil, nil, nil, &sc2); err != nil {
		t.Fatal(err)
	}
	if err := stale.EvaluateReadPacked(got2, in2, pl2, nil, nil, &scP2); err != nil {
		t.Fatal(err)
	}
	for c := range want2 {
		if want2[c] != got2[c] {
			t.Fatalf("stale col %d: fallback %v != index %v", c, got2[c], want2[c])
		}
	}
	if cap(scP2.idx) == 0 {
		t.Fatal("stale fallback did not materialize plane indices")
	}
}
