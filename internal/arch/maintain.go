package arch

import (
	"context"
	"fmt"

	"repro/internal/crossbar"
	"repro/internal/reliability"
	"repro/internal/rng"
)

// This file is the online-maintenance surface of a compiled session: the
// generation-stamp pristineness check that proves the programmed arrays
// have not mutated since compile (or since the last scrub), retention
// ageing and fault onset hooks for chaos injection, and Scrub — the
// in-service refresh + re-BIST pass that session pools run between
// batches. Compile-time protection (BIST, sparing, retirement) defends a
// chip once; this layer is what keeps a long-running replica honest.

// forEachSuperTile visits every super-tile the compiled pipeline routes
// reads through, in the fixed pipeline order (spiking cores, their spill
// blocks, then continuous cores). The order is deterministic, which
// makes every maintenance pass over it reproducible.
func (s *Session) forEachSuperTile(f func(st *SuperTile)) {
	for _, hw := range s.snnStages {
		if hw.snnCore != nil {
			f(hw.snnCore.ST)
		}
		if hw.spill != nil {
			for _, st := range hw.spill.blocks {
				f(st)
			}
		}
	}
	for _, hw := range s.annStages {
		if hw.core != nil {
			f(hw.core.ST)
		}
	}
}

// stampGenerations snapshots the generation counter of every slot-routed
// crossbar. The stamp is taken when the arrays are known-good — at the
// end of Compile and after a successful Scrub — and Pristine compares
// against it.
func (s *Session) stampGenerations() {
	stamp := s.genStamp[:0]
	s.forEachSuperTile(func(st *SuperTile) {
		for slot := 0; slot < st.Slots(); slot++ {
			stamp = append(stamp, st.SlotCrossbar(slot).Generation())
		}
	})
	s.genStamp = stamp
}

// Pristine reports whether every slot-routed array still carries the
// generation stamp recorded when the session was last known good. Any
// mutation since — retention ticking, fault onset, a stray write — turns
// it false, and a router must treat the session's results as suspect
// until a Scrub restores and re-stamps it. Pristine is read-only and
// safe to call concurrently with frozen-path runs; it must not race a
// mutator (callers serialize it against Scrub and the chaos hooks).
func (s *Session) Pristine() bool {
	i := 0
	ok := true
	s.forEachSuperTile(func(st *SuperTile) {
		for slot := 0; slot < st.Slots(); slot++ {
			if i >= len(s.genStamp) || st.SlotCrossbar(slot).Generation() != s.genStamp[i] {
				ok = false
			}
			i++
		}
	})
	return ok && i == len(s.genStamp)
}

// AgeRetention advances the retention clock of every array by the given
// number of timesteps without running anything — the drift a replica
// accumulates while idle, or a chaos harness's drift burst. Ageing
// invalidates the generation stamps, so the session stops being Pristine
// until the next Scrub. Callers must ensure no run is in flight.
func (s *Session) AgeRetention(steps int64) {
	if steps <= 0 {
		return
	}
	s.wearMu.Lock()
	defer s.wearMu.Unlock()
	s.forEachSuperTile(func(st *SuperTile) {
		st.Tick(steps)
		if age := st.MaxAge(); age > s.chip.health.MaxDriftAge {
			s.chip.health.MaxDriftAge = age
		}
	})
}

// InjectStuckFaults strikes every array of the compiled session with
// fresh permanently stuck devices at the given per-device fraction — the
// in-service fault onset DW-MTJ devices exhibit under operation, and the
// stuck-onset storm of the chaos harness. The injection is deterministic
// for a fixed seed. It returns the number of devices stuck. Callers must
// ensure no run is in flight.
func (s *Session) InjectStuckFaults(seed uint64, fraction float64, mode crossbar.FaultMode) int {
	s.wearMu.Lock()
	defer s.wearMu.Unlock()
	r := rng.New(seed)
	n := 0
	s.forEachSuperTile(func(st *SuperTile) {
		n += st.InjectStuckFaults(r.Split(), fraction, mode)
	})
	s.chip.health.DevicesFaulted += int64(n)
	return n
}

// Scrub is the online maintenance pass: every array is refreshed
// (pairs rewritten to their programmed targets, undoing retention drift
// and read disturb) and then re-BIST scanned, the frozen read kernels
// are rebaked, and the generation stamps are renewed. The returned
// report covers this pass only — ArraysScanned/PairsScanned/ScanReads
// for the scan, FaultsFound and Unmitigated for the residual faulty
// pairs that survived the rewrite (permanently stuck or weak devices),
// Refreshes for the scrub work — so a router can feed it straight into
// Report.Healthy.
//
// When the chip carries a reliability config and the residual fault
// fraction exceeds its policy threshold, Scrub returns a
// *reliability.DegradedError (with the pass report attached): the
// hardware is past saving and the session must not serve. Cancellation
// is honoured between super-tiles.
//
// Scrub mutates the programmed arrays and must not run concurrently
// with any Run/RunBatch on the same session; pools hold the replica's
// exclusive lock across it.
func (s *Session) Scrub(ctx context.Context) (reliability.Report, error) {
	s.wearMu.Lock()
	defer s.wearMu.Unlock()

	var rpt reliability.Report
	var ctxErr error
	s.forEachSuperTile(func(st *SuperTile) {
		if ctxErr != nil {
			return
		}
		if err := ctx.Err(); err != nil {
			ctxErr = err
			return
		}
		if age := st.MaxAge(); age > rpt.MaxDriftAge {
			rpt.MaxDriftAge = age
		}
		st.Refresh()
		rpt.Refreshes++
		for slot := 0; slot < st.Slots(); slot++ {
			m := st.SlotCrossbar(slot).Verify()
			rpt.ArraysScanned++
			rpt.PairsScanned += int64(m.Rows * m.Cols)
			rpt.ScanReads += m.ScanReads
			residual := int64(m.Count())
			rpt.FaultsFound += residual
			rpt.Unmitigated += residual
		}
	})
	if ctxErr != nil {
		return rpt, ctxErr
	}

	// The arrays are back at their programmed targets (minus whatever is
	// permanently stuck); freeze them again and renew the stamps so the
	// session is Pristine for the next run.
	if !s.cfg.NoFrozenKernel && !s.cfg.Wear {
		s.bakeKernels()
	}
	s.stampGenerations()

	if s.chip.Rel != nil && rpt.PairsScanned > 0 &&
		rpt.UnmitigatedFrac() > s.chip.Rel.Policy.MaxUnmitigatedFrac {
		rpt.Degraded = true
		s.mergeScrubHealth(rpt)
		return rpt, &reliability.DegradedError{
			Reason: fmt.Sprintf("online scrub: unmitigated fault fraction %.4f exceeds policy %.4f",
				rpt.UnmitigatedFrac(), s.chip.Rel.Policy.MaxUnmitigatedFrac),
			Report: rpt,
		}
	}
	s.mergeScrubHealth(rpt)
	return rpt, nil
}

// mergeScrubHealth folds one scrub pass into the chip's cumulative
// health report. Unmitigated is deliberately left out of the cumulative
// merge: it is a level (the residual at this scrub), not a counter, and
// re-adding it every pass would inflate the commissioning-time residual
// the cumulative report records.
func (s *Session) mergeScrubHealth(rpt reliability.Report) {
	cum := rpt
	cum.Unmitigated = 0
	s.chip.health.Merge(cum)
}
