package arch

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/convert"
	"repro/internal/image"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/reliability"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// This file is the program-once / run-many inference API. Compile performs
// everything the paper amortizes across requests — mapping, crossbar
// programming, fault injection and the BIST/protect pipeline — exactly
// once, and returns a Session whose Run/RunBatch stream inputs through the
// programmed hardware. The compiled state (super-tiles, geometry, weights)
// is immutable during runs; everything an inference mutates (neuron
// membranes, RU registers, pooling IF state, read-out accumulators,
// statistics) lives in per-run state drawn from a sync.Pool arena, so
// batches execute concurrently and still reproduce the sequential results
// bit for bit.

// Mode selects the operating modality of a compiled session — the
// morphable multi-modality of §IV-B4 exercised on identical crossbar
// contents.
type Mode int

const (
	// ModeANN runs a single continuous-activation pass.
	ModeANN Mode = iota
	// ModeSNN runs T encoded timesteps through spiking cores.
	ModeSNN
	// ModeHybrid runs a spiking front for T timesteps, accumulates the
	// boundary spikes digitally, and finishes with one ANN pass.
	ModeHybrid
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeANN:
		return "ann"
	case ModeSNN:
		return "snn"
	case ModeHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// CompileError reports a failed session compilation. It wraps the
// underlying cause — notably *reliability.DegradedError when the
// BIST/protect pipeline refuses a core — so errors.Is / errors.As reach
// through it.
type CompileError struct {
	// Mode is the requested operating mode.
	Mode Mode
	// Model names the converted network being compiled.
	Model string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *CompileError) Error() string {
	return fmt.Sprintf("arch: compile %s session for %q: %v", e.Mode, e.Model, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *CompileError) Unwrap() error { return e.Err }

// EncoderFactory builds a per-run input encoder from that run's private
// RNG stream. It must not capture shared mutable state: the engine calls
// it once per input, possibly from concurrent workers.
type EncoderFactory func(r *rng.Rand) snn.Encoder

// CompileConfig is the serializable half of a Compile call's
// configuration: every option that shapes the compiled chip state or the
// run semantics and can round-trip through a chip image. The
// process-local options — encoder factories, shared encoders, observers,
// image caches — stay functional-only and never enter an image.
//
// Construct one with zero values plus field assignment, or recover one
// from a compiled session with Session.Config; WithConfig turns it back
// into an option and Options reconstructs the full option list.
type CompileConfig struct {
	// Mode is the operating modality.
	Mode Mode
	// Timesteps is the spiking evidence window. Required (≥ 1) for
	// ModeSNN and ModeHybrid; ignored by ModeANN.
	Timesteps int
	// HybridSplit is how many trailing weighted layers (including the
	// read-out) run in the ANN domain. Required for ModeHybrid.
	HybridSplit int
	// Parallelism bounds the number of RunBatch worker goroutines
	// (≤ 0: runtime.NumCPU()). Results are bitwise independent of it.
	Parallelism int
	// Seed seeds the session's RNG tree; SeedSet records whether it was
	// given explicitly. Compile resolves an unset seed to the fixed
	// default, so after compilation Seed is always the effective seed.
	Seed    uint64
	SeedSet bool
	// InputShape is the declared input tensor shape (c, h, w), when
	// given. Spiking convolution stages require it.
	InputShape []int
	// Wear enables per-evaluation wear modelling (serializes runs).
	Wear bool
	// NoFrozenKernel disables baking the frozen-conductance read
	// kernels at compile time.
	NoFrozenKernel bool
}

// Options reconstructs a functional-option list that reproduces this
// configuration, so a stored CompileConfig can drive a fresh Compile.
func (c CompileConfig) Options() []Option {
	opts := []Option{
		WithMode(c.Mode),
		WithTimesteps(c.Timesteps),
		WithHybridSplit(c.HybridSplit),
		WithParallelism(c.Parallelism),
		WithWear(c.Wear),
		WithFrozenKernel(!c.NoFrozenKernel),
	}
	if len(c.InputShape) > 0 {
		opts = append(opts, WithInputShape(c.InputShape...))
	}
	if c.SeedSet {
		opts = append(opts, WithSeed(c.Seed))
	}
	return opts
}

// Hash returns a stable content hash of the configuration: the SHA-256
// hex digest of a fixed-order little-endian encoding of every field.
// Two configurations hash equal exactly when they compile identically
// over the same model and chip.
func (c CompileConfig) Hash() string {
	h := sha256.New()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		_, _ = h.Write(b[:]) // sha256 writes never fail
	}
	putBool := func(v bool) {
		if v {
			put(1)
		} else {
			put(0)
		}
	}
	put(uint64(int64(c.Mode)))
	put(uint64(int64(c.Timesteps)))
	put(uint64(int64(c.HybridSplit)))
	put(uint64(int64(c.Parallelism)))
	put(c.Seed)
	putBool(c.SeedSet)
	put(uint64(len(c.InputShape)))
	for _, d := range c.InputShape {
		put(uint64(int64(d)))
	}
	putBool(c.Wear)
	putBool(c.NoFrozenKernel)
	return hex.EncodeToString(h.Sum(nil))
}

// sessionConfig collects the full option state of one Compile call: the
// serializable CompileConfig plus the process-local halves that cannot
// round-trip through an image.
type sessionConfig struct {
	CompileConfig
	encFactory EncoderFactory
	// encCustom records a caller-supplied factory; such sessions are
	// not imageable (a closure cannot be serialized), so the compile
	// cache bypasses them.
	encCustom bool
	sharedEnc snn.Encoder
	rec       *obs.Recorder
	// cacheDir routes Compile through a content-addressed image cache
	// when non-empty; cacheMetrics, when non-nil, observes that cache.
	cacheDir     string
	cacheMetrics image.Metrics
	// noEvent disables the bit-packed event-driven stepping path, forcing
	// the dense walk. Execution-regime knob only: results are bitwise
	// identical either way, so it is not part of CompileConfig (and not
	// hashed into image cache keys).
	noEvent bool
}

// Option configures Compile.
type Option func(*sessionConfig)

// WithConfig applies every serializable option at once — the inverse of
// Session.Config. Options applied after it still override individual
// fields.
func WithConfig(c CompileConfig) Option {
	return func(sc *sessionConfig) {
		c.InputShape = append([]int(nil), c.InputShape...)
		sc.CompileConfig = c
	}
}

// WithMode selects the operating modality (default ModeANN).
func WithMode(m Mode) Option { return func(c *sessionConfig) { c.Mode = m } }

// WithTimesteps sets the spiking evidence window. Required (≥ 1) for
// ModeSNN and ModeHybrid; ignored by ModeANN.
func WithTimesteps(t int) Option { return func(c *sessionConfig) { c.Timesteps = t } }

// WithHybridSplit sets how many trailing weighted layers (including the
// read-out) run in the ANN domain, mirroring hybrid.Split. Required for
// ModeHybrid.
func WithHybridSplit(nonSpiking int) Option {
	return func(c *sessionConfig) { c.HybridSplit = nonSpiking }
}

// WithParallelism bounds the number of worker goroutines RunBatch uses
// (n ≤ 0 or omitted: runtime.NumCPU()). Results are bitwise independent
// of the setting; it only trades wall-clock for cores.
func WithParallelism(n int) Option { return func(c *sessionConfig) { c.Parallelism = n } }

// WithEncoder installs a factory building each run's input encoder from
// that run's private RNG stream (default: a PoissonEncoder at the model's
// conversion gain). Spiking modes only. Sessions with a custom factory
// cannot be imaged: the closure has no serializable form.
func WithEncoder(f EncoderFactory) Option {
	return func(c *sessionConfig) { c.encFactory = f; c.encCustom = true }
}

// WithSharedEncoder installs one caller-owned encoder used by every run.
// A shared encoder serializes the session (parallelism 1): its internal
// RNG state would otherwise be raced and reorder draws.
func WithSharedEncoder(e snn.Encoder) Option { return func(c *sessionConfig) { c.sharedEnc = e } }

// WithInputShape declares the input tensor shape (c, h, w). Spiking
// convolution stages need it at compile time to size their
// position-replica neuron banks; dense-only models may omit it.
func WithInputShape(dims ...int) Option {
	return func(c *sessionConfig) { c.InputShape = append([]int(nil), dims...) }
}

// WithSeed seeds the session's RNG tree, from which every run reserves
// its private encoder and read-noise streams. Two sessions compiled with
// the same seed over the same chip produce identical run streams.
func WithSeed(seed uint64) Option {
	return func(c *sessionConfig) { c.Seed = seed; c.SeedSet = true }
}

// WithImageCache routes Compile through the content-addressed chip-image
// cache rooted at dir: a hit rehydrates the session from the stored
// image (skipping programming, fault injection and BIST), a miss
// compiles normally and installs the image for the next compile. See
// CompileCached for the cache-object form and the bypass rules.
func WithImageCache(dir string) Option { return func(c *sessionConfig) { c.cacheDir = dir } }

// WithImageCacheMetrics attaches a hit/miss/store/quarantine sink (e.g.
// an *obs.CacheRecorder) to the cache WithImageCache creates. Ignored
// without WithImageCache.
func WithImageCacheMetrics(m image.Metrics) Option {
	return func(c *sessionConfig) { c.cacheMetrics = m }
}

// WithObserver attaches a metrics recorder: each run's activity is
// tallied per stage into a private shard and merged into rec when the
// run (or its whole batch) succeeds. A nil recorder — the default —
// disables observation entirely; the engine then takes no accounting
// branches, touches no atomics and allocates no shards, so disabled
// sessions run at the unobserved speed. One recorder may observe several
// sessions compiled from the same model in the same mode (its Bind
// rejects mismatched schemas).
func WithObserver(rec *obs.Recorder) Option { return func(c *sessionConfig) { c.rec = rec } }

// WithWear(true) makes every run model per-evaluation wear exactly like
// the deprecated entry points: crossbar reads apply read disturb and
// shared activity counters, the retention clock ticks (and the scrub
// policy runs) per timestep, and spikes traverse the shared mesh. Wear
// mutates the programmed arrays, so wear sessions always execute
// sequentially regardless of WithParallelism.
func WithWear(on bool) Option { return func(c *sessionConfig) { c.Wear = on } }

// WithFrozenKernel(false) disables baking the frozen-conductance read
// kernels at compile time, forcing every MACRead through the reference
// dense path. The kernels are bitwise identical to the reference, so
// this only trades speed for nothing — it exists for differential
// testing and benchmarking of the fast path. Default: enabled.
func WithFrozenKernel(on bool) Option { return func(c *sessionConfig) { c.NoFrozenKernel = !on } }

// WithEventDriven(false) disables the bit-packed event-driven stepping
// path (DESIGN.md §15), forcing every timestep through the dense walk.
// The event path self-gates to runs without a read-noise stream and
// produces bitwise-identical outputs, so this knob only trades speed
// for nothing — it exists for differential testing and benchmarking,
// mirroring WithFrozenKernel. Default: enabled.
func WithEventDriven(on bool) Option { return func(c *sessionConfig) { c.noEvent = !on } }

// defaultSessionSeed seeds sessions that set no WithSeed; a fixed
// constant keeps the default fully reproducible run to run.
const defaultSessionSeed uint64 = 0x9e3779b97f4a7c15

// Session is a compiled inference pipeline: programmed (and protected)
// crossbar hardware plus the run configuration. The compiled state is
// read-only during runs; Run and RunBatch are safe for concurrent use
// unless the session was compiled WithWear or WithSharedEncoder.
type Session struct {
	chip  *Chip
	cfg   sessionConfig
	model *convert.Converted

	// snnStages is the spiking pipeline (ModeSNN: all stages; ModeHybrid:
	// the front up to the cut). annStages is the continuous pipeline
	// (ModeANN: all stages; ModeHybrid: the tail from the cut).
	snnStages []*stageHW
	annStages []*annStageHW
	// lambda is the activation scale at the hybrid boundary.
	lambda float64

	// rec is the attached metrics recorder (nil: observation disabled).
	// obsLayout is the counter schema built at compile time; snnBase /
	// annBase are the bucket offsets of the spiking and continuous
	// pipelines within it; traceOn caches rec.TraceEnabled(); engineHops
	// is the mesh distance the engine charges per inter-stage packet.
	rec        *obs.Recorder
	obsLayout  *obs.Layout
	snnBase    int
	annBase    int
	traceOn    bool
	engineHops int64

	// mu guards the stream reservation; streams is the session RNG parent
	// from which each run draws its two private streams in input order.
	mu      sync.Mutex
	streams *rng.Rand
	// wearMu serializes wear-mode runs, which mutate the programmed
	// arrays and the chip health report.
	wearMu sync.Mutex
	// genStamp is the per-array generation baseline recorded when the
	// session was last known good (Compile, Scrub); see Pristine.
	genStamp []uint64
	// arena recycles per-run scratch state across runs and workers.
	arena sync.Pool
}

// Compile lowers a converted network onto the chip for the requested
// mode: cores are created and programmed, conv position replicas are
// allocated, and — when the reliability subsystem is enabled — the fault
// profile is injected and the BIST/protect pipeline runs, exactly once.
// All errors are returned as *CompileError wrapping the cause (including
// *reliability.DegradedError when protection is exhausted).
func (ch *Chip) Compile(model *convert.Converted, opts ...Option) (*Session, error) {
	cfg := sessionConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.cacheDir != "" {
		cache, err := image.NewCache(cfg.cacheDir)
		if err != nil {
			return nil, &CompileError{Mode: cfg.Mode, Model: model.SNN.Name(), Err: err}
		}
		if cfg.cacheMetrics != nil {
			cache.SetMetrics(cfg.cacheMetrics)
		}
		return ch.compileCached(model, cache, cfg)
	}
	return ch.compile(model, cfg)
}

// compile is the uncached compilation path shared by Compile, the image
// cache and the image loader.
func (ch *Chip) compile(model *convert.Converted, cfg sessionConfig) (*Session, error) {
	fail := func(err error) (*Session, error) {
		return nil, &CompileError{Mode: cfg.Mode, Model: model.SNN.Name(), Err: err}
	}
	switch cfg.Mode {
	case ModeANN, ModeSNN, ModeHybrid:
	default:
		return fail(fmt.Errorf("unknown mode %d", int(cfg.Mode)))
	}
	if cfg.Mode != ModeANN && cfg.Timesteps < 1 {
		return fail(fmt.Errorf("%s mode needs WithTimesteps ≥ 1, got %d", cfg.Mode, cfg.Timesteps))
	}
	if cfg.encFactory == nil {
		gain := model.Cfg.Gain
		if gain <= 0 {
			gain = 1.0
		}
		cfg.encFactory = func(r *rng.Rand) snn.Encoder { return snn.NewPoissonEncoder(gain, r) }
	}

	// Snapshot the cumulative health report so the observer can attribute
	// exactly this compilation's BIST/repair work.
	healthBefore := ch.health

	s := &Session{chip: ch, cfg: cfg, model: model}
	var err error
	switch cfg.Mode {
	case ModeANN:
		s.annStages, err = ch.buildANNStages(model, 0)
	case ModeSNN:
		s.snnStages, err = ch.buildSNN(model)
		if err == nil {
			err = ch.programPositions(s.snnStages, cfg.InputShape)
		}
	case ModeHybrid:
		var splitStage int
		splitStage, s.lambda, err = hybridCut(model, cfg.HybridSplit)
		if err == nil {
			// Build the full spiking pipeline and truncate at the cut,
			// mirroring the legacy entry point so core and stream
			// allocation orders are identical.
			s.snnStages, err = ch.buildSNN(model)
		}
		if err == nil {
			s.snnStages = s.snnStages[:model.Stages[splitStage].SNNLayer]
			err = ch.programPositions(s.snnStages, cfg.InputShape)
		}
		if err == nil {
			s.annStages, err = ch.buildANNStages(model, splitStage)
		}
	}
	if err != nil {
		if cfg.rec != nil {
			// A refused compile still did real BIST/repair work — and a
			// degradation refusal is exactly the event an operator
			// watches for — so the reliability delta is recorded even
			// though no session exists to run.
			cfg.rec.RecordProgram(failedCompileRecord(ch.health.Delta(healthBefore), err))
		}
		return fail(err)
	}

	if ch.restore {
		// A restore build is a geometry-only skeleton: the loader imports
		// the programmed state next and then finishes the session itself.
		return s, nil
	}
	if err := s.finish(healthBefore); err != nil {
		return fail(err)
	}
	return s, nil
}

// finish seals a built session: the read kernels are baked, the RNG
// tree seeded, the scratch arena and mesh accounting wired, the
// observer attached and the known-good generation baseline stamped. The
// stage hardware must hold its final programmed (or imported) state.
func (s *Session) finish(healthBefore reliability.Report) error {
	// Freeze the programmed conductance planes into read kernels. Wear
	// sessions skip the bake: their reads mutate the arrays, so kernels
	// would go stale after the first evaluation anyway.
	if !s.cfg.NoFrozenKernel && !s.cfg.Wear {
		s.bakeKernels()
	}

	if !s.cfg.SeedSet {
		s.cfg.Seed = defaultSessionSeed
	}
	s.streams = rng.New(s.cfg.Seed)
	s.arena.New = func() interface{} { return s.newRunState() }
	// Every inter-stage packet crosses the fixed engine placement — the
	// same adjacent pair the wear path drives through Mesh.Send.
	s.engineHops = int64(s.chip.Mesh.Hops(noc.Node{X: 0, Y: 0}, noc.Node{X: 1, Y: 0}))
	if s.cfg.rec != nil {
		if err := s.attachObserver(s.cfg.rec, healthBefore); err != nil {
			return err
		}
	}
	// The arrays are final; record the known-good generation baseline
	// that Pristine checks against.
	s.stampGenerations()
	return nil
}

// bakeKernels freezes every programmed super-tile's conductance planes
// into flat read kernels (see crossbar.BakeKernel). Compile is the one
// point where the arrays are final — programmed, BIST-repaired and
// protected — and no run is in flight, so baking here is race-free.
func (s *Session) bakeKernels() {
	for _, hw := range s.snnStages {
		if hw.snnCore != nil {
			hw.snnCore.ST.Bake()
		}
		if hw.spill != nil {
			for _, st := range hw.spill.blocks {
				st.Bake()
			}
		}
	}
	for _, hw := range s.annStages {
		if hw.core != nil {
			hw.core.ST.Bake()
		}
	}
}

// Mode returns the session's operating mode.
func (s *Session) Mode() Mode { return s.cfg.Mode }

// Timesteps returns the spiking evidence window (0 for ModeANN).
func (s *Session) Timesteps() int {
	if s.cfg.Mode == ModeANN {
		return 0
	}
	return s.cfg.Timesteps
}

// Seed returns the effective session RNG seed: the explicit WithSeed
// value, or the fixed default when none was given.
func (s *Session) Seed() uint64 { return s.cfg.Seed }

// HybridSplit returns the configured number of trailing weighted layers
// running in the ANN domain (0 outside ModeHybrid).
func (s *Session) HybridSplit() int {
	if s.cfg.Mode != ModeHybrid {
		return 0
	}
	return s.cfg.HybridSplit
}

// ParallelismLimit returns the configured worker bound as given
// (≤ 0: resolve at run time to the core count); see Parallelism for the
// effective per-batch value.
func (s *Session) ParallelismLimit() int { return s.cfg.Parallelism }

// EncoderKind names the session's input-encoder arrangement: "poisson"
// for the default per-run factory, "custom" for a WithEncoder factory,
// "shared" for a WithSharedEncoder instance.
func (s *Session) EncoderKind() string {
	switch {
	case s.cfg.sharedEnc != nil:
		return "shared"
	case s.cfg.encCustom:
		return "custom"
	}
	return "poisson"
}

// Config returns the session's serializable compile configuration —
// everything needed to rebuild an equivalent session over the same
// model and chip (feed it to WithConfig). The returned value shares no
// memory with the session.
func (s *Session) Config() CompileConfig {
	c := s.cfg.CompileConfig
	c.InputShape = append([]int(nil), c.InputShape...)
	return c
}

// Parallelism returns the worker bound RunBatch will use for n inputs.
func (s *Session) Parallelism(n int) int {
	if s.cfg.Wear || s.cfg.sharedEnc != nil {
		return 1
	}
	p := s.cfg.Parallelism
	if p <= 0 {
		p = runtime.NumCPU()
	}
	if n > 0 && p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// programPositions allocates and protects the position-replica banks of
// spiking conv stages by propagating the input shape through the
// pipeline; the legacy entry points did this lazily on the first
// timestep. Dense-only pipelines need no shape.
func (ch *Chip) programPositions(stages []*stageHW, shape []int) error {
	h, w := 0, 0
	haveShape := len(shape) == 3
	if haveShape {
		h, w = shape[1], shape[2]
	}
	for _, s := range stages {
		switch s.kind {
		case "conv":
			if !haveShape {
				return fmt.Errorf("model has convolution stages; pass WithInputShape(c, h, w) so position replicas can be sized at compile time")
			}
			oh := tensor.ConvOutSize(h, s.kh, s.stride, s.pad)
			ow := tensor.ConvOutSize(w, s.kw, s.stride, s.pad)
			if err := s.kmProgram(oh * ow * s.groups); err != nil {
				return err
			}
			if err := ch.prepare(s.snnCore.ST); err != nil {
				return err
			}
			h, w = oh, ow
		case "pool":
			if haveShape {
				h = tensor.ConvOutSize(h, s.pool.K, s.pool.Stride, 0)
				w = tensor.ConvOutSize(w, s.pool.K, s.pool.Stride, 0)
			}
		}
	}
	return nil
}

// hybridCut locates the stage index of the first ANN-domain weighted
// stage and the activation scale λ of the last spiking stage before it.
func hybridCut(model *convert.Converted, nonSpiking int) (splitStage int, lambda float64, err error) {
	var weighted []int
	for i, st := range model.Stages {
		if st.Weighted {
			weighted = append(weighted, i)
		}
	}
	if nonSpiking < 1 || nonSpiking >= len(weighted) {
		return 0, 0, fmt.Errorf("hybrid split must be in [1, %d), got %d (set WithHybridSplit)", len(weighted), nonSpiking)
	}
	splitStage = weighted[len(weighted)-nonSpiking]
	lambda = 1.0
	for _, st := range model.Stages[:splitStage] {
		if st.Kind != "flatten" {
			lambda = st.Lambda
		}
	}
	return splitStage, lambda, nil
}
