package arch

import (
	"fmt"

	"repro/internal/mapping"
)

// PipelineReport summarizes a streaming simulation of the Fig. 8 pipeline.
type PipelineReport struct {
	// Items is the number of work items streamed.
	Items int
	// Cycles is the total cycle count until the last item drained.
	Cycles int64
	// FirstOutCycle is when the first item completed (fill latency).
	FirstOutCycle int64
	// SteadyStateIPC is items per cycle once the pipeline is full.
	SteadyStateIPC float64
	// WallTimeNS converts Cycles at the 110 ns stage latency.
	WallTimeNS float64
}

// pipeStage models one stage of a synchronous pipeline with unit
// occupancy per item.
type pipeStage struct {
	name string
	// busyUntil is the cycle the stage frees up.
	busyUntil int64
}

// Pipeline is a synchronous in-order pipeline simulator: items advance one
// stage per cycle when the next stage is free. It reproduces the Fig. 8
// timing — fetch (eDRAM→IB), evaluate (crossbar+NU), write-back (OB→eDRAM)
// — plus optional reduction stages on the multi-NC spill path.
type Pipeline struct {
	stages []pipeStage
}

// NewCorePipeline builds the 3-stage neural-core pipeline, extending it
// with `reduction` extra stages (digitize, reduce hops, activate) when the
// mapped layer spills across cores.
func NewCorePipeline(reduction int) *Pipeline {
	p := &Pipeline{}
	p.stages = append(p.stages,
		pipeStage{name: "fetch"},
		pipeStage{name: "evaluate"},
		pipeStage{name: "writeback"},
	)
	for i := 0; i < reduction; i++ {
		p.stages = append(p.stages, pipeStage{name: fmt.Sprintf("reduce%d", i)})
	}
	return p
}

// Depth returns the stage count.
func (p *Pipeline) Depth() int { return len(p.stages) }

// Stream pushes n items through the pipeline, one injected per cycle when
// stage 0 is free, and returns the timing report.
func (p *Pipeline) Stream(n int) PipelineReport {
	for i := range p.stages {
		p.stages[i].busyUntil = 0
	}
	var rep PipelineReport
	rep.Items = n
	var lastDone int64
	for item := 0; item < n; item++ {
		// Inject when stage 0 frees.
		t := p.stages[0].busyUntil
		for s := range p.stages {
			if t < p.stages[s].busyUntil {
				t = p.stages[s].busyUntil
			}
			// Occupy stage s during [t, t+1).
			p.stages[s].busyUntil = t + 1
			t++
		}
		if item == 0 {
			rep.FirstOutCycle = t
		}
		lastDone = t
	}
	rep.Cycles = lastDone
	if n > 1 {
		rep.SteadyStateIPC = float64(n-1) / float64(lastDone-rep.FirstOutCycle)
	}
	rep.WallTimeNS = float64(rep.Cycles) * mapping.CycleNS
	return rep
}

// StreamLayer streams one mapped layer's evaluations through its core
// pipeline: the standard 3 stages, plus 2+log2(spill) reduction stages on
// the ADC path (Fig. 8's dashed box).
func StreamLayer(p mapping.Placement) PipelineReport {
	reduction := 0
	if p.NeedsADC() {
		reduction = 2 + log2ceil(p.NCSpill)
	}
	pipe := NewCorePipeline(reduction)
	return pipe.Stream(p.Evaluations)
}

func log2ceil(n int) int {
	c := 0
	for v := 1; v < n; v <<= 1 {
		c++
	}
	return c
}

// NetworkStream models layer-level pipelining across a whole workload:
// each weighted layer is a pipeline segment; image i+1 enters a layer as
// soon as image i has left it. The report's steady-state IPC is the
// inference throughput in images per cycle.
func NetworkStream(np mapping.NetworkPlacement, images int) PipelineReport {
	// The slowest layer bounds throughput: its per-image occupancy is its
	// evaluation count (time-multiplexed output positions).
	maxEvals := 1
	totalFill := 0
	for _, p := range np.Placements {
		if p.ACsUsed == 0 {
			continue
		}
		if p.Evaluations > maxEvals {
			maxEvals = p.Evaluations
		}
		totalFill += 3
		if p.NeedsADC() {
			totalFill += 2 + log2ceil(p.NCSpill)
		}
	}
	var rep PipelineReport
	rep.Items = images
	fill := int64(totalFill) + int64(maxEvals)
	rep.FirstOutCycle = fill
	rep.Cycles = fill + int64((images-1)*maxEvals)
	if images > 1 {
		rep.SteadyStateIPC = 1 / float64(maxEvals)
	}
	rep.WallTimeNS = float64(rep.Cycles) * mapping.CycleNS
	return rep
}
