package arch

import (
	"context"
	"errors"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/device"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/reliability"
	"repro/internal/rng"
)

func TestHealthScanHonorsCancellation(t *testing.T) {
	var w models.Workload
	for _, cand := range models.PaperWorkloads() {
		if cand.Name == "lenet5" {
			w = cand
		}
	}
	np := mapping.MapWorkload(w)
	rel := reliability.StudyConfig(0.05, reliability.ProtectSpareRemap)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rpt, err := HealthScan(ctx, np, device.DefaultParams(), crossbar.Config{}, rel, 7)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled scan returned %v, want context.Canceled", err)
	}
	// The partial report must not claim a full scan happened.
	full, err := HealthScan(context.Background(), np, device.DefaultParams(), crossbar.Config{}, rel, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rpt.ArraysScanned >= full.ArraysScanned {
		t.Fatalf("cancelled scan scanned %d arrays, full scan %d", rpt.ArraysScanned, full.ArraysScanned)
	}
}

func TestSessionPristineStampLifecycle(t *testing.T) {
	c, _ := chipFixture(t)
	sess := compileSession(t, c, WithMode(ModeSNN), WithTimesteps(10), WithSeed(42))
	if !sess.Pristine() {
		t.Fatal("freshly compiled session must be pristine")
	}
	sess.AgeRetention(500)
	if sess.Pristine() {
		t.Fatal("aged session still claims pristine")
	}
	rpt, err := sess.Scrub(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Pristine() {
		t.Fatal("scrubbed session must be pristine again")
	}
	if rpt.Refreshes == 0 || rpt.ArraysScanned == 0 || rpt.PairsScanned == 0 {
		t.Fatalf("scrub did no work: %+v", rpt)
	}
	if rpt.MaxDriftAge < 500 {
		t.Fatalf("scrub report drift age %d, want ≥ 500", rpt.MaxDriftAge)
	}
}

// TestScrubRestoresBitwise is the determinism half of the maintenance
// contract: after drift and a scrub, a session's outputs are bitwise
// identical to an identically compiled session that never drifted.
func TestScrubRestoresBitwise(t *testing.T) {
	c, te := chipFixture(t)
	ctx := context.Background()
	opts := []Option{WithMode(ModeSNN), WithTimesteps(10), WithSeed(42)}
	clean := compileSession(t, c, opts...)
	aged := compileSession(t, c, opts...)
	aged.AgeRetention(20000)
	if _, err := aged.Scrub(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		img, _ := te.Sample(i)
		want, err := clean.Run(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		got, err := aged.Run(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		wd, gd := want.Output.Data(), got.Output.Data()
		for j := range wd {
			if wd[j] != gd[j] {
				t.Fatalf("input %d col %d: %v != %v (scrub did not restore bitwise identity)",
					i, j, gd[j], wd[j])
			}
		}
	}
}

func TestScrubHonorsCancellation(t *testing.T) {
	c, _ := chipFixture(t)
	sess := compileSession(t, c, WithMode(ModeSNN), WithTimesteps(10), WithSeed(42))
	sess.AgeRetention(100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Scrub(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled scrub returned %v, want context.Canceled", err)
	}
	// An interrupted scrub must not restamp: the session stays suspect.
	if sess.Pristine() {
		t.Fatal("cancelled scrub restamped the session")
	}
}

func TestInjectStuckFaultsDeterministicAndPolicy(t *testing.T) {
	c, _ := chipFixture(t)
	ctx := context.Background()
	opts := []Option{WithMode(ModeSNN), WithTimesteps(10), WithSeed(42)}

	relChip := func() *Chip {
		chip := NewChip(device.DefaultParams(), crossbar.Config{}, rng.New(91))
		chip.Rel = &reliability.Config{
			Protection: reliability.ProtectSpareRemap,
			Policy:     reliability.DefaultPolicy(),
		}
		return chip
	}
	a, err := relChip().Compile(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := relChip().Compile(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	na := a.InjectStuckFaults(99, 0.2, crossbar.StuckAP)
	nb := b.InjectStuckFaults(99, 0.2, crossbar.StuckAP)
	if na == 0 || na != nb {
		t.Fatalf("stuck injection not deterministic: %d vs %d", na, nb)
	}
	if a.Pristine() {
		t.Fatal("fault onset left session pristine")
	}
	// 20% stuck devices is far past the default 2% policy: the scrub
	// must go terminal with a DegradedError carrying its report.
	_, err = a.Scrub(ctx)
	var de *reliability.DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("scrub of heavily faulted chip returned %v, want DegradedError", err)
	}
	if !de.Report.Degraded || de.Report.Unmitigated == 0 {
		t.Fatalf("degraded report misses residuals: %+v", de.Report)
	}
	if de.Report.Healthy(0.02) {
		t.Fatal("degraded report claims healthy")
	}
}

// TestRunReservedMatchesRun pins the external stream-reservation
// contract the fleet pool builds on: streams split off a parent seeded
// like the session reproduce Run bit for bit.
func TestRunReservedMatchesRun(t *testing.T) {
	c, te := chipFixture(t)
	ctx := context.Background()
	opts := []Option{WithMode(ModeSNN), WithTimesteps(10), WithSeed(42)}
	own := compileSession(t, c, opts...)
	ext := compileSession(t, c, opts...)
	parent := rng.New(42)
	for i := 0; i < 3; i++ {
		img, _ := te.Sample(i)
		want, err := own.Run(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		rs := ReservedStreams{Enc: parent.Split(), Noise: parent.Split()}
		got, err := ext.RunReserved(ctx, img, rs)
		if err != nil {
			t.Fatal(err)
		}
		wd, gd := want.Output.Data(), got.Output.Data()
		for j := range wd {
			if wd[j] != gd[j] {
				t.Fatalf("input %d col %d: %v != %v (reserved streams diverge from session reservation)",
					i, j, gd[j], wd[j])
			}
		}
	}
}
