package arch

import (
	"fmt"

	"repro/internal/crossbar"
	"repro/internal/device"
	"repro/internal/mapping"
	"repro/internal/rng"
	"repro/internal/spikeplane"
	"repro/internal/tensor"
)

// PipelineStats counts the Fig. 8 pipeline activity of one neural core.
type PipelineStats struct {
	// Cycles is the number of 110 ns pipeline cycles consumed.
	Cycles int64
	// EDRAMReads / EDRAMWrites count eDRAM transactions (stage 1 and 3).
	EDRAMReads, EDRAMWrites int64
	// Evaluations counts crossbar evaluations (stage 2).
	Evaluations int64
	// Spikes counts output spikes (SNN mode).
	Spikes int64
}

// ANNCore is a neural core configured for ANN inference: multi-level
// drivers, saturating-ReLU MTJ neurons, continuous outputs.
type ANNCore struct {
	ST *SuperTile
	// Clip is the neuron saturation ceiling in activation units (the
	// device's finite wall travel); outputs are max(0, min(Clip, x)).
	Clip  float64
	Stats PipelineStats
}

// NewANNCore builds an ANN core around a fresh super-tile.
func NewANNCore(p device.Params, cfg crossbar.Config, clip float64, noise *rng.Rand) *ANNCore {
	return &ANNCore{ST: NewSuperTile(p, cfg, noise), Clip: clip}
}

// Program loads the layer kernels (Rf×K) scaled to wmax.
func (c *ANNCore) Program(w *tensor.Tensor, wmax float64) error {
	return c.ST.Program(w, wmax)
}

// configure is the restore-path half of Program: switch geometry
// without device writes; the image loader imports the recorded state.
func (c *ANNCore) configure(km *tensor.Tensor, wmax float64) error {
	return c.ST.Configure(km.Dim(0), km.Dim(1), wmax)
}

// Execute runs a batch of input vectors (the im2col columns of one image)
// through the core, applying the saturating rectification of the
// non-spiking MTJ neuron (Fig. 2(b)). Inputs must be in [0, 1] activation
// units. Pipeline accounting follows Fig. 8: fetch, evaluate, write back.
func (c *ANNCore) Execute(inputs [][]float64) ([][]float64, error) {
	out := make([][]float64, len(inputs))
	for i, in := range inputs {
		c.Stats.Cycles++ // cycle 1: eDRAM → IB
		c.Stats.EDRAMReads++
		sums, err := c.ST.Evaluate(in)
		if err != nil {
			return nil, err
		}
		c.Stats.Cycles++ // cycle 2: drive crossbars, threshold at NU
		c.Stats.Evaluations++
		row := make([]float64, len(sums))
		for j, v := range sums {
			if v < 0 {
				v = 0
			} else if v > c.Clip {
				v = c.Clip
			}
			row[j] = v
		}
		out[i] = row
		c.Stats.Cycles++ // cycle 3: OB → eDRAM
		c.Stats.EDRAMWrites++
	}
	return out, nil
}

// SNNCore is a neural core configured for spiking inference: 1-bit spike
// drivers and integrate-and-fire MTJ neurons whose domain-wall position
// stores the membrane potential between timesteps (§IV-B4) — no SRAM
// round-trips.
type SNNCore struct {
	ST *SuperTile
	// VTh is the firing threshold in activation units (1 after weight
	// normalization).
	VTh     float64
	kernels int
	neurons []*device.SpikingNeuron
	// scale converts crossbar dot-product units into wall displacement
	// per cycle so that VTh corresponds to a full device traversal.
	Stats PipelineStats
}

// NewSNNCore builds an SNN core around a fresh super-tile.
func NewSNNCore(p device.Params, cfg crossbar.Config, vth float64, noise *rng.Rand) *SNNCore {
	return &SNNCore{ST: NewSuperTile(p, cfg, noise), VTh: vth}
}

// Program loads the layer kernels and allocates MTJ neurons: one per
// kernel per time-multiplexed output position. Positions model kernel
// replication — each replica's neuron holds its own position's membrane
// in its domain-wall, so no membrane ever visits SRAM (§IV-B4).
func (c *SNNCore) Program(w *tensor.Tensor, wmax float64, positions int) error {
	if positions < 1 {
		return fmt.Errorf("arch: positions must be ≥ 1")
	}
	if err := c.ST.Program(w, wmax); err != nil {
		return err
	}
	c.kernels = w.Dim(1)
	c.neurons = neuronSlab(c.ST.P, c.kernels*positions)
	return nil
}

// neuronSlab allocates n neurons in one contiguous backing array so the
// per-timestep integrate walk streams through memory instead of chasing
// n separate heap objects. The pointer indirection is kept: callers
// hold []*SpikingNeuron and individual neurons stay addressable.
func neuronSlab(p device.Params, n int) []*device.SpikingNeuron {
	slab := make([]device.SpikingNeuron, n)
	out := make([]*device.SpikingNeuron, n)
	for i := range slab {
		slab[i].P = p
		out[i] = &slab[i]
	}
	return out
}

// configure is the restore-path half of Program: switch geometry and
// the position-replica neuron bank are laid out exactly as Program
// would, but no device is written — the image loader imports the
// recorded conductance state immediately afterwards.
func (c *SNNCore) configure(km *tensor.Tensor, wmax float64, positions int) error {
	if positions < 1 {
		return fmt.Errorf("arch: positions must be ≥ 1")
	}
	if err := c.ST.Configure(km.Dim(0), km.Dim(1), wmax); err != nil {
		return err
	}
	c.kernels = km.Dim(1)
	c.neurons = neuronSlab(c.ST.P, c.kernels*positions)
	return nil
}

// Reset returns every neuron's domain wall to the resting edge.
func (c *SNNCore) Reset() {
	for _, n := range c.neurons {
		n.Reset()
	}
	c.Stats = PipelineStats{}
}

// Step advances one timestep at output position 0 — the dense-layer case.
func (c *SNNCore) Step(spikes []float64) ([]float64, error) {
	return c.StepAt(0, spikes)
}

// StepAt advances one timestep for output position pos: binary input
// spikes drive the crossbar, the summed source-line current displaces
// each position-neuron's domain wall in proportion to its membrane
// increment, and neurons whose wall reaches the far edge emit a spike and
// self-reset.
func (c *SNNCore) StepAt(pos int, spikes []float64) ([]float64, error) {
	return c.step(pos, spikes, nil)
}

func (c *SNNCore) step(pos int, spikes, bias []float64) ([]float64, error) {
	if c.neurons == nil {
		return nil, fmt.Errorf("arch: SNN core not programmed")
	}
	if (pos+1)*c.kernels > len(c.neurons) {
		return nil, fmt.Errorf("arch: position %d beyond allocated replicas", pos)
	}
	c.Stats.Cycles++
	c.Stats.EDRAMReads++
	sums, err := c.ST.Evaluate(spikes)
	if err != nil {
		return nil, err
	}
	c.Stats.Cycles++
	c.Stats.Evaluations++
	if bias != nil {
		for i := range sums {
			if i < len(bias) {
				sums[i] += bias[i]
			}
		}
	}
	bank := c.neurons[pos*c.kernels : (pos+1)*c.kernels]
	out, fired := integrateBank(c.ST.P, c.VTh, bank, sums)
	c.Stats.Spikes += fired
	c.Stats.Cycles++
	c.Stats.EDRAMWrites++
	return out, nil
}

// integrateBank drives one replica bank of MTJ neurons with the evaluated
// membrane increments and returns the binary spike vector plus the number
// of spikes emitted. It maps a membrane increment of VTh to a full wall
// traversal within one 110 ns cycle: current = increment/VTh · (current
// that moves the wall the full length in one pulse) + the depinning
// offset. Shared by SNNCore (core-owned neurons) and the session engine
// (per-run neuron banks).
func integrateBank(p device.Params, vth float64, bank []*device.SpikingNeuron, sums []float64) ([]float64, int64) {
	out := make([]float64, len(sums))
	return out, integrateBankInto(out, p, vth, bank, sums)
}

// integrateBankInto is integrateBank writing the spike vector into a
// caller-provided buffer of len(sums), so the session engine's hot loop
// reuses one buffer per stage instead of allocating per timestep.
//
//nebula:hotpath
func integrateBankInto(out []float64, p device.Params, vth float64, bank []*device.SpikingNeuron, sums []float64) int64 {
	for i := range out {
		out[i] = 0
	}
	span := p.LengthNM / (p.MobilityNMPerUAns * p.PulseNS)
	var spikes int64
	for i, inc := range sums {
		if inc == 0 {
			continue
		}
		mag := inc
		if mag < 0 {
			mag = -mag
		}
		cur := mag/vth*span + p.DepinningCurrentUA
		if inc < 0 {
			cur = -cur // inhibition drives the wall back toward reset
		}
		if bank[i].Integrate(cur, p.PulseNS) {
			out[i] = 1
			spikes++
		}
	}
	return spikes
}

// integrateBankIntoPlane is integrateBankInto additionally building the
// packed spike plane of the emitted fire vector during the same walk,
// so the event-driven engine skips the O(neurons) re-scan a post-hoc
// Pack would cost. The plane is bitwise what Pack(out) would produce:
// fires are exactly 1.0, so it stays binary.
//
//nebula:hotpath
func integrateBankIntoPlane(out []float64, pl *spikeplane.Plane, p device.Params, vth float64, bank []*device.SpikingNeuron, sums []float64) int64 {
	pl.Reset(len(out))
	for i := range out {
		out[i] = 0
	}
	span := p.LengthNM / (p.MobilityNMPerUAns * p.PulseNS)
	var spikes int64
	for i, inc := range sums {
		if inc == 0 {
			continue
		}
		mag := inc
		if mag < 0 {
			mag = -mag
		}
		cur := mag/vth*span + p.DepinningCurrentUA
		if inc < 0 {
			cur = -cur // inhibition drives the wall back toward reset
		}
		if bank[i].Integrate(cur, p.PulseNS) {
			out[i] = 1
			pl.Set(i)
			spikes++
		}
	}
	return spikes
}

// Membranes returns the normalized membrane potentials (wall positions)
// of position 0's neuron bank.
func (c *SNNCore) Membranes() []float64 {
	out := make([]float64, c.kernels)
	for i := range out {
		out[i] = c.neurons[i].Membrane()
	}
	return out
}

// FitsInCore reports whether a kernel matrix of rf×k maps onto a single
// super-tile.
func FitsInCore(rf, k int) bool {
	stack := (rf + mapping.M - 1) / mapping.M
	sets := (k + mapping.M - 1) / mapping.M
	return rf <= mapping.MaxRowsPerNC && stack*sets <= mapping.ACsPerNC
}
