package arch

import (
	"math"
	"sync"
	"testing"

	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
	"repro/internal/train"
)

func randMatrix(r *rng.Rand, rows, cols int, scale float64) *tensor.Tensor {
	m := tensor.New(rows, cols)
	for i := range m.Data() {
		m.Data()[i] = (2*r.Float64() - 1) * scale
	}
	return m
}

func idealDot(w *tensor.Tensor, x []float64) []float64 {
	out := make([]float64, w.Dim(1))
	for c := 0; c < w.Dim(1); c++ {
		for r := 0; r < w.Dim(0); r++ {
			out[c] += x[r] * w.At(r, c)
		}
	}
	return out
}

func TestSuperTileSingleAC(t *testing.T) {
	r := rng.New(1)
	st := NewSuperTile(device.DefaultParams(), crossbar.Config{}, nil)
	w := randMatrix(r, 27, 64, 1) // VGG conv1-like
	if err := st.Program(w, 1); err != nil {
		t.Fatal(err)
	}
	if st.NULevel() != mapping.LevelH0 {
		t.Fatalf("level %v, want H0", st.NULevel())
	}
	x := make([]float64, 27)
	for i := range x {
		x[i] = r.Float64()
	}
	got, err := st.Evaluate(x)
	if err != nil {
		t.Fatal(err)
	}
	want := idealDot(w, x)
	bound := 1.0 / (2 * 15) * 27 // quantization bound
	for c := range got {
		if math.Abs(got[c]-want[c]) > bound {
			t.Fatalf("col %d: %v vs %v", c, got[c], want[c])
		}
	}
}

func TestSuperTileHierarchySummation(t *testing.T) {
	// An Rf spanning multiple ACs must produce the same dot product as a
	// monolithic array — the current-domain summation claim of §IV-B3.
	r := rng.New(2)
	st := NewSuperTile(device.DefaultParams(), crossbar.Config{}, nil)
	const rf, k = 600, 100 // stack = 5 → H2
	w := randMatrix(r, rf, k, 1)
	if err := st.Program(w, 1); err != nil {
		t.Fatal(err)
	}
	if st.NULevel() != mapping.LevelH2 {
		t.Fatalf("level %v, want H2", st.NULevel())
	}
	x := make([]float64, rf)
	for i := range x {
		x[i] = r.Float64()
	}
	got, err := st.Evaluate(x)
	if err != nil {
		t.Fatal(err)
	}
	want := idealDot(w, x)
	bound := 1.0 / (2 * 15) * rf
	for c := range got {
		if math.Abs(got[c]-want[c]) > bound {
			t.Fatalf("col %d: %v vs %v (bound %v)", c, got[c], want[c], bound)
		}
	}
}

func TestSuperTileRejectsOversized(t *testing.T) {
	st := NewSuperTile(device.DefaultParams(), crossbar.Config{}, nil)
	if err := st.Program(tensor.New(3000, 10), 1); err == nil {
		t.Fatal("Rf > 16M accepted")
	}
	if err := st.Program(tensor.New(1000, 1000), 1); err == nil {
		t.Fatal("over-capacity layer accepted")
	}
}

func TestSuperTileUtilization(t *testing.T) {
	st := NewSuperTile(device.DefaultParams(), crossbar.Config{}, nil)
	if err := st.Program(tensor.New(27, 64).Fill(0.5), 1); err != nil {
		t.Fatal(err)
	}
	want := 27.0 * 64 / (128 * 128)
	if got := st.Utilization(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("utilization %v, want %v", got, want)
	}
}

func TestANNCoreSaturation(t *testing.T) {
	st := NewANNCore(device.DefaultParams(), crossbar.Config{}, 1.0, nil)
	w := tensor.New(4, 2)
	w.Set(1, 0, 0)
	w.Set(1, 1, 0)
	w.Set(1, 2, 0)
	w.Set(-1, 0, 1)
	if err := st.Program(w, 1); err != nil {
		t.Fatal(err)
	}
	out, err := st.Execute([][]float64{{1, 1, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 1 {
		t.Fatalf("column 0 should saturate at 1, got %v", out[0][0])
	}
	if out[0][1] != 0 {
		t.Fatalf("column 1 should rectify to 0, got %v", out[0][1])
	}
	if st.Stats.Cycles != 3 {
		t.Fatalf("pipeline cycles %d, want 3 (Fig. 8)", st.Stats.Cycles)
	}
}

func TestSNNCoreIntegrateAndFire(t *testing.T) {
	core := NewSNNCore(device.DefaultParams(), crossbar.Config{}, 1.0, nil)
	w := tensor.New(1, 1)
	w.Set(0.4, 0, 0) // quantized to 6/15 = 0.4
	if err := core.Program(w, 1, 1); err != nil {
		t.Fatal(err)
	}
	// 0.4 increments: fires on the 3rd step (1.2 ≥ 1).
	fires := 0
	fireStep := -1
	for i := 0; i < 5; i++ {
		out, err := core.Step([]float64{1})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] == 1 {
			fires++
			if fireStep < 0 {
				fireStep = i
			}
		}
	}
	if fires == 0 {
		t.Fatal("neuron never fired")
	}
	if fireStep != 2 {
		t.Fatalf("first fire at step %d, want 2", fireStep)
	}
}

func TestSNNCoreMembranePersistsAcrossIdleSteps(t *testing.T) {
	// §IV-B4: membrane persists in the device with no refresh.
	core := NewSNNCore(device.DefaultParams(), crossbar.Config{}, 1.0, nil)
	w := tensor.New(1, 1)
	w.Set(0.4, 0, 0)
	if err := core.Program(w, 1, 1); err != nil {
		t.Fatal(err)
	}
	core.Step([]float64{1})
	m1 := core.Membranes()[0]
	if m1 <= 0 {
		t.Fatal("no integration")
	}
	for i := 0; i < 10; i++ {
		core.Step([]float64{0}) // no spikes: wall must hold
	}
	if core.Membranes()[0] != m1 {
		t.Fatalf("membrane decayed: %v → %v", m1, core.Membranes()[0])
	}
}

func TestSNNCoreInhibition(t *testing.T) {
	core := NewSNNCore(device.DefaultParams(), crossbar.Config{}, 1.0, nil)
	w := tensor.New(2, 1)
	w.Set(0.5, 0, 0)
	w.Set(-0.5, 1, 0)
	if err := core.Program(w, 1, 1); err != nil {
		t.Fatal(err)
	}
	core.Step([]float64{1, 0})
	up := core.Membranes()[0]
	core.Step([]float64{0, 1})
	down := core.Membranes()[0]
	if down >= up {
		t.Fatalf("inhibitory input did not lower membrane: %v → %v", up, down)
	}
}

func TestSNNCoreRateTracksInput(t *testing.T) {
	core := NewSNNCore(device.DefaultParams(), crossbar.Config{}, 1.0, nil)
	w := tensor.New(1, 1)
	w.Set(1.0, 0, 0)
	if err := core.Program(w, 1, 1); err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	const T = 600
	const rate = 0.3
	spikes := 0.0
	for i := 0; i < T; i++ {
		in := 0.0
		if r.Bernoulli(rate) {
			in = 1
		}
		out, _ := core.Step([]float64{in})
		spikes += out[0]
	}
	got := spikes / T
	if math.Abs(got-rate) > 0.05 {
		t.Fatalf("hardware rate %v for input rate %v", got, rate)
	}
}

func TestFitsInCore(t *testing.T) {
	if !FitsInCore(2048, 128) {
		t.Fatal("16M×M must fit")
	}
	if FitsInCore(2049, 128) {
		t.Fatal("Rf beyond 16M must not fit")
	}
	if FitsInCore(1024, 512) { // 8 stacks × 4 sets = 32 > 16
		t.Fatal("over-capacity must not fit")
	}
}

// Shared trained fixture for chip-level tests.
var (
	chipOnce sync.Once
	chipConv *convert.Converted
	chipANN  *nn.Network
	chipTest *dataset.Dataset
)

func chipFixture(t *testing.T) (*convert.Converted, *dataset.Dataset) {
	t.Helper()
	chipOnce.Do(func() {
		tr, te := dataset.TrainTest(dataset.MNISTLike, 400, 100, 77)
		chipTest = te
		chipANN = models.NewMLP3(1, 16, 10, rng.New(5))
		cfg := train.DefaultConfig()
		cfg.Epochs = 6
		train.Run(chipANN, tr, te, cfg)
		var err error
		chipConv, err = convert.Convert(chipANN, tr, convert.DefaultConfig())
		if err != nil {
			panic(err)
		}
	})
	return chipConv, chipTest
}

func TestChipRunSNNClassifies(t *testing.T) {
	c, te := chipFixture(t)
	chip := NewChip(device.DefaultParams(), crossbar.Config{}, nil)
	correct := 0
	const n, T = 25, 80
	r := rng.New(3)
	for i := 0; i < n; i++ {
		img, label := te.Sample(i)
		res, err := chip.RunSNN(c, img, T, snn.NewPoissonEncoder(1.0, r.Split()))
		if err != nil {
			t.Fatal(err)
		}
		if res.Prediction == label {
			correct++
		}
		if res.Spikes <= 0 || res.Cycles <= 0 {
			t.Fatalf("no hardware activity: %+v", res)
		}
	}
	acc := float64(correct) / n
	if acc < 0.5 {
		t.Fatalf("hardware SNN accuracy %.2f too low", acc)
	}
}

func TestChipRunANNMatchesSoftware(t *testing.T) {
	c, te := chipFixture(t)
	chip := NewChip(device.DefaultParams(), crossbar.Config{}, nil)
	swAcc := 0
	hwAcc := 0
	const n = 30
	for i := 0; i < n; i++ {
		img, label := te.Sample(i)
		res, err := chip.RunANN(c, img)
		if err != nil {
			t.Fatal(err)
		}
		if res.Prediction == label {
			hwAcc++
		}
		batch := img.Reshape(1, img.Size())
		logits := c.Folded.Forward(batch.Reshape(1, 1, 16, 16), false)
		if logits.Row(0).ArgMax() == label {
			swAcc++
		}
	}
	if hwAcc < swAcc-6 {
		t.Fatalf("hardware ANN (%d/%d) trails software (%d/%d) too much", hwAcc, n, swAcc, n)
	}
}

func TestChipSNNWithNoiseStillWorks(t *testing.T) {
	// §IV-D resilience: device read noise should not destroy inference.
	c, te := chipFixture(t)
	chip := NewChip(device.DefaultParams(), crossbar.Config{ReadNoiseSigma: 0.05}, rng.New(11))
	correct := 0
	const n, T = 20, 80
	r := rng.New(13)
	for i := 0; i < n; i++ {
		img, label := te.Sample(i)
		res, err := chip.RunSNN(c, img, T, snn.NewPoissonEncoder(1.0, r.Split()))
		if err != nil {
			t.Fatal(err)
		}
		if res.Prediction == label {
			correct++
		}
	}
	if float64(correct)/n < 0.4 {
		t.Fatalf("noisy hardware accuracy %.2f collapsed", float64(correct)/n)
	}
}

func TestChipRunsGroupedConv(t *testing.T) {
	// Depthwise (grouped) convolutions map block-diagonally onto the
	// crossbar; the chip runner must execute them in SNN mode.
	r := rng.New(19)
	net := nn.NewNetwork("dw",
		nn.NewConv2D("dw", 4, 4, 3, 3, 1, 1, 4, r),
		nn.NewReLU("relu"),
		nn.NewFlatten("flat"),
		nn.NewLinear("fc", 4*8*8, 4, r),
	)
	d := dataset.Generate(dataset.Spec{Name: "x", Classes: 4, Channels: 4, Size: 8, Noise: 0.1, Jitter: 1}, 16, 1)
	conv, err := convert.Convert(net, d, convert.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	chip := NewChip(device.DefaultParams(), crossbar.Config{}, nil)
	img, _ := d.Sample(0)
	res, err := chip.RunSNN(conv, img, 20, snn.NewPoissonEncoder(1, rng.New(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Size() != 4 {
		t.Fatalf("output size %d", res.Output.Size())
	}
	if res.Cycles <= 0 {
		t.Fatal("no hardware activity")
	}
}
