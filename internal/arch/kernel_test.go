package arch

import (
	"context"
	"testing"

	"repro/internal/convert"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// assertKernelOffMatchesOn compiles the same model twice — frozen
// kernels disabled and enabled (the default) — over identically seeded
// chips and requires every output, prediction and counter to match bit
// for bit. This is the end-to-end form of the crossbar-level
// differential tests: the baked fast path must be invisible.
func assertKernelOffMatchesOn(t *testing.T, c *convert.Converted, imgs []*tensor.Tensor, opts ...Option) {
	t.Helper()
	ctx := context.Background()
	dense := compileSession(t, c, append(append([]Option(nil), opts...), WithFrozenKernel(false))...)
	fast := compileSession(t, c, opts...)
	want, err := dense.RunBatch(ctx, imgs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fast.RunBatch(ctx, imgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		wd, gd := want[i].Output.Data(), got[i].Output.Data()
		if len(wd) != len(gd) {
			t.Fatalf("input %d: output size %d, want %d", i, len(gd), len(wd))
		}
		for j := range wd {
			if wd[j] != gd[j] {
				t.Fatalf("input %d col %d: kernel %v != dense %v (frozen kernel not bitwise identical)",
					i, j, gd[j], wd[j])
			}
		}
		if got[i].Prediction != want[i].Prediction || got[i].Spikes != want[i].Spikes ||
			got[i].Cycles != want[i].Cycles || got[i].EDRAMAccesses != want[i].EDRAMAccesses {
			t.Fatalf("input %d: stats diverged: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestSessionFrozenKernelBitwiseANN(t *testing.T) {
	c, te := chipFixture(t)
	assertKernelOffMatchesOn(t, c, sessionImages(t, te, 8),
		WithMode(ModeANN), WithSeed(42))
}

func TestSessionFrozenKernelBitwiseSNN(t *testing.T) {
	c, te := chipFixture(t)
	assertKernelOffMatchesOn(t, c, sessionImages(t, te, 8),
		WithMode(ModeSNN), WithTimesteps(20), WithSeed(42))
}

func TestSessionFrozenKernelBitwiseHybrid(t *testing.T) {
	c, te := chipFixture(t)
	assertKernelOffMatchesOn(t, c, sessionImages(t, te, 8),
		WithMode(ModeHybrid), WithHybridSplit(1), WithTimesteps(20), WithSeed(42))
}

func TestSessionFrozenKernelBitwiseConv(t *testing.T) {
	// Grouped convolution exercises the spike-list plumbing through the
	// im2col window gather.
	r := rng.New(19)
	net := nn.NewNetwork("dw",
		nn.NewConv2D("dw", 4, 4, 3, 3, 1, 1, 4, r),
		nn.NewReLU("relu"),
		nn.NewFlatten("flat"),
		nn.NewLinear("fc", 4*8*8, 4, r),
	)
	d := dataset.Generate(dataset.Spec{Name: "x", Classes: 4, Channels: 4, Size: 8, Noise: 0.1, Jitter: 1}, 16, 1)
	c, err := convert.Convert(net, d, convert.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertKernelOffMatchesOn(t, c, sessionImages(t, d, 6),
		WithMode(ModeSNN), WithTimesteps(10), WithSeed(42), WithInputShape(4, 8, 8))
}

// TestCompileBakesKernels asserts the compile-time bake actually leaves
// every programmed array on the fast path, and that WithFrozenKernel
// (false) leaves every array on the dense path.
func TestCompileBakesKernels(t *testing.T) {
	c, _ := chipFixture(t)
	for _, on := range []bool{true, false} {
		sess := compileSession(t, c, WithMode(ModeSNN), WithTimesteps(20), WithFrozenKernel(on))
		fresh, stale := 0, 0
		for _, hw := range sess.snnStages {
			if hw.snnCore == nil {
				continue
			}
			// Only slot-routed arrays carry programmed weights; the
			// unconfigured spares of the super-tile never bake.
			for _, slot := range hw.snnCore.ST.slotAC {
				if hw.snnCore.ST.acs[slot].KernelFresh() {
					fresh++
				} else {
					stale++
				}
			}
		}
		if on && (fresh == 0 || stale != 0) {
			t.Fatalf("WithFrozenKernel(true): %d fresh, %d stale arrays", fresh, stale)
		}
		if !on && fresh != 0 {
			t.Fatalf("WithFrozenKernel(false): %d arrays still on the fast path", fresh)
		}
	}
}

// TestWearSessionSkipsBake pins that wear sessions never compile onto
// the fast path: their reads mutate the arrays per evaluation.
func TestWearSessionSkipsBake(t *testing.T) {
	c, _ := chipFixture(t)
	sess := compileSession(t, c, WithMode(ModeSNN), WithTimesteps(20), WithWear(true))
	for _, hw := range sess.snnStages {
		if hw.snnCore == nil {
			continue
		}
		for _, slot := range hw.snnCore.ST.slotAC {
			if hw.snnCore.ST.acs[slot].KernelFresh() {
				t.Fatal("wear session compiled with a baked kernel")
			}
		}
	}
}
