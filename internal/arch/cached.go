package arch

import (
	"bytes"
	"errors"

	"repro/internal/convert"
	"repro/internal/image"
)

// This file is the serialization-first compile path: compilation keyed
// by content hash against an on-disk chip-image cache. A hit rehydrates
// the session from the stored image (no programming, no fault
// injection, no BIST); a miss compiles normally and installs the image
// for the next identical compile. The key digests everything that can
// change a compiled chip's read-visible state — the model, the chip
// environment (including the noise stream's fingerprint) and the full
// compile configuration — so a hit is interchangeable with a fresh
// compile, bit for bit.

// CompileCached is Compile through a content-addressed chip-image
// cache. Sessions the image format cannot capture — wear mode, shared
// or custom encoders — bypass the cache and compile directly; so do
// models the spec cannot flatten. On a hit the returned session runs on
// a chip rehydrated from the image, not on the receiver: the receiver's
// noise stream and health report are untouched.
func (ch *Chip) CompileCached(model *convert.Converted, cache *image.Cache, opts ...Option) (*Session, error) {
	cfg := sessionConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.cacheDir = ""
	return ch.compileCached(model, cache, cfg)
}

// compileCached implements CompileCached and the WithImageCache branch
// of Compile over a parsed configuration.
func (ch *Chip) compileCached(model *convert.Converted, cache *image.Cache, cfg sessionConfig) (*Session, error) {
	if cfg.Wear || cfg.sharedEnc != nil || cfg.encCustom {
		return ch.compile(model, cfg)
	}
	spec, err := image.EncodeModel(model)
	if err != nil {
		return ch.compile(model, cfg)
	}
	chipSpec := ch.imageSpec()
	imgCfg := imageConfig(cfg.CompileConfig)
	key, err := image.Key(spec, &chipSpec, &imgCfg)
	if err != nil {
		return ch.compile(model, cfg)
	}

	if data, ok := cache.Get(key); ok {
		s, lerr := loadSessionBytes(data, model, cfg)
		if lerr == nil {
			return s, nil
		}
		// The envelope verified but the payload would not rehydrate:
		// quarantine the entry and recompile. One corrupt image costs
		// one recompile, never a failed session.
		var fe *image.FormatError
		var ce *image.ChecksumError
		if errors.As(lerr, &fe) || errors.As(lerr, &ce) {
			cache.Quarantine(key)
		}
	}

	s, err := ch.compile(model, cfg)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := s.SaveImage(&buf); err == nil {
		// Best effort: a failed store costs the next compile a miss,
		// never this one its session.
		_ = cache.Put(key, buf.Bytes())
	}
	return s, nil
}

// loadSessionBytes rehydrates a session from in-memory image bytes the
// cache has already verified, under an already-resolved configuration.
// DecodeTrusted skips the checksum pass Cache.Get just ran, and the
// caller's model stands in for the payload's spec — the content hash
// guarantees they describe the same network.
func loadSessionBytes(data []byte, model *convert.Converted, cfg sessionConfig) (*Session, error) {
	p, err := image.DecodeTrusted(data)
	if err != nil {
		return nil, err
	}
	return loadSessionModel(p, model, cfg)
}
