package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationNUHierarchy(t *testing.T) {
	r := AblationNUHierarchy()
	ratio := r.Rows[2].Value
	if ratio <= 1 {
		t.Fatalf("per-crossbar ADC must cost more: ratio %v", ratio)
	}
	if ratio > 20 {
		t.Fatalf("implausible ablation ratio %v", ratio)
	}
}

func TestAblationMorphableTiles(t *testing.T) {
	r := AblationMorphableTiles()
	morph, fixed128, fixed256 := r.Rows[0].Value, r.Rows[1].Value, r.Rows[2].Value
	if morph <= fixed256 {
		t.Fatalf("morphable utilization %v not above fixed-256 %v", morph, fixed256)
	}
	if morph < fixed128-1e-9 {
		t.Fatalf("morphable utilization %v below fixed-128 %v", morph, fixed128)
	}
}

func TestAblationMembraneStorage(t *testing.T) {
	r := AblationMembraneStorage()
	if ratio := r.Rows[2].Value; ratio <= 1.05 {
		t.Fatalf("SRAM membranes should cost visibly more: ratio %v", ratio)
	}
}

func TestAblationBitSerial(t *testing.T) {
	r := AblationBitSerialInput()
	if eRatio := r.Rows[2].Value; eRatio <= 1 {
		t.Fatalf("bit-serial should cost more energy: %v", eRatio)
	}
	if lRatio := r.Rows[3].Value; lRatio < 3.9 {
		t.Fatalf("bit-serial latency should be ≈4×: %v", lRatio)
	}
}

func TestAblationHybridSplitMonotoneEnergy(t *testing.T) {
	r := AblationHybridSplit()
	// At a fixed window, moving most of the network to the ANN side
	// reduces total energy (SNN evaluations dominate); individual steps
	// can wiggle when a moved layer is cheap in SNN mode but pays the
	// ANN ADC path.
	first, last := r.Rows[0].Value, r.Rows[len(r.Rows)-1].Value
	if last >= first {
		t.Fatalf("deep split energy %v not below shallow %v", last, first)
	}
	for _, row := range r.Rows {
		if row.Value <= 0 {
			t.Fatalf("non-positive energy at %s", row.Name)
		}
	}
}

func TestAblationISAACADCScalingMonotone(t *testing.T) {
	r := AblationISAACADCScaling()
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Value <= r.Rows[i-1].Value {
			t.Fatal("ratio must grow with assumed ADC energy")
		}
	}
}

func TestAblationRender(t *testing.T) {
	var b bytes.Buffer
	AblationNUHierarchy().Render(&b)
	if !strings.Contains(b.String(), "NU-hierarchy") {
		t.Fatal("render missing title")
	}
}

func TestSensitivitySNNvsANN(t *testing.T) {
	r := SensitivitySNNvsANN()
	if len(r.Rows) != 6 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Low <= 0 || row.High <= 0 || row.Baseline <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		if row.Span < 1 {
			t.Fatalf("span below 1: %+v", row)
		}
		// Even at extreme knob settings the SNN stays more energy-hungry
		// than the ANN — the headline survives the assumptions.
		if row.Low < 1 || row.High < 1 {
			t.Fatalf("headline inverted under %s: %+v", row.Knob, row)
		}
	}
	// Input activity must be among the most influential knobs.
	var actSpan, maxSpan float64
	for _, row := range r.Rows {
		if row.Knob == "InputActivity" {
			actSpan = row.Span
		}
		if row.Span > maxSpan {
			maxSpan = row.Span
		}
	}
	if actSpan < 1.1 {
		t.Fatalf("activity knob has no leverage: %v", actSpan)
	}
	_ = maxSpan
}

func TestSensitivityBaselines(t *testing.T) {
	r := SensitivityBaselines()
	if len(r.Rows) != 3 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Doubling a baseline cost must increase its ratio.
		if row.High <= row.Low {
			t.Fatalf("%s not monotone: %+v", row.Knob, row)
		}
		// Baselines stay worse than NEBULA across the swept range.
		if row.Low <= 1 {
			t.Fatalf("%s inverts at 0.5×: %+v", row.Knob, row)
		}
	}
	var b bytes.Buffer
	r.Render(&b)
	if !strings.Contains(b.String(), "Sensitivity") {
		t.Fatal("render missing header")
	}
}

func TestFaultResilienceCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model and runs chip inference")
	}
	if raceEnabled {
		t.Skip("chip-level fault sweep exceeds the test timeout under the race detector")
	}
	r, err := FaultResilience(16, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("points %d", len(r.Points))
	}
	clean := r.Points[0]
	worst := r.Points[len(r.Points)-1]
	if clean.FaultRate != 0 || clean.Accuracy < 0.6 {
		t.Fatalf("clean point %+v", clean)
	}
	// Graceful degradation: the 20%-fault point loses accuracy but stays
	// well above chance (0.1 for 10 classes).
	if worst.Accuracy > clean.Accuracy {
		t.Fatalf("faults should not improve accuracy: %+v", r.Points)
	}
	if worst.Accuracy < 0.3 {
		t.Fatalf("accuracy collapsed at 20%% faults: %v", worst.Accuracy)
	}
}
