package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/reliability"
)

func TestAblationNUHierarchy(t *testing.T) {
	r := AblationNUHierarchy()
	ratio := r.Rows[2].Value
	if ratio <= 1 {
		t.Fatalf("per-crossbar ADC must cost more: ratio %v", ratio)
	}
	if ratio > 20 {
		t.Fatalf("implausible ablation ratio %v", ratio)
	}
}

func TestAblationMorphableTiles(t *testing.T) {
	r := AblationMorphableTiles()
	morph, fixed128, fixed256 := r.Rows[0].Value, r.Rows[1].Value, r.Rows[2].Value
	if morph <= fixed256 {
		t.Fatalf("morphable utilization %v not above fixed-256 %v", morph, fixed256)
	}
	if morph < fixed128-1e-9 {
		t.Fatalf("morphable utilization %v below fixed-128 %v", morph, fixed128)
	}
}

func TestAblationMembraneStorage(t *testing.T) {
	r := AblationMembraneStorage()
	if ratio := r.Rows[2].Value; ratio <= 1.05 {
		t.Fatalf("SRAM membranes should cost visibly more: ratio %v", ratio)
	}
}

func TestAblationBitSerial(t *testing.T) {
	r := AblationBitSerialInput()
	if eRatio := r.Rows[2].Value; eRatio <= 1 {
		t.Fatalf("bit-serial should cost more energy: %v", eRatio)
	}
	if lRatio := r.Rows[3].Value; lRatio < 3.9 {
		t.Fatalf("bit-serial latency should be ≈4×: %v", lRatio)
	}
}

func TestAblationHybridSplitMonotoneEnergy(t *testing.T) {
	r := AblationHybridSplit()
	// At a fixed window, moving most of the network to the ANN side
	// reduces total energy (SNN evaluations dominate); individual steps
	// can wiggle when a moved layer is cheap in SNN mode but pays the
	// ANN ADC path.
	first, last := r.Rows[0].Value, r.Rows[len(r.Rows)-1].Value
	if last >= first {
		t.Fatalf("deep split energy %v not below shallow %v", last, first)
	}
	for _, row := range r.Rows {
		if row.Value <= 0 {
			t.Fatalf("non-positive energy at %s", row.Name)
		}
	}
}

func TestAblationISAACADCScalingMonotone(t *testing.T) {
	r := AblationISAACADCScaling()
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Value <= r.Rows[i-1].Value {
			t.Fatal("ratio must grow with assumed ADC energy")
		}
	}
}

func TestAblationRender(t *testing.T) {
	var b bytes.Buffer
	AblationNUHierarchy().Render(&b)
	if !strings.Contains(b.String(), "NU-hierarchy") {
		t.Fatal("render missing title")
	}
}

func TestSensitivitySNNvsANN(t *testing.T) {
	r := SensitivitySNNvsANN()
	if len(r.Rows) != 6 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Low <= 0 || row.High <= 0 || row.Baseline <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		if row.Span < 1 {
			t.Fatalf("span below 1: %+v", row)
		}
		// Even at extreme knob settings the SNN stays more energy-hungry
		// than the ANN — the headline survives the assumptions.
		if row.Low < 1 || row.High < 1 {
			t.Fatalf("headline inverted under %s: %+v", row.Knob, row)
		}
	}
	// Input activity must be among the most influential knobs.
	var actSpan, maxSpan float64
	for _, row := range r.Rows {
		if row.Knob == "InputActivity" {
			actSpan = row.Span
		}
		if row.Span > maxSpan {
			maxSpan = row.Span
		}
	}
	if actSpan < 1.1 {
		t.Fatalf("activity knob has no leverage: %v", actSpan)
	}
	_ = maxSpan
}

func TestSensitivityBaselines(t *testing.T) {
	r := SensitivityBaselines()
	if len(r.Rows) != 3 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Doubling a baseline cost must increase its ratio.
		if row.High <= row.Low {
			t.Fatalf("%s not monotone: %+v", row.Knob, row)
		}
		// Baselines stay worse than NEBULA across the swept range.
		if row.Low <= 1 {
			t.Fatalf("%s inverts at 0.5×: %+v", row.Knob, row)
		}
	}
	var b bytes.Buffer
	r.Render(&b)
	if !strings.Contains(b.String(), "Sensitivity") {
		t.Fatal("render missing header")
	}
}

func TestFaultResilienceCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model and runs chip inference")
	}
	if raceEnabled {
		t.Skip("chip-level fault sweep exceeds the test timeout under the race detector")
	}
	r, err := FaultResilience(16, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 3 {
		t.Fatalf("curves %d", len(r.Curves))
	}
	for _, c := range r.Curves {
		if len(c.Points) != len(r.Rates) {
			t.Fatalf("%s: points %d", c.Protection, len(c.Points))
		}
	}
	none := r.Curve(reliability.ProtectNone)
	wv := r.Curve(reliability.ProtectWriteVerify)
	sr := r.Curve(reliability.ProtectSpareRemap)
	clean := none.Points[0]
	if clean.FaultRate != 0 || clean.Accuracy < 0.6 {
		t.Fatalf("clean point %+v", clean)
	}
	// At zero faults the protection machinery must be behavior-neutral:
	// all three curves share the baseline exactly.
	if wv.Points[0].Accuracy != clean.Accuracy || sr.Points[0].Accuracy != clean.Accuracy {
		t.Fatalf("rate-0 accuracy differs across protections: none %v wv %v sr %v",
			clean.Accuracy, wv.Points[0].Accuracy, sr.Points[0].Accuracy)
	}
	// One sample of resolution at this sample count.
	eps := 1.0 / 16
	// Unprotected curve visibly degrades at high rates.
	worst := none.Points[len(none.Points)-1]
	if worst.Accuracy >= clean.Accuracy {
		t.Fatalf("unprotected 20%%-fault point did not degrade: %v vs clean %v", worst.Accuracy, clean.Accuracy)
	}
	// The acceptance point: sparing+remap at 5% recovers to the baseline
	// (within one sample at this resolution).
	at5 := 3 // rates[3] == 0.05
	if r.Rates[at5] != 0.05 {
		t.Fatalf("rate layout changed: %v", r.Rates)
	}
	if sr.Points[at5].Accuracy < clean.Accuracy-eps {
		t.Fatalf("sparing+remap at 5%% did not recover: %v vs clean %v", sr.Points[at5].Accuracy, clean.Accuracy)
	}
	// Protection ordering at the acceptance point: each added mechanism
	// is at least as good as the previous (within one sample).
	if wv.Points[at5].Accuracy < none.Points[at5].Accuracy-eps {
		t.Fatalf("write-verify below unprotected at 5%%: %v vs %v",
			wv.Points[at5].Accuracy, none.Points[at5].Accuracy)
	}
	if sr.Points[at5].Accuracy < wv.Points[at5].Accuracy-eps {
		t.Fatalf("sparing+remap below write-verify at 5%%: %v vs %v",
			sr.Points[at5].Accuracy, wv.Points[at5].Accuracy)
	}
	// The mitigation pipeline actually did work at 5%.
	h := sr.Points[at5].Health
	if h.DevicesFaulted == 0 || h.FaultsFound == 0 || h.Repaired == 0 {
		t.Fatalf("sparing+remap health shows no mitigation: %+v", h)
	}
	if h.UnmitigatedFrac() > 0.02 {
		t.Fatalf("sparing+remap residual %v above degradation threshold", h.UnmitigatedFrac())
	}
	if none.Points[at5].Health.Repaired != 0 {
		t.Fatalf("unprotected curve repaired faults: %+v", none.Points[at5].Health)
	}
}

func TestFaultResilienceSmoke(t *testing.T) {
	// The tier-1 smoke pass: tiny samples and windows, but the full
	// pipeline — injection, BIST, write-verify, remapping, degradation
	// accounting — runs under all three protection levels (and under the
	// race detector, unlike the full curve above).
	r, err := FaultResilienceSmoke()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 3 || len(r.Rates) != 2 {
		t.Fatalf("shape: %d curves, %d rates", len(r.Curves), len(r.Rates))
	}
	sr := r.Curve(reliability.ProtectSpareRemap)
	h := sr.Points[1].Health
	if h.DevicesFaulted == 0 || h.Repaired == 0 {
		t.Fatalf("smoke exercised no mitigation: %+v", h)
	}
	// Health totals are deterministic for a fixed seed: re-running the
	// faulted point must reproduce the report bit for bit.
	r2, err := FaultResilienceSweep([]float64{0, 0.05}, 4, 10, 150, 60)
	if err != nil {
		t.Fatal(err)
	}
	h2 := r2.Curve(reliability.ProtectSpareRemap).Points[1].Health
	if h != h2 {
		t.Fatalf("health not deterministic:\n%+v\n%+v", h, h2)
	}
	if r2.Curve(reliability.ProtectNone).Points[1].Accuracy != r.Curve(reliability.ProtectNone).Points[1].Accuracy {
		t.Fatal("accuracy not deterministic across identical sweeps")
	}
}
