package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/convert"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/reliability"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// This file is the load study behind `nebula-bench -exp serve`: the
// dynamic-batching frontend of internal/serve is measured two ways.
// The determinism phase replays one request sequence through servers
// configured for different batch shapes (solo, and coalesced at
// several watermarks) and demands every output stay bitwise identical
// to a standalone golden session — the admission-order ticket
// reservation makes batch shape invisible to the arithmetic. The load
// phase (needs the injected wall clock, so it is absent from smoke
// determinism checks) drives the server open-loop at increasing
// offered rates and records p50/p99 latency, achieved throughput and
// the batch-fill histogram per level; throughput at saturation is the
// best achieved rate across levels.

// ServeConfig parameterizes the load study.
type ServeConfig struct {
	// Replicas is the pool size behind the server.
	Replicas int
	// Timesteps is the SNN evidence window per request.
	Timesteps int
	// BatchShapes are the coalescing watermarks of the determinism
	// phase; shape 1 is the solo reference.
	BatchShapes []int
	// Requests is the request-sequence length of the determinism phase.
	Requests int
	// BatchSize / MaxDelay / QueueDepth configure the server under load.
	BatchSize  int
	MaxDelay   time.Duration
	QueueDepth int
	// OfferedLoads are the open-loop request rates (requests/second) of
	// the load phase; RequestsPerLevel the sequence length per level.
	// The load phase runs only with a clock.
	OfferedLoads     []float64
	RequestsPerLevel int
	// NTrain / NTest size the synthetic dataset.
	NTrain, NTest int
	// Now, when non-nil, is a monotonic nanosecond clock injected from
	// cmd/ (internal packages never read the wall clock). It enables the
	// load phase and its latency figures — the one environment-dependent
	// block of the record.
	Now func() int64
}

// DefaultServeConfig returns the published load-study shape.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		Replicas:         3,
		Timesteps:        20,
		BatchShapes:      []int{1, 4, 8},
		Requests:         24,
		BatchSize:        8,
		MaxDelay:         2 * time.Millisecond,
		QueueDepth:       64,
		OfferedLoads:     []float64{30, 120, 480, 960},
		RequestsPerLevel: 60,
		NTrain:           400,
		NTest:            120,
	}
}

// SmokeServeConfig returns the serve-smoke shape: tiny sequences,
// clock-free (determinism phase only) — enough to exercise admission,
// coalescing and ticket routing under -race in seconds.
func SmokeServeConfig() ServeConfig {
	return ServeConfig{
		Replicas:    2,
		Timesteps:   10,
		BatchShapes: []int{1, 3, 8},
		Requests:    9,
		BatchSize:   8,
		QueueDepth:  32,
		NTrain:      150,
		NTest:       60,
	}
}

// ServeShapeOutcome is one batch shape of the determinism phase.
type ServeShapeOutcome struct {
	// BatchSize is the coalescing watermark the server ran with.
	BatchSize int `json:"batch_size"`
	// BitwiseMatches / Mismatched compare every served output against
	// the standalone golden session; the determinism-under-coalescing
	// contract demands Mismatched == 0 at every shape.
	BitwiseMatches int `json:"bitwise_matches"`
	Mismatched     int `json:"mismatched"`
	// Batches is how many dispatches served the sequence; MeanFill the
	// average requests per dispatch.
	Batches  int64   `json:"batches"`
	MeanFill float64 `json:"mean_fill"`
}

// ServeLoadLevel is one offered-load level of the load phase.
type ServeLoadLevel struct {
	// OfferedRPS is the open-loop submission rate; Requests the
	// sequence length at this level.
	OfferedRPS float64 `json:"offered_rps"`
	Requests   int     `json:"requests"`
	// Served / RejectedQueueFull / Failed partition the sequence.
	Served            int `json:"served"`
	RejectedQueueFull int `json:"rejected_queue_full"`
	Failed            int `json:"failed"`
	// AchievedRPS is served requests over the level's elapsed time.
	AchievedRPS float64 `json:"achieved_rps"`
	// P50NS / P99NS are exact order-statistic latencies (admission to
	// response) over served requests.
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`
	// MeanFill is the average batch fill at this level; BatchFill the
	// full fill histogram.
	MeanFill  float64            `json:"mean_fill"`
	BatchFill obs.HistogramStats `json:"batch_fill"`
}

// ServeResult is the load study record.
type ServeResult struct {
	Model      string `json:"model"`
	Replicas   int    `json:"replicas"`
	Timesteps  int    `json:"timesteps"`
	BatchSize  int    `json:"batch_size"`
	MaxDelayNS int64  `json:"max_delay_ns"`
	QueueDepth int    `json:"queue_depth"`
	// Shapes is the determinism phase: one outcome per batch shape,
	// every one of them required to be bitwise clean.
	Shapes []ServeShapeOutcome `json:"shapes"`
	// Levels is the load phase (present only when a clock was
	// injected); SaturationRPS the best achieved rate across levels.
	Levels        []ServeLoadLevel `json:"levels,omitempty"`
	SaturationRPS float64          `json:"saturation_rps,omitempty"`
}

// serveChipSeed seeds every chip of the study — golden session and all
// pool replicas — so they program identical arrays.
const serveChipSeed = Seed + 17

// ServeStudy runs the load study. The Shapes block is deterministic
// for a fixed config; Levels depend on the host's real-time behaviour.
func ServeStudy(ctx context.Context, cfg ServeConfig) (ServeResult, error) {
	tm := trainScaled(benchmarkSpec{"mlp3/mnist-like", models.NewMLP3, dataset.MNISTLike, 8, 0}, cfg.NTrain, cfg.NTest)
	conv, err := convert.Convert(tm.net, tm.trainDS, convert.DefaultConfig())
	if err != nil {
		return ServeResult{}, fmt.Errorf("serve study: %w", err)
	}

	compile := func(ctx context.Context) (*arch.Session, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chip := arch.NewChip(device.DefaultParams(), crossbar.Config{ReadNoiseSigma: 0.05}, rng.New(serveChipSeed))
		chip.Rel = &reliability.Config{
			Protection: reliability.ProtectSpareRemap,
			Policy:     reliability.DefaultPolicy(),
		}
		return chip.Compile(conv,
			arch.WithMode(arch.ModeSNN),
			arch.WithTimesteps(cfg.Timesteps),
			arch.WithSeed(Seed))
	}

	res := ServeResult{
		Model:      tm.name,
		Replicas:   cfg.Replicas,
		Timesteps:  cfg.Timesteps,
		BatchSize:  cfg.BatchSize,
		MaxDelayNS: int64(cfg.MaxDelay),
		QueueDepth: cfg.QueueDepth,
	}

	// Request sequence: the test set replayed in order.
	n := cfg.Requests
	if cfg.Now != nil && cfg.RequestsPerLevel > n {
		n = cfg.RequestsPerLevel
	}
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i], _ = tm.testDS.Sample(i % cfg.NTest)
	}

	// Golden baseline: a standalone session with the pool's seed, run
	// sequentially over the sequence.
	base, err := compile(ctx)
	if err != nil {
		return ServeResult{}, fmt.Errorf("serve study: baseline: %w", err)
	}
	golden := make([]*arch.RunResult, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		golden[i], err = base.Run(ctx, inputs[i])
		if err != nil {
			return ServeResult{}, fmt.Errorf("serve study: baseline request %d: %w", i, err)
		}
	}

	// newServer builds a fresh pool + server per phase so every phase
	// starts from reservation index zero, like a fresh deployment.
	newServer := func(batch int, delay time.Duration, rec *obs.ServeRecorder) (*serve.Server, error) {
		pool, err := fleet.NewPool(ctx, fleet.Config{
			Replicas: cfg.Replicas,
			Factory:  compile,
			Seed:     Seed,
		})
		if err != nil {
			return nil, err
		}
		return serve.New(serve.Config{
			Pool:       pool,
			BatchSize:  batch,
			MaxDelay:   delay,
			QueueDepth: cfg.QueueDepth,
			Rec:        rec,
			Now:        cfg.Now,
		})
	}

	// Determinism phase: the same sequence through every batch shape.
	for _, shape := range cfg.BatchShapes {
		rec := obs.NewServeRecorder()
		// Timed coalescing for multi-request shapes so batches actually
		// fill; solo stays greedy.
		delay := time.Duration(0)
		if shape > 1 {
			delay = 10 * time.Millisecond
		}
		srv, err := newServer(shape, delay, rec)
		if err != nil {
			return ServeResult{}, fmt.Errorf("serve study: shape %d: %w", shape, err)
		}
		// Submit the whole sequence first — deterministic admission
		// order, maximal coalescing opportunity — then collect.
		pending := make([]*serve.Pending, cfg.Requests)
		for i := 0; i < cfg.Requests; i++ {
			pending[i], err = srv.Submit(ctx, inputs[i])
			if err != nil {
				return ServeResult{}, fmt.Errorf("serve study: shape %d submit %d: %w", shape, i, err)
			}
		}
		out := ServeShapeOutcome{BatchSize: shape}
		for i, p := range pending {
			run, err := p.Wait()
			if err != nil {
				return ServeResult{}, fmt.Errorf("serve study: shape %d request %d: %w", shape, i, err)
			}
			if sameBits(run.Output, golden[i].Output) {
				out.BitwiseMatches++
			} else {
				out.Mismatched++
			}
		}
		if err := srv.Drain(ctx); err != nil {
			return ServeResult{}, fmt.Errorf("serve study: shape %d drain: %w", shape, err)
		}
		st := rec.Stats()
		out.Batches = st.Batches
		out.MeanFill = st.BatchFill.Mean()
		res.Shapes = append(res.Shapes, out)
	}

	// Load phase: open-loop pacing needs the clock.
	if cfg.Now == nil || len(cfg.OfferedLoads) == 0 {
		return res, nil
	}
	for _, rps := range cfg.OfferedLoads {
		level, err := serveLoadLevel(ctx, cfg, newServer, inputs, rps)
		if err != nil {
			return ServeResult{}, err
		}
		res.Levels = append(res.Levels, level)
		if level.AchievedRPS > res.SaturationRPS {
			res.SaturationRPS = level.AchievedRPS
		}
	}
	return res, nil
}

// serveLoadLevel drives one offered-load level: open-loop submission at
// a fixed interarrival, exact order-statistic latencies over the served
// requests.
func serveLoadLevel(ctx context.Context, cfg ServeConfig,
	newServer func(int, time.Duration, *obs.ServeRecorder) (*serve.Server, error),
	inputs []*tensor.Tensor, rps float64) (ServeLoadLevel, error) {
	rec := obs.NewServeRecorder()
	srv, err := newServer(cfg.BatchSize, cfg.MaxDelay, rec)
	if err != nil {
		return ServeLoadLevel{}, fmt.Errorf("serve study: level %.0f rps: %w", rps, err)
	}
	level := ServeLoadLevel{OfferedRPS: rps, Requests: cfg.RequestsPerLevel}
	interarrival := int64(float64(time.Second) / rps)
	latencies := make(chan int64, cfg.RequestsPerLevel)
	errs := make(chan error, cfg.RequestsPerLevel)
	start := cfg.Now()
	inFlight := 0
	for i := 0; i < cfg.RequestsPerLevel; i++ {
		// Open loop: request i is offered at start + i*interarrival no
		// matter how the server is doing — that is what "offered load"
		// means. Sleep only for the remainder, if any.
		if wait := start + int64(i)*interarrival - cfg.Now(); wait > 0 {
			time.Sleep(time.Duration(wait))
		}
		t0 := cfg.Now()
		p, err := srv.Submit(ctx, inputs[i%len(inputs)])
		if err != nil {
			if errors.Is(err, serve.ErrQueueFull) {
				level.RejectedQueueFull++
				continue
			}
			return ServeLoadLevel{}, fmt.Errorf("serve study: level %.0f rps submit %d: %w", rps, i, err)
		}
		inFlight++
		go func() {
			if _, err := p.Wait(); err != nil {
				errs <- err
				return
			}
			latencies <- cfg.Now() - t0
		}()
	}
	var lats []int64
	for ; inFlight > 0; inFlight-- {
		select {
		case d := <-latencies:
			lats = append(lats, d)
			level.Served++
		case <-errs:
			level.Failed++
		case <-ctx.Done():
			return ServeLoadLevel{}, ctx.Err()
		}
	}
	elapsed := cfg.Now() - start
	if err := srv.Drain(ctx); err != nil {
		return ServeLoadLevel{}, fmt.Errorf("serve study: level %.0f rps drain: %w", rps, err)
	}
	if elapsed > 0 {
		level.AchievedRPS = float64(level.Served) * float64(time.Second) / float64(elapsed)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	level.P50NS = orderStat(lats, 0.50)
	level.P99NS = orderStat(lats, 0.99)
	st := rec.Stats()
	level.MeanFill = st.BatchFill.Mean()
	level.BatchFill = st.BatchFill
	return level, nil
}

// orderStat returns the exact q-th order statistic of a sorted sample
// (nearest-rank), or 0 for an empty sample.
func orderStat(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Render writes the load study summary.
func (r ServeResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Serve load study (%s, %d replicas, T=%d, batch %d, queue %d)\n",
		r.Model, r.Replicas, r.Timesteps, r.BatchSize, r.QueueDepth)
	for _, s := range r.Shapes {
		fmt.Fprintf(w, "  shape batch=%d: bitwise %d/%d  batches %d  mean fill %.2f\n",
			s.BatchSize, s.BitwiseMatches, s.BitwiseMatches+s.Mismatched, s.Batches, s.MeanFill)
	}
	for _, l := range r.Levels {
		fmt.Fprintf(w, "  load %6.1f rps: served %d  rejected %d  failed %d  achieved %6.1f rps  p50 %.2f ms  p99 %.2f ms  fill %.2f\n",
			l.OfferedRPS, l.Served, l.RejectedQueueFull, l.Failed, l.AchievedRPS,
			float64(l.P50NS)/1e6, float64(l.P99NS)/1e6, l.MeanFill)
	}
	if r.SaturationRPS > 0 {
		fmt.Fprintf(w, "  throughput at saturation: %.1f rps\n", r.SaturationRPS)
	}
}
