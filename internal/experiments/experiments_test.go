package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig1DeviceCharacteristic(t *testing.T) {
	r := Fig1DeviceCharacteristic()
	if len(r.Points) != 49 {
		t.Fatalf("points %d", len(r.Points))
	}
	var b bytes.Buffer
	r.Render(&b)
	if !strings.Contains(b.String(), "Fig. 1(b)") {
		t.Fatal("render missing title")
	}
}

func TestFig12Shapes(t *testing.T) {
	r := Fig12ISAACLayerwise()
	if len(r.Series) != 2 {
		t.Fatalf("series %d", len(r.Series))
	}
	alex, mobile := r.Series[0], r.Series[1]
	if alex.Model != "alexnet" || mobile.Model != "mobilenet-cifar10" {
		t.Fatalf("wrong models: %s, %s", alex.Model, mobile.Model)
	}
	// Paper: AlexNet ≈2.8×, MobileNet ≈7.9×, every layer favors NEBULA.
	if alex.Mean < 1.5 || alex.Mean > 6 {
		t.Fatalf("AlexNet mean %v", alex.Mean)
	}
	if mobile.Mean < 5 || mobile.Mean > 14 {
		t.Fatalf("MobileNet mean %v", mobile.Mean)
	}
	for _, s := range r.Series {
		for i, ratio := range s.Ratio {
			if ratio <= 1 {
				t.Fatalf("%s layer %s: ISAAC ratio %v ≤ 1", s.Model, s.Layers[i], ratio)
			}
		}
	}
}

func TestFig13aOrdering(t *testing.T) {
	r := Fig13aISAACAverage()
	if len(r.Rows) != 8 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	byName := map[string]float64{}
	for _, row := range r.Rows {
		byName[row.Model] = row.Ratio
		if row.Ratio <= 1 {
			t.Fatalf("%s ratio %v ≤ 1", row.Model, row.Ratio)
		}
	}
	if byName["alexnet"] >= byName["mobilenet-cifar10"] {
		t.Fatal("AlexNet should benefit least, MobileNet most")
	}
}

func TestFig13bBand(t *testing.T) {
	r := Fig13bINXSLayerwise()
	if r.Mean < 25 || r.Mean > 75 {
		t.Fatalf("INXS mean ratio %v outside ≈45× band", r.Mean)
	}
	if len(r.Layers) != 12 {
		t.Fatalf("layers %d", len(r.Layers))
	}
}

func TestFig14MaxRatios(t *testing.T) {
	r := Fig14PeakPower()
	if len(r.Series) != 6 {
		t.Fatalf("series %d", len(r.Series))
	}
	anyHigh := false
	for _, s := range r.Series {
		if s.Max <= 1 {
			t.Fatalf("%s: peak ratio max %v", s.Model, s.Max)
		}
		if s.Max > 20 {
			anyHigh = true
		}
	}
	if !anyHigh {
		t.Fatal("no model reaches the tens-of-× peak ratios of Fig. 14")
	}
}

func TestFig15SharesSumToOne(t *testing.T) {
	r := Fig15ComponentBreakdownVGG()
	check := func(rows []BreakdownRow) {
		for _, row := range rows {
			sum := row.Crossbar + row.Driver + row.NU + row.ADC + row.SRAM + row.EDRAM + row.NoC
			if sum != 0 && (sum < 0.999 || sum > 1.001) {
				t.Fatalf("%s/%s shares sum to %v", row.Model, row.Mode, sum)
			}
		}
	}
	check(r.PerLayerSNN)
	check(r.PerLayerANN)
	// SNN memory-dominance and ANN crossbar-dominance trends.
	if r.TotalSNN.SRAM+r.TotalSNN.EDRAM < 0.3 {
		t.Fatalf("SNN memory share %v", r.TotalSNN.SRAM+r.TotalSNN.EDRAM)
	}
	if r.TotalANN.Crossbar+r.TotalANN.Driver < 0.4 {
		t.Fatalf("ANN crossbar+DAC share %v", r.TotalANN.Crossbar+r.TotalANN.Driver)
	}
}

func TestFig16AllBenchmarks(t *testing.T) {
	r := Fig16ComponentBreakdownAll()
	if len(r.SNN) != 8 || len(r.ANN) != 8 {
		t.Fatalf("rows: %d SNN, %d ANN", len(r.SNN), len(r.ANN))
	}
}

func TestFig17Shape(t *testing.T) {
	r := Fig17HybridStudy()
	if len(r.Series) != 3 {
		t.Fatalf("series %d", len(r.Series))
	}
	for _, s := range r.Series {
		first := s.Points[0]
		last := s.Points[len(s.Points)-1]
		if first.Mode != "SNN" || last.Mode != "ANN" {
			t.Fatalf("%s: endpoints %s..%s", s.Model, first.Mode, last.Mode)
		}
		// ANN energy must be well below SNN energy (paper: 5-10× lower).
		if last.EnergyVsSNN >= 0.7 {
			t.Fatalf("%s: ANN/SNN energy %v", s.Model, last.EnergyVsSNN)
		}
		// SNN power must be well below ANN power (paper: ≥6.25× lower).
		if first.PowerVsANN >= 0.25 {
			t.Fatalf("%s: SNN/ANN power %v", s.Model, first.PowerVsANN)
		}
		// Hybrids sit between the extremes: energy strictly decreasing
		// from SNN toward ANN, power below ANN throughout, and the
		// deepest hybrid drawing at least as much power as the first
		// (the Fig. 17 "approaches ANN power" trend).
		for i := 1; i < len(s.Points)-1; i++ {
			p := s.Points[i]
			if p.EnergyVsSNN > 1.001 {
				t.Fatalf("%s %s: hybrid energy %v above SNN", s.Model, p.Mode, p.EnergyVsSNN)
			}
			if p.EnergyVsSNN >= s.Points[i-1].EnergyVsSNN {
				t.Fatalf("%s: energy not decreasing at %s", s.Model, p.Mode)
			}
			if p.PowerVsANN >= 1.001 {
				t.Fatalf("%s %s: hybrid power %v above ANN", s.Model, p.Mode, p.PowerVsANN)
			}
		}
		firstHyb := s.Points[1]
		lastHyb := s.Points[len(s.Points)-2]
		if lastHyb.PowerVsANN < firstHyb.PowerVsANN-0.02 {
			t.Fatalf("%s: deepest hybrid power %v fell below first %v",
				s.Model, lastHyb.PowerVsANN, firstHyb.PowerVsANN)
		}
	}
}

func TestTableIIIRenderIncludesTotals(t *testing.T) {
	var b bytes.Buffer
	TableIIIComponents().Render(&b)
	out := b.String()
	for _, want := range []string{"eDRAM", "ANN super-tile", "chip 5.2", "113.8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table III render missing %q:\n%s", want, out)
		}
	}
}

// The trained-model experiments are exercised with small sample budgets to
// stay fast; their full-budget counterparts run in the bench harness.

func TestTableIConversionSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("trains six models")
	}
	if raceEnabled {
		t.Skip("training six models exceeds the test timeout under the race detector")
	}
	r, err := TableIConversion(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ANNAccuracy < 0.25 {
			t.Fatalf("%s ANN accuracy %v suspiciously low", row.Model, row.ANNAccuracy)
		}
		if row.SNNAccuracy < row.ANNAccuracy-0.45 {
			t.Fatalf("%s: SNN %v too far below ANN %v", row.Model, row.SNNAccuracy, row.ANNAccuracy)
		}
	}
	var b bytes.Buffer
	r.Render(&b)
	if !strings.Contains(b.String(), "Table I") {
		t.Fatal("render missing title")
	}
}

func TestFig4ActivityDecays(t *testing.T) {
	if testing.Short() {
		t.Skip("trains VGG")
	}
	if raceEnabled {
		t.Skip("training VGG exceeds the test timeout under the race detector")
	}
	r, err := Fig4SpikingActivity(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Activity) < 4 {
		t.Fatalf("activity entries %d", len(r.Activity))
	}
	// The Fig. 4 trend: deep layers spike less than the first layer on
	// average (compare the first stateful layer to the mean of the last
	// two IF stages; the final read-out has no spikes and is excluded).
	n := len(r.Activity)
	deep := (r.Activity[n-2] + r.Activity[n-3]) / 2
	if deep >= r.Activity[0] {
		t.Fatalf("activity did not decay: first %v deep %v", r.Activity[0], deep)
	}
}
