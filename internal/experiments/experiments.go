// Package experiments contains one driver per table and figure of the
// NEBULA paper's evaluation. Each driver returns a structured result and
// can render itself as the rows/series the paper reports; the bench
// harness at the repository root and cmd/nebula-bench invoke them.
//
// Experiments that depend on trained models (Tables I–II, Figs. 4, 9, 10,
// and the noise study) train the scaled model-zoo networks on the
// synthetic datasets; experiments that depend only on layer geometry and
// activity statistics (Table III, Figs. 12–17) run the analytic models on
// the full-size paper workloads.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/convert"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/hybrid"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/train"
)

// Seed is the base seed for every experiment, making all published
// numbers reproducible.
const Seed = 2020

// trainedModel bundles a trained scaled network with its data.
type trainedModel struct {
	name    string
	net     *nn.Network
	trainDS *dataset.Dataset
	testDS  *dataset.Dataset
	// snnTimesteps is the scaled evidence window used in accuracy
	// experiments.
	snnTimesteps int
}

// benchmarkSpecs pairs each scaled model with its synthetic dataset,
// mirroring the Table I benchmark list at laptop scale.
type benchmarkSpec struct {
	name      string
	builder   models.Builder
	data      dataset.Spec
	epochs    int
	timesteps int
}

func scaledBenchmarks() []benchmarkSpec {
	return []benchmarkSpec{
		{"mlp3/mnist-like", models.NewMLP3, dataset.MNISTLike, 8, 80},
		{"lenet5/mnist-like", models.NewLeNet5, dataset.MNISTLike, 6, 60},
		{"vgg13/cifar10-like", models.NewVGG13, dataset.CIFAR10Like, 6, 120},
		{"mobilenet-v1/cifar10-like", models.NewMobileNetV1, dataset.CIFAR10Like, 6, 150},
		{"svhn-net/svhn-like", models.NewSVHNNet, dataset.SVHNLike, 9, 80},
		{"alexnet/imagenet-like", models.NewAlexNet, dataset.ImageNetLike, 8, 120},
	}
}

// trainScaled trains one scaled benchmark deterministically.
func trainScaled(spec benchmarkSpec, nTrain, nTest int) trainedModel {
	r := rng.New(Seed)
	tr, te := dataset.TrainTest(spec.data, nTrain, nTest, Seed+uint64(len(spec.name)))
	net := spec.builder(spec.data.Channels, spec.data.Size, spec.data.Classes, r)
	cfg := train.DefaultConfig()
	cfg.Epochs = spec.epochs
	// A slightly lower rate than the package default keeps the deeper
	// conv stacks stable across all deterministic seeds.
	cfg.LR = 0.03
	cfg.LRDecayEvery = 3
	train.Run(net, tr, te, cfg)
	return trainedModel{name: spec.name, net: net, trainDS: tr, testDS: te, snnTimesteps: spec.timesteps}
}

// ---------------------------------------------------------------------------
// Fig. 1(b): device characteristic
// ---------------------------------------------------------------------------

// Fig1Result holds the device sweep of Fig. 1(b).
type Fig1Result struct {
	Points []device.CharacteristicPoint
}

// Fig1DeviceCharacteristic sweeps programming current through the DW-MTJ
// synapse model.
func Fig1DeviceCharacteristic() Fig1Result {
	return Fig1Result{Points: device.Characteristic(device.DefaultParams(), -12, 12, 49)}
}

// Render writes the sweep as a table.
func (r Fig1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 1(b) — DW-MTJ device characteristic (20nm-resolution, 320nm free layer)")
	fmt.Fprintln(w, "  I_prog(µA)   ΔDW(nm)   G(µS)")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %+9.2f  %+8.2f  %6.2f\n", p.CurrentUA, p.DisplacementNM, p.ConductanceUS)
	}
}

// ---------------------------------------------------------------------------
// Fig. 4: layer-wise spiking activity
// ---------------------------------------------------------------------------

// Fig4Result holds the layer-wise mean spiking activity of a converted
// network.
type Fig4Result struct {
	Model    string
	Activity []float64 // spikes per neuron per timestep, by stateful layer
}

// Fig4SpikingActivity measures layer-wise activity of the scaled VGG SNN.
func Fig4SpikingActivity(samples int) (Fig4Result, error) {
	tm := trainScaled(benchmarkSpec{"vgg13/cifar10-like", models.NewVGG13, dataset.CIFAR10Like, 6, 120}, 400, 120)
	conv, err := convert.Convert(tm.net, tm.trainDS, convert.DefaultConfig())
	if err != nil {
		return Fig4Result{}, fmt.Errorf("fig4: %w", err)
	}
	res := conv.Evaluate(tm.testDS, tm.snnTimesteps, samples, Seed)
	return Fig4Result{Model: tm.name, Activity: res.MeanActivity}, nil
}

// Render writes the activity series.
func (r Fig4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 4 — layer-wise average spiking activity (%s)\n", r.Model)
	for i, a := range r.Activity {
		fmt.Fprintf(w, "  layer %2d: %.4f %s\n", i+1, a, bar(a, 0.5, 40))
	}
}

// ---------------------------------------------------------------------------
// Fig. 9: accuracy vs weight discretization levels
// ---------------------------------------------------------------------------

// Fig9Point is one quantization operating point.
type Fig9Point struct {
	Model    string
	Levels   int // 0 means full precision
	Accuracy float64
}

// Fig9Result is the quantization sweep.
type Fig9Result struct {
	Points []Fig9Point
}

// Fig9QuantizationSweep sweeps weight discretization levels for the two
// Fig. 9 models with activations fixed at 16 levels (4 bits).
func Fig9QuantizationSweep() Fig9Result {
	var out Fig9Result
	levels := []int{4, 8, 12, 16, 20, 24, 32}
	for _, spec := range []benchmarkSpec{
		{"vgg13/cifar10-like", models.NewVGG13, dataset.CIFAR10Like, 6, 0},
		{"mobilenet-v1/cifar10-like", models.NewMobileNetV1, dataset.CIFAR10Like, 6, 0},
	} {
		tm := trainScaled(spec, 400, 150)
		ranges := quant.Calibrate(tm.net, tm.trainDS, quant.DefaultCalibration())
		float := train.Evaluate(tm.net, tm.testDS, 32)
		out.Points = append(out.Points, Fig9Point{tm.name, 0, float})
		for _, lv := range levels {
			clone := cloneTrained(spec, tm)
			cfg := quant.Config{WeightLevels: lv, ActivationLevels: 16}
			quant.Apply(clone, ranges, cfg)
			acc := quant.EvaluateQuantized(clone, tm.testDS, ranges, cfg, 32)
			out.Points = append(out.Points, Fig9Point{tm.name, lv, acc})
		}
	}
	return out
}

// cloneTrained rebuilds the architecture and copies trained weights.
func cloneTrained(spec benchmarkSpec, tm trainedModel) *nn.Network {
	clone := spec.builder(spec.data.Channels, spec.data.Size, spec.data.Classes, rng.New(1))
	dst, src := clone.Params(), tm.net.Params()
	for i := range dst {
		copy(dst[i].Value.Data(), src[i].Value.Data())
	}
	// BatchNorm running statistics are not Params; copy them too.
	dl, sl := clone.Layers(), tm.net.Layers()
	for i := range dl {
		if dbn, ok := dl[i].(*nn.BatchNorm2D); ok {
			sbn := sl[i].(*nn.BatchNorm2D)
			copy(dbn.RunningMean.Data(), sbn.RunningMean.Data())
			copy(dbn.RunningVar.Data(), sbn.RunningVar.Data())
		}
	}
	return clone
}

// Render writes the Fig. 9 table.
func (r Fig9Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 9 — accuracy vs weight discretization levels (activations 4-bit)")
	for _, p := range r.Points {
		lv := fmt.Sprintf("%d levels", p.Levels)
		if p.Levels == 0 {
			lv = "float"
		}
		fmt.Fprintf(w, "  %-26s %-10s %.4f\n", p.Model, lv, p.Accuracy)
	}
}

// ---------------------------------------------------------------------------
// Fig. 10: ANN/SNN feature-map correlation
// ---------------------------------------------------------------------------

// Fig10Result holds per-layer ANN/SNN correlations at two windows.
type Fig10Result struct {
	Model      string
	ShortT     int
	LongT      int
	CorrShortT []float64
	CorrLongT  []float64
}

// Fig10Correlation reproduces the correlation-vs-depth analysis on the
// scaled MobileNet (the paper's Fig. 10 model), at a short and a long
// integration window.
func Fig10Correlation(samples int) (Fig10Result, error) {
	tm := trainScaled(benchmarkSpec{"mobilenet-v1/cifar10-like", models.NewMobileNetV1, dataset.CIFAR10Like, 6, 0}, 400, 120)
	conv, err := convert.Convert(tm.net, tm.trainDS, convert.DefaultConfig())
	if err != nil {
		return Fig10Result{}, fmt.Errorf("fig10: %w", err)
	}
	shortT, longT := 60, 300
	return Fig10Result{
		Model:      tm.name,
		ShortT:     shortT,
		LongT:      longT,
		CorrShortT: conv.Correlation(tm.testDS, shortT, samples, Seed),
		CorrLongT:  conv.Correlation(tm.testDS, longT, samples, Seed),
	}, nil
}

// Render writes the correlation series.
func (r Fig10Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 10 — ANN/SNN feature-map correlation (%s)\n", r.Model)
	fmt.Fprintf(w, "  layer    T=%-4d   T=%-4d\n", r.ShortT, r.LongT)
	for i := range r.CorrShortT {
		fmt.Fprintf(w, "  %5d   %.4f   %.4f\n", i+1, r.CorrShortT[i], r.CorrLongT[i])
	}
}

// ---------------------------------------------------------------------------
// Table I: ANN-to-SNN conversion accuracy
// ---------------------------------------------------------------------------

// TableIRow is one benchmark row.
type TableIRow struct {
	Model       string
	ANNAccuracy float64
	SNNAccuracy float64
	Timesteps   int
	Depth       int
}

// TableIResult is the conversion accuracy table.
type TableIResult struct {
	Rows []TableIRow
}

// TableIConversion trains every scaled benchmark, converts it and
// measures ANN vs SNN accuracy (the Table I protocol at laptop scale).
func TableIConversion(samples int) (TableIResult, error) {
	var out TableIResult
	for _, spec := range scaledBenchmarks() {
		tm := trainScaled(spec, 400, 150)
		annAcc := train.Evaluate(tm.net, tm.testDS, 32)
		conv, err := convert.Convert(tm.net, tm.trainDS, convert.DefaultConfig())
		if err != nil {
			return TableIResult{}, fmt.Errorf("table1: %s: %w", spec.name, err)
		}
		res := conv.Evaluate(tm.testDS, tm.snnTimesteps, samples, Seed)
		out.Rows = append(out.Rows, TableIRow{
			Model:       tm.name,
			ANNAccuracy: annAcc,
			SNNAccuracy: res.Accuracy,
			Timesteps:   tm.snnTimesteps,
			Depth:       len(tm.net.Layers()),
		})
	}
	return out, nil
}

// Render writes the Table I rows.
func (r TableIResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Table I — ANN-to-SNN conversion accuracy (scaled benchmarks)")
	fmt.Fprintln(w, "  model                        ANN      SNN      t-steps  layers")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-26s  %.4f   %.4f   %5d    %d\n",
			row.Model, row.ANNAccuracy, row.SNNAccuracy, row.Timesteps, row.Depth)
	}
}

// ---------------------------------------------------------------------------
// Table II: hybrid accuracy
// ---------------------------------------------------------------------------

// TableIIRow is one hybrid operating point.
type TableIIRow struct {
	Model     string
	Mode      string // "SNN" or "Hyb-k"
	Timesteps int
	Accuracy  float64
}

// TableIIResult is the hybrid sweep.
type TableIIResult struct {
	Rows []TableIIRow
}

// TableIIHybrid reproduces the Table II sweep on the scaled VGG and SVHN
// models: pure SNN at the full window, then hybrids with more non-spiking
// layers at progressively shorter windows.
func TableIIHybrid(samples int) (TableIIResult, error) {
	var out TableIIResult
	for _, spec := range []benchmarkSpec{
		{"vgg13/cifar10-like", models.NewVGG13, dataset.CIFAR10Like, 6, 120},
		{"svhn-net/svhn-like", models.NewSVHNNet, dataset.SVHNLike, 9, 80},
	} {
		tm := trainScaled(spec, 400, 150)
		conv, err := convert.Convert(tm.net, tm.trainDS, convert.DefaultConfig())
		if err != nil {
			return TableIIResult{}, fmt.Errorf("table2: %s: %w", spec.name, err)
		}
		full := conv.Evaluate(tm.testDS, tm.snnTimesteps, samples, Seed)
		out.Rows = append(out.Rows, TableIIRow{tm.name, "SNN", tm.snnTimesteps, full.Accuracy})
		type pt struct{ k, T int }
		var pts []pt
		base := tm.snnTimesteps
		pts = []pt{{1, base * 5 / 6}, {1, base * 2 / 3}, {2, base / 2}, {3, base / 3}, {3, base / 4}}
		for _, p := range pts {
			m, err := hybrid.Split(conv, p.k)
			if err != nil {
				continue
			}
			acc := m.Evaluate(tm.testDS, p.T, samples, Seed)
			out.Rows = append(out.Rows, TableIIRow{tm.name, fmt.Sprintf("Hyb-%d", p.k), p.T, acc})
		}
	}
	return out, nil
}

// Render writes the Table II rows.
func (r TableIIResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Table II — hybrid SNN-ANN model accuracy (scaled)")
	fmt.Fprintln(w, "  model                        mode    t-steps  accuracy")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-26s  %-6s  %5d    %.4f\n", row.Model, row.Mode, row.Timesteps, row.Accuracy)
	}
}

// ---------------------------------------------------------------------------
// Table III: component specifications
// ---------------------------------------------------------------------------

// TableIIIResult re-derives the component table.
type TableIIIResult struct {
	Spec energy.Spec
}

// TableIIIComponents returns the encoded component table.
func TableIIIComponents() TableIIIResult { return TableIIIResult{Spec: energy.TableIII()} }

// Render writes the component summary with derived totals.
func (r TableIIIResult) Render(w io.Writer) {
	s := r.Spec
	fmt.Fprintln(w, "Table III — component specifications")
	rows := []struct {
		name  string
		power float64
		area  float64
	}{
		{"eDRAM (32 KB)", s.EDRAMPowerW, s.EDRAMAreaMM2},
		{"ADC (4 bit)", s.ADCPowerW, s.ADCAreaMM2},
		{"ANN super-tile", s.ANNSuperTilePowerW, s.ANNSuperTileAreaMM2},
		{"SNN super-tile", s.SNNSuperTilePowerW, s.SNNSuperTileAreaMM2},
		{"ANN input buffer (16 KB)", s.ANNIBPowerW, s.ANNIBAreaMM2},
		{"SNN input buffer (4 KB)", s.SNNIBPowerW, s.SNNIBAreaMM2},
		{"ANN output buffer (2 KB)", s.ANNOBPowerW, s.ANNOBAreaMM2},
		{"SNN output buffer (0.5 KB)", s.SNNOBPowerW, s.SNNOBAreaMM2},
		{"ANN DAC (16×128)", s.ANNDACPowerW, s.ANNDACAreaMM2},
		{"ANN crossbars (16×128×128)", s.ANNCrossbarPowerW, s.ANNCrossbarAreaMM2},
		{"SNN drivers (16×128)", s.SNNDriverPowerW, s.SNNDriverAreaMM2},
		{"SNN crossbars (16×128×128)", s.SNNCrossbarPowerW, s.SNNCrossbarAreaMM2},
		{"Neuron units (23×128)", s.NUPowerW, s.NUAreaMM2},
		{"AU adders (1024×8b)", s.AUAdderPowerW, s.AUAdderAreaMM2},
		{"AU registers (1024×16b)", s.AURegisterPowerW, s.AURegisterAreaMM2},
	}
	fmt.Fprintln(w, "  component                     power (mW)   area (mm²)")
	for _, row := range rows {
		fmt.Fprintf(w, "  %-28s  %9.3f   %9.5f\n", row.name, row.power*1e3, row.area)
	}
	fmt.Fprintf(w, "  derived: ANN core %.1f mW  SNN core %.2f mW  chip %.1f W  area %.1f mm²\n",
		s.ANNCorePowerW()*1e3, s.SNNCorePowerW()*1e3, s.ChipPowerW(), s.ChipAreaMM2())
}

// bar renders a crude horizontal bar for terminal figures.
func bar(v, max float64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
